// simex oracle: two planted schedule bugs that the sampled perturbation
// policies (fifo, lifo, shuffle:7 — exactly what check_bench --perturb
// runs) provably miss, and that the explorer must find within the smoke
// budget. Standalone so CI can gate on it without gtest.
//
// Bug A (tie order): three same-timestamp handlers race on one shared
// slot; the invariant breaks only when they run in order 1,2,0. The
// sampled policies execute permutations 0,1,2 (fifo), 2,1,0 (lifo) and
// 2,0,1 (shuffle:7) — none is the buggy one — so --perturb stays green
// while one of the six legal schedules loses an acked write. DPOR
// reaches 1,2,0 in two race reversals from the reference.
//
// Bug B (fault timing): a write is acked at t=100us but WAL-flushed at
// t=300us; a component choice point offers {no fault, crash after
// flush, crash before flush}. The sampled policies only permute ties —
// they never take a non-default fault pick — so alternative 2 (the
// acked-but-lost window) is invisible to them by construction.
//
// Exit 0 iff every sampled policy misses both bugs AND the explorer
// finds both (a clean self-check means the seed rotted).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/simex.h"
#include "sim/simrace.h"
#include "sim/simulator.h"

using namespace dpdpu::sim;  // NOLINT: oracle brevity

namespace {

// --- Bug A: tie-order bug ------------------------------------------

ScenarioResult TieScenario(Simulator& sim) {
  // Each handler pair conflicts on its own object (simrace reports one
  // race per (object, key) per run, so pairwise-distinct objects are
  // what lets DPOR see every reversal): prepare/commit share the lock,
  // commit/ack the log, prepare/ack the client-visible state. The order
  // log is what the invariant judges.
  auto lock = std::make_shared<Racy<int>>("oracle.lock");
  auto log = std::make_shared<Racy<int>>("oracle.log");
  auto visible = std::make_shared<Racy<int>>("oracle.visible");
  auto order = std::make_shared<std::vector<int>>();
  sim.Schedule(100, [lock, visible, order] {  // 0: prepare
    lock->write() = 0;
    visible->write() = 0;
    order->push_back(0);
  });
  sim.Schedule(100, [lock, log, order] {  // 1: commit
    lock->write() = 1;
    log->write() = 1;
    order->push_back(1);
  });
  sim.Schedule(100, [log, visible, order] {  // 2: ack
    log->write() = 2;
    visible->write() = 2;
    order->push_back(2);
  });
  sim.Run();
  ScenarioResult r;
  if (*order == std::vector<int>{1, 2, 0}) {
    r.ok = false;
    r.failure = "acked write lost: commit ran before prepare (order 1,2,0)";
  }
  // Deliberately order-independent: the bug must surface as an
  // invariant violation, not as metric divergence.
  r.metrics = "handlers=3\n";
  return r;
}

// --- Bug B: failover-timing bug ------------------------------------

ScenarioResult FaultScenario(Simulator& sim) {
  auto acked = std::make_shared<bool>(false);
  auto flushed = std::make_shared<bool>(false);
  auto crashed = std::make_shared<bool>(false);
  auto lost = std::make_shared<bool>(false);
  // 0 = no fault, 1 = crash after the flush, 2 = crash inside the
  // ack-to-flush window.
  uint32_t pick = sim.Choose("oracle.fail_time", 0, 3);
  sim.Schedule(100 * kMicrosecond, [acked, crashed] {
    if (!*crashed) *acked = true;  // client sees the write acknowledged
  });
  sim.Schedule(300 * kMicrosecond, [flushed, crashed] {
    if (!*crashed) *flushed = true;  // WAL reaches the device
  });
  if (pick != 0) {
    SimTime crash_at = (pick == 2 ? 200 : 400) * kMicrosecond;
    sim.Schedule(crash_at, [acked, flushed, crashed, lost] {
      *crashed = true;
      if (*acked && !*flushed) *lost = true;
    });
  }
  sim.Run();
  ScenarioResult r;
  if (*lost) {
    r.ok = false;
    r.failure = "acked write lost: node failed before WAL flush";
  }
  r.metrics = std::string("flushed=") + (*flushed ? "1" : "0") + "\n";
  return r;
}

// --- Bug C: hot-object bug (multi-report DPOR) ----------------------
// Three same-timestamp handlers all conflict on ONE shared object; the
// invariant breaks only on the full reversal 2,1,0. The legacy
// one-report-per-(object,key) mode hands DPOR a single reversal branch
// per run — it flips the first pair back and forth and dead-ends
// without ever composing two reversals. Default multi-report simrace
// (every conflicting causally-unordered pair, deduped on
// (object, event-pair)) feeds the full persistent set, so the explorer
// composes reversals and reaches 2,1,0 inside the same budget.

ScenarioResult HotObjectScenario(Simulator& sim) {
  auto slot = std::make_shared<Racy<int>>("oracle.hot");
  auto order = std::make_shared<std::vector<int>>();
  for (int i = 0; i < 3; ++i) {
    sim.Schedule(100, [slot, order, i] {
      slot->write() = i;
      order->push_back(i);
    });
  }
  sim.Run();
  ScenarioResult r;
  if (*order == std::vector<int>{2, 1, 0}) {
    r.ok = false;
    r.failure = "torn update: hot object written in full reversal 2,1,0";
  }
  r.metrics = "handlers=3\n";
  return r;
}

// Runs the hot-object scenario under one simrace reporting mode and
// says whether the planted full-reversal bug surfaced.
bool HotObjectFound(bool single_report, uint64_t budget,
                    uint64_t* schedules_out) {
  ExploreOptions options;
  options.max_schedules = budget;
  options.race_is_failure = false;  // races are the branch fuel here
  options.single_report_per_key = single_report;
  Explorer ex(Scenario(HotObjectScenario), options);
  ex.Explore();
  *schedules_out = ex.stats().schedules_run;
  for (const ExploreFailure& f : ex.failures()) {
    if (f.kind == "invariant" &&
        f.detail.find("full reversal") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// --- Harness -------------------------------------------------------

struct Policy {
  const char* name;
  TieBreak policy;
  uint64_t seed;
};

constexpr Policy kSampledPolicies[] = {
    {"fifo", TieBreak::kFifo, 1},
    {"lifo", TieBreak::kLifo, 1},
    {"shuffle:7", TieBreak::kShuffle, 7},
};

// Self-check half: every sampled policy must leave the planted bug
// hidden, or the seed no longer plants what this oracle claims.
bool HiddenFromSampledPolicies(const char* label, const Scenario& scenario) {
  bool all_hidden = true;
  for (const Policy& p : kSampledPolicies) {
    Simulator sim;
    sim.SetTieBreak(p.policy, p.seed);
    ScenarioResult r = scenario(sim);
    std::printf("  %-10s %-9s : %s\n", label, p.name,
                r.ok ? "bug hidden (as planted)" : r.failure.c_str());
    all_hidden = all_hidden && r.ok;
  }
  return all_hidden;
}

// Exploration half: the smoke budget (64 schedules, matching the CI
// job) must surface the planted invariant violation.
bool FoundByExplorer(const char* label, Scenario scenario,
                     const std::string& expect_detail,
                     const std::string& expect_token) {
  ExploreOptions options;
  options.max_schedules = 64;
  // Races are the DPOR branch source here, not the planted defect.
  options.race_is_failure = false;
  Explorer ex(std::move(scenario), options);
  bool clean = ex.Explore();
  const ExploreFailure* hit = nullptr;
  for (const ExploreFailure& f : ex.failures()) {
    if (f.kind == "invariant" &&
        f.detail.find(expect_detail) != std::string::npos) {
      hit = &f;
      break;
    }
  }
  if (clean || hit == nullptr) {
    std::printf("  %-10s explorer  : MISSED the planted bug "
                "(%llu schedules)\n",
                label, (unsigned long long)ex.stats().schedules_run);
    return false;
  }
  ExploreFailure minimized = *hit;
  ex.Minimize(&minimized);
  std::printf("  %-10s explorer  : found in %llu schedules, replay %s\n",
              label, (unsigned long long)ex.stats().schedules_run,
              minimized.token.c_str());
  std::printf("%s", ex.FormatTrace(minimized).c_str());
  if (!expect_token.empty() && minimized.token != expect_token) {
    std::printf("  %-10s explorer  : minimized token %s, expected %s\n",
                label, minimized.token.c_str(), expect_token.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  std::printf("simex oracle: planted bugs the sampled policies miss\n");

  std::printf("[A] tie-order bug (breaks only on permutation 1,2,0)\n");
  bool a_hidden = HiddenFromSampledPolicies("tie-order", TieScenario);
  bool a_found =
      FoundByExplorer("tie-order", TieScenario,
                      "commit ran before prepare", /*expect_token=*/"");

  std::printf("[B] failover-timing bug (crash in the ack-to-flush window)\n");
  bool b_hidden = HiddenFromSampledPolicies("failover", FaultScenario);
  bool b_found = FoundByExplorer("failover", FaultScenario,
                                 "failed before WAL flush", "simex:1:0=2");

  std::printf("[C] hot-object bug (breaks only on full reversal 2,1,0)\n");
  constexpr uint64_t kHotBudget = 32;
  uint64_t single_schedules = 0;
  uint64_t multi_schedules = 0;
  bool c_single = HotObjectFound(/*single_report=*/true, kHotBudget,
                                 &single_schedules);
  bool c_multi = HotObjectFound(/*single_report=*/false, kHotBudget,
                                &multi_schedules);
  std::printf("  hot-object single-rpt: %s (%llu schedules)\n",
              c_single ? "found (legacy mode too strong?)"
                       : "bug hidden (as planted)",
              (unsigned long long)single_schedules);
  std::printf("  hot-object multi-rpt : %s (%llu schedules)\n",
              c_multi ? "found" : "MISSED the planted bug",
              (unsigned long long)multi_schedules);
  bool c_ok = !c_single && c_multi;

  bool ok = a_hidden && a_found && b_hidden && b_found && c_ok;
  std::printf("simex oracle: %s\n",
              ok ? "planted bugs hidden from sampling (and legacy "
                   "single-report), found by exploration"
                 : "FAILED");
  return ok ? 0 : 1;
}
