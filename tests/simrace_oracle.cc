// simrace oracle self-test: an intentionally order-dependent handler.
//
// Two causally-unordered events at the same virtual nanosecond both
// write `winner`; whichever the tie-break policy runs last wins. This
// binary exists to prove both halves of simrace end to end:
//
//  * the happens-before detector reports the write/write race (with
//    provenance chains) on stderr, and
//  * the perturbation oracle (`scripts/check_bench.py --perturb-selftest`)
//    sees the emitted metric DIFFER between DPDPU_SIM_TIEBREAK=fifo and
//    =lifo — the divergence the detector predicts.
//
// Deliberately NOT installed under build/bench: every binary there must
// be schedule-insensitive, which this one exists to violate.

#include <cstdio>

#include "sim/simrace.h"
#include "sim/simulator.h"

int main() {
  using namespace dpdpu::sim;  // NOLINT(google-build-using-namespace)
  Simulator sim;
  // Explicit non-fatal checker: the race must be reported, not abort the
  // process (the oracle's exit code should reflect the metric, and the
  // --perturb-selftest driver asserts on the stderr report instead).
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> winner("oracle.winner");
  sim.Schedule(1000, [&] { winner.write() = 1; });
  sim.Schedule(1000, [&] { winner.write() = 2; });
  sim.Run();
  sim.FinishRaceCheck();
  // Same shape as rt::EmitJsonMetric (sim-domain unit => exact-checked),
  // emitted directly to keep this binary's dependencies to sim only.
  std::printf(
      "{\"bench\":\"simrace_oracle\",\"metric\":\"last_writer\","
      "\"value\":%d,\"unit\":\"id\",\"seed\":1}\n",
      winner.read());
  return rc.race_count() > 0 ? 0 : 1;  // a clean run means the seed broke
}
