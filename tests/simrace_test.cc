// Tests for simrace, the causality-aware race detector: detection of
// same-timestamp causally-unordered conflicts, suppression via every
// happens-before source (parent edges, tokens, chains, TCP delivery
// order), the access-kind conflict matrix, tie-break policies, and the
// observation-only guarantee (enabling the checker changes no simulated
// outcome).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hw/machine.h"
#include "netsub/minitcp.h"
#include "netsub/network.h"
#include "sim/resource.h"
#include "sim/simrace.h"
#include "sim/simulator.h"

namespace dpdpu::sim {
namespace {

// Every test enables its own checker with default (non-fatal) Options:
// the explicit call overrides the Debug/env auto-enablement, whose
// fatal=true would turn an intentionally seeded race into an abort.

TEST(SimRaceTest, WriteWriteSameTimestampUnorderedIsRace) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> value("test.value");
  sim.Schedule(100, [&] { value.write() = 1; });
  sim.Schedule(100, [&] { value.write() = 2; });
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 1u);
  ASSERT_EQ(rc.races().size(), 1u);
  const RaceReport& report = rc.races()[0];
  EXPECT_EQ(report.object, "test.value");
  EXPECT_EQ(report.time, 100u);
  EXPECT_EQ(report.first.kind, AccessKind::kWrite);
  EXPECT_EQ(report.second.kind, AccessKind::kWrite);
  // Both sides carry a provenance chain (self at minimum) and the
  // human-readable report spells it out.
  ASSERT_FALSE(report.first.provenance.empty());
  ASSERT_FALSE(report.second.provenance.empty());
  EXPECT_EQ(report.first.provenance[0].second, 100u);
  std::string text = rc.FormatReport(report);
  EXPECT_NE(text.find("simrace: RACE on test.value"), std::string::npos);
  EXPECT_NE(text.find("provenance:"), std::string::npos);
}

TEST(SimRaceTest, ReadWriteSameTimestampUnorderedIsRace) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> value("test.value");
  int seen = 0;
  sim.Schedule(50, [&] { seen = value.read(); });
  sim.Schedule(50, [&] { value.write() = 7; });
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 1u);
  ASSERT_EQ(rc.races().size(), 1u);
  EXPECT_EQ(rc.races()[0].first.kind, AccessKind::kRead);
  EXPECT_EQ(rc.races()[0].second.kind, AccessKind::kWrite);
  EXPECT_EQ(seen, 0);  // FIFO: the read ran first
}

TEST(SimRaceTest, ProvenanceChainFollowsSchedulingAncestry) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> value("test.value");
  // Race at t=30 between two events with multi-hop scheduling ancestry:
  // the chains must walk back through the ancestors, newest first.
  sim.Schedule(10, [&] {
    sim.Schedule(20, [&] { value.write() = 1; });
  });
  sim.Schedule(5, [&] {
    sim.Schedule(25, [&] { value.write() = 2; });
  });
  sim.Run();
  sim.FinishRaceCheck();
  ASSERT_EQ(rc.races().size(), 1u);
  const RaceReport& report = rc.races()[0];
  // The t=5 parent executes first, so its child was inserted first and
  // FIFO tie-break runs it first.
  ASSERT_EQ(report.first.provenance.size(), 2u);
  EXPECT_EQ(report.first.provenance[0].second, 30u);  // self
  EXPECT_EQ(report.first.provenance[1].second, 5u);   // scheduling parent
  ASSERT_EQ(report.second.provenance.size(), 2u);
  EXPECT_EQ(report.second.provenance[1].second, 10u);
}

TEST(SimRaceTest, ParentEdgeOrdersSameTimestampChild) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> value("test.value");
  // The child runs at the same timestamp but was scheduled BY the
  // writer, so parent provenance orders them: not a race.
  sim.Schedule(100, [&] {
    value.write() = 1;
    sim.Schedule(0, [&] { value.write() = 2; });
  });
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 0u);
  EXPECT_GE(rc.accesses_recorded(), 2u);
}

TEST(SimRaceTest, PublishConsumeTokenOrdersSiblings) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> value("test.value");
  HbToken token;
  // Two independently scheduled events at one timestamp; the first
  // publishes a token the second consumes (queue-handoff shape), which
  // supplies the happens-before edge the scheduler cannot see.
  sim.Schedule(100, [&] {
    value.write() = 1;
    token = rc.Publish();
  });
  sim.Schedule(100, [&] {
    rc.Consume(token);
    value.write() = 2;
  });
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 0u);
}

TEST(SimRaceTest, HbChainOrdersFifoStream) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> value("test.value");
  HbChain chain;
  for (int i = 0; i < 4; ++i) {
    sim.Schedule(100, [&] {
      chain.Step();
      value.write() += 1;
    });
  }
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 0u);
  EXPECT_EQ(value.read(), 4);
}

TEST(SimRaceTest, CommutativeWritesDoNotConflict) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> counter("test.counter");
  sim.Schedule(100, [&] { counter.commute() += 1; });
  sim.Schedule(100, [&] { counter.commute() += 1; });
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 0u);
  EXPECT_EQ(counter.read(), 2);
}

TEST(SimRaceTest, CommutativeWriteConflictsWithRead) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> counter("test.counter");
  int seen = 0;
  sim.Schedule(100, [&] { counter.commute() += 1; });
  sim.Schedule(100, [&] { seen = counter.read(); });
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 1u);
  EXPECT_EQ(seen, 1);
}

TEST(SimRaceTest, DistinctObjectsKeysAndTimesDoNotConflict) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Racy<int> a("test.a");
  Racy<int> b("test.b");
  // Distinct objects at one time; same object at distinct times.
  sim.Schedule(100, [&] { a.write() = 1; });
  sim.Schedule(100, [&] { b.write() = 1; });
  sim.Schedule(200, [&] { a.write() = 2; });
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 0u);
}

TEST(SimRaceTest, ResourceGrantOrderCoversQueuedJobs) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  Resource res(&sim, "disk", 1);  // one slot: second job queues
  Racy<int> value("test.value");
  // Both completions land at the same virtual nanosecond only if the
  // service times align; regardless, the FIFO grant token must order
  // submit -> dequeue so queued completions never misreport.
  sim.Schedule(10, [&] {
    res.Submit(100, [&] { value.write() = 1; });
    res.Submit(0, [&] { value.write() = 2; });
  });
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(rc.race_count(), 0u);
  EXPECT_EQ(value.read(), 2);
}

// --------------------------------------------------------------------------
// Tie-break policies.
// --------------------------------------------------------------------------

TEST(TieBreakTest, FifoRunsTiesInInsertionOrder) {
  Simulator sim;
  sim.DisableRaceCheck();
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.Schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TieBreakTest, LifoReversesTies) {
  Simulator sim;
  sim.DisableRaceCheck();
  sim.SetTieBreak(TieBreak::kLifo);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.Schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(TieBreakTest, ShuffleIsDeterministicPerSeedAndPerturbsOrder) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    sim.DisableRaceCheck();
    sim.SetTieBreak(TieBreak::kShuffle, seed);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      sim.Schedule(100, [&order, i] { order.push_back(i); });
    }
    sim.Run();
    return order;
  };
  std::vector<int> a = run(7);
  EXPECT_EQ(a, run(7));  // same seed: identical schedule
  std::vector<int> fifo(16);
  for (int i = 0; i < 16; ++i) fifo[i] = i;
  EXPECT_NE(a, fifo);  // and it actually permutes the ties
}

TEST(TieBreakTest, CrossTimestampOrderIsPolicyIndependent) {
  for (TieBreak policy :
       {TieBreak::kFifo, TieBreak::kLifo, TieBreak::kShuffle}) {
    Simulator sim;
    sim.DisableRaceCheck();
    sim.SetTieBreak(policy, 9);
    std::vector<int> order;
    sim.Schedule(300, [&] { order.push_back(3); });
    sim.Schedule(100, [&] { order.push_back(1); });
    sim.Schedule(200, [&] { order.push_back(2); });
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
}

// --------------------------------------------------------------------------
// Observation-only: race checking must not change simulated outcomes.
// --------------------------------------------------------------------------

// A small but non-trivial workload: contended resource + periodic ticks.
struct WorkloadResult {
  SimTime end_time = 0;
  uint64_t events = 0;
  int jobs_done = 0;
  int ticks = 0;
};

WorkloadResult RunWorkload(bool race_check) {
  Simulator sim;
  if (race_check) {
    sim.EnableRaceCheck();
  } else {
    sim.DisableRaceCheck();
  }
  WorkloadResult result;
  Resource res(&sim, "ssd", 2);
  PeriodicTask sampler;
  sampler.Start(&sim, 50, [&] {
    if (++result.ticks >= 20) sampler.Cancel();
  });
  for (int i = 0; i < 8; ++i) {
    sim.Schedule(10 * i, [&res, &result, i] {
      res.Submit(25 + i, [&result] { ++result.jobs_done; });
    });
  }
  sim.Run();
  sim.FinishRaceCheck();
  result.end_time = sim.now();
  result.events = sim.events_executed();
  return result;
}

TEST(SimRaceTest, CheckerIsObservationOnly) {
  WorkloadResult off = RunWorkload(false);
  WorkloadResult on = RunWorkload(true);
  EXPECT_EQ(on.end_time, off.end_time);
  EXPECT_EQ(on.events, off.events);
  EXPECT_EQ(on.jobs_done, off.jobs_done);
  EXPECT_EQ(on.ticks, off.ticks);
}

TEST(SimRaceDeathTest, FatalOptionAbortsWithReport) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator sim;
        RaceChecker::Options options;
        options.fatal = true;
        sim.EnableRaceCheck(options);
        Racy<int> value("fatal.value");
        sim.Schedule(1, [&] { value.write() = 1; });
        sim.Schedule(1, [&] { value.write() = 2; });
        sim.Run();
        sim.FinishRaceCheck();
      },
      "simrace: RACE on fatal.value");
}

// --------------------------------------------------------------------------
// End-to-end: an instrumented TCP transfer is race-clean (the
// ack-before-deliver and in-order-delivery edges must cover every
// same-timestamp collision between data path and segment processing).
// --------------------------------------------------------------------------

TEST(SimRaceTcpTest, BulkTransferIsRaceClean) {
  Simulator sim;
  RaceChecker& rc = sim.EnableRaceCheck();
  auto nic_a = std::make_unique<hw::NicPort>(&sim, "a",
                                             hw::NicSpec{100e9, 2000, 4096});
  auto nic_b = std::make_unique<hw::NicPort>(&sim, "b",
                                             hw::NicSpec{100e9, 2000, 4096});
  netsub::Network net(&sim);
  netsub::TcpStack stack_a(&sim, &net, 1);
  netsub::TcpStack stack_b(&sim, &net, 2);
  net.Attach(1, nic_a.get(),
             [&](netsub::Packet p) { stack_a.OnPacket(std::move(p)); });
  net.Attach(2, nic_b.get(),
             [&](netsub::Packet p) { stack_b.OnPacket(std::move(p)); });
  size_t received = 0;
  stack_b.Listen(80, [&](netsub::TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan data) { received += data.size(); });
  });
  netsub::TcpConnection* client = stack_a.Connect(2, 80);
  std::string payload(4096, 'x');
  Buffer chunk(payload);
  for (int i = 0; i < 64; ++i) client->Send(chunk.span());
  sim.Run();
  sim.FinishRaceCheck();
  EXPECT_EQ(received, 64u * 4096u);
  EXPECT_GT(rc.accesses_recorded(), 0u);  // instrumentation was live
  EXPECT_EQ(rc.race_count(), 0u);
}

}  // namespace
}  // namespace dpdpu::sim
