// Tests for the storage substrate: block device (with crash injection),
// journal replay semantics, DpuFs correctness and crash recovery, and the
// CLOCK page cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fssub/block_device.h"
#include "fssub/dpufs.h"
#include "fssub/journal.h"
#include "fssub/page_cache.h"
#include "kern/textgen.h"

namespace dpdpu::fssub {
namespace {

constexpr uint32_t kBs = 4096;

// --------------------------------------------------------------------------
// MemBlockDevice.
// --------------------------------------------------------------------------

TEST(BlockDeviceTest, ReadBackWrites) {
  MemBlockDevice dev(kBs, 16);
  Buffer data(size_t{kBs});
  for (size_t i = 0; i < kBs; ++i) data[i] = uint8_t(i);
  ASSERT_TRUE(dev.WriteBlock(3, data.span()).ok());
  Buffer out(size_t{kBs});
  ASSERT_TRUE(dev.ReadBlock(3, out.mutable_span()).ok());
  EXPECT_EQ(out, data);
}

TEST(BlockDeviceTest, BoundsAndSizeChecks) {
  MemBlockDevice dev(kBs, 4);
  Buffer data(size_t{kBs});
  EXPECT_TRUE(dev.WriteBlock(4, data.span()).IsOutOfRange());
  Buffer small(size_t{100});
  EXPECT_TRUE(dev.WriteBlock(0, small.span()).IsInvalidArgument());
  Buffer out(size_t{100});
  EXPECT_TRUE(dev.ReadBlock(0, out.mutable_span()).IsInvalidArgument());
}

TEST(BlockDeviceTest, WriteLimitSilentlyDrops) {
  MemBlockDevice dev(kBs, 4);
  Buffer ones(size_t{kBs});
  for (size_t i = 0; i < kBs; ++i) ones[i] = 1;
  dev.SetWriteLimit(1);
  ASSERT_TRUE(dev.WriteBlock(0, ones.span()).ok());
  ASSERT_TRUE(dev.WriteBlock(1, ones.span()).ok());  // dropped, still "ok"
  EXPECT_EQ(dev.dropped_writes(), 1u);
  Buffer out(size_t{kBs});
  ASSERT_TRUE(dev.ReadBlock(1, out.mutable_span()).ok());
  EXPECT_EQ(out[0], 0);  // the drop left old contents
}

// --------------------------------------------------------------------------
// Journal.
// --------------------------------------------------------------------------

TEST(JournalTest, AppendAndReplay) {
  MemBlockDevice dev(kBs, 64);
  Journal j(&dev, 0, 64);
  ASSERT_TRUE(j.Reset().ok());
  ASSERT_TRUE(j.Append(1, Buffer("alpha").span()).ok());
  ASSERT_TRUE(j.Append(2, Buffer("beta").span()).ok());

  Journal reader(&dev, 0, 64);
  std::vector<std::string> seen;
  auto n = reader.Replay(1, [&](uint64_t seq, ByteSpan p) {
    seen.push_back(std::to_string(seq) + ":" +
                   std::string(reinterpret_cast<const char*>(p.data()),
                               p.size()));
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(seen, (std::vector<std::string>{"1:alpha", "2:beta"}));
}

TEST(JournalTest, ReplayStopsAtTornWrite) {
  MemBlockDevice dev(kBs, 64);
  Journal j(&dev, 0, 64);
  ASSERT_TRUE(j.Reset().ok());
  ASSERT_TRUE(j.Append(1, Buffer("first").span()).ok());
  // Crash during the second append: its block write is dropped.
  dev.SetWriteLimit(0);
  ASSERT_TRUE(j.Append(2, Buffer("second").span()).ok());
  dev.ClearWriteLimit();

  Journal reader(&dev, 0, 64);
  int replayed = 0;
  auto n = reader.Replay(1, [&](uint64_t, ByteSpan) { ++replayed; });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST(JournalTest, StaleRecordsFencedBySequence) {
  MemBlockDevice dev(kBs, 64);
  Journal j(&dev, 0, 64);
  ASSERT_TRUE(j.Reset().ok());
  // Epoch 1: records 1..3.
  for (uint64_t s = 1; s <= 3; ++s) {
    ASSERT_TRUE(j.Append(s, Buffer("old").span()).ok());
  }
  // Checkpoint: reset, then epoch 2 writes one shorter record (4).
  ASSERT_TRUE(j.Reset().ok());
  ASSERT_TRUE(j.Append(4, Buffer("new").span()).ok());

  Journal reader(&dev, 0, 64);
  std::vector<uint64_t> seqs;
  auto n = reader.Replay(4, [&](uint64_t seq, ByteSpan) {
    seqs.push_back(seq);
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(seqs, (std::vector<uint64_t>{4}));
}

TEST(JournalTest, FullJournalRejectsAppend) {
  MemBlockDevice dev(kBs, 8);
  Journal j(&dev, 0, 1);  // one block = 4096 bytes
  ASSERT_TRUE(j.Reset().ok());
  Buffer big(size_t{3000});
  ASSERT_TRUE(j.Append(1, big.span()).ok());
  EXPECT_TRUE(j.Append(2, big.span()).IsResourceExhausted());
}

// --------------------------------------------------------------------------
// DpuFs basics.
// --------------------------------------------------------------------------

std::unique_ptr<MemBlockDevice> MakeDevice(uint64_t blocks = 4096) {
  return std::make_unique<MemBlockDevice>(kBs, blocks);
}

TEST(DpuFsTest, FormatCreatesEmptyFs) {
  auto dev = MakeDevice();
  auto fs = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs.ok()) << fs.status();
  EXPECT_TRUE((*fs)->List().empty());
  EXPECT_GT((*fs)->free_blocks(), 0u);
}

TEST(DpuFsTest, CreateWriteRead) {
  auto dev = MakeDevice();
  auto fs_or = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs_or.ok());
  DpuFs& fs = **fs_or;

  auto file = fs.Create("table.db");
  ASSERT_TRUE(file.ok());
  Buffer data = kern::GenerateText(100000, {});
  ASSERT_TRUE(fs.Write(*file, 0, data.span()).ok());
  EXPECT_EQ(*fs.FileSize(*file), data.size());

  auto back = fs.Read(*file, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(DpuFsTest, SparseOffsetsAndPartialBlocks) {
  auto dev = MakeDevice();
  auto fs_or = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs_or.ok());
  DpuFs& fs = **fs_or;
  auto file = fs.Create("f");
  ASSERT_TRUE(file.ok());

  // Unaligned write in the middle of block 2.
  Buffer payload("unaligned payload");
  ASSERT_TRUE(fs.Write(*file, 2 * kBs + 77, payload.span()).ok());
  EXPECT_EQ(*fs.FileSize(*file), 2 * kBs + 77 + payload.size());

  auto back = fs.Read(*file, 2 * kBs + 77, payload.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), "unaligned payload");

  // Overwrite a few bytes inside the same block.
  ASSERT_TRUE(fs.Write(*file, 2 * kBs + 79, Buffer("XY").span()).ok());
  back = fs.Read(*file, 2 * kBs + 77, payload.size());
  EXPECT_EQ(back->ToString(), "unXYigned payload");
}

TEST(DpuFsTest, ReadPastEofIsShort) {
  auto dev = MakeDevice();
  auto fs_or = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs_or.ok());
  DpuFs& fs = **fs_or;
  auto file = fs.Create("f");
  ASSERT_TRUE(fs.Write(*file, 0, Buffer("12345").span()).ok());
  auto back = fs.Read(*file, 3, 100);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), "45");
  back = fs.Read(*file, 10, 10);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(DpuFsTest, NamespaceOperations) {
  auto dev = MakeDevice();
  auto fs_or = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs_or.ok());
  DpuFs& fs = **fs_or;

  ASSERT_TRUE(fs.Create("a").ok());
  ASSERT_TRUE(fs.Create("b").ok());
  EXPECT_TRUE(fs.Create("a").status().IsAlreadyExists());
  EXPECT_TRUE(fs.Lookup("a").ok());
  EXPECT_TRUE(fs.Lookup("c").status().IsNotFound());
  EXPECT_EQ(fs.List().size(), 2u);
  ASSERT_TRUE(fs.Delete("a").ok());
  EXPECT_TRUE(fs.Lookup("a").status().IsNotFound());
  EXPECT_TRUE(fs.Delete("a").IsNotFound());
  EXPECT_EQ(fs.List().size(), 1u);
}

TEST(DpuFsTest, DeleteFreesBlocks) {
  auto dev = MakeDevice(1024);
  auto fs_or = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs_or.ok());
  DpuFs& fs = **fs_or;
  uint64_t initial_free = fs.free_blocks();

  auto file = fs.Create("big");
  Buffer data = kern::GenerateRandomBytes(50 * kBs, 3);
  ASSERT_TRUE(fs.Write(*file, 0, data.span()).ok());
  EXPECT_EQ(fs.free_blocks(), initial_free - 50);
  ASSERT_TRUE(fs.Delete("big").ok());
  EXPECT_EQ(fs.free_blocks(), initial_free);
}

TEST(DpuFsTest, OutOfSpaceFailsCleanly) {
  auto dev = MakeDevice(900);  // small device
  auto fs_or = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs_or.ok());
  DpuFs& fs = **fs_or;
  auto file = fs.Create("huge");
  Buffer chunk = kern::GenerateRandomBytes(64 * kBs, 5);
  Status last = Status::Ok();
  for (int i = 0; i < 100 && last.ok(); ++i) {
    last = fs.Write(*file, uint64_t(i) * chunk.size(), chunk.span());
  }
  EXPECT_TRUE(last.IsResourceExhausted());
  // The failed write must not have leaked its partial allocation beyond
  // what the extents claim.
  auto extents = fs.FileExtents(*file);
  ASSERT_TRUE(extents.ok());
}

TEST(DpuFsTest, ExtentsAreCoalesced) {
  auto dev = MakeDevice();
  auto fs_or = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs_or.ok());
  DpuFs& fs = **fs_or;
  auto file = fs.Create("seq");
  // Sequential appends on an empty FS should stay contiguous.
  Buffer chunk = kern::GenerateRandomBytes(kBs, 1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs.Write(*file, uint64_t(i) * kBs, chunk.span()).ok());
  }
  auto extents = fs.FileExtents(*file);
  ASSERT_TRUE(extents.ok());
  EXPECT_EQ(extents->size(), 1u);
  EXPECT_EQ((*extents)[0].length, 20u);
}

TEST(DpuFsTest, ManyFilesRoundTrip) {
  auto dev = MakeDevice(8192);
  auto fs_or = DpuFs::Format(dev.get());
  ASSERT_TRUE(fs_or.ok());
  DpuFs& fs = **fs_or;
  std::map<std::string, Buffer> contents;
  Pcg32 rng(9);
  for (int i = 0; i < 50; ++i) {
    std::string name = "file" + std::to_string(i);
    auto file = fs.Create(name);
    ASSERT_TRUE(file.ok());
    Buffer data =
        kern::GenerateRandomBytes(100 + rng.NextBounded(40000), i + 1);
    ASSERT_TRUE(fs.Write(*file, 0, data.span()).ok());
    contents[name] = std::move(data);
  }
  for (const auto& [name, data] : contents) {
    auto file = fs.Lookup(name);
    ASSERT_TRUE(file.ok());
    auto back = fs.Read(*file, 0, data.size());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data) << name;
  }
}

// --------------------------------------------------------------------------
// DpuFs mount and crash recovery.
// --------------------------------------------------------------------------

TEST(DpuFsRecoveryTest, CleanRemountPreservesEverything) {
  auto dev = MakeDevice();
  Buffer data = kern::GenerateText(80000, {});
  {
    auto fs_or = DpuFs::Format(dev.get());
    ASSERT_TRUE(fs_or.ok());
    DpuFs& fs = **fs_or;
    auto file = fs.Create("persistent");
    ASSERT_TRUE(fs.Write(*file, 0, data.span()).ok());
    ASSERT_TRUE(fs.Checkpoint().ok());
  }
  auto fs_or = DpuFs::Mount(dev.get());
  ASSERT_TRUE(fs_or.ok()) << fs_or.status();
  DpuFs& fs = **fs_or;
  auto file = fs.Lookup("persistent");
  ASSERT_TRUE(file.ok());
  auto back = fs.Read(*file, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(DpuFsRecoveryTest, JournaledOpsSurviveWithoutCheckpoint) {
  auto dev = MakeDevice();
  {
    auto fs_or = DpuFs::Format(dev.get());
    ASSERT_TRUE(fs_or.ok());
    DpuFs& fs = **fs_or;
    ASSERT_TRUE(fs.Create("a").ok());
    ASSERT_TRUE(fs.Create("b").ok());
    ASSERT_TRUE(fs.Delete("a").ok());
    auto f = fs.Create("c");
    ASSERT_TRUE(fs.Write(*f, 0, Buffer("journaled!").span()).ok());
    // No checkpoint: metadata lives only in the journal.
  }
  auto fs_or = DpuFs::Mount(dev.get());
  ASSERT_TRUE(fs_or.ok()) << fs_or.status();
  DpuFs& fs = **fs_or;
  EXPECT_GT(fs.stats().replayed_records, 0u);
  EXPECT_TRUE(fs.Lookup("a").status().IsNotFound());
  EXPECT_TRUE(fs.Lookup("b").ok());
  auto f = fs.Lookup("c");
  ASSERT_TRUE(f.ok());
  auto back = fs.Read(*f, 0, 10);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), "journaled!");
}

TEST(DpuFsRecoveryTest, TornJournalWriteLosesOnlyTail) {
  auto dev = MakeDevice();
  {
    auto fs_or = DpuFs::Format(dev.get());
    ASSERT_TRUE(fs_or.ok());
    DpuFs& fs = **fs_or;
    ASSERT_TRUE(fs.Create("committed").ok());
    // Crash mid-way through the next operation's journal write.
    dev->SetWriteLimit(0);
    (void)fs.Create("lost");
    dev->ClearWriteLimit();
  }
  auto fs_or = DpuFs::Mount(dev.get());
  ASSERT_TRUE(fs_or.ok()) << fs_or.status();
  DpuFs& fs = **fs_or;
  EXPECT_TRUE(fs.Lookup("committed").ok());
  EXPECT_TRUE(fs.Lookup("lost").status().IsNotFound());
}

// Property sweep: crash after K device writes, for K across the whole
// workload; every crash point must mount cleanly and contain a prefix of
// the committed operations.
class CrashPointSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointSweep, MountsAndHoldsPrefix) {
  const int crash_after = GetParam();
  auto dev = MakeDevice();
  {
    auto fs_or = DpuFs::Format(dev.get());
    ASSERT_TRUE(fs_or.ok());
    DpuFs& fs = **fs_or;
    dev->SetWriteLimit(crash_after);
    // A workload of creates, writes, deletes; ignore failures after the
    // simulated power cut (writes are silently dropped, not errored).
    for (int i = 0; i < 8; ++i) {
      auto f = fs.Create("f" + std::to_string(i));
      if (f.ok()) {
        Buffer data = kern::GenerateRandomBytes(3000 + i * 1000, i);
        (void)fs.Write(*f, 0, data.span());
      }
      if (i % 3 == 2) (void)fs.Delete("f" + std::to_string(i - 1));
    }
    dev->ClearWriteLimit();
  }
  auto fs_or = DpuFs::Mount(dev.get());
  ASSERT_TRUE(fs_or.ok()) << "crash_after=" << crash_after << ": "
                          << fs_or.status();
  DpuFs& fs = **fs_or;
  // Structural invariants: every directory entry resolves, extents are
  // within the device, sizes are consistent with allocations.
  for (const std::string& name : fs.List()) {
    auto f = fs.Lookup(name);
    ASSERT_TRUE(f.ok());
    auto size = fs.FileSize(*f);
    ASSERT_TRUE(size.ok());
    auto extents = fs.FileExtents(*f);
    ASSERT_TRUE(extents.ok());
    uint64_t blocks = 0;
    for (const Extent& e : *extents) {
      EXPECT_GE(e.start, fs.data_blocks() > 0 ? 1u : 0u);
      blocks += e.length;
    }
    EXPECT_GE(blocks * kBs, *size);
    // Reads must not crash or report corruption beyond size.
    auto back = fs.Read(*f, 0, static_cast<size_t>(*size));
    EXPECT_TRUE(back.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashPointSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 17, 23, 30, 40,
                                           55, 75, 100, 140, 200));

// --------------------------------------------------------------------------
// PageCache.
// --------------------------------------------------------------------------

Buffer PageOf(uint8_t fill, size_t size = 4096) {
  Buffer b(size);
  for (size_t i = 0; i < size; ++i) b[i] = fill;
  return b;
}

TEST(PageCacheTest, HitAndMiss) {
  PageCache cache(64 * 1024);
  EXPECT_EQ(cache.Get({1, 0}), nullptr);
  cache.Put({1, 0}, PageOf(7));
  const Buffer* page = cache.Get({1, 0});
  ASSERT_NE(page, nullptr);
  EXPECT_EQ((*page)[0], 7);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PageCacheTest, EvictsWhenOverBudget) {
  PageCache cache(4 * 4096);
  for (uint64_t p = 0; p < 8; ++p) cache.Put({1, p}, PageOf(uint8_t(p)));
  EXPECT_LE(cache.used_bytes(), 4u * 4096);
  EXPECT_EQ(cache.page_count(), 4u);
  EXPECT_EQ(cache.stats().evictions, 4u);
}

TEST(PageCacheTest, ClockPrefersKeepingReferencedPages) {
  PageCache cache(4 * 4096);
  for (uint64_t p = 0; p < 4; ++p) cache.Put({1, p}, PageOf(uint8_t(p)));
  // Touch page 0 repeatedly; insert new pages to force evictions.
  for (uint64_t p = 4; p < 12; ++p) {
    ASSERT_NE(cache.Get({1, 0}), nullptr) << "hot page evicted at p=" << p;
    cache.Put({1, p}, PageOf(uint8_t(p)));
  }
  EXPECT_NE(cache.Get({1, 0}), nullptr);
}

TEST(PageCacheTest, ReplaceUpdatesBytes) {
  PageCache cache(64 * 1024);
  cache.Put({1, 0}, PageOf(1, 4096));
  cache.Put({1, 0}, PageOf(2, 8192));
  EXPECT_EQ(cache.used_bytes(), 8192u);
  const Buffer* page = cache.Get({1, 0});
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->size(), 8192u);
  EXPECT_EQ((*page)[0], 2);
}

TEST(PageCacheTest, EraseAndEraseFile) {
  PageCache cache(1 << 20);
  cache.Put({1, 0}, PageOf(1));
  cache.Put({1, 1}, PageOf(2));
  cache.Put({2, 0}, PageOf(3));
  cache.Erase({1, 0});
  EXPECT_EQ(cache.Get({1, 0}), nullptr);
  EXPECT_NE(cache.Get({1, 1}), nullptr);
  cache.EraseFile(1);
  EXPECT_EQ(cache.Get({1, 1}), nullptr);
  EXPECT_NE(cache.Get({2, 0}), nullptr);
  EXPECT_EQ(cache.page_count(), 1u);
}

TEST(PageCacheTest, ZeroCapacityNeverStores) {
  PageCache cache(0);
  cache.Put({1, 0}, PageOf(1));
  EXPECT_EQ(cache.Get({1, 0}), nullptr);
  EXPECT_EQ(cache.page_count(), 0u);
}

TEST(PageCacheTest, ResizeShrinksAndGrows) {
  PageCache cache(8 * 4096);
  for (uint64_t p = 0; p < 8; ++p) cache.Put({1, p}, PageOf(uint8_t(p)));
  EXPECT_EQ(cache.page_count(), 8u);
  cache.Resize(2 * 4096);
  EXPECT_LE(cache.page_count(), 2u);
  cache.Resize(8 * 4096);
  for (uint64_t p = 10; p < 16; ++p) cache.Put({1, p}, PageOf(uint8_t(p)));
  EXPECT_GT(cache.page_count(), 2u);
}

TEST(PageCacheTest, ResidentPagesSortedRegardlessOfEvictionHistory) {
  // Two caches reach the same resident set along different histories:
  // the clock arena's physical order differs (swap-with-back erase), but
  // the sorted listing must be identical — that listing is the only
  // form cache contents may take in logs or metrics (simlint R2).
  PageCache a(4 * 4096);
  for (uint64_t p = 0; p < 4; ++p) a.Put({2, p}, PageOf(uint8_t(p)));
  a.Erase({2, 1});
  a.Put({1, 9}, PageOf(9));

  PageCache b(4 * 4096);
  b.Put({1, 9}, PageOf(9));
  for (uint64_t p = 0; p < 4; ++p) {
    if (p != 1) b.Put({2, p}, PageOf(uint8_t(p)));
  }

  std::vector<PageKey> expected = {{1, 9}, {2, 0}, {2, 2}, {2, 3}};
  EXPECT_EQ(a.ResidentPages(), expected);
  EXPECT_EQ(b.ResidentPages(), expected);
}

TEST(PageCacheTest, HitRateOnZipfWorkload) {
  PageCache cache(100 * 4096);  // caches 100 of 1000 pages
  Pcg32 rng(5);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 20000; ++i) {
    PageKey key{1, zipf.Next(rng)};
    if (cache.Get(key) == nullptr) {
      cache.Put(key, PageOf(uint8_t(key.page)));
    }
  }
  // Zipf 0.99 with 10% cache should hit well over half the accesses.
  EXPECT_GT(cache.stats().HitRate(), 0.5);
}

}  // namespace
}  // namespace dpdpu::fssub
