// Tests for DFI-style flows over RDMA (Section 6): batching writer,
// slot-recycling reader, both issue paths, and host-cost comparison.

#include <gtest/gtest.h>

#include "core/network/rdma_flow.h"
#include "core/network/network_engine.h"
#include "core/runtime/metrics.h"
#include "kern/textgen.h"

namespace dpdpu::ne {
namespace {

struct FlowEnv {
  explicit FlowEnv(RdmaPath path) : net(&sim) {
    a_server = std::make_unique<hw::Server>(&sim,
                                            hw::DefaultServerSpec("a"));
    b_server = std::make_unique<hw::Server>(&sim,
                                            hw::DefaultServerSpec("b"));
    a = std::make_unique<NetworkEngine>(a_server.get(), &net, 1,
                                        NetworkEngineOptions{});
    b = std::make_unique<NetworkEngine>(b_server.get(), &net, 2,
                                        NetworkEngineOptions{});
    net.Attach(1, &a_server->nic_tx(),
               [this](netsub::Packet p) { a->OnPacket(std::move(p)); });
    net.Attach(2, &b_server->nic_tx(),
               [this](netsub::Packet p) { b->OnPacket(std::move(p)); });
    qp_a = a->rdma_nic().CreateQueuePair();
    qp_b = b->rdma_nic().CreateQueuePair();
    netsub::ConnectQueuePairs(qp_a, qp_b);
    writer_ep = a->CreateRdmaEndpoint(path, qp_a);
    reader_ep = b->CreateRdmaEndpoint(path, qp_b);
  }

  sim::Simulator sim;
  netsub::Network net;
  std::unique_ptr<hw::Server> a_server, b_server;
  std::unique_ptr<NetworkEngine> a, b;
  netsub::QueuePair* qp_a;
  netsub::QueuePair* qp_b;
  std::unique_ptr<RdmaEndpoint> writer_ep, reader_ep;
};

class RdmaFlowPathTest : public ::testing::TestWithParam<RdmaPath> {};

TEST_P(RdmaFlowPathTest, RecordsRoundTrip) {
  FlowEnv env(GetParam());
  std::vector<std::string> got;
  RdmaFlowReader reader(env.reader_ep.get(), &env.b->rdma_nic(),
                        /*slots=*/16, /*slot_bytes=*/128 * 1024,
                        [&](ByteSpan r) {
                          got.emplace_back(
                              reinterpret_cast<const char*>(r.data()),
                              r.size());
                        });
  env.sim.Run();  // allow recv posting to land

  RdmaFlowWriter writer(env.writer_ep.get(), /*batch_bytes=*/1024);
  std::vector<std::string> sent;
  for (int i = 0; i < 300; ++i) {
    sent.push_back("rec-" + std::to_string(i * 31));
    ASSERT_TRUE(writer.Push(Buffer(sent.back()).span()).ok());
  }
  ASSERT_TRUE(writer.Flush().ok());
  env.sim.Run();

  EXPECT_EQ(got, sent);
  EXPECT_EQ(writer.records_pushed(), 300u);
  EXPECT_GT(writer.batches_sent(), 1u);
  EXPECT_EQ(reader.records_received(), 300u);
  EXPECT_EQ(reader.batches_received(), writer.batches_sent());
}

// Pushes from scheduled events — the context where concurrent pushes
// can happen, and what simscope --xcheck needs to observe the writer's
// race annotation dynamically.
TEST_P(RdmaFlowPathTest, EventDrivenPushesRoundTrip) {
  FlowEnv env(GetParam());
  std::vector<std::string> got;
  RdmaFlowReader reader(env.reader_ep.get(), &env.b->rdma_nic(),
                        /*slots=*/16, /*slot_bytes=*/128 * 1024,
                        [&](ByteSpan r) {
                          got.emplace_back(
                              reinterpret_cast<const char*>(r.data()),
                              r.size());
                        });
  env.sim.Run();  // allow recv posting to land

  RdmaFlowWriter writer(env.writer_ep.get(), /*batch_bytes=*/256);
  for (int i = 0; i < 8; ++i) {
    // Two pushes per timestamp: commutative batching, any order.
    env.sim.Schedule(1000 * (i / 2), [&writer, i] {
      std::string rec = "evt-" + std::to_string(i);
      EXPECT_TRUE(writer.Push(Buffer(rec).span()).ok());
    });
  }
  env.sim.Schedule(10000, [&writer] { EXPECT_TRUE(writer.Flush().ok()); });
  env.sim.Run();
  EXPECT_EQ(got.size(), 8u);
  EXPECT_EQ(writer.records_pushed(), 8u);
}

INSTANTIATE_TEST_SUITE_P(BothPaths, RdmaFlowPathTest,
                         ::testing::Values(RdmaPath::kNative,
                                           RdmaPath::kDpuOffloaded));

TEST(RdmaFlowTest, SlotRecyclingHandlesManyBatches) {
  FlowEnv env(RdmaPath::kDpuOffloaded);
  uint64_t received_bytes = 0;
  RdmaFlowReader reader(env.reader_ep.get(), &env.b->rdma_nic(),
                        /*slots=*/4, /*slot_bytes=*/8 * 1024,
                        [&](ByteSpan r) { received_bytes += r.size(); });
  env.sim.Run();

  RdmaFlowWriter writer(env.writer_ep.get(), /*batch_bytes=*/4 * 1024);
  Buffer record = kern::GenerateRandomBytes(1000, 5);
  constexpr int kRecords = 200;  // 50 batches through 4 slots
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(writer.Push(record.span()).ok());
    if (i % 10 == 9) env.sim.Run();  // interleave so slots recycle
  }
  ASSERT_TRUE(writer.Flush().ok());
  env.sim.Run();
  EXPECT_EQ(reader.records_received(), uint64_t(kRecords));
  EXPECT_EQ(received_bytes, uint64_t(kRecords) * record.size());
}

TEST(RdmaFlowTest, OffloadedPathCutsSenderHostCost) {
  auto run = [](RdmaPath path) {
    FlowEnv env(path);
    RdmaFlowReader reader(env.reader_ep.get(), &env.b->rdma_nic(), 32,
                          128 * 1024, [](ByteSpan) {});
    env.sim.Run();
    Buffer record = kern::GenerateRandomBytes(512, 1);
    rt::UtilizationProbe probe(env.a_server.get());
    probe.Start();
    RdmaFlowWriter writer(env.writer_ep.get(), 16 * 1024);
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(writer.Push(record.span()).ok());
    }
    EXPECT_TRUE(writer.Flush().ok());
    env.sim.Run();
    probe.Stop();
    EXPECT_EQ(reader.records_received(), 2000u);
    return probe.host_cores() * double(probe.window_ns());
  };
  double native_ns = run(RdmaPath::kNative);
  double offloaded_ns = run(RdmaPath::kDpuOffloaded);
  EXPECT_GT(native_ns, offloaded_ns);
}

TEST(RdmaFlowTest, LargeRecordsSpanSlotCapacity) {
  FlowEnv env(RdmaPath::kDpuOffloaded);
  std::vector<size_t> sizes;
  RdmaFlowReader reader(env.reader_ep.get(), &env.b->rdma_nic(), 8,
                        256 * 1024,
                        [&](ByteSpan r) { sizes.push_back(r.size()); });
  env.sim.Run();
  RdmaFlowWriter writer(env.writer_ep.get(), 32 * 1024);
  Buffer big = kern::GenerateRandomBytes(100 * 1024, 3);
  ASSERT_TRUE(writer.Push(big.span()).ok());  // > batch: flushes alone
  ASSERT_TRUE(writer.Push(Buffer("small").span()).ok());
  ASSERT_TRUE(writer.Flush().ok());
  env.sim.Run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 100u * 1024);
  EXPECT_EQ(sizes[1], 5u);
}

}  // namespace
}  // namespace dpdpu::ne
