// Tests for the network substrate: lock-free rings (exercised with real
// threads), the fabric with loss injection, MiniTCP (handshake, bulk
// transfer, loss recovery, flow control), and RDMA verbs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hw/machine.h"
#include "kern/textgen.h"
#include "netsub/minitcp.h"
#include "netsub/network.h"
#include "netsub/rdma.h"
#include "netsub/ring.h"

namespace dpdpu::netsub {
namespace {

// --------------------------------------------------------------------------
// SpscRing.
// --------------------------------------------------------------------------

TEST(SpscRingTest, PushPopSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  int v;
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingTest, FullRejectsPush) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  int v;
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_TRUE(ring.TryPush(99));
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 7);
}

TEST(SpscRingTest, MinimalCapacityTwoFullLifecycle) {
  // Capacity 2 is the smallest legal ring (power of two, >= 2); every
  // boundary is one op away: empty -> one-below-full -> full -> wrap.
  SpscRing<int> ring(2);
  EXPECT_EQ(ring.capacity(), 2u);
  EXPECT_TRUE(ring.empty_approx());

  int v = -1;
  EXPECT_FALSE(ring.TryPop(&v));  // pop from empty
  EXPECT_TRUE(ring.TryPush(10));
  EXPECT_EQ(ring.size_approx(), 1u);  // occupancy == capacity - 1
  EXPECT_TRUE(ring.TryPush(11));
  EXPECT_EQ(ring.size_approx(), 2u);
  EXPECT_FALSE(ring.TryPush(12));  // push into full

  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(ring.TryPush(12));  // freed slot is immediately reusable
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 11);
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 12);
  EXPECT_TRUE(ring.empty_approx());
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingTest, WraparoundManyLaps) {
  // Cursors are free-running; drive them far past capacity so the masked
  // index laps the storage repeatedly while occupancy oscillates across
  // the empty/full boundaries.
  SpscRing<int> ring(4);
  int next = 0;
  int expect = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    while (ring.TryPush(next)) ++next;  // fill to full
    EXPECT_EQ(ring.size_approx(), 4u);
    int v;
    while (ring.TryPop(&v)) {  // drain to empty
      ASSERT_EQ(v, expect);
      ++expect;
    }
    EXPECT_TRUE(ring.empty_approx());
  }
  EXPECT_EQ(next, 4000);
  EXPECT_EQ(expect, 4000);
}

TEST(SpscRingTest, OccupancyOneBelowFullAcceptsExactlyOne) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(ring.TryPush(i));
  EXPECT_EQ(ring.size_approx(), 7u);  // capacity - 1
  EXPECT_TRUE(ring.TryPush(7));       // the single remaining slot
  EXPECT_FALSE(ring.TryPush(8));
  EXPECT_EQ(ring.size_approx(), 8u);
}

TEST(SpscRingTest, TwoThreadsTransferEverythingInOrder) {
  constexpr int kItems = 200000;
  SpscRing<int> ring(1024);
  std::vector<int> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    int v;
    while (received.size() < kItems) {
      if (ring.TryPop(&v)) received.push_back(v);
    }
  });
  for (int i = 0; i < kItems; ++i) {
    while (!ring.TryPush(i)) {
    }
  }
  consumer.join();

  ASSERT_EQ(received.size(), size_t(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
}

TEST(SpscRingTest, TwoThreadStressTinyRingCrossesBoundariesConstantly) {
  // TSan target: with capacity 4, the producer and consumer trade the
  // full/empty boundary hundreds of thousands of times, so any missing
  // acquire/release pairing on the cursors or an unsynchronized slot
  // access shows up as a reported race. The consumer also polls the
  // approximate observers concurrently, which must be race-free reads.
  constexpr int kItems = 100000;
  SpscRing<int> ring(4);
  uint64_t checksum = 0;

  std::thread consumer([&] {
    int v;
    int got = 0;
    int last = -1;
    while (got < kItems) {
      if (ring.TryPop(&v)) {
        ASSERT_EQ(v, last + 1);  // strict FIFO under contention
        last = v;
        checksum += uint64_t(v);
        ++got;
      } else {
        // Yield instead of hard-spinning: on single-core runners a
        // blocked spinner otherwise burns its whole timeslice before
        // the peer can make the ring non-empty/non-full again.
        std::this_thread::yield();
      }
      // Concurrent observer: must be a race-free read and never exceed
      // the capacity even while the producer is mid-publish.
      ASSERT_LE(ring.size_approx(), 4u);
    }
  });
  for (int i = 0; i < kItems; ++i) {
    while (!ring.TryPush(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();

  EXPECT_EQ(checksum, uint64_t(kItems) * (kItems - 1) / 2);
  EXPECT_TRUE(ring.empty_approx());
}

// --------------------------------------------------------------------------
// MpmcRing.
// --------------------------------------------------------------------------

TEST(MpmcRingTest, SingleThreadBasics) {
  MpmcRing<int> ring(4);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_TRUE(ring.TryPush(3));
  EXPECT_TRUE(ring.TryPush(4));
  EXPECT_FALSE(ring.TryPush(5));
  int v;
  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(MpmcRingTest, MinimalCapacityTwoFullLifecycle) {
  MpmcRing<int> ring(2);
  EXPECT_EQ(ring.capacity(), 2u);
  int v = -1;
  EXPECT_FALSE(ring.TryPop(&v));  // pop from empty
  EXPECT_TRUE(ring.TryPush(10));
  EXPECT_TRUE(ring.TryPush(11));
  EXPECT_FALSE(ring.TryPush(12));  // push into full
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(ring.TryPush(12));  // sequence numbers recycle the slot
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 11);
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 12);
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(MpmcRingTest, WraparoundManyLaps) {
  // Vyukov slot sequence numbers advance by capacity per lap; fill/drain
  // cycles must stay FIFO long after the cursors pass the mask.
  MpmcRing<int> ring(4);
  int next = 0;
  int expect = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    while (ring.TryPush(next)) ++next;
    EXPECT_EQ(ring.size_approx(), 4u);
    int v;
    while (ring.TryPop(&v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    }
  }
  EXPECT_EQ(next, 4000);
  EXPECT_EQ(expect, 4000);
}

TEST(MpmcRingTest, ManyProducersManyConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 50000;
  MpmcRing<uint64_t> ring(2048);
  std::atomic<uint64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t item = uint64_t(p) * kPerProducer + i + 1;
        while (!ring.TryPush(item)) {
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t v;
      while (consumed_count.load() < kProducers * kPerProducer) {
        if (ring.TryPop(&v)) {
          consumed_sum += v;
          ++consumed_count;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t n = uint64_t(kProducers) * kPerProducer;
  // Items were 1..n in some partition; sum must match exactly.
  uint64_t expected = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      expected += uint64_t(p) * kPerProducer + i + 1;
    }
  }
  EXPECT_EQ(consumed_count.load(), int(n));
  EXPECT_EQ(consumed_sum.load(), expected);
}

// --------------------------------------------------------------------------
// Network fabric.
// --------------------------------------------------------------------------

struct TestNode {
  std::unique_ptr<hw::NicPort> nic;
  std::vector<Packet> received;
};

TEST(NetworkTest, DeliversWithSerializationAndPropagation) {
  sim::Simulator sim;
  Network net(&sim);
  TestNode a, b;
  a.nic = std::make_unique<hw::NicPort>(&sim, "a",
                                        hw::NicSpec{100e9, 2000, 4096});
  b.nic = std::make_unique<hw::NicPort>(&sim, "b",
                                        hw::NicSpec{100e9, 2000, 4096});
  net.Attach(1, a.nic.get(), [&](Packet p) { a.received.push_back(p); });
  net.Attach(2, b.nic.get(), [&](Packet p) { b.received.push_back(p); });

  Packet p;
  p.src = 1;
  p.dst = 2;
  p.payload = Buffer("hello");
  net.Send(std::move(p));
  sim.Run();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].payload.ToString(), "hello");
  EXPECT_TRUE(a.received.empty());
  // 69 bytes at 100 Gbps ~ 5.5 ns serialization + 2 us propagation.
  EXPECT_GT(sim.now(), 2000u);
  EXPECT_LT(sim.now(), 3000u);
}

TEST(NetworkTest, UnknownDestinationDropped) {
  sim::Simulator sim;
  Network net(&sim);
  TestNode a;
  a.nic = std::make_unique<hw::NicPort>(&sim, "a", hw::NicSpec{});
  net.Attach(1, a.nic.get(), [](Packet) {});
  Packet p;
  p.src = 1;
  p.dst = 99;
  net.Send(std::move(p));
  sim.Run();
  EXPECT_EQ(net.packets_dropped(), 1u);
}

TEST(NetworkTest, LossRateDropsApproximateFraction) {
  sim::Simulator sim;
  Network net(&sim);
  TestNode a, b;
  a.nic = std::make_unique<hw::NicPort>(&sim, "a", hw::NicSpec{});
  b.nic = std::make_unique<hw::NicPort>(&sim, "b", hw::NicSpec{});
  int delivered = 0;
  net.Attach(1, a.nic.get(), [](Packet) {});
  net.Attach(2, b.nic.get(), [&](Packet) { ++delivered; });
  net.SetLossRate(0.2, 42);
  for (int i = 0; i < 2000; ++i) {
    Packet p;
    p.src = 1;
    p.dst = 2;
    net.Send(std::move(p));
  }
  sim.Run();
  EXPECT_GT(delivered, 1400);
  EXPECT_LT(delivered, 1800);
}

// --------------------------------------------------------------------------
// MiniTCP.
// --------------------------------------------------------------------------

class TcpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    nic_a_ = std::make_unique<hw::NicPort>(&sim_, "a",
                                           hw::NicSpec{100e9, 2000, 4096});
    nic_b_ = std::make_unique<hw::NicPort>(&sim_, "b",
                                           hw::NicSpec{100e9, 2000, 4096});
    net_ = std::make_unique<Network>(&sim_);
    stack_a_ = std::make_unique<TcpStack>(&sim_, net_.get(), 1);
    stack_b_ = std::make_unique<TcpStack>(&sim_, net_.get(), 2);
    net_->Attach(1, nic_a_.get(),
                 [this](Packet p) { stack_a_->OnPacket(std::move(p)); });
    net_->Attach(2, nic_b_.get(),
                 [this](Packet p) { stack_b_->OnPacket(std::move(p)); });
  }

  sim::Simulator sim_;
  std::unique_ptr<hw::NicPort> nic_a_, nic_b_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<TcpStack> stack_a_, stack_b_;
};

TEST_F(TcpFixture, HandshakeEstablishesBothSides) {
  TcpConnection* server_conn = nullptr;
  stack_b_->Listen(80, [&](TcpConnection* c) { server_conn = c; });
  TcpConnection* client = stack_a_->Connect(2, 80);
  sim_.Run();
  ASSERT_NE(server_conn, nullptr);
  EXPECT_TRUE(client->established());
  EXPECT_TRUE(server_conn->established());
}

TEST_F(TcpFixture, SmallMessageDelivery) {
  Buffer received;
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan data) { received.Append(data); });
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  client->Send(Buffer("ping").span());
  sim_.Run();
  EXPECT_EQ(received.ToString(), "ping");
}

TEST_F(TcpFixture, SendBeforeEstablishedIsBuffered) {
  Buffer received;
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan data) { received.Append(data); });
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  client->Send(Buffer("early data").span());  // before handshake completes
  sim_.Run();
  EXPECT_EQ(received.ToString(), "early data");
}

TEST_F(TcpFixture, BulkTransferExactBytes) {
  Buffer sent = kern::GenerateText(1 << 20, {});
  Buffer received;
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan data) { received.Append(data); });
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  client->Send(sent.span());
  sim_.Run();
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(received, sent);
  EXPECT_EQ(client->stats().retransmissions, 0u);
}

TEST_F(TcpFixture, BidirectionalTransfer) {
  Buffer a_to_b = kern::GenerateText(200000, {1});
  Buffer b_to_a = kern::GenerateText(300000, {2});
  Buffer at_b, at_a;
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan d) { at_b.Append(d); });
    c->Send(b_to_a.span());
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  client->SetReceiveCallback([&](ByteSpan d) { at_a.Append(d); });
  client->Send(a_to_b.span());
  sim_.Run();
  EXPECT_EQ(at_b, a_to_b);
  EXPECT_EQ(at_a, b_to_a);
}

TEST_F(TcpFixture, LossyLinkStillDeliversExactly) {
  net_->SetLossRate(0.03, 7);
  Buffer sent = kern::GenerateText(1 << 20, {});
  Buffer received;
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan data) { received.Append(data); });
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  client->Send(sent.span());
  sim_.Run();
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(received, sent);
  EXPECT_GT(client->stats().retransmissions, 0u);
}

TEST_F(TcpFixture, HeavyLossStillDelivers) {
  net_->SetLossRate(0.15, 99);
  Buffer sent = kern::GenerateText(200000, {});
  Buffer received;
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan data) { received.Append(data); });
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  client->Send(sent.span());
  sim_.Run();
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(received, sent);
}

TEST_F(TcpFixture, CloseDeliversFinAfterData) {
  bool closed = false;
  Buffer received;
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan d) { received.Append(d); });
    c->SetCloseCallback([&] { closed = true; });
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  client->Send(Buffer("bye").span());
  client->Close();
  sim_.Run();
  EXPECT_EQ(received.ToString(), "bye");
  EXPECT_TRUE(closed);
  EXPECT_TRUE(client->closed());
}

TEST_F(TcpFixture, CongestionWindowGrowsFromSlowStart) {
  Buffer sent = kern::GenerateText(1 << 20, {});
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([](ByteSpan) {});
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  uint64_t initial_cwnd = client->cwnd();
  client->Send(sent.span());
  sim_.Run();
  EXPECT_GT(client->cwnd(), initial_cwnd);
}

TEST_F(TcpFixture, ReceiveWindowLimitsInFlight) {
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([](ByteSpan) {});
    c->SetReceiveWindow(8192);  // tiny advertised window
  });
  Buffer sent = kern::GenerateText(500000, {});
  Buffer received_total;
  TcpConnection* client = stack_a_->Connect(2, 80);
  client->Send(sent.span());
  // Run a while; in-flight must never exceed window + one segment.
  for (int step = 0; step < 200000 && !sim_.empty(); ++step) {
    sim_.Step();
    if (client->established()) {
      EXPECT_LE(client->bytes_unacked(),
                8192u + stack_a_->config().mss + 1);
    }
  }
}

TEST_F(TcpFixture, SegmentHookSeesTraffic) {
  uint64_t tx_bytes = 0, rx_bytes = 0;
  stack_a_->SetSegmentHook([&](size_t bytes, bool rx) {
    (rx ? rx_bytes : tx_bytes) += bytes;
  });
  stack_b_->Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([](ByteSpan) {});
  });
  TcpConnection* client = stack_a_->Connect(2, 80);
  Buffer sent = kern::GenerateText(100000, {});
  client->Send(sent.span());
  sim_.Run();
  EXPECT_GT(tx_bytes, sent.size());  // data + headers
  EXPECT_GT(rx_bytes, 0u);           // ACKs
}

TEST_F(TcpFixture, ManyConcurrentConnections) {
  constexpr int kConns = 20;
  std::vector<Buffer> received(kConns);
  int accepted = 0;
  stack_b_->Listen(80, [&](TcpConnection* c) {
    int idx = accepted++;
    c->SetReceiveCallback(
        [&received, idx](ByteSpan d) { received[idx].Append(d); });
  });
  std::vector<Buffer> sent;
  for (int i = 0; i < kConns; ++i) {
    sent.push_back(kern::GenerateText(50000 + i * 1000,
                                      {uint64_t(i + 1), 4096, 0.9}));
    TcpConnection* c = stack_a_->Connect(2, 80);
    c->Send(sent.back().span());
  }
  sim_.Run();
  ASSERT_EQ(accepted, kConns);
  uint64_t total_sent = 0, total_received = 0;
  for (int i = 0; i < kConns; ++i) {
    total_sent += sent[i].size();
    total_received += received[i].size();
  }
  EXPECT_EQ(total_received, total_sent);
}

TEST_F(TcpFixture, RetransmitCapAbortsConnectionToDarkNode) {
  // Establish, then take the peer node down: retransmissions must stop
  // making progress and the cap must abort the connection (firing the
  // close callback) instead of backing off at rto_max forever.
  TcpConnection* server_conn = nullptr;
  stack_b_->Listen(80, [&](TcpConnection* c) { server_conn = c; });
  TcpConnection* client = stack_a_->Connect(2, 80);
  sim_.Run();
  ASSERT_TRUE(client->established());

  bool closed_fired = false;
  client->SetCloseCallback([&] { closed_fired = true; });
  net_->SetNodeUp(2, false);
  client->Send(Buffer("into the void").span());
  sim::SimTime send_at = sim_.now();
  sim_.Run();  // must drain: the abort cancels the retransmit timer chain

  EXPECT_TRUE(client->closed());
  EXPECT_TRUE(closed_fired);
  EXPECT_EQ(client->stats().aborts, 1u);
  EXPECT_GT(client->stats().timeouts, 0u);
  // The stall window is bounded by the configured cap plus one final RTO
  // backoff interval.
  sim::SimTime cap = stack_a_->config().max_retransmit_time;
  EXPECT_GE(cap, sim::SimTime(1));
  EXPECT_LE(sim_.now() - send_at, cap + stack_a_->config().rto_max +
            sim::kSecond);
  EXPECT_EQ(server_conn->stats().aborts, 0u);
}

TEST_F(TcpFixture, AbortIsIdempotentAndReapsState) {
  TcpConnection* client = stack_a_->Connect(2, 80);
  stack_b_->Listen(80, [](TcpConnection*) {});
  sim_.Run();
  ASSERT_TRUE(client->established());
  int close_calls = 0;
  client->SetCloseCallback([&] { ++close_calls; });
  client->Send(Buffer("x").span());
  client->Abort();
  client->Abort();
  EXPECT_TRUE(client->closed());
  EXPECT_EQ(client->stats().aborts, 1u);
  EXPECT_EQ(close_calls, 1);
  EXPECT_EQ(client->bytes_unacked(), 0u);
  sim_.Run();  // nothing left scheduled for the aborted connection
}


// Property sweep: exact delivery across loss rates and transfer sizes.
class TcpLossSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TcpLossSweep, ExactDeliveryUnderLoss) {
  auto [loss_pct, kilobytes] = GetParam();
  sim::Simulator sim;
  Network net(&sim);
  hw::NicPort nic_a(&sim, "a", hw::NicSpec{100e9, 2000, 4096});
  hw::NicPort nic_b(&sim, "b", hw::NicSpec{100e9, 2000, 4096});
  TcpStack sa(&sim, &net, 1), sb(&sim, &net, 2);
  net.Attach(1, &nic_a, [&](Packet p) { sa.OnPacket(std::move(p)); });
  net.Attach(2, &nic_b, [&](Packet p) { sb.OnPacket(std::move(p)); });
  net.SetLossRate(loss_pct / 100.0, uint64_t(loss_pct) * 131 + kilobytes);

  Buffer sent = kern::GenerateText(size_t(kilobytes) * 1024,
                                   {uint64_t(kilobytes), 4096, 0.9});
  Buffer received;
  bool closed = false;
  sb.Listen(80, [&](TcpConnection* c) {
    c->SetReceiveCallback([&](ByteSpan d) { received.Append(d); });
    c->SetCloseCallback([&] { closed = true; });
  });
  TcpConnection* client = sa.Connect(2, 80);
  client->Send(sent.span());
  client->Close();
  sim.Run();
  ASSERT_EQ(received.size(), sent.size())
      << "loss=" << loss_pct << "% size=" << kilobytes << "KB";
  EXPECT_EQ(received, sent);
  EXPECT_TRUE(closed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpLossSweep,
    ::testing::Combine(::testing::Values(0, 1, 5, 10, 20),
                       ::testing::Values(4, 64, 512)));

// --------------------------------------------------------------------------
// RDMA.
// --------------------------------------------------------------------------

class RdmaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    nic_a_ = std::make_unique<hw::NicPort>(&sim_, "a",
                                           hw::NicSpec{100e9, 2000, 4096});
    nic_b_ = std::make_unique<hw::NicPort>(&sim_, "b",
                                           hw::NicSpec{100e9, 2000, 4096});
    net_ = std::make_unique<Network>(&sim_);
    rnic_a_ = std::make_unique<RdmaNic>(&sim_, net_.get(), 1);
    rnic_b_ = std::make_unique<RdmaNic>(&sim_, net_.get(), 2);
    net_->Attach(1, nic_a_.get(),
                 [this](Packet p) { rnic_a_->OnPacket(std::move(p)); });
    net_->Attach(2, nic_b_.get(),
                 [this](Packet p) { rnic_b_->OnPacket(std::move(p)); });
    qp_a_ = rnic_a_->CreateQueuePair();
    qp_b_ = rnic_b_->CreateQueuePair();
    ConnectQueuePairs(qp_a_, qp_b_);
  }

  sim::Simulator sim_;
  std::unique_ptr<hw::NicPort> nic_a_, nic_b_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<RdmaNic> rnic_a_, rnic_b_;
  QueuePair* qp_a_ = nullptr;
  QueuePair* qp_b_ = nullptr;
};

TEST_F(RdmaFixture, OneSidedWriteMovesBytes) {
  MrKey local = rnic_a_->RegisterMemory(4096);
  MrKey remote = rnic_b_->RegisterMemory(4096);
  auto mem = rnic_a_->Memory(local);
  ASSERT_TRUE(mem.ok());
  std::memcpy(mem->data(), "remote write!", 13);

  ASSERT_TRUE(qp_a_->PostWrite(11, local, 0, remote, 100, 13).ok());
  sim_.Run();

  RdmaCompletion c;
  ASSERT_TRUE(qp_a_->cq().Poll(&c));
  EXPECT_EQ(c.op, RdmaCompletion::OpType::kWrite);
  EXPECT_EQ(c.wr_id, 11u);
  EXPECT_TRUE(c.ok);
  auto remote_mem = rnic_b_->Memory(remote);
  ASSERT_TRUE(remote_mem.ok());
  EXPECT_EQ(std::memcmp(remote_mem->data() + 100, "remote write!", 13), 0);
  // The write executed without any remote CPU: only the NIC touched it.
  EXPECT_EQ(rnic_b_->ops_executed_remotely(), 1u);
}

TEST_F(RdmaFixture, OneSidedReadFetchesBytes) {
  MrKey local = rnic_a_->RegisterMemory(4096);
  MrKey remote = rnic_b_->RegisterMemory(4096);
  auto remote_mem = rnic_b_->Memory(remote);
  ASSERT_TRUE(remote_mem.ok());
  std::memcpy(remote_mem->data() + 50, "fetch me", 8);

  ASSERT_TRUE(qp_a_->PostRead(22, local, 200, remote, 50, 8).ok());
  sim_.Run();

  RdmaCompletion c;
  ASSERT_TRUE(qp_a_->cq().Poll(&c));
  EXPECT_EQ(c.op, RdmaCompletion::OpType::kRead);
  EXPECT_TRUE(c.ok);
  auto local_mem = rnic_a_->Memory(local);
  EXPECT_EQ(std::memcmp(local_mem->data() + 200, "fetch me", 8), 0);
}

TEST_F(RdmaFixture, TwoSidedSendRecv) {
  MrKey recv_mr = rnic_b_->RegisterMemory(4096);
  ASSERT_TRUE(qp_b_->PostRecv(33, recv_mr, 0, 4096).ok());
  Buffer msg("two-sided hello");
  ASSERT_TRUE(qp_a_->PostSend(44, msg.span()).ok());
  sim_.Run();

  RdmaCompletion send_c, recv_c;
  ASSERT_TRUE(qp_a_->cq().Poll(&send_c));
  EXPECT_EQ(send_c.op, RdmaCompletion::OpType::kSend);
  EXPECT_EQ(send_c.wr_id, 44u);
  ASSERT_TRUE(qp_b_->cq().Poll(&recv_c));
  EXPECT_EQ(recv_c.op, RdmaCompletion::OpType::kRecv);
  EXPECT_EQ(recv_c.wr_id, 33u);
  EXPECT_EQ(recv_c.bytes, msg.size());
  auto mem = rnic_b_->Memory(recv_mr);
  EXPECT_EQ(std::memcmp(mem->data(), msg.data(), msg.size()), 0);
}

TEST_F(RdmaFixture, SendBeforeRecvIsBuffered) {
  Buffer msg("eager send");
  ASSERT_TRUE(qp_a_->PostSend(1, msg.span()).ok());
  sim_.Run();  // arrives with no recv posted
  RdmaCompletion c;
  EXPECT_FALSE(qp_b_->cq().Poll(&c));

  MrKey recv_mr = rnic_b_->RegisterMemory(4096);
  ASSERT_TRUE(qp_b_->PostRecv(2, recv_mr, 0, 4096).ok());
  sim_.Run();
  ASSERT_TRUE(qp_b_->cq().Poll(&c));
  EXPECT_EQ(c.op, RdmaCompletion::OpType::kRecv);
  auto mem = rnic_b_->Memory(recv_mr);
  EXPECT_EQ(std::memcmp(mem->data(), msg.data(), msg.size()), 0);
}

TEST_F(RdmaFixture, BadRemoteKeyNacks) {
  MrKey local = rnic_a_->RegisterMemory(4096);
  ASSERT_TRUE(qp_a_->PostWrite(5, local, 0, /*remote_key=*/999, 0, 16).ok());
  sim_.Run();
  RdmaCompletion c;
  ASSERT_TRUE(qp_a_->cq().Poll(&c));
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.op, RdmaCompletion::OpType::kWrite);
}

TEST_F(RdmaFixture, OutOfBoundsRemoteWriteNacks) {
  MrKey local = rnic_a_->RegisterMemory(4096);
  MrKey remote = rnic_b_->RegisterMemory(128);
  ASSERT_TRUE(qp_a_->PostWrite(6, local, 0, remote, 120, 64).ok());
  sim_.Run();
  RdmaCompletion c;
  ASSERT_TRUE(qp_a_->cq().Poll(&c));
  EXPECT_FALSE(c.ok);
}

TEST_F(RdmaFixture, LocalBoundsCheckedAtPostTime) {
  MrKey local = rnic_a_->RegisterMemory(64);
  MrKey remote = rnic_b_->RegisterMemory(4096);
  EXPECT_TRUE(
      qp_a_->PostWrite(7, local, 32, remote, 0, 64).IsOutOfRange());
  EXPECT_TRUE(qp_a_->PostRead(8, local, 0, remote, 0, 128).IsOutOfRange());
  EXPECT_TRUE(
      qp_a_->PostRecv(9, local, 60, 32).IsOutOfRange());
}

TEST_F(RdmaFixture, UnconnectedQpRejectsPosts) {
  QueuePair* lone = rnic_a_->CreateQueuePair();
  MrKey local = rnic_a_->RegisterMemory(64);
  EXPECT_TRUE(lone->PostSend(1, ByteSpan()).IsUnavailable());
  EXPECT_TRUE(lone->PostWrite(1, local, 0, 1, 0, 8).IsUnavailable());
}

TEST_F(RdmaFixture, CompletionNotifyFires) {
  int notified = 0;
  qp_a_->cq().SetNotify([&] { ++notified; });
  MrKey local = rnic_a_->RegisterMemory(4096);
  MrKey remote = rnic_b_->RegisterMemory(4096);
  ASSERT_TRUE(qp_a_->PostWrite(1, local, 0, remote, 0, 8).ok());
  ASSERT_TRUE(qp_a_->PostWrite(2, local, 8, remote, 8, 8).ok());
  sim_.Run();
  EXPECT_EQ(notified, 2);
}

TEST_F(RdmaFixture, ManyOutstandingOpsAllComplete) {
  MrKey local = rnic_a_->RegisterMemory(1 << 20);
  MrKey remote = rnic_b_->RegisterMemory(1 << 20);
  constexpr int kOps = 500;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(
        qp_a_->PostWrite(i, local, i * 64, remote, i * 64, 64).ok());
  }
  sim_.Run();
  int completions = 0;
  RdmaCompletion c;
  while (qp_a_->cq().Poll(&c)) {
    EXPECT_TRUE(c.ok);
    ++completions;
  }
  EXPECT_EQ(completions, kOps);
}

}  // namespace
}  // namespace dpdpu::netsub
