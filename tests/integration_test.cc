// Cross-module integration tests: full DPDPU platforms on a shared
// fabric exercising compositions the paper describes end to end —
// including DPU heterogeneity (the same application code on BF-2, BF-3,
// and IPU-class hardware) and the decompress-on-read path.

#include <gtest/gtest.h>

#include "core/compute/sproc.h"
#include "core/runtime/metrics.h"
#include "core/runtime/pipeline.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "kern/chacha20.h"
#include "kern/deflate.h"
#include "kern/textgen.h"

namespace dpdpu {
namespace {

// The Section 4 composed flow, parameterized by DPU model: a remote
// request reads compressed data from SSD, decompresses it on the DPU
// (ASIC where present, CPU otherwise), and returns the plain bytes.
class HeterogeneityTest
    : public ::testing::TestWithParam<hw::DpuSpec (*)()> {};

TEST_P(HeterogeneityTest, ReadDecompressServeWorksOnEveryDpu) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  so.server_spec = hw::MakeServerSpec("server", GetParam()());
  co.node = 2;
  rt::Platform server(&sim, &net, so);
  rt::Platform client(&sim, &net, co);

  // Store DEFLATE-compressed text.
  Buffer plain = kern::GenerateText(200000, {});
  auto compressed = kern::DeflateCompress(plain.span());
  ASSERT_TRUE(compressed.ok());
  auto file = server.fs().Create("compressed.obj");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(server.fs().Write(*file, 0, compressed->span()).ok());
  uint32_t stored_size = uint32_t(compressed->size());

  // Server sproc: read + decompress (Fig 6 fallback pattern) + reply.
  Buffer received;
  client.network().Listen(7300, [&](ne::NeSocket* s) {
    s->SetReceiveCallback([&](ByteSpan d) { received.Append(d); });
  });
  ne::NeSocket* reply = server.network().Connect(2, 7300);

  ce::ExecTarget ran_on = ce::ExecTarget::kAuto;
  ASSERT_TRUE(
      server.compute()
          .RegisterSproc(
              "serve_decompressed",
              [&](ce::SprocContext& ctx) {
                ctx.storage()->file_service().ReadAsync(
                    *file, 0, stored_size, [&](Result<Buffer> data) {
                      ASSERT_TRUE(data.ok());
                      Buffer payload = std::move(data).value();
                      // Fig 6 fallback: try the ASIC (copying the input,
                      // since a failed specified-execution probe must not
                      // consume it), else a DPU core.
                      auto work = ctx.compute().Invoke(
                          ce::kKernelDecompress, payload, {},
                          {ce::ExecTarget::kDpuAsic});
                      if (!work.ok()) {
                        work = ctx.compute().Invoke(
                            ce::kKernelDecompress, std::move(payload), {},
                            {ce::ExecTarget::kDpuCpu});
                      }
                      ASSERT_TRUE(work.ok());
                      (*work)->OnComplete([&](ce::WorkItem& item) {
                        ran_on = item.executed_on();
                        ASSERT_TRUE(item.result().ok());
                        reply->Send(item.result().value().span());
                      });
                    });
              })
          .ok());
  ASSERT_TRUE(server.compute().InvokeSproc("serve_decompressed").ok());
  sim.Run();

  EXPECT_EQ(received, plain);
  // On DPUs with a compression engine the kernel lands on the ASIC; the
  // IPU-like device (no compression ASIC) falls back to its CPUs.
  bool has_asic = so.server_spec.dpu.HasAccelerator(
      hw::AcceleratorKind::kCompression);
  EXPECT_EQ(ran_on, has_asic ? ce::ExecTarget::kDpuAsic
                             : ce::ExecTarget::kDpuCpu);
}

INSTANTIATE_TEST_SUITE_P(AllDpus, HeterogeneityTest,
                         ::testing::Values(&hw::BlueField2Spec,
                                           &hw::BlueField3Spec,
                                           &hw::IntelIpuLikeSpec));

// Compress-encrypt-store, then fetch-decrypt-decompress: a two-platform
// round trip through all three engines, all kernels on real data.
TEST(IntegrationTest, CompressEncryptStoreFetchRoundTrip) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  co.node = 2;
  rt::Platform server(&sim, &net, so);
  rt::Platform client(&sim, &net, co);
  server.storage().Serve();

  Buffer plain = kern::GenerateText(150000, {});
  ce::KernelParams crypto{{"key", "integration-test-key"},
                          {"nonce", "nonce123"}};

  // Client-side prep: compress then encrypt locally (CE on the client's
  // own DPU), then write remotely.
  auto file = server.fs().Create("sealed");
  ASSERT_TRUE(file.ok());
  se::RemoteStorageClient rsc(&client.network(), 1, 9000);

  bool stored = false;
  uint32_t sealed_size = 0;
  auto compress = client.compute().Invoke(ce::kKernelCompress, plain);
  ASSERT_TRUE(compress.ok());
  (*compress)->OnComplete([&](ce::WorkItem& c) {
    ASSERT_TRUE(c.result().ok());
    auto encrypt = client.compute().Invoke(ce::kKernelEncrypt,
                                           c.result().value(), crypto);
    ASSERT_TRUE(encrypt.ok());
    (*encrypt)->OnComplete([&](ce::WorkItem& e) {
      ASSERT_TRUE(e.result().ok());
      sealed_size = uint32_t(e.result().value().size());
      rsc.Write(*file, 0, e.result().value(),
                [&](Status s) { stored = s.ok(); });
    });
  });
  sim.Run();
  ASSERT_TRUE(stored);

  // Fetch and unseal.
  Buffer recovered;
  rsc.Read(*file, 0, sealed_size, [&](Result<Buffer> sealed) {
    ASSERT_TRUE(sealed.ok());
    auto decrypt = client.compute().Invoke(ce::kKernelDecrypt,
                                           std::move(sealed).value(),
                                           crypto);
    ASSERT_TRUE(decrypt.ok());
    (*decrypt)->OnComplete([&](ce::WorkItem& d) {
      ASSERT_TRUE(d.result().ok());
      auto decompress = client.compute().Invoke(ce::kKernelDecompress,
                                                d.result().value());
      ASSERT_TRUE(decompress.ok());
      (*decompress)->OnComplete([&](ce::WorkItem& p) {
        ASSERT_TRUE(p.result().ok());
        recovered = p.result().value();
      });
    });
  });
  sim.Run();
  EXPECT_EQ(recovered, plain);
}

// Remote serving stays correct under packet loss: the NE's TCP recovers
// and every storage request completes exactly once.
TEST(IntegrationTest, RemoteStorageSurvivesPacketLoss) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  co.node = 2;
  rt::Platform server(&sim, &net, so);
  rt::Platform client(&sim, &net, co);
  server.storage().Serve();
  net.SetLossRate(0.02, 31);

  Buffer data = kern::GenerateRandomBytes(512 * 1024, 5);
  auto file = server.fs().Create("lossy");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(server.fs().Write(*file, 0, data.span()).ok());

  se::RemoteStorageClient rsc(&client.network(), 1, 9000);
  int done = 0;
  constexpr int kReads = 50;
  for (int i = 0; i < kReads; ++i) {
    uint64_t offset = uint64_t(i) * 8192;
    rsc.Read(*file, offset, 8192, [&, offset](Result<Buffer> d) {
      ASSERT_TRUE(d.ok());
      ASSERT_EQ(d->size(), 8192u);
      EXPECT_EQ(std::memcmp(d->data(), data.data() + offset, 8192), 0);
      ++done;
    });
  }
  sim.Run();
  EXPECT_EQ(done, kReads);
}

// DPU memory pressure: a file-service cache sized beyond DPU memory is
// clamped to what the MemoryPool can grant (the 16 GB constraint).
TEST(IntegrationTest, DpuCacheClampedToDeviceMemory) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions options;
  options.storage.dpu_cache_bytes = 1ull << 40;  // 1 TB ask
  rt::Platform platform(&sim, &net, options);
  EXPECT_LE(platform.server().dpu_memory().used(),
            platform.server().dpu_memory().capacity());
  EXPECT_GT(platform.server().dpu_memory().used(), 0u);
}

// Determinism: two identical runs produce identical virtual-time traces.
TEST(IntegrationTest, SimulationIsDeterministic) {
  auto run = [] {
    sim::Simulator sim;
    netsub::Network net(&sim);
    rt::PlatformOptions so, co;
    so.node = 1;
    co.node = 2;
    rt::Platform server(&sim, &net, so);
    rt::Platform client(&sim, &net, co);
    server.storage().Serve();
    Buffer data = kern::GenerateRandomBytes(100000, 1);
    auto file = server.fs().Create("det");
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE(server.fs().Write(*file, 0, data.span()).ok());
    se::RemoteStorageClient rsc(&client.network(), 1, 9000);
    for (int i = 0; i < 20; ++i) {
      rsc.Read(*file, uint64_t(i) * 4096, 4096, [](Result<Buffer>) {});
    }
    sim.Run();
    return std::make_pair(sim.now(), sim.events_executed());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace dpdpu
