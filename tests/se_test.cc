// Tests for the Storage Engine: file service with DPU cache, host file
// client paths (Linux baseline vs DPU offload), persist modes, the
// remote-request protocol, traffic director routing, UDF translation,
// and end-to-end remote serving (the DDS data path).

#include <gtest/gtest.h>

#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "hw/calibration.h"
#include "kern/textgen.h"

namespace dpdpu::se {
namespace {

// Single-platform fixture for local storage paths.
struct SeFixture {
  SeFixture() : net(&sim), platform(&sim, &net) {}

  sim::Simulator sim;
  netsub::Network net;
  rt::Platform platform;

  FileService& files() { return platform.storage().file_service(); }
  HostFileClient& host() { return platform.storage().host_client(); }
};

TEST(FileServiceTest, CreateWriteReadThroughService) {
  SeFixture f;
  fssub::FileId file = 0;
  bool created = false;
  f.files().CreateAsync("t", [&](Result<fssub::FileId> id) {
    ASSERT_TRUE(id.ok());
    file = *id;
    created = true;
  });
  f.sim.Run();
  ASSERT_TRUE(created);

  Buffer data = kern::GenerateText(50000, {});
  bool wrote = false;
  f.files().WriteAsync(file, 0, data, PersistMode::kWriteThrough,
                       [&](Status s) {
                         ASSERT_TRUE(s.ok());
                         wrote = true;
                       });
  f.sim.Run();
  ASSERT_TRUE(wrote);

  Buffer got;
  f.files().ReadAsync(file, 0, uint32_t(data.size()),
                      [&](Result<Buffer> d) {
                        ASSERT_TRUE(d.ok());
                        got = std::move(d).value();
                      });
  f.sim.Run();
  EXPECT_EQ(got, data);
}

TEST(FileServiceTest, SecondReadHitsDpuCache) {
  SeFixture f;
  fssub::FileId file = 0;
  f.files().CreateAsync("t", [&](Result<fssub::FileId> id) { file = *id; });
  f.sim.Run();
  Buffer data = kern::GenerateRandomBytes(64 * 1024, 3);
  f.files().WriteAsync(file, 0, data, PersistMode::kWriteThrough,
                       [](Status) {});
  f.sim.Run();

  // First read misses (SSD), second hits (DPU cache), and is faster.
  sim::SimTime t0 = f.sim.now();
  f.files().ReadAsync(file, 0, 64 * 1024, [](Result<Buffer>) {});
  f.sim.Run();
  sim::SimTime miss_latency = f.sim.now() - t0;

  t0 = f.sim.now();
  Buffer got;
  f.files().ReadAsync(file, 0, 64 * 1024, [&](Result<Buffer> d) {
    got = std::move(d).value();
  });
  f.sim.Run();
  sim::SimTime hit_latency = f.sim.now() - t0;

  EXPECT_EQ(got, data);
  EXPECT_EQ(f.files().stats().cache_hit_reads, 1u);
  EXPECT_LT(hit_latency * 5, miss_latency)
      << "cache hit must skip the SSD access latency";
}

TEST(FileServiceTest, WriteInvalidatesCache) {
  SeFixture f;
  fssub::FileId file = 0;
  f.files().CreateAsync("t", [&](Result<fssub::FileId> id) { file = *id; });
  f.sim.Run();
  Buffer v1 = kern::GenerateRandomBytes(8192, 1);
  Buffer v2 = kern::GenerateRandomBytes(8192, 2);
  f.files().WriteAsync(file, 0, v1, PersistMode::kWriteThrough,
                       [](Status) {});
  f.sim.Run();
  f.files().ReadAsync(file, 0, 8192, [](Result<Buffer>) {});  // warm cache
  f.sim.Run();
  f.files().WriteAsync(file, 0, v2, PersistMode::kWriteThrough,
                       [](Status) {});
  f.sim.Run();
  Buffer got;
  f.files().ReadAsync(file, 0, 8192, [&](Result<Buffer> d) {
    got = std::move(d).value();
  });
  f.sim.Run();
  EXPECT_EQ(got, v2) << "stale cache page served after overwrite";
}

TEST(FileServiceTest, DpuLogAckIsFasterThanWriteThrough) {
  SeFixture f;
  fssub::FileId file = 0;
  f.files().CreateAsync("t", [&](Result<fssub::FileId> id) { file = *id; });
  f.sim.Run();
  Buffer data = kern::GenerateRandomBytes(8192, 5);

  sim::SimTime t0 = f.sim.now();
  sim::SimTime through_ack = 0;
  f.files().WriteAsync(file, 0, data, PersistMode::kWriteThrough,
                       [&](Status s) {
                         ASSERT_TRUE(s.ok());
                         through_ack = f.sim.now() - t0;
                       });
  f.sim.Run();

  t0 = f.sim.now();
  sim::SimTime log_ack = 0;
  f.files().WriteAsync(file, 8192, data, PersistMode::kDpuLogAck,
                       [&](Status s) {
                         ASSERT_TRUE(s.ok());
                         log_ack = f.sim.now() - t0;
                       });
  f.sim.Run();

  EXPECT_LT(log_ack, through_ack)
      << "Section 9 fast persistence: log ack must beat the SSD write";
  EXPECT_EQ(f.files().stats().log_acked_writes, 1u);

  // The background SSD write still lands: the data is readable.
  Buffer got;
  f.files().ReadAsync(file, 8192, 8192, [&](Result<Buffer> d) {
    got = std::move(d).value();
  });
  f.sim.Run();
  EXPECT_EQ(got, data);
}

TEST(HostFileClientTest, OffloadPathSavesHostCycles) {
  auto run = [](HostIoPath path) {
    SeFixture f;
    f.host().set_path(path);
    fssub::FileId file = 0;
    f.files().CreateAsync("t",
                          [&](Result<fssub::FileId> id) { file = *id; });
    f.sim.Run();
    Buffer data = kern::GenerateRandomBytes(8192, 1);
    f.files().WriteAsync(file, 0, data, PersistMode::kWriteThrough,
                         [](Status) {});
    f.sim.Run();

    rt::UtilizationProbe probe(&f.platform.server());
    probe.Start();
    int done = 0;
    for (int i = 0; i < 200; ++i) {
      f.host().Read(file, 0, 8192, [&](Result<Buffer> d) {
        EXPECT_TRUE(d.ok());
        ++done;
      });
    }
    f.sim.Run();
    probe.Stop();
    EXPECT_EQ(done, 200);
    return double(probe.host_cores()) * double(probe.window_ns());
  };
  double linux_host_ns = run(HostIoPath::kLinuxBaseline);
  double offload_host_ns = run(HostIoPath::kDpuOffload);
  EXPECT_GT(linux_host_ns, offload_host_ns * 10)
      << "Figure 2: the DPU path frees host storage-stack cycles";
}

// --------------------------------------------------------------------------
// Protocol.
// --------------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  RemoteRequest request;
  request.tag = 77;
  request.op = RemoteOp::kWrite;
  request.file = 3;
  request.offset = 4096;
  request.data = Buffer("payload");
  request.flags = kRequestFlagRequiresHost;
  Buffer encoded = EncodeRemoteRequest(request);
  auto parsed = ParseRemoteRequest(encoded.span());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->tag, 77u);
  EXPECT_EQ(parsed->op, RemoteOp::kWrite);
  EXPECT_EQ(parsed->file, 3u);
  EXPECT_EQ(parsed->offset, 4096u);
  EXPECT_EQ(parsed->data.ToString(), "payload");
  EXPECT_EQ(parsed->flags, kRequestFlagRequiresHost);
}

TEST(ProtocolTest, MalformedRequestRejected) {
  Buffer junk("xx");
  EXPECT_TRUE(ParseRemoteRequest(junk.span()).status().IsCorruption());
  RemoteRequest request;
  Buffer encoded = EncodeRemoteRequest(request);
  encoded[8] = 99;  // invalid op
  EXPECT_TRUE(ParseRemoteRequest(encoded.span()).status().IsCorruption());
}

TEST(ProtocolTest, ResponseRoundTrip) {
  RemoteResponse resp;
  resp.tag = 5;
  resp.ok = false;
  resp.data = Buffer("err");
  Buffer encoded = EncodeRemoteResponse(resp);
  auto parsed = ParseRemoteResponse(encoded.span());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->tag, 5u);
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->data.ToString(), "err");
}

// --------------------------------------------------------------------------
// Remote serving end to end (two platforms over the fabric).
// --------------------------------------------------------------------------

struct RemoteFixture {
  RemoteFixture() : net(&sim) {
    rt::PlatformOptions server_options;
    server_options.node = 1;
    server = std::make_unique<rt::Platform>(&sim, &net, server_options);
    rt::PlatformOptions client_options;
    client_options.node = 2;
    client = std::make_unique<rt::Platform>(&sim, &net, client_options);
    server->storage().Serve();
  }

  /// Creates a file with `data` on the storage server.
  fssub::FileId Prepare(ByteSpan data) {
    auto file = server->fs().Create("obj");
    DPDPU_CHECK(file.ok());
    DPDPU_CHECK(server->fs().Write(*file, 0, data).ok());
    return *file;
  }

  sim::Simulator sim;
  netsub::Network net;
  std::unique_ptr<rt::Platform> server, client;
};

TEST(RemoteStorageTest, ReadRoundTrip) {
  RemoteFixture f;
  Buffer data = kern::GenerateText(100000, {});
  fssub::FileId file = f.Prepare(data.span());

  RemoteStorageClient rsc(&f.client->network(), 1, 9000);
  Buffer got;
  int errors = 0;
  rsc.Read(file, 0, uint32_t(data.size()), [&](Result<Buffer> d) {
    if (d.ok()) {
      got = std::move(d).value();
    } else {
      ++errors;
    }
  });
  f.sim.Run();
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(got, data);
  EXPECT_EQ(f.server->storage().director().routed_to_dpu(), 1u);
  EXPECT_EQ(f.server->storage().offload_engine().requests_executed(), 1u);
}

TEST(RemoteStorageTest, WriteThenReadBack) {
  RemoteFixture f;
  fssub::FileId file = f.Prepare(Buffer("seed").span());
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);

  Buffer payload = kern::GenerateRandomBytes(32 * 1024, 9);
  bool wrote = false;
  rsc.Write(file, 0, payload, [&](Status s) {
    ASSERT_TRUE(s.ok());
    wrote = true;
  });
  f.sim.Run();
  ASSERT_TRUE(wrote);

  Buffer got;
  rsc.Read(file, 0, 32 * 1024, [&](Result<Buffer> d) {
    ASSERT_TRUE(d.ok());
    got = std::move(d).value();
  });
  f.sim.Run();
  EXPECT_EQ(got, payload);
}

TEST(RemoteStorageTest, ManyConcurrentRequestsAllComplete) {
  RemoteFixture f;
  Buffer data = kern::GenerateRandomBytes(1 << 20, 4);
  fssub::FileId file = f.Prepare(data.span());
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);

  constexpr int kRequests = 100;
  int done = 0;
  for (int i = 0; i < kRequests; ++i) {
    uint64_t offset = uint64_t(i) * 8192;
    rsc.Read(file, offset, 8192, [&, offset](Result<Buffer> d) {
      ASSERT_TRUE(d.ok());
      ASSERT_EQ(d->size(), 8192u);
      EXPECT_EQ(std::memcmp(d->data(), data.data() + offset, 8192), 0);
      ++done;
    });
  }
  f.sim.Run();
  EXPECT_EQ(done, kRequests);
}

TEST(RemoteStorageTest, FlaggedRequestsRouteToHost) {
  RemoteFixture f;
  Buffer data = kern::GenerateRandomBytes(8192, 2);
  fssub::FileId file = f.Prepare(data.span());
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);

  Buffer got;
  rsc.Read(file, 0, 8192,
           [&](Result<Buffer> d) { got = std::move(d).value(); },
           kRequestFlagRequiresHost);
  f.sim.Run();
  EXPECT_EQ(got, data);
  EXPECT_EQ(f.server->storage().director().routed_to_host(), 1u);
  EXPECT_EQ(f.server->storage().director().routed_to_dpu(), 0u);
}

TEST(RemoteStorageTest, OffloadKeepsHostIdle) {
  // The DDS headline: offloaded remote reads leave the host untouched.
  RemoteFixture f;
  Buffer data = kern::GenerateRandomBytes(1 << 20, 4);
  fssub::FileId file = f.Prepare(data.span());
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);

  rt::UtilizationProbe probe(&f.server->server());
  probe.Start();
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    rsc.Read(file, (uint64_t(i) * 4096) % (1 << 20), 4096,
             [&](Result<Buffer> d) {
               ASSERT_TRUE(d.ok());
               ++done;
             });
  }
  f.sim.Run();
  probe.Stop();
  EXPECT_EQ(done, 200);
  EXPECT_LT(probe.host_cores(), 0.01)
      << "offloaded requests must not consume storage-server host cores";
  EXPECT_GT(probe.dpu_cores(), 0.0);
}

TEST(RemoteStorageTest, CustomHostHandlerReceivesForwards) {
  RemoteFixture f;
  fssub::FileId file = f.Prepare(Buffer("x").span());
  int host_handled = 0;
  f.server->storage().SetHostHandler(
      [&](RemoteRequest request, std::function<void(Buffer)> reply) {
        ++host_handled;
        RemoteResponse resp;
        resp.tag = request.tag;
        resp.ok = true;
        resp.data = Buffer("from-host");
        reply(EncodeRemoteResponse(resp));
      });
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);
  Buffer got;
  rsc.Read(file, 0, 1, [&](Result<Buffer> d) { got = std::move(d).value(); },
           kRequestFlagRequiresHost);
  f.sim.Run();
  EXPECT_EQ(host_handled, 1);
  EXPECT_EQ(got.ToString(), "from-host");
}

TEST(RemoteStorageTest, UdfTranslatesRequests) {
  RemoteFixture f;
  Buffer data = kern::GenerateRandomBytes(16384, 6);
  fssub::FileId file = f.Prepare(data.span());
  // UDF: redirect every read to offset 8192 (e.g. translating an
  // application key to a physical location).
  f.server->storage().offload_engine().SetUdf(
      [](const RemoteRequest& in) -> Result<RemoteRequest> {
        RemoteRequest out = in;
        out.offset = 8192;
        return out;
      });
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);
  Buffer got;
  rsc.Read(file, 0, 4096, [&](Result<Buffer> d) {
    got = std::move(d).value();
  });
  f.sim.Run();
  EXPECT_EQ(std::memcmp(got.data(), data.data() + 8192, 4096), 0);
}

// --------------------------------------------------------------------------
// Traffic director policy (partial offload, DDS question Q2).
// --------------------------------------------------------------------------

TEST(TrafficDirectorTest, DefaultPolicySplitsOnRequiresHostFlag) {
  SeFixture f;
  TrafficDirector& director = f.platform.storage().director();
  RemoteRequest offloadable;
  RemoteRequest host_only;
  host_only.flags = kRequestFlagRequiresHost;
  EXPECT_EQ(director.Classify(offloadable), TrafficDirector::Route::kDpu);
  EXPECT_EQ(director.Classify(host_only), TrafficDirector::Route::kHost);
  EXPECT_EQ(director.Classify(offloadable), TrafficDirector::Route::kDpu);
  EXPECT_EQ(director.routed_to_dpu(), 2u);
  EXPECT_EQ(director.routed_to_host(), 1u);
}

TEST(TrafficDirectorTest, CustomClassifierOverridesFlag) {
  SeFixture f;
  TrafficDirector& director = f.platform.storage().director();
  // Policy by offset range instead of by flag: only the first 1 MB of a
  // file is DPU-resident (e.g. a hot index prefix).
  director.SetClassifier([](const RemoteRequest& request) {
    return request.offset < (1u << 20);
  });
  RemoteRequest low, high;
  low.offset = 4096;
  low.flags = kRequestFlagRequiresHost;  // custom policy ignores flags
  high.offset = 2u << 20;
  EXPECT_EQ(director.Classify(low), TrafficDirector::Route::kDpu);
  EXPECT_EQ(director.Classify(high), TrafficDirector::Route::kHost);
  EXPECT_EQ(director.routed_to_dpu(), 1u);
  EXPECT_EQ(director.routed_to_host(), 1u);
}

TEST(TrafficDirectorTest, ClassifyChargesTheDpuNotTheHost) {
  SeFixture f;
  TrafficDirector& director = f.platform.storage().director();
  rt::UtilizationProbe probe(&f.platform.server());
  probe.Start();
  RemoteRequest request;
  for (int i = 0; i < 1000; ++i) director.Classify(request);
  f.sim.Run();
  probe.Stop();
  EXPECT_GT(probe.dpu_cores(), 0.0)
      << "the per-packet decision must cost DPU cycles";
  EXPECT_EQ(probe.host_cores(), 0.0)
      << "classification must not touch host cores";
}

TEST(RemoteStorageTest, PartialOffloadSplitMatchesDirectorCounters) {
  RemoteFixture f;
  Buffer data = kern::GenerateRandomBytes(256 * 1024, 11);
  fssub::FileId file = f.Prepare(data.span());
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);

  // 70/30 offloadable/host split, deterministic pattern.
  constexpr int kRequests = 100;
  int done = 0, flagged = 0;
  for (int i = 0; i < kRequests; ++i) {
    uint8_t flags = (i % 10) < 3 ? kRequestFlagRequiresHost : 0;
    flagged += flags ? 1 : 0;
    rsc.Read(file, uint64_t(i) * 2048, 2048,
             [&](Result<Buffer> d) {
               ASSERT_TRUE(d.ok());
               ++done;
             },
             flags);
  }
  f.sim.Run();
  EXPECT_EQ(done, kRequests);
  TrafficDirector& director = f.server->storage().director();
  EXPECT_EQ(director.routed_to_host(), uint64_t(flagged));
  EXPECT_EQ(director.routed_to_dpu(), uint64_t(kRequests - flagged));
  // Every DPU-routed request executed on the offload engine; host-routed
  // ones did not.
  EXPECT_EQ(f.server->storage().offload_engine().requests_executed(),
            uint64_t(kRequests - flagged));
}

// --------------------------------------------------------------------------
// Offload engine (UDF translation edge cases, persist mode).
// --------------------------------------------------------------------------

TEST(RemoteStorageTest, UdfFailureProducesErrorResponse) {
  RemoteFixture f;
  Buffer data = kern::GenerateRandomBytes(8192, 13);
  fssub::FileId file = f.Prepare(data.span());
  f.server->storage().offload_engine().SetUdf(
      [](const RemoteRequest& in) -> Result<RemoteRequest> {
        if (in.offset == 0) {
          return Status::InvalidArgument("UDF rejects offset 0");
        }
        return in;
      });
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);

  bool rejected = false, served = false;
  rsc.Read(file, 0, 4096, [&](Result<Buffer> d) {
    EXPECT_FALSE(d.ok()) << "UDF rejection must reach the client as !ok";
    rejected = true;
  });
  rsc.Read(file, 4096, 4096, [&](Result<Buffer> d) {
    EXPECT_TRUE(d.ok());
    served = true;
  });
  f.sim.Run();
  EXPECT_TRUE(rejected);
  EXPECT_TRUE(served);
  // Both requests reached the engine; failure still counts as executed.
  EXPECT_EQ(f.server->storage().offload_engine().requests_executed(), 2u);
}

TEST(RemoteStorageTest, OffloadEnginePersistModeAppliesToRemoteWrites) {
  RemoteFixture f;
  fssub::FileId file = f.Prepare(Buffer("seed").span());
  f.server->storage().offload_engine().SetPersistMode(
      PersistMode::kDpuLogAck);
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);

  Buffer payload = kern::GenerateRandomBytes(8192, 21);
  bool wrote = false;
  rsc.Write(file, 0, payload, [&](Status s) {
    ASSERT_TRUE(s.ok());
    wrote = true;
  });
  f.sim.Run();
  ASSERT_TRUE(wrote);
  EXPECT_EQ(f.server->storage().file_service().stats().log_acked_writes, 1u)
      << "offloaded writes must honor the engine's persist mode";

  Buffer got;
  rsc.Read(file, 0, 8192, [&](Result<Buffer> d) {
    got = std::move(d).value();
  });
  f.sim.Run();
  EXPECT_EQ(got, payload);
}

TEST(RemoteStorageTest, ReadBeyondFileFailsCleanly) {
  RemoteFixture f;
  fssub::FileId file = f.Prepare(Buffer("tiny").span());
  RemoteStorageClient rsc(&f.client->network(), 1, 9000);
  bool got_short = false;
  // Reads past EOF return the short prefix (empty here).
  rsc.Read(file, 100, 50, [&](Result<Buffer> d) {
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(d->empty());
    got_short = true;
  });
  // Unknown file id errors.
  bool got_error = false;
  rsc.Read(999, 0, 10, [&](Result<Buffer> d) {
    EXPECT_FALSE(d.ok());
    got_error = true;
  });
  f.sim.Run();
  EXPECT_TRUE(got_short);
  EXPECT_TRUE(got_error);
}

}  // namespace
}  // namespace dpdpu::se
