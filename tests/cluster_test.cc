// Tests for the cluster subsystem: consistent-hash shard routing
// (balance, stability, failover), fleet assembly, open/closed-loop
// workloads, fleet-aggregated metrics, deterministic replay, and
// fail/recover behavior (graceful drain and hard node-dark with
// timeout re-steer).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "cluster/consistency.h"
#include "cluster/fleet.h"
#include "cluster/payload_stamp.h"
#include "cluster/shard_router.h"
#include "cluster/workload.h"
#include "common/rng.h"

namespace dpdpu::cluster {
namespace {

std::vector<netsub::NodeId> Servers(uint32_t n) {
  std::vector<netsub::NodeId> ids;
  for (uint32_t i = 0; i < n; ++i) ids.push_back(i + 1);
  return ids;
}

// A small fleet spec sized for test speed (tight fs devices, 1 MB
// shards).
FleetSpec SmallFleetSpec(uint32_t storage, uint32_t clients,
                         uint32_t replication) {
  FleetSpec spec;
  spec.storage_servers = storage;
  spec.clients = clients;
  spec.routing.replication = replication;
  spec.shard_bytes = 1 << 20;
  spec.storage_template.fs_device_blocks = 2048;  // 8 MB device
  spec.client_template.fs_device_blocks = 1024;
  return spec;
}

WorkloadOptions SmallWorkload() {
  WorkloadOptions options;
  options.keyspace = 128;  // 128 x 8 KB = the 1 MB shard
  return options;
}

TEST(ShardRouterTest, HashIsDeterministic) {
  EXPECT_EQ(HashKey("user:42"), HashKey("user:42"));
  EXPECT_NE(HashKey("user:42"), HashKey("user:43"));
  EXPECT_EQ(HashU64(7), HashU64(7));
  EXPECT_NE(HashU64(7), HashU64(8));
}

TEST(ShardRouterTest, SpreadsKeysAcrossServers) {
  ShardRouter router(Servers(8), {});
  Pcg32 rng(1);
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(router.Route(rng.Next64()).has_value());
  }
  uint64_t min = UINT64_MAX, max = 0;
  for (const auto& [node, count] : router.routed()) {
    min = std::min(min, count);
    max = std::max(max, count);
  }
  EXPECT_EQ(router.routed().size(), 8u) << "some server got no keys";
  // 64 vnodes/server keeps the spread well inside 3x.
  EXPECT_LT(max, 3 * min) << "consistent hashing badly imbalanced";
}

TEST(ShardRouterTest, PreferenceListIsDistinctAndStable) {
  ShardRouter router(Servers(5), {.vnodes_per_server = 32,
                                  .replication = 3});
  Pcg32 rng(2);
  for (int i = 0; i < 1000; ++i) {
    uint64_t hash = rng.Next64();
    auto prefs = router.PreferenceList(hash);
    ASSERT_EQ(prefs.size(), 3u);
    EXPECT_NE(prefs[0], prefs[1]);
    EXPECT_NE(prefs[1], prefs[2]);
    EXPECT_NE(prefs[0], prefs[2]);
    EXPECT_EQ(prefs, router.PreferenceList(hash));
  }
}

TEST(ShardRouterTest, FailoverMovesOnlyTheFailedServersKeys) {
  ShardRouter router(Servers(4), {.vnodes_per_server = 64,
                                  .replication = 2});
  Pcg32 rng(3);
  std::vector<uint64_t> hashes;
  for (int i = 0; i < 2000; ++i) hashes.push_back(rng.Next64());

  std::map<uint64_t, netsub::NodeId> before;
  for (uint64_t h : hashes) before[h] = *router.Route(h);

  router.MarkDown(2);
  for (uint64_t h : hashes) {
    netsub::NodeId now = *router.Route(h);
    if (before[h] != 2) {
      EXPECT_EQ(now, before[h]) << "unrelated key remapped on failure";
    } else {
      EXPECT_NE(now, 2u);
      EXPECT_EQ(now, router.PreferenceList(h)[1])
          << "failed primary must re-steer to its replica";
    }
  }

  router.MarkUp(2);
  for (uint64_t h : hashes) {
    EXPECT_EQ(*router.Route(h), before[h]) << "recovery must restore";
  }
}

TEST(ShardRouterTest, AllReplicasDownRoutesNowhere) {
  ShardRouter router(Servers(2), {.replication = 2});
  router.MarkDown(1);
  router.MarkDown(2);
  EXPECT_FALSE(router.Route(123).has_value());
  EXPECT_EQ(router.live_servers(), 0u);
}

TEST(PeriodicTaskTest, FiresUntilCanceled) {
  sim::Simulator sim;
  int fires = 0;
  sim::PeriodicTask task;
  task.Start(&sim, 10, [&] {
    if (++fires == 5) task.Cancel();
  });
  sim.RunFor(1000);
  EXPECT_EQ(fires, 5);
  EXPECT_FALSE(task.active());
}

TEST(FleetTest, ClosedLoopCompletesAndReplaysIdentically) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    Fleet fleet(&sim, SmallFleetSpec(2, 2, 2));
    WorkloadOptions wopts = SmallWorkload();
    wopts.seed = seed;
    FleetClient c0(&fleet, 0, wopts), c1(&fleet, 1, wopts);
    ClosedLoopDriver driver({&c0, &c1}, 4, 200);
    fleet.StartProbes();
    driver.Start();
    sim.Run();
    fleet.StopProbes();
    FleetWorkloadSummary summary = Summarize({&c0, &c1});
    return std::tuple(summary.totals, summary.latency_ns.Mean(),
                      sim.now(), fleet.Usage().fabric_bytes);
  };
  auto [totals, mean, end, fabric] = run(5);
  EXPECT_EQ(totals.issued, 200u);
  EXPECT_EQ(totals.completed, 200u);
  EXPECT_EQ(totals.failed, 0u);
  EXPECT_GT(fabric, 200u * 8192u) << "8 KB payloads must cross the fabric";

  auto [totals2, mean2, end2, fabric2] = run(5);
  EXPECT_EQ(totals2.completed, totals.completed);
  EXPECT_EQ(end2, end) << "same seed must replay bit-for-bit";
  EXPECT_EQ(mean2, mean);
  EXPECT_EQ(fabric2, fabric);

  auto [totals3, mean3, end3, fabric3] = run(6);
  (void)totals3;
  (void)fabric3;
  EXPECT_TRUE(end3 != end || mean3 != mean)
      << "different seed should perturb the trace";
}

TEST(FleetTest, MixedWorkloadWritesReplicate) {
  sim::Simulator sim;
  Fleet fleet(&sim, SmallFleetSpec(3, 2, 2));
  WorkloadOptions wopts = SmallWorkload();
  wopts.read_fraction = 0.5;
  FleetClient c0(&fleet, 0, wopts), c1(&fleet, 1, wopts);
  ClosedLoopDriver driver({&c0, &c1}, 2, 100);
  driver.Start();
  sim.Run();
  FleetWorkloadSummary summary = Summarize({&c0, &c1});
  EXPECT_EQ(summary.totals.issued, 100u);
  EXPECT_EQ(summary.totals.completed, 100u);
  EXPECT_EQ(summary.totals.failed, 0u);
}

TEST(FleetTest, GracefulFailureLosesNothingAndResteers) {
  sim::Simulator sim;
  Fleet fleet(&sim, SmallFleetSpec(3, 3, 2));
  WorkloadOptions wopts = SmallWorkload();
  std::vector<std::unique_ptr<FleetClient>> owned;
  std::vector<FleetClient*> clients;
  for (uint32_t i = 0; i < 3; ++i) {
    owned.push_back(std::make_unique<FleetClient>(&fleet, i, wopts));
    clients.push_back(owned.back().get());
  }
  OpenLoopDriver driver(clients, 100e3, 9);

  constexpr sim::SimTime kWindow = 4 * sim::kMillisecond;
  uint64_t routed_at_failure = 0;
  netsub::NodeId failed = fleet.storage_node_id(1);
  sim.ScheduleAt(kWindow / 2, [&] {
    auto it = fleet.router().routed().find(failed);
    routed_at_failure =
        it == fleet.router().routed().end() ? 0 : it->second;
    fleet.FailStorageNode(1, FailMode::kGraceful);
  });
  driver.Run(kWindow);
  sim.Run();

  FleetWorkloadSummary summary = Summarize(clients);
  EXPECT_GT(summary.totals.issued, 100u);
  EXPECT_EQ(summary.totals.completed, summary.totals.issued)
      << "graceful failover must not lose requests";
  EXPECT_EQ(summary.totals.failed, 0u);
  auto it = fleet.router().routed().find(failed);
  uint64_t routed_total = it == fleet.router().routed().end()
                              ? 0
                              : it->second;
  EXPECT_EQ(routed_total, routed_at_failure)
      << "no new traffic may reach a failed node";
  EXPECT_FALSE(fleet.IsStorageNodeUp(1));
}

TEST(FleetTest, HardFailureRecoversViaTimeoutResteer) {
  sim::Simulator sim;
  Fleet fleet(&sim, SmallFleetSpec(2, 1, 2));
  WorkloadOptions wopts = SmallWorkload();
  wopts.retry_timeout = 500 * sim::kMicrosecond;
  wopts.max_attempts = 3;
  FleetClient client(&fleet, 0, wopts);

  // Issue a burst, then the primary-for-some-keys node goes dark with
  // requests in flight. Timeouts must re-steer them to the replica.
  for (int i = 0; i < 40; ++i) client.IssueOne();
  sim.ScheduleAt(5 * sim::kMicrosecond,
                 [&] { fleet.FailStorageNode(0, FailMode::kHard); });
  // The dead node's TCP peers retransmit forever; bound virtual time
  // instead of draining the queue.
  sim.RunFor(100 * sim::kMillisecond);

  EXPECT_EQ(client.stats().issued, 40u);
  EXPECT_EQ(client.stats().completed, 40u)
      << "every request must finish on the replica";
  EXPECT_EQ(client.stats().failed, 0u);
  EXPECT_GT(client.stats().resteered, 0u)
      << "some in-flight requests must have re-steered";
  EXPECT_GT(fleet.fabric().packets_dropped_node_down(), 0u);
}

TEST(FleetTest, UsageAggregatesAndTimelineSamples) {
  sim::Simulator sim;
  FleetSpec spec = SmallFleetSpec(2, 2, 1);
  // Baseline TCP keeps the storage hosts visibly busy.
  spec.storage_template.network.tcp_mode = ne::TcpMode::kHostKernel;
  Fleet fleet(&sim, spec);
  WorkloadOptions wopts = SmallWorkload();
  wopts.offload_fraction = 0.0;
  FleetClient c0(&fleet, 0, wopts), c1(&fleet, 1, wopts);
  ClosedLoopDriver driver({&c0, &c1}, 4, 300);

  fleet.StartProbes();
  fleet.SampleStorageCoresEvery(100 * sim::kMicrosecond);
  driver.Start();
  // While sampling is active the event queue is never empty; stop it
  // from inside virtual time so Run() can drain.
  sim.ScheduleAt(5 * sim::kMillisecond, [&] { fleet.StopSampling(); });
  sim.Run();
  fleet.StopProbes();

  FleetUsage usage = fleet.Usage();
  EXPECT_GT(usage.storage_host_cores, 0.0)
      << "host-path requests must consume storage host cores";
  EXPECT_GT(usage.dpu_cores, 0.0);
  EXPECT_GE(usage.host_cores, usage.storage_host_cores);
  EXPECT_GT(usage.fabric_bytes, 0u);
  EXPECT_GT(fleet.storage_host_core_timeline().size(), 0u);
  for (double cores : fleet.storage_host_core_timeline()) {
    EXPECT_GE(cores, 0.0);
  }
}

TEST(PayloadStampTest, RoundTripAndVerify) {
  Buffer payload = MakeStampedPayload(8192, PayloadStamp{7, 42, 99});
  auto stamp = ParsePayloadStamp(payload.span());
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->key, 7u);
  EXPECT_EQ(stamp->version, 42u);
  EXPECT_EQ(stamp->seed, 99u);
  EXPECT_TRUE(VerifyStampedPayload(payload.span()));
  payload[payload.size() - 1] ^= 0xff;
  EXPECT_FALSE(VerifyStampedPayload(payload.span()))
      << "a corrupted body byte must fail verification";
  Buffer zeros(8192);
  EXPECT_FALSE(ParsePayloadStamp(zeros.span()).has_value())
      << "never-written shard fill must not parse as a stamp";
  Buffer other = MakeStampedPayload(8192, PayloadStamp{7, 43, 99});
  EXPECT_FALSE(payload == other) << "versions must change the body";
}

TEST(ShardRouterTest, WriteOnlyNodesTakeWritesButNotReads) {
  ShardRouter router(Servers(2), {.replication = 2});
  router.MarkWriteOnly(1);
  EXPECT_TRUE(router.IsUp(1));
  EXPECT_TRUE(router.IsWritable(1));
  EXPECT_FALSE(router.IsReadable(1));
  for (uint64_t h : {1ull, 99ull, 12345ull}) {
    EXPECT_EQ(*router.Route(h), 2u) << "reads must avoid write-only nodes";
  }
  router.MarkUp(1);
  EXPECT_TRUE(router.IsReadable(1));
}

// The tentpole bug, deterministically: write a key, fail its primary,
// write again (the surviving replica takes it), recover, read. Without
// the consistency layer the recovered primary rejoins the read set
// immediately and serves its pre-failure block; with it, catch-up
// replays the hinted write before reads return to the node.
TEST(ConsistencyTest, RecoveredReplicaServesStaleDataWithoutLayer) {
  auto run = [](bool enabled) {
    sim::Simulator sim;
    FleetSpec spec = SmallFleetSpec(2, 1, 2);
    spec.consistency.enabled = enabled;
    Fleet fleet(&sim, spec);
    FleetClient client(&fleet, 0, SmallWorkload());

    constexpr uint64_t kKey = 3;
    uint32_t primary = fleet.storage_index(
        fleet.router().PreferenceList(HashU64(kKey))[0]);

    client.IssueWrite(kKey);
    sim.Run();
    fleet.FailStorageNode(primary, FailMode::kGraceful);
    client.IssueWrite(kKey);  // reaches only the surviving replica
    sim.Run();
    fleet.RecoverStorageNode(primary);
    sim.Run();  // drains catch-up when the layer is on
    EXPECT_TRUE(fleet.IsStorageNodeReadable(primary));
    client.IssueRead(kKey);  // routes to the recovered primary
    sim.Run();

    EXPECT_EQ(client.stats().completed, 3u);
    EXPECT_EQ(client.stats().failed, 0u);
    return client.stats().stale_reads;
  };
  EXPECT_GE(run(false), 1u) << "without the layer the recovered primary "
                               "must serve the pre-failure block";
  EXPECT_EQ(run(true), 0u) << "catch-up must bring the primary current "
                              "before reads return to it";
}

TEST(ConsistencyTest, CatchUpReplaysHintsBeforeReadmission) {
  sim::Simulator sim;
  FleetSpec spec = SmallFleetSpec(2, 1, 2);
  spec.consistency.enabled = true;
  Fleet fleet(&sim, spec);
  FleetClient client(&fleet, 0, SmallWorkload());

  fleet.FailStorageNode(0, FailMode::kGraceful);
  for (uint64_t key = 0; key < 6; ++key) client.IssueWrite(key);
  sim.Run();
  EXPECT_EQ(fleet.consistency().hints_pending(0), 6u);

  fleet.RecoverStorageNode(0);
  // Until catch-up drains, the node takes writes but serves no reads.
  EXPECT_TRUE(fleet.router().IsWritable(fleet.storage_node_id(0)));
  EXPECT_FALSE(fleet.IsStorageNodeReadable(0));
  sim.Run();
  EXPECT_TRUE(fleet.IsStorageNodeReadable(0));

  const ConsistencyManager::Stats& stats = fleet.consistency().stats();
  EXPECT_EQ(stats.hints_replayed, 6u);
  EXPECT_EQ(stats.hint_bytes, 6u * 8192u);
  EXPECT_EQ(stats.hint_overflow_fallbacks, 0u);
  EXPECT_EQ(stats.catchup_write_failures, 0u);
  EXPECT_EQ(fleet.consistency().hints_pending(0), 0u);

  for (uint64_t key = 0; key < 6; ++key) client.IssueRead(key);
  sim.Run();
  EXPECT_EQ(client.stats().stale_reads, 0u);
  EXPECT_EQ(client.stats().failed, 0u);
}

TEST(ConsistencyTest, HintOverflowFallsBackToVersionMapDiff) {
  sim::Simulator sim;
  FleetSpec spec = SmallFleetSpec(2, 1, 2);
  spec.consistency.enabled = true;
  spec.consistency.max_hints_per_node = 4;
  Fleet fleet(&sim, spec);
  WorkloadOptions wopts = SmallWorkload();
  FleetClient client(&fleet, 0, wopts);

  fleet.FailStorageNode(0, FailMode::kGraceful);
  for (uint64_t key = 0; key < 10; ++key) client.IssueWrite(key);
  sim.Run();
  EXPECT_TRUE(fleet.consistency().hint_overflowed(0));

  fleet.RecoverStorageNode(0);
  sim.Run();
  const ConsistencyManager::Stats& stats = fleet.consistency().stats();
  EXPECT_EQ(stats.hint_overflow_fallbacks, 1u);
  EXPECT_EQ(stats.hints_replayed, 0u)
      << "an overflowed queue must be abandoned, not partially replayed";
  EXPECT_EQ(stats.diff_blocks_copied, 10u);
  EXPECT_EQ(stats.diff_bytes, 10u * uint64_t(wopts.request_bytes));
  EXPECT_LT(stats.diff_bytes, fleet.spec().shard_bytes)
      << "catch-up must move targeted blocks, not the whole shard";

  for (uint64_t key = 0; key < 10; ++key) client.IssueRead(key);
  sim.Run();
  EXPECT_EQ(client.stats().stale_reads, 0u);
  EXPECT_EQ(client.stats().failed, 0u);
}

// Every queued hint must end in exactly one bucket: replayed, abandoned
// (discarded at the overflow fallback), or still pending. The overflow
// path used to erase the abandoned queue uncounted, so dropped-at-
// enqueue and abandoned-at-fallback were indistinguishable and the
// books never balanced (found by the cluster-hint-overflow scenario,
// regression token simex:1:0=1,1=1).
TEST(ConsistencyTest, HintOverflowAccountingConserved) {
  sim::Simulator sim;
  FleetSpec spec = SmallFleetSpec(2, 1, 2);
  spec.consistency.enabled = true;
  spec.consistency.max_hints_per_node = 4;
  Fleet fleet(&sim, spec);
  FleetClient client(&fleet, 0, SmallWorkload());

  fleet.FailStorageNode(0, FailMode::kGraceful);
  for (uint64_t key = 0; key < 10; ++key) client.IssueWrite(key);
  sim.Run();

  const ConsistencyManager::Stats& stats = fleet.consistency().stats();
  EXPECT_EQ(stats.hints_queued, 4u);
  EXPECT_EQ(stats.hints_dropped, 6u)
      << "writes past the full queue are rejected at enqueue";
  EXPECT_EQ(fleet.consistency().hints_pending(0), 4u);

  fleet.RecoverStorageNode(0);
  sim.Run();
  EXPECT_EQ(stats.hints_replayed, 0u);
  EXPECT_EQ(stats.hints_abandoned, 4u)
      << "the abandoned queue must be counted, not silently erased";
  EXPECT_EQ(fleet.consistency().hints_pending(0), 0u);
  uint64_t pending = 0;
  for (uint32_t i = 0; i < 2; ++i) {
    pending += fleet.consistency().hints_pending(i);
  }
  EXPECT_EQ(stats.hints_queued,
            stats.hints_replayed + stats.hints_abandoned + pending);
}

TEST(ConsistencyTest, RecoverWhileWritingStaysConsistent) {
  sim::Simulator sim;
  FleetSpec spec = SmallFleetSpec(3, 2, 2);
  spec.consistency.enabled = true;
  Fleet fleet(&sim, spec);
  WorkloadOptions wopts = SmallWorkload();
  wopts.read_fraction = 0.5;
  FleetClient c0(&fleet, 0, wopts), c1(&fleet, 1, wopts);
  ClosedLoopDriver driver({&c0, &c1}, 4, 400);

  sim.ScheduleAt(200 * sim::kMicrosecond,
                 [&] { fleet.FailStorageNode(1, FailMode::kGraceful); });
  sim.ScheduleAt(1 * sim::kMillisecond,
                 [&] { fleet.RecoverStorageNode(1); });
  driver.Start();
  sim.Run();

  FleetWorkloadSummary summary = Summarize({&c0, &c1});
  EXPECT_EQ(summary.totals.issued, 400u);
  EXPECT_EQ(summary.totals.completed + summary.totals.failed, 400u)
      << "every op must settle even when recovery races the workload";
  EXPECT_EQ(summary.totals.stale_reads, 0u);
  EXPECT_TRUE(fleet.IsStorageNodeReadable(1));

  // Quiesced read-back of the whole keyspace: all content current.
  for (uint64_t key = 0; key < wopts.keyspace; ++key) c0.IssueRead(key);
  sim.Run();
  EXPECT_EQ(Summarize({&c0, &c1}).totals.stale_reads, 0u);
  EXPECT_EQ(Summarize({&c0, &c1}).totals.failed, 0u);
}

TEST(ConsistencyTest, OpenLoopFailRecoverStaleOnlyWithoutLayer) {
  auto run = [](bool enabled) {
    sim::Simulator sim;
    FleetSpec spec = SmallFleetSpec(2, 2, 2);
    spec.consistency.enabled = enabled;
    Fleet fleet(&sim, spec);
    WorkloadOptions wopts = SmallWorkload();
    wopts.read_fraction = 0.5;
    FleetClient c0(&fleet, 0, wopts), c1(&fleet, 1, wopts);
    OpenLoopDriver driver({&c0, &c1}, 200e3, 11);

    sim.ScheduleAt(1 * sim::kMillisecond,
                   [&] { fleet.FailStorageNode(0, FailMode::kGraceful); });
    sim.ScheduleAt(2 * sim::kMillisecond,
                   [&] { fleet.RecoverStorageNode(0); });
    driver.Run(4 * sim::kMillisecond);
    sim.Run();

    // Quiesced read-back over the keyspace makes staleness visible even
    // if the tail of the window happened not to touch affected keys.
    for (uint64_t key = 0; key < wopts.keyspace; ++key) c0.IssueRead(key);
    sim.Run();
    return Summarize({&c0, &c1}).totals.stale_reads;
  };
  EXPECT_GE(run(false), 1u);
  EXPECT_EQ(run(true), 0u);
}

TEST(FleetTest, CloseCallbackResteersWithoutRetryTimeout) {
  sim::Simulator sim;
  FleetSpec spec = SmallFleetSpec(2, 1, 2);
  constexpr sim::SimTime kCap = 2 * sim::kMillisecond;
  spec.client_template.network.tcp_config.max_retransmit_time = kCap;
  Fleet fleet(&sim, spec);
  WorkloadOptions wopts = SmallWorkload();
  wopts.retry_timeout = 0;  // recovery rides purely on the close callback
  FleetClient client(&fleet, 0, wopts);

  // Warm the connections (handshake + RTT estimate), then strand a
  // burst against a node that goes dark before any of the new request
  // segments reach it — they stay unacked, so the client's own
  // retransmission cap fires the abort. (An idle connection whose
  // requests were already acked has nothing to retransmit and would
  // never abort; stranding unacked sends is the case this path covers.)
  for (int i = 0; i < 8; ++i) client.IssueOne();
  sim.Run();
  for (int i = 0; i < 40; ++i) client.IssueOne();
  fleet.FailStorageNode(0, FailMode::kHard);
  sim.RunFor(100 * sim::kMillisecond);

  EXPECT_EQ(client.stats().issued, 48u);
  EXPECT_EQ(client.stats().completed, 48u)
      << "aborted requests must re-steer to the replica";
  EXPECT_EQ(client.stats().failed, 0u);
  EXPECT_GT(client.stats().resteered, 0u);
  // Failover latency is bounded by the abort cap (plus one RTO of stall
  // detection and the re-steered read), not by an application timeout —
  // with timeouts off, the old behavior stranded these ops for the
  // default 10 s cap.
  EXPECT_LE(client.latency_ns().max(),
            uint64_t(kCap) + uint64_t(sim::kMillisecond));
}

TEST(FleetTest, GracefulDrainCompletesTrackedInflightRpcs) {
  sim::Simulator sim;
  Fleet fleet(&sim, SmallFleetSpec(2, 1, 2));
  FleetClient client(&fleet, 0, SmallWorkload());

  for (int i = 0; i < 16; ++i) client.IssueOne();
  EXPECT_EQ(fleet.inflight_rpcs(0) + fleet.inflight_rpcs(1), 16u)
      << "issued RPCs must be tracked per node";
  fleet.FailStorageNode(0, FailMode::kGraceful);
  sim.Run();
  EXPECT_EQ(fleet.inflight_rpcs(0), 0u)
      << "graceful drain must complete every tracked in-flight RPC";
  EXPECT_EQ(fleet.inflight_rpcs(1), 0u);
  EXPECT_EQ(client.stats().completed, 16u);
  EXPECT_EQ(client.stats().failed, 0u);
}

TEST(FleetTest, WriteTimeoutsSettleEveryFanout) {
  sim::Simulator sim;
  FleetSpec spec = SmallFleetSpec(2, 1, 2);
  spec.client_template.network.tcp_config.max_retransmit_time =
      2 * sim::kMillisecond;
  Fleet fleet(&sim, spec);
  WorkloadOptions wopts = SmallWorkload();
  wopts.read_fraction = 0.0;
  wopts.retry_timeout = 500 * sim::kMicrosecond;
  wopts.max_attempts = 2;
  FleetClient client(&fleet, 0, wopts);

  client.IssueWrite(0);  // warm the connections
  sim.Run();
  for (int i = 0; i < 20; ++i) client.IssueOne();
  sim.Schedule(5 * sim::kMicrosecond,
               [&] { fleet.FailStorageNode(0, FailMode::kHard); });
  sim.RunFor(100 * sim::kMillisecond);

  // The bug: fan-out writes had no timeout or generation guard, so a
  // dark replica stranded write_pending forever. Every op must settle.
  EXPECT_EQ(client.stats().issued, 21u);
  EXPECT_EQ(client.stats().completed + client.stats().failed, 21u);
  EXPECT_GT(client.stats().write_giveups, 0u);
  EXPECT_EQ(fleet.inflight_rpcs(0) + fleet.inflight_rpcs(1), 0u)
      << "aborted RPCs must be accounted done";
}

}  // namespace
}  // namespace dpdpu::cluster
