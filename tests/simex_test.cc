// Tests for simex, the bounded stateless model checker: replay-token
// round-trips, DPOR race-reversal branching, pruning of commuting ties,
// exhaustive component-choice coverage, delta-debugging minimization,
// and the re-find of the PR-5 PageCache tie-order race with its fix
// (the FileService reactor serialization) absent.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fssub/page_cache.h"
#include "sim/simex.h"
#include "sim/simrace.h"
#include "sim/simulator.h"

namespace dpdpu::sim {
namespace {

TEST(SimexTokenTest, ReferenceRoundTrip) {
  EXPECT_EQ(PlanToToken(Plan{}), "simex:1");
  Plan plan;
  ASSERT_TRUE(TokenToPlan("simex:1", &plan));
  EXPECT_TRUE(plan.empty());
  // All-default plans serialize to the reference token too.
  EXPECT_EQ(PlanToToken(Plan{0, 0, 0}), "simex:1");
}

TEST(SimexTokenTest, SparseRoundTrip) {
  Plan plan{0, 2, 0, 0, 1};
  std::string token = PlanToToken(plan);
  EXPECT_EQ(token, "simex:1:1=2,4=1");
  Plan parsed;
  ASSERT_TRUE(TokenToPlan(token, &parsed));
  EXPECT_EQ(parsed, plan);
}

TEST(SimexTokenTest, MalformedTokensRejected) {
  Plan plan;
  EXPECT_FALSE(TokenToPlan("", &plan));
  EXPECT_FALSE(TokenToPlan("simex:2:0=1", &plan));
  EXPECT_FALSE(TokenToPlan("simex:1:0", &plan));
  EXPECT_FALSE(TokenToPlan("simex:1:=1", &plan));
  EXPECT_FALSE(TokenToPlan("simex:1:0=", &plan));
  EXPECT_FALSE(TokenToPlan("simex:1:a=1", &plan));
  EXPECT_FALSE(TokenToPlan("simex:1:0=x", &plan));
  EXPECT_TRUE(plan.empty());
}

// Two same-timestamp writes to shared state: last writer wins, so the
// metric depends on tie order. The reference schedule reports the race
// (DPOR's branch source); with race_is_failure off, the reversal branch
// must surface the bug as a metric divergence instead.
ScenarioResult LastWriterScenario(Simulator& sim) {
  auto winner = std::make_shared<Racy<int>>("test.winner");
  sim.Schedule(100, [winner] { winner->write() = 1; });
  sim.Schedule(100, [winner] { winner->write() = 2; });
  sim.Run();
  ScenarioResult r;
  r.metrics = "winner=" + std::to_string(winner->read()) + "\n";
  return r;
}

TEST(SimexExploreTest, RaceIsAFailureByDefault) {
  Explorer ex(LastWriterScenario);
  EXPECT_FALSE(ex.Explore());
  ASSERT_FALSE(ex.failures().empty());
  EXPECT_EQ(ex.failures()[0].kind, "race");
  // The reference schedule already exhibits it.
  EXPECT_EQ(ex.failures()[0].token, "simex:1");
}

TEST(SimexExploreTest, DporReversalFindsMetricDivergence) {
  ExploreOptions options;
  options.race_is_failure = false;
  Explorer ex(LastWriterScenario, options);
  EXPECT_FALSE(ex.Explore());
  ASSERT_FALSE(ex.failures().empty());
  const ExploreFailure& f = ex.failures()[0];
  EXPECT_EQ(f.kind, "metric-divergence");
  EXPECT_NE(f.detail.find("winner=2"), std::string::npos);
  EXPECT_NE(f.detail.find("winner=1"), std::string::npos);
  // Exactly one reversal branch: the reference plus the flipped tie.
  EXPECT_EQ(ex.stats().tie_branches, 1u);
  // The trace replays and renders the flipped decision.
  std::string trace = ex.FormatTrace(f);
  EXPECT_NE(trace.find(f.token), std::string::npos);
  EXPECT_NE(trace.find("tie@t=100ns"), std::string::npos);
}

// Eight same-timestamp events bumping *independent* counters commute:
// no races, so DPOR must prune the entire 8!-schedule space down to the
// single reference run.
TEST(SimexExploreTest, CommutingTiesArePruned) {
  auto scenario = [](Simulator& sim) {
    auto counters = std::make_shared<std::vector<int>>(8, 0);
    for (int i = 0; i < 8; ++i) {
      sim.Schedule(10, [counters, i] { (*counters)[i]++; });
    }
    sim.Run();
    ScenarioResult r;
    r.metrics = "sum=8\n";
    return r;
  };
  Explorer ex(scenario);
  EXPECT_TRUE(ex.Explore());
  EXPECT_EQ(ex.stats().schedules_run, 1u);
  EXPECT_EQ(ex.stats().tie_branches, 0u);
  // Naive enumeration would walk 8! = 40320 schedules; the explorer's
  // naive_log10 counts the per-decision fan-out product (8 * 7 * ...).
  EXPECT_GT(ex.stats().naive_log10, 4.0);
  EXPECT_GT(ex.stats().pruning_factor, 10.0);
}

// A component choice point with a bug on a non-default alternative:
// fifo/lifo/shuffle never take it (they only permute ties); the
// explorer must enumerate it and report the scenario invariant.
TEST(SimexExploreTest, FaultChoicePointsAreEnumerated) {
  auto scenario = [](Simulator& sim) {
    ScenarioResult r;
    uint32_t pick = sim.Choose("fault.slot", 7, 4);
    sim.Schedule(10, [] {});
    sim.Run();
    if (pick == 3) {
      r.ok = false;
      r.failure = "ack lost when the fault lands in slot 3";
    }
    r.metrics = "pick=" + std::to_string(pick) + "\n";
    return r;
  };
  Explorer ex(scenario);
  EXPECT_FALSE(ex.Explore());
  ASSERT_FALSE(ex.failures().empty());
  const ExploreFailure& f = ex.failures()[0];
  EXPECT_EQ(f.kind, "invariant");
  EXPECT_EQ(f.token, "simex:1:0=3");
  EXPECT_NE(f.detail.find("slot 3"), std::string::npos);
  EXPECT_EQ(ex.stats().choice_points, 1u);
  EXPECT_EQ(ex.stats().fault_branches, 3u);
}

// Metric equality must not be enforced across different fault picks:
// injecting a fault legitimately changes metrics, and flagging that as
// divergence would drown real schedule sensitivity in noise.
TEST(SimexExploreTest, MetricEqualitySkippedAcrossFaultPicks) {
  auto scenario = [](Simulator& sim) {
    ScenarioResult r;
    uint32_t pick = sim.Choose("fault.slot", 0, 3);
    sim.Run();
    r.metrics = "completed=" + std::to_string(100 - 10 * pick) + "\n";
    return r;
  };
  Explorer ex(scenario);
  EXPECT_TRUE(ex.Explore());
  EXPECT_EQ(ex.stats().schedules_run, 3u);
}

// An out-of-range plan pick (e.g. a token minted against an older
// scenario revision with more alternatives) is clamped to the default.
// The clamp must be what everything downstream keys on: Decision.chosen
// records the effective pick, the effective plan trims to empty, and
// metric comparison treats the run as the reference — never as a
// divergent fault branch judged on the raw plan value.
TEST(SimexExploreTest, ClampedPickMatchesReferenceMetrics) {
  auto scenario = [](Simulator& sim) {
    ScenarioResult r;
    uint32_t pick = sim.Choose("fault.slot", 1, 3);
    sim.Run();
    r.metrics = "completed=" + std::to_string(100 - 10 * pick) + "\n";
    return r;
  };
  Explorer ex(scenario);
  RunRecord reference = ex.Run(Plan{});
  Plan overshoot{7};  // scenario only offers alternatives 0..2
  RunRecord clamped = ex.Run(overshoot);
  ASSERT_EQ(clamped.decisions.size(), 1u);
  EXPECT_EQ(clamped.decisions[0].n, 3u);
  EXPECT_EQ(clamped.decisions[0].chosen, 0u)
      << "an out-of-range pick must clamp to the default alternative";
  EXPECT_TRUE(clamped.effective.empty())
      << "the effective plan records the clamp, not the raw pick";
  EXPECT_EQ(clamped.result.metrics, reference.result.metrics);
  // End to end: exploring with metric checks on stays clean — the
  // clamped run is recognized as the reference schedule, not flagged
  // as metric divergence against it.
  Explorer ex2(scenario);
  EXPECT_TRUE(ex2.Explore());
}

// Minimization: three choice points, only the middle one matters. A
// deliberately fat failing plan must shrink to the single essential
// pick.
TEST(SimexMinimizeTest, ShrinksToEssentialChoices) {
  auto scenario = [](Simulator& sim) {
    uint32_t a = sim.Choose("knob.a", 0, 2);
    uint32_t b = sim.Choose("knob.b", 0, 2);
    uint32_t c = sim.Choose("knob.c", 0, 2);
    sim.Run();
    ScenarioResult r;
    if (b == 1) {
      r.ok = false;
      r.failure = "knob.b=1 violates the invariant";
    }
    r.metrics = "a=" + std::to_string(a) + " c=" + std::to_string(c) + "\n";
    return r;
  };
  Explorer ex(scenario);
  ExploreFailure fat;
  fat.plan = Plan{1, 1, 1};
  fat.token = PlanToToken(fat.plan);
  fat.kind = "invariant";
  ex.Minimize(&fat);
  EXPECT_EQ(fat.plan, (Plan{0, 1}));
  EXPECT_EQ(fat.token, "simex:1:1=1");
  EXPECT_NE(fat.detail.find("knob.b=1"), std::string::npos);
}

TEST(SimexMinimizeTest, IrreducibleFailureKeepsItsPlan) {
  auto scenario = [](Simulator& sim) {
    uint32_t pick = sim.Choose("knob", 0, 2);
    sim.Run();
    ScenarioResult r;
    if (pick == 1) {
      r.ok = false;
      r.failure = "knob=1";
    }
    return r;
  };
  Explorer ex(scenario);
  ExploreFailure f;
  f.plan = Plan{1};
  f.token = PlanToToken(f.plan);
  f.kind = "invariant";
  ex.Minimize(&f);
  EXPECT_EQ(f.plan, Plan{1});
  EXPECT_EQ(f.detail, "knob=1");
}

// The PR-5 bug, fix reverted in-harness: FileService now serializes all
// its events on a reactor HbChain (the SPDK single-reactor model); this
// scenario drives the PageCache from two causally-unordered events at
// one timestamp — exactly the pre-fix schedule shape — and simex must
// re-find the hit/miss race that motivated the chain.
TEST(SimexExploreTest, RefindsPageCacheTieOrderRace) {
  auto scenario = [](Simulator& sim) {
    auto cache = std::make_shared<fssub::PageCache>(1 << 20);
    auto hits = std::make_shared<int>(0);
    sim.Schedule(100, [cache, hits] {
      if (cache->Get(fssub::PageKey{1, 0}) != nullptr) ++*hits;
    });
    sim.Schedule(100, [cache] {
      cache->Put(fssub::PageKey{1, 0}, Buffer(4096));
    });
    sim.Run();
    ScenarioResult r;
    r.metrics = "hits=" + std::to_string(*hits) + "\n";
    return r;
  };
  ExploreOptions options;
  options.race_is_failure = false;  // force the divergence path too
  Explorer ex(scenario, options);
  EXPECT_FALSE(ex.Explore());
  ASSERT_FALSE(ex.failures().empty());
  EXPECT_EQ(ex.failures()[0].kind, "metric-divergence");
  EXPECT_NE(ex.failures()[0].detail.find("hits="), std::string::npos);

  // And with the race invariant on, the reference run itself reports
  // the page-cache race with provenance.
  Explorer ex2{Scenario(scenario)};
  EXPECT_FALSE(ex2.Explore());
  ASSERT_FALSE(ex2.failures().empty());
  EXPECT_EQ(ex2.failures()[0].kind, "race");
  std::string trace = ex2.FormatTrace(ex2.failures()[0]);
  EXPECT_NE(trace.find("PageCache"), std::string::npos);
  EXPECT_NE(trace.find("provenance"), std::string::npos);
}

// Replay determinism: the same plan always yields the same record.
TEST(SimexExploreTest, ReplayIsDeterministic) {
  ExploreOptions options;
  options.race_is_failure = false;
  Explorer ex(LastWriterScenario, options);
  ASSERT_FALSE(ex.Explore());
  ASSERT_FALSE(ex.failures().empty());
  Plan plan = ex.failures()[0].plan;
  RunRecord a = ex.Run(plan);
  RunRecord b = ex.Run(plan);
  EXPECT_EQ(a.result.metrics, b.result.metrics);
  EXPECT_EQ(a.effective, b.effective);
  EXPECT_EQ(a.race_count, b.race_count);
}

}  // namespace
}  // namespace dpdpu::sim
