// Tests for the DEFLATE codec: known-stream vectors, encode/decode
// round-trips across data shapes and levels (parameterized property
// sweep), Huffman utilities, and corruption handling.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "kern/bitio.h"
#include "kern/deflate.h"
#include "kern/deflate_tables.h"
#include "kern/huffman.h"
#include "kern/textgen.h"

namespace dpdpu::kern {
namespace {

// --------------------------------------------------------------------------
// Bit I/O.
// --------------------------------------------------------------------------

TEST(BitIoTest, WriterReaderRoundTrip) {
  Buffer buf;
  BitWriter w(&buf);
  w.WriteBits(0b101, 3);
  w.WriteBits(0xFFFF, 16);
  w.WriteBits(0, 5);
  w.WriteBits(0b1101, 4);
  w.AlignToByte();

  BitReader r(buf.span());
  uint32_t v;
  ASSERT_TRUE(r.ReadBits(3, &v));
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(r.ReadBits(16, &v));
  EXPECT_EQ(v, 0xFFFFu);
  ASSERT_TRUE(r.ReadBits(5, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(r.ReadBits(4, &v));
  EXPECT_EQ(v, 0b1101u);
}

TEST(BitIoTest, LsbFirstPacking) {
  Buffer buf;
  BitWriter w(&buf);
  w.WriteBits(1, 1);  // bit 0 of first byte
  w.WriteBits(0, 1);
  w.WriteBits(1, 1);  // bit 2
  w.AlignToByte();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0b00000101);
}

TEST(BitIoTest, HuffmanCodeIsBitReversed) {
  Buffer buf;
  BitWriter w(&buf);
  // Code value 0b110 (MSB-first) must appear as bits 0,1,1.
  w.WriteHuffmanCode(0b110, 3);
  w.AlignToByte();
  EXPECT_EQ(buf[0], 0b00000011);
}

TEST(BitIoTest, ReaderUnderflow) {
  Buffer buf;
  buf.AppendU8(0xAA);
  BitReader r(buf.span());
  uint32_t v;
  ASSERT_TRUE(r.ReadBits(8, &v));
  EXPECT_FALSE(r.ReadBits(1, &v));
}

TEST(BitIoTest, AlignToByteDiscardsPartial) {
  Buffer buf;
  buf.AppendU8(0xFF);
  buf.AppendU8(0x42);
  BitReader r(buf.span());
  uint32_t v;
  ASSERT_TRUE(r.ReadBits(3, &v));
  r.AlignToByte();
  uint8_t b;
  ASSERT_TRUE(r.ReadAlignedByte(&b));
  EXPECT_EQ(b, 0x42);
}

TEST(BitIoTest, PeekConsumeMatchesReadBits) {
  // Interleave the bulk lookahead primitives with the classic ReadBits
  // path over a random stream: both views must see the same bits.
  Buffer data = GenerateRandomBytes(257, 42);
  BitReader peek_reader(data.span());
  BitReader read_reader(data.span());
  Pcg32 rng(7);
  size_t bits_left = data.size() * 8;
  while (bits_left > 0) {
    int count = int(1 + rng.NextBounded(16));
    if (size_t(count) > bits_left) count = int(bits_left);
    uint32_t expected;
    ASSERT_TRUE(read_reader.ReadBits(count, &expected));
    peek_reader.Refill();
    ASSERT_GE(peek_reader.bits_buffered(), count);
    EXPECT_EQ(peek_reader.PeekBits(count), expected);
    peek_reader.ConsumeBits(count);
    bits_left -= size_t(count);
  }
  // Fully drained: Refill at EOF leaves nothing and Peek pads with zeros.
  peek_reader.Refill();
  EXPECT_EQ(peek_reader.bits_buffered(), 0);
  EXPECT_EQ(peek_reader.PeekBits(10), 0u);
}

TEST(BitIoTest, RefillPreservesAlignedByteReads) {
  // Refill's masked bulk load must keep the "bits >= filled_ are zero"
  // invariant that ReadAlignedByte depends on after AlignToByte.
  Buffer data = GenerateRandomBytes(64, 5);
  BitReader r(data.span());
  r.Refill();
  uint32_t v;
  ASSERT_TRUE(r.ReadBits(3, &v));
  r.AlignToByte();
  for (size_t i = 1; i < data.size(); ++i) {
    uint8_t b;
    ASSERT_TRUE(r.ReadAlignedByte(&b)) << i;
    EXPECT_EQ(b, data[i]) << i;
    if (i % 7 == 0) r.Refill();  // refill mid-stream must not corrupt
  }
  uint8_t b;
  EXPECT_FALSE(r.ReadAlignedByte(&b));
}

TEST(BitIoTest, RefillNearEndOfStream) {
  // Streams shorter than one bulk load go through the byte-wise path.
  for (size_t len : {size_t(1), size_t(3), size_t(7), size_t(8), size_t(9)}) {
    Buffer data = GenerateRandomBytes(len, 11);
    BitReader r(data.span());
    r.Refill();
    EXPECT_EQ(r.bits_buffered(), int(std::min<size_t>(len, 7) * 8))
        << "len=" << len;
    BitReader ref(data.span());
    for (size_t i = 0; i < len; ++i) {
      uint32_t expected;
      ASSERT_TRUE(ref.ReadBits(8, &expected));
      r.Refill();
      ASSERT_GE(r.bits_buffered(), 8);
      EXPECT_EQ(r.PeekBits(8), expected);
      r.ConsumeBits(8);
    }
  }
}

// --------------------------------------------------------------------------
// Huffman utilities.
// --------------------------------------------------------------------------

TEST(HuffmanTest, PackageMergeKraftEquality) {
  std::vector<uint64_t> freqs = {45, 13, 12, 16, 9, 5};
  std::vector<uint8_t> lengths = PackageMergeLengths(freqs, 15);
  double kraft = 0;
  for (uint8_t l : lengths) {
    ASSERT_GT(l, 0);
    kraft += 1.0 / double(1ull << l);
  }
  EXPECT_DOUBLE_EQ(kraft, 1.0);
}

TEST(HuffmanTest, PackageMergeIsOptimalForClassicExample) {
  // Frequencies 5,9,12,13,16,45: optimal Huffman cost = 224.
  std::vector<uint64_t> freqs = {5, 9, 12, 13, 16, 45};
  std::vector<uint8_t> lengths = PackageMergeLengths(freqs, 15);
  uint64_t cost = 0;
  for (size_t i = 0; i < freqs.size(); ++i) cost += freqs[i] * lengths[i];
  EXPECT_EQ(cost, 224u);
}

TEST(HuffmanTest, PackageMergeRespectsLengthLimit) {
  // Fibonacci-ish weights force deep unbounded Huffman trees.
  std::vector<uint64_t> freqs;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    uint64_t next = a + b;
    a = b;
    b = next;
  }
  for (int limit : {15, 10, 7}) {
    std::vector<uint8_t> lengths = PackageMergeLengths(freqs, limit);
    double kraft = 0;
    for (uint8_t l : lengths) {
      ASSERT_LE(l, limit);
      ASSERT_GT(l, 0);
      kraft += 1.0 / double(1ull << l);
    }
    EXPECT_LE(kraft, 1.0 + 1e-12);
  }
}

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  std::vector<uint64_t> freqs = {0, 7, 0};
  std::vector<uint8_t> lengths = PackageMergeLengths(freqs, 15);
  EXPECT_EQ(lengths[0], 0);
  EXPECT_EQ(lengths[1], 1);
  EXPECT_EQ(lengths[2], 0);
}

TEST(HuffmanTest, CanonicalCodesMatchRfcExample) {
  // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) ->
  // codes 010,011,100,101,110,00,1110,1111.
  std::vector<uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  std::vector<uint32_t> codes = CanonicalCodes(lengths);
  EXPECT_EQ(codes, (std::vector<uint32_t>{2, 3, 4, 5, 6, 0, 14, 15}));
}

TEST(HuffmanTest, DecoderRoundTripsCanonicalCode) {
  std::vector<uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  std::vector<uint32_t> codes = CanonicalCodes(lengths);
  auto decoder_or = HuffmanDecoder::Build(lengths);
  ASSERT_TRUE(decoder_or.ok());
  const HuffmanDecoder& dec = *decoder_or;

  for (int sym = 0; sym < 8; ++sym) {
    Buffer buf;
    BitWriter w(&buf);
    w.WriteHuffmanCode(codes[sym], lengths[sym]);
    w.AlignToByte();
    BitReader r(buf.span());
    int got;
    ASSERT_TRUE(dec.Decode(r, &got).ok());
    EXPECT_EQ(got, sym);
  }
}

TEST(HuffmanTest, DecoderRejectsOversubscribed) {
  std::vector<uint8_t> lengths = {1, 1, 1};  // Kraft sum 1.5
  EXPECT_TRUE(HuffmanDecoder::Build(lengths).status().IsCorruption());
}

TEST(HuffmanTest, DecoderFlagsUnassignedCode) {
  // Single symbol of length 1: code '1' is unassigned.
  std::vector<uint8_t> lengths = {1};
  auto dec = HuffmanDecoder::Build(lengths);
  ASSERT_TRUE(dec.ok());
  Buffer buf;
  buf.AppendU8(0xFF);
  BitReader r(buf.span());
  int sym;
  EXPECT_TRUE(dec->Decode(r, &sym).IsCorruption())
      << "code of all ones must not decode";
}

// --------------------------------------------------------------------------
// Known DEFLATE streams (hand-built per RFC 1951).
// --------------------------------------------------------------------------

TEST(InflateTest, StoredBlockVector) {
  // BFINAL=1 BTYPE=00, LEN=3 NLEN=~3, payload "abc".
  const uint8_t stream[] = {0x01, 0x03, 0x00, 0xFC, 0xFF, 'a', 'b', 'c'};
  auto out = DeflateDecompress(ByteSpan(stream, sizeof(stream)));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->ToString(), "abc");
}

TEST(InflateTest, EmptyFixedBlockVector) {
  // BFINAL=1 BTYPE=01 then the 7-bit EOB code 0000000: bytes 03 00.
  const uint8_t stream[] = {0x03, 0x00};
  auto out = DeflateDecompress(ByteSpan(stream, sizeof(stream)));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->empty());
}

TEST(InflateTest, RejectsReservedBlockType) {
  const uint8_t stream[] = {0x07};  // BFINAL=1 BTYPE=11
  EXPECT_TRUE(DeflateDecompress(ByteSpan(stream, sizeof(stream)))
                  .status()
                  .IsCorruption());
}

TEST(InflateTest, RejectsBadStoredNlen) {
  const uint8_t stream[] = {0x01, 0x03, 0x00, 0x00, 0x00, 'a', 'b', 'c'};
  EXPECT_TRUE(DeflateDecompress(ByteSpan(stream, sizeof(stream)))
                  .status()
                  .IsCorruption());
}

TEST(InflateTest, RejectsTruncatedStream) {
  Buffer text = GenerateText(10000, {});
  auto compressed = DeflateCompress(text.span());
  ASSERT_TRUE(compressed.ok());
  for (size_t cut : {size_t(0), size_t(1), compressed->size() / 2,
                     compressed->size() - 1}) {
    auto out = DeflateDecompress(compressed->span().subspan(0, cut));
    EXPECT_FALSE(out.ok()) << "cut=" << cut;
  }
}

TEST(InflateTest, RejectsDistanceBeforeStart) {
  // Fixed block: literal 'a' (0x61 -> code 0x91, 8 bits) then a match
  // would reference beyond output; simplest: match at output size 0.
  // Construct: BTYPE=01, immediately a length code then distance 1.
  Buffer buf;
  BitWriter w(&buf);
  w.WriteBits(1, 1);
  w.WriteBits(1, 2);
  // Length symbol 257 (len 3): fixed code for 257 = 0000001 (7 bits).
  w.WriteHuffmanCode(1, 7);
  // Distance symbol 0 (dist 1): 5-bit code 00000.
  w.WriteHuffmanCode(0, 5);
  // EOB.
  w.WriteHuffmanCode(0, 7);
  w.AlignToByte();
  EXPECT_TRUE(DeflateDecompress(buf.span()).status().IsCorruption());
}

TEST(InflateTest, OutputLimitEnforced) {
  Buffer text = GenerateText(100000, {});
  auto compressed = DeflateCompress(text.span());
  ASSERT_TRUE(compressed.ok());
  auto out = DeflateDecompress(compressed->span(), 1000);
  EXPECT_TRUE(out.status().IsResourceExhausted());
}

// --------------------------------------------------------------------------
// Round trips.
// --------------------------------------------------------------------------

void ExpectRoundTrip(ByteSpan input, int level) {
  auto compressed = DeflateCompress(input, DeflateOptions{level});
  ASSERT_TRUE(compressed.ok()) << compressed.status();
  auto restored = DeflateDecompress(compressed->span());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), input.size());
  EXPECT_TRUE(std::equal(input.begin(), input.end(), restored->data()));
}

TEST(DeflateTest, EmptyInput) {
  ExpectRoundTrip(ByteSpan(), 6);
  auto compressed = DeflateCompress(ByteSpan());
  ASSERT_TRUE(compressed.ok());
  EXPECT_LE(compressed->size(), 2u);
}

TEST(DeflateTest, SingleByte) {
  uint8_t b = 'x';
  ExpectRoundTrip(ByteSpan(&b, 1), 6);
}

TEST(DeflateTest, ShortString) {
  Buffer in("hello, hello, hello world");
  ExpectRoundTrip(in.span(), 6);
}

TEST(DeflateTest, AllZeros) {
  Buffer in(size_t(100000));
  ExpectRoundTrip(in.span(), 6);
  auto compressed = DeflateCompress(in.span());
  ASSERT_TRUE(compressed.ok());
  // Highly repetitive input must compress drastically.
  EXPECT_LT(compressed->size(), in.size() / 100);
}

TEST(DeflateTest, TextCompressesWell) {
  Buffer text = GenerateText(1 << 20, {});
  auto compressed = DeflateCompress(text.span());
  ASSERT_TRUE(compressed.ok());
  double ratio = double(text.size()) / double(compressed->size());
  // Zipfian synthetic text should land in the English-text range.
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 10.0);
  ExpectRoundTrip(text.span(), 6);
}

TEST(DeflateTest, RandomDataFallsBackToStored) {
  Buffer random = GenerateRandomBytes(1 << 16);
  auto compressed = DeflateCompress(random.span());
  ASSERT_TRUE(compressed.ok());
  // Incompressible: stored blocks cap expansion at a tiny overhead.
  EXPECT_LT(compressed->size(), random.size() + random.size() / 100 + 64);
  ExpectRoundTrip(random.span(), 6);
}

TEST(DeflateTest, MaxLengthMatches) {
  // Period-1 run longer than kMaxMatch exercises 258-byte matches.
  Buffer in(size_t(1000));
  for (size_t i = 0; i < in.size(); ++i) in[i] = 'A';
  ExpectRoundTrip(in.span(), 6);
}

TEST(DeflateTest, OverlappingCopySemantics) {
  // "abcabcabc..." gives dist=3 matches with len > dist.
  Buffer in;
  for (int i = 0; i < 5000; ++i) in.AppendU8("abc"[i % 3]);
  ExpectRoundTrip(in.span(), 6);
}

TEST(DeflateTest, ZipfianCorporaPropertySweep) {
  // inflate(deflate(x)) == x across Zipfian corpora with varied skew,
  // vocabulary, and seed: drives the LUT decode + bulk-refill + word-wise
  // copy fast paths over realistically shaped symbol distributions.
  for (uint64_t seed : {1ull, 77ull, 991ull}) {
    for (double theta : {0.5, 0.95}) {
      for (uint32_t vocab : {256u, 8192u}) {
        TextGenOptions options;
        options.seed = seed;
        options.vocabulary = vocab;
        options.zipf_theta = theta;
        Buffer text = GenerateText(96 * 1024, options);
        ExpectRoundTrip(text.span(), 1);
        ExpectRoundTrip(text.span(), 6);
      }
    }
  }
}

TEST(DeflateTest, WindowBoundaryMatches) {
  // Repeat a motif at exactly the 32 KB window distance.
  Buffer motif = GenerateRandomBytes(512, 3);
  Buffer in;
  in.Append(motif.span());
  Buffer filler = GenerateRandomBytes(kWindowSize - 512, 4);
  in.Append(filler.span());
  in.Append(motif.span());  // motif begins exactly 32768 bytes after itself
  ExpectRoundTrip(in.span(), 9);
}

TEST(DeflateTest, MultiBlockInput) {
  // > 65536 tokens forces multiple blocks.
  Buffer random = GenerateRandomBytes(300000, 9);
  ExpectRoundTrip(random.span(), 1);
}

TEST(DeflateTest, HigherLevelNeverMuchWorse) {
  Buffer text = GenerateText(1 << 18, {});
  auto fast = DeflateCompress(text.span(), DeflateOptions{1});
  auto best = DeflateCompress(text.span(), DeflateOptions{9});
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(best.ok());
  EXPECT_LE(best->size(), fast->size() + fast->size() / 50);
}

// Property sweep: (generator, size, level) grid round-trips.
class DeflateRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, size_t, int>> {};

TEST_P(DeflateRoundTrip, RoundTrips) {
  auto [gen, size, level] = GetParam();
  Buffer input;
  switch (gen) {
    case 0:
      input = GenerateText(size, {uint64_t(size + level), 4096, 0.95});
      break;
    case 1:
      input = GenerateRandomBytes(size, size + level);
      break;
    case 2: {  // low-entropy structured binary
      Pcg32 rng(size + level);
      input.resize(size);
      for (size_t i = 0; i < size; ++i) {
        input[i] = static_cast<uint8_t>(rng.NextBounded(4) * 7);
      }
      break;
    }
    default: {  // long runs with interspersed noise
      Pcg32 rng(size);
      while (input.size() < size) {
        uint8_t b = static_cast<uint8_t>(rng.Next());
        size_t run = 1 + rng.NextBounded(400);
        for (size_t i = 0; i < run && input.size() < size; ++i) {
          input.AppendU8(b);
        }
      }
      break;
    }
  }
  ExpectRoundTrip(input.span(), level);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeflateRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(size_t(1), size_t(100),
                                         size_t(4096), size_t(70000)),
                       ::testing::Values(1, 6, 9)));

// Fuzz-ish: decompressing random garbage must never crash and must fail
// cleanly (or succeed, which random bytes occasionally do for tiny
// stored-block-shaped prefixes — either way, no UB).
TEST(InflateTest, RandomGarbageNeverCrashes) {
  Pcg32 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = 1 + rng.NextBounded(300);
    Buffer garbage(n);
    FillRandomBytes(rng, garbage.data(), n);
    auto out = DeflateDecompress(garbage.span(), 1 << 20);
    (void)out;  // outcome irrelevant; absence of crash is the assertion
  }
}

// Mutate valid streams: every single-bit corruption must be handled
// gracefully (clean error or output of bounded size, never a crash).
TEST(InflateTest, BitFlipsHandledGracefully) {
  Buffer text = GenerateText(5000, {});
  auto compressed = DeflateCompress(text.span());
  ASSERT_TRUE(compressed.ok());
  Pcg32 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    Buffer mutated = *compressed;
    size_t byte = rng.NextBounded(static_cast<uint32_t>(mutated.size()));
    mutated[byte] ^= uint8_t(1u << rng.NextBounded(8));
    auto out = DeflateDecompress(mutated.span(), 1 << 22);
    (void)out;
  }
}

TEST(LengthSymbolTest, BoundariesMatchRfcTables) {
  EXPECT_EQ(LengthToSymbol(3), 257);
  EXPECT_EQ(LengthToSymbol(4), 258);
  EXPECT_EQ(LengthToSymbol(10), 264);
  EXPECT_EQ(LengthToSymbol(11), 265);
  EXPECT_EQ(LengthToSymbol(12), 265);
  EXPECT_EQ(LengthToSymbol(13), 266);
  EXPECT_EQ(LengthToSymbol(257), 284);
  EXPECT_EQ(LengthToSymbol(258), 285);
}

TEST(DistanceSymbolTest, BoundariesMatchRfcTables) {
  EXPECT_EQ(DistanceToSymbol(1), 0);
  EXPECT_EQ(DistanceToSymbol(4), 3);
  EXPECT_EQ(DistanceToSymbol(5), 4);
  EXPECT_EQ(DistanceToSymbol(6), 4);
  EXPECT_EQ(DistanceToSymbol(7), 5);
  EXPECT_EQ(DistanceToSymbol(24577), 29);
  EXPECT_EQ(DistanceToSymbol(32768), 29);
}

}  // namespace
}  // namespace dpdpu::kern
