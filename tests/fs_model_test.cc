// Model-checking property test for DpuFs: random operation sequences are
// applied both to the real file system and to a trivial in-memory
// reference model; after every batch (and across remounts) the two must
// agree on the namespace, file sizes, and every byte of content.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fssub/block_device.h"
#include "fssub/dpufs.h"

namespace dpdpu::fssub {
namespace {

constexpr uint32_t kBs = 4096;

struct RefFile {
  std::vector<uint8_t> bytes;
};

class Model {
 public:
  std::map<std::string, RefFile> files;

  void Write(const std::string& name, uint64_t offset, ByteSpan data) {
    RefFile& f = files[name];
    if (f.bytes.size() < offset + data.size()) {
      f.bytes.resize(offset + data.size(), 0);
    }
    std::copy(data.begin(), data.end(), f.bytes.begin() + offset);
  }
};

class FsModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsModelTest, RandomOpsMatchReference) {
  const uint64_t seed = GetParam();
  Pcg32 rng(seed);
  MemBlockDevice dev(kBs, 8192);  // 32 MB
  auto fs_or = DpuFs::Format(&dev);
  ASSERT_TRUE(fs_or.ok());
  std::unique_ptr<DpuFs> fs = std::move(fs_or).value();
  Model model;

  auto verify = [&] {
    // Namespace agreement.
    std::vector<std::string> names = fs->List();
    ASSERT_EQ(names.size(), model.files.size());
    for (const auto& [name, ref] : model.files) {
      auto file = fs->Lookup(name);
      ASSERT_TRUE(file.ok()) << name;
      auto size = fs->FileSize(*file);
      ASSERT_TRUE(size.ok());
      ASSERT_EQ(*size, ref.bytes.size()) << name;
      if (!ref.bytes.empty()) {
        auto content = fs->Read(*file, 0, ref.bytes.size());
        ASSERT_TRUE(content.ok()) << name;
        ASSERT_EQ(content->size(), ref.bytes.size());
        ASSERT_TRUE(std::equal(ref.bytes.begin(), ref.bytes.end(),
                               content->data()))
            << name;
      }
    }
  };

  constexpr int kOps = 220;
  for (int op = 0; op < kOps; ++op) {
    uint32_t kind = rng.NextBounded(100);
    if (kind < 20) {
      // Create.
      std::string name = "f" + std::to_string(rng.NextBounded(12));
      auto created = fs->Create(name);
      if (model.files.count(name) > 0) {
        EXPECT_TRUE(created.status().IsAlreadyExists());
      } else if (created.ok()) {
        model.files[name] = RefFile{};
      }
    } else if (kind < 30) {
      // Delete.
      if (!model.files.empty()) {
        auto it = model.files.begin();
        std::advance(it, rng.NextBounded(uint32_t(model.files.size())));
        ASSERT_TRUE(fs->Delete(it->first).ok());
        model.files.erase(it);
      }
    } else if (kind < 75) {
      // Write at random offset (possibly extending, possibly unaligned).
      if (!model.files.empty()) {
        auto it = model.files.begin();
        std::advance(it, rng.NextBounded(uint32_t(model.files.size())));
        uint64_t offset = rng.NextBounded(64 * 1024);
        size_t len = 1 + rng.NextBounded(16 * 1024);
        std::vector<uint8_t> data(len);
        FillRandomBytes(rng, data.data(), len);
        auto file = fs->Lookup(it->first);
        ASSERT_TRUE(file.ok());
        Status s = fs->Write(*file, offset, ByteSpan(data.data(), len));
        if (s.ok()) {
          model.Write(it->first, offset, ByteSpan(data.data(), len));
        } else {
          ASSERT_TRUE(s.IsResourceExhausted()) << s;
        }
      }
    } else if (kind < 90) {
      // Random read must match the model byte for byte.
      if (!model.files.empty()) {
        auto it = model.files.begin();
        std::advance(it, rng.NextBounded(uint32_t(model.files.size())));
        const RefFile& ref = it->second;
        auto file = fs->Lookup(it->first);
        ASSERT_TRUE(file.ok());
        uint64_t offset = rng.NextBounded(80 * 1024);
        size_t len = 1 + rng.NextBounded(8 * 1024);
        auto got = fs->Read(*file, offset, len);
        ASSERT_TRUE(got.ok());
        size_t expect_len =
            offset >= ref.bytes.size()
                ? 0
                : std::min<size_t>(len, ref.bytes.size() - offset);
        ASSERT_EQ(got->size(), expect_len);
        if (expect_len > 0) {
          ASSERT_TRUE(std::equal(got->data(), got->data() + expect_len,
                                 ref.bytes.begin() + offset));
        }
      }
    } else if (kind < 95) {
      // Checkpoint.
      ASSERT_TRUE(fs->Checkpoint().ok());
    } else {
      // Clean remount: everything must survive.
      ASSERT_TRUE(fs->Checkpoint().ok());
      fs.reset();
      auto remounted = DpuFs::Mount(&dev);
      ASSERT_TRUE(remounted.ok()) << remounted.status();
      fs = std::move(remounted).value();
      verify();
    }
    if (op % 40 == 39) verify();
  }
  verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dpdpu::fssub
