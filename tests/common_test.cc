// Unit tests for src/common: Status/Result, Buffer/ByteReader, Pcg32/Zipf,
// Histogram, UniqueFunction.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/function.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace dpdpu {
namespace {

// --------------------------------------------------------------------------
// Status
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::NotFound("file x");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "file x");
  EXPECT_EQ(s.ToString(), "NotFound: file x");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  std::vector<Status> all = {
      Status::InvalidArgument("m"), Status::NotFound("m"),
      Status::AlreadyExists("m"),   Status::OutOfRange("m"),
      Status::ResourceExhausted("m"), Status::Unavailable("m"),
      Status::Corruption("m"),      Status::NotSupported("m"),
      Status::TimedOut("m"),        Status::Aborted("m"),
      Status::IoError("m"),         Status::Internal("m"),
  };
  std::vector<std::string_view> names;
  for (const auto& s : all) names.push_back(StatusCodeName(s.code()));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  DPDPU_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

// --------------------------------------------------------------------------
// Result
// --------------------------------------------------------------------------

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<std::string> UsesAssignOrReturn(int x) {
  DPDPU_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return std::to_string(doubled);
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<std::string> ok = UsesAssignOrReturn(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "10");
  EXPECT_TRUE(UsesAssignOrReturn(0).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

// --------------------------------------------------------------------------
// Buffer / ByteReader
// --------------------------------------------------------------------------

TEST(BufferTest, AppendAndReadRoundTrip) {
  Buffer b;
  b.AppendU8(0xAB);
  b.AppendU16(0x1234);
  b.AppendU32(0xDEADBEEF);
  b.AppendU64(0x0123456789ABCDEFull);
  b.Append("tail");

  ByteReader r(b.span());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  Buffer tail;
  ASSERT_TRUE(r.ReadU8(&u8));
  ASSERT_TRUE(r.ReadU16(&u16));
  ASSERT_TRUE(r.ReadU32(&u32));
  ASSERT_TRUE(r.ReadU64(&u64));
  ASSERT_TRUE(r.ReadBytes(4, &tail));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(tail.ToString(), "tail");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, LittleEndianLayout) {
  Buffer b;
  b.AppendU32(0x01020304);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(ByteReaderTest, UnderflowFailsWithoutConsuming) {
  Buffer b;
  b.AppendU16(7);
  ByteReader r(b.span());
  uint32_t u32 = 99;
  EXPECT_FALSE(r.ReadU32(&u32));
  EXPECT_EQ(u32, 99u);  // untouched
  uint16_t u16;
  EXPECT_TRUE(r.ReadU16(&u16));
  EXPECT_EQ(u16, 7);
}

TEST(ByteReaderTest, ReadSpanIsZeroCopy) {
  Buffer b("hello world");
  ByteReader r(b.span());
  ByteSpan s;
  ASSERT_TRUE(r.Skip(6));
  ASSERT_TRUE(r.ReadSpan(5, &s));
  EXPECT_EQ(s.data(), b.data() + 6);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufferTest, StringViewConstructorAndEquality) {
  Buffer a("abc");
  Buffer b("abc");
  Buffer c("abd");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.view(), "abc");
}

// --------------------------------------------------------------------------
// Pcg32
// --------------------------------------------------------------------------

TEST(Pcg32Test, DeterministicAcrossInstances) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, BoundedStaysInBounds) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint32_t v = rng.NextBounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Pcg32Test, BoundedIsRoughlyUniform) {
  Pcg32 rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Pcg32Test, NextRangeInclusive) {
  Pcg32 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32Test, ExponentialHasRequestedMean) {
  Pcg32 rng(11);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(50.0);
  double mean = sum / kDraws;
  EXPECT_NEAR(mean, 50.0, 1.0);
}

TEST(Pcg32Test, NextBoolProbability) {
  Pcg32 rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(ZipfTest, SkewConcentratesOnSmallKeys) {
  Pcg32 rng(17);
  ZipfGenerator zipf(1000, 0.99);
  int top10 = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    if (v < 10) ++top10;
  }
  // With theta=0.99 the top-1% of keys receive ~40% of accesses (the
  // YCSB-standard skew); uniform would give ~1%.
  EXPECT_GT(double(top10) / kDraws, 0.35);
}

TEST(ZipfTest, ThetaZeroIsNearUniform) {
  Pcg32 rng(19);
  ZipfGenerator zipf(100, 0.0);
  int top10 = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(rng) < 10) ++top10;
  }
  EXPECT_NEAR(double(top10) / kDraws, 0.10, 0.02);
}

TEST(RngTest, FillRandomBytesIsDeterministic) {
  Pcg32 a(5), b(5);
  std::vector<uint8_t> x(1003), y(1003);
  FillRandomBytes(a, x.data(), x.size());
  FillRandomBytes(b, y.data(), y.size());
  EXPECT_EQ(x, y);
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.Mean(), 1000.0);
  // Log-bucketing bounds the error at ~4%.
  EXPECT_NEAR(double(h.P50()), 1000.0, 1000.0 * 0.07);
}

TEST(HistogramTest, PercentilesOfUniformRamp) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Add(v);
  EXPECT_NEAR(double(h.P50()), 5000.0, 5000.0 * 0.07);
  EXPECT_NEAR(double(h.P99()), 9900.0, 9900.0 * 0.07);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_EQ(h.min(), 1u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Add(v);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Percentile(100), 15u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Add(10);
  for (int i = 0; i < 100; ++i) b.Add(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_LT(a.P50(), 20u);
  EXPECT_GT(a.P99(), 900000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Add(UINT64_MAX);
  h.Add(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_GE(h.Percentile(100), (1ull << 62));
}

TEST(MetricSetTest, AddSetGet) {
  MetricSet m;
  m.Add("x", 1.5);
  m.Add("x", 2.5);
  m.Set("y", 7);
  EXPECT_DOUBLE_EQ(m.Get("x"), 4.0);
  EXPECT_DOUBLE_EQ(m.Get("y"), 7.0);
  EXPECT_DOUBLE_EQ(m.Get("absent"), 0.0);
  EXPECT_TRUE(m.Has("x"));
  EXPECT_FALSE(m.Has("absent"));
}

// --------------------------------------------------------------------------
// UniqueFunction
// --------------------------------------------------------------------------

TEST(UniqueFunctionTest, CapturesMoveOnlyState) {
  auto p = std::make_unique<int>(31);
  int got = 0;
  UniqueFunction f([p = std::move(p), &got] { got = *p; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(got, 31);
}

TEST(UniqueFunctionTest, EmptyIsFalse) {
  UniqueFunction f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunctionTest, MoveTransfersOwnership) {
  int calls = 0;
  UniqueFunction a([&calls] { ++calls; });
  UniqueFunction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueFunctionTest, SmallCaptureStaysInline) {
  int x = 7;
  UniqueFunction f([&x] { ++x; });
  EXPECT_TRUE(f.is_inline());
  f();
  EXPECT_EQ(x, 8);

  // A capture right at the inline budget still fits.
  std::array<char, UniqueFunction::kInlineSize> big{};
  big[0] = 3;
  int got = 0;
  UniqueFunction g([big, &got] { got = big[0]; });
  static_assert(sizeof(big) == UniqueFunction::kInlineSize);
  // big + the reference exceed the budget together, so don't assert
  // inline here; the pure at-budget case:
  std::array<char, UniqueFunction::kInlineSize - sizeof(void*)> fits{};
  fits[0] = 5;
  UniqueFunction h([fits, &got] { got = fits[0]; });
  EXPECT_TRUE(h.is_inline());
  h();
  EXPECT_EQ(got, 5);
  g();
  EXPECT_EQ(got, 3);
}

TEST(UniqueFunctionTest, OversizedCaptureFallsBackToHeap) {
  std::array<char, UniqueFunction::kInlineSize + 1> big{};
  big[1] = 9;
  int got = 0;
  UniqueFunction f([big, &got] { got = big[1]; });
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_FALSE(f.is_inline());
  // Heap payloads relocate by pointer; the callable survives moves.
  UniqueFunction g = std::move(f);
  g();
  EXPECT_EQ(got, 9);
}

struct DtorCounter {
  explicit DtorCounter(int* counter) : counter_(counter) {}
  DtorCounter(DtorCounter&& other) noexcept : counter_(other.counter_) {
    other.counter_ = nullptr;
  }
  DtorCounter(const DtorCounter&) = delete;
  ~DtorCounter() {
    if (counter_ != nullptr) ++*counter_;
  }
  int* counter_;
};

TEST(UniqueFunctionTest, DestroysPayloadExactlyOnce) {
  int destroyed = 0;
  {
    UniqueFunction f([d = DtorCounter(&destroyed)] { (void)d; });
    EXPECT_TRUE(f.is_inline());
    UniqueFunction g = std::move(f);  // relocation must not double-destroy
    UniqueFunction h;
    h = std::move(g);
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(UniqueFunctionTest, MoveAssignDestroysPreviousPayload) {
  int destroyed = 0;
  UniqueFunction f([d = DtorCounter(&destroyed)] { (void)d; });
  f = UniqueFunction([] {});
  EXPECT_EQ(destroyed, 1);
  EXPECT_TRUE(static_cast<bool>(f));
}

TEST(UniqueFunctionTest, InlinePayloadRelocatesByValue) {
  // The captured value must travel with the object across moves, not stay
  // behind in the old storage.
  uint64_t seen = 0;
  UniqueFunction f([v = uint64_t(0xDEADBEEFCAFEull), &seen] { seen = v; });
  ASSERT_TRUE(f.is_inline());
  UniqueFunction g = std::move(f);
  UniqueFunction h = std::move(g);
  h();
  EXPECT_EQ(seen, 0xDEADBEEFCAFEull);
}

}  // namespace
}  // namespace dpdpu
