// Tests for the runtime: Platform assembly, cross-engine pipelines
// (streamed vs barrier), and utilization probes.

#include <gtest/gtest.h>

#include "core/runtime/metrics.h"
#include "core/runtime/pipeline.h"
#include "core/compute/sproc.h"
#include "core/runtime/platform.h"
#include "kern/deflate.h"
#include "kern/textgen.h"

namespace dpdpu::rt {
namespace {

TEST(PlatformTest, AssemblesAllEngines) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  Platform platform(&sim, &net, {});
  EXPECT_GE(platform.compute().AvailableKernels().size(), 9u);
  EXPECT_EQ(platform.node(), 1u);
  EXPECT_TRUE(platform.fs().List().empty());
  // Sprocs can reach the sibling engines through the context.
  bool saw_engines = false;
  ASSERT_TRUE(platform.compute()
                  .RegisterSproc("probe",
                                 [&](ce::SprocContext& ctx) {
                                   saw_engines = ctx.network() != nullptr &&
                                                 ctx.storage() != nullptr;
                                 })
                  .ok());
  ASSERT_TRUE(platform.compute().InvokeSproc("probe").ok());
  sim.Run();
  EXPECT_TRUE(saw_engines);
}

TEST(PlatformTest, TwoPlatformsShareTheFabric) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  PlatformOptions o1, o2;
  o1.node = 1;
  o2.node = 2;
  Platform a(&sim, &net, o1);
  Platform b(&sim, &net, o2);
  Buffer received;
  b.network().Listen(80, [&](ne::NeSocket* s) {
    s->SetReceiveCallback([&](ByteSpan d) { received.Append(d); });
  });
  a.network().Connect(2, 80)->Send(Buffer("cross-platform").span());
  sim.Run();
  EXPECT_EQ(received.ToString(), "cross-platform");
}

// --------------------------------------------------------------------------
// Pipelines.
// --------------------------------------------------------------------------

// A stage that waits `delay` then appends a marker byte.
StageFn DelayStage(sim::Simulator* sim, sim::SimTime delay, uint8_t marker) {
  return [sim, delay, marker](Buffer item,
                              std::function<void(Result<Buffer>)> done) {
    sim->Schedule(delay, [item = std::move(item), marker,
                          done = std::move(done)]() mutable {
      item.AppendU8(marker);
      done(std::move(item));
    });
  };
}

TEST(PipelineTest, ItemsFlowThroughAllStages) {
  sim::Simulator sim;
  Pipeline pipeline;
  pipeline.AddStage(DelayStage(&sim, 10, 'A'))
      .AddStage(DelayStage(&sim, 10, 'B'));
  std::vector<std::string> outputs;
  pipeline.OnOutput([&](Result<Buffer> out) {
    ASSERT_TRUE(out.ok());
    outputs.push_back(out->ToString());
  });
  pipeline.Push(Buffer("1"));
  pipeline.Push(Buffer("2"));
  sim.Run();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[0], "1AB");
  EXPECT_EQ(outputs[1], "2AB");
  EXPECT_EQ(pipeline.completed(), 2u);
  EXPECT_EQ(pipeline.in_flight(), 0u);
}

TEST(PipelineTest, FailuresStopTheItem) {
  sim::Simulator sim;
  Pipeline pipeline;
  pipeline
      .AddStage([](Buffer item, std::function<void(Result<Buffer>)> done) {
        if (item.size() > 2) {
          done(Status::InvalidArgument("too big"));
        } else {
          done(std::move(item));
        }
      })
      .AddStage(DelayStage(&sim, 5, 'X'));
  int ok = 0, failed = 0;
  pipeline.OnOutput([&](Result<Buffer> out) {
    out.ok() ? ++ok : ++failed;
  });
  pipeline.Push(Buffer("ab"));
  pipeline.Push(Buffer("abcdef"));
  sim.Run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(pipeline.failed(), 1u);
}

TEST(PipelineTest, StreamedBeatsBarrierOnWallClock) {
  // Two stages of equal delay with per-item independence: streaming
  // overlaps stage 1 of item N+1 with stage 2 of item N.
  constexpr int kItems = 16;
  constexpr sim::SimTime kDelay = 100;

  sim::Simulator sim_a;
  Pipeline streamed;
  // Model a serialized resource per stage using Resource semantics:
  // simple fixed-delay stages here; both pipelines see identical stages.
  streamed.AddStage(DelayStage(&sim_a, kDelay, 'A'))
      .AddStage(DelayStage(&sim_a, kDelay, 'B'));
  for (int i = 0; i < kItems; ++i) streamed.Push(Buffer("x"));
  sim_a.Run();
  sim::SimTime streamed_time = sim_a.now();

  sim::Simulator sim_b;
  BatchPipeline batch;
  batch.AddStage(DelayStage(&sim_b, kDelay, 'A'))
      .AddStage(DelayStage(&sim_b, kDelay, 'B'));
  std::vector<Buffer> items;
  for (int i = 0; i < kItems; ++i) items.push_back(Buffer("x"));
  bool done = false;
  batch.Run(std::move(items), [&](std::vector<Result<Buffer>> out) {
    EXPECT_EQ(out.size(), size_t(kItems));
    done = true;
  });
  sim_b.Run();
  ASSERT_TRUE(done);
  sim::SimTime batch_time = sim_b.now();

  // With pure-delay stages both finish in 2*kDelay; the real contrast
  // needs a serialized resource, covered by abl_pipeline. Here we only
  // require the streamed version is never slower.
  EXPECT_LE(streamed_time, batch_time);
}

TEST(BatchPipelineTest, EmptyBatchCompletes) {
  BatchPipeline batch;
  batch.AddStage([](Buffer b, std::function<void(Result<Buffer>)> done) {
    done(std::move(b));
  });
  bool done = false;
  batch.Run({}, [&](std::vector<Result<Buffer>> out) {
    EXPECT_TRUE(out.empty());
    done = true;
  });
  EXPECT_TRUE(done);
}

// --------------------------------------------------------------------------
// Cross-engine composition: the Section 4 read->compress->send example.
// --------------------------------------------------------------------------

TEST(CompositionTest, ReadCompressSendPipeline) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  PlatformOptions o1, o2;
  o1.node = 1;
  o2.node = 2;
  Platform storage_node(&sim, &net, o1);
  Platform compute_node(&sim, &net, o2);

  // Seed pages on the storage node.
  Buffer page_data = kern::GenerateText(256 * 1024, {});
  auto file = storage_node.fs().Create("pages");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(storage_node.fs().Write(*file, 0, page_data.span()).ok());

  // Receiver on the compute node.
  Buffer received;
  compute_node.network().Listen(7000, [&](ne::NeSocket* s) {
    s->SetReceiveCallback([&](ByteSpan d) { received.Append(d); });
  });
  ne::NeSocket* out_socket = storage_node.network().Connect(2, 7000);

  // Pipeline on the storage node: SE read -> CE compress -> NE send.
  Pipeline pipeline;
  pipeline
      .AddStage([&](Buffer page_index_buf,
                    std::function<void(Result<Buffer>)> done) {
        ByteReader r(page_index_buf.span());
        uint64_t index = 0;
        r.ReadU64(&index);
        storage_node.storage().file_service().ReadAsync(
            *file, index * 65536, 65536,
            [done = std::move(done)](Result<Buffer> data) {
              done(std::move(data));
            });
      })
      .AddStage([&](Buffer page, std::function<void(Result<Buffer>)> done) {
        auto item = storage_node.compute().Invoke(
            ce::kKernelCompress, std::move(page), {},
            {ce::ExecTarget::kDpuAsic});
        ASSERT_TRUE(item.ok());
        (*item)->OnComplete([done = std::move(done)](ce::WorkItem& w) {
          done(w.result());
        });
      })
      .AddStage([&](Buffer compressed,
                    std::function<void(Result<Buffer>)> done) {
        Buffer framed;
        framed.AppendU32(uint32_t(compressed.size()));
        framed.Append(compressed.span());
        out_socket->Send(framed.span());
        done(std::move(compressed));
      });

  for (uint64_t i = 0; i < 4; ++i) {
    Buffer idx;
    idx.AppendU64(i);
    pipeline.Push(std::move(idx));
  }
  sim.Run();
  EXPECT_EQ(pipeline.completed(), 4u);

  // Decompress what the compute node received and compare to the file.
  ByteReader r(received.span());
  Buffer reassembled;
  for (int i = 0; i < 4; ++i) {
    uint32_t len;
    ASSERT_TRUE(r.ReadU32(&len));
    ByteSpan chunk;
    ASSERT_TRUE(r.ReadSpan(len, &chunk));
    auto plain = kern::DeflateDecompress(chunk);
    ASSERT_TRUE(plain.ok());
    reassembled.Append(plain->span());
  }
  EXPECT_EQ(reassembled, page_data);
}

TEST(UtilizationProbeTest, MeasuresWindowedBusyTime) {
  sim::Simulator sim;
  hw::Server server(&sim, hw::DefaultServerSpec());
  // Warm-up work outside the window must not count.
  server.host_cpu().Execute(3'000'000, UniqueFunction([] {}));
  sim.Run();

  UtilizationProbe probe(&server);
  probe.Start();
  // 64 cores x 1e6 cycles at 3 GHz = 64/3 ms busy inside the window.
  for (int i = 0; i < 64; ++i) {
    server.host_cpu().Execute(1'000'000, UniqueFunction([] {}));
  }
  sim.Run();
  probe.Stop();
  EXPECT_NEAR(probe.host_cores() * double(probe.window_ns()),
              64.0 * 1e6 / 3.0, 64.0 * 1e6 / 3.0 * 0.01);
  EXPECT_EQ(probe.dpu_cores(), 0.0);
}

TEST(FmtTest, FormatsFixedDecimals) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace dpdpu::rt
