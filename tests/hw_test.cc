// Unit tests for the hardware models: CPU clusters, accelerators, links,
// SSDs, memory pools, and the machine presets. Several tests pin the
// calibration relationships the paper's figures depend on.

#include <gtest/gtest.h>

#include "hw/accelerator.h"
#include "hw/calibration.h"
#include "hw/cpu.h"
#include "hw/link.h"
#include "hw/machine.h"
#include "hw/memory.h"
#include "hw/ssd.h"
#include "sim/simulator.h"

namespace dpdpu::hw {
namespace {

TEST(CpuClusterTest, CyclesToTimeMatchesClockAndIpc) {
  sim::Simulator sim;
  CpuCluster cpu(&sim, CpuSpec{"c", 1, 2.0e9, 0.5});
  // 1e9 effective Hz: 1000 cycles -> 1000 ns.
  EXPECT_EQ(cpu.CyclesToTime(1000), 1000u);
}

TEST(CpuClusterTest, WorkTimeAddsFixedAndPerByte) {
  sim::Simulator sim;
  CpuCluster cpu(&sim, CpuSpec{"c", 1, 1.0e9, 1.0});
  // 1 GHz: cycles == ns. 100 fixed + 50 bytes * 2 cyc/B = 200 ns.
  EXPECT_EQ(cpu.WorkTime(50, 2.0, 100), 200u);
}

TEST(CpuClusterTest, CoresConsumedMatchesOfferedLoad) {
  sim::Simulator sim;
  CpuCluster cpu(&sim, CpuSpec{"c", 8, 1.0e9, 1.0});
  // Offer 4 concurrent streams of back-to-back 1000-cycle jobs for 1 ms.
  for (int s = 0; s < 4; ++s) {
    for (int j = 0; j < 1000; ++j) cpu.Execute(1000, UniqueFunction([] {}));
  }
  sim.Run();
  // 4M cycles of work on a 1 GHz cluster = 4 ms of busy time.
  EXPECT_DOUBLE_EQ(double(cpu.resource().busy_time()), 4e6);
}

TEST(AcceleratorTest, JobTimeIsSetupPlusStreaming) {
  sim::Simulator sim;
  Accelerator asic(&sim, AcceleratorSpec{AcceleratorKind::kCompression,
                                         1.0e9, 10'000, 2});
  // 1 GB/s: 1e6 bytes -> 1 ms streaming + 10 us setup.
  EXPECT_EQ(asic.JobTime(1'000'000), 1'010'000u);
}

TEST(AcceleratorTest, ConcurrencyLimitQueues) {
  sim::Simulator sim;
  Accelerator asic(&sim, AcceleratorSpec{AcceleratorKind::kEncryption,
                                         1.0e9, 0, 2});
  std::vector<sim::SimTime> done;
  for (int i = 0; i < 4; ++i) {
    asic.SubmitJob(1000, [&] { done.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  // Two run immediately (1 us each), two queue behind them.
  EXPECT_EQ(done[0], 1000u);
  EXPECT_EQ(done[1], 1000u);
  EXPECT_EQ(done[2], 2000u);
  EXPECT_EQ(done[3], 2000u);
  EXPECT_EQ(asic.jobs_completed(), 4u);
}

TEST(NicPortTest, SerializationPlusPropagation) {
  sim::Simulator sim;
  NicPort nic(&sim, "nic", NicSpec{100e9, 2000, 4096});
  // 100 Gbps: 12500 bytes = 1 us serialization, + 2 us propagation.
  sim::SimTime delivered = 0;
  nic.Transmit(12500, [&] { delivered = sim.now(); });
  sim.Run();
  EXPECT_EQ(delivered, 3000u);
  EXPECT_EQ(nic.bytes_sent(), 12500u);
}

TEST(NicPortTest, FramesSerializeBackToBack) {
  sim::Simulator sim;
  NicPort nic(&sim, "nic", NicSpec{100e9, 0, 4096});
  std::vector<sim::SimTime> at;
  for (int i = 0; i < 3; ++i) {
    nic.Transmit(12500, [&] { at.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(at, (std::vector<sim::SimTime>{1000, 2000, 3000}));
}

TEST(PcieLinkTest, DmaTimeMatchesBandwidthAndLatency) {
  sim::Simulator sim;
  PcieLink pcie(&sim, "pcie", PcieSpec{25e9, 600});
  sim::SimTime landed = 0;
  pcie.Dma(25000, [&] { landed = sim.now(); });  // 1 us at 25 GB/s
  sim.Run();
  EXPECT_EQ(landed, 1600u);
  EXPECT_EQ(pcie.bytes_moved(), 25000u);
  EXPECT_EQ(pcie.transfers(), 1u);
}

TEST(SsdDeviceTest, ReadAndWriteLatencies) {
  sim::Simulator sim;
  SsdDevice ssd(&sim, "ssd", SsdSpec{80'000, 20'000, 4, 8.0e9});
  sim::SimTime read_done = 0, write_done = 0;
  ssd.SubmitRead(8192, [&] { read_done = sim.now(); });
  ssd.SubmitWrite(8192, [&] { write_done = sim.now(); });
  sim.Run();
  EXPECT_EQ(read_done, 80'000u + 1024u);   // 8 KB at 8 GB/s = 1.024 us
  EXPECT_EQ(write_done, 20'000u + 1024u);
  EXPECT_EQ(ssd.reads(), 1u);
  EXPECT_EQ(ssd.writes(), 1u);
}

TEST(SsdDeviceTest, QueueDepthBoundsParallelism) {
  sim::Simulator sim;
  SsdDevice ssd(&sim, "ssd", SsdSpec{1000, 1000, 2, 1e12});
  int done = 0;
  for (int i = 0; i < 4; ++i) ssd.SubmitRead(0, [&] { ++done; });
  sim.RunUntil(1000);
  EXPECT_EQ(done, 2);  // only 2 channels
  sim.Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.now(), 2000u);
}

TEST(MemoryPoolTest, AllocateFreeAndExhaustion) {
  MemoryPool pool("m", 1000);
  EXPECT_TRUE(pool.Allocate(600).ok());
  EXPECT_EQ(pool.available(), 400u);
  Status s = pool.Allocate(500);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_TRUE(pool.Allocate(400).ok());
  EXPECT_EQ(pool.peak_used(), 1000u);
  pool.Free(1000);
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(pool.peak_used(), 1000u);
}

TEST(MemoryPoolTest, OverFreeClampsToZero) {
  MemoryPool pool("m", 100);
  ASSERT_TRUE(pool.Allocate(50).ok());
  pool.Free(80);
  EXPECT_EQ(pool.used(), 0u);
}

// --------------------------------------------------------------------------
// Machine presets: the heterogeneity matrix from the paper.
// --------------------------------------------------------------------------

TEST(MachineTest, BlueField2HasAllFourAccelerators) {
  DpuSpec bf2 = BlueField2Spec();
  EXPECT_TRUE(bf2.HasAccelerator(AcceleratorKind::kCompression));
  EXPECT_TRUE(bf2.HasAccelerator(AcceleratorKind::kEncryption));
  EXPECT_TRUE(bf2.HasAccelerator(AcceleratorKind::kRegex));
  EXPECT_TRUE(bf2.HasAccelerator(AcceleratorKind::kDedup));
  EXPECT_EQ(bf2.cpu.cores, 8u);
  EXPECT_EQ(bf2.memory_bytes, 16ull << 30);
  EXPECT_FALSE(bf2.generic_nic_core_offload);
}

TEST(MachineTest, BlueField3LacksRegexButOffloadsGenericCode) {
  DpuSpec bf3 = BlueField3Spec();
  EXPECT_FALSE(bf3.HasAccelerator(AcceleratorKind::kRegex));
  EXPECT_TRUE(bf3.HasAccelerator(AcceleratorKind::kCompression));
  EXPECT_TRUE(bf3.generic_nic_core_offload);
}

TEST(MachineTest, IpuLikeOnlyHasCrypto) {
  DpuSpec ipu = IntelIpuLikeSpec();
  EXPECT_TRUE(ipu.HasAccelerator(AcceleratorKind::kEncryption));
  EXPECT_FALSE(ipu.HasAccelerator(AcceleratorKind::kCompression));
  EXPECT_FALSE(ipu.HasAccelerator(AcceleratorKind::kRegex));
}

TEST(MachineTest, ServerWiresComponents) {
  sim::Simulator sim;
  Server server(&sim, DefaultServerSpec("s1"));
  EXPECT_NE(server.accelerator(AcceleratorKind::kCompression), nullptr);
  EXPECT_NE(server.accelerator(AcceleratorKind::kRegex), nullptr);
  EXPECT_EQ(server.dpu_memory().capacity(), 16ull << 30);
  EXPECT_EQ(server.host_cpu().spec().cores, cal::kHostCores);
  EXPECT_EQ(server.dpu_cpu().spec().cores, cal::kBf2ArmCores);
  EXPECT_NE(server.dpu_log_device(), nullptr);
}

TEST(MachineTest, IpuServerLacksCompressionAndLogDevice) {
  sim::Simulator sim;
  Server server(&sim, MakeServerSpec("s2", IntelIpuLikeSpec()));
  EXPECT_EQ(server.accelerator(AcceleratorKind::kCompression), nullptr);
  EXPECT_EQ(server.dpu_log_device(), nullptr);
}

// --------------------------------------------------------------------------
// Calibration pins for the paper's figures.
// --------------------------------------------------------------------------

TEST(CalibrationTest, Figure2Anchor450kPagesIs2p7Cores) {
  // cores = iops * cycles_per_io / host_hz
  double cores = 450'000.0 * double(cal::kLinuxStorageStackCyclesPerIo) /
                 (cal::kHostClockHz * cal::kHostIpc);
  EXPECT_NEAR(cores, 2.7, 0.01);
}

TEST(CalibrationTest, Figure1AsicBeatsHostCpuByOrderOfMagnitude) {
  double host_mbps =
      cal::kHostClockHz * cal::kHostIpc / cal::kDeflateCyclesPerByte;
  double asic_mbps = cal::kBf2CompressAsicBytesPerSec;
  double speedup = asic_mbps / host_mbps;
  EXPECT_GT(speedup, 10.0);
  EXPECT_LT(speedup, 40.0);
}

TEST(CalibrationTest, Figure1EpycOutrunsArm) {
  double epyc = cal::kHostClockHz * cal::kHostIpc;
  double arm = cal::kBf2ArmClockHz * cal::kBf2ArmIpc;
  EXPECT_GT(epyc / arm, 1.5);
  EXPECT_LT(epyc / arm, 3.0);
}

TEST(CalibrationTest, Figure3KernelTcpCostIsMultipleCoresAt100Gbps) {
  double msgs_per_sec = 100e9 / 8.0 / 8192.0;
  double cycles_per_sec =
      msgs_per_sec * double(cal::kKernelTcpCyclesPerMsg) +
      100e9 / 8.0 * cal::kKernelTcpCyclesPerByte;
  double cores = cycles_per_sec / (cal::kHostClockHz * cal::kHostIpc);
  EXPECT_GT(cores, 4.0);
  EXPECT_LT(cores, 12.0);
}

TEST(CalibrationTest, DpuTcpFitsOnBf2CoresAt100Gbps) {
  // Section 6: the offloaded stack must fit the weaker DPU cores.
  double msgs_per_sec = 100e9 / 8.0 / 8192.0;
  double cycles_per_sec = msgs_per_sec * double(cal::kDpuTcpCyclesPerMsg) +
                          100e9 / 8.0 * cal::kDpuTcpCyclesPerByte;
  double arm_cores =
      cycles_per_sec / (cal::kBf2ArmClockHz * cal::kBf2ArmIpc);
  EXPECT_LT(arm_cores, double(cal::kBf2ArmCores));
}

}  // namespace
}  // namespace dpdpu::hw
