// Unit tests for the discrete-event simulator and the Resource queue.

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"

namespace dpdpu::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.empty());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.now());
    sim.Schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.Schedule(10, [] {});
  sim.Run();
  ASSERT_EQ(sim.now(), 10u);
  sim.RunFor(25);
  EXPECT_EQ(sim.now(), 35u);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime when = 0;
  sim.ScheduleAt(123, [&] { when = sim.now(); });
  sim.Run();
  EXPECT_EQ(when, 123u);
}

TEST(SimulatorTest, EventCountTracksExecution) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = 0;
  bool monotonic = true;
  // Interleave scheduling from callbacks to stress the heap.
  for (int i = 0; i < 1000; ++i) {
    sim.Schedule((i * 7919) % 1000, [&, i] {
      if (sim.now() < last) monotonic = false;
      last = sim.now();
      if (i % 3 == 0) {
        sim.Schedule(13, [&] {
          if (sim.now() < last) monotonic = false;
          last = sim.now();
        });
      }
    });
  }
  sim.Run();
  EXPECT_TRUE(monotonic);
}

// --------------------------------------------------------------------------
// Resource
// --------------------------------------------------------------------------

TEST(ResourceTest, SingleServerSerializesJobs) {
  Simulator sim;
  Resource r(&sim, "cpu", 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    r.Submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
}

TEST(ResourceTest, MultiServerRunsConcurrently) {
  Simulator sim;
  Resource r(&sim, "cpu", 3);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    r.Submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 100, 100}));
}

TEST(ResourceTest, QueueDrainsFifo) {
  Simulator sim;
  Resource r(&sim, "cpu", 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    r.Submit(10, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.jobs_completed(), 5u);
}

TEST(ResourceTest, BusyTimeAccumulatesServiceTime) {
  Simulator sim;
  Resource r(&sim, "cpu", 2);
  for (int i = 0; i < 4; ++i) r.Submit(50);
  sim.Run();
  EXPECT_EQ(r.busy_time(), 200u);
  // 4 jobs x 50ns over 100ns elapsed on 2 servers => 2.0 busy-server equiv.
  EXPECT_DOUBLE_EQ(r.BusyServerEquivalent(sim.now()), 2.0);
  EXPECT_DOUBLE_EQ(r.Utilization(sim.now()), 1.0);
}

TEST(ResourceTest, UtilizationBelowOneWhenIdle) {
  Simulator sim;
  Resource r(&sim, "cpu", 1);
  r.Submit(100);
  sim.Run();
  sim.RunUntil(400);
  EXPECT_DOUBLE_EQ(r.Utilization(sim.now()), 0.25);
}

TEST(ResourceTest, WaitHistogramRecordsQueueing) {
  Simulator sim;
  Resource r(&sim, "cpu", 1);
  r.Submit(100);
  r.Submit(100);  // waits 100
  r.Submit(100);  // waits 200
  sim.Run();
  EXPECT_EQ(r.wait_histogram().count(), 3u);
  EXPECT_EQ(r.wait_histogram().min(), 0u);
  // Log-bucket resolution ~4%.
  EXPECT_NEAR(double(r.wait_histogram().max()), 200.0, 1.0);
}

TEST(ResourceTest, SubmitFromCompletionCallback) {
  Simulator sim;
  Resource r(&sim, "cpu", 1);
  int chain = 0;
  UniqueFunction step;
  r.Submit(10, [&] {
    ++chain;
    r.Submit(10, [&] { ++chain; });
  });
  sim.Run();
  EXPECT_EQ(chain, 2);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(ResourceTest, ZeroServiceTimeJobs) {
  Simulator sim;
  Resource r(&sim, "cpu", 1);
  int done = 0;
  for (int i = 0; i < 10; ++i) r.Submit(0, [&] { ++done; });
  sim.Run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(ResourceTest, QueueLengthVisibleMidRun) {
  Simulator sim;
  Resource r(&sim, "cpu", 1);
  for (int i = 0; i < 5; ++i) r.Submit(100);
  EXPECT_EQ(r.busy(), 1u);
  EXPECT_EQ(r.queue_length(), 4u);
  sim.RunUntil(150);
  EXPECT_EQ(r.queue_length(), 3u);
  sim.Run();
  EXPECT_EQ(r.queue_length(), 0u);
  EXPECT_EQ(r.busy(), 0u);
}

}  // namespace
}  // namespace dpdpu::sim
