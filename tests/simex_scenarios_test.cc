// Regression gate for the cluster consistency simex scenarios
// (src/cluster/simex_scenarios.cc). Three layers:
//
//  * the registry is complete and self-describing,
//  * every scenario's reference schedule runs clean (the fleet's
//    healthy path must never trip its own invariants),
//  * every committed `simex:1:` replay token — each one the minimized
//    schedule of a real bug exploration found before its fix — still
//    replays clean and race-free. A regression re-opens the bug and
//    fails the exact schedule that found it the first time.
//
// tests/CMakeLists.txt additionally replays the same tokens through the
// simex CLI (`simex --target=... --token=...`) so the user-facing
// replay path is gated too.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/simex_scenarios.h"
#include "sim/simex.h"

namespace dpdpu {
namespace {

using cluster::ClusterScenarioInfo;
using cluster::ClusterScenarios;
using cluster::FindClusterScenario;

// One committed regression token per bug the scenario exploration
// found. Tokens are minimized fault-branch picks; see the scenario
// comments for the bug each schedule reproduces.
struct RegressionToken {
  const char* scenario;
  const char* token;
  const char* bug;
};

const RegressionToken kRegressionTokens[] = {
    // Hint queue overflow erased the abandoned queue uncounted, so
    // queued != replayed + abandoned + pending.
    {"cluster-hint-overflow", "simex:1:0=1,1=1", "hint accounting leak"},
    // The catch-up done-callback re-admitted a node that hard-failed
    // again mid-transfer (no recover epoch guard).
    {"cluster-refail", "simex:1:0=1,1=1,2=1",
     "router re-admitted dark storage node"},
    // A transfer RPC fully acked by TCP before the target went dark
    // never aborts; the wedged job leaked its unreplayed hints.
    {"cluster-refail", "simex:1:0=1,1=1,2=2",
     "catch-up wedged on acked-then-dark RPC"},
    // A write acked solely by the write-only (mid-catch-up) replica was
    // never committed: re-admission did not publish the node's durable
    // state to the authority.
    {"cluster-writeonly-ack", "simex:1:0=1,1=1,2=1,3=1",
     "acked write lost on write-only sole ack"},
    // Representative fault branches of the two gating scenarios (no
    // pre-fix bug; committed so the CLI replay path stays covered).
    {"cluster-handoff", "simex:1:0=1", "gating coverage"},
    {"cluster-catchup-readmit", "simex:1:0=1", "gating coverage"},
};

TEST(ClusterScenarioRegistry, AllScenariosRegistered) {
  std::vector<std::string> names;
  for (const ClusterScenarioInfo& info : ClusterScenarios()) {
    names.push_back(info.name);
    EXPECT_NE(std::string(info.description), "");
    EXPECT_NE(info.make, nullptr);
    EXPECT_EQ(FindClusterScenario(info.name), &info);
  }
  EXPECT_GE(names.size(), 4u);
  for (const char* required :
       {"cluster-handoff", "cluster-hint-overflow",
        "cluster-catchup-readmit", "cluster-refail",
        "cluster-writeonly-ack"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required),
              names.end())
        << required << " missing from the registry";
  }
  EXPECT_EQ(FindClusterScenario("no-such-scenario"), nullptr);
}

TEST(ClusterScenarioReference, ReferenceSchedulesRunClean) {
  for (const ClusterScenarioInfo& info : ClusterScenarios()) {
    sim::Explorer ex(info.make(), sim::ExploreOptions{});
    sim::RunRecord rec = ex.Run(sim::Plan{});
    EXPECT_TRUE(rec.result.ok)
        << info.name << ": " << rec.result.failure;
    EXPECT_EQ(rec.race_count, 0u) << info.name;
  }
}

TEST(ClusterScenarioRegression, CommittedTokensReplayClean) {
  for (const RegressionToken& reg : kRegressionTokens) {
    const ClusterScenarioInfo* info = FindClusterScenario(reg.scenario);
    ASSERT_NE(info, nullptr) << reg.scenario;
    sim::Plan plan;
    ASSERT_TRUE(sim::TokenToPlan(reg.token, &plan))
        << reg.scenario << " " << reg.token;
    // Round trip: the committed token is in canonical form.
    EXPECT_EQ(sim::PlanToToken(plan), reg.token);
    sim::Explorer ex(info->make(), sim::ExploreOptions{});
    sim::RunRecord rec = ex.Run(plan);
    EXPECT_TRUE(rec.result.ok)
        << reg.scenario << " " << reg.token << " (" << reg.bug
        << "): " << rec.result.failure;
    EXPECT_EQ(rec.race_count, 0u)
        << reg.scenario << " " << reg.token << " (" << reg.bug << ")";
  }
}

}  // namespace
}  // namespace dpdpu
