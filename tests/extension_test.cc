// Tests for the Section 4/5 extension components: the shared-state table
// in DPU memory, PCIe-attached accelerators, and DP kernel fusion.

#include <gtest/gtest.h>

#include "core/compute/compute_engine.h"
#include "core/runtime/platform.h"
#include "core/runtime/shared_state.h"
#include "hw/machine.h"
#include "kern/chacha20.h"
#include "kern/deflate.h"
#include "kern/textgen.h"

namespace dpdpu {
namespace {

// --------------------------------------------------------------------------
// SharedStateTable.
// --------------------------------------------------------------------------

struct SharedStateFixture {
  SharedStateFixture() : server(&sim, hw::DefaultServerSpec()) {}
  sim::Simulator sim;
  hw::Server server;
};

TEST(SharedStateTest, PutGetEraseRoundTrip) {
  SharedStateFixture f;
  rt::SharedStateTable table(&f.server, 1 << 20);
  ASSERT_TRUE(table.Put("page:7", Buffer("cached page bytes")).ok());
  const Buffer* v = table.Get("page:7");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->ToString(), "cached page bytes");
  EXPECT_EQ(table.Get("missing"), nullptr);
  EXPECT_TRUE(table.Erase("page:7"));
  EXPECT_FALSE(table.Erase("page:7"));
  EXPECT_EQ(table.Get("page:7"), nullptr);
}

TEST(SharedStateTest, VersionsDetectAsynchronousUpdates) {
  SharedStateFixture f;
  rt::SharedStateTable table(&f.server, 1 << 20);
  EXPECT_EQ(table.Version("k"), 0u);
  ASSERT_TRUE(table.Put("k", Buffer("v1")).ok());
  uint64_t v1 = table.Version("k");
  EXPECT_GT(v1, 0u);
  // Another engine writes concurrently (the Section 4 "consistency is
  // not guaranteed" case): the version moves, so the first engine can
  // detect it.
  ASSERT_TRUE(table.Put("k", Buffer("v2")).ok());
  EXPECT_GT(table.Version("k"), v1);
}

TEST(SharedStateTest, CapacityEnforcedThroughDpuMemory) {
  SharedStateFixture f;
  rt::SharedStateTable table(&f.server, 4096);
  EXPECT_LE(table.capacity(), 4096u);
  // DPU memory accounting reflects the reservation.
  EXPECT_GE(f.server.dpu_memory().used(), table.capacity());
  Buffer big(size_t{8192});
  EXPECT_TRUE(table.Put("too-big", std::move(big)).IsResourceExhausted());
  EXPECT_EQ(table.stats().rejected_puts, 1u);
  // Replacing an entry reuses its budget.
  ASSERT_TRUE(table.Put("a", Buffer(size_t{1024})).ok());
  ASSERT_TRUE(table.Put("a", Buffer(size_t{2048})).ok());
  EXPECT_EQ(table.entry_count(), 1u);
}

TEST(SharedStateTest, KeysEnumerates) {
  SharedStateFixture f;
  rt::SharedStateTable table(&f.server, 1 << 20);
  ASSERT_TRUE(table.Put("b", Buffer("2")).ok());
  ASSERT_TRUE(table.Put("a", Buffer("1")).ok());
  EXPECT_EQ(table.Keys(), (std::vector<std::string>{"a", "b"}));
}

// --------------------------------------------------------------------------
// PCIe accelerator target.
// --------------------------------------------------------------------------

hw::ServerSpec GpuServerSpec() {
  hw::ServerSpec spec = hw::DefaultServerSpec();
  spec.pcie_accelerator = hw::PcieAcceleratorSpec{};
  return spec;
}

struct GpuFixture {
  GpuFixture()
      : server(&sim, GpuServerSpec()),
        engine(&server, ce::KernelRegistry::Builtin()) {}
  sim::Simulator sim;
  hw::Server server;
  ce::ComputeEngine engine;
};

TEST(PcieAccelTest, SpecifiedExecutionOnGpu) {
  GpuFixture f;
  Buffer text = kern::GenerateText(1 << 20, {});
  auto item = f.engine.Invoke(ce::kKernelCompress, text, {},
                              {ce::ExecTarget::kPcieAccel});
  ASSERT_TRUE(item.ok()) << item.status();
  f.sim.Run();
  ASSERT_TRUE((*item)->result().ok());
  EXPECT_EQ((*item)->executed_on(), ce::ExecTarget::kPcieAccel);
  auto back = kern::DeflateDecompress((*item)->result().value().span());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, text);
}

TEST(PcieAccelTest, UnavailableWithoutDevice) {
  sim::Simulator sim;
  hw::Server server(&sim, hw::DefaultServerSpec());
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin());
  auto item = engine.Invoke(ce::kKernelCompress, Buffer("x"), {},
                            {ce::ExecTarget::kPcieAccel});
  EXPECT_TRUE(item.status().IsUnavailable());
}

TEST(PcieAccelTest, GpuBeatsCpusOnHeavyKernels) {
  GpuFixture f;
  Buffer text = kern::GenerateText(4 << 20, {});
  auto gpu = f.engine.Invoke(ce::kKernelCompress, text, {},
                             {ce::ExecTarget::kPcieAccel});
  auto host = f.engine.Invoke(ce::kKernelCompress, text, {},
                              {ce::ExecTarget::kHostCpu});
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(host.ok());
  f.sim.Run();
  EXPECT_LT((*gpu)->latency(), (*host)->latency());
}

// --------------------------------------------------------------------------
// Kernel fusion.
// --------------------------------------------------------------------------

TEST(FusionTest, FusedChainMatchesSequentialResult) {
  GpuFixture f;
  Buffer text = kern::GenerateText(200000, {});
  ce::KernelParams crypto{{"key", "fusion-key"}};

  auto fused = f.engine.InvokeFused(
      {{ce::kKernelCompress, {}}, {ce::kKernelEncrypt, crypto}}, text,
      {ce::ExecTarget::kPcieAccel});
  ASSERT_TRUE(fused.ok()) << fused.status();
  f.sim.Run();
  ASSERT_TRUE((*fused)->result().ok());

  // Reference: the same two kernels applied by hand.
  auto compressed = kern::DeflateCompress(text.span());
  ASSERT_TRUE(compressed.ok());
  std::array<uint8_t, 32> key{};
  std::memcpy(key.data(), "fusion-key", 10);
  Buffer expected = kern::ChaCha20Xor(key, {}, 0, compressed->span());
  EXPECT_EQ((*fused)->result().value(), expected);
}

TEST(FusionTest, FusedRejectsAsicTarget) {
  GpuFixture f;
  auto fused = f.engine.InvokeFused({{ce::kKernelCompress, {}}},
                                    Buffer("x"),
                                    {ce::ExecTarget::kDpuAsic});
  EXPECT_TRUE(fused.status().IsNotSupported());
}

TEST(FusionTest, EmptyChainRejected) {
  GpuFixture f;
  EXPECT_TRUE(
      f.engine.InvokeFused({}, Buffer("x")).status().IsInvalidArgument());
}

TEST(FusionTest, UnknownKernelRejected) {
  GpuFixture f;
  EXPECT_TRUE(f.engine.InvokeFused({{"nope", {}}}, Buffer("x"))
                  .status()
                  .IsNotFound());
}

TEST(FusionTest, FusedOnGpuBeatsSeparateGpuInvocations) {
  // Fusion's win is one PCIe round trip + one launch instead of two of
  // each (Section 5's motivation).
  Buffer text = kern::GenerateText(1 << 20, {});
  ce::KernelParams crypto{{"key", "k"}};

  GpuFixture a;
  auto fused = a.engine.InvokeFused(
      {{ce::kKernelCompress, {}}, {ce::kKernelEncrypt, crypto}}, text,
      {ce::ExecTarget::kPcieAccel});
  ASSERT_TRUE(fused.ok());
  a.sim.Run();
  sim::SimTime fused_latency = (*fused)->latency();

  GpuFixture b;
  sim::SimTime separate_done = 0;
  auto first = b.engine.Invoke(ce::kKernelCompress, text, {},
                               {ce::ExecTarget::kPcieAccel});
  ASSERT_TRUE(first.ok());
  (*first)->OnComplete([&](ce::WorkItem& w) {
    ASSERT_TRUE(w.result().ok());
    auto second = b.engine.Invoke(ce::kKernelEncrypt, w.result().value(),
                                  crypto, {ce::ExecTarget::kPcieAccel});
    ASSERT_TRUE(second.ok());
    (*second)->OnComplete(
        [&](ce::WorkItem& w2) { separate_done = w2.completed_at(); });
  });
  b.sim.Run();

  EXPECT_LT(fused_latency, separate_done);
}

TEST(FusionTest, AutoPlacementPicksSomewhereValid) {
  GpuFixture f;
  Buffer text = kern::GenerateText(100000, {});
  auto fused = f.engine.InvokeFused(
      {{ce::kKernelCompress, {}}, {ce::kKernelCrc32, {}}}, text);
  ASSERT_TRUE(fused.ok());
  f.sim.Run();
  ASSERT_TRUE((*fused)->done());
  ce::ExecTarget t = (*fused)->executed_on();
  EXPECT_TRUE(t == ce::ExecTarget::kPcieAccel ||
              t == ce::ExecTarget::kHostCpu ||
              t == ce::ExecTarget::kDpuCpu);
  EXPECT_TRUE((*fused)->result().ok());
  // crc32 of the compressed stream: 4 bytes.
  EXPECT_EQ((*fused)->result().value().size(), 4u);
}


// --------------------------------------------------------------------------
// Sproc migration (iPipe-style co-scheduling, Section 5).
// --------------------------------------------------------------------------

TEST(SprocMigrationTest, BackloggedDpuMigratesSprocsToHost) {
  sim::Simulator sim;
  hw::Server server(&sim, hw::DefaultServerSpec());
  ce::ComputeEngineOptions options;
  options.sproc_migration = true;
  options.sproc_migration_queue_threshold = 4;
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin(), options);

  int ran = 0;
  ASSERT_TRUE(
      engine.RegisterSproc("tick", [&](ce::SprocContext&) { ++ran; }).ok());

  // Backlog the DPU cores with long jobs, then invoke a burst of sprocs.
  for (int i = 0; i < 64; ++i) {
    server.dpu_cpu().Execute(50'000'000, UniqueFunction([] {}));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.InvokeSproc("tick").ok());
  }
  sim.Run();
  EXPECT_EQ(ran, 20);
  EXPECT_GT(engine.sprocs_migrated_to_host(), 0u);
}

TEST(SprocMigrationTest, DisabledStaysOnDpu) {
  sim::Simulator sim;
  hw::Server server(&sim, hw::DefaultServerSpec());
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin(), {});
  int ran = 0;
  ASSERT_TRUE(
      engine.RegisterSproc("tick", [&](ce::SprocContext&) { ++ran; }).ok());
  for (int i = 0; i < 64; ++i) {
    server.dpu_cpu().Execute(50'000'000, UniqueFunction([] {}));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.InvokeSproc("tick").ok());
  }
  sim.Run();
  EXPECT_EQ(ran, 20);
  EXPECT_EQ(engine.sprocs_migrated_to_host(), 0u);
}

TEST(SprocMigrationTest, MigratedSprocsFinishSoonerUnderDpuOverload) {
  auto run = [](bool migrate) {
    sim::Simulator sim;
    hw::Server server(&sim, hw::DefaultServerSpec());
    ce::ComputeEngineOptions options;
    options.sproc_migration = migrate;
    options.sproc_migration_queue_threshold = 2;
    ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin(),
                             options);
    sim::SimTime last_done = 0;
    (void)engine.RegisterSproc(
        "work", [&](ce::SprocContext&) { last_done = sim.now(); });
    for (int i = 0; i < 64; ++i) {
      server.dpu_cpu().Execute(10'000'000, UniqueFunction([] {}));
    }
    for (int i = 0; i < 30; ++i) (void)engine.InvokeSproc("work");
    sim.Run();
    return last_done;
  };
  EXPECT_LT(run(true), run(false));
}


// --------------------------------------------------------------------------
// Host-side cache in HostFileClient (Section 9 caching).
// --------------------------------------------------------------------------

TEST(HostCacheTest, SecondHostReadServedFromHostMemory) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions options;
  options.storage.dpu_cache_bytes = 0;  // isolate the host cache
  rt::Platform platform(&sim, &net, options);
  auto& client = platform.storage().host_client();
  client.EnableHostCache(8 << 20);

  auto file = platform.fs().Create("hc");
  ASSERT_TRUE(file.ok());
  Buffer data = kern::GenerateRandomBytes(64 * 1024, 7);
  ASSERT_TRUE(platform.fs().Write(*file, 0, data.span()).ok());

  Buffer first, second;
  sim::SimTime t0 = sim.now();
  client.Read(*file, 0, 64 * 1024, [&](Result<Buffer> d) {
    ASSERT_TRUE(d.ok());
    first = std::move(d).value();
  });
  sim.Run();
  sim::SimTime miss_latency = sim.now() - t0;

  t0 = sim.now();
  client.Read(*file, 0, 64 * 1024, [&](Result<Buffer> d) {
    ASSERT_TRUE(d.ok());
    second = std::move(d).value();
  });
  sim.Run();
  sim::SimTime hit_latency = sim.now() - t0;

  EXPECT_EQ(first, data);
  EXPECT_EQ(second, data);
  EXPECT_EQ(hit_latency, 0u) << "host-memory hit must not cross PCIe";
  EXPECT_GT(miss_latency, 0u);
  ASSERT_NE(client.host_cache_stats(), nullptr);
  EXPECT_GT(client.host_cache_stats()->hits, 0u);
}

TEST(HostCacheTest, WriteInvalidatesHostCache) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::Platform platform(&sim, &net, {});
  auto& client = platform.storage().host_client();
  client.EnableHostCache(8 << 20);

  auto file = platform.fs().Create("hc2");
  ASSERT_TRUE(file.ok());
  Buffer v1 = kern::GenerateRandomBytes(8192, 1);
  Buffer v2 = kern::GenerateRandomBytes(8192, 2);
  ASSERT_TRUE(platform.fs().Write(*file, 0, v1.span()).ok());

  client.Read(*file, 0, 8192, [](Result<Buffer>) {});  // warm
  sim.Run();
  bool wrote = false;
  client.Write(*file, 0, v2, [&](Status s) {
    ASSERT_TRUE(s.ok());
    wrote = true;
  });
  sim.Run();
  ASSERT_TRUE(wrote);
  Buffer got;
  client.Read(*file, 0, 8192, [&](Result<Buffer> d) {
    got = std::move(d).value();
  });
  sim.Run();
  EXPECT_EQ(got, v2);
}

TEST(HostCacheTest, ReservationComesFromHostMemoryPool) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::Platform platform(&sim, &net, {});
  uint64_t before = platform.server().host_memory().used();
  platform.storage().host_client().EnableHostCache(1 << 30);
  EXPECT_GE(platform.server().host_memory().used(), before + (1u << 30));
}

}  // namespace
}  // namespace dpdpu
