// Tests for the Network Engine: TCP offload vs host-kernel cost paths,
// flow-control co-design, DFI-style flows, and the two RDMA issue paths
// of Figure 7.

#include <gtest/gtest.h>

#include "core/network/flow.h"
#include "core/network/network_engine.h"
#include "core/runtime/metrics.h"
#include "hw/calibration.h"
#include "kern/textgen.h"

namespace dpdpu::ne {
namespace {

struct TwoServers {
  explicit TwoServers(TcpMode mode = TcpMode::kDpuOffload) : net(&sim) {
    NetworkEngineOptions options;
    options.tcp_mode = mode;
    a_server = std::make_unique<hw::Server>(&sim, hw::DefaultServerSpec("a"));
    b_server = std::make_unique<hw::Server>(&sim, hw::DefaultServerSpec("b"));
    a = std::make_unique<NetworkEngine>(a_server.get(), &net, 1, options);
    b = std::make_unique<NetworkEngine>(b_server.get(), &net, 2, options);
    net.Attach(1, &a_server->nic_tx(),
               [this](netsub::Packet p) { a->OnPacket(std::move(p)); });
    net.Attach(2, &b_server->nic_tx(),
               [this](netsub::Packet p) { b->OnPacket(std::move(p)); });
  }

  sim::Simulator sim;
  netsub::Network net;
  std::unique_ptr<hw::Server> a_server, b_server;
  std::unique_ptr<NetworkEngine> a, b;
};

TEST(NeTcpTest, OffloadedSocketDeliversExactBytes) {
  TwoServers env;
  Buffer sent = kern::GenerateText(500000, {});
  Buffer received;
  env.b->Listen(80, [&](NeSocket* s) {
    s->SetReceiveCallback([&](ByteSpan d) { received.Append(d); });
  });
  NeSocket* client = env.a->Connect(2, 80);
  client->Send(sent.span());
  env.sim.Run();
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(received, sent);
  EXPECT_EQ(client->bytes_sent(), sent.size());
}

TEST(NeTcpTest, HostKernelModeAlsoDelivers) {
  TwoServers env(TcpMode::kHostKernel);
  Buffer sent = kern::GenerateText(200000, {});
  Buffer received;
  env.b->Listen(80, [&](NeSocket* s) {
    s->SetReceiveCallback([&](ByteSpan d) { received.Append(d); });
  });
  env.a->Connect(2, 80)->Send(sent.span());
  env.sim.Run();
  EXPECT_EQ(received, sent);
}

TEST(NeTcpTest, OffloadMovesCpuCostFromHostToDpu) {
  // The Figure 3 / Section 6 claim: same transfer, the host cores
  // consumed collapse and the DPU absorbs the protocol work.
  auto run = [](TcpMode mode, double* host_cores, double* dpu_cores) {
    TwoServers env(mode);
    Buffer sent = kern::GenerateText(2 << 20, {});
    env.b->Listen(80, [&](NeSocket* s) {
      s->SetReceiveCallback([](ByteSpan) {});
    });
    rt::UtilizationProbe probe(env.a_server.get());
    probe.Start();
    env.a->Connect(2, 80)->Send(sent.span());
    env.sim.Run();
    probe.Stop();
    *host_cores = probe.host_cores();
    *dpu_cores = probe.dpu_cores();
  };
  double kernel_host, kernel_dpu, offload_host, offload_dpu;
  run(TcpMode::kHostKernel, &kernel_host, &kernel_dpu);
  run(TcpMode::kDpuOffload, &offload_host, &offload_dpu);
  EXPECT_GT(kernel_host, offload_host * 5)
      << "offload must slash host CPU cost";
  EXPECT_GT(offload_dpu, kernel_dpu)
      << "the DPU picks up the protocol work";
}

TEST(NeTcpTest, ReceiverRingBackpressureShrinksWindow) {
  TwoServers env;
  // Tiny host ring on the receiver.
  NetworkEngineOptions tight;
  tight.host_rx_ring_bytes = 32 * 1024;
  auto c_server = std::make_unique<hw::Server>(
      &env.sim, hw::DefaultServerSpec("c"));
  NetworkEngine c(c_server.get(), &env.net, 3, tight);
  env.net.Attach(3, &c_server->nic_tx(),
                 [&](netsub::Packet p) { c.OnPacket(std::move(p)); });

  Buffer sent = kern::GenerateText(1 << 20, {});
  uint64_t received = 0;
  c.Listen(80, [&](NeSocket* s) {
    s->SetReceiveCallback([&](ByteSpan d) { received += d.size(); });
  });
  NeSocket* client = env.a->Connect(3, 80);
  client->Send(sent.span());
  env.sim.Run();
  // All bytes still arrive (flow control throttles, never loses).
  EXPECT_EQ(received, sent.size());
}

// --------------------------------------------------------------------------
// Flows.
// --------------------------------------------------------------------------

TEST(FlowTest, RecordsRoundTripWithBatching) {
  TwoServers env;
  std::vector<std::string> got;
  std::unique_ptr<FlowReader> reader;
  env.b->Listen(80, [&](NeSocket* s) {
    reader = std::make_unique<FlowReader>(
        s, [&](ByteSpan record) {
          got.emplace_back(reinterpret_cast<const char*>(record.data()),
                           record.size());
        });
  });
  NeSocket* client = env.a->Connect(2, 80);
  FlowWriter writer(client, /*batch_bytes=*/4096);
  std::vector<std::string> sent;
  for (int i = 0; i < 500; ++i) {
    sent.push_back("record-" + std::to_string(i));
    writer.Push(Buffer(sent.back()).span());
  }
  writer.Flush();
  env.sim.Run();
  EXPECT_EQ(got, sent);
  EXPECT_EQ(writer.records_pushed(), 500u);
  EXPECT_LT(writer.batches_sent(), 500u);  // batching actually batched
  EXPECT_EQ(reader->records_received(), 500u);
}

// Pushes from scheduled events — the only context where concurrent
// pushes are possible at all, and the context simscope --xcheck needs
// to see FlowWriter's race annotation fire dynamically.
TEST(FlowTest, EventDrivenPushesRoundTrip) {
  TwoServers env;
  std::vector<std::string> got;
  std::unique_ptr<FlowReader> reader;
  env.b->Listen(80, [&](NeSocket* s) {
    reader = std::make_unique<FlowReader>(
        s, [&](ByteSpan record) {
          got.emplace_back(reinterpret_cast<const char*>(record.data()),
                           record.size());
        });
  });
  NeSocket* client = env.a->Connect(2, 80);
  FlowWriter writer(client, /*batch_bytes=*/256);
  for (int i = 0; i < 8; ++i) {
    // Two pushes per timestamp: commutative batching, any order.
    env.sim.Schedule(1000 * (i / 2), [&writer, i] {
      std::string rec = "evt-record-" + std::to_string(i);
      writer.Push(Buffer(rec).span());
    });
  }
  env.sim.Schedule(10000, [&writer] { writer.Flush(); });
  env.sim.Run();
  EXPECT_EQ(got.size(), 8u);
  EXPECT_EQ(writer.records_pushed(), 8u);
}

TEST(FlowTest, LargeRecordsSpanBatches) {
  TwoServers env;
  std::vector<size_t> got_sizes;
  std::unique_ptr<FlowReader> reader;
  env.b->Listen(80, [&](NeSocket* s) {
    reader = std::make_unique<FlowReader>(
        s, [&](ByteSpan r) { got_sizes.push_back(r.size()); });
  });
  NeSocket* client = env.a->Connect(2, 80);
  FlowWriter writer(client, 1024);
  Buffer big = kern::GenerateRandomBytes(100000, 7);
  writer.Push(big.span());
  writer.Push(Buffer("tiny").span());
  writer.Flush();
  env.sim.Run();
  ASSERT_EQ(got_sizes.size(), 2u);
  EXPECT_EQ(got_sizes[0], 100000u);
  EXPECT_EQ(got_sizes[1], 4u);
}

// --------------------------------------------------------------------------
// RDMA offload (Figure 7).
// --------------------------------------------------------------------------

struct RdmaEnv : TwoServers {
  RdmaEnv() {
    qp_a = a->rdma_nic().CreateQueuePair();
    qp_b = b->rdma_nic().CreateQueuePair();
    netsub::ConnectQueuePairs(qp_a, qp_b);
    local = a->rdma_nic().RegisterMemory(1 << 20);
    remote = b->rdma_nic().RegisterMemory(1 << 20);
  }
  netsub::QueuePair* qp_a;
  netsub::QueuePair* qp_b;
  netsub::MrKey local;
  netsub::MrKey remote;
};

TEST(RdmaOffloadTest, BothPathsMoveTheSameBytes) {
  for (RdmaPath path : {RdmaPath::kNative, RdmaPath::kDpuOffloaded}) {
    RdmaEnv env;
    auto endpoint = env.a->CreateRdmaEndpoint(path, env.qp_a);
    auto mem = env.a->rdma_nic().Memory(env.local);
    std::memcpy(mem->data(), "figure-seven", 12);
    ASSERT_TRUE(
        endpoint->Write(1, env.local, 0, env.remote, 500, 12).ok());
    env.sim.Run();
    netsub::RdmaCompletion c;
    ASSERT_TRUE(endpoint->PollCompletion(&c));
    EXPECT_TRUE(c.ok);
    auto rmem = env.b->rdma_nic().Memory(env.remote);
    EXPECT_EQ(std::memcmp(rmem->data() + 500, "figure-seven", 12), 0);
  }
}

TEST(RdmaOffloadTest, OffloadCutsHostIssueCost) {
  auto run = [](RdmaPath path) {
    RdmaEnv env;
    auto endpoint = env.a->CreateRdmaEndpoint(path, env.qp_a);
    rt::UtilizationProbe probe(env.a_server.get());
    probe.Start();
    constexpr int kOps = 2000;
    for (int i = 0; i < kOps; ++i) {
      EXPECT_TRUE(endpoint
                      ->Write(i, env.local, (i * 64) % 65536, env.remote,
                              (i * 64) % 65536, 64)
                      .ok());
    }
    env.sim.Run();
    probe.Stop();
    // Normalize to host busy-nanoseconds per op.
    return double(probe.host_cores()) * double(probe.window_ns()) / kOps;
  };
  double native = run(RdmaPath::kNative);
  double offloaded = run(RdmaPath::kDpuOffloaded);
  EXPECT_GT(native, offloaded * 3)
      << "ring-based issue must be several times cheaper on the host";
}

TEST(RdmaOffloadTest, OffloadedCompletionsArriveThroughHostRing) {
  RdmaEnv env;
  auto endpoint =
      env.a->CreateRdmaEndpoint(RdmaPath::kDpuOffloaded, env.qp_a);
  ASSERT_TRUE(endpoint->Write(7, env.local, 0, env.remote, 0, 128).ok());
  // Nothing is complete before the simulation runs.
  netsub::RdmaCompletion c;
  EXPECT_FALSE(endpoint->PollCompletion(&c));
  env.sim.Run();
  ASSERT_TRUE(endpoint->PollCompletion(&c));
  EXPECT_EQ(c.wr_id, 7u);
  EXPECT_TRUE(c.ok);
  EXPECT_FALSE(endpoint->PollCompletion(&c));
}

TEST(RdmaOffloadTest, OffloadedReadAndSendRecv) {
  RdmaEnv env;
  auto ep_a =
      env.a->CreateRdmaEndpoint(RdmaPath::kDpuOffloaded, env.qp_a);
  auto ep_b =
      env.b->CreateRdmaEndpoint(RdmaPath::kDpuOffloaded, env.qp_b);

  auto rmem = env.b->rdma_nic().Memory(env.remote);
  std::memcpy(rmem->data() + 64, "read-me!", 8);
  ASSERT_TRUE(ep_a->Read(1, env.local, 0, env.remote, 64, 8).ok());

  ASSERT_TRUE(ep_b->Recv(2, env.remote, 1024, 256).ok());
  ASSERT_TRUE(ep_a->Send(3, Buffer("two-sided").span()).ok());
  env.sim.Run();

  auto lmem = env.a->rdma_nic().Memory(env.local);
  EXPECT_EQ(std::memcmp(lmem->data(), "read-me!", 8), 0);
  EXPECT_EQ(std::memcmp(rmem->data() + 1024, "two-sided", 9), 0);

  int a_completions = 0, b_completions = 0;
  netsub::RdmaCompletion c;
  while (ep_a->PollCompletion(&c)) ++a_completions;
  while (ep_b->PollCompletion(&c)) ++b_completions;
  EXPECT_EQ(a_completions, 2);  // read + send
  EXPECT_EQ(b_completions, 1);  // recv
}

}  // namespace
}  // namespace dpdpu::ne
