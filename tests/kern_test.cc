// Tests for the non-DEFLATE software kernels: CRC32, ChaCha20 (RFC 8439
// vectors), regex engine, dedup chunker, relational kernels, textgen.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kern/chacha20.h"
#include "kern/crc32.h"
#include "kern/dedup.h"
#include "kern/regex.h"
#include "kern/relational.h"
#include "kern/textgen.h"
#include "kern/zlib_format.h"

namespace dpdpu::kern {
namespace {

// --------------------------------------------------------------------------
// CRC32.
// --------------------------------------------------------------------------

TEST(Crc32Test, StandardCheckValue) {
  Buffer in("123456789");
  EXPECT_EQ(Crc32(in.span()), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(ByteSpan()), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Buffer in("the quick brown fox jumps over the lazy dog");
  uint32_t whole = Crc32(in.span());
  uint32_t crc = 0;
  crc = Crc32Update(crc, in.span().subspan(0, 10));
  crc = Crc32Update(crc, in.span().subspan(10));
  EXPECT_EQ(crc, whole);
}

TEST(Crc32Test, SliceBy8MatchesBytewiseReference) {
  // The slice-by-8 fast path must agree with the byte-at-a-time table
  // walk for every length and alignment, including chunks split at
  // arbitrary points (which exercises the <8-byte head/tail paths).
  Buffer data = GenerateRandomBytes(4096, 99);
  Pcg32 rng(1234);
  for (size_t len : {size_t(0), size_t(1), size_t(7), size_t(8), size_t(9),
                     size_t(63), size_t(64), size_t(65), size_t(1000),
                     size_t(4096)}) {
    ByteSpan span = data.span().subspan(0, len);
    uint32_t fast = Crc32(span);
    uint32_t slow = Crc32UpdateBytewise(0, span);
    EXPECT_EQ(fast, slow) << "len=" << len;

    // Random split points: incremental slice-by-8 over pieces must match
    // too (the CRC is a function of the byte stream, not the chunking).
    uint32_t pieced = 0;
    size_t pos = 0;
    while (pos < len) {
      size_t chunk = 1 + rng.NextBounded(uint32_t(len - pos));
      pieced = Crc32Update(pieced, span.subspan(pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(pieced, fast) << "len=" << len;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  Buffer in = GenerateRandomBytes(1024, 5);
  uint32_t orig = Crc32(in.span());
  for (int i = 0; i < 50; ++i) {
    Buffer mutated = in;
    mutated[i * 20] ^= 1;
    EXPECT_NE(Crc32(mutated.span()), orig);
  }
}

// --------------------------------------------------------------------------
// ChaCha20 (RFC 8439 §2.3.2 and §2.4.2 vectors).
// --------------------------------------------------------------------------

std::array<uint8_t, 32> Rfc8439Key() {
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  return key;
}

TEST(ChaCha20Test, Rfc8439BlockFunctionVector) {
  auto key = Rfc8439Key();
  std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  auto block = ChaCha20Block(key, nonce, 1);
  const uint8_t expected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_TRUE(std::equal(block.begin(), block.end(), expected));
}

TEST(ChaCha20Test, Rfc8439EncryptionVector) {
  auto key = Rfc8439Key();
  std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  Buffer plaintext(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Buffer ct = ChaCha20Xor(key, nonce, 1, plaintext.span());
  const uint8_t expected_first16[16] = {0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68,
                                        0xf9, 0x80, 0x41, 0xba, 0x07, 0x28,
                                        0xdd, 0x0d, 0x69, 0x81};
  ASSERT_GE(ct.size(), 16u);
  EXPECT_TRUE(std::equal(expected_first16, expected_first16 + 16, ct.data()));
  // Last 4 bytes of the RFC ciphertext.
  const uint8_t expected_tail[4] = {0x5e, 0x42, 0x87, 0x4d};
  EXPECT_TRUE(std::equal(expected_tail, expected_tail + 4,
                         ct.data() + ct.size() - 4));
}

TEST(ChaCha20Test, XorIsItsOwnInverse) {
  auto key = Rfc8439Key();
  std::array<uint8_t, 12> nonce{};
  Buffer plaintext = GenerateRandomBytes(10000, 77);
  Buffer ct = ChaCha20Xor(key, nonce, 0, plaintext.span());
  EXPECT_FALSE(ct == plaintext);
  Buffer back = ChaCha20Xor(key, nonce, 0, ct.span());
  EXPECT_EQ(back, plaintext);
}

TEST(ChaCha20Test, DifferentNoncesDiverge) {
  auto key = Rfc8439Key();
  std::array<uint8_t, 12> n1{}, n2{};
  n2[0] = 1;
  Buffer pt = GenerateRandomBytes(256, 8);
  Buffer c1 = ChaCha20Xor(key, n1, 0, pt.span());
  Buffer c2 = ChaCha20Xor(key, n2, 0, pt.span());
  EXPECT_FALSE(c1 == c2);
}

TEST(ChaCha20Test, NonBlockAlignedLengths) {
  auto key = Rfc8439Key();
  std::array<uint8_t, 12> nonce{};
  for (size_t n : {1u, 63u, 64u, 65u, 127u, 129u}) {
    Buffer pt = GenerateRandomBytes(n, n);
    Buffer ct = ChaCha20Xor(key, nonce, 0, pt.span());
    Buffer back = ChaCha20Xor(key, nonce, 0, ct.span());
    EXPECT_EQ(back, pt) << "n=" << n;
  }
}


// --------------------------------------------------------------------------
// zlib container format (RFC 1950).
// --------------------------------------------------------------------------

TEST(ZlibTest, Adler32KnownVectors) {
  // Adler-32 of "Wikipedia" (the RFC's worked example elsewhere).
  Buffer wiki("Wikipedia");
  EXPECT_EQ(Adler32(wiki.span()), 0x11E60398u);
  EXPECT_EQ(Adler32(ByteSpan()), 1u);
}

TEST(ZlibTest, Adler32IncrementalMatchesOneShot) {
  Buffer data = GenerateText(100000, {});
  uint32_t whole = Adler32(data.span());
  uint32_t adler = 1;
  adler = Adler32Update(adler, data.span().subspan(0, 33333));
  adler = Adler32Update(adler, data.span().subspan(33333));
  EXPECT_EQ(adler, whole);
}

TEST(ZlibTest, RoundTrip) {
  Buffer text = GenerateText(200000, {});
  auto z = ZlibCompress(text.span());
  ASSERT_TRUE(z.ok());
  // RFC 1950 header: 0x78 0x9C is the ubiquitous default marker.
  EXPECT_EQ((*z)[0], 0x78);
  EXPECT_EQ((*z)[1], 0x9C);
  auto back = ZlibDecompress(z->span());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, text);
}

TEST(ZlibTest, RejectsBadHeader) {
  Buffer text("hello zlib");
  auto z = ZlibCompress(text.span());
  ASSERT_TRUE(z.ok());
  Buffer bad = *z;
  bad[0] = 0x79;  // method nibble wrong
  EXPECT_TRUE(ZlibDecompress(bad.span()).status().IsCorruption());
  bad = *z;
  bad[1] ^= 1;  // FCHECK broken
  EXPECT_TRUE(ZlibDecompress(bad.span()).status().IsCorruption());
}

TEST(ZlibTest, DetectsPayloadCorruptionViaAdler) {
  Buffer text = GenerateText(50000, {});
  auto z = ZlibCompress(text.span());
  ASSERT_TRUE(z.ok());
  // Flip a bit in the stored checksum itself: inflate succeeds but the
  // Adler comparison must fail.
  Buffer bad = *z;
  bad[bad.size() - 1] ^= 1;
  EXPECT_TRUE(ZlibDecompress(bad.span()).status().IsCorruption());
}

TEST(ZlibTest, TooShortRejected) {
  Buffer tiny("ab");
  EXPECT_TRUE(ZlibDecompress(tiny.span()).status().IsCorruption());
}

// --------------------------------------------------------------------------
// Regex.
// --------------------------------------------------------------------------

bool Full(const std::string& pattern, const std::string& text) {
  auto re = Regex::Compile(pattern);
  EXPECT_TRUE(re.ok()) << pattern << ": " << re.status();
  return re.ok() && re->FullMatch(text);
}

bool Partial(const std::string& pattern, const std::string& text) {
  auto re = Regex::Compile(pattern);
  EXPECT_TRUE(re.ok()) << pattern << ": " << re.status();
  return re.ok() && re->PartialMatch(text);
}

TEST(RegexTest, Literals) {
  EXPECT_TRUE(Full("abc", "abc"));
  EXPECT_FALSE(Full("abc", "abd"));
  EXPECT_FALSE(Full("abc", "ab"));
  EXPECT_FALSE(Full("abc", "abcd"));
}

TEST(RegexTest, Dot) {
  EXPECT_TRUE(Full("a.c", "abc"));
  EXPECT_TRUE(Full("a.c", "axc"));
  EXPECT_FALSE(Full("a.c", "a\nc"));  // dot excludes newline
}

TEST(RegexTest, StarPlusQuestion) {
  EXPECT_TRUE(Full("ab*c", "ac"));
  EXPECT_TRUE(Full("ab*c", "abbbbc"));
  EXPECT_FALSE(Full("ab+c", "ac"));
  EXPECT_TRUE(Full("ab+c", "abc"));
  EXPECT_TRUE(Full("ab?c", "ac"));
  EXPECT_TRUE(Full("ab?c", "abc"));
  EXPECT_FALSE(Full("ab?c", "abbc"));
}

TEST(RegexTest, Alternation) {
  EXPECT_TRUE(Full("cat|dog", "cat"));
  EXPECT_TRUE(Full("cat|dog", "dog"));
  EXPECT_FALSE(Full("cat|dog", "cow"));
  EXPECT_TRUE(Full("a(b|c)d", "abd"));
  EXPECT_TRUE(Full("a(b|c)d", "acd"));
}

TEST(RegexTest, CharacterClasses) {
  EXPECT_TRUE(Full("[abc]+", "abcba"));
  EXPECT_FALSE(Full("[abc]+", "abd"));
  EXPECT_TRUE(Full("[a-z0-9]+", "abc123"));
  EXPECT_TRUE(Full("[^0-9]+", "hello"));
  EXPECT_FALSE(Full("[^0-9]+", "hell0"));
}

TEST(RegexTest, Escapes) {
  EXPECT_TRUE(Full("\\d+", "12345"));
  EXPECT_FALSE(Full("\\d+", "12a45"));
  EXPECT_TRUE(Full("\\w+", "hello_World9"));
  EXPECT_TRUE(Full("\\s", " "));
  EXPECT_TRUE(Full("\\D+", "abc"));
  EXPECT_TRUE(Full("a\\.b", "a.b"));
  EXPECT_FALSE(Full("a\\.b", "axb"));
  EXPECT_TRUE(Full("a\\\\b", "a\\b"));
}

TEST(RegexTest, BraceQuantifiers) {
  EXPECT_TRUE(Full("a{3}", "aaa"));
  EXPECT_FALSE(Full("a{3}", "aa"));
  EXPECT_FALSE(Full("a{3}", "aaaa"));
  EXPECT_TRUE(Full("a{2,4}", "aa"));
  EXPECT_TRUE(Full("a{2,4}", "aaaa"));
  EXPECT_FALSE(Full("a{2,4}", "aaaaa"));
  EXPECT_TRUE(Full("a{2,}", "aaaaaaa"));
  EXPECT_FALSE(Full("a{2,}", "a"));
}

TEST(RegexTest, Anchors) {
  EXPECT_TRUE(Partial("^abc", "abcdef"));
  EXPECT_FALSE(Partial("^abc", "xabc"));
  EXPECT_TRUE(Partial("def$", "abcdef"));
  EXPECT_FALSE(Partial("def$", "defabc"));
  EXPECT_TRUE(Full("^abc$", "abc"));
}

TEST(RegexTest, PartialVsFull) {
  EXPECT_TRUE(Partial("ell", "hello"));
  EXPECT_FALSE(Full("ell", "hello"));
  EXPECT_TRUE(Partial("\\d{3}", "order 12345 shipped"));
}

TEST(RegexTest, CountMatches) {
  auto re = Regex::Compile("\\d+");
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re->CountMatches("a1b22c333"), 3u);
  EXPECT_EQ(re->CountMatches("no digits"), 0u);
  EXPECT_EQ(re->CountMatches("123"), 1u);  // longest, not 3 separate
}

TEST(RegexTest, CountNonOverlapping) {
  auto re = Regex::Compile("aa");
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re->CountMatches("aaaa"), 2u);
}

TEST(RegexTest, PathologicalPatternStaysLinear) {
  // (a?){25}a{25} against "a"*25 kills backtrackers; the Pike VM is fine.
  std::string pattern;
  for (int i = 0; i < 25; ++i) pattern += "a?";
  for (int i = 0; i < 25; ++i) pattern += "a";
  std::string text(25, 'a');
  EXPECT_TRUE(Full(pattern, text));
}

TEST(RegexTest, SyntaxErrors) {
  EXPECT_TRUE(Regex::Compile("(abc").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("abc)").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("[abc").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("*a").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("a{5,2}").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("a{999}").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("a\\").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("[z-a]").status().IsInvalidArgument());
}

TEST(RegexTest, EmptyPatternMatchesEmpty) {
  EXPECT_TRUE(Full("", ""));
  EXPECT_FALSE(Full("", "x"));
  EXPECT_TRUE(Partial("", "anything"));
}

TEST(RegexTest, ClassWithLeadingBracket) {
  EXPECT_TRUE(Full("[]a]+", "]a]"));  // ']' first in class is a literal
}

// --------------------------------------------------------------------------
// Dedup.
// --------------------------------------------------------------------------

TEST(DedupTest, ChunksCoverInputExactly) {
  Buffer data = GenerateText(500000, {});
  auto chunks = ChunkData(data.span());
  ASSERT_FALSE(chunks.empty());
  size_t expected_offset = 0;
  for (const Chunk& c : chunks) {
    EXPECT_EQ(c.offset, expected_offset);
    expected_offset += c.size;
  }
  EXPECT_EQ(expected_offset, data.size());
}

TEST(DedupTest, ChunkSizesRespectBounds) {
  Buffer data = GenerateRandomBytes(1 << 20, 42);
  ChunkerOptions opts;
  auto chunks = ChunkData(data.span(), opts);
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {  // last may be short
    EXPECT_GE(chunks[i].size, opts.min_size);
    EXPECT_LE(chunks[i].size, opts.max_size);
  }
  // Average within a reasonable factor of the target.
  double avg = double(data.size()) / double(chunks.size());
  EXPECT_GT(avg, opts.avg_size / 4.0);
  EXPECT_LT(avg, opts.avg_size * 4.0);
}

TEST(DedupTest, BoundariesShiftInvariant) {
  // Content-defined chunking: inserting bytes at the front must not
  // change chunk boundaries far from the edit.
  Buffer data = GenerateRandomBytes(300000, 11);
  Buffer shifted;
  shifted.Append("PREFIX-INSERTED-BYTES");
  shifted.Append(data.span());

  auto base = ChunkData(data.span());
  auto after = ChunkData(shifted.span());
  // Collect fingerprints; most of the original chunk set must survive.
  std::vector<uint64_t> base_fp, after_fp;
  for (const auto& c : base) base_fp.push_back(c.fingerprint);
  for (const auto& c : after) after_fp.push_back(c.fingerprint);
  size_t common = 0;
  for (uint64_t f : base_fp) {
    if (std::find(after_fp.begin(), after_fp.end(), f) != after_fp.end()) {
      ++common;
    }
  }
  EXPECT_GT(common, base_fp.size() * 7 / 10);
}

TEST(DedupTest, IndexDetectsDuplicates) {
  Buffer data = GenerateRandomBytes(200000, 21);
  DedupIndex index;
  DedupStats s1 = index.Add(data.span());
  EXPECT_EQ(s1.total_chunks, s1.unique_chunks);
  DedupStats s2 = index.Add(data.span());  // identical content again
  EXPECT_EQ(s2.unique_chunks, s1.unique_chunks);
  EXPECT_NEAR(s2.Ratio(), 2.0, 0.01);
}

TEST(DedupTest, HotChunksSortedByCountThenFingerprint) {
  Buffer once = GenerateRandomBytes(100000, 31);
  Buffer thrice = GenerateRandomBytes(100000, 32);
  DedupIndex index;
  index.Add(once.span());
  for (int i = 0; i < 3; ++i) index.Add(thrice.span());

  auto hot = index.HotChunks(1000);
  ASSERT_FALSE(hot.empty());
  // Deterministic total order: count descending, fingerprint ascending.
  for (size_t i = 0; i + 1 < hot.size(); ++i) {
    if (hot[i].count == hot[i + 1].count) {
      EXPECT_LT(hot[i].fingerprint, hot[i + 1].fingerprint);
    } else {
      EXPECT_GT(hot[i].count, hot[i + 1].count);
    }
  }
  // The thrice-added content dominates the head of the list.
  EXPECT_EQ(hot.front().count, 3u);
  // Truncation keeps the hottest prefix.
  auto top3 = index.HotChunks(3);
  ASSERT_EQ(top3.size(), 3u);
  for (size_t i = 0; i < top3.size(); ++i) EXPECT_EQ(top3[i], hot[i]);
  // Identical indexes produce byte-identical listings (the emission
  // contract simlint R2 is protecting).
  DedupIndex replay;
  replay.Add(once.span());
  for (int i = 0; i < 3; ++i) replay.Add(thrice.span());
  EXPECT_EQ(replay.HotChunks(1000), hot);
}

TEST(DedupTest, FingerprintsDifferForDifferentContent) {
  Buffer a = GenerateRandomBytes(8192, 1);
  Buffer b = GenerateRandomBytes(8192, 2);
  EXPECT_NE(Fingerprint64(a.span()), Fingerprint64(b.span()));
  EXPECT_EQ(Fingerprint64(a.span()), Fingerprint64(a.span()));
}

// --------------------------------------------------------------------------
// Relational.
// --------------------------------------------------------------------------

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"price", ColumnType::kDouble},
                 {"name", ColumnType::kString}});
}

Buffer BuildTestPage(int rows) {
  RowPageBuilder builder(TestSchema());
  for (int i = 0; i < rows; ++i) {
    Status s = builder.AddRow({Value(int64_t(i)), Value(i * 1.5),
                               Value(std::string("item") +
                                     std::to_string(i % 10))});
    EXPECT_TRUE(s.ok());
  }
  return builder.Finish();
}

TEST(RowPageTest, BuildAndReadBack) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(100);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->row_count(), 100u);
  auto v0 = reader->Get(7, 0);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(std::get<int64_t>(*v0), 7);
  auto v1 = reader->Get(7, 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(*v1), 10.5);
  auto v2 = reader->Get(7, 2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(std::get<std::string>(*v2), "item7");
}

TEST(RowPageTest, TypeMismatchRejected) {
  RowPageBuilder builder(TestSchema());
  Status s = builder.AddRow({Value(1.0), Value(2.0), Value(std::string())});
  EXPECT_TRUE(s.IsInvalidArgument());
  s = builder.AddRow({Value(int64_t(1))});
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(RowPageTest, OutOfRangeAccess) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(5);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Get(5, 0).status().IsOutOfRange());
  EXPECT_TRUE(reader->Get(0, 3).status().IsOutOfRange());
}

TEST(RowPageTest, CorruptPageRejected) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(5);
  page[0] ^= 0xFF;  // break magic
  EXPECT_TRUE(
      RowPageReader::Open(&schema, page.span()).status().IsCorruption());
  Buffer truncated(page.data(), 10);
  truncated[0] ^= 0xFF;  // restore nothing; still corrupt
}

TEST(RowPageTest, SchemaMismatchRejected) {
  Schema other({{"x", ColumnType::kInt64}});
  Buffer page = BuildTestPage(5);
  EXPECT_TRUE(RowPageReader::Open(&other, page.span())
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemaTest, FindColumn) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.FindColumn("price"), 1);
  EXPECT_EQ(schema.FindColumn("missing"), -1);
}

TEST(PredicateTest, SimpleComparisons) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(10);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());

  auto lt5 = Predicate::Compare(0, CompareOp::kLt, Value(int64_t(5)));
  auto rows = FilterPage(*reader, *lt5);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);

  auto name3 = Predicate::Compare(2, CompareOp::kEq,
                                  Value(std::string("item3")));
  rows = FilterPage(*reader, *name3);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<uint32_t>{3}));
}

TEST(PredicateTest, BooleanComposition) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(100);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());

  // 20 <= id < 30 OR id == 50
  auto pred = Predicate::Or(
      Predicate::And(
          Predicate::Compare(0, CompareOp::kGe, Value(int64_t(20))),
          Predicate::Compare(0, CompareOp::kLt, Value(int64_t(30)))),
      Predicate::Compare(0, CompareOp::kEq, Value(int64_t(50))));
  auto rows = FilterPage(*reader, *pred);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 11u);

  auto inverse = Predicate::Not(
      Predicate::Compare(0, CompareOp::kLt, Value(int64_t(20))));
  rows = FilterPage(*reader, *inverse);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 80u);
}

TEST(PredicateTest, NumericCrossTypeComparison) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(10);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());
  // Compare int64 column against a double literal.
  auto pred = Predicate::Compare(0, CompareOp::kLt, Value(4.5));
  auto rows = FilterPage(*reader, *pred);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
}

TEST(PredicateTest, StringVsNumberFails) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(3);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());
  auto pred = Predicate::Compare(2, CompareOp::kEq, Value(int64_t(1)));
  EXPECT_TRUE(FilterPage(*reader, *pred).status().IsInvalidArgument());
}

TEST(MaterializeTest, SelectedRowsRoundTrip) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(50);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());
  std::vector<uint32_t> picks = {0, 10, 49};
  auto out = MaterializeRows(*reader, picks);
  ASSERT_TRUE(out.ok());
  auto out_reader = RowPageReader::Open(&schema, out->span());
  ASSERT_TRUE(out_reader.ok());
  EXPECT_EQ(out_reader->row_count(), 3u);
  EXPECT_EQ(std::get<int64_t>(*out_reader->Get(2, 0)), 49);
  EXPECT_EQ(std::get<std::string>(*out_reader->Get(1, 2)), "item0");
}

TEST(AggregateTest, AllKinds) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(10);  // ids 0..9, price = 1.5*id
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());

  EXPECT_EQ(std::get<int64_t>(
                *AggregateColumn(*reader, 0, AggregateKind::kCount)),
            10);
  EXPECT_EQ(
      std::get<int64_t>(*AggregateColumn(*reader, 0, AggregateKind::kSum)),
      45);
  EXPECT_EQ(
      std::get<int64_t>(*AggregateColumn(*reader, 0, AggregateKind::kMin)),
      0);
  EXPECT_EQ(
      std::get<int64_t>(*AggregateColumn(*reader, 0, AggregateKind::kMax)),
      9);
  EXPECT_DOUBLE_EQ(
      std::get<double>(*AggregateColumn(*reader, 1, AggregateKind::kAvg)),
      6.75);
}

TEST(AggregateTest, SubsetRows) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(10);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());
  std::vector<uint32_t> rows = {1, 3, 5};
  auto sum = AggregateColumn(*reader, 0, AggregateKind::kSum, &rows);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(std::get<int64_t>(*sum), 9);
}

TEST(AggregateTest, ErrorsOnStringAndEmpty) {
  Schema schema = TestSchema();
  Buffer page = BuildTestPage(10);
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(AggregateColumn(*reader, 2, AggregateKind::kSum)
                  .status()
                  .IsInvalidArgument());
  std::vector<uint32_t> empty;
  EXPECT_TRUE(AggregateColumn(*reader, 0, AggregateKind::kSum, &empty)
                  .status()
                  .IsInvalidArgument());
}

TEST(GroupByTest, SumPerGroup) {
  Schema schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
  RowPageBuilder builder(schema);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        builder.AddRow({Value(int64_t(i % 3)), Value(int64_t(i))}).ok());
  }
  Buffer page = builder.Finish();
  auto reader = RowPageReader::Open(&schema, page.span());
  ASSERT_TRUE(reader.ok());
  auto groups = GroupByAggregate(*reader, 0, 1, AggregateKind::kSum);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 3u);
  EXPECT_EQ(std::get<int64_t>(groups->at(0)), 0 + 3 + 6 + 9);
  EXPECT_EQ(std::get<int64_t>(groups->at(1)), 1 + 4 + 7 + 10);
  EXPECT_EQ(std::get<int64_t>(groups->at(2)), 2 + 5 + 8 + 11);
}

// --------------------------------------------------------------------------
// Textgen.
// --------------------------------------------------------------------------

TEST(TextGenTest, DeterministicPerSeed) {
  Buffer a = GenerateText(10000, {7, 4096, 0.9});
  Buffer b = GenerateText(10000, {7, 4096, 0.9});
  Buffer c = GenerateText(10000, {8, 4096, 0.9});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(TextGenTest, ProducesExactSize) {
  for (size_t n : {size_t(1), size_t(100), size_t(12345)}) {
    EXPECT_EQ(GenerateText(n, {}).size(), n);
  }
}

TEST(TextGenTest, LooksLikeText) {
  Buffer t = GenerateText(50000, {});
  size_t letters = 0, spaces = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    uint8_t ch = t[i];
    if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')) ++letters;
    if (ch == ' ') ++spaces;
  }
  EXPECT_GT(letters, t.size() * 7 / 10);
  EXPECT_GT(spaces, t.size() / 20);
}

}  // namespace
}  // namespace dpdpu::kern
