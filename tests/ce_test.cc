// Tests for the Compute Engine: kernel registry, specified vs scheduled
// execution, heterogeneity fallback (the Figure 6 pattern), model-based
// placement, DRR multi-tenancy, and sprocs.

#include <gtest/gtest.h>

#include "core/compute/compute_engine.h"
#include "core/compute/sproc.h"
#include "hw/calibration.h"
#include "kern/deflate.h"
#include "kern/textgen.h"
#include "sim/simulator.h"

namespace dpdpu::ce {
namespace {

struct CeFixture {
  explicit CeFixture(hw::DpuSpec dpu = hw::BlueField2Spec(),
                     ComputeEngineOptions options = {})
      : server(&sim, hw::MakeServerSpec("s", std::move(dpu))),
        engine(&server, KernelRegistry::Builtin(), options) {}

  sim::Simulator sim;
  hw::Server server;
  ComputeEngine engine;
};

TEST(KernelRegistryTest, BuiltinsPresent) {
  KernelRegistry reg = KernelRegistry::Builtin();
  for (const char* name :
       {kKernelCompress, kKernelDecompress, kKernelEncrypt, kKernelDecrypt,
        kKernelRegexCount, kKernelCrc32, kKernelDedupChunk, kKernelFilter,
        kKernelAggregate}) {
    EXPECT_NE(reg.Find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.Find("nope"), nullptr);
  EXPECT_GE(reg.List().size(), 9u);
}

TEST(KernelRegistryTest, DuplicateRejected) {
  KernelRegistry reg = KernelRegistry::Builtin();
  DpKernel dup;
  dup.name = kKernelCompress;
  dup.fn = [](ByteSpan, const KernelParams&) -> Result<Buffer> {
    return Buffer();
  };
  EXPECT_TRUE(reg.Register(std::move(dup)).IsAlreadyExists());
}

TEST(ComputeEngineTest, CompressOnAsicProducesValidDeflate) {
  CeFixture f;
  Buffer text = kern::GenerateText(100000, {});
  auto item = f.engine.Invoke(kKernelCompress, text, {},
                              {ExecTarget::kDpuAsic});
  ASSERT_TRUE(item.ok()) << item.status();
  f.sim.Run();
  ASSERT_TRUE((*item)->done());
  ASSERT_TRUE((*item)->result().ok());
  EXPECT_EQ((*item)->executed_on(), ExecTarget::kDpuAsic);
  auto back = kern::DeflateDecompress((*item)->result().value().span());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, text);
}

TEST(ComputeEngineTest, SameOutputOnEveryTarget) {
  Buffer text = kern::GenerateText(50000, {});
  Buffer reference;
  for (ExecTarget target :
       {ExecTarget::kDpuAsic, ExecTarget::kDpuCpu, ExecTarget::kHostCpu}) {
    CeFixture f;
    auto item = f.engine.Invoke(kKernelCompress, text, {}, {target});
    ASSERT_TRUE(item.ok());
    f.sim.Run();
    ASSERT_TRUE((*item)->result().ok());
    if (reference.empty()) {
      reference = (*item)->result().value();
    } else {
      EXPECT_EQ((*item)->result().value(), reference)
          << ExecTargetName(target);
    }
  }
}

TEST(ComputeEngineTest, AsicIsOrderOfMagnitudeFasterThanCpus) {
  Buffer text = kern::GenerateText(1 << 20, {});
  std::map<ExecTarget, sim::SimTime> latency;
  for (ExecTarget target :
       {ExecTarget::kDpuAsic, ExecTarget::kDpuCpu, ExecTarget::kHostCpu}) {
    CeFixture f;
    auto item = f.engine.Invoke(kKernelCompress, text, {}, {target});
    ASSERT_TRUE(item.ok());
    f.sim.Run();
    latency[target] = (*item)->latency();
  }
  // Figure 1's ordering: ASIC << EPYC < Arm.
  EXPECT_GT(latency[ExecTarget::kDpuCpu], latency[ExecTarget::kHostCpu]);
  EXPECT_GT(double(latency[ExecTarget::kHostCpu]) /
                double(latency[ExecTarget::kDpuAsic]),
            10.0);
}

TEST(ComputeEngineTest, SpecifiedTargetUnavailableReturnsUnavailable) {
  // BlueField-3 has no RegEx engine (paper Sections 1/5).
  CeFixture f(hw::BlueField3Spec());
  Buffer text = kern::GenerateText(1000, {});
  auto item = f.engine.Invoke(kKernelRegexCount, text,
                              {{"pattern", "a+"}}, {ExecTarget::kDpuAsic});
  EXPECT_TRUE(item.status().IsUnavailable());

  // The Fig 6 fallback: the caller retries on the DPU CPU.
  auto retry = f.engine.Invoke(kKernelRegexCount, text,
                               {{"pattern", "tion"}}, {ExecTarget::kDpuCpu});
  ASSERT_TRUE(retry.ok());
  f.sim.Run();
  ASSERT_TRUE((*retry)->result().ok());
  ByteReader r((*retry)->result().value().span());
  uint64_t count = 0;
  ASSERT_TRUE(r.ReadU64(&count));
  EXPECT_GT(count, 0u);
}

TEST(ComputeEngineTest, TargetAvailableMatrix) {
  CeFixture bf2;
  EXPECT_TRUE(bf2.engine.TargetAvailable(kKernelRegexCount,
                                         ExecTarget::kDpuAsic));
  CeFixture bf3(hw::BlueField3Spec());
  EXPECT_FALSE(bf3.engine.TargetAvailable(kKernelRegexCount,
                                          ExecTarget::kDpuAsic));
  EXPECT_TRUE(bf3.engine.TargetAvailable(kKernelRegexCount,
                                         ExecTarget::kDpuCpu));
  EXPECT_TRUE(bf3.engine.TargetAvailable(kKernelCompress,
                                         ExecTarget::kDpuAsic));
  EXPECT_FALSE(bf2.engine.TargetAvailable("missing", ExecTarget::kDpuCpu));
}

TEST(ComputeEngineTest, ScheduledExecutionPrefersAsicForBigJobs) {
  ComputeEngineOptions options;
  options.policy = PlacementPolicy::kModelBased;
  CeFixture f(hw::BlueField2Spec(), options);
  Buffer big = kern::GenerateText(4 << 20, {});
  auto item = f.engine.Invoke(kKernelCompress, big);  // kAuto
  ASSERT_TRUE(item.ok());
  f.sim.Run();
  EXPECT_EQ((*item)->executed_on(), ExecTarget::kDpuAsic);
}

TEST(ComputeEngineTest, ScheduledExecutionSpillsOverWhenAsicBacklogged) {
  ComputeEngineOptions options;
  options.policy = PlacementPolicy::kModelBased;
  CeFixture f(hw::BlueField2Spec(), options);
  // Synthetic heavy kernel (identity function, DEFLATE-like cost model)
  // so the scheduling decision is exercised without real compression
  // work dominating the test's wall-clock time.
  DpKernel heavy;
  heavy.name = "heavy";
  heavy.asic_kind = hw::AcceleratorKind::kCompression;
  heavy.cpu_cycles_per_byte = 52.0;
  heavy.fn = [](ByteSpan input, const KernelParams&) -> Result<Buffer> {
    return Buffer(input.data(), input.size());
  };
  ASSERT_TRUE(f.engine.RegisterKernel(std::move(heavy)).ok());

  Buffer big = kern::GenerateRandomBytes(4 << 20, 1);
  // Saturate the compression ASIC far beyond the point where queueing
  // behind it is worse than eating the host's PCIe+compute cost.
  std::vector<WorkItemPtr> items;
  bool saw_non_asic = false;
  for (int i = 0; i < 150; ++i) {
    auto item = f.engine.Invoke("heavy", big);
    ASSERT_TRUE(item.ok());
    items.push_back(*item);
  }
  f.sim.Run();
  for (const auto& item : items) {
    ASSERT_TRUE(item->done());
    if (item->executed_on() != ExecTarget::kDpuAsic) saw_non_asic = true;
  }
  EXPECT_TRUE(saw_non_asic)
      << "model-based placement should spill off the backlogged ASIC";
}

TEST(ComputeEngineTest, DpuCpuOnlyPolicyNeverUsesAsic) {
  ComputeEngineOptions options;
  options.policy = PlacementPolicy::kDpuCpuOnly;
  CeFixture f(hw::BlueField2Spec(), options);
  Buffer text = kern::GenerateText(100000, {});
  auto item = f.engine.Invoke(kKernelCompress, text);
  ASSERT_TRUE(item.ok());
  f.sim.Run();
  EXPECT_EQ((*item)->executed_on(), ExecTarget::kDpuCpu);
}

TEST(ComputeEngineTest, HostExecutionPaysPcie) {
  // A tiny job on host must still pay two PCIe crossings.
  CeFixture f;
  Buffer tiny = kern::GenerateText(64, {});
  auto host = f.engine.Invoke(kKernelCrc32, tiny, {},
                              {ExecTarget::kHostCpu});
  ASSERT_TRUE(host.ok());
  f.sim.Run();
  EXPECT_GE((*host)->latency(),
            2 * f.server.pcie().spec().latency_ns);
}

TEST(ComputeEngineTest, CustomKernelRegistersAndRuns) {
  CeFixture f;
  DpKernel reverse;
  reverse.name = "reverse";
  reverse.cpu_cycles_per_byte = 1.0;
  reverse.fn = [](ByteSpan input, const KernelParams&) -> Result<Buffer> {
    Buffer out(input.size());
    for (size_t i = 0; i < input.size(); ++i) {
      out[i] = input[input.size() - 1 - i];
    }
    return out;
  };
  ASSERT_TRUE(f.engine.RegisterKernel(std::move(reverse)).ok());
  auto item = f.engine.Invoke("reverse", Buffer("abcdef"));
  ASSERT_TRUE(item.ok());
  f.sim.Run();
  EXPECT_EQ((*item)->result().value().ToString(), "fedcba");
}

TEST(ComputeEngineTest, KernelErrorSurfacesInWorkItem) {
  CeFixture f;
  Buffer garbage = kern::GenerateRandomBytes(1000, 3);
  auto item = f.engine.Invoke(kKernelDecompress, garbage, {},
                              {ExecTarget::kDpuCpu});
  ASSERT_TRUE(item.ok());
  f.sim.Run();
  ASSERT_TRUE((*item)->done());
  EXPECT_FALSE((*item)->result().ok());
}

TEST(ComputeEngineTest, UnknownKernelIsNotFound) {
  CeFixture f;
  EXPECT_TRUE(f.engine.Invoke("nope", Buffer()).status().IsNotFound());
}

TEST(ComputeEngineTest, StatsTrackTargets) {
  CeFixture f;
  Buffer text = kern::GenerateText(1000, {});
  ASSERT_TRUE(
      f.engine.Invoke(kKernelCrc32, text, {}, {ExecTarget::kDpuCpu}).ok());
  ASSERT_TRUE(
      f.engine.Invoke(kKernelCrc32, text, {}, {ExecTarget::kHostCpu}).ok());
  f.sim.Run();
  EXPECT_EQ(f.engine.target_stats(ExecTarget::kDpuCpu).jobs, 1u);
  EXPECT_EQ(f.engine.target_stats(ExecTarget::kHostCpu).jobs, 1u);
}

// --------------------------------------------------------------------------
// Multi-tenancy: DRR vs FCFS on the compression ASIC.
// --------------------------------------------------------------------------

TEST(TenancyTest, DrrGivesSmallTenantFairShare) {
  // Tenant 0 floods the ASIC with large jobs; tenant 1 submits a few
  // small ones. Under FCFS the small tenant waits behind the flood;
  // under DRR it interleaves.
  auto run = [](AdmissionQueue::Discipline discipline) {
    ComputeEngineOptions options;
    options.asic_admission = discipline;
    CeFixture f(hw::BlueField2Spec(), options);
    Buffer big = kern::GenerateText(2 << 20, {1});
    Buffer small = kern::GenerateText(64 << 10, {2});
    std::vector<WorkItemPtr> small_items;
    for (int i = 0; i < 30; ++i) {
      auto item = f.engine.Invoke(kKernelCompress, big, {},
                                  {ExecTarget::kDpuAsic, /*tenant=*/0});
      EXPECT_TRUE(item.ok());
    }
    for (int i = 0; i < 5; ++i) {
      auto item = f.engine.Invoke(kKernelCompress, small, {},
                                  {ExecTarget::kDpuAsic, /*tenant=*/1});
      EXPECT_TRUE(item.ok());
      small_items.push_back(*item);
    }
    f.sim.Run();
    sim::SimTime worst = 0;
    for (const auto& item : small_items) {
      worst = std::max(worst, item->latency());
    }
    return worst;
  };
  sim::SimTime fcfs = run(AdmissionQueue::Discipline::kFcfs);
  sim::SimTime drr = run(AdmissionQueue::Discipline::kDrr);
  EXPECT_LT(double(drr), double(fcfs) * 0.6)
      << "DRR should cut the small tenant's worst-case latency";
}

TEST(AdmissionQueueTest, FcfsOrder) {
  AdmissionQueue q(AdmissionQueue::Discipline::kFcfs);
  std::vector<int> order;
  q.Push(0, 100, [&] { order.push_back(0); });
  q.Push(1, 100, [&] { order.push_back(1); });
  q.Push(0, 100, [&] { order.push_back(2); });
  UniqueFunction fn;
  while (q.Pop(&fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(AdmissionQueueTest, DrrInterleavesTenants) {
  AdmissionQueue q(AdmissionQueue::Discipline::kDrr, /*quantum=*/1000);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    q.Push(0, 1000, [&order] { order.push_back(0); });
  }
  for (int i = 0; i < 4; ++i) {
    q.Push(1, 1000, [&order] { order.push_back(1); });
  }
  UniqueFunction fn;
  while (q.Pop(&fn)) fn();
  ASSERT_EQ(order.size(), 8u);
  // Both tenants appear within the first three dispatches.
  bool saw0 = false, saw1 = false;
  for (int i = 0; i < 3; ++i) {
    saw0 |= order[i] == 0;
    saw1 |= order[i] == 1;
  }
  EXPECT_TRUE(saw0 && saw1);
}

TEST(AdmissionQueueTest, DrrHandlesWeightsAboveQuantum) {
  AdmissionQueue q(AdmissionQueue::Discipline::kDrr, /*quantum=*/100);
  int dispatched = 0;
  q.Push(0, 5000, [&] { ++dispatched; });  // 50 quanta needed
  q.Push(1, 100, [&] { ++dispatched; });
  UniqueFunction fn;
  while (q.Pop(&fn)) fn();
  EXPECT_EQ(dispatched, 2);
}

// --------------------------------------------------------------------------
// Sprocs.
// --------------------------------------------------------------------------

TEST(SprocTest, RegisterAndInvoke) {
  CeFixture f;
  int calls = 0;
  ASSERT_TRUE(
      f.engine.RegisterSproc("noop", [&](SprocContext&) { ++calls; }).ok());
  EXPECT_TRUE(f.engine
                  .RegisterSproc("noop", [](SprocContext&) {})
                  .IsAlreadyExists());
  ASSERT_TRUE(f.engine.InvokeSproc("noop").ok());
  EXPECT_TRUE(f.engine.InvokeSproc("missing").IsNotFound());
  f.sim.Run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(f.engine.sprocs_invoked(), 1u);
  EXPECT_EQ(f.engine.Sprocs(), (std::vector<std::string>{"noop"}));
}

TEST(SprocTest, SprocChainsKernelWithFallback) {
  // The Figure 6 pattern inside a sproc: try ASIC, fall back to DPU CPU.
  CeFixture f(hw::BlueField3Spec());  // no RegEx ASIC
  Buffer text = kern::GenerateText(20000, {});
  uint64_t matches = 0;
  ExecTarget ran_on = ExecTarget::kAuto;
  ASSERT_TRUE(
      f.engine
          .RegisterSproc(
              "scan",
              [&](SprocContext& ctx) {
                auto item = ctx.InvokeKernel(kKernelRegexCount, text,
                                             {{"pattern", "tion"}},
                                             {ExecTarget::kDpuAsic});
                if (!item.ok()) {
                  // Accelerator unavailable: move to a DPU core.
                  item = ctx.InvokeKernel(kKernelRegexCount, text,
                                          {{"pattern", "tion"}},
                                          {ExecTarget::kDpuCpu});
                }
                ASSERT_TRUE(item.ok());
                (*item)->OnComplete([&](WorkItem& done) {
                  ran_on = done.executed_on();
                  ByteReader r(done.result().value().span());
                  r.ReadU64(&matches);
                });
              })
          .ok());
  ASSERT_TRUE(f.engine.InvokeSproc("scan").ok());
  f.sim.Run();
  EXPECT_EQ(ran_on, ExecTarget::kDpuCpu);
  EXPECT_GT(matches, 0u);
}

TEST(WorkItemTest, OnCompleteAfterDoneFiresImmediately) {
  WorkItem item;
  item.Complete(Buffer("x"), ExecTarget::kDpuCpu, 42);
  bool fired = false;
  item.OnComplete([&](WorkItem& w) {
    fired = true;
    EXPECT_EQ(w.completed_at(), 42u);
  });
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace dpdpu::ce
