// Bounded model checking for the SPSC ring (src/netsub/ring.h), the
// host/DPU communication primitive every offload path rides on.
//
// Two layers:
//
//  1. Operation-level exhaustion against the REAL SpscRing/MpmcRing:
//     every possible sequence of push/pop attempts up to a bound is
//     replayed against a reference queue, checking success/failure and
//     FIFO content — including full, empty, and wraparound states.
//
//  2. Step-level exhaustion against a faithful model of the SPSC
//     algorithm: TryPush/TryPop are decomposed into their constituent
//     shared-memory accesses (cursor load, slot access, cursor publish)
//     exactly as written in ring.h, and a DFS walks EVERY interleaving
//     of the two threads' steps under sequential consistency. At each
//     step the checker asserts the structural invariants (cursors never
//     cross, occupancy never exceeds capacity, a slot is never
//     overwritten before it is consumed, failures are justified by the
//     snapshot that caused them) and at each terminal state that the
//     consumer observed an exact FIFO prefix.
//
// The model must mirror ring.h line for line; if TryPush/TryPop change,
// update kProducerSteps/kConsumerSteps here in the same commit.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "netsub/ring.h"

namespace dpdpu::netsub {
namespace {

// ==========================================================================
// Layer 1: operation-level exhaustive schedules against the real rings.
// ==========================================================================

// Replays `schedule` (bit i set = push attempt, clear = pop attempt)
// against a ring and a reference deque; returns attempts that succeeded.
template <typename Ring>
int RunSchedule(Ring* ring, size_t capacity, uint32_t schedule, int length) {
  std::deque<int> reference;
  int next_value = 1;
  int successes = 0;
  for (int i = 0; i < length; ++i) {
    if (schedule & (1u << i)) {
      bool pushed = ring->TryPush(next_value);
      EXPECT_EQ(pushed, reference.size() < capacity)
          << "push outcome diverged at op " << i;
      if (pushed) {
        reference.push_back(next_value);
        ++next_value;
        ++successes;
      }
    } else {
      int out = -1;
      bool popped = ring->TryPop(&out);
      EXPECT_EQ(popped, !reference.empty())
          << "pop outcome diverged at op " << i;
      if (popped) {
        EXPECT_EQ(out, reference.front()) << "FIFO order broken at op " << i;
        reference.pop_front();
        ++successes;
      }
    }
    EXPECT_EQ(ring->size_approx(), reference.size());
  }
  return successes;
}

template <typename Ring>
void ExhaustSchedules(size_t capacity, int length) {
  ASSERT_LE(length, 31);
  for (uint32_t schedule = 0; schedule < (1u << length); ++schedule) {
    Ring ring(capacity);
    RunSchedule(&ring, capacity, schedule, length);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RingOpExhaustionTest, SpscAllSchedulesCapacity2) {
  // 2^14 schedules over a capacity-2 ring: every reachable sequence of
  // full hits, empty hits, and wraparounds (cursors pass the mask up to
  // 7 times).
  ExhaustSchedules<SpscRing<int>>(2, 14);
}

TEST(RingOpExhaustionTest, SpscAllSchedulesCapacity4) {
  ExhaustSchedules<SpscRing<int>>(4, 16);
}

TEST(RingOpExhaustionTest, MpmcAllSchedulesCapacity2) {
  ExhaustSchedules<MpmcRing<int>>(2, 14);
}

TEST(RingOpExhaustionTest, MpmcAllSchedulesCapacity4) {
  ExhaustSchedules<MpmcRing<int>>(4, 16);
}

TEST(RingOpExhaustionTest, DeepWraparoundKeepsFifoOrder) {
  // Drive the cursors far past the capacity so the masked index laps the
  // storage many times; contents must stay an exact FIFO window.
  SpscRing<int> ring(4);
  std::deque<int> reference;
  int next_value = 1;
  // Deterministic mixed schedule: push-push-pop, 3000 rounds.
  for (int round = 0; round < 3000; ++round) {
    for (int k = 0; k < 2; ++k) {
      if (ring.TryPush(next_value)) {
        reference.push_back(next_value);
        ++next_value;
      }
    }
    int out = -1;
    if (ring.TryPop(&out)) {
      ASSERT_EQ(out, reference.front());
      reference.pop_front();
    }
  }
  // Drain.
  int out = -1;
  while (ring.TryPop(&out)) {
    ASSERT_EQ(out, reference.front());
    reference.pop_front();
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_EQ(ring.size_approx(), 0u);
}

// ==========================================================================
// Layer 2: step-level exhaustive interleavings of the SPSC algorithm.
// ==========================================================================

// One shared-memory access per step, mirroring SpscRing<T>:
//   TryPush: load tail  -> full check -> write slot  -> publish head
//   TryPop:  load head  -> empty check -> read slot  -> publish tail
// The own-cursor loads (relaxed, single writer) are private and folded
// into the check step; they cannot race by construction.
struct ModelState {
  static constexpr size_t kMaxCapacity = 8;
  static constexpr int kMaxAttempts = 8;

  uint64_t head = 0;
  uint64_t tail = 0;
  std::array<int, kMaxCapacity> slots{};

  // Producer thread: attempts remaining + intra-attempt program counter.
  int p_attempts_left = 0;
  int p_step = 0;          // 0 load-tail, 1 check, 2 write-slot, 3 publish
  uint64_t p_tail_snap = 0;
  int next_value = 1;
  int pushes_ok = 0;

  // Consumer thread.
  int c_attempts_left = 0;
  int c_step = 0;          // 0 load-head, 1 check, 2 read-slot, 3 publish
  uint64_t c_head_snap = 0;
  int c_loaded = 0;
  std::array<int, 2 * kMaxAttempts> popped{};
  int pops_ok = 0;
};

class SpscModelChecker {
 public:
  SpscModelChecker(size_t capacity, int push_attempts, int pop_attempts)
      : capacity_(capacity), mask_(capacity - 1) {
    initial_.p_attempts_left = push_attempts;
    initial_.c_attempts_left = pop_attempts;
  }

  void Run() {
    Explore(initial_);
  }

  uint64_t terminal_states() const { return terminal_states_; }
  uint64_t steps_executed() const { return steps_executed_; }
  bool saw_full_rejection() const { return saw_full_rejection_; }
  bool saw_empty_rejection() const { return saw_empty_rejection_; }
  bool saw_wraparound() const { return saw_wraparound_; }

 private:
  void CheckStructuralInvariants(const ModelState& s) {
    // Cursors never cross and occupancy never exceeds capacity: this is
    // the no-overwrite / no-underflow safety property of the ring.
    EXPECT_GE(s.head, s.tail);
    EXPECT_LE(s.head - s.tail, capacity_);
  }

  // Advances the producer by one atomic step. Returns false if the
  // producer is done.
  bool StepProducer(ModelState& s) {
    if (s.p_attempts_left == 0) return false;
    switch (s.p_step) {
      case 0:  // size_t tail = tail_.load(acquire);
        s.p_tail_snap = s.tail;
        s.p_step = 1;
        break;
      case 1:  // if (head - tail >= capacity_) return false;
        if (s.head - s.p_tail_snap >= capacity_) {
          // The failure must be justified by the snapshot: the ring
          // looked full, and snapshots are only ever conservative
          // (tail_ is monotone, so the true occupancy was <= observed).
          EXPECT_LE(s.p_tail_snap, s.tail);
          saw_full_rejection_ = true;
          --s.p_attempts_left;
          s.p_step = 0;
        } else {
          s.p_step = 2;
        }
        break;
      case 2:  // slots_[head & mask_] = std::move(value);
        // Safety: the slot being written must already be consumed; with
        // the true tail this is head - tail < capacity. The check-step
        // snapshot guarantees it because tail only grows after the
        // snapshot.
        EXPECT_LT(s.head - s.tail, capacity_)
            << "producer would overwrite an unconsumed slot";
        if ((s.head & mask_) != s.head) saw_wraparound_ = true;
        s.slots[s.head & mask_] = s.next_value;
        s.p_step = 3;
        break;
      case 3:  // head_.store(head + 1, release);
        s.head += 1;
        ++s.next_value;
        ++s.pushes_ok;
        --s.p_attempts_left;
        s.p_step = 0;
        break;
    }
    return true;
  }

  bool StepConsumer(ModelState& s) {
    if (s.c_attempts_left == 0) return false;
    switch (s.c_step) {
      case 0:  // size_t head = head_.load(acquire);
        s.c_head_snap = s.head;
        s.c_step = 1;
        break;
      case 1:  // if (tail == head) return false;
        if (s.tail == s.c_head_snap) {
          EXPECT_LE(s.c_head_snap, s.head);  // conservative emptiness
          saw_empty_rejection_ = true;
          --s.c_attempts_left;
          s.c_step = 0;
        } else {
          s.c_step = 2;
        }
        break;
      case 2:  // *out = std::move(slots_[tail & mask_]);
        s.c_loaded = s.slots[s.tail & mask_];
        // The value visible here must be exactly the next FIFO value:
        // the producer published head after writing the slot, so the
        // consumer can never observe a torn or stale slot.
        EXPECT_EQ(s.c_loaded, s.pops_ok + 1)
            << "consumer read a slot the producer had not published";
        s.c_step = 3;
        break;
      case 3:  // tail_.store(tail + 1, release);
        s.popped[s.pops_ok] = s.c_loaded;
        ++s.pops_ok;
        s.tail += 1;
        --s.c_attempts_left;
        s.c_step = 0;
        break;
    }
    return true;
  }

  void CheckTerminal(const ModelState& s) {
    ++terminal_states_;
    // Every popped value is the exact FIFO prefix 1..pops_ok.
    for (int i = 0; i < s.pops_ok; ++i) {
      EXPECT_EQ(s.popped[i], i + 1);
    }
    // Conservation: everything pushed is either popped or still queued.
    EXPECT_EQ(uint64_t(s.pushes_ok - s.pops_ok), s.head - s.tail);
    // Whatever remains queued is the next FIFO window, in order.
    for (uint64_t q = s.tail; q < s.head; ++q) {
      EXPECT_EQ(s.slots[q & mask_], s.pops_ok + 1 + int(q - s.tail));
    }
  }

  void Explore(ModelState s) {
    CheckStructuralInvariants(s);
    // First violation aborts the walk: millions of downstream states
    // would all fail for the same root cause and drown the report.
    if (::testing::Test::HasFailure()) return;

    bool advanced = false;
    {
      ModelState next = s;
      if (StepProducer(next)) {
        advanced = true;
        ++steps_executed_;
        Explore(next);
        if (::testing::Test::HasFailure()) return;
      }
    }
    {
      ModelState next = s;
      if (StepConsumer(next)) {
        advanced = true;
        ++steps_executed_;
        Explore(next);
        if (::testing::Test::HasFailure()) return;
      }
    }
    if (!advanced) CheckTerminal(s);
  }

  const size_t capacity_;
  const uint64_t mask_;
  ModelState initial_;
  uint64_t terminal_states_ = 0;
  uint64_t steps_executed_ = 0;
  bool saw_full_rejection_ = false;
  bool saw_empty_rejection_ = false;
  bool saw_wraparound_ = false;
};

TEST(SpscModelCheckTest, Capacity2ThreePushesThreePops) {
  SpscModelChecker checker(2, 3, 3);
  checker.Run();
  // Exhaustive by construction (both choices explored at every point);
  // the terminal count is a determinism regression guard for the model
  // itself. A capacity-2 ring with 3 pushes against 3 pops reaches full,
  // empty, and wrapped states along different interleavings.
  EXPECT_GT(checker.terminal_states(), 1000u);
  EXPECT_TRUE(checker.saw_full_rejection());
  EXPECT_TRUE(checker.saw_empty_rejection());
  EXPECT_TRUE(checker.saw_wraparound());
}

TEST(SpscModelCheckTest, Capacity2ProducerHeavy) {
  // 5 push attempts against 2 pops: the producer must hit full often and
  // never overwrite.
  SpscModelChecker checker(2, 5, 2);
  checker.Run();
  EXPECT_TRUE(checker.saw_full_rejection());
  EXPECT_GT(checker.terminal_states(), 1000u);
}

TEST(SpscModelCheckTest, Capacity2ConsumerHeavy) {
  // 2 pushes against 5 pop attempts: the consumer must hit empty often
  // and never read an unpublished slot.
  SpscModelChecker checker(2, 2, 5);
  checker.Run();
  EXPECT_TRUE(checker.saw_empty_rejection());
  EXPECT_GT(checker.terminal_states(), 1000u);
}

TEST(SpscModelCheckTest, Capacity4FourPushesThreePops) {
  // Larger ring, asymmetric load: exercises the masked index without
  // blowing up the interleaving count under sanitizer builds.
  SpscModelChecker checker(4, 4, 3);
  checker.Run();
  EXPECT_TRUE(checker.saw_empty_rejection());
  EXPECT_GT(checker.terminal_states(), 10000u);
}

TEST(SpscModelCheckTest, ExplorationIsDeterministic) {
  // The checker is itself sim-adjacent tooling: two runs must agree on
  // the exact number of interleavings and steps.
  SpscModelChecker a(2, 3, 3), b(2, 3, 3);
  a.Run();
  b.Run();
  EXPECT_EQ(a.terminal_states(), b.terminal_states());
  EXPECT_EQ(a.steps_executed(), b.steps_executed());
}

}  // namespace
}  // namespace dpdpu::netsub
