// Ablation: specified vs scheduled execution across heterogeneous DPUs
// (paper Sections 1/5: BlueField-2 has a RegEx ASIC, BlueField-3 and
// IPU-class devices do not; portable DP kernels must run anywhere).
//
// The same job mix — compression, encryption, and RegEx scans — runs on
// three DPU models. "Specified (asic)" is user code that pins kernels to
// accelerators and falls back to the DPU CPU when the probe fails (the
// Figure 6 pattern); "scheduled" lets the CE place every kernel.

#include <cstdio>

#include "common/logging.h"
#include "core/compute/compute_engine.h"
#include "core/runtime/metrics.h"
#include "hw/machine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

struct RunResult {
  double makespan_ms;
  uint64_t asic_jobs;
  uint64_t dpu_cpu_jobs;
  uint64_t host_jobs;
};

RunResult Run(hw::DpuSpec dpu, bool scheduled) {
  sim::Simulator sim;
  hw::Server server(&sim, hw::MakeServerSpec("s", std::move(dpu)));
  ce::ComputeEngineOptions options;
  options.policy = ce::PlacementPolicy::kModelBased;
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin(), options);

  Buffer text = kern::GenerateText(1 << 20, {5});
  struct Job {
    const char* kernel;
    ce::KernelParams params;
  };
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back({ce::kKernelCompress, {}});
    jobs.push_back({ce::kKernelEncrypt, {}});
    jobs.push_back({ce::kKernelRegexCount, {{"pattern", "tion|ing"}}});
  }

  for (const Job& job : jobs) {
    if (scheduled) {
      auto item = engine.Invoke(job.kernel, text, job.params);  // kAuto
      DPDPU_CHECK(item.ok());
    } else {
      // Specified execution with the Fig 6 probe-and-fallback.
      auto item = engine.Invoke(job.kernel, text, job.params,
                                {ce::ExecTarget::kDpuAsic});
      if (!item.ok()) {
        auto fallback = engine.Invoke(job.kernel, text, job.params,
                                      {ce::ExecTarget::kDpuCpu});
        DPDPU_CHECK(fallback.ok());  // DPU CPU is always present
      }
    }
  }
  sim.Run();
  RunResult r;
  r.makespan_ms = double(sim.now()) / 1e6;
  r.asic_jobs = engine.target_stats(ce::ExecTarget::kDpuAsic).jobs;
  r.dpu_cpu_jobs = engine.target_stats(ce::ExecTarget::kDpuCpu).jobs;
  r.host_jobs = engine.target_stats(ce::ExecTarget::kHostCpu).jobs;
  return r;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Ablation: specified vs scheduled execution across "
              "DPUs ===\n");
  std::printf("job mix: 10x (compress + encrypt + regex) over 1 MB "
              "text\n\n");
  std::printf("%-14s %-11s %12s %6s %9s %6s\n", "dpu", "mode",
              "makespan_ms", "asic", "dpu_cpu", "host");

  struct Target {
    const char* name;
    hw::DpuSpec (*spec)();
  };
  Target targets[] = {{"BlueField-2", hw::BlueField2Spec},
                      {"BlueField-3", hw::BlueField3Spec},
                      {"IPU-like", hw::IntelIpuLikeSpec}};
  for (const Target& t : targets) {
    RunResult spec = Run(t.spec(), /*scheduled=*/false);
    RunResult sched = Run(t.spec(), /*scheduled=*/true);
    std::printf("%-14s %-11s %12.2f %6llu %9llu %6llu\n", t.name,
                "specified", spec.makespan_ms,
                (unsigned long long)spec.asic_jobs,
                (unsigned long long)spec.dpu_cpu_jobs,
                (unsigned long long)spec.host_jobs);
    std::printf("%-14s %-11s %12.2f %6llu %9llu %6llu\n", t.name,
                "scheduled", sched.makespan_ms,
                (unsigned long long)sched.asic_jobs,
                (unsigned long long)sched.dpu_cpu_jobs,
                (unsigned long long)sched.host_jobs);
    rt::EmitJsonMetric("abl_placement",
                       std::string(t.name) + "_scheduled_speedup",
                       spec.makespan_ms / sched.makespan_ms, "x");
  }
  std::printf("\nshape: the same user code runs on all three DPUs. On "
              "ASIC-rich devices (BF-2) specified and scheduled are "
              "comparable; the fewer accelerators a device has, the more "
              "scheduled execution wins by spreading work across DPU and "
              "host CPUs instead of serializing on the fallback the user "
              "hard-coded.\n");
  rt::EmitWallClockMetrics("abl_placement", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
