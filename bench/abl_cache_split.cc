// Ablation: host-vs-DPU cache sizing (paper Section 9, "Caching in
// DPU-backed file system": "caching in host memory is most efficient for
// host applications, while caching in DPU memory works better for remote
// requests that can be offloaded. Sizing the cache at the right
// granularity ... is hence a key challenge").
//
// A fixed total cache budget is split between a host-side cache (serving
// the host application's reads) and the DPU-side cache (serving
// offloaded remote reads). We sweep the split under three workload mixes
// and report mean read latency — the optimum tracks the workload.

#include <cstdio>

#include "common/histogram.h"
#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "fssub/page_cache.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

constexpr uint64_t kTotalCache = 32ull << 20;  // 32 MB budget
constexpr uint32_t kPage = 8192;
constexpr uint32_t kFilePages = 16 * 1024;  // 128 MB working set

// Runs `host_fraction` of reads from the host app, the rest as remote
// offloaded reads; returns mean latency with the given DPU cache share.
double Run(double dpu_cache_share, double host_fraction) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  so.storage.dpu_cache_bytes = uint64_t(kTotalCache * dpu_cache_share);
  so.fs_device_blocks = 64 * 1024;  // 256 MB device
  co.node = 2;
  co.fs_device_blocks = 1024;
  rt::Platform server(&sim, &net, so);
  rt::Platform client(&sim, &net, co);
  server.storage().Serve();

  auto file = server.fs().Create("data");
  DPDPU_CHECK(file.ok());
  Buffer mb = kern::GenerateRandomBytes(1 << 20, 1);
  for (uint32_t i = 0; i < kFilePages * kPage / (1 << 20); ++i) {
    DPDPU_CHECK(
        server.fs().Write(*file, uint64_t(i) << 20, mb.span()).ok());
  }

  // Host-side cache for the host application's reads.
  fssub::PageCache host_cache(kTotalCache -
                              uint64_t(kTotalCache * dpu_cache_share));

  se::RemoteStorageClient rsc(&client.network(), 1, 9000);
  ZipfGenerator zipf(kFilePages, 0.99);
  Histogram latency;

  constexpr int kReads = 4000;
  int done = 0;
  int next_read = 0;
  // One outstanding read, RNG keyed off the issue counter: this
  // ablation measures cache *placement*, and concurrency would fold
  // queueing noise into the mean — worse, two reads co-arriving at a
  // FIFO (host-path and remote-path requests converge at the SSD and
  // the wire) make the queue admission order, and so the latency sum,
  // an artifact of event tie-breaking.
  std::function<void()> issue = [&] {
    if (done >= kReads) return;
    Pcg32 rng(sim::SplitMix64(13 ^ uint64_t(next_read++)));
    uint64_t page = zipf.Next(rng);
    sim::SimTime start = sim.now();
    auto finish = [&, start](bool ok) {
      if (ok) latency.Add(sim.now() - start);
      ++done;
      issue();
    };
    if (rng.NextDouble() < host_fraction) {
      // Host application read: host cache first, then the file service.
      fssub::PageKey key{*file, page};
      if (host_cache.Get(key) != nullptr) {
        finish(true);
        return;
      }
      server.storage().host_client().Read(
          *file, page * kPage, kPage,
          [&, key, finish](Result<Buffer> d) {
            if (d.ok()) host_cache.Put(key, std::move(d).value());
            finish(d.ok());
          });
    } else {
      rsc.Read(*file, page * kPage, kPage,
               [finish](Result<Buffer> d) { finish(d.ok()); });
    }
  };
  issue();
  sim.Run();
  return latency.Mean() / 1000.0;  // us
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Ablation: host/DPU cache split (Section 9) ===\n");
  std::printf("32 MB total cache, Zipf(0.99) over a 128 MB file; mean "
              "read latency (us)\n\n");
  std::printf("%18s | %10s %10s %10s\n", "dpu cache share",
              "remote-90%", "mixed-50%", "host-90%");

  for (double share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    double remote_heavy = Run(share, /*host_fraction=*/0.1);
    double mixed = Run(share, 0.5);
    double host_heavy = Run(share, 0.9);
    std::printf("%17.0f%% | %10.1f %10.1f %10.1f\n", share * 100,
                remote_heavy, mixed, host_heavy);
    std::string split = "dpu" + std::to_string(int(share * 100)) + "pct";
    rt::EmitJsonMetric("abl_cache_split", "remote_heavy_mean_" + split,
                       remote_heavy, "us");
    rt::EmitJsonMetric("abl_cache_split", "mixed_mean_" + split, mixed,
                       "us");
    rt::EmitJsonMetric("abl_cache_split", "host_heavy_mean_" + split,
                       host_heavy, "us");
  }
  std::printf("\nshape: remote-heavy workloads want the budget in DPU "
              "memory, host-heavy in host memory; the optimum split "
              "tracks the workload mix (the Section 9 sizing "
              "challenge).\n");
  rt::EmitWallClockMetrics("abl_cache_split", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
