// Figure 8 reproduction: "Round trips from NIC to host in today's
// disaggregated storage (left) can be saved with DPDPU SE (right)."
//
// A remote client issues 8 KB reads against a storage server. On the
// traditional path every request crosses PCIe to the host, runs the host
// OS + storage stack, and crosses back; with the SE, the DPU serves the
// request via PCIe peer-to-peer to the SSD without touching the host.
// We report request latency, host cores, and actual host-PCIe crossings.

#include <cstdio>

#include "common/histogram.h"
#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

struct Point {
  double mean_us;
  double p99_us;
  double host_cores;
  double pcie_crossings_per_req;
};

Point Run(bool offload, int requests, int outstanding) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  so.storage.dpu_cache_bytes = 0;  // always hit the SSD: pure path compare
  so.fs_device_blocks = 32 * 1024;
  co.node = 2;
  co.fs_device_blocks = 1024;
  rt::Platform server(&sim, &net, so);
  rt::Platform client(&sim, &net, co);
  server.storage().Serve();

  auto file = server.fs().Create("data");
  DPDPU_CHECK(file.ok());
  Buffer chunk = kern::GenerateRandomBytes(1 << 20, 1);
  for (int i = 0; i < 32; ++i) {
    DPDPU_CHECK(
        server.fs().Write(*file, uint64_t(i) << 20, chunk.span()).ok());
  }

  se::RemoteStorageClient rsc(&client.network(), 1, 9000);
  uint8_t flags = offload ? 0 : se::kRequestFlagRequiresHost;

  Histogram latency;
  uint64_t pcie_before = server.server().pcie().transfers();
  rt::UtilizationProbe probe(&server.server());
  probe.Start();
  int done = 0;
  int next_request = 0;
  // Closed loop with the requested parallelism. issue() runs inside
  // completion callbacks, so each request derives its own RNG from the
  // issue counter — a shared generator here would tie the draw sequence
  // to same-timestamp completion order.
  std::function<void()> issue = [&] {
    if (done >= requests) return;
    Pcg32 rng(sim::SplitMix64(3 ^ uint64_t(next_request++)));
    uint64_t offset = uint64_t(rng.NextBounded(4000)) * 8192;
    sim::SimTime start = sim.now();
    rsc.Read(*file, offset, 8192,
             [&, start](Result<Buffer> d) {
               if (d.ok()) latency.Add(sim.now() - start);
               ++done;
               issue();
             },
             flags);
  };
  for (int i = 0; i < outstanding; ++i) issue();
  sim.Run();
  probe.Stop();
  uint64_t pcie_after = server.server().pcie().transfers();

  Point p;
  p.mean_us = latency.Mean() / 1000.0;
  p.p99_us = double(latency.P99()) / 1000.0;
  p.host_cores = probe.host_cores();
  p.pcie_crossings_per_req =
      double(pcie_after - pcie_before) / double(requests);
  return p;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Figure 8: disaggregated storage round trips, host "
              "path vs DPDPU SE ===\n");
  std::printf("remote 8 KB reads (SSD-resident, cold cache)\n\n");
  std::printf("%-22s %10s %10s %12s %14s\n", "path", "mean_us", "p99_us",
              "host_cores", "pcie_per_req");

  constexpr int kRequests = 3000;
  for (int outstanding : {1, 16}) {
    std::printf("-- closed loop, %d outstanding --\n", outstanding);
    Point host_path = Run(/*offload=*/false, kRequests, outstanding);
    Point dpu_path = Run(/*offload=*/true, kRequests, outstanding);
    std::printf("%-22s %10.1f %10.1f %12.3f %14.2f\n",
                "via host (today)", host_path.mean_us, host_path.p99_us,
                host_path.host_cores, host_path.pcie_crossings_per_req);
    std::printf("%-22s %10.1f %10.1f %12.3f %14.2f\n",
                "DPDPU SE (direct)", dpu_path.mean_us, dpu_path.p99_us,
                dpu_path.host_cores, dpu_path.pcie_crossings_per_req);
    std::string depth = "q" + std::to_string(outstanding);
    rt::EmitJsonMetric("fig8_dds_path", "host_path_p99_" + depth,
                       host_path.p99_us, "us");
    rt::EmitJsonMetric("fig8_dds_path", "se_path_p99_" + depth,
                       dpu_path.p99_us, "us");
    rt::EmitJsonMetric("fig8_dds_path", "host_path_host_cores_" + depth,
                       host_path.host_cores, "cores");
    rt::EmitJsonMetric("fig8_dds_path", "se_path_host_cores_" + depth,
                       dpu_path.host_cores, "cores");
    rt::EmitJsonMetric("fig8_dds_path", "se_path_pcie_per_req_" + depth,
                       dpu_path.pcie_crossings_per_req, "crossings");
  }

  std::printf("\nshape check: the SE path removes the host PCIe round "
              "trips and host stack work -- host cores -> ~0 and 3 PCIe "
              "crossings/request -> 1. At low concurrency the saved "
              "hops show up as lower latency; under load the DPU path "
              "trades a little latency (its cores also run the TCP "
              "stack) for freeing the host entirely -- DDS's headline "
              "is the CPU, not the microseconds.\n");
  rt::EmitWallClockMetrics("fig8_dds_path", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
