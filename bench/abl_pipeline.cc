// Ablation: streamed cross-engine pipelines vs stage barriers (paper
// Section 4: engine composition "facilitates pipelined data processing —
// one engine's output can be streamed to another engine without waiting
// for the completion of work in progress").
//
// Workload: the read -> compress -> send pipeline over N pages. The
// streamed pipeline overlaps SSD reads, ASIC compression, and NIC
// transmission; the barrier variant finishes each stage for all pages
// before starting the next.

#include <cstdio>

#include "core/runtime/metrics.h"
#include "core/runtime/pipeline.h"
#include "core/runtime/platform.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

constexpr uint32_t kPageBytes = 128 * 1024;

struct Env {
  Env() : net(&sim) {
    rt::PlatformOptions so, co;
    so.node = 1;
    so.fs_device_blocks = 32 * 1024;
    co.node = 2;
    co.fs_device_blocks = 1024;
    server = std::make_unique<rt::Platform>(&sim, &net, so);
    client = std::make_unique<rt::Platform>(&sim, &net, co);
    client->network().Listen(7000, [this](ne::NeSocket* s) {
      s->SetReceiveCallback([](ByteSpan) {});
    });
    out = server->network().Connect(2, 7000);

    auto f = server->fs().Create("pages");
    DPDPU_CHECK(f.ok());
    file = *f;
    Buffer data = kern::GenerateText(kPageBytes, {9});
    for (int i = 0; i < 32; ++i) {
      DPDPU_CHECK(server->fs()
                      .Write(file, uint64_t(i) * kPageBytes, data.span())
                      .ok());
    }
  }

  rt::StageFn ReadStage() {
    return [this](Buffer idx, std::function<void(Result<Buffer>)> done) {
      ByteReader r(idx.span());
      uint64_t page = 0;
      r.ReadU64(&page);
      server->storage().file_service().ReadAsync(
          file, page * kPageBytes, kPageBytes,
          [done = std::move(done)](Result<Buffer> d) {
            done(std::move(d));
          });
    };
  }
  rt::StageFn CompressStage() {
    return [this](Buffer page, std::function<void(Result<Buffer>)> done) {
      auto item = server->compute().Invoke(ce::kKernelCompress,
                                           std::move(page), {},
                                           {ce::ExecTarget::kDpuAsic});
      if (!item.ok()) {
        done(item.status());
        return;
      }
      (*item)->OnComplete([done = std::move(done)](ce::WorkItem& w) {
        done(w.result());
      });
    };
  }
  rt::StageFn SendStage() {
    return [this](Buffer data, std::function<void(Result<Buffer>)> done) {
      out->Send(data.span());
      done(std::move(data));
    };
  }

  sim::Simulator sim;
  netsub::Network net;
  std::unique_ptr<rt::Platform> server, client;
  ne::NeSocket* out = nullptr;
  fssub::FileId file = 0;
};

double RunStreamed(int pages) {
  Env env;
  rt::Pipeline p;
  p.AddStage(env.ReadStage())
      .AddStage(env.CompressStage())
      .AddStage(env.SendStage());
  for (int i = 0; i < pages; ++i) {
    Buffer idx;
    idx.AppendU64(uint64_t(i % 32));
    p.Push(std::move(idx));
  }
  env.sim.Run();
  return double(env.sim.now()) / 1e6;
}

double RunBarrier(int pages) {
  Env env;
  rt::BatchPipeline p;
  p.AddStage(env.ReadStage())
      .AddStage(env.CompressStage())
      .AddStage(env.SendStage());
  std::vector<Buffer> items;
  for (int i = 0; i < pages; ++i) {
    Buffer idx;
    idx.AppendU64(uint64_t(i % 32));
    items.push_back(std::move(idx));
  }
  p.Run(std::move(items), [](std::vector<Result<Buffer>>) {});
  env.sim.Run();
  return double(env.sim.now()) / 1e6;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Ablation: streamed vs barrier pipelines (Section 4) "
              "===\n");
  std::printf("read -> compress(ASIC) -> send over 128 KB pages; "
              "completion time (ms)\n\n");
  std::printf("%8s %12s %12s %9s\n", "pages", "streamed_ms", "barrier_ms",
              "speedup");
  for (int pages : {8, 16, 32, 64}) {
    double streamed = RunStreamed(pages);
    double barrier = RunBarrier(pages);
    std::printf("%8d %12.2f %12.2f %8.2fx\n", pages, streamed, barrier,
                barrier / streamed);
    rt::EmitJsonMetric("abl_pipeline",
                       "streaming_speedup_" + std::to_string(pages) +
                           "pages",
                       barrier / streamed, "x");
  }
  std::printf("\nshape: streaming overlaps SSD, ASIC, and NIC work; the "
              "barrier pays the sum of stage makespans.\n");
  rt::EmitWallClockMetrics("abl_pipeline", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
