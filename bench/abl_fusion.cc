// Ablation: DP kernel fusion on PCIe accelerators (paper Section 5,
// last open challenge: "Since such accelerators have higher resource
// capacities ... it makes sense to fuse multiple DP kernels inside the
// accelerator to minimize execution latency. In addition, we need to
// develop efficient data movement plans").
//
// Chain: compress -> encrypt over 1 MB pages. Three plans:
//   dpu_asics   — each kernel on its dedicated DPU ASIC (no fusion
//                 possible across fixed-function engines)
//   gpu_split   — both kernels on the GPU, but as separate launches
//                 (two PCIe round trips, two kernel launches)
//   gpu_fused   — one fused launch (one round trip, one launch)

#include <cstdio>

#include "common/logging.h"
#include "core/compute/compute_engine.h"
#include "core/runtime/metrics.h"
#include "hw/machine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

hw::ServerSpec GpuServerSpec() {
  hw::ServerSpec spec = hw::DefaultServerSpec();
  spec.pcie_accelerator = hw::PcieAcceleratorSpec{};
  return spec;
}

double RunDpuAsics(size_t bytes, int jobs) {
  sim::Simulator sim;
  hw::Server server(&sim, GpuServerSpec());
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin());
  Buffer text = kern::GenerateText(bytes, {1});
  for (int i = 0; i < jobs; ++i) {
    auto first = engine.Invoke(ce::kKernelCompress, text, {},
                               {ce::ExecTarget::kDpuAsic});
    if (!first.ok()) continue;
    (*first)->OnComplete([&engine](ce::WorkItem& w) {
      if (!w.result().ok()) return;
      auto second = engine.Invoke(ce::kKernelEncrypt, w.result().value(),
                                  {{"key", "k"}}, {ce::ExecTarget::kDpuAsic});
      DPDPU_CHECK(second.ok());  // a dropped stage would skew the figure
    });
  }
  sim.Run();
  return double(sim.now()) / 1e6;
}

double RunGpu(size_t bytes, int jobs, bool fused) {
  sim::Simulator sim;
  hw::Server server(&sim, GpuServerSpec());
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin());
  Buffer text = kern::GenerateText(bytes, {1});
  for (int i = 0; i < jobs; ++i) {
    if (fused) {
      auto item = engine.InvokeFused(
          {{ce::kKernelCompress, {}}, {ce::kKernelEncrypt, {{"key", "k"}}}},
          text, {ce::ExecTarget::kPcieAccel});
      DPDPU_CHECK(item.ok());
    } else {
      auto first = engine.Invoke(ce::kKernelCompress, text, {},
                                 {ce::ExecTarget::kPcieAccel});
      if (!first.ok()) continue;
      (*first)->OnComplete([&engine](ce::WorkItem& w) {
        if (!w.result().ok()) return;
        auto second =
            engine.Invoke(ce::kKernelEncrypt, w.result().value(),
                          {{"key", "k"}}, {ce::ExecTarget::kPcieAccel});
        DPDPU_CHECK(second.ok());
      });
    }
  }
  sim.Run();
  return double(sim.now()) / 1e6;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Ablation: DP kernel fusion on a PCIe accelerator "
              "(Section 5) ===\n");
  std::printf("compress+encrypt chain over 1 MB inputs; makespan (ms)\n\n");
  std::printf("%6s %12s %12s %12s %14s\n", "jobs", "dpu_asics",
              "gpu_split", "gpu_fused", "fusion_gain");

  constexpr size_t kBytes = 1 << 20;
  for (int jobs : {1, 8, 32}) {
    double asics = RunDpuAsics(kBytes, jobs);
    double split = RunGpu(kBytes, jobs, /*fused=*/false);
    double fused = RunGpu(kBytes, jobs, /*fused=*/true);
    std::printf("%6d %12.2f %12.2f %12.2f %13.2fx\n", jobs, asics, split,
                fused, split / fused);
    rt::EmitJsonMetric("abl_fusion",
                       "fusion_gain_" + std::to_string(jobs) + "jobs",
                       split / fused, "x");
  }
  std::printf("\nshape: fusing the chain removes one PCIe round trip and "
              "one kernel launch per job; the gain is largest for short "
              "chains where data movement dominates.\n");
  rt::EmitWallClockMetrics("abl_fusion", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
