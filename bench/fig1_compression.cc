// Figure 1 reproduction: "Compression performance on different hardware".
//
// The paper compresses natural-language datasets of various sizes with
// DEFLATE on an AMD EPYC CPU, an Arm CPU (the BF-2's cores), and the
// BF-2 compression accelerator. Expected shape: both CPUs suffer high and
// growing latency; EPYC beats Arm; the ASIC wins by an order of
// magnitude.
//
// We run the *same* DP kernel with specified execution on the three
// targets and report virtual-time latency per dataset size.

#include <cstdio>

#include "core/compute/compute_engine.h"
#include "core/runtime/metrics.h"
#include "hw/machine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

sim::SimTime CompressOnce(ce::ExecTarget target, size_t bytes) {
  sim::Simulator sim;
  hw::Server server(&sim, hw::DefaultServerSpec());
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin());
  Buffer text = kern::GenerateText(bytes, {uint64_t(bytes), 8192, 0.95});
  auto item = engine.Invoke(ce::kKernelCompress, std::move(text), {},
                            {target});
  if (!item.ok()) return 0;
  sim.Run();
  return (*item)->latency();
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Figure 1: compression performance on different "
              "hardware ===\n");
  std::printf("DEFLATE over Zipfian text; latency per dataset "
              "(virtual time)\n\n");
  std::printf("%10s %14s %14s %14s %10s\n", "size", "epyc_cpu_ms",
              "arm_cpu_ms", "bf2_asic_ms", "asic_gain");

  double min_gain = 1e30, max_gain = 0;
  for (size_t mb : {1, 2, 4, 8, 16, 32}) {
    size_t bytes = mb << 20;
    sim::SimTime epyc = CompressOnce(ce::ExecTarget::kHostCpu, bytes);
    sim::SimTime arm = CompressOnce(ce::ExecTarget::kDpuCpu, bytes);
    sim::SimTime asic = CompressOnce(ce::ExecTarget::kDpuAsic, bytes);
    double gain = double(epyc) / double(asic);
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);
    std::printf("%8zuMB %14.2f %14.2f %14.2f %9.1fx\n", mb,
                double(epyc) / 1e6, double(arm) / 1e6, double(asic) / 1e6,
                gain);
    rt::EmitJsonMetric("fig1_compression",
                       "asic_gain_" + std::to_string(mb) + "mb", gain, "x");
  }
  rt::EmitJsonMetric("fig1_compression", "asic_gain_min", min_gain, "x");
  rt::EmitJsonMetric("fig1_compression", "asic_gain_max", max_gain, "x");
  std::printf("\nshape check: EPYC < Arm per size; ASIC beats EPYC by "
              "%.0f-%.0fx (paper: \"an order of magnitude\")\n",
              min_gain, max_gain);
  rt::EmitWallClockMetrics("fig1_compression", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
