// Ablation: fast persistence (paper Section 9, "Faster persistence"):
// "DPDPU can persist a write request to ... DPU's onboard fast storage
// before forwarding the operation to the host. Once persisted, the DPU
// can immediately acknowledge the request."
//
// We issue remote writes and compare acknowledgment latency for
// write-through (durable on the SSD before ack) vs DPU-log-ack (durable
// on the DPU's fast log device, SSD write drains in the background).

#include <cstdio>

#include "common/histogram.h"
#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

Histogram Run(se::PersistMode mode, size_t write_bytes, int writes) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  so.storage.persist_mode = mode;
  so.fs_device_blocks = 32 * 1024;
  co.node = 2;
  co.fs_device_blocks = 1024;
  rt::Platform server(&sim, &net, so);
  rt::Platform client(&sim, &net, co);
  server.storage().Serve();

  auto file = server.fs().Create("wal");
  DPDPU_CHECK(file.ok());

  se::RemoteStorageClient rsc(&client.network(), 1, 9000);
  Buffer payload = kern::GenerateRandomBytes(write_bytes, 3);
  Histogram ack_latency;
  int next_write = 0;
  // Offsets key off the issue counter, not the completion counter: with
  // 4 writes in flight, `done` would hand the same offset to every
  // initial write and make later offsets depend on completion order.
  std::function<void()> issue = [&] {
    if (next_write >= writes) return;
    sim::SimTime start = sim.now();
    rsc.Write(*file, uint64_t(next_write++) * write_bytes, payload,
              [&, start](Status s) {
                if (s.ok()) ack_latency.Add(sim.now() - start);
                issue();
              });
  };
  for (int i = 0; i < 4; ++i) issue();
  sim.Run();
  return ack_latency;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Ablation: fast persistence (Section 9) ===\n");
  std::printf("remote write ack latency: SSD write-through vs DPU "
              "log-device ack\n\n");
  std::printf("%10s | %12s %12s | %12s %12s | %8s\n", "", "write-through",
              "", "dpu-log-ack", "", "");
  std::printf("%10s | %12s %12s | %12s %12s | %8s\n", "size", "mean_us",
              "p99_us", "mean_us", "p99_us", "speedup");

  constexpr int kWrites = 400;
  for (size_t bytes : {512, 4096, 16384, 65536}) {
    Histogram through = Run(se::PersistMode::kWriteThrough, bytes, kWrites);
    Histogram logack = Run(se::PersistMode::kDpuLogAck, bytes, kWrites);
    std::printf("%9zuB | %12.1f %12.1f | %12.1f %12.1f | %7.2fx\n", bytes,
                through.Mean() / 1000, double(through.P99()) / 1000,
                logack.Mean() / 1000, double(logack.P99()) / 1000,
                through.Mean() / logack.Mean());
    std::string size = std::to_string(bytes) + "b";
    rt::EmitJsonMetric("abl_persistence", "log_ack_speedup_" + size,
                       through.Mean() / logack.Mean(), "x");
    rt::EmitJsonMetric("abl_persistence", "log_ack_mean_" + size,
                       logack.Mean() / 1000, "us");
  }
  std::printf("\nshape: acking on DPU-log durability cuts end-to-end "
              "latency for the small writes that dominate persistence-"
              "critical paths (log appends); the win shrinks — and "
              "crosses over — for large writes, where the slower log "
              "device's streaming time exceeds the SSD's, one of the "
              "trade-offs the Section 9 design must navigate.\n");
  rt::EmitWallClockMetrics("abl_persistence", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
