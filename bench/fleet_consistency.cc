// Replica-consistency bench: quantifies the stale-read bug the
// consistency layer fixes and the cost/latency of the fix.
//
//   * Stale reads: an open-loop mixed workload fails one storage server
//     mid-window and recovers it; a quiesced read-back over the whole
//     keyspace then counts reads whose stamped payload is older than the
//     version committed before the read started. Without the layer the
//     recovered replica rejoins the read set holding pre-failure blocks
//     (stale reads > 0); with it, catch-up runs first (stale reads = 0).
//   * Catch-up cost: bytes moved by hint replay + version-map diff,
//     versus naively re-copying the whole shard.
//   * Failover latency: a hard (dark-node) failure with application
//     timeouts off — recovery rides the connection-abort close callback,
//     bounding failover by TcpConfig::max_retransmit_time — versus the
//     timeout-only path, which waits out the workload retry_timeout.
//
// All series are products of the deterministic simulator: bit-identical
// in the seed, gated by check_bench against bench/BASELINE.json.

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/workload.h"
#include "core/runtime/metrics.h"
#include "sim/simrace.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

constexpr uint64_t kSeed = 23;
constexpr uint32_t kKeyspace = 128;  // x 8 KB = the 1 MB shard
constexpr uint64_t kShardBytes = 1ull << 20;

struct ConsistencyPoint {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t stale_reads = 0;
  uint64_t resteers = 0;
  uint64_t catchup_bytes = 0;  // hint replay + version-map diff copies
  uint64_t hints_replayed = 0;
  uint64_t diff_blocks = 0;
  sim::SimTime end_time = 0;
  uint64_t races = 0;
  std::vector<std::string> objects;  // observed by the checker
};

// Open-loop mixed workload; storage server 0 fails gracefully at 1 ms
// and recovers at 2 ms inside a 4 ms arrival window, then client 0
// reads back the whole keyspace after the fleet quiesces.
ConsistencyPoint RunConsistency(bool enabled, uint64_t seed) {
  sim::Simulator sim;
  // Non-fatal simrace pass: observation-only, so every simulated series
  // below stays bit-identical to BASELINE.json with checking on.
  sim::RaceChecker& race = sim.EnableRaceCheck();
  cluster::FleetSpec spec;
  spec.storage_servers = 3;
  spec.clients = 4;
  spec.routing.replication = 2;
  spec.shard_bytes = kShardBytes;
  spec.storage_template.fs_device_blocks = 2048;  // 8 MB device
  spec.client_template.fs_device_blocks = 1024;
  spec.consistency.enabled = enabled;
  cluster::Fleet fleet(&sim, spec);

  cluster::WorkloadOptions wopts;
  wopts.read_fraction = 0.5;
  wopts.keyspace = kKeyspace;
  wopts.seed = seed;
  std::vector<std::unique_ptr<cluster::FleetClient>> owned;
  std::vector<cluster::FleetClient*> clients;
  for (uint32_t i = 0; i < spec.clients; ++i) {
    owned.push_back(
        std::make_unique<cluster::FleetClient>(&fleet, i, wopts));
    clients.push_back(owned.back().get());
  }
  cluster::OpenLoopDriver driver(clients, 200e3 * spec.storage_servers,
                                 seed + 1);

  sim.ScheduleAt(1 * sim::kMillisecond, [&fleet] {
    fleet.FailStorageNode(0, cluster::FailMode::kGraceful);
  });
  sim.ScheduleAt(2 * sim::kMillisecond,
                 [&fleet] { fleet.RecoverStorageNode(0); });
  driver.Run(4 * sim::kMillisecond);
  sim.Run();

  // Quiesced read-back: staleness is visible even for keys the window's
  // tail never touched.
  for (uint64_t key = 0; key < wopts.keyspace; ++key) {
    clients[0]->IssueRead(key);
  }
  sim.Run();

  cluster::FleetWorkloadSummary summary = cluster::Summarize(clients);
  const cluster::ConsistencyManager::Stats& cstats =
      fleet.consistency().stats();
  ConsistencyPoint point;
  point.issued = summary.totals.issued;
  point.completed = summary.totals.completed;
  point.failed = summary.totals.failed;
  point.stale_reads = summary.totals.stale_reads;
  point.resteers = summary.totals.resteered;
  point.catchup_bytes = cstats.hint_bytes + cstats.diff_bytes;
  point.hints_replayed = cstats.hints_replayed;
  point.diff_blocks = cstats.diff_blocks_copied;
  point.end_time = sim.now();
  sim.FinishRaceCheck();
  point.races = race.race_count();
  point.objects = race.observed_objects();
  return point;
}

struct FailoverPoint {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t resteered = 0;
  uint64_t max_latency_ns = 0;
  uint64_t races = 0;
  std::vector<std::string> objects;  // observed by the checker
};

// A warmed client strands a burst of reads against a storage node that
// goes dark before any of the new request segments are acked. With
// close_callback, application timeouts are off and recovery rides the
// TCP abort (max_retransmit_time = 2 ms); otherwise aborts are far away
// (default cap) and the 5 ms workload retry_timeout does the re-steer.
FailoverPoint RunFailover(bool close_callback, uint64_t seed) {
  sim::Simulator sim;
  sim::RaceChecker& race = sim.EnableRaceCheck();
  cluster::FleetSpec spec;
  spec.storage_servers = 2;
  spec.clients = 1;
  spec.routing.replication = 2;
  spec.shard_bytes = kShardBytes;
  spec.storage_template.fs_device_blocks = 2048;
  spec.client_template.fs_device_blocks = 1024;
  if (close_callback) {
    spec.client_template.network.tcp_config.max_retransmit_time =
        2 * sim::kMillisecond;
  }
  cluster::Fleet fleet(&sim, spec);

  cluster::WorkloadOptions wopts;
  wopts.keyspace = kKeyspace;
  wopts.seed = seed;
  wopts.retry_timeout = close_callback ? 0 : 5 * sim::kMillisecond;
  cluster::FleetClient client(&fleet, 0, wopts);

  for (int i = 0; i < 8; ++i) client.IssueOne();
  sim.Run();
  for (int i = 0; i < 40; ++i) client.IssueOne();
  fleet.FailStorageNode(0, cluster::FailMode::kHard);
  sim.RunFor(100 * sim::kMillisecond);

  FailoverPoint point;
  point.issued = client.stats().issued;
  point.completed = client.stats().completed;
  point.failed = client.stats().failed;
  point.resteered = client.stats().resteered;
  point.max_latency_ns = client.latency_ns().max();
  sim.FinishRaceCheck();
  point.races = race.race_count();
  point.objects = race.observed_objects();
  return point;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Replica consistency: stale reads, catch-up cost, "
              "failover latency ===\n\n");

  ConsistencyPoint off = RunConsistency(false, kSeed);
  ConsistencyPoint on = RunConsistency(true, kSeed);
  std::printf("layer off : issued %llu completed %llu failed %llu, "
              "stale reads %llu\n",
              (unsigned long long)off.issued,
              (unsigned long long)off.completed,
              (unsigned long long)off.failed,
              (unsigned long long)off.stale_reads);
  std::printf("layer on  : issued %llu completed %llu failed %llu, "
              "stale reads %llu (resteers %llu)\n",
              (unsigned long long)on.issued,
              (unsigned long long)on.completed,
              (unsigned long long)on.failed,
              (unsigned long long)on.stale_reads,
              (unsigned long long)on.resteers);
  double catchup_ratio = double(on.catchup_bytes) / double(kShardBytes);
  std::printf("catch-up  : %llu bytes (%llu hints, %llu diff blocks) = "
              "%.3f of a full %llu-byte shard re-copy\n",
              (unsigned long long)on.catchup_bytes,
              (unsigned long long)on.hints_replayed,
              (unsigned long long)on.diff_blocks, catchup_ratio,
              (unsigned long long)kShardBytes);

  FailoverPoint via_close = RunFailover(true, kSeed);
  FailoverPoint via_timeout = RunFailover(false, kSeed);
  std::printf("failover  : close-callback max %.2f ms (resteers %llu), "
              "timeout-only max %.2f ms (resteers %llu)\n",
              double(via_close.max_latency_ns) / 1e6,
              (unsigned long long)via_close.resteered,
              double(via_timeout.max_latency_ns) / 1e6,
              (unsigned long long)via_timeout.resteered);

  ConsistencyPoint replay = RunConsistency(true, kSeed);
  bool deterministic = replay.end_time == on.end_time &&
                       replay.completed == on.completed &&
                       replay.stale_reads == on.stale_reads &&
                       replay.catchup_bytes == on.catchup_bytes;
  std::printf("determinism: %s (replay completed %llu, end %.3f ms)\n",
              deterministic ? "identical" : "DIVERGED",
              (unsigned long long)replay.completed,
              double(replay.end_time) / 1e6);

  std::printf("\nshape check: stale reads only without the layer; "
              "catch-up moves a fraction of the shard; close-callback "
              "failover beats the timeout path.\n\n");

  rt::EmitJsonMetric("fleet_consistency", "stale_reads_disabled",
                     double(off.stale_reads), "requests", kSeed);
  rt::EmitJsonMetric("fleet_consistency", "stale_reads_enabled",
                     double(on.stale_reads), "requests", kSeed);
  rt::EmitJsonMetric("fleet_consistency", "catchup_bytes",
                     double(on.catchup_bytes), "bytes", kSeed);
  rt::EmitJsonMetric("fleet_consistency", "catchup_vs_full_shard_ratio",
                     catchup_ratio, "ratio", kSeed);
  rt::EmitJsonMetric("fleet_consistency", "close_cb_failover_max",
                     double(via_close.max_latency_ns), "ns", kSeed);
  rt::EmitJsonMetric("fleet_consistency", "timeout_failover_max",
                     double(via_timeout.max_latency_ns), "ns", kSeed);
  rt::EmitJsonMetric("fleet_consistency", "deterministic",
                     deterministic ? 1 : 0, "bool", kSeed);

  // Every simulator above ran under the happens-before checker; the
  // bench is only healthy if the whole suite is race-clean.
  uint64_t races = off.races + on.races + replay.races + via_close.races +
                   via_timeout.races;
  rt::EmitJsonMetric("fleet_consistency", "race_check_enabled", 1, "bool",
                     kSeed);
  rt::EmitJsonMetric("fleet_consistency", "race_check_races",
                     double(races), "races", kSeed);
  // Distinct instrumented objects the checker actually observed across
  // every run above (see fleet_cpu_savings.cc for rationale).
  std::set<std::string> objects;
  objects.insert(off.objects.begin(), off.objects.end());
  objects.insert(on.objects.begin(), on.objects.end());
  objects.insert(replay.objects.begin(), replay.objects.end());
  objects.insert(via_close.objects.begin(), via_close.objects.end());
  objects.insert(via_timeout.objects.begin(), via_timeout.objects.end());
  rt::EmitJsonMetric("fleet_consistency", "race_check_objects",
                     double(objects.size()), "objects", kSeed);

  bool ok = off.stale_reads >= 1 && on.stale_reads == 0 &&
            on.catchup_bytes > 0 && catchup_ratio < 1.0 &&
            via_close.completed == via_close.issued &&
            via_timeout.completed == via_timeout.issued &&
            via_close.max_latency_ns <
                via_timeout.max_latency_ns &&
            deterministic && races == 0;
  rt::EmitWallClockMetrics("fleet_consistency", wall_timer,
                           sim::Simulator::TotalEventsExecuted(), kSeed);
  return ok ? 0 : 1;
}
