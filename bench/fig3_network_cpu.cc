// Figure 3 reproduction: "CPU consumption of network communication".
//
// The paper measures the CPU cost of TCP transfers of 8 KB pages over a
// 100 Gbps network: significant host CPU, growing with bandwidth, that
// competes with compute tasks. We sweep offered throughput with 8 KB
// messages, sender-side kernel TCP (host cores) vs the Network Engine's
// DPU-offloaded stack (host cost collapses; the DPU pays a smaller,
// optimized cost).

#include <cstdio>

#include "core/network/network_engine.h"
#include "core/runtime/metrics.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

struct Point {
  double host_cores;
  double dpu_cores;
  double achieved_gbps;
};

Point RunAtGbps(ne::TcpMode mode, double gbps) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  ne::NetworkEngineOptions options;
  options.tcp_mode = mode;
  auto a_server = std::make_unique<hw::Server>(&sim,
                                               hw::DefaultServerSpec("a"));
  auto b_server = std::make_unique<hw::Server>(&sim,
                                               hw::DefaultServerSpec("b"));
  ne::NetworkEngine a(a_server.get(), &net, 1, options);
  ne::NetworkEngine b(b_server.get(), &net, 2, options);
  net.Attach(1, &a_server->nic_tx(),
             [&](netsub::Packet p) { a.OnPacket(std::move(p)); });
  net.Attach(2, &b_server->nic_tx(),
             [&](netsub::Packet p) { b.OnPacket(std::move(p)); });

  uint64_t received = 0;
  b.Listen(80, [&](ne::NeSocket* s) {
    s->SetReceiveCallback([&](ByteSpan d) { received += d.size(); });
  });

  // Spread the load across 8 connections (BDP and cwnd headroom).
  constexpr int kConns = 8;
  std::vector<ne::NeSocket*> sockets;
  for (int i = 0; i < kConns; ++i) sockets.push_back(a.Connect(2, 80));

  constexpr sim::SimTime kWindow = 10 * sim::kMillisecond;
  constexpr size_t kMsg = 8192;
  double msgs_per_sec = gbps * 1e9 / 8.0 / double(kMsg);
  uint64_t total = uint64_t(msgs_per_sec * sim::ToSeconds(kWindow));
  Buffer payload = kern::GenerateRandomBytes(kMsg, 1);

  rt::UtilizationProbe probe(a_server.get());
  probe.Start();
  for (uint64_t i = 0; i < total; ++i) {
    sim::SimTime at = sim::SimTime(double(i) / msgs_per_sec * 1e9);
    ne::NeSocket* socket = sockets[i % kConns];
    sim.ScheduleAt(at, [socket, &payload] { socket->Send(payload.span()); });
  }
  sim.Run();
  probe.Stop();
  double achieved =
      double(received) * 8.0 / sim::ToSeconds(probe.window_ns()) / 1e9;
  return Point{probe.host_cores(), probe.dpu_cores(), achieved};
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Figure 3: CPU consumption of network communication "
              "===\n");
  std::printf("8 KB messages over 100 Gbps; sender CPU cores vs offered "
              "throughput\n\n");
  std::printf("%8s | %12s | %22s\n", "", "kernel TCP", "DPDPU NE offload");
  std::printf("%8s | %12s | %10s %11s\n", "Gbps", "host_cores",
              "host_cores", "dpu_cores");

  for (double gbps : {10.0, 25.0, 50.0, 75.0, 95.0}) {
    Point kernel = RunAtGbps(ne::TcpMode::kHostKernel, gbps);
    Point offload = RunAtGbps(ne::TcpMode::kDpuOffload, gbps);
    std::printf("%8.0f | %12.2f | %10.3f %11.2f\n", gbps,
                kernel.host_cores, offload.host_cores, offload.dpu_cores);
    std::string rate = std::to_string(int(gbps)) + "gbps";
    rt::EmitJsonMetric("fig3_network_cpu", "kernel_host_cores_" + rate,
                       kernel.host_cores, "cores");
    rt::EmitJsonMetric("fig3_network_cpu", "offload_host_cores_" + rate,
                       offload.host_cores, "cores");
    rt::EmitJsonMetric("fig3_network_cpu", "offload_dpu_cores_" + rate,
                       offload.dpu_cores, "cores");
  }
  std::printf("\nshape check: host CPU grows with bandwidth and reaches "
              "multiple cores near line rate; the NE moves that cost to "
              "the DPU's efficient cores.\n");
  rt::EmitWallClockMetrics("fig3_network_cpu", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
