// Section 9 claim reproduction: "Empirical studies show that DDS can
// save up to 10s of CPU cores per storage server."
//
// A storage server serves remote 8 KB reads. We sweep the request rate
// and the offloadable fraction of requests; host cores saved =
// host_cores(no offload) - host_cores(with offload). Without DDS every
// request pays the host network stack + storage stack; the cores saved
// grow linearly with rate into the tens.

#include <cstdio>

#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

struct Point {
  double host_cores;
  double dpu_cores;
  uint64_t completed;
};

// Serves `rate` reads/s for a short window with `offload_fraction` of
// requests offloadable (the rest carry the requires-host flag).
Point Run(double rate, double offload_fraction) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  so.storage.dpu_cache_bytes = 2ull << 30;
  so.fs_device_blocks = 32 * 1024;
  // When nothing is offloaded the server's host runs the traditional
  // kernel-TCP stack; with DDS the NE runs on the DPU.
  so.network.tcp_mode = offload_fraction > 0 ? ne::TcpMode::kDpuOffload
                                             : ne::TcpMode::kHostKernel;
  co.node = 2;
  co.fs_device_blocks = 1024;
  rt::Platform server(&sim, &net, so);
  rt::Platform client(&sim, &net, co);
  server.storage().Serve();

  auto file = server.fs().Create("data");
  DPDPU_CHECK(file.ok());
  Buffer chunk = kern::GenerateRandomBytes(1 << 20, 1);
  for (int i = 0; i < 32; ++i) {
    DPDPU_CHECK(
        server.fs().Write(*file, uint64_t(i) << 20, chunk.span()).ok());
  }

  // Several client connections to avoid single-flow limits.
  constexpr int kClients = 8;
  std::vector<std::unique_ptr<se::RemoteStorageClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<se::RemoteStorageClient>(
        &client.network(), 1, 9000));
  }

  constexpr sim::SimTime kWindow = 5 * sim::kMillisecond;
  uint64_t total = uint64_t(rate * sim::ToSeconds(kWindow));
  Pcg32 rng(11);
  uint64_t completed = 0;
  rt::UtilizationProbe probe(&server.server());
  probe.Start();
  for (uint64_t i = 0; i < total; ++i) {
    sim::SimTime at = sim::SimTime(double(i) / rate * 1e9);
    se::RemoteStorageClient* rsc = clients[i % kClients].get();
    // Both draws happen here, in schedule order — a handler drawing
    // from the shared rng would key the draw sequence to tie-break
    // order (the schedule dependence --perturb used to waive).
    bool offloadable = rng.NextDouble() < offload_fraction;
    uint64_t offset = uint64_t(rng.NextBounded(4000)) * 8192;
    sim.ScheduleAt(at, [rsc, &completed, offloadable, offset, &file] {
      rsc->Read(*file, offset, 8192,
                [&completed](Result<Buffer> d) {
                  if (d.ok()) ++completed;
                },
                offloadable ? 0 : se::kRequestFlagRequiresHost);
    });
  }
  sim.Run();
  probe.Stop();
  return Point{probe.host_cores(), probe.dpu_cores(), completed};
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== DDS CPU savings (Section 9: \"save up to 10s of CPU "
              "cores per storage server\") ===\n");
  std::printf("remote 8 KB reads; storage-server host cores vs request "
              "rate and offload fraction\n\n");
  std::printf("%10s | %10s | %9s %9s %9s | %11s\n", "reads/s",
              "no offload", "f=0.5", "f=0.9", "f=1.0", "cores saved");

  for (double rate : {200e3, 500e3, 1000e3}) {
    Point base = Run(rate, 0.0);
    Point half = Run(rate, 0.5);
    Point most = Run(rate, 0.9);
    Point full = Run(rate, 1.0);
    std::printf("%9.0fK | %10.2f | %9.2f %9.2f %9.2f | %11.2f\n",
                rate / 1000, base.host_cores, half.host_cores,
                most.host_cores, full.host_cores,
                base.host_cores - full.host_cores);
    std::string level = std::to_string(int(rate / 1000)) + "k";
    rt::EmitJsonMetric("dds_cpu_savings", "baseline_host_cores_" + level,
                       base.host_cores, "cores");
    rt::EmitJsonMetric("dds_cpu_savings", "full_offload_host_cores_" + level,
                       full.host_cores, "cores");
    rt::EmitJsonMetric("dds_cpu_savings", "host_cores_saved_" + level,
                       base.host_cores - full.host_cores, "cores");
  }
  std::printf("\nshape check: cores saved grow linearly with rate; "
              "full offload at 1M reads/s saves >10 host cores "
              "(network + storage stacks), matching \"10s of cores\" at "
              "production rates.\n");
  rt::EmitWallClockMetrics("dds_cpu_savings", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
