// Fleet-scale DDS CPU savings (paper Section 9 at deployment shape):
// the single-server claim — "DDS can save up to 10s of CPU cores per
// storage server" — is fleet economics: savings multiply across the
// storage tier. An 8-server / 32-client fleet serves Poisson-arrival
// 8 KB remote reads through the consistent-hash shard router; aggregate
// host-cores-saved must land within 15% of N x the single-server figure,
// be bit-deterministic in the seed, and survive a mid-window storage-
// node failure with re-steered traffic and no lost requests.

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/workload.h"
#include "core/runtime/metrics.h"
#include "sim/simrace.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

constexpr double kRatePerServer = 200e3;  // 8 KB reads/s per storage server
constexpr sim::SimTime kWindow = 5 * sim::kMillisecond;
constexpr uint64_t kSeed = 17;

struct FleetPoint {
  double storage_host_cores = 0;
  double storage_dpu_cores = 0;
  uint64_t fabric_bytes = 0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  sim::SimTime end_time = 0;
  uint64_t routed_to_failed_after_failure = 0;
  uint64_t races = 0;
  std::vector<std::string> objects;  // observed by the checker
};

// Runs an open-loop read fleet; fail_index >= 0 gracefully fails that
// storage server halfway through the arrival window.
FleetPoint RunFleet(uint32_t n_storage, uint32_t n_clients,
                    double offload_fraction, uint64_t seed,
                    int fail_index = -1) {
  sim::Simulator sim;
  // Non-fatal simrace pass: observation-only, so every simulated series
  // below stays bit-identical to BASELINE.json with checking on.
  sim::RaceChecker& race = sim.EnableRaceCheck();
  cluster::FleetSpec spec;
  spec.storage_servers = n_storage;
  spec.clients = n_clients;
  spec.routing.replication = n_storage > 1 ? 2 : 1;
  spec.storage_template.storage.dpu_cache_bytes = 2ull << 30;
  spec.storage_template.fs_device_blocks = 16 * 1024;  // 64 MB device
  // Baseline (no offload) runs the traditional kernel stack on the
  // storage hosts; with DDS the NE/SE run on the DPUs.
  spec.storage_template.network.tcp_mode = offload_fraction > 0
                                               ? ne::TcpMode::kDpuOffload
                                               : ne::TcpMode::kHostKernel;
  spec.client_template.fs_device_blocks = 1024;  // clients store nothing
  cluster::Fleet fleet(&sim, spec);

  cluster::WorkloadOptions wopts;
  wopts.read_fraction = 1.0;
  wopts.offload_fraction = offload_fraction;
  wopts.seed = seed;
  std::vector<std::unique_ptr<cluster::FleetClient>> owned;
  std::vector<cluster::FleetClient*> clients;
  for (uint32_t i = 0; i < n_clients; ++i) {
    owned.push_back(
        std::make_unique<cluster::FleetClient>(&fleet, i, wopts));
    clients.push_back(owned.back().get());
  }
  cluster::OpenLoopDriver driver(clients, kRatePerServer * n_storage,
                                 seed + 1);

  uint64_t routed_to_failed_at_failure = 0;
  if (fail_index >= 0) {
    sim.ScheduleAt(kWindow / 2, [&fleet, fail_index,
                                 &routed_to_failed_at_failure] {
      netsub::NodeId node = fleet.storage_node_id(uint32_t(fail_index));
      auto it = fleet.router().routed().find(node);
      routed_to_failed_at_failure =
          it == fleet.router().routed().end() ? 0 : it->second;
      fleet.FailStorageNode(uint32_t(fail_index),
                            cluster::FailMode::kGraceful);
    });
  }

  fleet.StartProbes();
  driver.Run(kWindow);
  sim.Run();
  fleet.StopProbes();

  cluster::FleetWorkloadSummary summary = cluster::Summarize(clients);
  cluster::FleetUsage usage = fleet.Usage();
  FleetPoint point;
  point.storage_host_cores = usage.storage_host_cores;
  point.storage_dpu_cores = usage.storage_dpu_cores;
  point.fabric_bytes = usage.fabric_bytes;
  point.issued = summary.totals.issued;
  point.completed = summary.totals.completed;
  point.failed = summary.totals.failed;
  point.p50_ns = summary.latency_ns.P50();
  point.p99_ns = summary.latency_ns.P99();
  point.end_time = sim.now();
  if (fail_index >= 0) {
    netsub::NodeId node = fleet.storage_node_id(uint32_t(fail_index));
    auto it = fleet.router().routed().find(node);
    uint64_t total = it == fleet.router().routed().end() ? 0 : it->second;
    point.routed_to_failed_after_failure =
        total - routed_to_failed_at_failure;
  }
  sim.FinishRaceCheck();
  point.races = race.race_count();
  point.objects = race.observed_objects();
  return point;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Fleet DDS CPU savings (8 storage servers, 32 clients, "
              "%.0fK reads/s per server) ===\n\n",
              kRatePerServer / 1000);

  // Single-server anchor: the dds_cpu_savings figure at this rate.
  FleetPoint single_base = RunFleet(1, 4, 0.0, kSeed);
  FleetPoint single_dds = RunFleet(1, 4, 1.0, kSeed);
  double single_saved =
      single_base.storage_host_cores - single_dds.storage_host_cores;
  std::printf("single server : host cores %.2f -> %.2f, saved %.2f "
              "(p99 %.1f us)\n",
              single_base.storage_host_cores,
              single_dds.storage_host_cores, single_saved,
              double(single_dds.p99_ns) / 1000);

  constexpr uint32_t kStorage = 8, kClients = 32;
  FleetPoint fleet_base = RunFleet(kStorage, kClients, 0.0, kSeed);
  FleetPoint fleet_dds = RunFleet(kStorage, kClients, 1.0, kSeed);
  double fleet_saved =
      fleet_base.storage_host_cores - fleet_dds.storage_host_cores;
  double expected = single_saved * kStorage;
  double ratio = expected > 0 ? fleet_saved / expected : 0;
  std::printf("fleet (N=%u)  : host cores %.2f -> %.2f, saved %.2f; "
              "N x single = %.2f, ratio %.3f %s\n",
              kStorage, fleet_base.storage_host_cores,
              fleet_dds.storage_host_cores, fleet_saved, expected, ratio,
              std::fabs(ratio - 1.0) <= 0.15 ? "[within 15%]"
                                             : "[OUTSIDE 15%]");
  std::printf("fleet requests: issued %llu completed %llu failed %llu; "
              "fabric %.1f MB; p50 %.1f us p99 %.1f us\n",
              (unsigned long long)fleet_dds.issued,
              (unsigned long long)fleet_dds.completed,
              (unsigned long long)fleet_dds.failed,
              double(fleet_dds.fabric_bytes) / 1e6,
              double(fleet_dds.p50_ns) / 1000,
              double(fleet_dds.p99_ns) / 1000);

  // Determinism: an identical seed must reproduce the run bit-for-bit.
  FleetPoint replay = RunFleet(kStorage, kClients, 1.0, kSeed);
  bool deterministic = replay.completed == fleet_dds.completed &&
                       replay.end_time == fleet_dds.end_time &&
                       replay.storage_host_cores ==
                           fleet_dds.storage_host_cores;
  std::printf("determinism   : %s (replay completed %llu, end %.3f ms)\n",
              deterministic ? "identical" : "DIVERGED",
              (unsigned long long)replay.completed,
              double(replay.end_time) / 1e6);

  // Robustness: storage server 3 goes dark (graceful drain) mid-window;
  // the router re-steers its keys to replicas and nothing is lost.
  FleetPoint failure = RunFleet(kStorage, kClients, 1.0, kSeed, 3);
  bool no_loss = failure.failed == 0 && failure.issued == failure.completed;
  std::printf("failure inject: issued %llu completed %llu failed %llu, "
              "reads to failed node after failure %llu -> %s\n",
              (unsigned long long)failure.issued,
              (unsigned long long)failure.completed,
              (unsigned long long)failure.failed,
              (unsigned long long)failure.routed_to_failed_after_failure,
              no_loss ? "no lost requests" : "REQUESTS LOST");

  std::printf("\nshape check: fleet savings = per-server savings x N — "
              "the Section 9 claim is fleet economics.\n\n");

  rt::EmitJsonMetric("fleet_cpu_savings", "single_host_cores_saved",
                     single_saved, "cores", kSeed);
  rt::EmitJsonMetric("fleet_cpu_savings", "fleet_host_cores_saved",
                     fleet_saved, "cores", kSeed);
  rt::EmitJsonMetric("fleet_cpu_savings", "fleet_vs_n_x_single_ratio",
                     ratio, "ratio", kSeed);
  rt::EmitJsonMetric("fleet_cpu_savings", "fleet_read_p99",
                     double(fleet_dds.p99_ns), "ns", kSeed);
  rt::EmitJsonMetric("fleet_cpu_savings", "fleet_fabric_bytes",
                     double(fleet_dds.fabric_bytes), "bytes", kSeed);
  rt::EmitJsonMetric("fleet_cpu_savings", "failure_lost_requests",
                     double(failure.issued - failure.completed), "requests",
                     kSeed);
  rt::EmitJsonMetric("fleet_cpu_savings", "deterministic",
                     deterministic ? 1 : 0, "bool", kSeed);

  // Every simulator above ran under the happens-before checker; the
  // bench is only healthy if the whole suite is race-clean.
  uint64_t races = single_base.races + single_dds.races +
                   fleet_base.races + fleet_dds.races + replay.races +
                   failure.races;
  rt::EmitJsonMetric("fleet_cpu_savings", "race_check_enabled", 1, "bool",
                     kSeed);
  rt::EmitJsonMetric("fleet_cpu_savings", "race_check_races",
                     double(races), "races", kSeed);
  // Distinct instrumented objects the checker actually observed across
  // every run above — the dynamic footprint of the annotation sweep.
  // simscope guarantees the static side; a drop here means a code path
  // stopped exercising its annotations.
  std::set<std::string> objects;
  for (const auto* p : {&single_base, &single_dds, &fleet_base, &fleet_dds,
                        &replay, &failure}) {
    objects.insert(p->objects.begin(), p->objects.end());
  }
  rt::EmitJsonMetric("fleet_cpu_savings", "race_check_objects",
                     double(objects.size()), "objects", kSeed);

  bool ok = std::fabs(ratio - 1.0) <= 0.15 && deterministic && no_loss &&
            races == 0;
  rt::EmitWallClockMetrics("fleet_cpu_savings", wall_timer,
                           sim::Simulator::TotalEventsExecuted(), kSeed);
  return ok ? 0 : 1;
}
