// Figure 2 reproduction: "CPU consumption of storage access".
//
// The paper measures host CPU cycles for 8 KB page reads through the
// Linux storage stack: linear in IOPS, ~2.7 cores at 450 K pages/s
// (io_uring similar). We sweep the offered IOPS and report host cores
// consumed on the traditional path, plus the same workload through the
// DPDPU Storage Engine (host cost collapses to ring submit/poll; the DPU
// absorbs a much smaller cost on efficient cores).

#include <cstdio>

#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

struct Point {
  double host_cores;
  double dpu_cores;
  uint64_t completed;
};

Point RunAtRate(se::HostIoPath path, double iops) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions options;
  options.storage.dpu_cache_bytes = 0;  // measure the device path
  options.fs_device_blocks = 32 * 1024;  // 128 MB device
  rt::Platform platform(&sim, &net, options);
  platform.storage().host_client().set_path(path);

  // Seed a 64 MB file.
  auto file = platform.fs().Create("data");
  DPDPU_CHECK(file.ok());
  Buffer chunk = kern::GenerateRandomBytes(1 << 20, 1);
  for (int i = 0; i < 64; ++i) {
    DPDPU_CHECK(platform.fs().Write(*file, uint64_t(i) << 20,
                                    chunk.span())
                    .ok());
  }

  // Open-loop arrivals of 8 KB reads for a 20 ms steady window.
  constexpr sim::SimTime kWindow = 20 * sim::kMillisecond;
  uint64_t total = uint64_t(iops * sim::ToSeconds(kWindow));
  Pcg32 rng(7);
  uint64_t completed = 0;
  rt::UtilizationProbe probe(&platform.server());
  probe.Start();
  for (uint64_t i = 0; i < total; ++i) {
    sim::SimTime at = sim::SimTime(double(i) / iops * 1e9);
    // Drawn at schedule time: a draw inside the handler would key the
    // sequence to event order (simlint R7).
    uint64_t offset = (uint64_t(rng.NextBounded(8192))) * 8192;
    sim.ScheduleAt(at, [&platform, &file, offset, &completed] {
      platform.storage().host_client().Read(
          *file, offset, 8192, [&completed](Result<Buffer> d) {
            if (d.ok()) ++completed;
          });
    });
  }
  sim.Run();
  probe.Stop();
  return Point{probe.host_cores(), probe.dpu_cores(), completed};
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Figure 2: CPU consumption of storage access ===\n");
  std::printf("8 KB page reads; host cores consumed vs IOPS\n\n");
  std::printf("%10s | %12s | %22s\n", "", "linux stack", "DPDPU SE offload");
  std::printf("%10s | %12s | %10s %11s\n", "pages/s", "host_cores",
              "host_cores", "dpu_cores");

  for (double iops : {50e3, 150e3, 250e3, 350e3, 450e3}) {
    Point linux_path = RunAtRate(se::HostIoPath::kLinuxBaseline, iops);
    Point dpdpu_path = RunAtRate(se::HostIoPath::kDpuOffload, iops);
    std::printf("%10.0fK | %12.2f | %10.3f %11.2f\n", iops / 1000,
                linux_path.host_cores, dpdpu_path.host_cores,
                dpdpu_path.dpu_cores);
    std::string rate = std::to_string(int(iops / 1000)) + "k";
    rt::EmitJsonMetric("fig2_storage_cpu", "linux_host_cores_" + rate,
                       linux_path.host_cores, "cores");
    rt::EmitJsonMetric("fig2_storage_cpu", "offload_host_cores_" + rate,
                       dpdpu_path.host_cores, "cores");
    rt::EmitJsonMetric("fig2_storage_cpu", "offload_dpu_cores_" + rate,
                       dpdpu_path.dpu_cores, "cores");
  }
  std::printf("\nshape check: linear growth; ~2.7 host cores at 450K "
              "pages/s (paper anchor); SE offload frees the host.\n");
  rt::EmitWallClockMetrics("fig2_storage_cpu", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
