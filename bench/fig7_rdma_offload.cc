// Figure 7 reproduction: "DPU-optimized RDMA".
//
// The paper replaces host-issued RDMA (queue-pair spinlocks, memory
// fences, doorbell MMIO stalls) with lock-free, DMA-polled rings whose
// protocol execution runs on the DPU. We issue batches of one-sided
// writes over both paths and report the host-side cost per operation and
// the end-to-end completion throughput.

#include <cstdio>

#include "common/logging.h"
#include "core/network/network_engine.h"
#include "core/runtime/metrics.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

struct Point {
  double host_ns_per_op;
  double dpu_ns_per_op;
  double mops;
};

Point Run(ne::RdmaPath path, size_t op_bytes, int ops) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  auto a_server = std::make_unique<hw::Server>(&sim,
                                               hw::DefaultServerSpec("a"));
  auto b_server = std::make_unique<hw::Server>(&sim,
                                               hw::DefaultServerSpec("b"));
  ne::NetworkEngine a(a_server.get(), &net, 1, {});
  ne::NetworkEngine b(b_server.get(), &net, 2, {});
  net.Attach(1, &a_server->nic_tx(),
             [&](netsub::Packet p) { a.OnPacket(std::move(p)); });
  net.Attach(2, &b_server->nic_tx(),
             [&](netsub::Packet p) { b.OnPacket(std::move(p)); });
  netsub::QueuePair* qp_a = a.rdma_nic().CreateQueuePair();
  netsub::QueuePair* qp_b = b.rdma_nic().CreateQueuePair();
  netsub::ConnectQueuePairs(qp_a, qp_b);
  netsub::MrKey local = a.rdma_nic().RegisterMemory(1 << 22);
  netsub::MrKey remote = b.rdma_nic().RegisterMemory(1 << 22);

  auto endpoint = a.CreateRdmaEndpoint(path, qp_a);
  rt::UtilizationProbe probe(a_server.get());
  probe.Start();
  for (int i = 0; i < ops; ++i) {
    size_t off = (size_t(i) * op_bytes) % ((1 << 22) - op_bytes);
    Status posted = endpoint->Write(i, local, off, remote, off, op_bytes);
    DPDPU_CHECK(posted.ok());  // a dropped post would deflate completions
  }
  sim.Run();
  int completions = 0;
  netsub::RdmaCompletion c;
  while (endpoint->PollCompletion(&c)) ++completions;
  sim.Run();  // drain poll charges
  probe.Stop();

  Point p;
  p.host_ns_per_op =
      probe.host_cores() * double(probe.window_ns()) / double(ops);
  p.dpu_ns_per_op =
      probe.dpu_cores() * double(probe.window_ns()) / double(ops);
  p.mops = double(completions) / sim::ToSeconds(probe.window_ns()) / 1e6;
  return p;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Figure 7: DPU-optimized RDMA ===\n");
  std::printf("one-sided WRITEs; host/DPU busy-time per op and "
              "completion throughput\n\n");
  std::printf("%8s | %26s | %26s\n", "", "native (host-issued)",
              "NE offloaded (Fig 7)");
  std::printf("%8s | %12s %13s | %12s %13s\n", "op size", "host_ns/op",
              "Mops", "host_ns/op", "Mops");

  constexpr int kOps = 20000;
  for (size_t bytes : {64, 256, 1024, 4096}) {
    Point native = Run(ne::RdmaPath::kNative, bytes, kOps);
    Point offload = Run(ne::RdmaPath::kDpuOffloaded, bytes, kOps);
    std::printf("%7zuB | %12.0f %13.2f | %12.0f %13.2f\n", bytes,
                native.host_ns_per_op, native.mops,
                offload.host_ns_per_op, offload.mops);
    std::string size = std::to_string(bytes) + "b";
    rt::EmitJsonMetric("fig7_rdma_offload", "native_host_ns_per_op_" + size,
                       native.host_ns_per_op, "ns");
    rt::EmitJsonMetric("fig7_rdma_offload",
                       "offload_host_ns_per_op_" + size,
                       offload.host_ns_per_op, "ns");
    rt::EmitJsonMetric("fig7_rdma_offload", "offload_mops_" + size,
                       offload.mops, "Mops");
  }
  std::printf("\nshape check: the offloaded path cuts host issue cost by "
              "several times (lock-free ring write vs lock+fence+doorbell "
              "stall) while sustaining throughput; the DPU absorbs the "
              "issuing work.\n");
  rt::EmitWallClockMetrics("fig7_rdma_offload", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
