// google-benchmark microbenchmarks for the real software kernels and
// core data structures (wall-clock performance of the actual
// implementations, independent of the simulator's cost models).

#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/logging.h"
#include "kern/chacha20.h"
#include "kern/crc32.h"
#include "kern/dedup.h"
#include "kern/deflate.h"
#include "kern/huffman.h"
#include "kern/regex.h"
#include "kern/relational.h"
#include "kern/textgen.h"
#include "netsub/ring.h"
#include "sim/simulator.h"

namespace dpdpu {
namespace {

void BM_DeflateCompress(benchmark::State& state) {
  size_t size = size_t(state.range(0));
  int level = int(state.range(1));
  Buffer text = kern::GenerateText(size, {});
  for (auto _ : state) {
    auto out = kern::DeflateCompress(text.span(),
                                     kern::DeflateOptions{level});
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(size));
}
BENCHMARK(BM_DeflateCompress)
    ->Args({64 << 10, 1})
    ->Args({64 << 10, 6})
    ->Args({64 << 10, 9})
    ->Args({1 << 20, 6});

void BM_DeflateDecompress(benchmark::State& state) {
  Buffer text = kern::GenerateText(size_t(state.range(0)), {});
  auto compressed = kern::DeflateCompress(text.span());
  for (auto _ : state) {
    auto out = kern::DeflateDecompress(compressed->span());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DeflateDecompress)->Arg(64 << 10)->Arg(1 << 20);

void BM_ChaCha20(benchmark::State& state) {
  Buffer data = kern::GenerateRandomBytes(size_t(state.range(0)), 1);
  std::array<uint8_t, 32> key{};
  std::array<uint8_t, 12> nonce{};
  for (auto _ : state) {
    Buffer out = kern::ChaCha20Xor(key, nonce, 0, data.span());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64 << 10)->Arg(1 << 20);

void BM_Crc32(benchmark::State& state) {
  Buffer data = kern::GenerateRandomBytes(size_t(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern::Crc32(data.span()));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64 << 10)->Arg(1 << 20);

void BM_HuffmanDecode(benchmark::State& state) {
  // Encode a text corpus's byte stream with its own optimal length-limited
  // code, then measure pure symbol decode throughput through DecodeFast.
  Buffer text = kern::GenerateText(size_t(state.range(0)), {});
  std::vector<uint64_t> freqs(256, 0);
  for (size_t i = 0; i < text.size(); ++i) freqs[text.span()[i]]++;
  std::vector<uint8_t> lengths =
      kern::PackageMergeLengths(freqs, kern::kMaxHuffmanBits);
  std::vector<uint32_t> codes = kern::CanonicalCodes(lengths);
  Buffer encoded;
  {
    kern::BitWriter writer(&encoded);
    for (size_t i = 0; i < text.size(); ++i) {
      uint8_t s = text.span()[i];
      writer.WriteHuffmanCode(codes[s], lengths[s]);
    }
    writer.AlignToByte();
  }
  auto decoder = kern::HuffmanDecoder::Build(lengths);
  DPDPU_CHECK(decoder.ok());
  for (auto _ : state) {
    kern::BitReader reader(encoded.span());
    int symbol = 0;
    uint64_t sum = 0;
    for (size_t i = 0; i < text.size(); ++i) {
      DPDPU_CHECK(decoder->DecodeFast(reader, &symbol).ok());
      sum += uint64_t(symbol);
    }
    benchmark::DoNotOptimize(sum);
  }
  // One symbol decodes to one byte of the original corpus.
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HuffmanDecode)->Arg(64 << 10)->Arg(1 << 20);

void BM_RegexCount(benchmark::State& state) {
  Buffer text = kern::GenerateText(size_t(state.range(0)), {});
  auto re = kern::Regex::Compile("[a-z]+tion");
  for (auto _ : state) {
    benchmark::DoNotOptimize(re->CountMatches(text.view()));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RegexCount)->Arg(16 << 10)->Arg(64 << 10);

void BM_DedupChunk(benchmark::State& state) {
  Buffer data = kern::GenerateText(size_t(state.range(0)), {});
  for (auto _ : state) {
    auto chunks = kern::ChunkData(data.span());
    benchmark::DoNotOptimize(chunks);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DedupChunk)->Arg(1 << 20);

void BM_FilterPage(benchmark::State& state) {
  kern::Schema schema(
      {{"id", kern::ColumnType::kInt64}, {"v", kern::ColumnType::kDouble}});
  kern::RowPageBuilder builder(schema);
  for (int i = 0; i < int(state.range(0)); ++i) {
    Status added =
        builder.AddRow({kern::Value(int64_t(i)), kern::Value(i * 0.5)});
    DPDPU_CHECK(added.ok());
  }
  Buffer page = builder.Finish();
  auto reader = kern::RowPageReader::Open(&schema, page.span());
  auto pred = kern::Predicate::Compare(0, kern::CompareOp::kLt,
                                       kern::Value(int64_t(100)));
  for (auto _ : state) {
    auto rows = kern::FilterPage(*reader, *pred);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FilterPage)->Arg(1024)->Arg(16384);

void BM_SpscRing(benchmark::State& state) {
  netsub::SpscRing<uint64_t> ring(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPush(1));
    benchmark::DoNotOptimize(ring.TryPop(&v));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SpscRing);

void BM_MpmcRing(benchmark::State& state) {
  netsub::MpmcRing<uint64_t> ring(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPush(1));
    benchmark::DoNotOptimize(ring.TryPop(&v));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_MpmcRing);

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(uint64_t(i % 37), [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEvents);

void BM_PeriodicTaskTicks(benchmark::State& state) {
  // Steady-state periodic sampling: exercises the once-wrapped callback
  // path (per tick, one shared_ptr-sized closure in the SBO buffer).
  for (auto _ : state) {
    sim::Simulator sim;
    sim::PeriodicTask task;
    uint64_t ticks = 0;
    task.Start(&sim, 10, [&] {
      if (++ticks == 1000) task.Cancel();
    });
    sim.Run();
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_PeriodicTaskTicks);

void BM_Histogram(benchmark::State& state) {
  Histogram h;
  uint64_t v = 12345;
  for (auto _ : state) {
    h.Add(v);
    v = v * 1664525 + 1013904223;
    benchmark::DoNotOptimize(h.count());
  }
}
BENCHMARK(BM_Histogram);

}  // namespace
}  // namespace dpdpu

BENCHMARK_MAIN();
