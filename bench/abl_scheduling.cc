// Ablation: Compute Engine scheduling policies (paper Section 5 open
// challenges; iPipe-style FCFS vs DRR, plus DPDPU's model-based
// scheduled execution).
//
// Workload: two tenants share the compression ASIC — tenant 0 floods
// large jobs, tenant 1 issues sparse small jobs (the low-variance /
// high-variance mix iPipe's schedulers target). We report per-tenant p99
// latency under FCFS vs DRR admission, and total makespan for scheduled
// (model-based) vs ASIC-only placement under overload.

#include <cstdio>

#include "common/histogram.h"
#include "common/logging.h"
#include "core/compute/compute_engine.h"
#include "core/runtime/metrics.h"
#include "hw/machine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: bench brevity

namespace {

struct TenancyResult {
  double big_p99_ms;
  double small_p99_ms;
};

TenancyResult RunTenancy(ce::AdmissionQueue::Discipline discipline) {
  sim::Simulator sim;
  hw::Server server(&sim, hw::DefaultServerSpec());
  ce::ComputeEngineOptions options;
  options.asic_admission = discipline;
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin(), options);

  Buffer big = kern::GenerateText(2 << 20, {1});
  Buffer small = kern::GenerateText(32 << 10, {2});
  Histogram big_lat, small_lat;
  // Interleaved open-loop arrivals.
  for (int i = 0; i < 40; ++i) {
    sim.ScheduleAt(sim::SimTime(i) * 50 * sim::kMicrosecond, [&, i] {
      auto item = engine.Invoke(ce::kKernelCompress, big, {},
                                {ce::ExecTarget::kDpuAsic, 0});
      if (item.ok()) {
        (*item)->OnComplete(
            [&big_lat](ce::WorkItem& w) { big_lat.Add(w.latency()); });
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    // The +1us skew keeps small-tenant arrivals off the big tenant's
    // 50us grid: a shared arrival instant would make ASIC admission
    // order (and so FCFS p99) depend on event tie-breaking.
    sim.ScheduleAt(sim::SimTime(i) * 100 * sim::kMicrosecond +
                       sim::kMicrosecond,
                   [&] {
      auto item = engine.Invoke(ce::kKernelCompress, small, {},
                                {ce::ExecTarget::kDpuAsic, 1});
      if (item.ok()) {
        (*item)->OnComplete(
            [&small_lat](ce::WorkItem& w) { small_lat.Add(w.latency()); });
      }
    });
  }
  sim.Run();
  return TenancyResult{double(big_lat.P99()) / 1e6,
                       double(small_lat.P99()) / 1e6};
}

double RunPlacementMakespan(ce::PlacementPolicy policy, int jobs) {
  sim::Simulator sim;
  hw::Server server(&sim, hw::DefaultServerSpec());
  ce::ComputeEngineOptions options;
  options.policy = policy;
  ce::ComputeEngine engine(&server, ce::KernelRegistry::Builtin(), options);
  Buffer payload = kern::GenerateText(1 << 20, {3});
  for (int i = 0; i < jobs; ++i) {
    auto item = engine.Invoke(ce::kKernelCompress, payload);  // kAuto
    DPDPU_CHECK(item.ok());
  }
  sim.Run();
  return double(sim.now()) / 1e6;
}

}  // namespace

int main() {
  rt::WallTimer wall_timer;
  std::printf("=== Ablation: CE scheduling (Section 5) ===\n\n");

  std::printf("-- multi-tenant ASIC admission: FCFS vs DRR --\n");
  std::printf("%8s %14s %14s\n", "policy", "big_p99_ms", "small_p99_ms");
  TenancyResult fcfs = RunTenancy(ce::AdmissionQueue::Discipline::kFcfs);
  TenancyResult drr = RunTenancy(ce::AdmissionQueue::Discipline::kDrr);
  std::printf("%8s %14.2f %14.2f\n", "fcfs", fcfs.big_p99_ms,
              fcfs.small_p99_ms);
  std::printf("%8s %14.2f %14.2f\n", "drr", drr.big_p99_ms,
              drr.small_p99_ms);
  std::printf("shape: DRR cuts the small tenant's p99 (%.1fx better) at "
              "modest cost to the flood.\n\n",
              fcfs.small_p99_ms / drr.small_p99_ms);

  std::printf("-- scheduled execution under overload: makespan of 200x "
              "1 MB compress jobs --\n");
  std::printf("%14s %14s\n", "policy", "makespan_ms");
  double asic_only = RunPlacementMakespan(ce::PlacementPolicy::kAsicFirst,
                                          200);
  double model = RunPlacementMakespan(ce::PlacementPolicy::kModelBased,
                                      200);
  double cpu_only = RunPlacementMakespan(ce::PlacementPolicy::kDpuCpuOnly,
                                         200);
  std::printf("%14s %14.2f\n", "asic_first", asic_only);
  std::printf("%14s %14.2f\n", "model_based", model);
  std::printf("%14s %14.2f\n", "dpu_cpu_only", cpu_only);
  std::printf("shape: model-based placement spills overload to idle "
              "CPUs and beats both static policies (%.2fx vs asic-only, "
              "%.1fx vs cpu-only).\n",
              asic_only / model, cpu_only / model);
  rt::EmitJsonMetric("abl_scheduling", "drr_small_tenant_p99_gain",
                     fcfs.small_p99_ms / drr.small_p99_ms, "x");
  rt::EmitJsonMetric("abl_scheduling", "model_vs_asic_only_speedup",
                     asic_only / model, "x");
  rt::EmitJsonMetric("abl_scheduling", "model_vs_cpu_only_speedup",
                     cpu_only / model, "x");
  rt::EmitWallClockMetrics("abl_scheduling", wall_timer,
                           sim::Simulator::TotalEventsExecuted());
  return 0;
}
