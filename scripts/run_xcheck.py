#!/usr/bin/env python3
"""simscope dynamic cross-check driver.

Runs every simulator-driven test binary in the build tree with the race
checker on and DPDPU_SIM_RACE_COVERAGE pointed at a shared file, so each
RaceChecker appends the object names it actually observed; then invokes
`simscope --xcheck` to diff the statically reachable annotations against
that dynamic observation set. A statically reachable annotation that is
never observed is a dead annotation or an untested path (rule S2) — the
static analyzer cannot tell which, but either one means simrace is not
exercising what simscope claims is covered.

Exit status is simscope's: 0 when every reachable annotation was
observed, 1 otherwise. Binaries that fail under the race checker fail
the run too (a race found on the way to coverage is still a race).
"""

import argparse
import os
import subprocess
import sys
import tempfile

# Simulator-driven gtest binaries (tests/CMakeLists.txt targets). The
# simex explorer binaries are excluded: they run deliberately racy
# schedules with a quiet checker, which would pollute both coverage and
# failure accounting.
TEST_BINARIES = [
    "ce_test",
    "cluster_test",
    "common_test",
    "deflate_test",
    "extension_test",
    "fs_model_test",
    "fssub_test",
    "hw_test",
    "integration_test",
    "kern_test",
    "ne_test",
    "netsub_test",
    "rdma_flow_test",
    "ring_model_test",
    "rt_test",
    "se_test",
    "sim_test",
    "simex_scenarios_test",
    "simex_test",
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--repo-root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))),
                        help="repository root (default: this script's "
                             "parent's parent)")
    parser.add_argument("--keep-coverage", default=None, metavar="FILE",
                        help="write the merged coverage dump here instead "
                             "of a temp file")
    args = parser.parse_args()

    tests_dir = os.path.join(args.build_dir, "tests")
    missing = [t for t in TEST_BINARIES
               if not os.path.exists(os.path.join(tests_dir, t))]
    if missing:
        print(f"run_xcheck: missing test binaries under {tests_dir}: "
              f"{', '.join(missing)} (build first)", file=sys.stderr)
        return 2

    if args.keep_coverage:
        cov_path = os.path.abspath(args.keep_coverage)
        open(cov_path, "w").close()  # truncate: one run, one dump
        cleanup = False
    else:
        fd, cov_path = tempfile.mkstemp(prefix="simscope_cov_",
                                        suffix=".txt")
        os.close(fd)
        cleanup = True

    env = dict(os.environ)
    env["DPDPU_SIM_RACECHECK"] = "1"
    env["DPDPU_SIM_RACE_COVERAGE"] = cov_path

    failed = []
    try:
        for t in TEST_BINARIES:
            binary = os.path.join(tests_dir, t)
            proc = subprocess.run([binary], env=env,
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.PIPE)
            if proc.returncode != 0:
                failed.append(t)
                sys.stderr.buffer.write(proc.stderr)
        if failed:
            print(f"run_xcheck: {len(failed)} test binar"
                  f"{'y' if len(failed) == 1 else 'ies'} failed under "
                  f"the race checker: {', '.join(failed)}",
                  file=sys.stderr)
            return 1

        simscope = os.path.join(args.repo_root, "tools", "simscope",
                                "simscope.py")
        return subprocess.run(
            [sys.executable, simscope, "--xcheck",
             "--coverage", cov_path],
            cwd=args.repo_root).returncode
    finally:
        if cleanup:
            os.unlink(cov_path)


if __name__ == "__main__":
    sys.exit(main())
