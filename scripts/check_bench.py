#!/usr/bin/env python3
"""Benchmark regression gate.

Runs the repo's bench binaries and compares their emitted metrics against
the committed baseline (bench/BASELINE.json):

  * Simulated metrics (the `{"bench":...}` JSON lines with sim-domain
    units) are products of the deterministic simulator: they must match
    the baseline BIT-EXACTLY. Any drift means a behavior change, not a
    perf change, and fails the check.
  * Wall-clock metrics ("seconds", "events_per_sec" lines and
    google-benchmark bytes/items-per-second counters) are jitter-prone,
    especially on shared CI runners, so they get a generous tolerance:
    throughputs may not drop below baseline/TOL, runtimes may not exceed
    baseline*TOL (default TOL=3).

A third mode, --self-check, proves the determinism contract without
consulting the baseline at all: every sim bench binary is run twice and
the simulated metric lines of the two runs are diffed byte-for-byte.
A bench that disagrees with itself has nondeterminism the simulator is
supposed to have squeezed out (unordered iteration feeding metrics,
wall-clock leakage, uninitialized state), and no baseline can be trusted
until it is fixed.

Usage:
  python3 scripts/check_bench.py --build-dir build              # check
  python3 scripts/check_bench.py --build-dir build --update     # re-baseline
  python3 scripts/check_bench.py --build-dir build --self-check # run-twice
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "bench", "BASELINE.json")

# Units whose values are wall-clock measurements (tolerance-checked).
# Everything else comes out of the deterministic simulator (exact-checked).
WALL_RUNTIME_UNITS = {"seconds"}
WALL_THROUGHPUT_UNITS = {"events_per_sec", "bytes_per_second",
                         "items_per_second"}

# Micro-kernel benches gated in CI; a filter keeps the job fast.
MICRO_FILTER = ("BM_Crc32|BM_DeflateDecompress|BM_HuffmanDecode|"
                "BM_SimulatorEvents|BM_PeriodicTaskTicks")


# JSON-metric bench binaries gated against the baseline.
FLEET_BENCHES = ("fleet_cpu_savings", "fleet_consistency")


def run_fleet(build_dir):
    """Runs the fleet benches; returns {key: (value, unit)}."""
    metrics = {}
    for name in FLEET_BENCHES:
        exe = os.path.join(build_dir, "bench", name)
        out = subprocess.run([exe], capture_output=True, text=True,
                             check=True)
        for line in out.stdout.splitlines():
            if not line.startswith("{"):
                continue
            rec = json.loads(line)
            key = f"{rec['bench']}/{rec['metric']}"
            metrics[key] = (rec["value"], rec["unit"])
    return metrics


def run_micro(build_dir):
    """Runs the micro-kernel subset; returns {key: (value, unit)}."""
    exe = os.path.join(build_dir, "bench", "micro_kernels")
    out = subprocess.run(
        [exe, f"--benchmark_filter={MICRO_FILTER}",
         "--benchmark_format=json", "--benchmark_min_time=0.2"],
        capture_output=True, text=True, check=True)
    doc = json.loads(out.stdout)
    metrics = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        for counter in ("bytes_per_second", "items_per_second"):
            if counter in bench:
                metrics[f"micro/{name}"] = (bench[counter], counter)
    return metrics


def simulated_metric_lines(stdout):
    """Extracts the JSON metric lines whose unit is sim-domain.

    Wall-clock lines ("seconds", "events_per_sec") legitimately differ
    between runs and are excluded; everything else must be identical.
    """
    lines = []
    for line in stdout.splitlines():
        if not line.startswith("{"):
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if classify(rec.get("unit", "")) == "simulated":
            lines.append(line)
    return lines


def self_check(build_dir):
    """Runs every sim bench twice; simulated output must be identical."""
    bench_dir = os.path.join(build_dir, "bench")
    benches = sorted(
        name for name in os.listdir(bench_dir)
        if os.access(os.path.join(bench_dir, name), os.X_OK)
        and os.path.isfile(os.path.join(bench_dir, name))
        and name != "micro_kernels")  # google-benchmark, wall-clock only
    if not benches:
        print(f"self-check: no bench binaries under {bench_dir}")
        return 1

    failures = 0
    total_lines = 0
    for name in benches:
        exe = os.path.join(bench_dir, name)
        runs = []
        for _ in range(2):
            out = subprocess.run([exe], capture_output=True, text=True,
                                 check=True)
            runs.append(simulated_metric_lines(out.stdout))
        first, second = runs
        if first == second:
            total_lines += len(first)
            print(f"self-check: {name}: OK "
                  f"({len(first)} simulated metric lines identical)")
            continue
        failures += 1
        print(f"self-check: {name}: NONDETERMINISTIC")
        for a, b in zip(first, second):
            if a != b:
                print(f"  run1: {a}")
                print(f"  run2: {b}")
        if len(first) != len(second):
            print(f"  run1 emitted {len(first)} simulated lines, "
                  f"run2 emitted {len(second)}")

    if failures:
        print(f"\nself-check: {failures}/{len(benches)} benches "
              "disagree with themselves")
        return 1
    print(f"self-check: OK ({len(benches)} benches run twice, "
          f"{total_lines} simulated metric lines bit-identical)")
    return 0


def classify(unit):
    if unit in WALL_RUNTIME_UNITS:
        return "wall_runtime"
    if unit in WALL_THROUGHPUT_UNITS:
        return "wall_throughput"
    return "simulated"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="wall-clock tolerance factor (default 3x)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--self-check", action="store_true",
                        help="run each sim bench twice and require "
                             "bit-identical simulated metrics")
    args = parser.parse_args()

    if args.self_check:
        return self_check(args.build_dir)

    current = {}
    current.update(run_fleet(args.build_dir))
    current.update(run_micro(args.build_dir))

    if args.update:
        doc = {key: {"value": value, "unit": unit}
               for key, (value, unit) in sorted(current.items())}
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {args.baseline} ({len(doc)} metrics)")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []
    checked = 0
    for key, entry in sorted(baseline.items()):
        base_value, unit = entry["value"], entry["unit"]
        if key not in current:
            failures.append(f"MISSING  {key}: bench no longer emits it")
            continue
        value, cur_unit = current[key]
        if cur_unit != unit:
            failures.append(f"UNIT     {key}: {unit} -> {cur_unit}")
            continue
        checked += 1
        kind = classify(unit)
        if kind == "simulated":
            # Deterministic contract: exact float equality.
            if value != base_value:
                failures.append(
                    f"DRIFT    {key}: {base_value!r} -> {value!r} "
                    "(simulated metric must be bit-identical)")
        elif kind == "wall_runtime":
            if value > base_value * args.tolerance:
                failures.append(
                    f"SLOWER   {key}: {value:.3f}s > "
                    f"{args.tolerance:.1f}x baseline {base_value:.3f}s")
        else:  # wall_throughput
            if value < base_value / args.tolerance:
                failures.append(
                    f"SLOWER   {key}: {value:.3e} < baseline "
                    f"{base_value:.3e} / {args.tolerance:.1f}")

    new_keys = sorted(set(current) - set(baseline))
    for key in new_keys:
        print(f"note: unbaselined metric {key} (run --update to adopt)")

    if failures:
        print(f"\ncheck_bench: {len(failures)} failure(s) "
              f"({checked} metrics checked):")
        for failure in failures:
            print(" ", failure)
        return 1
    print(f"check_bench: OK ({checked} metrics checked, "
          f"{len(new_keys)} unbaselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
