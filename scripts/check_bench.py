#!/usr/bin/env python3
"""Benchmark regression gate.

Runs the repo's bench binaries and compares their emitted metrics against
the committed baseline (bench/BASELINE.json):

  * Simulated metrics (the `{"bench":...}` JSON lines with sim-domain
    units) are products of the deterministic simulator: they must match
    the baseline BIT-EXACTLY. Any drift means a behavior change, not a
    perf change, and fails the check.
  * Wall-clock metrics ("seconds", "events_per_sec" lines and
    google-benchmark bytes/items-per-second counters) are jitter-prone,
    especially on shared CI runners, so they get a generous tolerance:
    throughputs may not drop below baseline/TOL, runtimes may not exceed
    baseline*TOL (default TOL=3).

A third mode, --self-check, proves the determinism contract without
consulting the baseline at all: every sim bench binary is run twice and
the simulated metric lines of the two runs are diffed byte-for-byte.
A bench that disagrees with itself has nondeterminism the simulator is
supposed to have squeezed out (unordered iteration feeding metrics,
wall-clock leakage, uninitialized state), and no baseline can be trusted
until it is fixed.

A fourth mode, --perturb, is simrace's schedule-perturbation oracle: every
sim bench is rerun under perturbed tie-break policies
(DPDPU_SIM_TIEBREAK=lifo and shuffle:7) and the simulated metric lines are
diffed against the default FIFO run. The tie-break only reorders events
sharing a timestamp — orderings the model claims to be insensitive to — so
any metric drift is a latent schedule dependence even when the run-twice
self-check passes. Benches with a *known, reasoned* tie-order sensitivity
are listed in PERTURB_SKIPS; a skip whose bench stops diverging is itself
an error (stale waiver), mirroring the simlint allowlist policy.

--perturb-selftest proves the oracle end to end: the intentionally
order-dependent build/tests/simrace_oracle binary must diverge between
fifo and lifo AND report the underlying race on stderr.

A fifth mode, --explore, goes beyond the three sampled schedules: it
drives the simex model checker (build/tools/simex/simex) over its
scenario targets, which enumerate same-timestamp orderings (DPOR-pruned
via simrace's causal DAG) and fault-injection choice points (node
fail/recover timing, frame-drop placement). Clean targets must explore
clean; the seeded pagecache-race target must FAIL, proving the explorer
still finds real bugs. Reports schedules explored vs the naive
enumeration pruned away. --explore-budget-scale N deepens the walk for
the nightly run.

Usage:
  python3 scripts/check_bench.py --build-dir build              # check
  python3 scripts/check_bench.py --build-dir build --update     # re-baseline
  python3 scripts/check_bench.py --build-dir build --self-check # run-twice
  python3 scripts/check_bench.py --build-dir build --perturb    # tie-break
  python3 scripts/check_bench.py --build-dir build --perturb-selftest
  python3 scripts/check_bench.py --build-dir build --explore    # simex
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "bench", "BASELINE.json")

# Units whose values are wall-clock measurements (tolerance-checked).
# Everything else comes out of the deterministic simulator (exact-checked).
WALL_RUNTIME_UNITS = {"seconds"}
WALL_THROUGHPUT_UNITS = {"events_per_sec", "bytes_per_second",
                         "items_per_second"}

# Micro-kernel benches gated in CI; a filter keeps the job fast.
MICRO_FILTER = ("BM_Crc32|BM_DeflateDecompress|BM_HuffmanDecode|"
                "BM_SimulatorEvents|BM_PeriodicTaskTicks")


# JSON-metric bench binaries gated against the baseline.
FLEET_BENCHES = ("fleet_cpu_savings", "fleet_consistency")


def run_fleet(build_dir):
    """Runs the fleet benches; returns {key: (value, unit)}."""
    metrics = {}
    for name in FLEET_BENCHES:
        exe = os.path.join(build_dir, "bench", name)
        out = subprocess.run([exe], capture_output=True, text=True,
                             check=True)
        for line in out.stdout.splitlines():
            if not line.startswith("{"):
                continue
            rec = json.loads(line)
            key = f"{rec['bench']}/{rec['metric']}"
            metrics[key] = (rec["value"], rec["unit"])
    return metrics


def run_micro(build_dir):
    """Runs the micro-kernel subset; returns {key: (value, unit)}."""
    exe = os.path.join(build_dir, "bench", "micro_kernels")
    out = subprocess.run(
        [exe, f"--benchmark_filter={MICRO_FILTER}",
         "--benchmark_format=json", "--benchmark_min_time=0.2"],
        capture_output=True, text=True, check=True)
    doc = json.loads(out.stdout)
    metrics = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        for counter in ("bytes_per_second", "items_per_second"):
            if counter in bench:
                metrics[f"micro/{name}"] = (bench[counter], counter)
    return metrics


def simulated_metric_lines(stdout):
    """Extracts the JSON metric lines whose unit is sim-domain.

    Wall-clock lines ("seconds", "events_per_sec") legitimately differ
    between runs and are excluded; everything else must be identical.
    """
    lines = []
    for line in stdout.splitlines():
        if not line.startswith("{"):
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if classify(rec.get("unit", "")) == "simulated":
            lines.append(line)
    return lines


def self_check(build_dir):
    """Runs every sim bench twice; simulated output must be identical."""
    bench_dir = os.path.join(build_dir, "bench")
    benches = sim_bench_binaries(build_dir)
    if not benches:
        print(f"self-check: no bench binaries under {bench_dir}")
        return 1

    failures = 0
    total_lines = 0
    for name in benches:
        exe = os.path.join(bench_dir, name)
        runs = []
        for _ in range(2):
            out = subprocess.run([exe], capture_output=True, text=True,
                                 check=True)
            runs.append(simulated_metric_lines(out.stdout))
        first, second = runs
        if first == second:
            total_lines += len(first)
            print(f"self-check: {name}: OK "
                  f"({len(first)} simulated metric lines identical)")
            continue
        failures += 1
        print(f"self-check: {name}: NONDETERMINISTIC")
        for a, b in zip(first, second):
            if a != b:
                print(f"  run1: {a}")
                print(f"  run2: {b}")
        if len(first) != len(second):
            print(f"  run1 emitted {len(first)} simulated lines, "
                  f"run2 emitted {len(second)}")

    if failures:
        print(f"\nself-check: {failures}/{len(benches)} benches "
              "disagree with themselves")
        return 1
    print(f"self-check: OK ({len(benches)} benches run twice, "
          f"{total_lines} simulated metric lines bit-identical)")
    return 0


# --------------------------------------------------------------------------
# Perturbation oracle.
# --------------------------------------------------------------------------

# Benches with a known, understood sensitivity to same-timestamp tie
# order. Every entry needs a reason (these are waivers, not exemptions);
# --perturb fails on a listed bench that stops diverging, so the list can
# only shrink stale. Current root cause for all of them: the DDS-path
# workload generators draw sizes/keys from one shared Pcg32 stream inside
# equal-timestamp request handlers, so permuting the ties permutes the
# draw order (not a state race — simrace runs them clean — but the
# workload itself is schedule-keyed). ROADMAP tracks moving those draws
# to per-request counter-keyed streams so this list can be emptied.
# Burned down to empty: every request stream now derives a counter-keyed
# RNG (seed ^ client-id ^ request-index), so draws no longer depend on
# same-timestamp tie order. Keep the stale-skip policy: any new entry
# must name the bench, the reason, and still diverge when checked.
PERTURB_SKIPS = {}

PERTURB_POLICIES = ("lifo", "shuffle:7")


def sim_bench_binaries(build_dir):
    """The same discovery set --self-check sweeps (sim benches only)."""
    bench_dir = os.path.join(build_dir, "bench")
    return sorted(
        name for name in os.listdir(bench_dir)
        if os.access(os.path.join(bench_dir, name), os.X_OK)
        and os.path.isfile(os.path.join(bench_dir, name))
        and name != "micro_kernels")  # google-benchmark, wall-clock only


def run_with_tiebreak(exe, policy):
    """Runs `exe` with DPDPU_SIM_TIEBREAK=policy (unset for the base run).

    Returns (simulated metric lines, stderr). check=True: a bench that
    crashes under a perturbed-but-legal schedule is itself a finding.
    """
    env = dict(os.environ)
    env.pop("DPDPU_SIM_TIEBREAK", None)
    if policy is not None:
        env["DPDPU_SIM_TIEBREAK"] = policy
    out = subprocess.run([exe], capture_output=True, text=True, check=True,
                         env=env)
    return simulated_metric_lines(out.stdout), out.stderr


def first_divergence(base, perturbed):
    """First (base line, perturbed line) pair that differs, if any."""
    for a, b in zip(base, perturbed):
        if a != b:
            return a, b
    if len(base) != len(perturbed):
        return (f"<{len(base)} simulated lines>",
                f"<{len(perturbed)} simulated lines>")
    return None


def perturb(build_dir):
    benches = sim_bench_binaries(build_dir)
    if not benches:
        print(f"perturb: no bench binaries under "
              f"{os.path.join(build_dir, 'bench')}")
        return 1

    failures = 0
    skipped = 0
    for name in benches:
        exe = os.path.join(build_dir, "bench", name)
        base, _ = run_with_tiebreak(exe, None)
        diverged = {}
        race_lines = []
        for policy in PERTURB_POLICIES:
            lines, err = run_with_tiebreak(exe, policy)
            delta = first_divergence(base, lines)
            if delta:
                diverged[policy] = delta
            race_lines += [l for l in err.splitlines() if "simrace:" in l]
        if name in PERTURB_SKIPS:
            if diverged:
                skipped += 1
                print(f"perturb: {name}: SKIP (known tie-order sensitive: "
                      f"{PERTURB_SKIPS[name]})")
            else:
                failures += 1
                print(f"perturb: {name}: STALE SKIP — no longer diverges "
                      "under any perturbed policy; remove it from "
                      "PERTURB_SKIPS")
            continue
        if not diverged:
            print(f"perturb: {name}: OK ({len(base)} simulated metric "
                  f"lines identical under {', '.join(PERTURB_POLICIES)})")
            continue
        failures += 1
        print(f"perturb: {name}: TIE-ORDER SENSITIVE")
        for policy, (a, b) in sorted(diverged.items()):
            print(f"  [{policy}] base:      {a}")
            print(f"  [{policy}] perturbed: {b}")
        for line in race_lines[:8]:
            print(f"  {line}")

    if failures:
        print(f"\nperturb: {failures}/{len(benches)} benches depend on "
              "same-timestamp tie order")
        return 1
    print(f"perturb: OK ({len(benches)} benches, {skipped} reasoned skips)")
    return 0


def perturb_selftest(build_dir):
    """The seeded order-dependent oracle must trip both halves of simrace."""
    exe = os.path.join(build_dir, "tests", "simrace_oracle")
    if not os.path.exists(exe):
        print(f"perturb-selftest: missing {exe} (build the tests target)")
        return 1
    fifo, fifo_err = run_with_tiebreak(exe, "fifo")
    lifo, lifo_err = run_with_tiebreak(exe, "lifo")
    problems = []
    if not first_divergence(fifo, lifo):
        problems.append("oracle metric did not diverge between fifo and "
                        "lifo tie-break (perturbation oracle is blind)")
    if "simrace: RACE" not in fifo_err + lifo_err:
        problems.append("oracle race was not reported on stderr "
                        "(happens-before detector is blind)")
    if "provenance:" not in fifo_err + lifo_err:
        problems.append("race report lacks provenance chains")
    for p in problems:
        print(f"perturb-selftest: FAIL: {p}")
    if problems:
        return 1
    print("perturb-selftest: OK (oracle diverges under lifo and the "
          "detector reports the race with provenance)")
    return 0


# --------------------------------------------------------------------------
# Systematic exploration (simex).
# --------------------------------------------------------------------------

# (target, smoke budget, expect_clean). pagecache-race is the seeded-bug
# self-test: the explorer must fail it, proving the exploration gate can
# still see a real schedule bug (mirrors --perturb-selftest). The
# cluster-* scenarios gate the consistency layer's failover flows (see
# src/cluster/simex_scenarios.cc); each found at least one real bug
# pre-fix, so they must stay clean. Budgets cover the full fault-branch
# fan-out of each scenario at smoke scale; nightly (16x) re-covers them
# with headroom for deeper tie reversals.
EXPLORE_TARGETS = (
    ("minitcp", 64, True),
    ("fleet", 48, True),
    ("pagecache-race", 16, False),
    ("cluster-handoff", 16, True),
    ("cluster-hint-overflow", 16, True),
    ("cluster-catchup-readmit", 16, True),
    ("cluster-refail", 64, True),
    ("cluster-writeonly-ack", 32, True),
)


def explore(build_dir, budget_scale):
    exe = os.path.join(build_dir, "tools", "simex", "simex")
    if not os.path.exists(exe):
        print(f"explore: missing {exe} (build the simex target)")
        return 1

    failures = 0
    total_schedules = 0
    total_naive_log10 = 0.0
    for target, budget, expect_clean in EXPLORE_TARGETS:
        out = subprocess.run(
            [exe, f"--target={target}", f"--budget={budget * budget_scale}"],
            capture_output=True, text=True)
        stats = None
        for line in out.stdout.splitlines():
            if line.startswith("simex-json: "):
                stats = json.loads(line[len("simex-json: "):])
        if out.returncode not in (0, 1) or stats is None:
            failures += 1
            print(f"explore: {target}: CRASHED (exit {out.returncode})")
            print(out.stdout[-2000:])
            print(out.stderr[-2000:])
            continue
        clean = out.returncode == 0
        total_schedules += stats["schedules"]
        total_naive_log10 += stats["naive_log10"]
        summary = (f"{stats['schedules']} schedules explored, naive "
                   f"~1e{stats['naive_log10']:.1f}, "
                   f"~{stats['pruning_factor']:.3g}x pruned")
        if clean == expect_clean:
            verdict = "OK" if clean else "OK (seeded bug re-found)"
            print(f"explore: {target}: {verdict} ({summary})")
            continue
        failures += 1
        if expect_clean:
            print(f"explore: {target}: SCHEDULE BUG FOUND ({summary})")
            # The CLI already minimized; surface its trace.
            for line in out.stdout.splitlines():
                print(f"  {line}")
        else:
            print(f"explore: {target}: BLIND — the seeded bug was not "
                  f"found within budget ({summary})")

    if failures:
        print(f"\nexplore: {failures}/{len(EXPLORE_TARGETS)} targets failed")
        return 1
    print(f"explore: OK ({len(EXPLORE_TARGETS)} targets, {total_schedules} "
          f"schedules explored vs ~1e{total_naive_log10:.1f} naive)")
    return 0


def classify(unit):
    if unit in WALL_RUNTIME_UNITS:
        return "wall_runtime"
    if unit in WALL_THROUGHPUT_UNITS:
        return "wall_throughput"
    return "simulated"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="wall-clock tolerance factor (default 3x)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--self-check", action="store_true",
                        help="run each sim bench twice and require "
                             "bit-identical simulated metrics")
    parser.add_argument("--perturb", action="store_true",
                        help="rerun each sim bench under perturbed "
                             "tie-break policies and require identical "
                             "simulated metrics")
    parser.add_argument("--perturb-selftest", action="store_true",
                        help="prove the perturbation oracle catches the "
                             "seeded order-dependent handler")
    parser.add_argument("--explore", action="store_true",
                        help="run the simex model checker over its "
                             "scenario targets (smoke budgets)")
    parser.add_argument("--explore-budget-scale", type=int, default=1,
                        help="multiply every --explore budget (nightly "
                             "deep runs)")
    args = parser.parse_args()

    if args.self_check:
        return self_check(args.build_dir)
    if args.perturb:
        return perturb(args.build_dir)
    if args.perturb_selftest:
        return perturb_selftest(args.build_dir)
    if args.explore:
        return explore(args.build_dir, args.explore_budget_scale)

    current = {}
    current.update(run_fleet(args.build_dir))
    current.update(run_micro(args.build_dir))

    if args.update:
        doc = {key: {"value": value, "unit": unit}
               for key, (value, unit) in sorted(current.items())}
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {args.baseline} ({len(doc)} metrics)")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []
    checked = 0
    for key, entry in sorted(baseline.items()):
        base_value, unit = entry["value"], entry["unit"]
        if key not in current:
            failures.append(f"MISSING  {key}: bench no longer emits it")
            continue
        value, cur_unit = current[key]
        if cur_unit != unit:
            failures.append(f"UNIT     {key}: {unit} -> {cur_unit}")
            continue
        checked += 1
        kind = classify(unit)
        if kind == "simulated":
            # Deterministic contract: exact float equality.
            if value != base_value:
                failures.append(
                    f"DRIFT    {key}: {base_value!r} -> {value!r} "
                    "(simulated metric must be bit-identical)")
        elif kind == "wall_runtime":
            if value > base_value * args.tolerance:
                failures.append(
                    f"SLOWER   {key}: {value:.3f}s > "
                    f"{args.tolerance:.1f}x baseline {base_value:.3f}s")
        else:  # wall_throughput
            if value < base_value / args.tolerance:
                failures.append(
                    f"SLOWER   {key}: {value:.3e} < baseline "
                    f"{base_value:.3e} / {args.tolerance:.1f}")

    # A bench that runs under the race checker must also report the
    # checker's dynamic footprint: race_check_objects is how the
    # annotation sweep stays observable (simscope gates the static side,
    # this gates the dynamic one).
    for key, (value, unit) in sorted(current.items()):
        if not key.endswith("/race_check_enabled") or value != 1:
            continue
        bench = key.rsplit("/", 1)[0]
        if f"{bench}/race_check_objects" not in current:
            failures.append(
                f"MISSING  {bench}/race_check_objects: race-checked "
                "bench must report its observed-object count")

    new_keys = sorted(set(current) - set(baseline))
    for key in new_keys:
        print(f"note: unbaselined metric {key} (run --update to adopt)")

    if failures:
        print(f"\ncheck_bench: {len(failures)} failure(s) "
              f"({checked} metrics checked):")
        for failure in failures:
            print(" ", failure)
        return 1
    print(f"check_bench: OK ({checked} metrics checked, "
          f"{len(new_keys)} unbaselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
