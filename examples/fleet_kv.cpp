// Replicated disaggregated KV store across a storage fleet: the
// disaggregated_kv example at the paper's actual deployment shape. Four
// storage servers hold a replicated fixed-bucket KV table (replication
// factor 2 via the consistent-hash shard router); four client nodes PUT
// through the host path (index mutation) and GET through the DPU
// offload path. Midway through the read phase one storage server fails;
// the router re-steers its keys to their replicas and every GET still
// returns the right value.
//
//   ./build/examples/fleet_kv

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "cluster/fleet.h"
#include "cluster/workload.h"
#include "core/runtime/metrics.h"
#include "kern/dedup.h"

using namespace dpdpu;  // NOLINT: example brevity

namespace {

constexpr uint32_t kBuckets = 4096;
constexpr uint32_t kBucketBytes = 512;

uint32_t BucketOf(const std::string& key) {
  return uint32_t(cluster::HashKey(key) % kBuckets);
}

Buffer EncodeBucket(const std::string& key, const std::string& value) {
  Buffer b;
  b.AppendU32(1);
  b.AppendU32(uint32_t(key.size()));
  b.AppendU32(uint32_t(value.size()));
  b.Append(key);
  b.Append(value);
  b.resize(kBucketBytes);
  return b;
}

bool DecodeBucket(ByteSpan bucket, std::string* key, std::string* value) {
  ByteReader r(bucket);
  uint32_t used, klen, vlen;
  if (!r.ReadU32(&used) || used != 1) return false;
  if (!r.ReadU32(&klen) || !r.ReadU32(&vlen)) return false;
  ByteSpan k, v;
  if (!r.ReadSpan(klen, &k) || !r.ReadSpan(vlen, &v)) return false;
  key->assign(reinterpret_cast<const char*>(k.data()), k.size());
  value->assign(reinterpret_cast<const char*>(v.data()), v.size());
  return true;
}

// One client node's replicated KV view: PUTs fan out to every live
// replica of the key; GETs read from the first live replica the router
// picks.
class KvClient {
 public:
  KvClient(cluster::Fleet* fleet, uint32_t client_index)
      : fleet_(fleet), client_index_(client_index) {}

  void Put(const std::string& key, const std::string& value,
           std::function<void(bool)> cb) {
    auto prefs = fleet_->router().PreferenceList(cluster::HashKey(key));
    auto pending = std::make_shared<int>(0);
    auto ok = std::make_shared<bool>(true);
    Buffer bucket = EncodeBucket(key, value);
    for (netsub::NodeId node : prefs) {
      if (!fleet_->router().IsUp(node)) continue;
      ++*pending;
    }
    if (*pending == 0) {
      cb(false);
      return;
    }
    for (netsub::NodeId node : prefs) {
      if (!fleet_->router().IsUp(node)) continue;
      Connection(node)->Write(
          fleet_->shard_file(fleet_->storage_index(node)),
          uint64_t(BucketOf(key)) * kBucketBytes, bucket,
          [pending, ok, cb](Status s) {
            *ok = *ok && s.ok();
            if (--*pending == 0) cb(*ok);
          },
          se::kRequestFlagRequiresHost);
    }
  }

  void Get(const std::string& key,
           std::function<void(Result<std::string>)> cb) {
    auto node = fleet_->router().RouteKey(key);
    if (!node.has_value()) {
      cb(Status::Unavailable("no live replica for " + key));
      return;
    }
    Connection(*node)->Read(
        fleet_->shard_file(fleet_->storage_index(*node)),
        uint64_t(BucketOf(key)) * kBucketBytes, kBucketBytes,
        [key, cb = std::move(cb)](Result<Buffer> bucket) {
          if (!bucket.ok()) {
            cb(bucket.status());
            return;
          }
          std::string k, v;
          if (!DecodeBucket(bucket->span(), &k, &v) || k != key) {
            cb(Status::NotFound("key " + key));
            return;
          }
          cb(v);
        });
  }

 private:
  se::RemoteStorageClient* Connection(netsub::NodeId node) {
    auto it = connections_.find(node);
    if (it == connections_.end()) {
      it = connections_
               .emplace(node, std::make_unique<se::RemoteStorageClient>(
                                  &fleet_->client(client_index_).network(),
                                  node, 9000))
               .first;
    }
    return it->second.get();
  }

  cluster::Fleet* fleet_;
  uint32_t client_index_;
  std::map<netsub::NodeId, std::unique_ptr<se::RemoteStorageClient>>
      connections_;
};

std::string ValueFor(int id) { return "profile-" + std::to_string(id * 17); }

}  // namespace

int main() {
  sim::Simulator sim;
  cluster::FleetSpec spec;
  spec.storage_servers = 4;
  spec.clients = 4;
  spec.routing.replication = 2;
  spec.shard_bytes = uint64_t(kBuckets) * kBucketBytes;  // 2 MB table
  spec.shard_fill_seed = 0;                              // zeroed buckets
  spec.storage_template.fs_device_blocks = 4096;         // 16 MB device
  spec.client_template.fs_device_blocks = 1024;
  cluster::Fleet fleet(&sim, spec);

  std::vector<std::unique_ptr<KvClient>> clients;
  for (uint32_t i = 0; i < fleet.clients(); ++i) {
    clients.push_back(std::make_unique<KvClient>(&fleet, i));
  }

  // Load phase: PUTs replicate to both replicas through the host path.
  constexpr int kKeys = 300;
  int put_ok = 0;
  for (int i = 0; i < kKeys; ++i) {
    clients[i % clients.size()]->Put(
        "user:" + std::to_string(i), ValueFor(i),
        [&](bool ok) { put_ok += ok ? 1 : 0; });
  }
  sim.Run();

  // Read phase 1: Zipfian GETs served by the DPUs, all replicas up.
  fleet.StartProbes();
  Pcg32 rng(7);
  ZipfGenerator zipf(kKeys, 0.99);
  auto run_gets = [&](int count, int* ok_count, int* bad_count) {
    for (int i = 0; i < count; ++i) {
      // run_gets is a plain helper invoked synchronously between sim
      // runs, so these draws happen in program order, outside the sim.
      // simlint:allow(R7): synchronous helper lambda, draws not scheduled
      int id = int(zipf.Next(rng));
      // simlint:allow(R7): synchronous helper lambda, draws not scheduled
      clients[rng.NextBounded(uint32_t(clients.size()))]->Get(
          "user:" + std::to_string(id),
          [&, id](Result<std::string> value) {
            if (value.ok() && *value == ValueFor(id)) {
              ++*ok_count;
            } else {
              ++*bad_count;
            }
          });
    }
    sim.Run();
  };
  int ok1 = 0, bad1 = 0;
  run_gets(600, &ok1, &bad1);

  // Storage server 2 goes dark (graceful drain); its keys re-steer to
  // their replicas, which hold every replicated bucket.
  uint64_t routed_before =
      fleet.router().routed().count(fleet.storage_node_id(2))
          ? fleet.router().routed().at(fleet.storage_node_id(2))
          : 0;
  fleet.FailStorageNode(2, cluster::FailMode::kGraceful);
  int ok2 = 0, bad2 = 0;
  run_gets(600, &ok2, &bad2);
  fleet.StopProbes();
  uint64_t routed_after =
      fleet.router().routed().count(fleet.storage_node_id(2))
          ? fleet.router().routed().at(fleet.storage_node_id(2))
          : 0;

  cluster::FleetUsage usage = fleet.Usage();
  std::printf("DPDPU fleet KV store (replicated DDS at fleet scale)\n");
  std::printf("puts (replicated)   : %d/%d ok\n", put_ok, kKeys);
  std::printf("gets before failure : %d ok, %d failed\n", ok1, bad1);
  std::printf("gets after failure  : %d ok, %d failed (node 2 dark)\n",
              ok2, bad2);
  std::printf("reads to node 2     : %llu before, +%llu after failure\n",
              (unsigned long long)routed_before,
              (unsigned long long)(routed_after - routed_before));
  std::printf("per-node reads      :");
  for (const auto& [node, count] : fleet.router().routed()) {
    std::printf(" n%u=%llu", node, (unsigned long long)count);
  }
  std::printf("\n");
  std::printf("fleet storage cores : host %.3f, dpu %.3f\n",
              usage.storage_host_cores, usage.storage_dpu_cores);
  std::printf("fabric delivered    : %.2f MB\n",
              double(usage.fabric_bytes) / 1e6);
  std::printf("virtual time        : %.3f ms\n", double(sim.now()) / 1e6);

  // Bucket-hash collisions make a handful of NotFound GETs legitimate;
  // the failure must not add any beyond that.
  bool ok = put_ok == kKeys && ok1 > 600 * 9 / 10 && ok2 > 600 * 9 / 10 &&
            routed_after == routed_before;
  return ok ? 0 : 1;
}
