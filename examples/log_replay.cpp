// Log-replay storage server (paper Section 7's partial-offload
// motivation): cloud-native DBMSs apply transaction updates on
// disaggregated storage via log replay, whose hot-page cache is an order
// of magnitude larger than DPU memory — so log-append requests must run
// on the host, while page reads offload to the DPU.
//
// This example builds that split: a Socrates/Aurora-style page server
// where WAL appends go to the host (which maintains a page table and
// applies records), GET-page requests are served by the DPU, and the
// paper's "fast persistence" path acknowledges appends once they are
// durable on the DPU log device.
//
//   ./build/examples/log_replay

#include <cstdio>
#include <map>

#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: example brevity

namespace {

constexpr uint32_t kPageBytes = 8192;
constexpr uint32_t kNumPages = 256;

// A log record: u32 page, u32 offset_in_page, u32 len, bytes.
Buffer EncodeLogRecord(uint32_t page, uint32_t offset, ByteSpan bytes) {
  Buffer r;
  r.AppendU32(page);
  r.AppendU32(offset);
  r.AppendU32(uint32_t(bytes.size()));
  r.Append(bytes);
  return r;
}

}  // namespace

int main() {
  sim::Simulator sim;
  netsub::Network fabric(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  so.storage.persist_mode = se::PersistMode::kDpuLogAck;
  co.node = 2;
  rt::Platform server(&sim, &fabric, so);
  rt::Platform compute(&sim, &fabric, co);

  // The page file.
  auto file = server.fs().Create("pages");
  if (!file.ok()) return 1;
  Buffer zero(size_t{kNumPages} * kPageBytes);
  if (!server.fs().Write(*file, 0, zero.span()).ok()) return 1;

  // Host-side log replay state: page LSNs (the "100s GB hot page cache"
  // stand-in — host memory, not DPU memory).
  std::map<uint32_t, uint64_t> page_lsn;
  uint64_t next_lsn = 1;
  uint64_t host_appends = 0;

  server.storage().SetHostHandler(
      [&](se::RemoteRequest request, std::function<void(Buffer)> reply) {
        // Parse the log record, apply it to the page, bump the LSN.
        ++host_appends;
        ByteReader r(request.data.span());
        uint32_t page, offset, len;
        ByteSpan bytes;
        bool ok = r.ReadU32(&page) && r.ReadU32(&offset) &&
                  r.ReadU32(&len) && r.ReadSpan(len, &bytes);
        if (!ok || offset + len > kPageBytes) {
          se::RemoteResponse resp;
          resp.tag = request.tag;
          resp.ok = false;
          reply(se::EncodeRemoteResponse(resp));
          return;
        }
        // Replay work on host cores (parse + apply).
        server.server().host_cpu().Execute(
            4000 + len, [&, page, offset, tag = request.tag,
                         data = Buffer(bytes.data(), bytes.size()),
                         reply = std::move(reply)]() mutable {
              page_lsn[page] = next_lsn++;
              // Persist through the DPU file service with fast-ack.
              server.storage().file_service().WriteAsync(
                  *file, uint64_t(page) * kPageBytes + offset,
                  std::move(data), se::PersistMode::kDpuLogAck,
                  [tag, reply = std::move(reply)](Status s) {
                    se::RemoteResponse resp;
                    resp.tag = tag;
                    resp.ok = s.ok();
                    reply(se::EncodeRemoteResponse(resp));
                  });
            });
      });
  server.storage().Serve();

  se::RemoteStorageClient client(&compute.network(), 1, 9000);

  // Workload: a stream of log appends (host path) and page reads (DPU
  // path), interleaved.
  Pcg32 rng(11);
  int appends_ok = 0, reads_ok = 0;

  constexpr int kAppends = 400;
  constexpr int kReads = 1200;
  rt::UtilizationProbe probe(&server.server());
  probe.Start();

  for (int i = 0; i < kAppends; ++i) {
    uint32_t page = rng.NextBounded(kNumPages);
    uint32_t offset = rng.NextBounded(kPageBytes - 64);
    Buffer payload = kern::GenerateRandomBytes(48, i);
    client.Write(*file, 0, EncodeLogRecord(page, offset, payload.span()),
                 [&](Status s) { appends_ok += s.ok() ? 1 : 0; },
                 se::kRequestFlagRequiresHost);
  }
  for (int i = 0; i < kReads; ++i) {
    uint32_t page = rng.NextBounded(kNumPages);
    client.Read(*file, uint64_t(page) * kPageBytes, kPageBytes,
                [&](Result<Buffer> d) {
                  if (d.ok() && d->size() == kPageBytes) ++reads_ok;
                });
  }
  sim.Run();
  probe.Stop();

  std::printf("DPDPU log-replay page server (partial offloading)\n");
  std::printf("log appends (host)   : %d ok / %d (host handled %llu)\n",
              appends_ok, kAppends, (unsigned long long)host_appends);
  std::printf("page reads (DPU)     : %d ok / %d\n", reads_ok, kReads);
  std::printf("fast-acked writes    : %llu\n",
              (unsigned long long)server.storage()
                  .file_service()
                  .stats()
                  .log_acked_writes);
  std::printf("routed to DPU / host : %llu / %llu\n",
              (unsigned long long)server.storage().director()
                  .routed_to_dpu(),
              (unsigned long long)server.storage().director()
                  .routed_to_host());
  std::printf("host cores           : %.3f\n", probe.host_cores());
  std::printf("dpu cores            : %.3f\n", probe.dpu_cores());
  std::printf("distinct pages LSN'd : %zu (max lsn %llu)\n",
              page_lsn.size(), (unsigned long long)(next_lsn - 1));
  std::printf("virtual time         : %.3f ms\n", double(sim.now()) / 1e6);
  return (appends_ok == kAppends && reads_ok == kReads) ? 0 : 1;
}
