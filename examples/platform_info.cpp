// Platform inventory: prints the hardware model and engine configuration
// of a DPDPU server for each DPU preset — the Figure 4/5 resource picture
// as a runnable tool, and a quick way to see the heterogeneity matrix
// (which DP kernels can use an ASIC on which DPU).
//
//   ./build/examples/platform_info

#include <cstdio>

#include "core/runtime/platform.h"

using namespace dpdpu;  // NOLINT: example brevity

namespace {

void PrintDpu(const hw::DpuSpec& dpu) {
  std::printf("  DPU model            : %s\n", dpu.model.c_str());
  std::printf("    cores              : %u x %.1f GHz (ipc %.2f)\n",
              dpu.cpu.cores, dpu.cpu.clock_hz / 1e9, dpu.cpu.ipc);
  std::printf("    memory             : %.0f GB\n",
              double(dpu.memory_bytes) / double(1ull << 30));
  std::printf("    nic                : %.0f Gbps\n",
              dpu.nic.bits_per_sec / 1e9);
  std::printf("    generic offload    : %s\n",
              dpu.generic_nic_core_offload ? "yes (NIC cores)"
                                           : "no (match-action only)");
  std::printf("    accelerators       : ");
  if (dpu.accelerators.empty()) std::printf("(none)");
  for (const auto& a : dpu.accelerators) {
    std::printf("%s(%.1fGB/s) ",
                std::string(hw::AcceleratorKindName(a.kind)).c_str(),
                a.bytes_per_sec / 1e9);
  }
  std::printf("\n");
}

void PrintPlatform(const char* title, hw::DpuSpec (*dpu_spec)()) {
  sim::Simulator sim;
  netsub::Network net(&sim);
  rt::PlatformOptions options;
  options.server_spec = hw::MakeServerSpec("server", dpu_spec());
  rt::Platform platform(&sim, &net, options);

  std::printf("== %s ==\n", title);
  PrintDpu(platform.server().spec().dpu);
  std::printf("  host                 : %u x %.1f GHz, %.0f GB\n",
              platform.server().spec().host_cpu.cores,
              platform.server().spec().host_cpu.clock_hz / 1e9,
              double(platform.server().spec().host_memory_bytes) /
                  double(1ull << 30));
  std::printf("  ssd                  : %.0f us read, qd %u\n",
              double(platform.server().spec().ssd.read_latency_ns) / 1000,
              platform.server().spec().ssd.queue_depth);
  std::printf("  fast log device      : %s\n",
              platform.server().dpu_log_device() != nullptr ? "yes" : "no");

  std::printf("  DP kernels           :\n");
  for (const std::string& name : platform.compute().AvailableKernels()) {
    bool asic = platform.compute().TargetAvailable(
        name, ce::ExecTarget::kDpuAsic);
    std::printf("    %-12s -> %s\n", name.c_str(),
                asic ? "dpu_asic (accelerated)" : "dpu_cpu / host_cpu");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("DPDPU platform inventory (the Figure 4/5 resource "
              "picture)\n\n");
  PrintPlatform("BlueField-2 server", &hw::BlueField2Spec);
  PrintPlatform("BlueField-3 server", &hw::BlueField3Spec);
  PrintPlatform("IPU-like server", &hw::IntelIpuLikeSpec);
  std::printf("The same application code runs on all three: DP kernels "
              "fall back to CPUs where an ASIC is missing (Section 5's "
              "portability requirement).\n");
  return 0;
}
