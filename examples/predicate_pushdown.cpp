// Predicate pushdown (paper Section 4's second composition example):
// "the storage server first reads the database records from SSDs through
// the Storage Engine. It then directly applies predicates on these tuples
// using the Compute Engine, and only sends the qualified tuples back to
// the remote database server via the Network Engine."
//
// Compares bytes on the wire with and without pushdown.
//
//   ./build/examples/predicate_pushdown

#include <cstdio>

#include "common/logging.h"
#include "core/runtime/pipeline.h"
#include "core/runtime/platform.h"
#include "kern/relational.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: example brevity

namespace {

constexpr char kSchemaParam[] = "order_id:i64,amount:f64,region:str";

// Builds one row page of synthetic orders.
Buffer BuildOrdersPage(int page_index, int rows_per_page, Pcg32& rng) {
  kern::Schema schema({{"order_id", kern::ColumnType::kInt64},
                       {"amount", kern::ColumnType::kDouble},
                       {"region", kern::ColumnType::kString}});
  kern::RowPageBuilder builder(schema);
  static const char* kRegions[] = {"emea", "apac", "amer", "anz"};
  for (int r = 0; r < rows_per_page; ++r) {
    int64_t id = int64_t(page_index) * rows_per_page + r;
    double amount = double(rng.NextBounded(100000)) / 100.0;
    std::string region = kRegions[rng.NextBounded(4)];
    dpdpu::Status added = builder.AddRow(
        {kern::Value(id), kern::Value(amount), kern::Value(region)});
    DPDPU_CHECK(added.ok());
  }
  return builder.Finish();
}

}  // namespace

int main() {
  sim::Simulator sim;
  netsub::Network fabric(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  co.node = 2;
  rt::Platform storage_node(&sim, &fabric, so);
  rt::Platform db_node(&sim, &fabric, co);

  // Seed 32 pages of orders into the storage node's file system.
  constexpr int kPages = 32;
  constexpr int kRowsPerPage = 512;
  Pcg32 rng(7);
  auto file = storage_node.fs().Create("orders");
  if (!file.ok()) return 1;
  std::vector<uint64_t> page_offsets;
  std::vector<uint32_t> page_sizes;
  uint64_t offset = 0;
  uint64_t total_rows = 0;
  for (int p = 0; p < kPages; ++p) {
    Buffer page = BuildOrdersPage(p, kRowsPerPage, rng);
    page_offsets.push_back(offset);
    page_sizes.push_back(uint32_t(page.size()));
    if (!storage_node.fs().Write(*file, offset, page.span()).ok()) return 1;
    offset += page.size();
    total_rows += kRowsPerPage;
  }

  // The database node receives qualified tuples.
  uint64_t wire_bytes_pushdown = 0;
  db_node.network().Listen(7200, [&](ne::NeSocket* s) {
    s->SetReceiveCallback(
        [&](ByteSpan d) { wire_bytes_pushdown += d.size(); });
  });
  ne::NeSocket* out = storage_node.network().Connect(2, 7200);

  // Pushdown pipeline on the storage server:
  //   SE read page -> CE filter kernel (amount > 900) -> NE send.
  uint64_t qualified_rows = 0;
  rt::Pipeline pipeline;
  int next_page = 0;
  pipeline
      .AddStage([&](Buffer, std::function<void(Result<Buffer>)> done) {
        int p = next_page++;
        storage_node.storage().file_service().ReadAsync(
            *file, page_offsets[p], page_sizes[p],
            [done = std::move(done)](Result<Buffer> data) {
              done(std::move(data));
            });
      })
      .AddStage([&](Buffer page, std::function<void(Result<Buffer>)> done) {
        auto work = storage_node.compute().Invoke(
            ce::kKernelFilter, std::move(page),
            {{"schema", kSchemaParam},
             {"col", "amount"},
             {"op", ">"},
             {"value", "900"},
             {"value_type", "f64"}});
        if (!work.ok()) {
          done(work.status());
          return;
        }
        (*work)->OnComplete([done = std::move(done)](ce::WorkItem& item) {
          done(item.result());
        });
      })
      .AddStage([&](Buffer filtered,
                    std::function<void(Result<Buffer>)> done) {
        kern::Schema schema({{"order_id", kern::ColumnType::kInt64},
                             {"amount", kern::ColumnType::kDouble},
                             {"region", kern::ColumnType::kString}});
        auto reader = kern::RowPageReader::Open(&schema, filtered.span());
        if (reader.ok()) qualified_rows += reader->row_count();
        out->Send(filtered.span());
        done(std::move(filtered));
      });

  for (int p = 0; p < kPages; ++p) pipeline.Push(Buffer());
  sim.Run();

  // Baseline: ship every page uncompressed and filter at the database.
  uint64_t wire_bytes_baseline = 0;
  for (uint32_t size : page_sizes) {
    wire_bytes_baseline += size;
  }

  std::printf("DPDPU predicate pushdown (Section 4 example)\n");
  std::printf("pages scanned        : %d (%llu rows)\n", kPages,
              (unsigned long long)total_rows);
  std::printf("qualified rows       : %llu (%.1f%% selectivity)\n",
              (unsigned long long)qualified_rows,
              100.0 * double(qualified_rows) / double(total_rows));
  std::printf("bytes shipped (all)  : %llu\n",
              (unsigned long long)wire_bytes_baseline);
  std::printf("bytes shipped (push) : %llu\n",
              (unsigned long long)wire_bytes_pushdown);
  std::printf("network reduction    : %.1fx\n",
              double(wire_bytes_baseline) /
                  double(std::max<uint64_t>(wire_bytes_pushdown, 1)));
  std::printf("virtual time         : %.3f ms\n", double(sim.now()) / 1e6);
  return pipeline.completed() == kPages ? 0 : 1;
}
