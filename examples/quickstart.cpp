// Quickstart: the paper's Figure 6 stored procedure, as real code.
//
// A storage server registers a sproc that serves a remote request by
// reading a set of pages from the DPU file system, compressing each page
// with the `compress` DP kernel — specified execution on the compression
// ASIC, falling back to a DPU CPU core when the accelerator is absent —
// and streaming the compressed pages back to the client over the Network
// Engine.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/compute/sproc.h"
#include "core/runtime/platform.h"
#include "kern/deflate.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: example brevity

int main() {
  sim::Simulator sim;
  netsub::Network fabric(&sim);

  // A storage server with a BlueField-2 and a remote client node.
  rt::PlatformOptions server_options;
  server_options.node = 1;
  rt::Platform server(&sim, &fabric, server_options);

  rt::PlatformOptions client_options;
  client_options.node = 2;
  rt::Platform client(&sim, &fabric, client_options);

  std::printf("DPDPU quickstart: the Figure 6 sproc\n");
  std::printf("DP kernels available on this DPU:\n");
  for (const std::string& name : server.compute().AvailableKernels()) {
    std::printf("  - %s\n", name.c_str());
  }

  // Populate a file with 8 pages of text.
  constexpr uint32_t kPageSize = 32 * 1024;
  constexpr int kPages = 8;
  Buffer corpus = kern::GenerateText(kPageSize * kPages, {});
  auto file = server.fs().Create("table.pages");
  if (!file.ok() || !server.fs().Write(*file, 0, corpus.span()).ok()) {
    std::fprintf(stderr, "failed to seed file\n");
    return 1;
  }

  // The client listens for the compressed pages.
  Buffer received;
  client.network().Listen(7100, [&](ne::NeSocket* socket) {
    socket->SetReceiveCallback(
        [&](ByteSpan data) { received.Append(data); });
  });
  ne::NeSocket* reply_socket = server.network().Connect(2, 7100);

  // --- The sproc (compare with the paper's Figure 6) ----------------------
  int pages_done = 0;
  Status status = server.compute().RegisterSproc(
      "read_compress_send_pages", [&](ce::SprocContext& ctx) {
        for (int page = 0; page < kPages; ++page) {
          // async read through the Storage Engine
          ctx.storage()->file_service().ReadAsync(
              *file, uint64_t(page) * kPageSize, kPageSize,
              [&, page](Result<Buffer> data) {
                if (!data.ok()) return;
                Buffer bytes = std::move(data).value();
                // async compression (fast): dpk_compress on "dpu_asic";
                // the probe copies the input so the fallback still has it
                auto work = ctx.compute().Invoke(
                    ce::kKernelCompress, bytes, {},
                    {ce::ExecTarget::kDpuAsic});
                if (!work.ok()) {
                  // async compression (slow): fall back to "dpu_cpu"
                  work = ctx.compute().Invoke(
                      ce::kKernelCompress, std::move(bytes), {},
                      {ce::ExecTarget::kDpuCpu});
                }
                if (!work.ok()) return;
                (*work)->OnComplete([&, page](ce::WorkItem& item) {
                  if (!item.result().ok()) return;
                  // async send with TCP through the Network Engine
                  const Buffer& compressed = item.result().value();
                  Buffer framed;
                  framed.AppendU32(uint32_t(page));
                  framed.AppendU32(uint32_t(compressed.size()));
                  framed.Append(compressed.span());
                  reply_socket->Send(framed.span());
                  ++pages_done;
                });
              });
        }
      });
  if (!status.ok()) {
    std::fprintf(stderr, "sproc registration failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  Status invoked = server.compute().InvokeSproc("read_compress_send_pages");
  if (!invoked.ok()) {
    std::fprintf(stderr, "sproc invocation failed: %s\n",
                 invoked.ToString().c_str());
    return 1;
  }
  sim.Run();

  // Verify on the client: decompress and compare to the corpus.
  ByteReader r(received.span());
  size_t verified = 0;
  uint64_t compressed_bytes = 0;
  while (!r.AtEnd()) {
    uint32_t page, len;
    if (!r.ReadU32(&page) || !r.ReadU32(&len)) break;
    ByteSpan chunk;
    if (!r.ReadSpan(len, &chunk)) break;
    compressed_bytes += len;
    auto plain = kern::DeflateDecompress(chunk);
    if (!plain.ok() || plain->size() != kPageSize) break;
    if (std::memcmp(plain->data(), corpus.data() + page * kPageSize,
                    kPageSize) != 0) {
      break;
    }
    ++verified;
  }

  std::printf("\npages compressed+sent : %d/%d\n", pages_done, kPages);
  std::printf("pages verified        : %zu/%d\n", verified, kPages);
  std::printf("compression ratio     : %.2fx\n",
              double(corpus.size()) / double(compressed_bytes));
  std::printf("asic jobs             : %llu\n",
              (unsigned long long)server.compute()
                  .target_stats(ce::ExecTarget::kDpuAsic)
                  .jobs);
  std::printf("virtual time          : %.3f ms\n",
              double(sim.now()) / 1e6);
  return verified == kPages ? 0 : 1;
}
