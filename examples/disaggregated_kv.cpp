// Disaggregated key-value store over the DDS data path (paper Section 9:
// "We integrated DDS with FASTER (a KV store)").
//
// The storage server keeps a KV table as a file: a fixed-bucket hash
// index whose layout the DPU knows, so GET requests can be answered
// entirely on the DPU — the offload engine's UDF translates a key lookup
// into a file read of the right bucket. PUTs mutate the index and are
// routed to the host (the partial-offloading split).
//
//   ./build/examples/disaggregated_kv

#include <cstdio>

#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "core/storage/storage_engine.h"
#include "kern/dedup.h"
#include "kern/textgen.h"

using namespace dpdpu;  // NOLINT: example brevity

namespace {

// Fixed-size bucket KV layout inside one file:
//   bucket b at offset b * kBucketBytes
//   bucket: u32 used, u32 key_len, u32 value_len, key bytes, value bytes
constexpr uint32_t kBuckets = 4096;
constexpr uint32_t kBucketBytes = 512;

uint32_t BucketOf(std::string_view key) {
  return uint32_t(kern::Fingerprint64(ByteSpan(
             reinterpret_cast<const uint8_t*>(key.data()), key.size())) %
         kBuckets);
}

Buffer EncodeBucket(std::string_view key, std::string_view value) {
  Buffer b;
  b.AppendU32(1);
  b.AppendU32(uint32_t(key.size()));
  b.AppendU32(uint32_t(value.size()));
  b.Append(key);
  b.Append(value);
  b.resize(kBucketBytes);
  return b;
}

bool DecodeBucket(ByteSpan bucket, std::string* key, std::string* value) {
  ByteReader r(bucket);
  uint32_t used, klen, vlen;
  if (!r.ReadU32(&used) || used != 1) return false;
  if (!r.ReadU32(&klen) || !r.ReadU32(&vlen)) return false;
  ByteSpan k, v;
  if (!r.ReadSpan(klen, &k) || !r.ReadSpan(vlen, &v)) return false;
  key->assign(reinterpret_cast<const char*>(k.data()), k.size());
  value->assign(reinterpret_cast<const char*>(v.data()), v.size());
  return true;
}

}  // namespace

int main() {
  sim::Simulator sim;
  netsub::Network fabric(&sim);
  rt::PlatformOptions so, co;
  so.node = 1;
  co.node = 2;
  rt::Platform server(&sim, &fabric, so);
  rt::Platform app(&sim, &fabric, co);

  // Create the KV table file, pre-zeroed.
  auto file = server.fs().Create("kv.table");
  if (!file.ok()) return 1;
  Buffer zero(size_t{kBuckets} * kBucketBytes);
  if (!server.fs().Write(*file, 0, zero.span()).ok()) return 1;

  // GETs are offloadable; PUTs carry the requires-host flag and are
  // applied by a host handler (index mutation logic lives on the host).
  uint64_t host_puts = 0;
  server.storage().SetHostHandler(
      [&](se::RemoteRequest request, std::function<void(Buffer)> reply) {
        ++host_puts;
        // Host-side PUT: write the bucket through the DPU file service.
        server.storage().file_service().WriteAsync(
            request.file, request.offset, std::move(request.data),
            se::PersistMode::kDpuLogAck,
            [tag = request.tag, reply = std::move(reply)](Status s) {
              se::RemoteResponse resp;
              resp.tag = tag;
              resp.ok = s.ok();
              reply(se::EncodeRemoteResponse(resp));
            });
      });
  server.storage().Serve();

  se::RemoteStorageClient kv(&app.network(), 1, 9000);
  auto put = [&](const std::string& key, const std::string& value,
                 std::function<void(Status)> cb) {
    kv.Write(*file, uint64_t(BucketOf(key)) * kBucketBytes,
             EncodeBucket(key, value), std::move(cb),
             se::kRequestFlagRequiresHost);
  };
  auto get = [&](const std::string& key,
                 std::function<void(Result<std::string>)> cb) {
    kv.Read(*file, uint64_t(BucketOf(key)) * kBucketBytes, kBucketBytes,
            [key, cb = std::move(cb)](Result<Buffer> bucket) {
              if (!bucket.ok()) {
                cb(bucket.status());
                return;
              }
              std::string k, v;
              if (!DecodeBucket(bucket->span(), &k, &v) || k != key) {
                cb(Status::NotFound("key " + key));
                return;
              }
              cb(v);
            });
  };

  // Load phase: 300 keys (PUT -> host path).
  constexpr int kKeys = 300;
  int put_ok = 0;
  for (int i = 0; i < kKeys; ++i) {
    put("user:" + std::to_string(i), "profile-" + std::to_string(i * 17),
        [&](Status s) { put_ok += s.ok() ? 1 : 0; });
  }
  sim.Run();

  // Read phase: Zipfian GETs (offloaded to the DPU).
  rt::UtilizationProbe probe(&server.server());
  probe.Start();
  Pcg32 rng(3);
  ZipfGenerator zipf(kKeys, 0.99);
  constexpr int kGets = 2000;
  int get_ok = 0, get_bad = 0;
  for (int i = 0; i < kGets; ++i) {
    int id = int(zipf.Next(rng));
    get("user:" + std::to_string(id),
        [&, id](Result<std::string> value) {
          if (value.ok() &&
              *value == "profile-" + std::to_string(id * 17)) {
            ++get_ok;
          } else {
            ++get_bad;
          }
        });
  }
  sim.Run();
  probe.Stop();

  std::printf("DPDPU disaggregated KV store (DDS integration example)\n");
  std::printf("puts (host path)     : %d ok, host handled %llu\n", put_ok,
              (unsigned long long)host_puts);
  std::printf("gets (DPU offloaded) : %d ok, %d failed\n", get_ok, get_bad);
  std::printf("dpu cache hit rate   : %.1f%%\n",
              100.0 *
                  server.storage().file_service().cache_stats().HitRate());
  std::printf("host cores (reads)   : %.4f\n", probe.host_cores());
  std::printf("dpu cores (reads)    : %.4f\n", probe.dpu_cores());
  std::printf("requests offloaded   : %llu to DPU, %llu to host\n",
              (unsigned long long)server.storage().director()
                  .routed_to_dpu(),
              (unsigned long long)server.storage().director()
                  .routed_to_host());
  std::printf("virtual time         : %.3f ms\n", double(sim.now()) / 1e6);
  // Hash collisions make a handful of NotFound GETs legitimate.
  return (put_ok == kKeys && get_ok > kGets * 9 / 10) ? 0 : 1;
}
