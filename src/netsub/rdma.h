// RDMA verbs model: queue pairs, registered memory regions (real bytes),
// one-sided READ/WRITE executed entirely by the remote NIC (no remote CPU
// involvement — the property the paper's Section 6 builds on), two-sided
// SEND/RECV, and completion queues. Transport is assumed lossless (RoCE
// with PFC); loss injection applies to the TCP substrate only.
//
// Host-side issue costs (queue-pair locks, memory fences, doorbell MMIO
// stalls — the overheads Figure 7 attacks) are charged by the layer that
// posts the work: the Network Engine models both the native path and the
// DPU-offloaded ring path on top of these verbs.

#ifndef DPDPU_NETSUB_RDMA_H_
#define DPDPU_NETSUB_RDMA_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "netsub/network.h"
#include "sim/simulator.h"

namespace dpdpu::netsub {

using MrKey = uint32_t;

/// One completed work request.
struct RdmaCompletion {
  enum class OpType : uint8_t { kSend, kRecv, kRead, kWrite };
  OpType op;
  uint64_t wr_id = 0;
  size_t bytes = 0;
  /// False when the remote NIC rejected the op (bad key / out of bounds).
  bool ok = true;
};

/// Polled completion queue with an optional notification callback for
/// event-driven consumers.
class CompletionQueue {
 public:
  bool Poll(RdmaCompletion* out) {
    if (entries_.empty()) return false;
    DPDPU_SIM_ACCESS(race_tag_, "netsub::CompletionQueue", /*key=*/0,
                     sim::AccessKind::kCommutativeWrite);
    *out = entries_.front();
    entries_.pop_front();
    return true;
  }

  size_t pending() const { return entries_.size(); }

  /// Fires on every completion push (after it is queued).
  void SetNotify(std::function<void()> notify) { notify_ = std::move(notify); }

  void Push(RdmaCompletion c) {
    DPDPU_SIM_ACCESS(race_tag_, "netsub::CompletionQueue", /*key=*/0,
                     sim::AccessKind::kCommutativeWrite);
    entries_.push_back(c);
    if (notify_) notify_();
  }

 private:
  std::deque<RdmaCompletion> entries_;
  std::function<void()> notify_;
  /// Pushes arrive from independent wire events, polls from the
  /// consumer's drain; completions carry wr_ids, so queue order is
  /// protocol-irrelevant and the motion commutes.
  sim::RaceTag race_tag_;
};

class RdmaNic;

/// A reliable connected queue pair.
class QueuePair {
 public:
  /// One-sided read: remote[roff, roff+len) -> local[loff, ...).
  Status PostRead(uint64_t wr_id, MrKey local, size_t loff, MrKey remote_key,
                  size_t roff, size_t len);

  /// One-sided write: local[loff, loff+len) -> remote[roff, ...).
  Status PostWrite(uint64_t wr_id, MrKey local, size_t loff, MrKey remote_key,
                   size_t roff, size_t len);

  /// Two-sided send; matched against the peer's posted receives in order.
  Status PostSend(uint64_t wr_id, ByteSpan data);

  /// Posts a receive buffer slot.
  Status PostRecv(uint64_t wr_id, MrKey local, size_t loff, size_t capacity);

  CompletionQueue& cq() { return cq_; }
  uint32_t id() const { return id_; }
  bool connected() const { return remote_qp_ != 0 || remote_qp_set_; }

 private:
  friend class RdmaNic;
  friend void ConnectQueuePairs(QueuePair* a, QueuePair* b);

  struct PostedRecv {
    uint64_t wr_id;
    MrKey mr;
    size_t offset;
    size_t capacity;
  };

  QueuePair(RdmaNic* nic, uint32_t id) : nic_(nic), id_(id) {}

  RdmaNic* nic_;
  uint32_t id_;
  NodeId remote_node_ = 0;
  uint32_t remote_qp_ = 0;
  bool remote_qp_set_ = false;
  CompletionQueue cq_;
  std::deque<PostedRecv> posted_recvs_;
  struct UnmatchedSend {
    uint64_t wr_id;
    NodeId src;
    uint32_t src_qp;
    Buffer data;
  };
  std::deque<UnmatchedSend> unmatched_sends_;  // arrived before PostRecv
  /// Recv postings race send arrivals by design: a send that beats its
  /// recv parks in unmatched_sends_ and matches on the next PostRecv,
  /// so both orders converge — commutative.
  sim::RaceTag race_tag_;
};

/// Per-node RDMA-capable NIC with registered memory.
class RdmaNic {
 public:
  RdmaNic(sim::Simulator* sim, Network* network, NodeId node)
      : sim_(sim), network_(network), node_(node) {}

  RdmaNic(const RdmaNic&) = delete;
  RdmaNic& operator=(const RdmaNic&) = delete;

  NodeId node() const { return node_; }
  sim::Simulator* simulator() const { return sim_; }

  /// Registers `size` bytes of real memory; returns its protection key.
  MrKey RegisterMemory(size_t size);

  /// Direct application access to a registered region.
  Result<MutableByteSpan> Memory(MrKey key);

  /// Creates an unconnected queue pair (see ConnectQueuePairs).
  QueuePair* CreateQueuePair();

  /// Entry point for RDMA packets from the Network.
  void OnPacket(Packet packet);

  uint64_t ops_executed_remotely() const { return remote_ops_; }

 private:
  friend class QueuePair;
  friend void ConnectQueuePairs(QueuePair* a, QueuePair* b);

  void SendWire(NodeId dst, Buffer payload);
  void HandleWrite(uint32_t dst_qp, uint64_t wr_id, uint32_t rkey,
                   uint64_t roff, ByteSpan data, NodeId src,
                   uint32_t src_qp);
  void HandleRead(uint32_t dst_qp, uint64_t wr_id, uint32_t rkey,
                  uint64_t roff, uint32_t len, NodeId src, uint32_t src_qp,
                  uint64_t dest_loff, uint32_t dest_lkey);
  void HandleSend(uint32_t dst_qp, uint64_t wr_id, ByteSpan data, NodeId src,
                  uint32_t src_qp);

  sim::Simulator* sim_;
  Network* network_;
  NodeId node_;
  std::map<MrKey, Buffer> regions_;
  MrKey next_key_ = 1;
  std::map<uint32_t, std::unique_ptr<QueuePair>> qps_;
  uint32_t next_qp_id_ = 1;
  uint64_t remote_ops_ = 0;
  /// Remote-op handlers (HandleWrite/HandleRead/HandleSend) fire from
  /// independent wire deliveries; remote_ops_ accounting and per-QP
  /// match-queue motion commute across same-timestamp arrivals.
  sim::RaceTag race_tag_;
};

/// Wires two queue pairs into a reliable connection (out-of-band exchange
/// of QP numbers, as a connection manager would do).
void ConnectQueuePairs(QueuePair* a, QueuePair* b);

}  // namespace dpdpu::netsub

#endif  // DPDPU_NETSUB_RDMA_H_
