// MiniTCP: a from-scratch miniature TCP over the simulated fabric —
// sequenced byte streams, cumulative ACKs, sliding receive window,
// Jacobson RTT estimation with exponential-backoff retransmission, slow
// start + AIMD congestion control, and fast retransmit on 3 dup ACKs.
//
// This is the "protocol execution" half the paper's Network Engine
// offloads to the DPU (Section 6). The receive window is externally
// adjustable so the NE can co-design flow control across host and DPU
// ("we must co-design TCP on the DPU and host-DPU communication to
// reflect the signals from host applications").

#ifndef DPDPU_NETSUB_MINITCP_H_
#define DPDPU_NETSUB_MINITCP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/buffer.h"
#include "netsub/network.h"
#include "sim/simulator.h"

namespace dpdpu::netsub {

struct TcpConfig {
  /// Max payload per segment; default fits the 4 KB MTU minus headers.
  uint32_t mss = 4032;
  /// Advertised receive window.
  uint32_t rwnd_bytes = 1 << 20;
  uint32_t init_cwnd_segments = 10;
  sim::SimTime rto_min = 200 * sim::kMicrosecond;
  sim::SimTime rto_max = 100 * sim::kMillisecond;
  /// Connection abort cap: once retransmissions have made no forward
  /// progress (no new cumulative ACK) for this long, the connection
  /// aborts and fires the close callback, so platforms reap connections
  /// to dark nodes instead of retransmitting at rto_max forever. The RTO
  /// timer is clamped to the cap deadline during a stall, so the abort
  /// (and the re-steer it triggers in cluster clients) fires at exactly
  /// stall start + cap rather than overshooting by a backoff interval.
  /// 0 disables the cap.
  sim::SimTime max_retransmit_time = 10 * sim::kSecond;
};

struct TcpStats {
  uint64_t segments_sent = 0;
  uint64_t segments_received = 0;
  uint64_t bytes_delivered = 0;
  uint64_t retransmissions = 0;
  uint64_t fast_retransmits = 0;
  uint64_t timeouts = 0;
  uint64_t aborts = 0;
};

class TcpStack;

/// One direction-agnostic TCP connection.
class TcpConnection {
 public:
  using ReceiveCallback = std::function<void(ByteSpan)>;
  using CloseCallback = std::function<void()>;

  /// Queues bytes for transmission (copies into the send buffer).
  void Send(ByteSpan data);

  /// Sends FIN once the send buffer drains; peer's close callback fires.
  void Close();

  /// Hard reset: drops all buffered state, moves to kClosed, and fires
  /// the close callback. Used by the retransmission cap and available to
  /// platforms reaping connections to dead nodes.
  void Abort();

  /// In-order payload delivery.
  void SetReceiveCallback(ReceiveCallback cb) { on_receive_ = std::move(cb); }
  void SetCloseCallback(CloseCallback cb) { on_close_ = std::move(cb); }

  /// Flow-control co-design hook: the embedding layer (NE) shrinks the
  /// advertised window when the host-side ring backs up.
  void SetReceiveWindow(uint32_t bytes) {
    // Commutative: shrink/restore are hysteresis transitions; same-tick
    // order only shifts which window value rides the next ACK out.
    DPDPU_SIM_ACCESS(race_tag_, "TcpConnection", /*key=*/0,
                     sim::AccessKind::kCommutativeWrite);
    rwnd_advertised_ = bytes;
  }

  bool established() const { return state_ == State::kEstablished; }
  bool closed() const { return state_ == State::kClosed; }
  uint64_t cwnd() const { return cwnd_; }
  uint64_t bytes_unacked() const { return snd_nxt_ - snd_una_; }
  const TcpStats& stats() const { return stats_; }
  NodeId remote_node() const { return remote_node_; }

 private:
  friend class TcpStack;

  enum class State : uint8_t {
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait,
    kClosed,
  };

  TcpConnection(TcpStack* stack, NodeId remote_node, uint16_t local_port,
                uint16_t remote_port, const TcpConfig& config);

  void OnSegment(uint64_t seq, uint64_t ack, uint8_t flags, uint32_t wnd,
                 ByteSpan payload);
  void HandleAck(uint64_t ack, bool pure_ack);
  void Pump();
  void SendSegment(uint64_t seq, size_t len, bool retransmission);
  void SendControl(uint8_t flags, uint64_t seq);
  void SendAck();
  void ArmRtoTimer();
  void OnRtoFire(uint64_t generation);
  void EnterRecovery(bool timeout);
  void DeliverInOrder();
  void UpdateRtt(sim::SimTime sample);

  TcpStack* stack_;
  NodeId remote_node_;
  uint16_t local_port_;
  uint16_t remote_port_;
  TcpConfig config_;
  State state_ = State::kSynSent;

  // Send side. Sequence space: SYN consumes 1, data bytes follow.
  std::deque<uint8_t> send_buffer_;  // bytes [snd_una_, write_seq_)
  /// End seq of each queued app write. Pump never packs bytes from two
  /// writes into one segment and never cuts a segment at the window
  /// edge, so the segment-size sequence is a pure function of the
  /// message sizes — same-timestamp ordering of app writes vs ACK
  /// arrivals moves *when* segments leave, never how many.
  std::deque<uint64_t> message_ends_;
  uint64_t snd_una_ = 0;
  uint64_t snd_nxt_ = 0;
  uint64_t snd_max_ = 0;  // highest sequence ever sent (go-back-N rewinds
                          // snd_nxt_, but cumulative ACKs up to snd_max_
                          // remain valid)
  uint64_t write_seq_ = 0;
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = 1 << 30;
  uint32_t peer_wnd_ = 1 << 20;
  uint32_t dup_acks_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;

  // RTT estimation (Jacobson/Karels).
  bool rtt_valid_ = false;
  double srtt_ns_ = 0;
  double rttvar_ns_ = 0;
  sim::SimTime rto_ = 0;
  uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;
  // Retransmission-cap bookkeeping: virtual time of the first timeout of
  // the current stall (cleared whenever a cumulative ACK advances).
  bool stalled_ = false;
  sim::SimTime stall_started_at_ = 0;
  // Timestamp of the segment being timed (Karn's rule: one sample at a
  // time, never from retransmissions).
  uint64_t timed_seq_ = 0;
  sim::SimTime timed_sent_at_ = 0;
  bool timing_ = false;

  // Receive side. Out-of-order segments remember the event that
  // buffered them (simrace: buffer-before-deliver edge — the segment is
  // stashed by one OnSegment event and handed to the application by a
  // later one, which must be causally after it).
  struct OooSegment {
    Buffer data;
    sim::HbToken buffered;
  };
  uint64_t rcv_nxt_ = 0;
  std::map<uint64_t, OooSegment> out_of_order_;
  uint32_t rwnd_advertised_;
  bool peer_fin_received_ = false;
  uint64_t peer_fin_seq_ = 0;

  ReceiveCallback on_receive_;
  CloseCallback on_close_;
  TcpStats stats_;
  /// simrace identity: all connection state (sequence space, congestion
  /// window, receive reassembly) is one object. The connection is a
  /// message-processing state machine: Send/Close/OnSegment interleaving
  /// in either order at one timestamp are all legal protocol schedules
  /// producing the same byte stream, so those are commutative writes.
  /// Abort() is a plain write — its order against a same-time Send
  /// decides whether buffered data is silently dropped.
  sim::RaceTag race_tag_;
};

/// Per-node TCP endpoint: demultiplexes connections, owns their memory.
class TcpStack {
 public:
  using AcceptCallback = std::function<void(TcpConnection*)>;

  TcpStack(sim::Simulator* sim, Network* network, NodeId node,
           TcpConfig config = {});

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Accepts connections on `port`.
  void Listen(uint16_t port, AcceptCallback on_accept);

  /// Opens a connection; usable immediately (sends queue until the
  /// handshake completes).
  TcpConnection* Connect(NodeId remote, uint16_t port);

  /// Segment-level instrumentation: fires for every segment sent (`rx`
  /// false) or received (`rx` true) with its wire size. The Network
  /// Engine charges CPU-cost models here.
  using SegmentHook = std::function<void(size_t wire_bytes, bool rx)>;
  void SetSegmentHook(SegmentHook hook) { segment_hook_ = std::move(hook); }

  NodeId node() const { return node_; }
  sim::Simulator* simulator() const { return sim_; }
  const TcpConfig& config() const { return config_; }

  /// Entry point for TCP packets from the Network (wired by the owner).
  void OnPacket(Packet packet);

 private:
  friend class TcpConnection;

  struct ConnKey {
    NodeId remote_node;
    uint16_t remote_port;
    uint16_t local_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  void Transmit(TcpConnection* conn, uint8_t flags, uint64_t seq,
                uint64_t ack, uint32_t wnd, ByteSpan payload);

  sim::Simulator* sim_;
  Network* network_;
  NodeId node_;
  TcpConfig config_;
  std::map<uint16_t, AcceptCallback> listeners_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> connections_;
  uint16_t next_ephemeral_port_ = 49152;
  SegmentHook segment_hook_;
};

}  // namespace dpdpu::netsub

#endif  // DPDPU_NETSUB_MINITCP_H_
