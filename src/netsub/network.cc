#include "netsub/network.h"

#include <utility>

#include "common/logging.h"

namespace dpdpu::netsub {

void Network::Attach(NodeId node, hw::NicPort* nic, RxHandler handler) {
  DPDPU_CHECK(endpoints_.count(node) == 0);
  endpoints_[node] = Endpoint{nic, std::move(handler)};
}

void Network::Send(Packet packet) {
  auto src_it = endpoints_.find(packet.src);
  auto dst_it = endpoints_.find(packet.dst);
  if (src_it == endpoints_.end() || dst_it == endpoints_.end()) {
    ++dropped_;
    return;
  }
  if (!IsUp(packet.src) || !IsUp(packet.dst)) {
    ++dropped_;
    ++dropped_node_down_;
    return;
  }
  bool lost = loss_rate_ > 0.0 && loss_rng_.NextBool(loss_rate_);
  // Drop-placement choice point (ExploreDrops): decided at send time so
  // the decision sequence is a pure function of the schedule.
  if (explore_drop_window_ > 0 && packet.kind == explore_drop_kind_) {
    --explore_drop_window_;
    if (sim_->Choose("net.drop_frame", explore_drop_index_++, 2) == 1) {
      lost = true;
    }
  }
  size_t wire = packet.wire_size();
  // Serialize on the sender's NIC; deliver at the far end unless lost.
  src_it->second.nic->Transmit(
      wire, [this, packet = std::move(packet), lost, wire]() mutable {
        if (lost) {
          ++dropped_;
          return;
        }
        auto it = endpoints_.find(packet.dst);
        if (it == endpoints_.end()) {
          ++dropped_;
          return;
        }
        // The destination may have gone dark while the frame was in
        // flight; it is lost at the dead NIC.
        if (!IsUp(packet.dst)) {
          ++dropped_;
          ++dropped_node_down_;
          return;
        }
        ++delivered_;
        bytes_delivered_ += wire;
        it->second.rx_bytes += wire;
        if (sim::RaceChecker::Current() != nullptr) {
          uint64_t link = (uint64_t(packet.src) << 32) | packet.dst;
          link_chains_[link].Step();
        }
        it->second.handler(std::move(packet));
      });
}

void Network::SetNodeUp(NodeId node, bool up) {
  if (up) {
    down_.erase(node);
  } else {
    down_[node] = true;
  }
}

uint64_t Network::bytes_delivered_to(NodeId node) const {
  auto it = endpoints_.find(node);
  return it == endpoints_.end() ? 0 : it->second.rx_bytes;
}

}  // namespace dpdpu::netsub
