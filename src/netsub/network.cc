#include "netsub/network.h"

#include <utility>

#include "common/logging.h"

namespace dpdpu::netsub {

void Network::Attach(NodeId node, hw::NicPort* nic, RxHandler handler) {
  DPDPU_CHECK(endpoints_.count(node) == 0);
  endpoints_[node] = Endpoint{nic, std::move(handler)};
}

void Network::Send(Packet packet) {
  auto src_it = endpoints_.find(packet.src);
  auto dst_it = endpoints_.find(packet.dst);
  if (src_it == endpoints_.end() || dst_it == endpoints_.end()) {
    ++dropped_;
    return;
  }
  bool lost = loss_rate_ > 0.0 && loss_rng_.NextBool(loss_rate_);
  size_t wire = packet.wire_size();
  // Serialize on the sender's NIC; deliver at the far end unless lost.
  src_it->second.nic->Transmit(
      wire, [this, packet = std::move(packet), lost]() mutable {
        if (lost) {
          ++dropped_;
          return;
        }
        auto it = endpoints_.find(packet.dst);
        if (it == endpoints_.end()) {
          ++dropped_;
          return;
        }
        ++delivered_;
        it->second.handler(std::move(packet));
      });
}

}  // namespace dpdpu::netsub
