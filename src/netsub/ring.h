// Lock-free ring buffers — the host/DPU communication primitive at the
// center of the paper's Figure 7 ("replace the RDMA queues with lock-free
// ring buffers... DMA-accessible such that NE on the DPU can poll user
// requests") and of the Storage Engine's request path (Section 7:
// "contention between application threads ... is minimized with lock-free
// ring buffers in the user library").
//
// Two real, thread-safe implementations:
//  - SpscRing:  single-producer single-consumer, wait-free, no CAS.
//  - MpmcRing:  bounded multi-producer multi-consumer (Vyukov queue).
//
// Within the simulator these are driven from one thread, but the
// implementations are the genuine concurrent articles and are exercised
// with real threads in tests/netsub_test.cc.

#ifndef DPDPU_NETSUB_RING_H_
#define DPDPU_NETSUB_RING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "sim/simrace.h"

namespace dpdpu::netsub {

/// simrace hook: a ring hands data from the event that pushed it to the
/// event that pops it, so each successful push publishes a token the
/// matching pop consumes (publish-before-consume edge in the causal
/// DAG). Entirely inert unless a RaceChecker is Current(), i.e. a
/// single-threaded simulator event is executing — real-thread ring
/// users (tests/netsub_test.cc, micro_kernels) always observe nullptr
/// and never touch the queue, so the rings stay genuinely lock-free.
class RingHb {
 public:
  void OnPush() {
    if (sim::RaceChecker* rc = sim::RaceChecker::Current()) {
      tokens_.push_back(rc->Publish());
    }
  }
  void OnPop() {
    sim::RaceChecker* rc = sim::RaceChecker::Current();
    if (rc != nullptr && !tokens_.empty()) {
      rc->Consume(tokens_.front());
      tokens_.pop_front();
    }
  }

 private:
  std::deque<sim::HbToken> tokens_;
};

/// Wait-free single-producer/single-consumer bounded queue.
/// Capacity must be a power of two.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    DPDPU_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  /// Producer side. Returns false when full.
  bool TryPush(T value) {
    size_t head = head_.load(std::memory_order_relaxed);
    size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= capacity_) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    hb_.OnPush();
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    *out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    hb_.OnPop();
    return true;
  }

  /// Approximate occupancy (exact when called from either endpoint's
  /// thread between its own operations).
  size_t size_approx() const {
    size_t head = head_.load(std::memory_order_acquire);
    size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  const size_t capacity_;
  const size_t mask_;
  std::vector<T> slots_;
  RingHb hb_;
  alignas(64) std::atomic<size_t> head_{0};  // producer cursor
  alignas(64) std::atomic<size_t> tail_{0};  // consumer cursor
};

/// Bounded multi-producer/multi-consumer queue (Dmitry Vyukov's design):
/// per-slot sequence numbers; producers and consumers claim slots with a
/// single CAS each, no locks. Capacity must be a power of two.
template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    DPDPU_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    for (size_t i = 0; i < capacity; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  bool TryPush(T value) {
    size_t pos = enqueue_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      size_t seq = slot.seq.load(std::memory_order_acquire);
      intptr_t diff = intptr_t(seq) - intptr_t(pos);
      if (diff == 0) {
        if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(pos + 1, std::memory_order_release);
          hb_.OnPush();
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_.load(std::memory_order_relaxed);
      }
    }
  }

  bool TryPop(T* out) {
    size_t pos = dequeue_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      size_t seq = slot.seq.load(std::memory_order_acquire);
      intptr_t diff = intptr_t(seq) - intptr_t(pos + 1);
      if (diff == 0) {
        if (dequeue_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          *out = std::move(slot.value);
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          hb_.OnPop();
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_.load(std::memory_order_relaxed);
      }
    }
  }

  size_t size_approx() const {
    size_t e = enqueue_.load(std::memory_order_acquire);
    size_t d = dequeue_.load(std::memory_order_acquire);
    return e >= d ? e - d : 0;
  }

 private:
  struct Slot {
    std::atomic<size_t> seq;
    T value;
  };

  const size_t mask_;
  std::vector<Slot> slots_;
  RingHb hb_;
  alignas(64) std::atomic<size_t> enqueue_{0};
  alignas(64) std::atomic<size_t> dequeue_{0};
};

}  // namespace dpdpu::netsub

#endif  // DPDPU_NETSUB_RING_H_
