#include "netsub/minitcp.h"

#include <algorithm>

#include "common/logging.h"

namespace dpdpu::netsub {

namespace {

constexpr uint8_t kFlagSyn = 1;
constexpr uint8_t kFlagAck = 2;
constexpr uint8_t kFlagFin = 4;

constexpr sim::SimTime kInitialRto = 1 * sim::kMillisecond;

struct SegmentHeader {
  uint16_t src_port;
  uint16_t dst_port;
  uint64_t seq;
  uint64_t ack;
  uint8_t flags;
  uint32_t wnd;
  uint32_t len;
};

void EncodeHeader(const SegmentHeader& h, Buffer* out) {
  out->AppendU16(h.src_port);
  out->AppendU16(h.dst_port);
  out->AppendU64(h.seq);
  out->AppendU64(h.ack);
  out->AppendU8(h.flags);
  out->AppendU32(h.wnd);
  out->AppendU32(h.len);
}

bool DecodeHeader(ByteReader& r, SegmentHeader* h) {
  return r.ReadU16(&h->src_port) && r.ReadU16(&h->dst_port) &&
         r.ReadU64(&h->seq) && r.ReadU64(&h->ack) && r.ReadU8(&h->flags) &&
         r.ReadU32(&h->wnd) && r.ReadU32(&h->len);
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpConnection.
// ---------------------------------------------------------------------------

TcpConnection::TcpConnection(TcpStack* stack, NodeId remote_node,
                             uint16_t local_port, uint16_t remote_port,
                             const TcpConfig& config)
    : stack_(stack),
      remote_node_(remote_node),
      local_port_(local_port),
      remote_port_(remote_port),
      config_(config),
      rwnd_advertised_(config.rwnd_bytes) {
  cwnd_ = uint64_t(config_.init_cwnd_segments) * config_.mss;
  rto_ = kInitialRto;
  // Sequence space: the SYN occupies [0, 1); data bytes start at seq 1.
  snd_una_ = 0;
  snd_nxt_ = 1;
  snd_max_ = 1;
  write_seq_ = 1;
}

void TcpConnection::Send(ByteSpan data) {
  // Commutative: the connection is a message-processing state machine —
  // app writes and segment arrivals interleaving in either order at one
  // timestamp yield protocol-equivalent streams (the byte sequence and
  // cumulative-ACK invariants are order-free). Only Abort() is a plain
  // write: its relative order decides whether buffered bytes are lost.
  DPDPU_SIM_ACCESS(race_tag_, "TcpConnection", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  if (state_ == State::kClosed) return;  // aborted/closed: drop writes
  if (data.empty()) return;
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.end());
  write_seq_ += data.size();
  message_ends_.push_back(write_seq_);
  if (state_ == State::kEstablished) Pump();
}

void TcpConnection::Close() {
  DPDPU_SIM_ACCESS(race_tag_, "TcpConnection", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  fin_queued_ = true;
  if (state_ == State::kEstablished) Pump();
}

void TcpConnection::Pump() {
  if (state_ != State::kEstablished && state_ != State::kFinWait) return;
  uint64_t wnd = std::min<uint64_t>(cwnd_, peer_wnd_);
  while (snd_nxt_ < write_seq_ && (snd_nxt_ - snd_una_) < wnd) {
    uint64_t remaining_wnd = wnd - (snd_nxt_ - snd_una_);
    // Segment boundaries are message-framed and MSS-quantized: cut at
    // min(mss, end of the current app write), and hold a segment that
    // does not fit the window whole instead of sending a fragment.
    // Fragmenting at the window edge would make segment boundaries (and
    // per-segment CPU charges) depend on how much window happened to be
    // open — i.e. on same-timestamp tie order between app writes and
    // ACK arrivals. cwnd and the advertised window never drop below one
    // MSS, so an empty pipe can always fit the next segment.
    while (!message_ends_.empty() && message_ends_.front() <= snd_nxt_) {
      message_ends_.pop_front();
    }
    uint64_t boundary =
        message_ends_.empty() ? write_seq_ : message_ends_.front();
    size_t len = static_cast<size_t>(
        std::min<uint64_t>(uint64_t(config_.mss), boundary - snd_nxt_));
    if (len == 0 || len > remaining_wnd) break;
    SendSegment(snd_nxt_, len, /*retransmission=*/false);
    snd_nxt_ += len;
    if (snd_nxt_ > snd_max_) snd_max_ = snd_nxt_;
  }
  // FIN once all data is out (and within window).
  if (fin_queued_ && !fin_sent_ && snd_nxt_ == write_seq_) {
    SendControl(kFlagFin | kFlagAck, write_seq_);
    fin_sent_ = true;
    snd_nxt_ = write_seq_ + 1;
    if (snd_nxt_ > snd_max_) snd_max_ = snd_nxt_;
    state_ = State::kFinWait;
  }
  ArmRtoTimer();
}

void TcpConnection::SendSegment(uint64_t seq, size_t len,
                                bool retransmission) {
  // Data bytes [seq, seq+len) live in send_buffer_ starting at snd_una_
  // (acked bytes are popped on arrival of their ACK).
  DPDPU_CHECK(seq >= snd_una_);
  size_t offset = static_cast<size_t>(seq - snd_una_);
  DPDPU_CHECK(offset + len <= send_buffer_.size());
  Buffer payload;
  payload.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    payload.AppendU8(send_buffer_[offset + i]);
  }
  if (retransmission) {
    ++stats_.retransmissions;
    timing_ = false;  // Karn's rule
  } else if (!timing_) {
    timing_ = true;
    timed_seq_ = seq + len;
    timed_sent_at_ = stack_->simulator()->now();
  }
  stack_->Transmit(this, kFlagAck, seq, rcv_nxt_, rwnd_advertised_,
                   payload.span());
  ++stats_.segments_sent;
}

void TcpConnection::SendControl(uint8_t flags, uint64_t seq) {
  stack_->Transmit(this, flags, seq, rcv_nxt_, rwnd_advertised_, ByteSpan());
  ++stats_.segments_sent;
}

void TcpConnection::SendAck() { SendControl(kFlagAck, snd_nxt_); }

void TcpConnection::ArmRtoTimer() {
  bool outstanding = snd_nxt_ > snd_una_ || state_ == State::kSynSent ||
                     state_ == State::kSynReceived;
  if (!outstanding || rto_armed_) return;
  rto_armed_ = true;
  uint64_t generation = ++rto_generation_;
  sim::SimTime delay = rto_;
  if (stalled_ && config_.max_retransmit_time > 0) {
    // Deadline clamp: exponential backoff would overshoot the abort cap
    // by up to a full RTO interval, leaving the close callback (which
    // cluster clients use to re-steer) to fire long after
    // max_retransmit_time. Fire the timer at the cap deadline instead so
    // Abort() lands at exactly stall_start + max_retransmit_time.
    sim::SimTime deadline = stall_started_at_ + config_.max_retransmit_time;
    sim::SimTime now = stack_->simulator()->now();
    delay = std::min(delay, deadline > now ? deadline - now : 1);
  }
  // Connections are owned by the stack's map for the stack's lifetime
  // (never erased); the generation guard voids stale timers.
  // simlint:allow(R6): stack-owned connection, generation-guarded timer
  stack_->simulator()->Schedule(delay,
                                [this, generation] { OnRtoFire(generation); });
}

void TcpConnection::Abort() {
  DPDPU_SIM_ACCESS(race_tag_, "TcpConnection", /*key=*/0,
                   sim::AccessKind::kWrite);
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  ++stats_.aborts;
  send_buffer_.clear();
  message_ends_.clear();
  out_of_order_.clear();
  // Collapse the send window so late ACKs for reaped bytes are ignored
  // (HandleAck drops anything above snd_max_) and bytes_unacked() is 0.
  snd_nxt_ = snd_una_;
  snd_max_ = snd_una_;
  write_seq_ = snd_una_;
  // Invalidate any armed RTO so the pending event no-ops at fire time.
  ++rto_generation_;
  rto_armed_ = false;
  if (on_close_) on_close_();
}

void TcpConnection::OnRtoFire(uint64_t generation) {
  // The RTO timer is the fourth entry point into the connection state
  // machine (with Send/Close/OnSegment); simscope flagged it as the one
  // unannotated path. Commutative like the others: a timeout firing
  // beside a same-timestamp segment arrival resolves either way to a
  // protocol-equivalent stream (the generation guard voids stale fires,
  // and go-back-N re-sends are idempotent).
  DPDPU_SIM_ACCESS(race_tag_, "TcpConnection", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  if (generation != rto_generation_ || state_ == State::kClosed) return;
  rto_armed_ = false;
  bool outstanding = snd_nxt_ > snd_una_ || state_ == State::kSynSent ||
                     state_ == State::kSynReceived;
  if (!outstanding) return;

  ++stats_.timeouts;
  // Retransmission cap: abort once a stall (no cumulative-ACK progress)
  // has lasted max_retransmit_time — the peer is unreachable or dark.
  sim::SimTime now = stack_->simulator()->now();
  if (!stalled_) {
    stalled_ = true;
    stall_started_at_ = now;
  } else if (config_.max_retransmit_time > 0 &&
             now - stall_started_at_ >= config_.max_retransmit_time) {
    Abort();
    return;
  }
  EnterRecovery(/*timeout=*/true);
  rto_ = std::min(rto_ * 2, config_.rto_max);

  if (state_ == State::kSynSent) {
    SendControl(kFlagSyn, 0);
  } else if (state_ == State::kSynReceived) {
    SendControl(kFlagSyn | kFlagAck, 0);
  } else {
    // Go-back-N: rewind and let Pump re-send from the first unacked byte.
    snd_nxt_ = std::max(snd_una_, uint64_t(1));
    if (fin_sent_) {
      fin_sent_ = false;  // FIN will be re-sent after data drains
      if (state_ == State::kFinWait) state_ = State::kEstablished;
    }
    timing_ = false;
    uint64_t end = std::min<uint64_t>(write_seq_, snd_nxt_ + config_.mss);
    if (end > snd_nxt_) {
      // Retransmit one segment immediately; the rest follows ACK clocking.
      SendSegment(snd_nxt_, static_cast<size_t>(end - snd_nxt_),
                  /*retransmission=*/true);
      snd_nxt_ = end;
      if (snd_nxt_ > snd_max_) snd_max_ = snd_nxt_;
    }
    Pump();
  }
  ArmRtoTimer();
}

void TcpConnection::EnterRecovery(bool timeout) {
  uint64_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max<uint64_t>(flight / 2, 2ull * config_.mss);
  cwnd_ = timeout ? config_.mss : ssthresh_;
  dup_acks_ = 0;
}

void TcpConnection::UpdateRtt(sim::SimTime sample) {
  double s = double(sample);
  if (!rtt_valid_) {
    srtt_ns_ = s;
    rttvar_ns_ = s / 2;
    rtt_valid_ = true;
  } else {
    double err = s - srtt_ns_;
    srtt_ns_ += 0.125 * err;
    rttvar_ns_ += 0.25 * (std::abs(err) - rttvar_ns_);
  }
  sim::SimTime rto =
      static_cast<sim::SimTime>(srtt_ns_ + std::max(4 * rttvar_ns_, 1000.0));
  rto_ = std::clamp(rto, config_.rto_min, config_.rto_max);
}

void TcpConnection::HandleAck(uint64_t ack, bool pure_ack) {
  if (ack > snd_max_) return;  // acks data we never sent; ignore
  if (ack > snd_una_) {
    dup_acks_ = 0;
    stalled_ = false;  // forward progress resets the retransmission cap
    // Congestion control.
    if (cwnd_ < ssthresh_) {
      cwnd_ += config_.mss;  // slow start
    } else {
      cwnd_ += std::max<uint64_t>(1, uint64_t(config_.mss) * config_.mss /
                                         std::max<uint64_t>(cwnd_, 1));
    }
    // RTT sample (Karn-safe).
    if (timing_ && ack >= timed_seq_) {
      UpdateRtt(stack_->simulator()->now() - timed_sent_at_);
      timing_ = false;
    }
    // Pop acked bytes. Sequence 0 is the SYN; data starts at 1.
    uint64_t data_acked_from = std::max(snd_una_, uint64_t(1));
    uint64_t data_acked_to = std::min(ack, write_seq_);
    if (data_acked_to > data_acked_from) {
      size_t n = static_cast<size_t>(data_acked_to - data_acked_from);
      DPDPU_CHECK(n <= send_buffer_.size());
      send_buffer_.erase(send_buffer_.begin(), send_buffer_.begin() + n);
    }
    snd_una_ = ack;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    // FIN fully acked?
    if (fin_sent_ && ack == write_seq_ + 1 && state_ == State::kFinWait) {
      state_ = State::kClosed;
    }
    // Re-arm the timer for remaining in-flight data.
    rto_armed_ = false;
    ++rto_generation_;
    ArmRtoTimer();
  } else if (pure_ack && ack == snd_una_ && snd_nxt_ > snd_una_) {
    // RFC 5681 duplicate-ACK accounting: only data-free segments count.
    // A peer interleaving request ACKs with response data repeats the
    // same ack number on every data segment; counting those as dups
    // fired spurious fast retransmits whose number depended on how app
    // writes and arrivals happened to interleave.
    if (++dup_acks_ == 3) {
      ++stats_.fast_retransmits;
      EnterRecovery(/*timeout=*/false);
      // Retransmit the first unacked segment.
      uint64_t start = std::max(snd_una_, uint64_t(1));
      uint64_t end = std::min<uint64_t>(write_seq_, start + config_.mss);
      if (end > start) {
        SendSegment(start, static_cast<size_t>(end - start),
                    /*retransmission=*/true);
      } else if (fin_sent_) {
        SendControl(kFlagFin | kFlagAck, write_seq_);
      }
    }
  }
}

void TcpConnection::DeliverInOrder() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
      uint64_t seq = it->first;
      const Buffer& data = it->second.data;
      if (seq + data.size() <= rcv_nxt_) {
        it = out_of_order_.erase(it);  // fully duplicate
        progressed = true;
      } else if (seq <= rcv_nxt_) {
        // Buffer-before-deliver: the event that stashed this segment
        // happens before this delivering event.
        if (sim::RaceChecker* rc = sim::RaceChecker::Current()) {
          rc->Consume(it->second.buffered);
        }
        size_t skip = static_cast<size_t>(rcv_nxt_ - seq);
        ByteSpan fresh = data.span().subspan(skip);
        rcv_nxt_ += fresh.size();
        stats_.bytes_delivered += fresh.size();
        if (on_receive_) on_receive_(fresh);
        it = out_of_order_.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
  }
  if (peer_fin_received_ && peer_fin_seq_ == rcv_nxt_) {
    rcv_nxt_ = peer_fin_seq_ + 1;
    peer_fin_received_ = false;
    if (on_close_) on_close_();
  }
}

void TcpConnection::OnSegment(uint64_t seq, uint64_t ack, uint8_t flags,
                              uint32_t wnd, ByteSpan payload) {
  DPDPU_SIM_ACCESS(race_tag_, "TcpConnection", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  ++stats_.segments_received;

  // Handshake transitions.
  if (flags & kFlagSyn) {
    if (flags & kFlagAck) {
      // SYN-ACK (active side).
      if (state_ == State::kSynSent) {
        rcv_nxt_ = seq + 1;
        peer_wnd_ = wnd;
        HandleAck(ack, /*pure_ack=*/false);
        state_ = State::kEstablished;
        SendAck();
        Pump();
      } else {
        SendAck();  // duplicate SYN-ACK
      }
    } else {
      // SYN (passive side); TcpStack created us in kSynReceived.
      rcv_nxt_ = seq + 1;
      peer_wnd_ = wnd;
      if (state_ == State::kSynSent || state_ == State::kSynReceived) {
        state_ = State::kSynReceived;
        SendControl(kFlagSyn | kFlagAck, 0);
        ArmRtoTimer();
      } else {
        SendAck();  // duplicate SYN after establishment
      }
    }
    return;
  }

  if (flags & kFlagAck) {
    peer_wnd_ = wnd;
    if (state_ == State::kSynReceived && ack >= 1) {
      state_ = State::kEstablished;
    }
    HandleAck(ack, /*pure_ack=*/payload.empty() && !(flags & kFlagFin));
    if (state_ == State::kEstablished || state_ == State::kFinWait) Pump();
  }

  bool advanced = false;
  if (!payload.empty()) {
    if (seq + payload.size() > rcv_nxt_) {
      if (seq <= rcv_nxt_) {
        size_t skip = static_cast<size_t>(rcv_nxt_ - seq);
        ByteSpan fresh = payload.subspan(skip);
        rcv_nxt_ += fresh.size();
        stats_.bytes_delivered += fresh.size();
        if (on_receive_) on_receive_(fresh);
        DeliverInOrder();
      } else {
        sim::HbToken buffered;
        if (sim::RaceChecker* rc = sim::RaceChecker::Current()) {
          buffered = rc->Publish();
        }
        out_of_order_.emplace(
            seq, OooSegment{Buffer(payload.data(), payload.size()), buffered});
      }
    }
    advanced = true;
  }

  if (flags & kFlagFin) {
    peer_fin_received_ = true;
    peer_fin_seq_ = seq;
    DeliverInOrder();
    advanced = true;
  }

  if (advanced) SendAck();
}

// ---------------------------------------------------------------------------
// TcpStack.
// ---------------------------------------------------------------------------

TcpStack::TcpStack(sim::Simulator* sim, Network* network, NodeId node,
                   TcpConfig config)
    : sim_(sim), network_(network), node_(node), config_(config) {}

void TcpStack::Listen(uint16_t port, AcceptCallback on_accept) {
  listeners_[port] = std::move(on_accept);
}

TcpConnection* TcpStack::Connect(NodeId remote, uint16_t port) {
  uint16_t local_port = next_ephemeral_port_++;
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(this, remote, local_port, port, config_));
  TcpConnection* raw = conn.get();
  connections_[ConnKey{remote, port, local_port}] = std::move(conn);
  raw->state_ = TcpConnection::State::kSynSent;
  raw->SendControl(kFlagSyn, 0);
  raw->ArmRtoTimer();
  return raw;
}

void TcpStack::Transmit(TcpConnection* conn, uint8_t flags, uint64_t seq,
                        uint64_t ack, uint32_t wnd, ByteSpan payload) {
  SegmentHeader h;
  h.src_port = conn->local_port_;
  h.dst_port = conn->remote_port_;
  h.seq = seq;
  h.ack = ack;
  h.flags = flags;
  h.wnd = wnd;
  h.len = static_cast<uint32_t>(payload.size());

  Packet packet;
  packet.src = node_;
  packet.dst = conn->remote_node_;
  packet.kind = kPacketKindTcp;
  EncodeHeader(h, &packet.payload);
  packet.payload.Append(payload);
  if (segment_hook_) segment_hook_(packet.wire_size(), /*rx=*/false);
  network_->Send(std::move(packet));
}

void TcpStack::OnPacket(Packet packet) {
  ByteReader reader(packet.payload.span());
  SegmentHeader h;
  if (!DecodeHeader(reader, &h)) return;  // malformed; drop
  ByteSpan payload;
  if (!reader.ReadSpan(h.len, &payload)) return;
  if (segment_hook_) segment_hook_(packet.wire_size(), /*rx=*/true);

  ConnKey key{packet.src, h.src_port, h.dst_port};
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    // New connection: must be a SYN to a listening port.
    if (!(h.flags & kFlagSyn) || (h.flags & kFlagAck)) return;
    auto listener = listeners_.find(h.dst_port);
    if (listener == listeners_.end()) return;
    auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(
        this, packet.src, h.dst_port, h.src_port, config_));
    conn->state_ = TcpConnection::State::kSynReceived;
    TcpConnection* raw = conn.get();
    it = connections_.emplace(key, std::move(conn)).first;
    listener->second(raw);
  }
  it->second->OnSegment(h.seq, h.ack, h.flags, h.wnd, payload);
}

}  // namespace dpdpu::netsub
