// The datacenter fabric: connects node NICs, serializes frames at link
// bandwidth, applies propagation delay, and optionally drops frames with
// a deterministic seeded loss process (for protocol robustness tests).

#ifndef DPDPU_NETSUB_NETWORK_H_
#define DPDPU_NETSUB_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/buffer.h"
#include "common/rng.h"
#include "hw/link.h"
#include "sim/simulator.h"

namespace dpdpu::netsub {

using NodeId = uint32_t;

/// One frame on the wire. `kind` demultiplexes protocols at the receiver
/// (TCP segment, RDMA op, raw datagram).
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  uint16_t kind = 0;
  Buffer payload;

  size_t wire_size() const { return payload.size() + kHeaderBytes; }
  static constexpr size_t kHeaderBytes = 64;  // eth+ip+transport headers
};

/// Protocol identifiers for Packet::kind.
inline constexpr uint16_t kPacketKindDatagram = 0;
inline constexpr uint16_t kPacketKindTcp = 1;
inline constexpr uint16_t kPacketKindRdma = 2;

/// Star-topology fabric. Each node registers its transmit NIC and an rx
/// handler; Send() serializes on the sender's NIC, then delivers (or
/// drops).
class Network {
 public:
  using RxHandler = std::function<void(Packet)>;

  explicit Network(sim::Simulator* sim) : sim_(sim), loss_rng_(1) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches a node. `nic` must outlive the Network.
  void Attach(NodeId node, hw::NicPort* nic, RxHandler handler);

  /// True when `node` is attached.
  bool Has(NodeId node) const { return endpoints_.count(node) > 0; }

  /// Sends a packet; silently drops on unknown destination or loss.
  void Send(Packet packet);

  /// Fraction of frames dropped after serialization, deterministic in the
  /// seed. Applies to all flows (protocol tests re-seed per scenario).
  void SetLossRate(double rate, uint64_t seed = 1) {
    loss_rate_ = rate;
    loss_rng_ = Pcg32(seed);
  }

  /// Exploration: exposes the placement of frame drops as simulator
  /// choice points. Each of the next `window` frames of the given kind
  /// asks Simulator::Choose("net.drop_frame", <frame index>, 2);
  /// alternative 1 drops the frame after serialization, exactly where
  /// the seeded loss process would. With no chooser installed every
  /// choice is 0, so arming the window never perturbs a normal run.
  /// simex enumerates the 2^window placements (budget-bounded), which
  /// is how MiniTCP retransmit/abort timing gets explored.
  void ExploreDrops(uint32_t window, uint16_t kind = kPacketKindTcp) {
    explore_drop_window_ = window;
    explore_drop_kind_ = kind;
  }

  /// Administrative liveness: a down node's frames (both directions) are
  /// dropped at the fabric, modeling a machine that went dark. Nodes start
  /// up; the cluster layer flips this for hard failure injection.
  void SetNodeUp(NodeId node, bool up);
  bool IsUp(NodeId node) const { return down_.count(node) == 0; }

  uint64_t packets_delivered() const { return delivered_; }
  uint64_t packets_dropped() const { return dropped_; }
  uint64_t packets_dropped_node_down() const { return dropped_node_down_; }

  /// Payload+header bytes delivered to `node` (fleet fabric accounting).
  uint64_t bytes_delivered_to(NodeId node) const;
  uint64_t total_bytes_delivered() const { return bytes_delivered_; }

 private:
  struct Endpoint {
    hw::NicPort* nic;
    RxHandler handler;
    uint64_t rx_bytes = 0;
  };

  sim::Simulator* sim_;
  std::map<NodeId, Endpoint> endpoints_;
  std::map<NodeId, bool> down_;  // presence = down
  /// simrace: frames on one (src,dst) link deliver in serialization
  /// order; the chain turns that guarantee into happens-before edges
  /// between consecutive delivery events. Keyed (src<<32)|dst; only
  /// populated while a race checker is active.
  std::map<uint64_t, sim::HbChain> link_chains_;
  uint32_t explore_drop_window_ = 0;
  uint16_t explore_drop_kind_ = kPacketKindTcp;
  uint64_t explore_drop_index_ = 0;
  double loss_rate_ = 0.0;
  Pcg32 loss_rng_;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t dropped_node_down_ = 0;
  uint64_t bytes_delivered_ = 0;
};

}  // namespace dpdpu::netsub

#endif  // DPDPU_NETSUB_NETWORK_H_
