#include "netsub/rdma.h"

#include <cstring>

#include "common/logging.h"

namespace dpdpu::netsub {

namespace {

// Wire message types.
constexpr uint8_t kMsgWrite = 1;
constexpr uint8_t kMsgWriteAck = 2;
constexpr uint8_t kMsgReadReq = 3;
constexpr uint8_t kMsgReadResp = 4;
constexpr uint8_t kMsgSend = 5;
constexpr uint8_t kMsgSendAck = 6;
constexpr uint8_t kMsgNack = 7;

struct WireHeader {
  uint8_t type;
  uint32_t src_qp;
  uint32_t dst_qp;
  uint64_t wr_id;
  uint32_t rkey;
  uint64_t roff;
  uint32_t len;
  // For READ: requester-side placement, echoed in the response.
  uint32_t lkey;
  uint64_t loff;
  // For NACK: op being rejected.
  uint8_t nacked_op;
};

void Encode(const WireHeader& h, Buffer* out) {
  out->AppendU8(h.type);
  out->AppendU32(h.src_qp);
  out->AppendU32(h.dst_qp);
  out->AppendU64(h.wr_id);
  out->AppendU32(h.rkey);
  out->AppendU64(h.roff);
  out->AppendU32(h.len);
  out->AppendU32(h.lkey);
  out->AppendU64(h.loff);
  out->AppendU8(h.nacked_op);
}

bool Decode(ByteReader& r, WireHeader* h) {
  return r.ReadU8(&h->type) && r.ReadU32(&h->src_qp) &&
         r.ReadU32(&h->dst_qp) && r.ReadU64(&h->wr_id) &&
         r.ReadU32(&h->rkey) && r.ReadU64(&h->roff) && r.ReadU32(&h->len) &&
         r.ReadU32(&h->lkey) && r.ReadU64(&h->loff) &&
         r.ReadU8(&h->nacked_op);
}

}  // namespace

// ---------------------------------------------------------------------------
// QueuePair.
// ---------------------------------------------------------------------------

Status QueuePair::PostWrite(uint64_t wr_id, MrKey local, size_t loff,
                            MrKey remote_key, size_t roff, size_t len) {
  if (!remote_qp_set_) return Status::Unavailable("qp: not connected");
  DPDPU_ASSIGN_OR_RETURN(MutableByteSpan mem, nic_->Memory(local));
  if (loff + len > mem.size()) {
    return Status::OutOfRange("qp: local write span out of region");
  }
  WireHeader h{};
  h.type = kMsgWrite;
  h.src_qp = id_;
  h.dst_qp = remote_qp_;
  h.wr_id = wr_id;
  h.rkey = remote_key;
  h.roff = roff;
  h.len = static_cast<uint32_t>(len);
  Buffer payload;
  Encode(h, &payload);
  payload.Append(ByteSpan(mem.data() + loff, len));
  nic_->SendWire(remote_node_, std::move(payload));
  return Status::Ok();
}

Status QueuePair::PostRead(uint64_t wr_id, MrKey local, size_t loff,
                           MrKey remote_key, size_t roff, size_t len) {
  if (!remote_qp_set_) return Status::Unavailable("qp: not connected");
  DPDPU_ASSIGN_OR_RETURN(MutableByteSpan mem, nic_->Memory(local));
  if (loff + len > mem.size()) {
    return Status::OutOfRange("qp: local read span out of region");
  }
  WireHeader h{};
  h.type = kMsgReadReq;
  h.src_qp = id_;
  h.dst_qp = remote_qp_;
  h.wr_id = wr_id;
  h.rkey = remote_key;
  h.roff = roff;
  h.len = static_cast<uint32_t>(len);
  h.lkey = local;
  h.loff = loff;
  Buffer payload;
  Encode(h, &payload);
  nic_->SendWire(remote_node_, std::move(payload));
  return Status::Ok();
}

Status QueuePair::PostSend(uint64_t wr_id, ByteSpan data) {
  if (!remote_qp_set_) return Status::Unavailable("qp: not connected");
  WireHeader h{};
  h.type = kMsgSend;
  h.src_qp = id_;
  h.dst_qp = remote_qp_;
  h.wr_id = wr_id;
  h.len = static_cast<uint32_t>(data.size());
  Buffer payload;
  Encode(h, &payload);
  payload.Append(data);
  nic_->SendWire(remote_node_, std::move(payload));
  return Status::Ok();
}

Status QueuePair::PostRecv(uint64_t wr_id, MrKey local, size_t loff,
                           size_t capacity) {
  DPDPU_SIM_ACCESS(race_tag_, "QueuePair", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  DPDPU_ASSIGN_OR_RETURN(MutableByteSpan mem, nic_->Memory(local));
  if (loff + capacity > mem.size()) {
    return Status::OutOfRange("qp: recv span out of region");
  }
  posted_recvs_.push_back(PostedRecv{wr_id, local, loff, capacity});
  // Match any send that raced ahead of this recv.
  while (!unmatched_sends_.empty() && !posted_recvs_.empty()) {
    UnmatchedSend send = std::move(unmatched_sends_.front());
    unmatched_sends_.pop_front();
    nic_->HandleSend(id_, send.wr_id, send.data.span(), send.src,
                     send.src_qp);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// RdmaNic.
// ---------------------------------------------------------------------------

MrKey RdmaNic::RegisterMemory(size_t size) {
  MrKey key = next_key_++;
  regions_.emplace(key, Buffer(size));
  return key;
}

Result<MutableByteSpan> RdmaNic::Memory(MrKey key) {
  auto it = regions_.find(key);
  if (it == regions_.end()) return Status::NotFound("rdma: unknown mr key");
  return it->second.mutable_span();
}

QueuePair* RdmaNic::CreateQueuePair() {
  uint32_t id = next_qp_id_++;
  auto qp = std::unique_ptr<QueuePair>(new QueuePair(this, id));
  QueuePair* raw = qp.get();
  qps_.emplace(id, std::move(qp));
  return raw;
}

void RdmaNic::SendWire(NodeId dst, Buffer payload) {
  Packet packet;
  packet.src = node_;
  packet.dst = dst;
  packet.kind = kPacketKindRdma;
  packet.payload = std::move(payload);
  network_->Send(std::move(packet));
}

void RdmaNic::HandleWrite(uint32_t dst_qp, uint64_t wr_id, uint32_t rkey,
                          uint64_t roff, ByteSpan data, NodeId src,
                          uint32_t src_qp) {
  DPDPU_SIM_ACCESS(race_tag_, "RdmaNic", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  WireHeader ack{};
  ack.src_qp = dst_qp;
  ack.dst_qp = src_qp;
  ack.wr_id = wr_id;
  ack.len = static_cast<uint32_t>(data.size());

  auto it = regions_.find(rkey);
  if (it == regions_.end() || roff + data.size() > it->second.size()) {
    ack.type = kMsgNack;
    ack.nacked_op = static_cast<uint8_t>(RdmaCompletion::OpType::kWrite);
  } else {
    std::memcpy(it->second.data() + roff, data.data(), data.size());
    ++remote_ops_;
    ack.type = kMsgWriteAck;
  }
  Buffer payload;
  Encode(ack, &payload);
  SendWire(src, std::move(payload));
}

void RdmaNic::HandleRead(uint32_t dst_qp, uint64_t wr_id, uint32_t rkey,
                         uint64_t roff, uint32_t len, NodeId src,
                         uint32_t src_qp, uint64_t dest_loff,
                         uint32_t dest_lkey) {
  DPDPU_SIM_ACCESS(race_tag_, "RdmaNic", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  WireHeader resp{};
  resp.src_qp = dst_qp;
  resp.dst_qp = src_qp;
  resp.wr_id = wr_id;
  resp.len = len;
  resp.lkey = dest_lkey;
  resp.loff = dest_loff;

  auto it = regions_.find(rkey);
  Buffer payload;
  if (it == regions_.end() || roff + len > it->second.size()) {
    resp.type = kMsgNack;
    resp.nacked_op = static_cast<uint8_t>(RdmaCompletion::OpType::kRead);
    Encode(resp, &payload);
  } else {
    ++remote_ops_;
    resp.type = kMsgReadResp;
    Encode(resp, &payload);
    payload.Append(ByteSpan(it->second.data() + roff, len));
  }
  SendWire(src, std::move(payload));
}

void RdmaNic::HandleSend(uint32_t dst_qp, uint64_t wr_id, ByteSpan data,
                         NodeId src, uint32_t src_qp) {
  DPDPU_SIM_ACCESS(race_tag_, "RdmaNic", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  auto qp_it = qps_.find(dst_qp);
  if (qp_it == qps_.end()) return;
  QueuePair* qp = qp_it->second.get();

  if (qp->posted_recvs_.empty()) {
    qp->unmatched_sends_.push_back(QueuePair::UnmatchedSend{
        wr_id, src, src_qp, Buffer(data.data(), data.size())});
    return;
  }
  QueuePair::PostedRecv recv = qp->posted_recvs_.front();
  qp->posted_recvs_.pop_front();

  WireHeader ack{};
  ack.src_qp = dst_qp;
  ack.dst_qp = src_qp;
  ack.wr_id = wr_id;
  ack.len = static_cast<uint32_t>(data.size());

  auto mr = regions_.find(recv.mr);
  if (data.size() > recv.capacity || mr == regions_.end()) {
    ack.type = kMsgNack;
    ack.nacked_op = static_cast<uint8_t>(RdmaCompletion::OpType::kSend);
    qp->cq_.Push(RdmaCompletion{RdmaCompletion::OpType::kRecv, recv.wr_id, 0,
                                false});
  } else {
    std::memcpy(mr->second.data() + recv.offset, data.data(), data.size());
    ++remote_ops_;
    ack.type = kMsgSendAck;
    qp->cq_.Push(RdmaCompletion{RdmaCompletion::OpType::kRecv, recv.wr_id,
                                data.size(), true});
  }
  Buffer payload;
  Encode(ack, &payload);
  SendWire(src, std::move(payload));
}

void RdmaNic::OnPacket(Packet packet) {
  ByteReader reader(packet.payload.span());
  WireHeader h;
  if (!Decode(reader, &h)) return;
  ByteSpan data;
  if (!reader.ReadSpan(h.len, &data) &&
      (h.type == kMsgWrite || h.type == kMsgSend ||
       h.type == kMsgReadResp)) {
    return;  // malformed
  }

  switch (h.type) {
    case kMsgWrite:
      HandleWrite(h.dst_qp, h.wr_id, h.rkey, h.roff, data, packet.src,
                  h.src_qp);
      break;
    case kMsgReadReq:
      HandleRead(h.dst_qp, h.wr_id, h.rkey, h.roff, h.len, packet.src,
                 h.src_qp, h.loff, h.lkey);
      break;
    case kMsgSend:
      HandleSend(h.dst_qp, h.wr_id, data, packet.src, h.src_qp);
      break;
    case kMsgWriteAck:
    case kMsgSendAck: {
      auto it = qps_.find(h.dst_qp);
      if (it == qps_.end()) return;
      it->second->cq_.Push(RdmaCompletion{
          h.type == kMsgWriteAck ? RdmaCompletion::OpType::kWrite
                                 : RdmaCompletion::OpType::kSend,
          h.wr_id, h.len, true});
      break;
    }
    case kMsgReadResp: {
      auto it = qps_.find(h.dst_qp);
      if (it == qps_.end()) return;
      auto mr = regions_.find(h.lkey);
      bool ok = mr != regions_.end() &&
                h.loff + data.size() <= mr->second.size();
      if (ok) {
        std::memcpy(mr->second.data() + h.loff, data.data(), data.size());
      }
      it->second->cq_.Push(RdmaCompletion{RdmaCompletion::OpType::kRead,
                                          h.wr_id, data.size(), ok});
      break;
    }
    case kMsgNack: {
      auto it = qps_.find(h.dst_qp);
      if (it == qps_.end()) return;
      it->second->cq_.Push(RdmaCompletion{
          static_cast<RdmaCompletion::OpType>(h.nacked_op), h.wr_id, 0,
          false});
      break;
    }
    default:
      break;
  }
}

void ConnectQueuePairs(QueuePair* a, QueuePair* b) {
  a->remote_node_ = b->nic_->node();
  a->remote_qp_ = b->id();
  a->remote_qp_set_ = true;
  b->remote_node_ = a->nic_->node();
  b->remote_qp_ = a->id();
  b->remote_qp_set_ = true;
}

}  // namespace dpdpu::netsub
