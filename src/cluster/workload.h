// Fleet workload drivers: a per-client request issuer that routes
// through the shard router (with replica re-steer on timeout, for hard
// node failures), plus open-loop (Poisson arrival) and closed-loop
// (fixed in-flight) generators over the disaggregated_kv / log_replay
// request shapes — 8 KB-class reads and replicated writes against each
// storage server's shard file.

#ifndef DPDPU_CLUSTER_WORKLOAD_H_
#define DPDPU_CLUSTER_WORKLOAD_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/fleet.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/storage/storage_engine.h"

namespace dpdpu::cluster {

struct WorkloadOptions {
  /// Fraction of operations that are reads; writes replicate to every
  /// live server in the key's preference list.
  double read_fraction = 1.0;
  /// Fraction of requests the DPU may serve; the rest carry the
  /// requires-host flag (the partial-offload split).
  double offload_fraction = 1.0;
  uint32_t request_bytes = 8192;
  /// Keys are ids in [0, keyspace); key k maps to shard-file offset
  /// k * request_bytes, so keyspace * request_bytes must fit the shard.
  uint64_t keyspace = 4000;
  /// 0 = uniform key popularity; otherwise Zipfian skew theta.
  double zipf_theta = 0.0;
  uint64_t seed = 1;
  /// When > 0, an unanswered read re-steers to the next live replica
  /// after this long, and an unanswered per-replica write is retried
  /// (hard-failure recovery). 0 disables timeouts — right for graceful
  /// failover, where in-flight requests complete. Independent of the
  /// timeout, a connection abort (MiniTCP's retransmission cap firing
  /// the close callback) fails the RPC immediately, so failover latency
  /// is bounded by TcpConfig::max_retransmit_time even with timeouts
  /// off.
  sim::SimTime retry_timeout = 0;
  uint32_t max_attempts = 3;
};

/// One client node's view of the fleet: lazily opens a remote-storage
/// connection per storage server and issues routed operations.
class FleetClient {
 public:
  struct Stats {
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;     // exhausted replicas/attempts
    uint64_t resteered = 0;  // re-steers to a replica (timeout, error,
                             // connection abort, or stale version)
    /// Completed reads whose payload content was older than the version
    /// committed before the read started — the stale-read bug made
    /// measurable by stamped payloads.
    uint64_t stale_reads = 0;
    /// Reads re-steered because the replica's served version was behind
    /// the committed one (consistency layer on).
    uint64_t stale_replica_resteers = 0;
    /// Background read-repairs this client completed.
    uint64_t read_repairs = 0;
    uint64_t write_retries = 0;  // per-replica retries after a timeout/abort
    uint64_t write_giveups = 0;  // replicas abandoned after max_attempts
  };

  FleetClient(Fleet* fleet, uint32_t client_index, WorkloadOptions options);

  /// Issues one operation (key, read/write, and offloadability drawn
  /// from this client's deterministic RNG). `done` fires when the
  /// operation completes or is abandoned.
  void IssueOne(std::function<void()> done = nullptr);

  /// Deterministic targeted operations for tests and benches: no RNG
  /// draws, offloadable flags.
  void IssueRead(uint64_t key, std::function<void()> done = nullptr);
  void IssueWrite(uint64_t key, std::function<void()> done = nullptr);

  /// Like IssueRead/IssueWrite but reporting the op's outcome; simex
  /// scenarios key per-op ground truth (which write versions were acked
  /// to the caller) on it.
  void IssueReadChecked(uint64_t key, std::function<void(bool ok)> done);
  void IssueWriteChecked(uint64_t key, std::function<void(bool ok)> done);

  const Stats& stats() const { return stats_; }
  const Histogram& latency_ns() const { return latency_; }
  const WorkloadOptions& options() const { return options_; }
  Fleet* fleet() const { return fleet_; }

 private:
  struct Op;

  se::RemoteStorageClient* ClientFor(netsub::NodeId node);
  void Issue(uint64_t key, bool is_read, uint8_t flags,
             std::function<void()> done,
             std::function<void(bool)> done_ok = nullptr);
  void AttemptRead(std::shared_ptr<Op> op);
  void OnReadReply(std::shared_ptr<Op> op, netsub::NodeId server,
                   Result<Buffer> data, uint64_t version);
  void CompleteRead(std::shared_ptr<Op> op, Buffer data, uint64_t version);
  bool HasUntriedReadReplica(const std::shared_ptr<Op>& op) const;
  void RepairReplica(netsub::NodeId node, uint64_t offset,
                     uint64_t version, const Buffer& data);
  void StartWrite(std::shared_ptr<Op> op);
  void AttemptWriteSub(std::shared_ptr<Op> op, size_t sub_index);
  void SettleWriteSub(std::shared_ptr<Op> op, size_t sub_index, bool acked);
  void GiveUpWriteSub(std::shared_ptr<Op> op, size_t sub_index);
  void FinishWrite(std::shared_ptr<Op> op);
  void Finish(std::shared_ptr<Op> op, bool ok);

  Fleet* fleet_;
  uint32_t client_index_;
  WorkloadOptions options_;
  /// Requests issued so far; keys each request's counter-derived RNG.
  uint64_t issue_counter_ = 0;
  ZipfGenerator zipf_;
  uint64_t stamp_seed_;
  std::map<netsub::NodeId, std::unique_ptr<se::RemoteStorageClient>>
      connections_;
  Stats stats_;
  Histogram latency_;
  /// Client-side accounting (stats_, latency_, issue_counter_) is
  /// written from every RPC continuation; all accesses are commutative
  /// — counter bumps and histogram adds — so unordered same-timestamp
  /// completions converge. The per-op protocol fields (Op::generation
  /// and friends) are NOT under this tag: their interleavings are
  /// adjudicated by the generation guard, see the allowlist.
  sim::RaceTag race_tag_;
};

/// Open-loop driver: Poisson arrivals at `rate_per_sec` spread uniformly
/// over the clients, for a fixed window. Arrival times are drawn up
/// front (deterministic in the seed); routing happens at issue time, so
/// mid-window failures re-steer the remaining arrivals.
class OpenLoopDriver {
 public:
  OpenLoopDriver(std::vector<FleetClient*> clients, double rate_per_sec,
                 uint64_t seed);

  /// Schedules all arrivals in [now, now + window).
  void Run(sim::SimTime window);

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }

 private:
  std::vector<FleetClient*> clients_;
  double rate_;
  Pcg32 rng_;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
};

/// Closed-loop driver: each client keeps `inflight_per_client`
/// operations outstanding until `total_ops` have been issued.
class ClosedLoopDriver {
 public:
  ClosedLoopDriver(std::vector<FleetClient*> clients,
                   uint32_t inflight_per_client, uint64_t total_ops);

  void Start();

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }

 private:
  void IssueNext(FleetClient* client);

  std::vector<FleetClient*> clients_;
  uint32_t inflight_per_client_;
  uint64_t total_ops_;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
};

/// Merges every client's latency histogram (Histogram::Merge) and sums
/// their counters — the fleet-level view a single server cannot give.
struct FleetWorkloadSummary {
  FleetClient::Stats totals;
  Histogram latency_ns;
};
FleetWorkloadSummary Summarize(const std::vector<FleetClient*>& clients);

}  // namespace dpdpu::cluster

#endif  // DPDPU_CLUSTER_WORKLOAD_H_
