#include "cluster/simex_faults.h"

#include "common/logging.h"

namespace dpdpu::cluster {

const ArmedFault& FaultSchedule::Arm(const FaultScheduleOptions& options) {
  DPDPU_CHECK(options.node < fleet_->storage_servers());
  DPDPU_CHECK(options.allow_no_fail || !options.fail_times.empty());
  sim::Simulator* sim = fleet_->simulator();

  ArmedFault armed;
  armed.node = options.node;

  const uint32_t skip = options.allow_no_fail ? 1 : 0;
  const uint32_t fail_n = uint32_t(options.fail_times.size()) + skip;
  uint32_t pick = sim->Choose("fault.fail_time", options.node, fail_n);
  if (pick >= skip && !options.fail_times.empty()) {
    armed.did_fail = true;
    armed.fail_time = options.fail_times[pick - skip];
    Fleet* fleet = fleet_;
    uint32_t node = options.node;
    FailMode mode = options.mode;
    sim->ScheduleAt(armed.fail_time,
                    [fleet, node, mode] { fleet->FailStorageNode(node, mode); });

    if (!options.recover_after.empty()) {
      const uint32_t rskip = options.allow_no_recover ? 1 : 0;
      const uint32_t recover_n =
          uint32_t(options.recover_after.size()) + rskip;
      uint32_t rpick =
          sim->Choose("fault.recover_after", options.node, recover_n);
      if (rpick >= rskip) {
        armed.did_recover = true;
        armed.recover_time =
            armed.fail_time + options.recover_after[rpick - rskip];
        sim->ScheduleAt(armed.recover_time,
                        [fleet, node] { fleet->RecoverStorageNode(node); });
      }
    }
  }

  armed_.push_back(armed);
  return armed_.back();
}

}  // namespace dpdpu::cluster
