// Content-verifiable write payloads for the fleet workload. Every write
// carries a 32-byte header naming (key, version, client seed) followed by
// a deterministic pseudo-random body derived from the header, so a read
// can prove *which* write it observed: a recovered replica serving
// pre-failure bytes is detectable by content, not just by out-of-band
// version metadata. This is the repro instrument for the stale-read bug —
// all-zero payloads made staleness invisible.

#ifndef DPDPU_CLUSTER_PAYLOAD_STAMP_H_
#define DPDPU_CLUSTER_PAYLOAD_STAMP_H_

#include <cstdint>
#include <optional>

#include "common/buffer.h"

namespace dpdpu::cluster {

inline constexpr uint64_t kPayloadStampMagic = 0x3154535550445044ull;  // "DPDPUST1"
inline constexpr size_t kPayloadStampBytes = 32;

struct PayloadStamp {
  uint64_t key = 0;
  uint64_t version = 0;
  uint64_t seed = 0;
};

/// Builds a `bytes`-sized payload: magic + stamp header, then a splitmix
/// body seeded from the stamp. `bytes` must be >= kPayloadStampBytes.
Buffer MakeStampedPayload(size_t bytes, const PayloadStamp& stamp);

/// Parses the header; nullopt when the buffer is too short or the magic
/// does not match (e.g. a never-written all-zero shard block).
std::optional<PayloadStamp> ParsePayloadStamp(ByteSpan data);

/// Full verification: header parses and every body byte matches the
/// deterministic fill for that stamp. Detects torn or corrupted blocks.
bool VerifyStampedPayload(ByteSpan data);

}  // namespace dpdpu::cluster

#endif  // DPDPU_CLUSTER_PAYLOAD_STAMP_H_
