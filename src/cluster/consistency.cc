#include "cluster/consistency.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/fleet.h"
#include "common/logging.h"
#include "core/storage/storage_engine.h"

namespace dpdpu::cluster {

// ---------------------------------------------------------------------------
// Version authority.
// ---------------------------------------------------------------------------

ConsistencyManager::ConsistencyManager(Fleet* fleet,
                                       ConsistencyOptions options)
    : fleet_(fleet), options_(options) {}

uint64_t ConsistencyManager::NextVersion(uint64_t offset, uint64_t key,
                                         uint32_t length) {
  // A plain write: which of two same-timestamp coordinators draws the
  // higher version decides whose payload wins, so unordered draws on
  // one block are a genuine race.
  DPDPU_SIM_ACCESS(race_tag_, "ConsistencyManager",
                   sim::RaceKey(kRaceSaltNextVersion, offset),
                   sim::AccessKind::kWrite);
  AuthorityEntry& entry = authority_[offset];
  entry.key = key;
  entry.length = length;
  ++stats_.versions_issued;
  return ++entry.next_version;
}

void ConsistencyManager::Commit(uint64_t offset, uint64_t version) {
  DPDPU_SIM_ACCESS(race_tag_, "ConsistencyManager",
                   sim::RaceKey(kRaceSaltCommitted, offset),
                   sim::AccessKind::kCommutativeWrite);
  AuthorityEntry& entry = authority_[offset];
  if (version > entry.next_version) ++stats_.phantom_commits;
  if (version > entry.committed) {
    entry.committed = version;
    ++stats_.commits;
  }
}

uint64_t ConsistencyManager::CommittedVersion(uint64_t offset) const {
  DPDPU_SIM_ACCESS(race_tag_, "ConsistencyManager",
                   sim::RaceKey(kRaceSaltCommitted, offset),
                   sim::AccessKind::kRead);
  auto it = authority_.find(offset);
  return it == authority_.end() ? 0 : it->second.committed;
}

// ---------------------------------------------------------------------------
// Hinted handoff.
// ---------------------------------------------------------------------------

void ConsistencyManager::QueueHint(uint32_t node_index, uint64_t offset,
                                   uint64_t version, Buffer data) {
  // Keyed per (node, block) and commutative: the coalesce below keeps
  // the max version regardless of arrival order, so two unordered hints
  // for one block converge. Cross-block arrival order only matters for
  // *which* block is rejected when the queue is at capacity — inherent
  // bounded-queue nondeterminism the diff fallback absorbs, deliberately
  // not reported as a race.
  DPDPU_SIM_ACCESS(race_tag_, "ConsistencyManager",
                   sim::RaceKey(kRaceSaltHints, sim::RaceKey(node_index, offset)),
                   sim::AccessKind::kCommutativeWrite);
  std::deque<Hint>& queue = hints_[node_index];
  // Coalesce per block: only the newest version matters for replay, so
  // a re-written block updates its hint in place. This bounds the queue
  // (and the catch-up transfer) by the number of distinct blocks
  // written while the node was down, not the write count.
  for (Hint& hint : queue) {
    if (hint.offset == offset) {
      if (version >= hint.version) {
        hint.version = version;
        hint.data = std::move(data);
      }
      return;
    }
  }
  if (queue.size() >= options_.max_hints_per_node) {
    // Queue abandoned: recovery will diff the version maps instead.
    ++stats_.hints_dropped;
    overflowed_.insert(node_index);
    return;
  }
  queue.push_back(Hint{offset, version, std::move(data)});
  ++stats_.hints_queued;
}

size_t ConsistencyManager::hints_pending(uint32_t node_index) const {
  auto it = hints_.find(node_index);
  return it == hints_.end() ? 0 : it->second.size();
}

bool ConsistencyManager::hint_overflowed(uint32_t node_index) const {
  return overflowed_.count(node_index) != 0;
}

// ---------------------------------------------------------------------------
// Read-repair dedup.
// ---------------------------------------------------------------------------

bool ConsistencyManager::BeginRepair(uint32_t node_index, uint64_t offset) {
  DPDPU_SIM_ACCESS(race_tag_, "ConsistencyManager",
                   sim::RaceKey(kRaceSaltRepairs, sim::RaceKey(node_index, offset)),
                   sim::AccessKind::kWrite);
  return active_repairs_.insert({node_index, offset}).second;
}

void ConsistencyManager::EndRepair(uint32_t node_index, uint64_t offset) {
  DPDPU_SIM_ACCESS(race_tag_, "ConsistencyManager",
                   sim::RaceKey(kRaceSaltRepairs, sim::RaceKey(node_index, offset)),
                   sim::AccessKind::kWrite);
  active_repairs_.erase({node_index, offset});
}

// ---------------------------------------------------------------------------
// Catch-up transfer.
// ---------------------------------------------------------------------------

// One recovery in flight: replays hints (or walks the version-map diff)
// one block at a time — sequential on purpose, for a deterministic and
// easily-audited transfer order. Connections are opened from client node
// 0's Network Engine, so catch-up traffic crosses the simulated fabric
// and is charged like any other remote storage traffic.
struct CatchUpJob : std::enable_shared_from_this<CatchUpJob> {
  struct DiffItem {
    uint64_t offset = 0;
    uint64_t key = 0;
    uint32_t length = 0;
    uint64_t committed = 0;
  };

  ConsistencyManager* cm = nullptr;
  Fleet* fleet = nullptr;
  uint32_t node_index = 0;
  uint64_t epoch = 0;  // recover_epoch at start; a bump means re-failure
  std::function<void()> done;

  std::deque<ConsistencyManager::Hint> hints;
  std::deque<DiffItem> diff;
  // Quiescence state: at Finish the job re-diffs the authority against
  // the node until a pass copies nothing — catching hints that arrived
  // (or were handed back by an aborted transfer) while this one ran.
  uint32_t verify_rounds = 0;
  uint64_t copied_at_round_start = 0;
  static constexpr uint32_t kMaxVerifyRounds = 8;

  std::unique_ptr<se::RemoteStorageClient> to_node;
  std::map<netsub::NodeId, std::unique_ptr<se::RemoteStorageClient>>
      donors;

  se::RemoteStorageClient* NodeClient() {
    if (!to_node) {
      to_node = std::make_unique<se::RemoteStorageClient>(
          &fleet->client(0).network(), fleet->storage_node_id(node_index),
          fleet->spec().storage_template.storage.listen_port);
    }
    return to_node.get();
  }

  se::RemoteStorageClient* DonorClient(netsub::NodeId donor) {
    auto it = donors.find(donor);
    if (it == donors.end()) {
      it = donors
               .emplace(donor,
                        std::make_unique<se::RemoteStorageClient>(
                            &fleet->client(0).network(), donor,
                            fleet->spec()
                                .storage_template.storage.listen_port))
               .first;
    }
    return it->second.get();
  }

  void Start() {
    if (hints.empty() && diff.empty()) {
      Finish();
      return;
    }
    if (!hints.empty()) {
      ReplayNextHint();
    } else {
      CopyNextDiff();
    }
  }

  bool Aborted() const {
    return fleet->recover_epoch(node_index) != epoch;
  }

  uint64_t step_ = 0;  // bumped when the in-flight RPC completes/times out

  // Watchdog for the RPC about to be issued: a request TCP has fully
  // acked before its target goes dark never stalls the connection, so
  // the retransmission cap cannot fire and no response ever arrives.
  // Without this bound the transfer wedges forever and its unreplayed
  // hints leak with it. On expiry the wedged connections are dropped
  // and `resume` continues the job (which re-checks Aborted()).
  uint64_t ArmWatchdog(std::function<void()> resume) {
    uint64_t seq = ++step_;
    fleet->simulator()->Schedule(
        cm->options_.catchup_rpc_timeout,
        [self = shared_from_this(), seq, resume = std::move(resume)] {
          if (self->step_ != seq) return;  // RPC finished in time
          ++self->step_;
          ++self->cm->stats_.catchup_rpc_timeouts;
          self->to_node.reset();
          self->donors.clear();
          resume();
        });
    return seq;
  }

  // False when the watchdog already gave up on this RPC: the late
  // completion (or failure) must not double-advance the job.
  bool StepDone(uint64_t seq) {
    if (step_ != seq) return false;
    ++step_;
    return true;
  }

  // The node went dark again mid-transfer. Hand the unreplayed hints
  // back so the next recovery replays them (they were counted queued
  // once; returning them keeps the conservation law exact), and stand
  // down — the matching done-callback is epoch-guarded in Fleet and
  // will not re-admit. Remaining diff items need no hand-back: the next
  // recovery's verification pass recomputes them from the authority.
  void Abort() {
    std::deque<ConsistencyManager::Hint>& queue = cm->hints_[node_index];
    while (!hints.empty()) {
      queue.push_front(std::move(hints.back()));
      hints.pop_back();
    }
    ++cm->stats_.catchups_aborted;
    if (done) done();
  }

  void ReplayNextHint() {
    if (Aborted()) {
      Abort();
      return;
    }
    if (hints.empty()) {
      Finish();
      return;
    }
    ConsistencyManager::Hint hint = std::move(hints.front());
    hints.pop_front();
    ++cm->stats_.hints_replayed;
    cm->stats_.hint_bytes += hint.data.size();
    uint64_t seq = ArmWatchdog(
        [self = shared_from_this()] { self->ReplayNextHint(); });
    NodeClient()->WriteVersioned(
        fleet->shard_file(node_index), hint.offset, hint.version,
        std::move(hint.data), [self = shared_from_this(), seq](Status s) {
          if (!self->StepDone(seq)) return;
          if (!s.ok()) ++self->cm->stats_.catchup_write_failures;
          self->ReplayNextHint();
        });
  }

  void CopyNextDiff() {
    if (Aborted()) {
      Abort();
      return;
    }
    if (diff.empty()) {
      Finish();
      return;
    }
    DiffItem item = diff.front();
    diff.pop_front();
    // Donor candidates: live, readable replicas of the block's key.
    std::vector<netsub::NodeId> candidates;
    netsub::NodeId self_id = fleet->storage_node_id(node_index);
    for (netsub::NodeId server :
         fleet->router().PreferenceList(HashU64(item.key))) {
      if (server == self_id) continue;
      if (!fleet->router().IsReadable(server)) continue;
      candidates.push_back(server);
    }
    TryDonor(item, std::move(candidates), 0);
  }

  void TryDonor(DiffItem item, std::vector<netsub::NodeId> candidates,
                size_t index) {
    if (index >= candidates.size()) {
      ++cm->stats_.diff_blocks_unrepaired;
      CopyNextDiff();
      return;
    }
    netsub::NodeId donor = candidates[index];
    fssub::FileId donor_file =
        fleet->shard_file(fleet->storage_index(donor));
    uint64_t seq = ArmWatchdog(
        [self = shared_from_this(), item, candidates, index]() mutable {
          self->TryDonor(item, std::move(candidates), index + 1);
        });
    DonorClient(donor)->ReadVersioned(
        donor_file, item.offset, item.length,
        [self = shared_from_this(), item, candidates, index, seq](
            Result<Buffer> data, uint64_t version) mutable {
          if (!self->StepDone(seq)) return;
          if (!data.ok() || version < item.committed) {
            // Donor is behind (or unreachable): try the next replica.
            self->TryDonor(item, std::move(candidates), index + 1);
            return;
          }
          ++self->cm->stats_.diff_blocks_copied;
          self->cm->stats_.diff_bytes += data->size();
          uint64_t wseq = self->ArmWatchdog(
              [self] { self->CopyNextDiff(); });
          self->NodeClient()->WriteVersioned(
              self->fleet->shard_file(self->node_index), item.offset,
              version, std::move(*data),
              [self, wseq](Status s) {
                if (!self->StepDone(wseq)) return;
                if (!s.ok()) ++self->cm->stats_.catchup_write_failures;
                self->CopyNextDiff();
              });
        });
  }

  // Any block the authority has committed past what the node durably
  // holds. Catches hints an earlier aborted transfer consumed without
  // landing, and unrepaired blocks whose donors have since recovered.
  void BuildLagDiff() {
    const se::VersionMap& local =
        fleet->storage(node_index).storage().versions();
    fssub::FileId file = fleet->shard_file(node_index);
    netsub::NodeId self_id = fleet->storage_node_id(node_index);
    for (const auto& [offset, entry] : cm->authority_) {
      if (entry.committed == 0) continue;
      if (local.Lookup(file, offset) >= entry.committed) continue;
      // Only blocks this node replicates: the authority is fleet-wide,
      // the node's shard holds just its preference-list keys.
      bool owned = false;
      for (netsub::NodeId server :
           fleet->router().PreferenceList(HashU64(entry.key))) {
        if (server == self_id) {
          owned = true;
          break;
        }
      }
      if (!owned) continue;
      diff.push_back(
          DiffItem{offset, entry.key, entry.length, entry.committed});
    }
  }

  void Finish() {
    // Drain side of the hint handoff: QueueHint records its writes per
    // (node, block); the transfer's quiescence check touches the same
    // table. Commutative — a hint queued beside a same-timestamp drain
    // is either replayed now or picked up by the next quiescence round,
    // so both orders converge (the loop exists to absorb exactly this).
    DPDPU_SIM_ACCESS(cm->race_tag_, "ConsistencyManager",
                     sim::RaceKey(ConsistencyManager::kRaceSaltHints,
                                  node_index),
                     sim::AccessKind::kCommutativeWrite);
    if (Aborted()) {
      Abort();
      return;
    }
    // Quiescence, part 1: drain hints that arrived while the transfer
    // ran (a brief re-failure queued more, or an aborted predecessor
    // handed its remainder back).
    auto it = cm->hints_.find(node_index);
    if (it != cm->hints_.end() && !it->second.empty()) {
      hints = std::move(it->second);
      cm->hints_.erase(it);
      ReplayNextHint();
      return;
    }
    // Quiescence, part 2: verification diff rounds until one copies
    // nothing new. Blocks with no live donor stay unrepaired rather
    // than looping: a round that makes no progress ends the transfer.
    bool progressed = verify_rounds == 0 ||
                      cm->stats_.diff_blocks_copied > copied_at_round_start;
    if (progressed && verify_rounds < kMaxVerifyRounds) {
      BuildLagDiff();
      if (!diff.empty()) {
        ++verify_rounds;
        copied_at_round_start = cm->stats_.diff_blocks_copied;
        CopyNextDiff();
        return;
      }
    }
    ++cm->stats_.catchups_completed;
    if (done) done();
  }
};

void ConsistencyManager::CatchUp(uint32_t node_index,
                                 std::function<void()> done) {
  // Recovery takes ownership of the node's queued hints (and clears the
  // overflow marker) in one step; commutative against QueueHint for the
  // same reason as CatchUpJob::Finish above.
  DPDPU_SIM_ACCESS(race_tag_, "ConsistencyManager",
                   sim::RaceKey(kRaceSaltHints, node_index),
                   sim::AccessKind::kCommutativeWrite);
  auto job = std::make_shared<CatchUpJob>();
  job->cm = this;
  job->fleet = fleet_;
  job->node_index = node_index;
  job->epoch = fleet_->recover_epoch(node_index);
  job->done = std::move(done);

  if (overflowed_.count(node_index) == 0) {
    auto it = hints_.find(node_index);
    if (it != hints_.end()) job->hints = std::move(it->second);
  } else {
    // Hint queue overflowed while the node was down: diff the authority's
    // committed versions against the node's VersionMap and copy only the
    // blocks that are behind. The queued hints are superseded by the
    // diff and discarded — counted abandoned, never replayed.
    ++stats_.hint_overflow_fallbacks;
    auto it = hints_.find(node_index);
    if (it != hints_.end()) stats_.hints_abandoned += it->second.size();
    const se::VersionMap& local =
        fleet_->storage(node_index).storage().versions();
    fssub::FileId file = fleet_->shard_file(node_index);
    for (const auto& [offset, entry] : authority_) {
      if (entry.committed == 0) continue;
      if (local.Lookup(file, offset) < entry.committed) {
        job->diff.push_back(CatchUpJob::DiffItem{offset, entry.key,
                                                 entry.length,
                                                 entry.committed});
      }
    }
  }
  hints_.erase(node_index);
  overflowed_.erase(node_index);
  job->Start();
}

void ConsistencyManager::FinalizeCatchUp(uint32_t node_index) {
  const se::VersionMap& local =
      fleet_->storage(node_index).storage().versions();
  fssub::FileId file = fleet_->shard_file(node_index);
  for (const auto& [offset, entry] : authority_) {
    // Lookup() returns the read-visible (durable) version only, so a
    // write still in the node's disk queue is not published early.
    uint64_t held = local.Lookup(file, offset);
    if (held > entry.committed) Commit(offset, held);
  }
}

}  // namespace dpdpu::cluster
