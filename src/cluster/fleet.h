// Fleet: N storage servers + M client/compute nodes, each a full
// rt::Platform (hardware model + the three engines), joined by one
// netsub fabric on one virtual clock. This is the paper's actual
// deployment shape — DDS economics (Section 9, Figure 9) are fleet
// economics: "cores saved per storage server" times the number of
// servers. The fleet also owns the shard router and the fail/recover
// hooks used for robustness studies.

#ifndef DPDPU_CLUSTER_FLEET_H_
#define DPDPU_CLUSTER_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/consistency.h"
#include "cluster/shard_router.h"
#include "common/logging.h"
#include "core/runtime/metrics.h"
#include "core/runtime/platform.h"
#include "netsub/network.h"
#include "sim/simulator.h"

namespace dpdpu::cluster {

struct FleetSpec {
  uint32_t storage_servers = 4;
  uint32_t clients = 8;
  ShardRouter::Options routing;
  /// Replica-consistency layer (versioned writes, hinted handoff,
  /// catch-up before read re-admission, read-repair). Disabled by
  /// default: recovery then re-admits replicas immediately, which is
  /// the stale-read bug this layer fixes.
  ConsistencyOptions consistency;

  /// Per-node option templates; the fleet assigns node ids and machine
  /// names. Storage nodes get StorageServerSpec machines, clients get
  /// ComputeNodeSpec machines.
  rt::PlatformOptions storage_template;
  rt::PlatformOptions client_template;

  /// Every storage server formats one shard file of this size at
  /// construction, filled with seed-deterministic bytes (0 = zero-fill).
  /// Replicated reads work because replicas hold identical shard data.
  std::string shard_file_name = "shard";
  uint64_t shard_bytes = 32ull << 20;
  uint64_t shard_fill_seed = 1;
};

/// How a storage node fails.
enum class FailMode : uint8_t {
  /// The router stops steering new traffic to the node; requests already
  /// in flight complete (drain / graceful failover).
  kGraceful,
  /// The node goes dark: the fabric drops its frames in both directions.
  /// Clients recover via timeout re-steer (workload.h).
  kHard,
};

/// Fleet-aggregated resource usage over a probe window.
struct FleetUsage {
  double host_cores = 0;          // all nodes
  double dpu_cores = 0;           // all nodes
  double storage_host_cores = 0;  // storage servers only
  double storage_dpu_cores = 0;
  uint64_t fabric_bytes = 0;  // delivered over the switch fabric
};

class Fleet {
 public:
  Fleet(sim::Simulator* sim, FleetSpec spec);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  sim::Simulator* simulator() { return sim_; }
  netsub::Network& fabric() { return *fabric_; }
  ShardRouter& router() { return *router_; }
  ConsistencyManager& consistency() { return *consistency_; }
  const FleetSpec& spec() const { return spec_; }

  uint32_t storage_servers() const { return spec_.storage_servers; }
  uint32_t clients() const { return spec_.clients; }

  rt::Platform& storage(uint32_t i) { return *storage_nodes_.at(i); }
  rt::Platform& client(uint32_t i) { return *client_nodes_.at(i); }

  netsub::NodeId storage_node_id(uint32_t i) const { return 1 + i; }
  netsub::NodeId client_node_id(uint32_t i) const {
    return 1 + spec_.storage_servers + i;
  }
  /// Index of a storage node id (DPDPU_CHECKs that it is one).
  uint32_t storage_index(netsub::NodeId node) const;

  /// The shard file on storage server i (same name, same content fleet-
  /// wide; ids can differ per node).
  fssub::FileId shard_file(uint32_t i) const { return shard_files_.at(i); }

  // --- failure injection ---------------------------------------------------

  void FailStorageNode(uint32_t i, FailMode mode = FailMode::kGraceful);
  /// Brings the node back. With the consistency layer enabled the node
  /// is write-only routed until catch-up completes; only then do reads
  /// steer to it again. Disabled, it is re-admitted immediately (the
  /// stale-read bug).
  void RecoverStorageNode(uint32_t i);
  bool IsStorageNodeUp(uint32_t i) const {
    return router_->IsUp(storage_node_id(i));
  }
  /// Bumped by every FailStorageNode(i). A catch-up started before the
  /// bump belongs to a dead recovery: its completion must not re-admit
  /// the node, and its transfer loop stops pushing at a dark target.
  uint64_t recover_epoch(uint32_t i) const { return recover_epochs_.at(i); }
  /// Whether reads may currently route to the node (false while down or
  /// catching up).
  bool IsStorageNodeReadable(uint32_t i) const {
    return router_->IsReadable(storage_node_id(i));
  }

  // --- per-node RPC accounting --------------------------------------------

  /// Workload clients bracket every storage RPC with these, so tests can
  /// assert graceful drains: after FailStorageNode(kGraceful), in-flight
  /// requests complete and the count returns to zero.
  void NoteRpcIssued(netsub::NodeId node) {
    DPDPU_SIM_ACCESS(race_tag_, "Fleet", storage_index(node),
                     sim::AccessKind::kCommutativeWrite);
    ++inflight_rpcs_.at(storage_index(node));
  }
  void NoteRpcDone(netsub::NodeId node) {
    DPDPU_SIM_ACCESS(race_tag_, "Fleet", storage_index(node),
                     sim::AccessKind::kCommutativeWrite);
    uint64_t& count = inflight_rpcs_.at(storage_index(node));
    DPDPU_CHECK(count > 0);
    --count;
  }
  uint64_t inflight_rpcs(uint32_t i) const {
    return inflight_rpcs_.at(i);
  }

  // --- fleet metrics -------------------------------------------------------

  /// Starts/stops utilization probes on every node; Usage() reads the
  /// window between the last Start/Stop pair.
  void StartProbes();
  void StopProbes();
  FleetUsage Usage() const;
  const rt::UtilizationProbe& storage_probe(uint32_t i) const {
    return storage_probes_.at(i);
  }

  /// Samples aggregate storage-host cores every `interval` ns into a
  /// timeline (one value per interval) until StopSampling(); shows
  /// re-steering around failures. While sampling is active the event
  /// queue is never empty — stop it from a scheduled event, or drive
  /// the simulator with RunFor/RunUntil instead of Run().
  void SampleStorageCoresEvery(sim::SimTime interval);
  void StopSampling() { sampler_.Cancel(); }
  const std::vector<double>& storage_host_core_timeline() const {
    return timeline_;
  }

 private:
  sim::Simulator* sim_;
  FleetSpec spec_;
  std::unique_ptr<netsub::Network> fabric_;
  std::vector<std::unique_ptr<rt::Platform>> storage_nodes_;
  std::vector<std::unique_ptr<rt::Platform>> client_nodes_;
  std::vector<fssub::FileId> shard_files_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<ConsistencyManager> consistency_;
  std::vector<uint64_t> inflight_rpcs_;   // by storage index
  std::vector<uint64_t> recover_epochs_;  // by storage index
  /// Every client brackets RPCs through inflight_rpcs_; the bumps are
  /// commutative per node, so the drain assertion (count returns to 0)
  /// holds under any same-timestamp interleaving.
  sim::RaceTag race_tag_;

  std::vector<rt::UtilizationProbe> storage_probes_;
  std::vector<rt::UtilizationProbe> client_probes_;
  uint64_t probe_fabric_bytes_start_ = 0;
  uint64_t probe_fabric_bytes_stop_ = 0;

  sim::PeriodicTask sampler_;
  sim::SimTime sample_prev_busy_ = 0;
  sim::SimTime sample_interval_ = 0;
  std::vector<double> timeline_;
};

}  // namespace dpdpu::cluster

#endif  // DPDPU_CLUSTER_FLEET_H_
