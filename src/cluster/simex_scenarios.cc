#include "cluster/simex_scenarios.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/simex_faults.h"
#include "cluster/workload.h"
#include "sim/simulator.h"

namespace dpdpu::cluster {
namespace {

using sim::ScenarioResult;
using sim::SimTime;
using sim::Simulator;
using sim::kMicrosecond;
using sim::kMillisecond;

// Every scenario uses one client and the default 8 KB request size;
// keys stay small so key * request_bytes fits the 1 MB shard.
constexpr uint64_t kKeyspace = 64;

FleetSpec BaseSpec(uint32_t storage_servers, uint32_t max_hints) {
  FleetSpec spec;
  spec.storage_servers = storage_servers;
  spec.clients = 1;
  spec.routing.replication = 2;
  spec.consistency.enabled = true;
  spec.consistency.max_hints_per_node = max_hints;
  spec.shard_bytes = 1 << 20;
  spec.storage_template.fs_device_blocks = 2048;
  spec.client_template.fs_device_blocks = 1024;
  // Bound connection aborts so hard-failure branches drain in
  // simulated milliseconds, not the 10 s default retransmission cap.
  // Catch-up transfers ride client 0's network engine, so this also
  // bounds a catch-up write aimed at a node that went dark again.
  spec.client_template.network.tcp_config.max_retransmit_time =
      1 * kMillisecond;
  return spec;
}

// Deterministic per-key ground truth. The scenario is the only writer,
// and writes to one key are issued at distinct times, so the i-th write
// to a key draws version i from the authority — the scenario can know
// every acked version without new plumbing in the write path.
struct GroundTruth {
  uint32_t request_bytes = 8192;
  std::map<uint64_t, uint64_t> issued;  // key -> versions drawn so far
  std::map<uint64_t, uint64_t> acked;   // key -> newest acked version
};

void ScheduleWrite(Simulator& sim, FleetClient& client, GroundTruth& truth,
                   SimTime when, uint64_t key) {
  sim.ScheduleAt(when, [&client, &truth, key] {
    uint64_t version = ++truth.issued[key];
    client.IssueWriteChecked(key, [&truth, key, version](bool ok) {
      if (ok && version > truth.acked[key]) truth.acked[key] = version;
    });
  });
}

void ScheduleRead(Simulator& sim, FleetClient& client, SimTime when,
                  uint64_t key) {
  sim.ScheduleAt(when, [&client, key] { client.IssueRead(key); });
}

// First `count` keys whose preference list starts at storage node
// `primary_index` — reads of these route to that node when it is
// readable, which is what the re-admission scenarios need.
std::vector<uint64_t> KeysWithPrimary(Fleet& fleet, uint32_t primary_index,
                                      size_t count) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < kKeyspace && keys.size() < count; ++k) {
    const std::vector<netsub::NodeId> prefs =
        fleet.router().PreferenceList(HashU64(k));
    if (!prefs.empty() && prefs[0] == fleet.storage_node_id(primary_index)) {
      keys.push_back(k);
    }
  }
  DPDPU_CHECK(keys.size() == count);
  return keys;
}

// First `count` keys whose replica set is exactly {a, b} (storage
// indices) — for scenarios that must keep a third node out of a key's
// write path.
std::vector<uint64_t> KeysOnPair(Fleet& fleet, uint32_t a, uint32_t b,
                                 size_t count) {
  std::vector<uint64_t> keys;
  netsub::NodeId ida = fleet.storage_node_id(a);
  netsub::NodeId idb = fleet.storage_node_id(b);
  for (uint64_t k = 0; k < kKeyspace && keys.size() < count; ++k) {
    const std::vector<netsub::NodeId> prefs =
        fleet.router().PreferenceList(HashU64(k));
    if (prefs.size() == 2 &&
        ((prefs[0] == ida && prefs[1] == idb) ||
         (prefs[0] == idb && prefs[1] == ida))) {
      keys.push_back(k);
    }
  }
  DPDPU_CHECK(keys.size() == count);
  return keys;
}

// The shared invariant set (header comment). Returns the first
// violation as one line, or empty when clean.
std::string CheckInvariants(Fleet& fleet,
                            const std::vector<FleetClient*>& clients,
                            const GroundTruth& truth) {
  FleetWorkloadSummary summary = Summarize(clients);
  const ConsistencyManager::Stats& cs = fleet.consistency().stats();
  if (summary.totals.completed + summary.totals.failed !=
      summary.totals.issued) {
    return "op vanished: issued " + std::to_string(summary.totals.issued) +
           ", completed " + std::to_string(summary.totals.completed) +
           ", failed " + std::to_string(summary.totals.failed);
  }
  if (summary.totals.stale_reads != 0) {
    return "stale reads after re-admission: " +
           std::to_string(summary.totals.stale_reads);
  }
  if (cs.phantom_commits != 0) {
    return "phantom commits (version never drawn): " +
           std::to_string(cs.phantom_commits);
  }
  uint64_t hints_pending = 0;
  for (uint32_t i = 0; i < fleet.storage_servers(); ++i) {
    if (fleet.inflight_rpcs(i) != 0) {
      return "in-flight RPCs not drained on storage node " +
             std::to_string(i) + ": " +
             std::to_string(fleet.inflight_rpcs(i));
    }
    if (fleet.IsStorageNodeUp(i) &&
        !fleet.fabric().IsUp(fleet.storage_node_id(i))) {
      return "router re-admitted dark storage node " + std::to_string(i);
    }
    hints_pending += fleet.consistency().hints_pending(i);
  }
  if (cs.hints_queued !=
      cs.hints_replayed + cs.hints_abandoned + hints_pending) {
    return "hint accounting leak: queued " +
           std::to_string(cs.hints_queued) + " != replayed " +
           std::to_string(cs.hints_replayed) + " + abandoned " +
           std::to_string(cs.hints_abandoned) + " + pending " +
           std::to_string(hints_pending);
  }
  // Acked-write durability is only checkable once every replica can
  // serve again: acked data whose sole holder is still down is
  // unavailable, not lost.
  bool all_readable = true;
  for (uint32_t i = 0; i < fleet.storage_servers(); ++i) {
    all_readable = all_readable && fleet.IsStorageNodeReadable(i);
  }
  if (all_readable) {
    for (const auto& [key, version] : truth.acked) {
      uint64_t offset = key * truth.request_bytes;
      uint64_t committed = fleet.consistency().CommittedVersion(offset);
      if (committed < version) {
        return "acked write lost: key " + std::to_string(key) +
               " acked v" + std::to_string(version) +
               " but authority committed v" + std::to_string(committed);
      }
      if (committed > truth.issued.at(key)) {
        return "authority ahead of issuance: key " + std::to_string(key) +
               " committed v" + std::to_string(committed) + " of " +
               std::to_string(truth.issued.at(key)) + " drawn";
      }
    }
  }
  return "";
}

// Metric lines compared bit-exactly against the reference schedule for
// same-fault plans. Deliberately only the schedule-stable counters:
// resteer/hint/repair counts legitimately shift under tie reversals
// (e.g. a read racing MarkUp), and are covered by invariants instead.
std::string Metrics(const std::vector<FleetClient*>& clients) {
  FleetWorkloadSummary summary = Summarize(clients);
  return "issued=" + std::to_string(summary.totals.issued) +
         "\ncompleted=" + std::to_string(summary.totals.completed) +
         "\nfailed=" + std::to_string(summary.totals.failed) +
         "\nstale_reads=" + std::to_string(summary.totals.stale_reads) +
         "\n";
}

ScenarioResult Verdict(Fleet& fleet,
                       const std::vector<FleetClient*>& clients,
                       const GroundTruth& truth) {
  ScenarioResult r;
  std::string violation = CheckInvariants(fleet, clients, truth);
  if (!violation.empty()) {
    r.ok = false;
    r.failure = violation;
  }
  r.metrics = Metrics(clients);
  return r;
}

// After the armed workload drains, read back every written key once
// more (the cluster is as healed as this branch gets), then run to
// quiescence again before judging.
void VerifyReads(Simulator& sim, FleetClient& client,
                 const GroundTruth& truth) {
  for (const auto& [key, version] : truth.issued) {
    (void)version;
    client.IssueRead(key);
  }
  sim.Run();
}

// --------------------------------------------------------------------------
// cluster-handoff: hinted handoff end to end. Node 1 may fail
// gracefully at 1 ms; writes during the outage queue hints; recovery
// (2 ms or 4 ms later) must replay them before reads — scheduled hot
// around both possible re-admission instants — can observe the node.
// --------------------------------------------------------------------------

ScenarioResult HandoffScenario(Simulator& sim) {
  Fleet fleet(&sim, BaseSpec(2, 1024));
  WorkloadOptions wopts;
  wopts.keyspace = kKeyspace;
  FleetClient client(&fleet, 0, wopts);
  std::vector<FleetClient*> clients{&client};
  GroundTruth truth{wopts.request_bytes, {}, {}};
  std::vector<uint64_t> keys = KeysWithPrimary(fleet, 1, 3);

  FaultSchedule faults(&fleet);
  FaultScheduleOptions fault;
  fault.node = 1;
  fault.fail_times = {1 * kMillisecond};
  fault.recover_after = {2 * kMillisecond, 4 * kMillisecond};
  faults.Arm(fault);

  ScheduleWrite(sim, client, truth, 500 * kMicrosecond, keys[0]);
  ScheduleWrite(sim, client, truth, 1200 * kMicrosecond, keys[0]);
  ScheduleWrite(sim, client, truth, 1400 * kMicrosecond, keys[1]);
  ScheduleWrite(sim, client, truth, 1600 * kMicrosecond, keys[2]);
  ScheduleWrite(sim, client, truth, 2000 * kMicrosecond, keys[0]);
  // Reads bracketing both candidate re-admission instants (3 ms, 5 ms).
  ScheduleRead(sim, client, 3 * kMillisecond + 2 * kMicrosecond, keys[0]);
  ScheduleRead(sim, client, 3 * kMillisecond + 9 * kMicrosecond, keys[1]);
  ScheduleRead(sim, client, 3 * kMillisecond + 30 * kMicrosecond, keys[2]);
  ScheduleRead(sim, client, 5 * kMillisecond + 2 * kMicrosecond, keys[0]);
  ScheduleRead(sim, client, 5 * kMillisecond + 9 * kMicrosecond, keys[2]);
  sim.Run();
  VerifyReads(sim, client, truth);
  return Verdict(fleet, clients, truth);
}

// --------------------------------------------------------------------------
// cluster-hint-overflow: hint queue capped at 2; five distinct blocks
// written during the outage overflow it, so recovery must fall back to
// the version-map diff and the abandoned hints must stay accounted.
// --------------------------------------------------------------------------

ScenarioResult HintOverflowScenario(Simulator& sim) {
  Fleet fleet(&sim, BaseSpec(2, 2));
  WorkloadOptions wopts;
  wopts.keyspace = kKeyspace;
  FleetClient client(&fleet, 0, wopts);
  std::vector<FleetClient*> clients{&client};
  GroundTruth truth{wopts.request_bytes, {}, {}};
  std::vector<uint64_t> keys = KeysWithPrimary(fleet, 1, 5);

  FaultSchedule faults(&fleet);
  FaultScheduleOptions fault;
  fault.node = 1;
  fault.fail_times = {1 * kMillisecond};
  fault.recover_after = {1500 * kMicrosecond};
  const ArmedFault& armed = faults.Arm(fault);

  for (size_t i = 0; i < keys.size(); ++i) {
    ScheduleWrite(sim, client, truth,
                  1100 * kMicrosecond + SimTime(i) * 80 * kMicrosecond,
                  keys[i]);
  }
  ScheduleRead(sim, client, 2500 * kMicrosecond + 2 * kMicrosecond, keys[0]);
  ScheduleRead(sim, client, 2500 * kMicrosecond + 9 * kMicrosecond, keys[3]);
  sim.Run();
  VerifyReads(sim, client, truth);

  ScenarioResult r = Verdict(fleet, clients, truth);
  const ConsistencyManager::Stats& cs = fleet.consistency().stats();
  if (r.ok && armed.did_fail) {
    // The write schedule is fixed, so the split is exact: 2 queued,
    // 3 rejected at enqueue, and on recovery one diff fallback.
    if (cs.hints_queued != 2 || cs.hints_dropped != 3) {
      r.ok = false;
      r.failure = "overflow accounting: queued " +
                  std::to_string(cs.hints_queued) + " dropped " +
                  std::to_string(cs.hints_dropped) + " (want 2/3)";
    } else if (armed.did_recover && cs.hint_overflow_fallbacks != 1) {
      r.ok = false;
      r.failure = "expected exactly one hint-overflow fallback, got " +
                  std::to_string(cs.hint_overflow_fallbacks);
    }
  }
  return r;
}

// --------------------------------------------------------------------------
// cluster-catchup-readmit: reads racing catch-up completion. Recovery
// at 2 ms replays three hints; reads of the hinted keys land within
// microseconds of the re-admission tie window, so DPOR permutes read
// vs. MarkUp orderings. The catch-up gate must hold under every one.
// --------------------------------------------------------------------------

ScenarioResult CatchupReadmitScenario(Simulator& sim) {
  Fleet fleet(&sim, BaseSpec(2, 1024));
  WorkloadOptions wopts;
  wopts.keyspace = kKeyspace;
  FleetClient client(&fleet, 0, wopts);
  std::vector<FleetClient*> clients{&client};
  GroundTruth truth{wopts.request_bytes, {}, {}};
  std::vector<uint64_t> keys = KeysWithPrimary(fleet, 1, 3);

  FaultSchedule faults(&fleet);
  FaultScheduleOptions fault;
  fault.node = 1;
  fault.fail_times = {1 * kMillisecond};
  fault.recover_after = {1 * kMillisecond};
  faults.Arm(fault);

  ScheduleWrite(sim, client, truth, 1200 * kMicrosecond, keys[0]);
  ScheduleWrite(sim, client, truth, 1400 * kMicrosecond, keys[1]);
  ScheduleWrite(sim, client, truth, 1600 * kMicrosecond, keys[2]);
  const SimTime recover = 2 * kMillisecond;
  for (SimTime dt : {1, 3, 6, 10, 20, 50}) {
    ScheduleRead(sim, client, recover + dt * kMicrosecond, keys[0]);
  }
  ScheduleRead(sim, client, recover + 7 * kMicrosecond, keys[1]);
  ScheduleRead(sim, client, recover + 35 * kMicrosecond, keys[2]);
  sim.Run();
  VerifyReads(sim, client, truth);
  return Verdict(fleet, clients, truth);
}

// --------------------------------------------------------------------------
// cluster-refail: close-callback re-steer and re-admission racing a
// second failure. Node 1 fails dark at 1 ms and recovers at 2 ms; its
// catch-up replays four hints; a second dark failure may land right in
// that window. A later graceful outage of node 0 then forces reads onto
// node 1 — whatever state the interrupted catch-up left it in.
// --------------------------------------------------------------------------

ScenarioResult RefailScenario(Simulator& sim) {
  Fleet fleet(&sim, BaseSpec(2, 1024));
  WorkloadOptions wopts;
  wopts.keyspace = kKeyspace;
  wopts.retry_timeout = 500 * kMicrosecond;
  wopts.max_attempts = 4;
  FleetClient client(&fleet, 0, wopts);
  std::vector<FleetClient*> clients{&client};
  GroundTruth truth{wopts.request_bytes, {}, {}};
  std::vector<uint64_t> keys = KeysWithPrimary(fleet, 1, 4);

  FaultSchedule faults(&fleet);
  FaultScheduleOptions first;
  first.node = 1;
  first.mode = FailMode::kHard;
  first.fail_times = {1 * kMillisecond};
  first.recover_after = {1 * kMillisecond};
  faults.Arm(first);
  // Candidate second failures straddle the catch-up window that opens
  // at the 2 ms recovery.
  FaultScheduleOptions second;
  second.node = 1;
  second.mode = FailMode::kHard;
  second.fail_times = {2 * kMillisecond + 5 * kMicrosecond,
                       2 * kMillisecond + 40 * kMicrosecond,
                       2 * kMillisecond + 200 * kMicrosecond};
  second.recover_after = {1 * kMillisecond};
  faults.Arm(second);
  // Node 0's outage exposes node 1 to reads with no fresh replica to
  // re-steer to: if the interrupted catch-up lost data, reads see it.
  FaultScheduleOptions cover;
  cover.node = 0;
  cover.fail_times = {4500 * kMicrosecond};
  cover.recover_after = {1 * kMillisecond};
  faults.Arm(cover);

  for (size_t i = 0; i < keys.size(); ++i) {
    ScheduleWrite(sim, client, truth,
                  1050 * kMicrosecond + SimTime(i) * 100 * kMicrosecond,
                  keys[i]);
  }
  ScheduleRead(sim, client, 2100 * kMicrosecond, keys[0]);
  ScheduleRead(sim, client, 2500 * kMicrosecond, keys[1]);
  ScheduleRead(sim, client, 3500 * kMicrosecond, keys[2]);
  ScheduleRead(sim, client, 4600 * kMicrosecond, keys[0]);
  ScheduleRead(sim, client, 4620 * kMicrosecond, keys[3]);
  sim.Run();
  VerifyReads(sim, client, truth);
  return Verdict(fleet, clients, truth);
}

// --------------------------------------------------------------------------
// cluster-writeonly-ack: a write acked solely by a write-only
// (mid-catch-up) replica. Key kMain lives on nodes 1 and 2 of three.
// Node 2's outage queues hints; during its catch-up node 1 may fail,
// so the 1.5 ms write to kMain can be acked only by write-only node 2.
// That ack completes the op — the data must still be committed and
// readable once the cluster heals, and read-repair must backstop any
// replica the catch-up left behind.
// --------------------------------------------------------------------------

ScenarioResult WriteOnlyAckScenario(Simulator& sim) {
  Fleet fleet(&sim, BaseSpec(3, 1024));
  WorkloadOptions wopts;
  wopts.keyspace = kKeyspace;
  FleetClient client(&fleet, 0, wopts);
  std::vector<FleetClient*> clients{&client};
  GroundTruth truth{wopts.request_bytes, {}, {}};
  std::vector<uint64_t> keys = KeysOnPair(fleet, 1, 2, 4);
  uint64_t main_key = keys[0];

  FaultSchedule faults(&fleet);
  FaultScheduleOptions outage;
  outage.node = 2;
  outage.fail_times = {600 * kMicrosecond};
  outage.recover_after = {800 * kMicrosecond};
  faults.Arm(outage);
  // Node 1 may drop out right as node 2's catch-up (from 1.4 ms)
  // replays the four hints below.
  FaultScheduleOptions peer;
  peer.node = 1;
  peer.fail_times = {1400 * kMicrosecond + 5 * kMicrosecond,
                     1400 * kMicrosecond + 30 * kMicrosecond,
                     1400 * kMicrosecond + 120 * kMicrosecond};
  peer.recover_after = {1 * kMillisecond};
  faults.Arm(peer);

  ScheduleWrite(sim, client, truth, 400 * kMicrosecond, main_key);
  ScheduleWrite(sim, client, truth, 700 * kMicrosecond, keys[1]);
  ScheduleWrite(sim, client, truth, 750 * kMicrosecond, keys[2]);
  ScheduleWrite(sim, client, truth, 800 * kMicrosecond, keys[3]);
  ScheduleWrite(sim, client, truth, 850 * kMicrosecond, main_key);
  // The write that can land on write-only node 2 alone: issued while
  // node 2's catch-up (1.4 ms + hint replay) is still running, so its
  // ack arrives before re-admission on the early peer-fail branches.
  ScheduleWrite(sim, client, truth, 1450 * kMicrosecond, main_key);
  ScheduleRead(sim, client, 3 * kMillisecond + 2 * kMicrosecond, main_key);
  ScheduleRead(sim, client, 3 * kMillisecond + 9 * kMicrosecond, keys[2]);
  sim.Run();
  VerifyReads(sim, client, truth);
  return Verdict(fleet, clients, truth);
}

const std::vector<ClusterScenarioInfo>& Registry() {
  static const std::vector<ClusterScenarioInfo> scenarios = {
      {"cluster-handoff",
       "hinted handoff: outage writes replayed before re-admission",
       [] { return sim::Scenario(HandoffScenario); }},
      {"cluster-hint-overflow",
       "hint queue overflow falls back to the version-map diff",
       [] { return sim::Scenario(HintOverflowScenario); }},
      {"cluster-catchup-readmit",
       "reads racing catch-up completion at the re-admission tie",
       [] { return sim::Scenario(CatchupReadmitScenario); }},
      {"cluster-refail",
       "second dark failure racing catch-up and re-steer",
       [] { return sim::Scenario(RefailScenario); }},
      {"cluster-writeonly-ack",
       "write acked only by a mid-catch-up (write-only) replica",
       [] { return sim::Scenario(WriteOnlyAckScenario); }},
  };
  return scenarios;
}

}  // namespace

const std::vector<ClusterScenarioInfo>& ClusterScenarios() {
  return Registry();
}

const ClusterScenarioInfo* FindClusterScenario(std::string_view name) {
  for (const ClusterScenarioInfo& info : Registry()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

}  // namespace dpdpu::cluster
