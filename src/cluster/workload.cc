#include "cluster/workload.h"

#include <utility>

#include "common/logging.h"

namespace dpdpu::cluster {

struct FleetClient::Op {
  uint64_t key = 0;
  uint8_t flags = 0;
  sim::SimTime start = 0;
  uint32_t attempts = 0;
  /// Bumps on every re-steer; responses and timeouts from superseded
  /// attempts compare their captured generation and drop out.
  uint64_t generation = 0;
  bool done = false;
  std::vector<netsub::NodeId> tried;
  std::function<void()> on_done;
  // Write fan-out accounting.
  uint32_t write_pending = 0;
  bool write_ok = true;
};

FleetClient::FleetClient(Fleet* fleet, uint32_t client_index,
                         WorkloadOptions options)
    : fleet_(fleet),
      client_index_(client_index),
      options_(options),
      rng_(options.seed * 0x9e3779b97f4a7c15ull + client_index + 1),
      zipf_(options.keyspace, options.zipf_theta) {
  DPDPU_CHECK(options_.keyspace * options_.request_bytes <=
              fleet->spec().shard_bytes);
}

se::RemoteStorageClient* FleetClient::ClientFor(netsub::NodeId node) {
  auto it = connections_.find(node);
  if (it == connections_.end()) {
    it = connections_
             .emplace(node,
                      std::make_unique<se::RemoteStorageClient>(
                          &fleet_->client(client_index_).network(), node,
                          fleet_->spec()
                              .storage_template.storage.listen_port))
             .first;
  }
  return it->second.get();
}

void FleetClient::IssueOne(std::function<void()> done) {
  auto op = std::make_shared<Op>();
  op->key = zipf_.Next(rng_);
  op->flags = rng_.NextDouble() < options_.offload_fraction
                  ? 0
                  : se::kRequestFlagRequiresHost;
  op->start = fleet_->simulator()->now();
  op->on_done = std::move(done);
  ++stats_.issued;

  if (rng_.NextDouble() < options_.read_fraction) {
    AttemptRead(op);
    return;
  }

  // Write: fan out to every live replica in the preference list (all
  // replicas hold the full shard, so any may later answer the read).
  std::vector<netsub::NodeId> prefs =
      fleet_->router().PreferenceList(HashU64(op->key));
  std::vector<netsub::NodeId> live;
  for (netsub::NodeId server : prefs) {
    if (fleet_->router().IsUp(server)) live.push_back(server);
  }
  if (live.empty()) {
    Finish(op, false);
    return;
  }
  op->write_pending = uint32_t(live.size());
  Buffer payload(options_.request_bytes);
  for (netsub::NodeId server : live) {
    ClientFor(server)->Write(
        fleet_->shard_file(fleet_->storage_index(server)),
        op->key * options_.request_bytes, payload,
        [this, op](Status s) {
          if (op->done) return;
          op->write_ok = op->write_ok && s.ok();
          if (--op->write_pending == 0) Finish(op, op->write_ok);
        },
        op->flags);
  }
}

void FleetClient::AttemptRead(std::shared_ptr<Op> op) {
  ++op->attempts;
  uint64_t generation = ++op->generation;
  std::optional<netsub::NodeId> target =
      fleet_->router().Route(HashU64(op->key), op->tried);
  if (!target.has_value()) {
    Finish(op, false);
    return;
  }
  op->tried.push_back(*target);
  ClientFor(*target)->Read(
      fleet_->shard_file(fleet_->storage_index(*target)),
      op->key * options_.request_bytes, options_.request_bytes,
      [this, op, generation](Result<Buffer> data) {
        if (op->done || generation != op->generation) return;
        Finish(op, data.ok());
      },
      op->flags);
  if (options_.retry_timeout > 0) {
    fleet_->simulator()->Schedule(
        options_.retry_timeout, [this, op, generation] {
          if (op->done || generation != op->generation) return;
          if (op->attempts >= options_.max_attempts) {
            Finish(op, false);
            return;
          }
          ++stats_.resteered;
          AttemptRead(op);
        });
  }
}

void FleetClient::Finish(std::shared_ptr<Op> op, bool ok) {
  op->done = true;
  if (ok) {
    ++stats_.completed;
    latency_.Add(fleet_->simulator()->now() - op->start);
  } else {
    ++stats_.failed;
  }
  if (op->on_done) op->on_done();
}

OpenLoopDriver::OpenLoopDriver(std::vector<FleetClient*> clients,
                               double rate_per_sec, uint64_t seed)
    : clients_(std::move(clients)), rate_(rate_per_sec), rng_(seed) {
  DPDPU_CHECK(!clients_.empty());
  DPDPU_CHECK(rate_ > 0);
}

void OpenLoopDriver::Run(sim::SimTime window) {
  sim::Simulator* sim = clients_[0]->fleet()->simulator();
  double mean_gap_ns = 1e9 / rate_;
  double t = rng_.NextExponential(mean_gap_ns);
  while (t < double(window)) {
    uint32_t idx = rng_.NextBounded(uint32_t(clients_.size()));
    sim->ScheduleAt(sim->now() + sim::SimTime(t), [this, idx] {
      ++issued_;
      clients_[idx]->IssueOne([this] { ++completed_; });
    });
    t += rng_.NextExponential(mean_gap_ns);
  }
}

ClosedLoopDriver::ClosedLoopDriver(std::vector<FleetClient*> clients,
                                   uint32_t inflight_per_client,
                                   uint64_t total_ops)
    : clients_(std::move(clients)),
      inflight_per_client_(inflight_per_client),
      total_ops_(total_ops) {
  DPDPU_CHECK(!clients_.empty());
  DPDPU_CHECK(inflight_per_client_ > 0);
}

void ClosedLoopDriver::Start() {
  for (FleetClient* client : clients_) {
    for (uint32_t w = 0; w < inflight_per_client_; ++w) {
      IssueNext(client);
    }
  }
}

void ClosedLoopDriver::IssueNext(FleetClient* client) {
  if (issued_ >= total_ops_) return;
  ++issued_;
  client->IssueOne([this, client] {
    ++completed_;
    IssueNext(client);
  });
}

FleetWorkloadSummary Summarize(const std::vector<FleetClient*>& clients) {
  FleetWorkloadSummary summary;
  for (const FleetClient* client : clients) {
    summary.totals.issued += client->stats().issued;
    summary.totals.completed += client->stats().completed;
    summary.totals.failed += client->stats().failed;
    summary.totals.resteered += client->stats().resteered;
    summary.latency_ns.Merge(client->latency_ns());
  }
  return summary;
}

}  // namespace dpdpu::cluster
