#include "cluster/workload.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "cluster/payload_stamp.h"
#include "common/logging.h"

namespace dpdpu::cluster {

struct FleetClient::Op {
  uint64_t key = 0;
  uint64_t offset = 0;
  uint8_t flags = 0;
  sim::SimTime start = 0;
  uint32_t attempts = 0;
  /// Bumps on every re-steer; responses and timeouts from superseded
  /// attempts compare their captured generation and drop out.
  uint64_t generation = 0;
  bool done = false;
  std::vector<netsub::NodeId> tried;
  std::function<void()> on_done;
  std::function<void(bool)> on_done_ok;
  /// Staleness instrument: the version committed for this block before
  /// the op started. One-sided on purpose — versions committed while
  /// the read is in flight are not held against it.
  uint64_t expected_version = 0;
  /// Replicas that answered this read with a verifiably-old version;
  /// repaired with the fresh block once a current replica answers.
  std::vector<netsub::NodeId> stale_replicas;
  // Write fan-out: one sub-operation per writable replica, each with
  // its own retry/timeout state.
  struct WriteSub {
    netsub::NodeId node = 0;
    uint32_t attempts = 0;
    uint64_t generation = 0;
    bool settled = false;
    bool acked = false;
  };
  std::vector<WriteSub> subs;
  uint32_t write_pending = 0;
  uint64_t version = 0;
  Buffer payload;
  bool committed = false;
};

FleetClient::FleetClient(Fleet* fleet, uint32_t client_index,
                         WorkloadOptions options)
    : fleet_(fleet),
      client_index_(client_index),
      options_(options),
      zipf_(options.keyspace, options.zipf_theta),
      stamp_seed_(options.seed * 0x9e3779b97f4a7c15ull + client_index + 1) {
  DPDPU_CHECK(options_.keyspace * options_.request_bytes <=
              fleet->spec().shard_bytes);
  DPDPU_CHECK(options_.request_bytes >= kPayloadStampBytes);
}

se::RemoteStorageClient* FleetClient::ClientFor(netsub::NodeId node) {
  auto it = connections_.find(node);
  // A closed (aborted) connection is replaced once its close handling
  // has drained every pending request; until then SendRequest on it
  // fail-fasts, which feeds the retry path.
  if (it != connections_.end() && it->second->closed() &&
      it->second->requests_outstanding() == 0) {
    connections_.erase(it);
    it = connections_.end();
  }
  if (it == connections_.end()) {
    it = connections_
             .emplace(node,
                      std::make_unique<se::RemoteStorageClient>(
                          &fleet_->client(client_index_).network(), node,
                          fleet_->spec()
                              .storage_template.storage.listen_port))
             .first;
  }
  return it->second.get();
}

void FleetClient::IssueOne(std::function<void()> done) {
  // Commutative client accounting (see the race_tag_ declaration):
  // same-tick issues swap counter values, which swaps which request
  // draws which identity — the drawn multiset is unchanged.
  DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  // Counter-keyed request stream: request k of client c always draws
  // from Pcg32(mix(seed, c, k)), so its key/offload/read-write split is
  // a pure function of request identity. A shared cursor-style RNG here
  // would let same-timestamp tie order permute the draw sequence across
  // in-flight completions — the schedule dependence PERTURB_SKIPS used
  // to waive. Draw order within a request is still part of the
  // contract: key, then offload flag, then the read/write split.
  Pcg32 rng(sim::SplitMix64(options_.seed ^
                            (uint64_t(client_index_) << 32) ^
                            issue_counter_++));
  uint64_t key = zipf_.Next(rng);
  uint8_t flags = rng.NextDouble() < options_.offload_fraction
                      ? 0
                      : se::kRequestFlagRequiresHost;
  bool is_read = rng.NextDouble() < options_.read_fraction;
  Issue(key, is_read, flags, std::move(done));
}

void FleetClient::IssueRead(uint64_t key, std::function<void()> done) {
  Issue(key, true, 0, std::move(done));
}

void FleetClient::IssueWrite(uint64_t key, std::function<void()> done) {
  Issue(key, false, 0, std::move(done));
}

void FleetClient::IssueReadChecked(uint64_t key,
                                   std::function<void(bool)> done) {
  Issue(key, true, 0, nullptr, std::move(done));
}

void FleetClient::IssueWriteChecked(uint64_t key,
                                    std::function<void(bool)> done) {
  Issue(key, false, 0, nullptr, std::move(done));
}

void FleetClient::Issue(uint64_t key, bool is_read, uint8_t flags,
                        std::function<void()> done,
                        std::function<void(bool)> done_ok) {
  DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  auto op = std::make_shared<Op>();
  op->key = key;
  op->offset = key * options_.request_bytes;
  op->flags = flags;
  op->start = fleet_->simulator()->now();
  op->on_done = std::move(done);
  op->on_done_ok = std::move(done_ok);
  op->expected_version = fleet_->consistency().CommittedVersion(op->offset);
  ++stats_.issued;
  if (is_read) {
    AttemptRead(op);
  } else {
    StartWrite(op);
  }
}

// ---------------------------------------------------------------------------
// Reads.
// ---------------------------------------------------------------------------

void FleetClient::AttemptRead(std::shared_ptr<Op> op) {
  ++op->attempts;
  uint64_t generation = ++op->generation;
  std::optional<netsub::NodeId> target =
      fleet_->router().Route(HashU64(op->key), op->tried);
  if (!target.has_value() && fleet_->consistency().enabled()) {
    // Every readable replica is tried (or gone): as a last resort
    // consult an untried write-only replica (mid-catch-up). The
    // versioned reply decides acceptance — a block it already holds
    // current is served, a behind one completes as stale below, which
    // is no worse than giving up.
    for (netsub::NodeId server :
         fleet_->router().PreferenceList(HashU64(op->key))) {
      if (!fleet_->router().IsWritable(server)) continue;
      if (std::find(op->tried.begin(), op->tried.end(), server) !=
          op->tried.end()) {
        continue;
      }
      target = server;
      break;
    }
  }
  if (!target.has_value()) {
    Finish(op, false);
    return;
  }
  op->tried.push_back(*target);
  netsub::NodeId server = *target;
  fssub::FileId file = fleet_->shard_file(fleet_->storage_index(server));
  fleet_->NoteRpcIssued(server);
  auto handle = [this, op, generation, server](Result<Buffer> data,
                                               uint64_t version) {
    fleet_->NoteRpcDone(server);
    if (op->done || generation != op->generation) return;
    OnReadReply(op, server, std::move(data), version);
  };
  if (fleet_->consistency().enabled()) {
    ClientFor(server)->ReadVersioned(file, op->offset,
                                     options_.request_bytes,
                                     std::move(handle), op->flags);
  } else {
    ClientFor(server)->Read(
        file, op->offset, options_.request_bytes,
        [handle = std::move(handle)](Result<Buffer> data) {
          handle(std::move(data), 0);
        },
        op->flags);
  }
  if (options_.retry_timeout > 0) {
    // Clients live until the fleet run drains; the shared op +
    // generation guard makes a late timer a no-op.
    // simlint:allow(R6): fleet-owned client, generation-guarded timer
    fleet_->simulator()->Schedule(
        options_.retry_timeout, [this, op, generation] {
          if (op->done || generation != op->generation) return;
          if (op->attempts >= options_.max_attempts) {
            Finish(op, false);
            return;
          }
            DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                             sim::AccessKind::kCommutativeWrite);
          ++stats_.resteered;
          AttemptRead(op);
        });
  }
}

void FleetClient::OnReadReply(std::shared_ptr<Op> op,
                              netsub::NodeId server, Result<Buffer> data,
                              uint64_t version) {
  DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  if (!data.ok()) {
    // Server error or connection abort (the close callback failing the
    // RPC): re-steer immediately instead of waiting for retry_timeout —
    // this is what bounds hard-failure failover by the TCP abort cap.
    if (op->attempts >= options_.max_attempts) {
      Finish(op, false);
      return;
    }
    ++stats_.resteered;
    AttemptRead(op);
    return;
  }
  if (fleet_->consistency().enabled() &&
      version < op->expected_version && HasUntriedReadReplica(op)) {
    // Verifiably-stale replica (should only be reachable through the
    // read-repair backstop — catch-up keeps recovering nodes out of the
    // read set): remember it for repair and ask another replica.
    op->stale_replicas.push_back(server);
    ++stats_.stale_replica_resteers;
    ++stats_.resteered;
    AttemptRead(op);
    return;
  }
  CompleteRead(op, std::move(*data), version);
}

bool FleetClient::HasUntriedReadReplica(
    const std::shared_ptr<Op>& op) const {
  if (op->attempts >= options_.max_attempts) return false;
  bool enabled = fleet_->consistency().enabled();
  for (netsub::NodeId server :
       fleet_->router().PreferenceList(HashU64(op->key))) {
    // Write-only (mid-catch-up) replicas count when the layer is on:
    // AttemptRead falls back to them once readable ones are exhausted.
    bool candidate =
        fleet_->router().IsReadable(server) ||
        (enabled && fleet_->router().IsWritable(server));
    if (!candidate) continue;
    if (std::find(op->tried.begin(), op->tried.end(), server) !=
        op->tried.end()) {
      continue;
    }
    return true;
  }
  return false;
}

void FleetClient::CompleteRead(std::shared_ptr<Op> op, Buffer data,
                               uint64_t version) {
  DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  // Content check: once any version was committed for this block before
  // the op started, the payload must carry a stamp at least that new.
  if (op->expected_version > 0) {
    std::optional<PayloadStamp> stamp = ParsePayloadStamp(data.span());
    if (!stamp.has_value() || stamp->version < op->expected_version) {
      ++stats_.stale_reads;
    }
  }
  for (netsub::NodeId stale : op->stale_replicas) {
    RepairReplica(stale, op->offset, version, data);
  }
  Finish(op, true);
}

void FleetClient::RepairReplica(netsub::NodeId node, uint64_t offset,
                                uint64_t version, const Buffer& data) {
  ConsistencyManager& cm = fleet_->consistency();
  uint32_t index = fleet_->storage_index(node);
  if (!cm.BeginRepair(index, offset)) return;
  if (!fleet_->router().IsWritable(node)) {
    cm.EndRepair(index, offset);
    return;
  }
  fleet_->NoteRpcIssued(node);
  ClientFor(node)->WriteVersioned(
      fleet_->shard_file(index), offset, version, data,
      [this, node, index, offset](Status s) {
        fleet_->NoteRpcDone(node);
        fleet_->consistency().EndRepair(index, offset);
        if (s.ok()) {
          fleet_->consistency().NoteReadRepair();
          DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                           sim::AccessKind::kCommutativeWrite);
          ++stats_.read_repairs;
        }
      });
}

// ---------------------------------------------------------------------------
// Writes.
// ---------------------------------------------------------------------------

void FleetClient::StartWrite(std::shared_ptr<Op> op) {
  ConsistencyManager& cm = fleet_->consistency();
  // The authority also runs with the layer disabled: versions then only
  // instrument staleness (stamped payloads), nothing goes on the wire.
  op->version =
      cm.NextVersion(op->offset, op->key, options_.request_bytes);
  op->payload = MakeStampedPayload(
      options_.request_bytes,
      PayloadStamp{op->key, op->version, stamp_seed_});

  std::vector<netsub::NodeId> prefs =
      fleet_->router().PreferenceList(HashU64(op->key));
  std::vector<netsub::NodeId> writable;
  std::vector<netsub::NodeId> unreachable;
  for (netsub::NodeId server : prefs) {
    if (fleet_->router().IsWritable(server)) {
      writable.push_back(server);
    } else {
      unreachable.push_back(server);
    }
  }
  if (writable.empty()) {
    Finish(op, false);
    return;
  }
  if (cm.enabled()) {
    for (netsub::NodeId server : unreachable) {
      cm.QueueHint(fleet_->storage_index(server), op->offset, op->version,
                   op->payload);
    }
  }
  op->subs.reserve(writable.size());
  for (netsub::NodeId server : writable) {
    Op::WriteSub sub;
    sub.node = server;
    op->subs.push_back(sub);
  }
  op->write_pending = uint32_t(op->subs.size());
  for (size_t i = 0; i < op->subs.size(); ++i) {
    AttemptWriteSub(op, i);
  }
}

void FleetClient::AttemptWriteSub(std::shared_ptr<Op> op,
                                  size_t sub_index) {
  Op::WriteSub& sub = op->subs[sub_index];
  ++sub.attempts;
  uint64_t generation = ++sub.generation;
  netsub::NodeId server = sub.node;
  fssub::FileId file = fleet_->shard_file(fleet_->storage_index(server));
  fleet_->NoteRpcIssued(server);
  auto cb = [this, op, sub_index, generation, server](Status s) {
    fleet_->NoteRpcDone(server);
    Op::WriteSub& sub = op->subs[sub_index];
    if (op->done || sub.settled || generation != sub.generation) return;
    if (s.ok()) {
      SettleWriteSub(op, sub_index, true);
      return;
    }
    // Server error or connection abort: retry while attempts remain
    // (with timeouts off there is no pacing, so give up directly).
    if (options_.retry_timeout == 0 ||
        sub.attempts >= options_.max_attempts) {
      GiveUpWriteSub(op, sub_index);
      return;
    }
    DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                     sim::AccessKind::kCommutativeWrite);
    ++stats_.write_retries;
    AttemptWriteSub(op, sub_index);
  };
  if (fleet_->consistency().enabled()) {
    ClientFor(server)->WriteVersioned(file, op->offset, op->version,
                                      op->payload, std::move(cb),
                                      op->flags);
  } else {
    ClientFor(server)->Write(file, op->offset, op->payload, std::move(cb),
                             op->flags);
  }
  if (options_.retry_timeout > 0) {
    // Clients live until the fleet run drains; the shared op +
    // generation guard makes a late timer a no-op.
    // simlint:allow(R6): fleet-owned client, generation-guarded timer
    fleet_->simulator()->Schedule(
        options_.retry_timeout, [this, op, sub_index, generation] {
          Op::WriteSub& sub = op->subs[sub_index];
          if (op->done || sub.settled || generation != sub.generation) {
            return;
          }
          if (sub.attempts >= options_.max_attempts) {
            GiveUpWriteSub(op, sub_index);
            return;
          }
            DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                             sim::AccessKind::kCommutativeWrite);
          ++stats_.write_retries;
          AttemptWriteSub(op, sub_index);
        });
  }
}

void FleetClient::SettleWriteSub(std::shared_ptr<Op> op, size_t sub_index,
                                 bool acked) {
  DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  Op::WriteSub& sub = op->subs[sub_index];
  sub.settled = true;
  sub.acked = acked;
  if (acked && !op->committed &&
      fleet_->router().IsReadable(sub.node)) {
    // First ack from a read-serving replica: the version is now
    // observable, commit it. An ack from a write-only node (mid
    // catch-up) must not commit — no readable replica holds the data
    // yet, so a concurrent read could not find it and would be counted
    // stale against a version it had no way to see.
    op->committed = true;
    fleet_->consistency().Commit(op->offset, op->version);
  }
  DPDPU_CHECK(op->write_pending > 0);
  if (--op->write_pending == 0) FinishWrite(op);
}

void FleetClient::GiveUpWriteSub(std::shared_ptr<Op> op,
                                 size_t sub_index) {
  DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  Op::WriteSub& sub = op->subs[sub_index];
  ++stats_.write_giveups;
  if (fleet_->consistency().enabled()) {
    fleet_->consistency().QueueHint(fleet_->storage_index(sub.node),
                                    op->offset, op->version, op->payload);
  }
  SettleWriteSub(op, sub_index, false);
}

void FleetClient::FinishWrite(std::shared_ptr<Op> op) {
  bool any_acked = false;
  bool all_acked = true;
  for (const Op::WriteSub& sub : op->subs) {
    any_acked = any_acked || sub.acked;
    all_acked = all_acked && sub.acked;
  }
  // With hinted handoff a write succeeds once any replica holds it (the
  // hints cover the rest); without the layer every targeted replica
  // must ack, as before.
  Finish(op, fleet_->consistency().enabled() ? any_acked : all_acked);
}

void FleetClient::Finish(std::shared_ptr<Op> op, bool ok) {
  DPDPU_SIM_ACCESS(race_tag_, "FleetClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  op->done = true;
  if (ok) {
    ++stats_.completed;
    latency_.Add(fleet_->simulator()->now() - op->start);
  } else {
    ++stats_.failed;
  }
  if (op->on_done) op->on_done();
  if (op->on_done_ok) op->on_done_ok(ok);
}

OpenLoopDriver::OpenLoopDriver(std::vector<FleetClient*> clients,
                               double rate_per_sec, uint64_t seed)
    : clients_(std::move(clients)), rate_(rate_per_sec), rng_(seed) {
  DPDPU_CHECK(!clients_.empty());
  DPDPU_CHECK(rate_ > 0);
}

void OpenLoopDriver::Run(sim::SimTime window) {
  sim::Simulator* sim = clients_[0]->fleet()->simulator();
  double mean_gap_ns = 1e9 / rate_;
  double t = rng_.NextExponential(mean_gap_ns);
  while (t < double(window)) {
    uint32_t idx = rng_.NextBounded(uint32_t(clients_.size()));
    // simlint:allow(R6): the driver outlives the run it pre-schedules
    sim->ScheduleAt(sim->now() + sim::SimTime(t), [this, idx] {
      ++issued_;
      clients_[idx]->IssueOne([this] { ++completed_; });
    });
    t += rng_.NextExponential(mean_gap_ns);
  }
}

ClosedLoopDriver::ClosedLoopDriver(std::vector<FleetClient*> clients,
                                   uint32_t inflight_per_client,
                                   uint64_t total_ops)
    : clients_(std::move(clients)),
      inflight_per_client_(inflight_per_client),
      total_ops_(total_ops) {
  DPDPU_CHECK(!clients_.empty());
  DPDPU_CHECK(inflight_per_client_ > 0);
}

void ClosedLoopDriver::Start() {
  for (FleetClient* client : clients_) {
    for (uint32_t w = 0; w < inflight_per_client_; ++w) {
      IssueNext(client);
    }
  }
}

void ClosedLoopDriver::IssueNext(FleetClient* client) {
  if (issued_ >= total_ops_) return;
  ++issued_;
  client->IssueOne([this, client] {
    ++completed_;
    IssueNext(client);
  });
}

FleetWorkloadSummary Summarize(const std::vector<FleetClient*>& clients) {
  FleetWorkloadSummary summary;
  for (const FleetClient* client : clients) {
    summary.totals.issued += client->stats().issued;
    summary.totals.completed += client->stats().completed;
    summary.totals.failed += client->stats().failed;
    summary.totals.resteered += client->stats().resteered;
    summary.totals.stale_reads += client->stats().stale_reads;
    summary.totals.stale_replica_resteers +=
        client->stats().stale_replica_resteers;
    summary.totals.read_repairs += client->stats().read_repairs;
    summary.totals.write_retries += client->stats().write_retries;
    summary.totals.write_giveups += client->stats().write_giveups;
    summary.latency_ns.Merge(client->latency_ns());
  }
  return summary;
}

}  // namespace dpdpu::cluster
