// Consistent-hash shard routing for the fleet (DDS at cluster scale):
// keys/files map onto a ring of virtual nodes so that adding, removing,
// or failing a storage server moves only ~1/N of the keyspace. The
// preference list (first R distinct servers clockwise from the key's
// point) is the static ownership set; liveness is applied on top, so a
// failed primary re-steers reads to its replicas without remapping
// anyone else's keys.

#ifndef DPDPU_CLUSTER_SHARD_ROUTER_H_
#define DPDPU_CLUSTER_SHARD_ROUTER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "netsub/network.h"
#include "sim/simrace.h"

namespace dpdpu::cluster {

/// Stable 64-bit key hash (splitmix64 finalizer over a seed-free FNV-1a
/// pass): deterministic across platforms, independent of libstdc++.
uint64_t HashKey(std::string_view key);
uint64_t HashU64(uint64_t value);

class ShardRouter {
 public:
  struct Options {
    /// Virtual nodes per server; more vnodes = smoother load spread.
    uint32_t vnodes_per_server = 64;
    /// Replication factor: size of each key's preference list.
    uint32_t replication = 1;
  };

  ShardRouter(std::vector<netsub::NodeId> servers, Options options);

  /// The first `replication` distinct servers clockwise from the key's
  /// ring point. Ownership is static: down servers still appear (their
  /// slots are what replicas cover).
  std::vector<netsub::NodeId> PreferenceList(uint64_t key_hash) const;

  /// The first *live* server in the preference list; also records the
  /// routing decision in per-server counters. nullopt when every replica
  /// of this key is down.
  std::optional<netsub::NodeId> Route(uint64_t key_hash);
  std::optional<netsub::NodeId> RouteKey(std::string_view key) {
    return Route(HashKey(key));
  }

  /// Route() skipping servers already tried (timeout re-steer): the
  /// first live replica not in `exclude`.
  std::optional<netsub::NodeId> Route(
      uint64_t key_hash, const std::vector<netsub::NodeId>& exclude);

  void MarkDown(netsub::NodeId server);
  void MarkUp(netsub::NodeId server);
  /// Recovery gate: the server accepts writes (so it does not fall
  /// further behind) but is excluded from read routing until catch-up
  /// completes and MarkUp() re-admits it.
  void MarkWriteOnly(netsub::NodeId server);
  bool IsUp(netsub::NodeId server) const { return down_.count(server) == 0; }
  /// Whether writes may be sent to this server (up or write-only).
  bool IsWritable(netsub::NodeId server) const { return IsUp(server); }
  /// Whether reads may be routed to this server (up and caught up).
  bool IsReadable(netsub::NodeId server) const {
    return IsUp(server) && write_only_.count(server) == 0;
  }
  size_t live_servers() const { return servers_.size() - down_.size(); }
  const std::vector<netsub::NodeId>& servers() const { return servers_; }
  uint32_t replication() const { return options_.replication; }

  /// Requests routed to each server (load-imbalance studies).
  const std::map<netsub::NodeId, uint64_t>& routed() const {
    DPDPU_SIM_ACCESS(race_tag_, "ShardRouter", kRaceKeyCounters,
                     sim::AccessKind::kRead);
    return routed_;
  }

 private:
  /// simrace sub-keys: liveness (down/write-only sets — reads by Route,
  /// writes by Mark*) vs. routed counters (commutative bumps by Route,
  /// reads by routed()).
  static constexpr uint64_t kRaceKeyLiveness = 0;
  static constexpr uint64_t kRaceKeyCounters = 1;
  struct Point {
    uint64_t hash;
    netsub::NodeId server;
    bool operator<(const Point& o) const {
      return hash != o.hash ? hash < o.hash : server < o.server;
    }
  };

  Options options_;
  std::vector<netsub::NodeId> servers_;
  std::vector<Point> ring_;  // sorted by hash
  std::set<netsub::NodeId> down_;
  std::set<netsub::NodeId> write_only_;
  std::map<netsub::NodeId, uint64_t> routed_;
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::cluster

#endif  // DPDPU_CLUSTER_SHARD_ROUTER_H_
