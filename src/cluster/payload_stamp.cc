#include "cluster/payload_stamp.h"

#include "cluster/shard_router.h"
#include "common/logging.h"

namespace dpdpu::cluster {

namespace {

uint64_t BodyState(const PayloadStamp& stamp) {
  return HashU64(stamp.key ^ HashU64(stamp.version) ^
                 HashU64(stamp.seed ^ kPayloadStampMagic));
}

uint64_t BodyWord(uint64_t state, uint64_t index) {
  return HashU64(state + index * 0x9e3779b97f4a7c15ull);
}

}  // namespace

Buffer MakeStampedPayload(size_t bytes, const PayloadStamp& stamp) {
  DPDPU_CHECK(bytes >= kPayloadStampBytes);
  Buffer out;
  out.reserve(bytes);
  out.AppendU64(kPayloadStampMagic);
  out.AppendU64(stamp.key);
  out.AppendU64(stamp.version);
  out.AppendU64(stamp.seed);
  uint64_t state = BodyState(stamp);
  uint64_t index = 0;
  while (out.size() + 8 <= bytes) {
    out.AppendU64(BodyWord(state, index++));
  }
  uint64_t tail = BodyWord(state, index);
  while (out.size() < bytes) {
    out.AppendU8(static_cast<uint8_t>(tail));
    tail >>= 8;
  }
  return out;
}

std::optional<PayloadStamp> ParsePayloadStamp(ByteSpan data) {
  ByteReader reader(data);
  uint64_t magic = 0;
  PayloadStamp stamp;
  if (!reader.ReadU64(&magic) || magic != kPayloadStampMagic) {
    return std::nullopt;
  }
  if (!reader.ReadU64(&stamp.key) || !reader.ReadU64(&stamp.version) ||
      !reader.ReadU64(&stamp.seed)) {
    return std::nullopt;
  }
  return stamp;
}

bool VerifyStampedPayload(ByteSpan data) {
  std::optional<PayloadStamp> stamp = ParsePayloadStamp(data);
  if (!stamp) return false;
  Buffer expected = MakeStampedPayload(data.size(), *stamp);
  return std::equal(data.begin(), data.end(), expected.span().begin());
}

}  // namespace dpdpu::cluster
