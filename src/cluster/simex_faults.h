// simex fault adapter: turns the fleet's failure-injection hooks into
// simulator choice points, so the explorer can enumerate *when* a node
// fails and recovers rather than the scenario hard-coding one timing.
//
// Each Arm() call registers one fail-timing choice (alternative 0 = no
// fault when allowed, then one alternative per candidate time) and, on
// branches that do fail, one recover-timing choice. With no chooser
// installed every choice resolves to its default, so arming is free in
// normal runs: scenarios can share one code path between the reference
// schedule and exploration. Frame-drop placement (the MiniTCP
// drop/abort axis) lives one layer down — Network::ExploreDrops — and
// composes with this adapter in the same scenario.

#ifndef DPDPU_CLUSTER_SIMEX_FAULTS_H_
#define DPDPU_CLUSTER_SIMEX_FAULTS_H_

#include <vector>

#include "cluster/fleet.h"
#include "sim/simulator.h"

namespace dpdpu::cluster {

struct FaultScheduleOptions {
  /// Storage node index to fail.
  uint32_t node = 0;
  FailMode mode = FailMode::kGraceful;
  /// Candidate absolute fail times (virtual ns). Empty + allow_no_fail
  /// arms a degenerate single-alternative choice (never fails).
  std::vector<sim::SimTime> fail_times;
  /// When true, alternative 0 skips the fault entirely (the default).
  /// When false the first fail time is the default — for scenarios
  /// whose invariant is about failover itself.
  bool allow_no_fail = true;
  /// Candidate recovery delays measured from the chosen fail time.
  /// Empty = the node stays down.
  std::vector<sim::SimTime> recover_after;
  /// When true, alternative 0 of the recover choice leaves the node
  /// down (the default on fail branches).
  bool allow_no_recover = true;
};

/// What one Arm() call resolved to (for scenario assertions and metric
/// lines). Times are meaningful only when the matching `did_*` is set.
struct ArmedFault {
  uint32_t node = 0;
  bool did_fail = false;
  bool did_recover = false;
  sim::SimTime fail_time = 0;
  sim::SimTime recover_time = 0;
};

/// Registers fault choice points against a fleet and schedules whatever
/// the simulator's chooser picks. Must outlive the simulation run only
/// if armed() is read afterwards; the scheduled closures capture the
/// fleet, not the schedule object.
class FaultSchedule {
 public:
  explicit FaultSchedule(Fleet* fleet) : fleet_(fleet) {}

  /// Registers the choice points for one node and schedules the chosen
  /// fail/recover pair. Call before running the workload (choice order
  /// must be a pure function of the schedule). Returns what was chosen.
  const ArmedFault& Arm(const FaultScheduleOptions& options);

  const std::vector<ArmedFault>& armed() const { return armed_; }

 private:
  Fleet* fleet_;
  std::vector<ArmedFault> armed_;
};

}  // namespace dpdpu::cluster

#endif  // DPDPU_CLUSTER_SIMEX_FAULTS_H_
