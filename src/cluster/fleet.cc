#include "cluster/fleet.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "kern/textgen.h"

namespace dpdpu::cluster {

Fleet::Fleet(sim::Simulator* sim, FleetSpec spec)
    : sim_(sim), spec_(std::move(spec)) {
  DPDPU_CHECK(spec_.storage_servers >= 1);
  fabric_ = std::make_unique<netsub::Network>(sim);

  std::vector<netsub::NodeId> server_ids;
  for (uint32_t i = 0; i < spec_.storage_servers; ++i) {
    rt::PlatformOptions options = spec_.storage_template;
    options.node = storage_node_id(i);
    options.server_spec =
        hw::StorageServerSpec("storage" + std::to_string(i));
    storage_nodes_.push_back(
        std::make_unique<rt::Platform>(sim, fabric_.get(), options));
    server_ids.push_back(options.node);
  }
  for (uint32_t i = 0; i < spec_.clients; ++i) {
    rt::PlatformOptions options = spec_.client_template;
    options.node = client_node_id(i);
    options.server_spec = hw::ComputeNodeSpec("client" + std::to_string(i));
    client_nodes_.push_back(
        std::make_unique<rt::Platform>(sim, fabric_.get(), options));
  }

  router_ = std::make_unique<ShardRouter>(server_ids, spec_.routing);
  consistency_ =
      std::make_unique<ConsistencyManager>(this, spec_.consistency);
  inflight_rpcs_.assign(spec_.storage_servers, 0);
  recover_epochs_.assign(spec_.storage_servers, 0);

  // Format the shard file on every storage server and start serving.
  // Content is identical fleet-wide so any replica can answer any read.
  constexpr uint64_t kChunk = 1 << 20;
  Buffer chunk;
  if (spec_.shard_fill_seed != 0) {
    chunk = kern::GenerateRandomBytes(kChunk, spec_.shard_fill_seed);
  } else {
    chunk = Buffer(kChunk);
  }
  for (uint32_t i = 0; i < spec_.storage_servers; ++i) {
    rt::Platform& node = *storage_nodes_[i];
    auto file = node.fs().Create(spec_.shard_file_name);
    DPDPU_CHECK(file.ok());
    shard_files_.push_back(*file);
    for (uint64_t off = 0; off < spec_.shard_bytes; off += kChunk) {
      uint64_t n = std::min(kChunk, spec_.shard_bytes - off);
      DPDPU_CHECK(
          node.fs().Write(*file, off, chunk.span().subspan(0, n)).ok());
    }
    node.storage().Serve();
  }

  for (auto& node : storage_nodes_) {
    storage_probes_.emplace_back(&node->server());
  }
  for (auto& node : client_nodes_) {
    client_probes_.emplace_back(&node->server());
  }
}

uint32_t Fleet::storage_index(netsub::NodeId node) const {
  DPDPU_CHECK(node >= 1 && node <= spec_.storage_servers);
  return node - 1;
}

void Fleet::FailStorageNode(uint32_t i, FailMode mode) {
  ++recover_epochs_.at(i);
  router_->MarkDown(storage_node_id(i));
  if (mode == FailMode::kHard) {
    fabric_->SetNodeUp(storage_node_id(i), false);
  }
}

void Fleet::RecoverStorageNode(uint32_t i) {
  fabric_->SetNodeUp(storage_node_id(i), true);
  if (!consistency_->enabled()) {
    // Bug repro: the replica rejoins the read set immediately and serves
    // whatever it held when it went down.
    router_->MarkUp(storage_node_id(i));
    return;
  }
  // Writes flow to the node at once (so it stops falling behind), but
  // reads stay away until catch-up has replayed what it missed. The
  // epoch guard keeps a catch-up that outlives a second failure of the
  // same node from re-admitting it while it is dark: only the recovery
  // that matches the node's current epoch may MarkUp.
  router_->MarkWriteOnly(storage_node_id(i));
  uint64_t epoch = recover_epochs_.at(i);
  consistency_->CatchUp(i, [this, i, epoch] {
    if (recover_epochs_.at(i) != epoch) return;
    // Publish what the node durably holds (hint replays plus writes it
    // acked while write-only) before reads steer back to it, so a write
    // acked solely by this replica is committed, not silently dropped.
    consistency_->FinalizeCatchUp(i);
    router_->MarkUp(storage_node_id(i));
  });
}

void Fleet::StartProbes() {
  for (auto& probe : storage_probes_) probe.Start();
  for (auto& probe : client_probes_) probe.Start();
  probe_fabric_bytes_start_ = fabric_->total_bytes_delivered();
}

void Fleet::StopProbes() {
  for (auto& probe : storage_probes_) probe.Stop();
  for (auto& probe : client_probes_) probe.Stop();
  probe_fabric_bytes_stop_ = fabric_->total_bytes_delivered();
}

FleetUsage Fleet::Usage() const {
  FleetUsage usage;
  for (const auto& probe : storage_probes_) {
    usage.storage_host_cores += probe.host_cores();
    usage.storage_dpu_cores += probe.dpu_cores();
  }
  usage.host_cores = usage.storage_host_cores;
  usage.dpu_cores = usage.storage_dpu_cores;
  for (const auto& probe : client_probes_) {
    usage.host_cores += probe.host_cores();
    usage.dpu_cores += probe.dpu_cores();
  }
  usage.fabric_bytes =
      probe_fabric_bytes_stop_ - probe_fabric_bytes_start_;
  return usage;
}

void Fleet::SampleStorageCoresEvery(sim::SimTime interval) {
  timeline_.clear();
  sample_interval_ = interval;
  sample_prev_busy_ = 0;
  for (auto& node : storage_nodes_) {
    sample_prev_busy_ += node->server().host_cpu().resource().busy_time();
  }
  sampler_.Start(sim_, interval, [this] {
    sim::SimTime busy = 0;
    for (auto& node : storage_nodes_) {
      busy += node->server().host_cpu().resource().busy_time();
    }
    timeline_.push_back(double(busy - sample_prev_busy_) /
                        double(sample_interval_));
    sample_prev_busy_ = busy;
  });
}

}  // namespace dpdpu::cluster
