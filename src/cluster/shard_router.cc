#include "cluster/shard_router.h"

#include <algorithm>

#include "common/logging.h"

namespace dpdpu::cluster {

uint64_t HashU64(uint64_t value) {
  // splitmix64 finalizer: full-avalanche 64-bit mix.
  uint64_t z = value + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t HashKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the bytes
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return HashU64(h);
}

ShardRouter::ShardRouter(std::vector<netsub::NodeId> servers,
                         Options options)
    : options_(options), servers_(std::move(servers)) {
  DPDPU_CHECK(!servers_.empty());
  DPDPU_CHECK(options_.vnodes_per_server > 0);
  DPDPU_CHECK(options_.replication >= 1);
  DPDPU_CHECK(options_.replication <= servers_.size());
  ring_.reserve(servers_.size() * options_.vnodes_per_server);
  for (netsub::NodeId server : servers_) {
    for (uint32_t v = 0; v < options_.vnodes_per_server; ++v) {
      uint64_t point =
          HashU64((uint64_t(server) << 32) | uint64_t(v) << 1 | 1);
      ring_.push_back(Point{point, server});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::vector<netsub::NodeId> ShardRouter::PreferenceList(
    uint64_t key_hash) const {
  std::vector<netsub::NodeId> prefs;
  prefs.reserve(options_.replication);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), Point{key_hash, 0},
      [](const Point& a, const Point& b) { return a.hash < b.hash; });
  for (size_t walked = 0;
       walked < ring_.size() && prefs.size() < options_.replication;
       ++walked, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(prefs.begin(), prefs.end(), it->server) == prefs.end()) {
      prefs.push_back(it->server);
    }
  }
  return prefs;
}

std::optional<netsub::NodeId> ShardRouter::Route(uint64_t key_hash) {
  return Route(key_hash, {});
}

std::optional<netsub::NodeId> ShardRouter::Route(
    uint64_t key_hash, const std::vector<netsub::NodeId>& exclude) {
  // A routing decision reads liveness (it races a same-timestamp
  // MarkDown/MarkUp) and bumps a counter (commutative: two unordered
  // Route calls commute, but either races a routed() observation).
  DPDPU_SIM_ACCESS(race_tag_, "ShardRouter", kRaceKeyLiveness,
                   sim::AccessKind::kRead);
  DPDPU_SIM_ACCESS(race_tag_, "ShardRouter", kRaceKeyCounters,
                   sim::AccessKind::kCommutativeWrite);
  for (netsub::NodeId server : PreferenceList(key_hash)) {
    if (!IsReadable(server)) continue;
    if (std::find(exclude.begin(), exclude.end(), server) !=
        exclude.end()) {
      continue;
    }
    ++routed_[server];
    return server;
  }
  return std::nullopt;
}

void ShardRouter::MarkDown(netsub::NodeId server) {
  DPDPU_SIM_ACCESS(race_tag_, "ShardRouter", kRaceKeyLiveness,
                   sim::AccessKind::kWrite);
  down_.insert(server);
  write_only_.erase(server);
}

void ShardRouter::MarkUp(netsub::NodeId server) {
  DPDPU_SIM_ACCESS(race_tag_, "ShardRouter", kRaceKeyLiveness,
                   sim::AccessKind::kWrite);
  down_.erase(server);
  write_only_.erase(server);
}

void ShardRouter::MarkWriteOnly(netsub::NodeId server) {
  DPDPU_SIM_ACCESS(race_tag_, "ShardRouter", kRaceKeyLiveness,
                   sim::AccessKind::kWrite);
  down_.erase(server);
  write_only_.insert(server);
}

}  // namespace dpdpu::cluster
