// First-class simex scenarios for the cluster failover/consistency
// flows: hinted handoff, hint-overflow diff fallback, catch-up transfer
// gating read re-admission, read-repair, and close-callback re-steer.
// Each scenario builds a small fleet inside the explorer's Simulator,
// arms fault-timing choice points (cluster/simex_faults.h), drives a
// deterministic targeted workload, and checks one shared invariant set:
//
//  * no acked write lost — once the cluster is fully readable again,
//    the version authority's committed version for every block is at
//    least the newest version acked to a client;
//  * no stale read after re-admission — completed reads never return
//    payload older than the version committed before they started;
//  * no phantom or double commit — the authority never commits a
//    version that was not drawn (the per-op commit guard plus the
//    monotonic-max authority make a literal double commit structurally
//    impossible; phantom_commits is the corruption canary);
//  * all in-flight RPCs drained on node down — per-node in-flight
//    counters return to zero, and the router never considers a dark
//    (fabric-down) node up;
//  * hint conservation — every queued hint is replayed, abandoned to
//    the diff fallback, or still pending; none vanish.
//
// The registry below feeds tools/simex (CLI targets `cluster-*`),
// scripts/check_bench.py --explore, and the ctest replay of committed
// regression tokens in tests/simex_scenarios_test.cc.

#ifndef DPDPU_CLUSTER_SIMEX_SCENARIOS_H_
#define DPDPU_CLUSTER_SIMEX_SCENARIOS_H_

#include <string_view>
#include <vector>

#include "sim/simex.h"

namespace dpdpu::cluster {

struct ClusterScenarioInfo {
  const char* name;         // CLI target name, "cluster-" prefixed
  const char* description;  // one line for --list
  sim::Scenario (*make)();
};

/// All registered cluster consistency scenarios, in a fixed order.
const std::vector<ClusterScenarioInfo>& ClusterScenarios();

/// Lookup by CLI target name; nullptr when unknown.
const ClusterScenarioInfo* FindClusterScenario(std::string_view name);

}  // namespace dpdpu::cluster

#endif  // DPDPU_CLUSTER_SIMEX_SCENARIOS_H_
