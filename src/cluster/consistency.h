// Replica-consistency layer for the fleet (the fix for "recovered
// replicas serve stale data"). Three cooperating mechanisms, all driven
// off per-block write versions recorded in each storage node's
// se::VersionMap:
//
//  * Version authority — the fleet-level committed-version record (a
//    simulated stand-in for quorum metadata): coordinators draw a fresh
//    version per write and commit it on the first replica ack. Reads
//    compare a replica's served version against the committed one.
//  * Hinted handoff — writes that cannot reach a replica (down, or the
//    coordinator gave up after retries) queue a bounded per-node hint.
//    On overflow the queue is abandoned and recovery falls back to a
//    version-map diff.
//  * Catch-up transfer — on recovery the node is write-only routed
//    until catch-up completes: hints are replayed if intact, else the
//    authority's committed versions are diffed against the node's
//    VersionMap and only the stale blocks are copied from a live peer
//    (never a full shard re-copy). Both paths apply through the
//    version-gated write so concurrent fresh writes are never clobbered.
//
// Read-repair is the backstop: a read that observes a stale replica
// re-steers and, in the background, pushes the fresh block back to the
// stale node (dedup'd here so one block is repaired once at a time).
//
// The authority is also maintained when the layer is disabled — it then
// serves purely as the staleness instrument (expected version per block)
// that makes the bug measurable.

#ifndef DPDPU_CLUSTER_CONSISTENCY_H_
#define DPDPU_CLUSTER_CONSISTENCY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "common/buffer.h"
#include "sim/simrace.h"

namespace dpdpu::cluster {

class Fleet;

struct ConsistencyOptions {
  /// Master switch: versioned writes, hinted handoff, catch-up gating,
  /// and read-repair. Off reproduces the stale-read bug.
  bool enabled = false;
  /// Bound on queued hints per storage node; overflow abandons the
  /// queue and recovery uses the version-map diff instead.
  uint32_t max_hints_per_node = 1024;
  /// Watchdog on each catch-up transfer RPC. A request fully acked by
  /// TCP before its target goes dark never stalls the connection, so
  /// the retransmission cap cannot fire — without this bound the
  /// transfer wedges forever waiting for a response that will never
  /// come (and its unreplayed hints leak with it).
  uint64_t catchup_rpc_timeout = 2'000'000;  // 2 ms
};

class ConsistencyManager {
 public:
  struct Stats {
    uint64_t versions_issued = 0;
    /// Commit() calls that raised the committed version (re-publishing
    /// an already-committed version is idempotent and not counted).
    uint64_t commits = 0;
    /// Commit() calls naming a version never drawn for the block — an
    /// authority-corruption canary; must stay 0.
    uint64_t phantom_commits = 0;
    uint64_t hints_queued = 0;
    uint64_t hints_dropped = 0;  // rejected at enqueue (queue full)
    /// Queued hints discarded unreplayed when recovery fell back to the
    /// version-map diff. Conservation: hints_queued == hints_replayed +
    /// hints_abandoned + sum(hints_pending()).
    uint64_t hints_abandoned = 0;
    uint64_t hints_replayed = 0;
    uint64_t hint_bytes = 0;  // payload bytes replayed from hints
    uint64_t hint_overflow_fallbacks = 0;
    uint64_t diff_blocks_copied = 0;
    uint64_t diff_bytes = 0;  // payload bytes copied by the diff path
    uint64_t diff_blocks_unrepaired = 0;  // no live peer held the block
    uint64_t catchup_write_failures = 0;
    /// Transfer RPCs abandoned by the watchdog (target or donor went
    /// dark after acking the request, so no response ever arrives).
    uint64_t catchup_rpc_timeouts = 0;
    uint64_t catchups_completed = 0;
    /// Transfers that stood down because the node failed again mid
    /// catch-up; their unreplayed hints are handed back to the queue.
    uint64_t catchups_aborted = 0;
    uint64_t read_repairs = 0;
  };

  ConsistencyManager(Fleet* fleet, ConsistencyOptions options);

  bool enabled() const { return options_.enabled; }
  const ConsistencyOptions& options() const { return options_; }

  // --- version authority ---------------------------------------------------

  /// Draws the next write version for the block at `offset` (key and
  /// length recorded for the catch-up diff).
  uint64_t NextVersion(uint64_t offset, uint64_t key, uint32_t length);
  /// Records that `version` reached at least one replica.
  void Commit(uint64_t offset, uint64_t version);
  /// Latest committed version for the block; 0 when never written.
  uint64_t CommittedVersion(uint64_t offset) const;

  // --- hinted handoff ------------------------------------------------------

  void QueueHint(uint32_t node_index, uint64_t offset, uint64_t version,
                 Buffer data);
  size_t hints_pending(uint32_t node_index) const;
  bool hint_overflowed(uint32_t node_index) const;

  // --- catch-up transfer ---------------------------------------------------

  /// Brings storage node `node_index` up to date (hints, else diff) and
  /// invokes `done` when it may serve reads again. The caller keeps the
  /// node write-only routed until then. May complete synchronously when
  /// there is nothing to transfer.
  void CatchUp(uint32_t node_index, std::function<void()> done);

  /// Publishes the node's durable state to the version authority; the
  /// caller invokes this immediately before re-admitting the node to
  /// the read set. Every version the node holds durably is about to
  /// become observable, so the authority must account for it — in
  /// particular writes acked while the node was write-only (no readable
  /// replica held them then, so the coordinator could not commit) and
  /// replayed hints. Without this the staleness instrument
  /// under-expects and peer catch-up diffs skip those blocks.
  void FinalizeCatchUp(uint32_t node_index);

  // --- read-repair dedup ---------------------------------------------------

  /// Claims (node, offset) for repair; false when a repair is already in
  /// flight for it.
  bool BeginRepair(uint32_t node_index, uint64_t offset);
  void EndRepair(uint32_t node_index, uint64_t offset);
  void NoteReadRepair() {
    DPDPU_SIM_ACCESS(race_tag_, "ConsistencyManager",
                     sim::RaceKey(kRaceSaltRepairs, 0),
                     sim::AccessKind::kCommutativeWrite);
    ++stats_.read_repairs;
  }

  const Stats& stats() const { return stats_; }

 private:
  friend struct CatchUpJob;

  struct AuthorityEntry {
    uint64_t key = 0;
    uint32_t length = 0;
    uint64_t next_version = 0;
    uint64_t committed = 0;
  };
  struct Hint {
    uint64_t offset = 0;
    uint64_t version = 0;
    Buffer data;
  };

  /// simrace sub-key salts (domain separation inside one authority tag):
  /// per-block version draws, per-block committed record, per-node hint
  /// queues, per-(node, block) repair claims.
  static constexpr uint64_t kRaceSaltNextVersion = 0x10;
  static constexpr uint64_t kRaceSaltCommitted = 0x11;
  static constexpr uint64_t kRaceSaltHints = 0x20;
  static constexpr uint64_t kRaceSaltRepairs = 0x30;

  Fleet* fleet_;
  ConsistencyOptions options_;
  /// Keyed by shard offset (block id); std::map so the catch-up diff
  /// walks blocks in deterministic order.
  std::map<uint64_t, AuthorityEntry> authority_;
  std::map<uint32_t, std::deque<Hint>> hints_;  // by storage index
  std::set<uint32_t> overflowed_;
  std::set<std::pair<uint32_t, uint64_t>> active_repairs_;
  Stats stats_;
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::cluster

#endif  // DPDPU_CLUSTER_CONSISTENCY_H_
