// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum DP
// kernel used by the storage and network substrates for integrity checks.

#ifndef DPDPU_KERN_CRC32_H_
#define DPDPU_KERN_CRC32_H_

#include <cstdint>

#include "common/buffer.h"

namespace dpdpu::kern {

/// One-shot CRC-32 of `data`.
uint32_t Crc32(ByteSpan data);

/// Incremental form: feed `crc` from a previous call (start with 0).
/// Slice-by-8: folds eight input bytes per iteration.
uint32_t Crc32Update(uint32_t crc, ByteSpan data);

/// Byte-at-a-time reference implementation. Kept as the oracle the
/// sliced fast path is property-tested against; not for hot paths.
uint32_t Crc32UpdateBytewise(uint32_t crc, ByteSpan data);

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_CRC32_H_
