#include "kern/dedup.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace dpdpu::kern {

namespace {

constexpr size_t kWindow = 48;
constexpr uint64_t kPrime = 1099511628211ull;

// Deterministic per-byte mixing table for the rolling hash.
std::array<uint64_t, 256> MakeByteTable() {
  std::array<uint64_t, 256> t{};
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 256; ++i) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    t[i] = x;
  }
  return t;
}

const std::array<uint64_t, 256>& ByteTable() {
  static const std::array<uint64_t, 256> t = MakeByteTable();
  return t;
}

uint64_t PowMod(uint64_t base, size_t exp) {
  uint64_t r = 1;
  while (exp--) r *= base;
  return r;
}

}  // namespace

uint64_t Fingerprint64(ByteSpan data) {
  uint64_t h = 14695981039346656037ull;
  for (uint8_t b : data) {
    h ^= b;
    h *= kPrime;
  }
  return h;
}

std::vector<Chunk> ChunkData(ByteSpan data, const ChunkerOptions& options) {
  DPDPU_CHECK(options.min_size >= kWindow);
  DPDPU_CHECK((options.avg_size & (options.avg_size - 1)) == 0);
  DPDPU_CHECK(options.min_size <= options.avg_size);
  DPDPU_CHECK(options.avg_size <= options.max_size);

  const auto& table = ByteTable();
  const uint64_t mask = options.avg_size - 1;
  // Remove the oldest byte's contribution: hash = hash*P + t[b];
  // after `kWindow` steps a byte's term is t[b] * P^(kWindow-1).
  const uint64_t out_factor = PowMod(kPrime, kWindow - 1);

  std::vector<Chunk> chunks;
  size_t start = 0;
  while (start < data.size()) {
    size_t limit = std::min(data.size(), start + options.max_size);
    size_t cut = limit;
    if (limit - start > options.min_size) {
      uint64_t h = 0;
      // Roll the window; boundaries only eligible after min_size.
      size_t warm = start + options.min_size - kWindow;
      for (size_t i = warm; i < limit; ++i) {
        h = h * kPrime + table[data[i]];
        if (i >= warm + kWindow) {
          h -= table[data[i - kWindow]] * out_factor * kPrime;
        }
        if (i + 1 >= start + options.min_size && (h & mask) == mask) {
          cut = i + 1;
          break;
        }
      }
    }
    chunks.push_back(Chunk{start, cut - start,
                           Fingerprint64(data.subspan(start, cut - start))});
    start = cut;
  }
  return chunks;
}

std::vector<ChunkCount> DedupIndex::HotChunks(size_t n) const {
  std::vector<ChunkCount> all;
  all.reserve(seen_.size());
  for (const auto& [fingerprint, count] : seen_) {
    all.push_back(ChunkCount{fingerprint, count});
  }
  // Total order independent of hash-table iteration order.
  std::sort(all.begin(), all.end(),
            [](const ChunkCount& a, const ChunkCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.fingerprint < b.fingerprint;
            });
  if (all.size() > n) all.resize(n);
  return all;
}

DedupStats DedupIndex::Add(ByteSpan data) {
  std::vector<Chunk> chunks = ChunkData(data, options_);
  for (const Chunk& c : chunks) {
    ++stats_.total_chunks;
    stats_.total_bytes += c.size;
    auto [it, inserted] = seen_.emplace(c.fingerprint, 1);
    if (inserted) {
      ++stats_.unique_chunks;
      stats_.unique_bytes += c.size;
    } else {
      ++it->second;
    }
  }
  return stats_;
}

}  // namespace dpdpu::kern
