#include "kern/textgen.h"

#include <string>
#include <vector>

namespace dpdpu::kern {

namespace {

// Builds a deterministic vocabulary with an English-like word length
// distribution (2-12 characters, mode around 4-6).
std::vector<std::string> BuildVocabulary(uint32_t size, Pcg32& rng) {
  static const char* kSyllables[] = {
      "an", "ba", "con", "da", "el", "fra", "gen", "hi", "in", "ju",
      "ka", "lo", "men", "no", "or", "pre", "qua", "re", "sta", "tion",
      "ur", "ver", "wa", "xi", "yo", "zu", "ing", "ed", "er", "ly"};
  constexpr int kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);
  std::vector<std::string> vocab;
  vocab.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    int syllables = 1 + static_cast<int>(rng.NextBounded(3));
    std::string w;
    for (int s = 0; s < syllables; ++s) {
      w += kSyllables[rng.NextBounded(kNumSyllables)];
    }
    vocab.push_back(std::move(w));
  }
  return vocab;
}

}  // namespace

Buffer GenerateText(size_t bytes, const TextGenOptions& options) {
  Pcg32 rng(options.seed);
  std::vector<std::string> vocab = BuildVocabulary(options.vocabulary, rng);
  ZipfGenerator zipf(options.vocabulary, options.zipf_theta);

  Buffer out;
  out.reserve(bytes + 64);
  int words_in_sentence = 0;
  int sentence_length = 6 + static_cast<int>(rng.NextBounded(12));
  bool capitalize = true;
  while (out.size() < bytes) {
    const std::string& w = vocab[zipf.Next(rng)];
    if (capitalize && !w.empty()) {
      out.AppendU8(static_cast<uint8_t>(w[0] - 'a' + 'A'));
      out.Append(std::string_view(w).substr(1));
      capitalize = false;
    } else {
      out.Append(w);
    }
    if (++words_in_sentence >= sentence_length) {
      out.Append(". ");
      words_in_sentence = 0;
      sentence_length = 6 + static_cast<int>(rng.NextBounded(12));
      capitalize = true;
    } else {
      out.Append(" ");
    }
  }
  out.resize(bytes);  // exact size: callers slice pages out of the text
  return out;
}

Buffer GenerateRandomBytes(size_t bytes, uint64_t seed) {
  Pcg32 rng(seed);
  Buffer out(bytes);
  FillRandomBytes(rng, out.data(), bytes);
  return out;
}

}  // namespace dpdpu::kern
