// ChaCha20 stream cipher (RFC 8439), the encryption DP kernel. Encryption
// and decryption are the same XOR-keystream operation.

#ifndef DPDPU_KERN_CHACHA20_H_
#define DPDPU_KERN_CHACHA20_H_

#include <array>
#include <cstdint>

#include "common/buffer.h"
#include "common/result.h"

namespace dpdpu::kern {

inline constexpr size_t kChaCha20KeyBytes = 32;
inline constexpr size_t kChaCha20NonceBytes = 12;

/// Encrypts (or decrypts) `input` with the given key/nonce, starting at
/// block `counter` (RFC 8439 uses 1 for the first data block of an AEAD
/// message; plain stream usage commonly starts at 0).
Buffer ChaCha20Xor(const std::array<uint8_t, kChaCha20KeyBytes>& key,
                   const std::array<uint8_t, kChaCha20NonceBytes>& nonce,
                   uint32_t counter, ByteSpan input);

/// Exposes a single 64-byte keystream block (for test vectors).
std::array<uint8_t, 64> ChaCha20Block(
    const std::array<uint8_t, kChaCha20KeyBytes>& key,
    const std::array<uint8_t, kChaCha20NonceBytes>& nonce, uint32_t counter);

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_CHACHA20_H_
