// Canonical Huffman coding utilities shared by the DEFLATE encoder and
// decoder: optimal length-limited code construction (package-merge),
// canonical code assignment (RFC 1951 §3.2.2), and a canonical decoder.

#ifndef DPDPU_KERN_HUFFMAN_H_
#define DPDPU_KERN_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kern/bitio.h"

namespace dpdpu::kern {

/// Maximum code length permitted by DEFLATE for litlen/dist codes.
inline constexpr int kMaxHuffmanBits = 15;

/// Computes optimal length-limited code lengths for the given symbol
/// frequencies using the package-merge algorithm. Symbols with zero
/// frequency get length 0. A single used symbol gets length 1. Requires
/// 2^max_bits >= number of used symbols.
std::vector<uint8_t> PackageMergeLengths(const std::vector<uint64_t>& freqs,
                                         int max_bits);

/// Assigns canonical code values from code lengths per RFC 1951 §3.2.2.
/// codes[i] is valid when lengths[i] > 0.
std::vector<uint32_t> CanonicalCodes(const std::vector<uint8_t>& lengths);

/// Canonical Huffman decoder over LSB-first DEFLATE bit streams.
/// Tolerates incomplete codes: decoding fails only when the stream
/// actually presents an unassigned code (RFC permits unused incomplete
/// distance codes).
class HuffmanDecoder {
 public:
  /// Default instance decodes nothing; assign from Build().
  HuffmanDecoder() = default;

  /// Builds from code lengths; fails on over-subscribed codes.
  static Result<HuffmanDecoder> Build(const std::vector<uint8_t>& lengths);

  /// Decodes one symbol. Fails on underflow or unassigned code.
  Status Decode(BitReader& reader, int* symbol) const;

  /// Number of symbols with non-zero length.
  int used_symbols() const { return static_cast<int>(symbols_.size()); }

 private:
  // count_[l]: number of codes of length l; symbols_ sorted canonically.
  std::vector<uint16_t> count_;
  std::vector<uint16_t> symbols_;
};

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_HUFFMAN_H_
