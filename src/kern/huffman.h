// Canonical Huffman coding utilities shared by the DEFLATE encoder and
// decoder: optimal length-limited code construction (package-merge),
// canonical code assignment (RFC 1951 §3.2.2), and a canonical decoder.

#ifndef DPDPU_KERN_HUFFMAN_H_
#define DPDPU_KERN_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kern/bitio.h"

namespace dpdpu::kern {

/// Maximum code length permitted by DEFLATE for litlen/dist codes.
inline constexpr int kMaxHuffmanBits = 15;

/// Computes optimal length-limited code lengths for the given symbol
/// frequencies using the package-merge algorithm. Symbols with zero
/// frequency get length 0. A single used symbol gets length 1. Requires
/// 2^max_bits >= number of used symbols.
std::vector<uint8_t> PackageMergeLengths(const std::vector<uint64_t>& freqs,
                                         int max_bits);

/// Assigns canonical code values from code lengths per RFC 1951 §3.2.2.
/// codes[i] is valid when lengths[i] > 0.
std::vector<uint32_t> CanonicalCodes(const std::vector<uint8_t>& lengths);

/// Canonical Huffman decoder over LSB-first DEFLATE bit streams.
/// Tolerates incomplete codes: decoding fails only when the stream
/// actually presents an unassigned code (RFC permits unused incomplete
/// distance codes).
///
/// Build() additionally constructs a single-level lookup table keyed on
/// kLutBits peeked stream bits; DecodeFast resolves codes of length <=
/// kLutBits with one table hit and falls back to the canonical
/// bit-at-a-time walk for the rare longer codes and the stream tail.
class HuffmanDecoder {
 public:
  /// LUT width: covers every code the package-merge encoder emits for
  /// typical corpora (long codes are by construction rare symbols).
  /// 2^10 u16 entries = 2 KB per decoder.
  static constexpr int kLutBits = 10;

  /// Default instance decodes nothing; assign from Build().
  HuffmanDecoder() = default;

  /// Builds from code lengths; fails on over-subscribed codes.
  static Result<HuffmanDecoder> Build(const std::vector<uint8_t>& lengths);

  /// Decodes one symbol. Fails on underflow or unassigned code.
  Status Decode(BitReader& reader, int* symbol) const;

  /// Hot-path decode: one LUT probe on peeked bits; identical results
  /// and error behavior to Decode().
  Status DecodeFast(BitReader& reader, int* symbol) const {
    reader.Refill();
    if (!lut_.empty()) {
      uint16_t entry = lut_[reader.PeekBits(kLutBits)];
      int len = entry & 31;
      if (len != 0 && len <= reader.bits_buffered()) {
        reader.ConsumeBits(len);
        *symbol = entry >> 5;
        return Status::Ok();
      }
    }
    return Decode(reader, symbol);
  }

  /// Number of symbols with non-zero length.
  int used_symbols() const { return static_cast<int>(symbols_.size()); }

 private:
  // count_[l]: number of codes of length l; symbols_ sorted canonically.
  std::vector<uint16_t> count_;
  std::vector<uint16_t> symbols_;
  // lut_[peeked kLutBits, LSB-first]: (symbol << 5) | code_length for
  // codes of length <= kLutBits; 0 = miss (longer or unassigned code).
  std::vector<uint16_t> lut_;
};

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_HUFFMAN_H_
