// Deterministic synthetic "natural language" generator: Zipf-distributed
// words from a synthetic vocabulary, with sentence structure. Stands in
// for the paper's Figure 1 natural-language corpora (see DESIGN.md §1) —
// compressible at ratios typical of English text.

#ifndef DPDPU_KERN_TEXTGEN_H_
#define DPDPU_KERN_TEXTGEN_H_

#include <cstddef>
#include <cstdint>

#include "common/buffer.h"
#include "common/rng.h"

namespace dpdpu::kern {

struct TextGenOptions {
  uint64_t seed = 1;
  /// Vocabulary size; smaller means more repetition (higher ratio).
  uint32_t vocabulary = 8192;
  /// Zipf skew of word frequency (English is ~1.0; capped below 1).
  double zipf_theta = 0.95;
};

/// Generates exactly `bytes` of text.
Buffer GenerateText(size_t bytes, const TextGenOptions& options = {});

/// Generates `bytes` of incompressible random payload.
Buffer GenerateRandomBytes(size_t bytes, uint64_t seed = 1);

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_TEXTGEN_H_
