// DEFLATE (RFC 1951) compression and decompression — the paper's Figure 1
// workload ("the lossless DEFLATE algorithm"). This is a from-scratch,
// fully self-contained implementation: LZ77 with hash-chain match search
// and lazy evaluation, optimal length-limited (package-merge) dynamic
// Huffman codes, and per-block stored/fixed/dynamic selection. The
// decoder handles all three block types and validates streams defensively
// (Status::Corruption on malformed input).

#ifndef DPDPU_KERN_DEFLATE_H_
#define DPDPU_KERN_DEFLATE_H_

#include <cstddef>
#include <cstdint>

#include "common/buffer.h"
#include "common/result.h"

namespace dpdpu::kern {

struct DeflateOptions {
  /// 1 (fastest) .. 9 (best ratio); controls match-search effort.
  int level = 6;
};

/// Compresses `input` into a raw DEFLATE stream (no zlib/gzip wrapper).
Result<Buffer> DeflateCompress(ByteSpan input,
                               const DeflateOptions& options = {});

/// Decompresses a raw DEFLATE stream. `max_output` bounds memory for
/// untrusted inputs; exceeding it fails with ResourceExhausted.
Result<Buffer> DeflateDecompress(ByteSpan input,
                                 size_t max_output = size_t(1) << 31);

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_DEFLATE_H_
