// LSB-first bit I/O as used by the DEFLATE wire format (RFC 1951 §3.1.1):
// bits fill each byte starting from its least significant bit.

#ifndef DPDPU_KERN_BITIO_H_
#define DPDPU_KERN_BITIO_H_

#include <bit>
#include <cstdint>
#include <cstring>

#include "common/buffer.h"

namespace dpdpu::kern {

/// Accumulates bits LSB-first into a Buffer.
class BitWriter {
 public:
  explicit BitWriter(Buffer* out) : out_(out) {}

  /// Writes the low `count` bits of `bits`, LSB-first. count in [0, 32].
  void WriteBits(uint32_t bits, int count) {
    acc_ |= uint64_t(bits & ((count == 32) ? 0xFFFFFFFFu
                                           : ((1u << count) - 1u)))
            << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_->AppendU8(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Writes a Huffman code: DEFLATE transmits codes MSB-first, so the
  /// canonical code value is bit-reversed before the LSB-first write.
  void WriteHuffmanCode(uint32_t code, int length) {
    uint32_t reversed = 0;
    for (int i = 0; i < length; ++i) {
      reversed = (reversed << 1) | ((code >> i) & 1u);
    }
    WriteBits(reversed, length);
  }

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte() {
    if (filled_ > 0) {
      out_->AppendU8(static_cast<uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

  /// Bits currently pending (for size accounting).
  int pending_bits() const { return filled_; }

 private:
  Buffer* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Consumes bits LSB-first from a ByteSpan.
class BitReader {
 public:
  explicit BitReader(ByteSpan in) : in_(in) {}

  /// Reads `count` bits (0..32) into *out. Returns false on underflow.
  bool ReadBits(int count, uint32_t* out) {
    while (filled_ < count) {
      if (pos_ >= in_.size()) return false;
      acc_ |= uint64_t(in_[pos_++]) << filled_;
      filled_ += 8;
    }
    *out = static_cast<uint32_t>(
        acc_ & ((count == 32) ? 0xFFFFFFFFull : ((1ull << count) - 1)));
    acc_ >>= count;
    filled_ -= count;
    return true;
  }

  /// Reads a single bit.
  bool ReadBit(uint32_t* out) { return ReadBits(1, out); }

  // -- Bulk lookahead primitives (table-driven Huffman decode) ----------
  //
  // Invariant shared with ReadBits/ReadAlignedByte: accumulator bits at
  // positions >= filled_ are zero, so the byte-level paths stay correct
  // regardless of how the buffer was filled.

  /// Tops the buffer up to >= 56 bits while input remains: one 8-byte
  /// load mid-stream (masked to the whole bytes that fit), byte-wise
  /// within the final 8 bytes.
  void Refill() {
    if (filled_ >= 56) return;
    if (in_.size() - pos_ >= 8) {
      uint64_t w;
      if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(&w, in_.data() + pos_, 8);
      } else {
        w = 0;
        for (int i = 7; i >= 0; --i) w = (w << 8) | in_[pos_ + size_t(i)];
      }
      int take = (63 - filled_) >> 3;  // whole bytes that fit; >= 1 here
      acc_ |= (w & ((1ull << (8 * take)) - 1)) << filled_;
      pos_ += size_t(take);
      filled_ += take * 8;
    } else {
      while (filled_ < 56 && pos_ < in_.size()) {
        acc_ |= uint64_t(in_[pos_++]) << filled_;
        filled_ += 8;
      }
    }
  }

  /// Returns the low `count` (<= 32) buffered bits without consuming.
  /// Bits past end-of-stream read as zero; callers must check
  /// bits_buffered() before trusting more than bits_buffered() bits.
  uint32_t PeekBits(int count) const {
    return static_cast<uint32_t>(
        acc_ & ((count == 32) ? 0xFFFFFFFFull : ((1ull << count) - 1)));
  }

  /// Discards `count` bits previously Peeked; count <= bits_buffered().
  void ConsumeBits(int count) {
    acc_ >>= count;
    filled_ -= count;
  }

  /// Bits currently available to Peek/Consume.
  int bits_buffered() const { return filled_; }

  /// Discards buffered bits to realign at the next byte boundary.
  void AlignToByte() {
    int drop = filled_ % 8;
    acc_ >>= drop;
    filled_ -= drop;
  }

  /// Reads a whole byte after alignment. Returns false on underflow.
  bool ReadAlignedByte(uint8_t* out) {
    if (filled_ >= 8) {
      *out = static_cast<uint8_t>(acc_);
      acc_ >>= 8;
      filled_ -= 8;
      return true;
    }
    if (pos_ >= in_.size()) return false;
    *out = in_[pos_++];
    return true;
  }

  /// Bytes not yet pulled into the accumulator.
  size_t bytes_remaining() const { return in_.size() - pos_; }

 private:
  ByteSpan in_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_BITIO_H_
