// LSB-first bit I/O as used by the DEFLATE wire format (RFC 1951 §3.1.1):
// bits fill each byte starting from its least significant bit.

#ifndef DPDPU_KERN_BITIO_H_
#define DPDPU_KERN_BITIO_H_

#include <cstdint>

#include "common/buffer.h"

namespace dpdpu::kern {

/// Accumulates bits LSB-first into a Buffer.
class BitWriter {
 public:
  explicit BitWriter(Buffer* out) : out_(out) {}

  /// Writes the low `count` bits of `bits`, LSB-first. count in [0, 32].
  void WriteBits(uint32_t bits, int count) {
    acc_ |= uint64_t(bits & ((count == 32) ? 0xFFFFFFFFu
                                           : ((1u << count) - 1u)))
            << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_->AppendU8(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Writes a Huffman code: DEFLATE transmits codes MSB-first, so the
  /// canonical code value is bit-reversed before the LSB-first write.
  void WriteHuffmanCode(uint32_t code, int length) {
    uint32_t reversed = 0;
    for (int i = 0; i < length; ++i) {
      reversed = (reversed << 1) | ((code >> i) & 1u);
    }
    WriteBits(reversed, length);
  }

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte() {
    if (filled_ > 0) {
      out_->AppendU8(static_cast<uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

  /// Bits currently pending (for size accounting).
  int pending_bits() const { return filled_; }

 private:
  Buffer* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Consumes bits LSB-first from a ByteSpan.
class BitReader {
 public:
  explicit BitReader(ByteSpan in) : in_(in) {}

  /// Reads `count` bits (0..32) into *out. Returns false on underflow.
  bool ReadBits(int count, uint32_t* out) {
    while (filled_ < count) {
      if (pos_ >= in_.size()) return false;
      acc_ |= uint64_t(in_[pos_++]) << filled_;
      filled_ += 8;
    }
    *out = static_cast<uint32_t>(
        acc_ & ((count == 32) ? 0xFFFFFFFFull : ((1ull << count) - 1)));
    acc_ >>= count;
    filled_ -= count;
    return true;
  }

  /// Reads a single bit.
  bool ReadBit(uint32_t* out) { return ReadBits(1, out); }

  /// Discards buffered bits to realign at the next byte boundary.
  void AlignToByte() {
    int drop = filled_ % 8;
    acc_ >>= drop;
    filled_ -= drop;
  }

  /// Reads a whole byte after alignment. Returns false on underflow.
  bool ReadAlignedByte(uint8_t* out) {
    if (filled_ >= 8) {
      *out = static_cast<uint8_t>(acc_);
      acc_ >>= 8;
      filled_ -= 8;
      return true;
    }
    if (pos_ >= in_.size()) return false;
    *out = in_[pos_++];
    return true;
  }

  /// Bytes not yet pulled into the accumulator.
  size_t bytes_remaining() const { return in_.size() - pos_; }

 private:
  ByteSpan in_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_BITIO_H_
