#include "kern/deflate.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "kern/bitio.h"
#include "kern/deflate_tables.h"
#include "kern/huffman.h"

namespace dpdpu::kern {

int LengthToSymbol(int length) {
  DPDPU_CHECK(length >= kMinMatch && length <= kMaxMatch);
  // 29 codes; linear scan from the top is fine (encoder caches freqs, the
  // scan is not the hot path — match search is).
  for (int i = 28; i >= 0; --i) {
    if (length >= kLengthBase[i]) return 257 + i;
  }
  return 257;
}

int DistanceToSymbol(int distance) {
  DPDPU_CHECK(distance >= 1 && distance <= kWindowSize);
  for (int i = 29; i >= 0; --i) {
    if (distance >= kDistBase[i]) return i;
  }
  return 0;
}

namespace {

// ---------------------------------------------------------------------------
// LZ77 tokenization with hash chains and lazy matching.
// ---------------------------------------------------------------------------

struct Token {
  // dist == 0: literal, len holds the byte value.
  // dist > 0:  match of `len` (3-258) at back-distance `dist` (1-32768).
  uint16_t len;
  uint16_t dist;
};

struct MatchParams {
  int max_chain;
  int nice_length;
  bool lazy;
};

MatchParams ParamsForLevel(int level) {
  level = std::clamp(level, 1, 9);
  switch (level) {
    case 1:
      return {8, 16, false};
    case 2:
      return {16, 32, false};
    case 3:
      return {32, 64, false};
    case 4:
      return {32, 64, true};
    case 5:
      return {64, 96, true};
    case 6:
      return {128, 128, true};
    case 7:
      return {256, 192, true};
    case 8:
      return {512, 258, true};
    default:
      return {1024, 258, true};
  }
}

class MatchFinder {
 public:
  MatchFinder(ByteSpan in, MatchParams params)
      : in_(in),
        params_(params),
        head_(kHashSize, -1),
        prev_(in.size(), -1) {}

  struct Match {
    int len = 0;
    int dist = 0;
  };

  /// Longest match at `pos` against strictly earlier inserted positions.
  Match Find(size_t pos) const {
    Match best;
    if (pos + kMinMatch > in_.size()) return best;
    size_t limit = pos > kWindowSize ? pos - kWindowSize : 0;
    int max_len =
        static_cast<int>(std::min<size_t>(kMaxMatch, in_.size() - pos));
    int chain = params_.max_chain;
    for (int cand = head_[Hash(pos)];
         cand >= 0 && static_cast<size_t>(cand) >= limit && chain > 0;
         cand = prev_[cand], --chain) {
      int len = MatchLength(static_cast<size_t>(cand), pos, max_len);
      if (len > best.len) {
        best.len = len;
        best.dist = static_cast<int>(pos) - cand;
        if (len >= params_.nice_length || len == max_len) break;
      }
    }
    if (best.len < kMinMatch) return Match{};
    return best;
  }

  /// Inserts all positions in [inserted_, end) into the hash chains.
  void InsertUpTo(size_t end) {
    for (; inserted_ < end; ++inserted_) {
      if (inserted_ + kMinMatch > in_.size()) continue;
      uint32_t h = Hash(inserted_);
      prev_[inserted_] = head_[h];
      head_[h] = static_cast<int32_t>(inserted_);
    }
  }

 private:
  static constexpr uint32_t kHashSize = 1u << 15;

  uint32_t Hash(size_t pos) const {
    uint32_t v = uint32_t(in_[pos]) << 16 | uint32_t(in_[pos + 1]) << 8 |
                 uint32_t(in_[pos + 2]);
    return (v * 2654435761u) >> 17;
  }

  // Word-wise match extension: compare 8 bytes per step, locate the first
  // mismatching byte from the XOR. Reading 8 bytes at `a + len` is safe
  // because a < b and b + max_len <= in_.size() bounds both windows.
  int MatchLength(size_t a, size_t b, int max_len) const {
    const uint8_t* pa = in_.data() + a;
    const uint8_t* pb = in_.data() + b;
    int len = 0;
    while (len + 8 <= max_len) {
      uint64_t wa, wb;
      std::memcpy(&wa, pa + len, 8);
      std::memcpy(&wb, pb + len, 8);
      uint64_t diff = wa ^ wb;
      if (diff != 0) {
        int bit = (std::endian::native == std::endian::little)
                      ? std::countr_zero(diff)
                      : std::countl_zero(diff);
        return len + (bit >> 3);
      }
      len += 8;
    }
    while (len < max_len && pa[len] == pb[len]) ++len;
    return len;
  }

  ByteSpan in_;
  MatchParams params_;
  std::vector<int32_t> head_;
  std::vector<int32_t> prev_;
  size_t inserted_ = 0;
};

// Produces the token stream and each token's starting input offset.
void Tokenize(ByteSpan in, MatchParams params, std::vector<Token>* tokens,
              std::vector<uint32_t>* token_pos) {
  MatchFinder finder(in, params);
  size_t pos = 0;
  while (pos < in.size()) {
    finder.InsertUpTo(pos);
    MatchFinder::Match m = finder.Find(pos);
    if (m.len >= kMinMatch && params.lazy && m.len < params.nice_length &&
        pos + 1 < in.size()) {
      // Lazy evaluation: prefer a longer match starting one byte later.
      finder.InsertUpTo(pos + 1);
      MatchFinder::Match next = finder.Find(pos + 1);
      if (next.len > m.len) {
        tokens->push_back(Token{uint16_t(in[pos]), 0});
        token_pos->push_back(static_cast<uint32_t>(pos));
        ++pos;
        continue;
      }
    }
    if (m.len >= kMinMatch) {
      tokens->push_back(Token{uint16_t(m.len), uint16_t(m.dist)});
      token_pos->push_back(static_cast<uint32_t>(pos));
      pos += m.len;
    } else {
      tokens->push_back(Token{uint16_t(in[pos]), 0});
      token_pos->push_back(static_cast<uint32_t>(pos));
      ++pos;
    }
  }
}

// ---------------------------------------------------------------------------
// Block encoding.
// ---------------------------------------------------------------------------

struct BlockCodes {
  std::vector<uint8_t> litlen_lengths;
  std::vector<uint32_t> litlen_codes;
  std::vector<uint8_t> dist_lengths;
  std::vector<uint32_t> dist_codes;
};

// RLE'd code-length sequence entry: symbol 0-18 plus its repeat payload.
struct ClenEntry {
  uint8_t symbol;
  uint8_t extra;  // payload for 16/17/18
};

std::vector<ClenEntry> RleCodeLengths(const std::vector<uint8_t>& lengths) {
  std::vector<ClenEntry> out;
  size_t i = 0;
  while (i < lengths.size()) {
    uint8_t v = lengths[i];
    size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == v) ++run;
    if (v == 0) {
      size_t left = run;
      while (left >= 11) {
        size_t r = std::min<size_t>(left, 138);
        out.push_back({18, uint8_t(r - 11)});
        left -= r;
      }
      if (left >= 3) {
        out.push_back({17, uint8_t(left - 3)});
        left = 0;
      }
      while (left-- > 0) out.push_back({0, 0});
    } else {
      out.push_back({v, 0});
      size_t left = run - 1;
      while (left >= 3) {
        size_t r = std::min<size_t>(left, 6);
        out.push_back({16, uint8_t(r - 3)});
        left -= r;
      }
      while (left-- > 0) out.push_back({v, 0});
    }
    i += run;
  }
  return out;
}

int ClenExtraBits(uint8_t symbol) {
  if (symbol == 16) return 2;
  if (symbol == 17) return 3;
  if (symbol == 18) return 7;
  return 0;
}

// Payload size in bits of the token stream under the given code lengths.
uint64_t PayloadBits(const std::vector<Token>& tokens,
                     const std::vector<uint8_t>& litlen_lengths,
                     const std::vector<uint8_t>& dist_lengths) {
  uint64_t bits = 0;
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      bits += litlen_lengths[t.len];
    } else {
      int lsym = LengthToSymbol(t.len);
      int dsym = DistanceToSymbol(t.dist);
      bits += litlen_lengths[lsym] + kLengthExtra[lsym - 257];
      bits += dist_lengths[dsym] + kDistExtra[dsym];
    }
  }
  bits += litlen_lengths[kEndOfBlock];
  return bits;
}

void WriteTokens(BitWriter& bw, const std::vector<Token>& tokens,
                 const BlockCodes& codes) {
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      bw.WriteHuffmanCode(codes.litlen_codes[t.len],
                          codes.litlen_lengths[t.len]);
    } else {
      int lsym = LengthToSymbol(t.len);
      bw.WriteHuffmanCode(codes.litlen_codes[lsym],
                          codes.litlen_lengths[lsym]);
      bw.WriteBits(t.len - kLengthBase[lsym - 257], kLengthExtra[lsym - 257]);
      int dsym = DistanceToSymbol(t.dist);
      bw.WriteHuffmanCode(codes.dist_codes[dsym], codes.dist_lengths[dsym]);
      bw.WriteBits(t.dist - kDistBase[dsym], kDistExtra[dsym]);
    }
  }
  bw.WriteHuffmanCode(codes.litlen_codes[kEndOfBlock],
                      codes.litlen_lengths[kEndOfBlock]);
}

BlockCodes FixedCodes() {
  BlockCodes codes;
  codes.litlen_lengths.resize(kNumLitLenSymbols);
  for (int s = 0; s < kNumLitLenSymbols; ++s) {
    codes.litlen_lengths[s] = FixedLitLenLength(s);
  }
  codes.litlen_codes = CanonicalCodes(codes.litlen_lengths);
  codes.dist_lengths.assign(kNumDistSymbols, 5);
  codes.dist_codes = CanonicalCodes(codes.dist_lengths);
  return codes;
}

void WriteStored(BitWriter& bw, ByteSpan data, bool final) {
  size_t off = 0;
  do {
    size_t chunk = std::min<size_t>(data.size() - off, 65535);
    bool last = final && (off + chunk == data.size());
    bw.WriteBits(last ? 1 : 0, 1);
    bw.WriteBits(0, 2);  // BTYPE=00
    bw.AlignToByte();
    bw.WriteBits(static_cast<uint32_t>(chunk), 16);
    bw.WriteBits(static_cast<uint32_t>(~chunk) & 0xFFFF, 16);
    for (size_t i = 0; i < chunk; ++i) {
      bw.WriteBits(data[off + i], 8);
    }
    off += chunk;
  } while (off < data.size());
}

// Encodes one block of tokens covering input bytes [range_begin, range_end).
void EncodeBlock(BitWriter& bw, const std::vector<Token>& tokens,
                 ByteSpan block_input, bool final) {
  // Symbol frequencies.
  std::vector<uint64_t> litlen_freq(kNumLitLenSymbols, 0);
  std::vector<uint64_t> dist_freq(kNumDistSymbols, 0);
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      ++litlen_freq[t.len];
    } else {
      ++litlen_freq[LengthToSymbol(t.len)];
      ++dist_freq[DistanceToSymbol(t.dist)];
    }
  }
  ++litlen_freq[kEndOfBlock];

  // Dynamic code construction.
  BlockCodes dyn;
  dyn.litlen_lengths = PackageMergeLengths(litlen_freq, kMaxHuffmanBits);
  dyn.dist_lengths = PackageMergeLengths(dist_freq, kMaxHuffmanBits);
  dyn.litlen_codes = CanonicalCodes(dyn.litlen_lengths);
  dyn.dist_codes = CanonicalCodes(dyn.dist_lengths);

  int hlit = 257;
  for (int s = kNumLitLenSymbols - 1; s >= 257; --s) {
    if (dyn.litlen_lengths[s] > 0) {
      hlit = s + 1;
      break;
    }
  }
  int hdist = 1;
  for (int s = kNumDistSymbols - 1; s >= 1; --s) {
    if (dyn.dist_lengths[s] > 0) {
      hdist = s + 1;
      break;
    }
  }

  // Code-length code over the concatenated litlen+dist lengths.
  std::vector<uint8_t> all_lengths(dyn.litlen_lengths.begin(),
                                   dyn.litlen_lengths.begin() + hlit);
  all_lengths.insert(all_lengths.end(), dyn.dist_lengths.begin(),
                     dyn.dist_lengths.begin() + hdist);
  std::vector<ClenEntry> rle = RleCodeLengths(all_lengths);
  std::vector<uint64_t> clen_freq(kNumClenSymbols, 0);
  for (const ClenEntry& e : rle) ++clen_freq[e.symbol];
  std::vector<uint8_t> clen_lengths = PackageMergeLengths(clen_freq, 7);
  std::vector<uint32_t> clen_codes = CanonicalCodes(clen_lengths);
  int hclen = 4;
  for (int i = kNumClenSymbols - 1; i >= 4; --i) {
    if (clen_lengths[kClenOrder[i]] > 0) {
      hclen = i + 1;
      break;
    }
  }

  // Cost comparison (all in bits, excluding the shared 3-bit header).
  uint64_t header_bits = 14;
  header_bits += uint64_t(hclen) * 3;
  for (const ClenEntry& e : rle) {
    header_bits += clen_lengths[e.symbol] + ClenExtraBits(e.symbol);
  }
  uint64_t dynamic_bits =
      header_bits + PayloadBits(tokens, dyn.litlen_lengths, dyn.dist_lengths);

  BlockCodes fixed = FixedCodes();
  uint64_t fixed_bits =
      PayloadBits(tokens, fixed.litlen_lengths, fixed.dist_lengths);

  // Stored: per-chunk 3-bit header + up-to-7-bit pad + 32-bit LEN/NLEN.
  uint64_t nchunks = (block_input.size() + 65534) / 65535;
  if (nchunks == 0) nchunks = 1;
  uint64_t stored_bits = nchunks * (3 + 7 + 32) + 8 * block_input.size();

  if (stored_bits < dynamic_bits && stored_bits < fixed_bits &&
      !block_input.empty()) {
    WriteStored(bw, block_input, final);
    return;
  }
  if (fixed_bits <= dynamic_bits) {
    bw.WriteBits(final ? 1 : 0, 1);
    bw.WriteBits(1, 2);  // BTYPE=01 fixed
    WriteTokens(bw, tokens, fixed);
    return;
  }

  bw.WriteBits(final ? 1 : 0, 1);
  bw.WriteBits(2, 2);  // BTYPE=10 dynamic
  bw.WriteBits(hlit - 257, 5);
  bw.WriteBits(hdist - 1, 5);
  bw.WriteBits(hclen - 4, 4);
  for (int i = 0; i < hclen; ++i) {
    bw.WriteBits(clen_lengths[kClenOrder[i]], 3);
  }
  for (const ClenEntry& e : rle) {
    bw.WriteHuffmanCode(clen_codes[e.symbol], clen_lengths[e.symbol]);
    int extra = ClenExtraBits(e.symbol);
    if (extra > 0) bw.WriteBits(e.extra, extra);
  }
  WriteTokens(bw, tokens, dyn);
}

}  // namespace

Result<Buffer> DeflateCompress(ByteSpan input, const DeflateOptions& options) {
  Buffer out;
  BitWriter bw(&out);

  if (input.empty()) {
    // A single final fixed-Huffman block containing only end-of-block.
    bw.WriteBits(1, 1);
    bw.WriteBits(1, 2);
    BlockCodes fixed = FixedCodes();
    bw.WriteHuffmanCode(fixed.litlen_codes[kEndOfBlock],
                        fixed.litlen_lengths[kEndOfBlock]);
    bw.AlignToByte();
    return out;
  }

  std::vector<Token> tokens;
  std::vector<uint32_t> token_pos;
  Tokenize(input, ParamsForLevel(options.level), &tokens, &token_pos);

  constexpr size_t kMaxTokensPerBlock = 65536;
  size_t i = 0;
  while (i < tokens.size()) {
    size_t j = std::min(i + kMaxTokensPerBlock, tokens.size());
    size_t range_begin = token_pos[i];
    size_t range_end =
        (j == tokens.size()) ? input.size() : token_pos[j];
    std::vector<Token> block(tokens.begin() + i, tokens.begin() + j);
    bool final = (j == tokens.size());
    EncodeBlock(bw, block,
                input.subspan(range_begin, range_end - range_begin), final);
    i = j;
  }
  bw.AlignToByte();
  return out;
}

}  // namespace dpdpu::kern
