#include "kern/regex.h"

#include <memory>

namespace dpdpu::kern {

namespace {

// ---------------------------------------------------------------------------
// AST.
// ---------------------------------------------------------------------------

struct Node;
using NodePtr = std::unique_ptr<Node>;

enum class NodeKind {
  kClass,       // single character class
  kConcat,      // left then right
  kAlternate,   // left | right
  kStar,        // left*  (greedy)
  kPlus,        // left+
  kQuestion,    // left?
  kEmpty,       // matches empty string
  kAssertBegin, // ^
  kAssertEnd,   // $
};

struct Node {
  NodeKind kind;
  std::bitset<256> char_class;
  NodePtr left;
  NodePtr right;

  NodePtr Clone() const {
    auto n = std::make_unique<Node>();
    n->kind = kind;
    n->char_class = char_class;
    if (left) n->left = left->Clone();
    if (right) n->right = right->Clone();
    return n;
  }
};

NodePtr MakeNode(NodeKind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

NodePtr MakeClass(std::bitset<256> cls) {
  auto n = MakeNode(NodeKind::kClass);
  n->char_class = cls;
  return n;
}

NodePtr MakeBinary(NodeKind kind, NodePtr l, NodePtr r) {
  auto n = MakeNode(kind);
  n->left = std::move(l);
  n->right = std::move(r);
  return n;
}

NodePtr MakeUnary(NodeKind kind, NodePtr l) {
  auto n = MakeNode(kind);
  n->left = std::move(l);
  return n;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent).
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view pattern) : p_(pattern) {}

  Result<NodePtr> Parse() {
    DPDPU_ASSIGN_OR_RETURN(NodePtr node, ParseAlternate());
    if (!AtEnd()) {
      return Status::InvalidArgument("regex: unexpected ')' or trailing input");
    }
    return node;
  }

 private:
  bool AtEnd() const { return pos_ >= p_.size(); }
  char Peek() const { return p_[pos_]; }
  char Take() { return p_[pos_++]; }

  Result<NodePtr> ParseAlternate() {
    DPDPU_ASSIGN_OR_RETURN(NodePtr left, ParseConcat());
    while (!AtEnd() && Peek() == '|') {
      Take();
      DPDPU_ASSIGN_OR_RETURN(NodePtr right, ParseConcat());
      left = MakeBinary(NodeKind::kAlternate, std::move(left),
                        std::move(right));
    }
    return left;
  }

  Result<NodePtr> ParseConcat() {
    NodePtr node;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      DPDPU_ASSIGN_OR_RETURN(NodePtr atom, ParseRepeat());
      node = node ? MakeBinary(NodeKind::kConcat, std::move(node),
                               std::move(atom))
                  : std::move(atom);
    }
    if (!node) node = MakeNode(NodeKind::kEmpty);
    return node;
  }

  Result<NodePtr> ParseRepeat() {
    DPDPU_ASSIGN_OR_RETURN(NodePtr atom, ParseAtom());
    while (!AtEnd()) {
      char c = Peek();
      if (c == '*') {
        Take();
        atom = MakeUnary(NodeKind::kStar, std::move(atom));
      } else if (c == '+') {
        Take();
        atom = MakeUnary(NodeKind::kPlus, std::move(atom));
      } else if (c == '?') {
        Take();
        atom = MakeUnary(NodeKind::kQuestion, std::move(atom));
      } else if (c == '{') {
        DPDPU_ASSIGN_OR_RETURN(atom, ParseBrace(std::move(atom)));
      } else {
        break;
      }
    }
    return atom;
  }

  // {m}, {m,}, {m,n} with m,n <= 100 (expansion-based compilation).
  Result<NodePtr> ParseBrace(NodePtr atom) {
    Take();  // '{'
    int m = 0;
    bool have_digit = false;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      m = m * 10 + (Take() - '0');
      have_digit = true;
      if (m > 100) return Status::InvalidArgument("regex: {m,n} too large");
    }
    if (!have_digit) return Status::InvalidArgument("regex: bad {} count");
    int n = m;
    bool unbounded = false;
    if (!AtEnd() && Peek() == ',') {
      Take();
      if (!AtEnd() && Peek() == '}') {
        unbounded = true;
      } else {
        n = 0;
        while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
          n = n * 10 + (Take() - '0');
          if (n > 100) return Status::InvalidArgument("regex: {m,n} too large");
        }
        if (n < m) return Status::InvalidArgument("regex: {m,n} with n < m");
      }
    }
    if (AtEnd() || Take() != '}') {
      return Status::InvalidArgument("regex: unterminated {}");
    }
    // Expand: m mandatory copies, then (n - m) optional or a star.
    NodePtr out;
    for (int i = 0; i < m; ++i) {
      NodePtr copy = atom->Clone();
      out = out ? MakeBinary(NodeKind::kConcat, std::move(out),
                             std::move(copy))
                : std::move(copy);
    }
    if (unbounded) {
      NodePtr star = MakeUnary(NodeKind::kStar, atom->Clone());
      out = out ? MakeBinary(NodeKind::kConcat, std::move(out),
                             std::move(star))
                : std::move(star);
    } else {
      for (int i = m; i < n; ++i) {
        NodePtr opt = MakeUnary(NodeKind::kQuestion, atom->Clone());
        out = out ? MakeBinary(NodeKind::kConcat, std::move(out),
                               std::move(opt))
                  : std::move(opt);
      }
    }
    if (!out) out = MakeNode(NodeKind::kEmpty);  // {0}
    return out;
  }

  Result<NodePtr> ParseAtom() {
    char c = Take();
    switch (c) {
      case '(': {
        DPDPU_ASSIGN_OR_RETURN(NodePtr inner, ParseAlternate());
        if (AtEnd() || Take() != ')') {
          return Status::InvalidArgument("regex: unbalanced parenthesis");
        }
        return inner;
      }
      case '[':
        return ParseClass();
      case '.': {
        std::bitset<256> any;
        any.set();
        any.reset('\n');
        return MakeClass(any);
      }
      case '^':
        return MakeNode(NodeKind::kAssertBegin);
      case '$':
        return MakeNode(NodeKind::kAssertEnd);
      case '\\':
        return ParseEscape();
      case '*':
      case '+':
      case '?':
        return Status::InvalidArgument("regex: quantifier with no operand");
      case ')':
        return Status::InvalidArgument("regex: unmatched ')'");
      default: {
        std::bitset<256> cls;
        cls.set(static_cast<uint8_t>(c));
        return MakeClass(cls);
      }
    }
  }

  static void SetRange(std::bitset<256>& cls, uint8_t lo, uint8_t hi) {
    for (int c = lo; c <= hi; ++c) cls.set(c);
  }

  static bool EscapeClass(char c, std::bitset<256>& cls) {
    switch (c) {
      case 'd':
        SetRange(cls, '0', '9');
        return true;
      case 'w':
        SetRange(cls, 'a', 'z');
        SetRange(cls, 'A', 'Z');
        SetRange(cls, '0', '9');
        cls.set('_');
        return true;
      case 's':
        cls.set(' ');
        cls.set('\t');
        cls.set('\n');
        cls.set('\r');
        cls.set('\f');
        cls.set('\v');
        return true;
      default:
        return false;
    }
  }

  Result<NodePtr> ParseEscape() {
    if (AtEnd()) return Status::InvalidArgument("regex: trailing backslash");
    char c = Take();
    std::bitset<256> cls;
    if (EscapeClass(c, cls)) return MakeClass(cls);
    if (c == 'D' || c == 'W' || c == 'S') {
      std::bitset<256> inner;
      EscapeClass(static_cast<char>(c - 'A' + 'a'), inner);
      return MakeClass(~inner);
    }
    switch (c) {
      case 'n':
        cls.set('\n');
        return MakeClass(cls);
      case 't':
        cls.set('\t');
        return MakeClass(cls);
      case 'r':
        cls.set('\r');
        return MakeClass(cls);
      default:
        // Escaped literal (covers metacharacters and \\).
        cls.set(static_cast<uint8_t>(c));
        return MakeClass(cls);
    }
  }

  Result<NodePtr> ParseClass() {
    std::bitset<256> cls;
    bool negate = false;
    if (!AtEnd() && Peek() == '^') {
      Take();
      negate = true;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) return Status::InvalidArgument("regex: unterminated [");
      char c = Take();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        if (AtEnd()) return Status::InvalidArgument("regex: bad class escape");
        char e = Take();
        std::bitset<256> sub;
        if (EscapeClass(e, sub)) {
          cls |= sub;
          continue;
        }
        switch (e) {
          case 'n':
            cls.set('\n');
            continue;
          case 't':
            cls.set('\t');
            continue;
          case 'r':
            cls.set('\r');
            continue;
          default:
            c = e;  // escaped literal; may start a range below
        }
      }
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < p_.size() &&
          p_[pos_ + 1] != ']') {
        Take();  // '-'
        char hi = Take();
        if (hi == '\\') {
          if (AtEnd()) return Status::InvalidArgument("regex: bad range");
          hi = Take();
        }
        if (static_cast<uint8_t>(hi) < static_cast<uint8_t>(c)) {
          return Status::InvalidArgument("regex: inverted class range");
        }
        SetRange(cls, static_cast<uint8_t>(c), static_cast<uint8_t>(hi));
      } else {
        cls.set(static_cast<uint8_t>(c));
      }
    }
    return MakeClass(negate ? ~cls : cls);
  }

  std::string_view p_;
  size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Compilation: AST -> instruction list.
// ---------------------------------------------------------------------------

namespace {

struct CompileState {
  std::vector<std::bitset<256>>* classes;
};

}  // namespace

Result<Regex> Regex::Compile(std::string_view pattern) {
  Parser parser(pattern);
  DPDPU_ASSIGN_OR_RETURN(NodePtr root, parser.Parse());

  Regex re;
  re.pattern_ = std::string(pattern);

  // Emit instructions via an explicit recursion (lambda).
  struct Emitter {
    Regex* re;
    void Emit(const Node& n) {
      switch (n.kind) {
        case NodeKind::kClass: {
          int cls = static_cast<int>(re->classes_.size());
          re->classes_.push_back(n.char_class);
          re->program_.push_back(Inst{Op::kChar, cls, 0});
          break;
        }
        case NodeKind::kConcat:
          Emit(*n.left);
          Emit(*n.right);
          break;
        case NodeKind::kAlternate: {
          size_t split = re->program_.size();
          re->program_.push_back(Inst{Op::kSplit, 0, 0});
          Emit(*n.left);
          size_t jump = re->program_.size();
          re->program_.push_back(Inst{Op::kJump, 0, 0});
          re->program_[split].x = static_cast<int>(split + 1);
          re->program_[split].y = static_cast<int>(re->program_.size());
          Emit(*n.right);
          re->program_[jump].x = static_cast<int>(re->program_.size());
          break;
        }
        case NodeKind::kStar: {
          size_t split = re->program_.size();
          re->program_.push_back(Inst{Op::kSplit, 0, 0});
          Emit(*n.left);
          re->program_.push_back(
              Inst{Op::kJump, static_cast<int>(split), 0});
          re->program_[split].x = static_cast<int>(split + 1);
          re->program_[split].y = static_cast<int>(re->program_.size());
          break;
        }
        case NodeKind::kPlus: {
          size_t body = re->program_.size();
          Emit(*n.left);
          size_t split = re->program_.size();
          re->program_.push_back(Inst{Op::kSplit, static_cast<int>(body),
                                      static_cast<int>(split + 1)});
          break;
        }
        case NodeKind::kQuestion: {
          size_t split = re->program_.size();
          re->program_.push_back(Inst{Op::kSplit, 0, 0});
          Emit(*n.left);
          re->program_[split].x = static_cast<int>(split + 1);
          re->program_[split].y = static_cast<int>(re->program_.size());
          break;
        }
        case NodeKind::kEmpty:
          break;
        case NodeKind::kAssertBegin:
          re->program_.push_back(Inst{Op::kAssertBegin, 0, 0});
          break;
        case NodeKind::kAssertEnd:
          re->program_.push_back(Inst{Op::kAssertEnd, 0, 0});
          break;
      }
    }
  };
  Emitter{&re}.Emit(*root);
  re.program_.push_back(Inst{Op::kMatch, 0, 0});
  return re;
}

// ---------------------------------------------------------------------------
// Pike VM execution.
// ---------------------------------------------------------------------------

void Regex::AddThread(std::vector<int>& list, std::vector<uint32_t>& mark,
                      uint32_t gen, int pc, size_t pos, size_t len) const {
  if (mark[pc] == gen) return;
  mark[pc] = gen;
  const Inst& inst = program_[pc];
  switch (inst.op) {
    case Op::kJump:
      AddThread(list, mark, gen, inst.x, pos, len);
      break;
    case Op::kSplit:
      AddThread(list, mark, gen, inst.x, pos, len);
      AddThread(list, mark, gen, inst.y, pos, len);
      break;
    case Op::kAssertBegin:
      if (pos == 0) AddThread(list, mark, gen, pc + 1, pos, len);
      break;
    case Op::kAssertEnd:
      if (pos == len) AddThread(list, mark, gen, pc + 1, pos, len);
      break;
    default:
      list.push_back(pc);
      break;
  }
}

ptrdiff_t Regex::RunFrom(std::string_view text, size_t start) const {
  std::vector<int> current, next;
  std::vector<uint32_t> mark(program_.size(), 0);
  uint32_t gen = 1;
  ptrdiff_t best_end = -1;

  AddThread(current, mark, gen, 0, start, text.size());
  for (size_t pos = start;; ++pos) {
    // Check for match threads at this position.
    for (int pc : current) {
      if (program_[pc].op == Op::kMatch) {
        best_end = static_cast<ptrdiff_t>(pos);
      }
    }
    if (pos >= text.size() || current.empty()) break;
    uint8_t c = static_cast<uint8_t>(text[pos]);
    ++gen;
    next.clear();
    for (int pc : current) {
      const Inst& inst = program_[pc];
      if (inst.op == Op::kChar && classes_[inst.x].test(c)) {
        AddThread(next, mark, gen, pc + 1, pos + 1, text.size());
      }
    }
    std::swap(current, next);
  }
  return best_end;
}

bool Regex::FullMatch(std::string_view text) const {
  return RunFrom(text, 0) == static_cast<ptrdiff_t>(text.size());
}

bool Regex::PartialMatch(std::string_view text) const {
  for (size_t start = 0; start <= text.size(); ++start) {
    if (RunFrom(text, start) >= 0) return true;
  }
  return false;
}

size_t Regex::CountMatches(std::string_view text) const {
  size_t count = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    ptrdiff_t end = RunFrom(text, pos);
    if (end < 0) {
      ++pos;
      continue;
    }
    ++count;
    pos = (static_cast<size_t>(end) > pos) ? static_cast<size_t>(end)
                                           : pos + 1;
  }
  return count;
}

}  // namespace dpdpu::kern
