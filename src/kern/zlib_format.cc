#include "kern/zlib_format.h"

namespace dpdpu::kern {

namespace {
constexpr uint32_t kAdlerMod = 65521;
}  // namespace

uint32_t Adler32Update(uint32_t adler, ByteSpan data) {
  uint32_t a = adler & 0xFFFF;
  uint32_t b = (adler >> 16) & 0xFFFF;
  size_t i = 0;
  while (i < data.size()) {
    // Process in chunks small enough that b cannot overflow 32 bits.
    size_t chunk = std::min<size_t>(data.size() - i, 5552);
    for (size_t j = 0; j < chunk; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kAdlerMod;
    b %= kAdlerMod;
    i += chunk;
  }
  return (b << 16) | a;
}

uint32_t Adler32(ByteSpan data) { return Adler32Update(1, data); }

Result<Buffer> ZlibCompress(ByteSpan input, const DeflateOptions& options) {
  Buffer out;
  // CMF: method 8 (deflate), 32K window (CINFO=7) -> 0x78.
  constexpr uint8_t kCmf = 0x78;
  // FLG: no preset dictionary, default compression; FCHECK makes
  // (CMF*256 + FLG) a multiple of 31 -> 0x9C.
  constexpr uint8_t kFlg = 0x9C;
  static_assert((uint32_t(kCmf) * 256 + kFlg) % 31 == 0);
  out.AppendU8(kCmf);
  out.AppendU8(kFlg);
  DPDPU_ASSIGN_OR_RETURN(Buffer deflated, DeflateCompress(input, options));
  out.Append(deflated.span());
  // Adler-32, big-endian per RFC 1950.
  uint32_t adler = Adler32(input);
  out.AppendU8(uint8_t(adler >> 24));
  out.AppendU8(uint8_t(adler >> 16));
  out.AppendU8(uint8_t(adler >> 8));
  out.AppendU8(uint8_t(adler));
  return out;
}

Result<Buffer> ZlibDecompress(ByteSpan input, size_t max_output) {
  if (input.size() < 6) {
    return Status::Corruption("zlib: stream too short");
  }
  uint8_t cmf = input[0];
  uint8_t flg = input[1];
  if ((cmf & 0x0F) != 8) {
    return Status::Corruption("zlib: method is not deflate");
  }
  if ((uint32_t(cmf) * 256 + flg) % 31 != 0) {
    return Status::Corruption("zlib: header check failed");
  }
  if (flg & 0x20) {
    return Status::NotSupported("zlib: preset dictionaries");
  }
  ByteSpan body = input.subspan(2, input.size() - 6);
  DPDPU_ASSIGN_OR_RETURN(Buffer plain, DeflateDecompress(body, max_output));
  uint32_t stored = uint32_t(input[input.size() - 4]) << 24 |
                    uint32_t(input[input.size() - 3]) << 16 |
                    uint32_t(input[input.size() - 2]) << 8 |
                    uint32_t(input[input.size() - 1]);
  if (stored != Adler32(plain.span())) {
    return Status::Corruption("zlib: adler32 mismatch");
  }
  return plain;
}

}  // namespace dpdpu::kern
