// Shared DEFLATE constant tables (RFC 1951 §3.2.5-§3.2.7).

#ifndef DPDPU_KERN_DEFLATE_TABLES_H_
#define DPDPU_KERN_DEFLATE_TABLES_H_

#include <cstdint>

namespace dpdpu::kern {

inline constexpr int kNumLitLenSymbols = 288;  // 0-287 (286-287 reserved)
inline constexpr int kNumDistSymbols = 30;
inline constexpr int kNumClenSymbols = 19;
inline constexpr int kEndOfBlock = 256;
inline constexpr int kMinMatch = 3;
inline constexpr int kMaxMatch = 258;
inline constexpr int kWindowSize = 32768;

/// Length code i (0-28, symbol 257+i): base length and extra bits.
inline constexpr uint16_t kLengthBase[29] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
inline constexpr uint8_t kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                             1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                             4, 4, 4, 4, 5, 5, 5, 5, 0};

/// Distance code i (0-29): base distance and extra bits.
inline constexpr uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
inline constexpr uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3, 3,
                                           4, 4, 5,  5,  6,  6,  7,  7,  8, 8,
                                           9, 9, 10, 10, 11, 11, 12, 12, 13,
                                           13};

/// Transmission order of code-length code lengths (RFC 1951 §3.2.7).
inline constexpr uint8_t kClenOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                           11, 4,  12, 3, 13, 2, 14, 1, 15};

/// Maps a match length (3-258) to its length symbol (257-285).
int LengthToSymbol(int length);

/// Maps a distance (1-32768) to its distance symbol (0-29).
int DistanceToSymbol(int distance);

/// Fixed litlen code lengths (RFC 1951 §3.2.6).
inline constexpr uint8_t FixedLitLenLength(int symbol) {
  if (symbol < 144) return 8;
  if (symbol < 256) return 9;
  if (symbol < 280) return 7;
  return 8;
}

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_DEFLATE_TABLES_H_
