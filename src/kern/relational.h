// Relational kernels: schema, serialized row pages, predicate evaluation,
// filtering, and aggregation. These back the paper's pushdown examples —
// "directly applies predicates on these tuples using the Compute Engine,
// and only sends the qualified tuples back" (Section 4).

#ifndef DPDPU_KERN_RELATIONAL_H_
#define DPDPU_KERN_RELATIONAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"

namespace dpdpu::kern {

enum class ColumnType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

struct ColumnSpec {
  std::string name;
  ColumnType type;
};

/// Ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }

  /// Index of the column named `name`, or -1.
  int FindColumn(std::string_view name) const;

 private:
  std::vector<ColumnSpec> columns_;
};

/// A single cell value.
using Value = std::variant<int64_t, double, std::string>;

ColumnType TypeOf(const Value& v);

/// Builds a serialized row page: fixed-width row slots plus a string heap.
/// Page layout (little-endian):
///   u32 magic, u32 row_count, u32 col_count, u8 type[col_count]
///   rows: per column, int64/double as 8 bytes; string as u32 off, u32 len
///   string heap
class RowPageBuilder {
 public:
  explicit RowPageBuilder(Schema schema) : schema_(std::move(schema)) {}

  /// Appends a row; value count and types must match the schema.
  Status AddRow(const std::vector<Value>& values);

  size_t row_count() const { return row_count_; }

  /// Serializes the page. The builder can keep accepting rows after.
  Buffer Finish() const;

 private:
  Schema schema_;
  size_t row_count_ = 0;
  Buffer fixed_;
  Buffer heap_;
};

/// Zero-copy reader over a serialized row page.
class RowPageReader {
 public:
  /// Validates the header against `schema`.
  static Result<RowPageReader> Open(const Schema* schema, ByteSpan page);

  size_t row_count() const { return row_count_; }
  const Schema& schema() const { return *schema_; }

  /// Reads one cell; bounds- and type-checked.
  Result<Value> Get(size_t row, size_t col) const;

 private:
  RowPageReader() = default;

  const Schema* schema_ = nullptr;
  ByteSpan page_;
  size_t row_count_ = 0;
  size_t row_width_ = 0;
  size_t rows_offset_ = 0;
  size_t heap_offset_ = 0;
};

// ---------------------------------------------------------------------------
// Predicates.
// ---------------------------------------------------------------------------

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

class Predicate;
using PredicatePtr = std::unique_ptr<Predicate>;

/// Predicate tree over row-page rows.
class Predicate {
 public:
  static PredicatePtr Compare(size_t col, CompareOp op, Value literal);
  static PredicatePtr And(PredicatePtr l, PredicatePtr r);
  static PredicatePtr Or(PredicatePtr l, PredicatePtr r);
  static PredicatePtr Not(PredicatePtr inner);

  /// Evaluates against one row; type mismatches fail.
  Result<bool> Eval(const RowPageReader& reader, size_t row) const;

 private:
  enum class Kind { kCompare, kAnd, kOr, kNot };

  Kind kind_;
  size_t col_ = 0;
  CompareOp op_ = CompareOp::kEq;
  Value literal_;
  PredicatePtr left_;
  PredicatePtr right_;
};

// ---------------------------------------------------------------------------
// Kernels.
// ---------------------------------------------------------------------------

/// Returns the indices of rows satisfying `pred`.
Result<std::vector<uint32_t>> FilterPage(const RowPageReader& reader,
                                         const Predicate& pred);

/// Builds a new page containing only the selected rows.
Result<Buffer> MaterializeRows(const RowPageReader& reader,
                               const std::vector<uint32_t>& rows);

enum class AggregateKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// Aggregates a numeric column over the given rows (all rows when
/// `rows == nullptr`). Returns double for kAvg, the column's native type
/// otherwise (kCount returns int64).
Result<Value> AggregateColumn(const RowPageReader& reader, size_t col,
                              AggregateKind kind,
                              const std::vector<uint32_t>* rows = nullptr);

/// Group-by on an int64 key column with a single aggregate.
Result<std::map<int64_t, Value>> GroupByAggregate(const RowPageReader& reader,
                                                  size_t key_col,
                                                  size_t agg_col,
                                                  AggregateKind kind);

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_RELATIONAL_H_
