#include "kern/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace dpdpu::kern {

namespace {

// Slice-by-8 tables: t[0] is the classic byte-wise table; t[k][b] is the
// CRC of byte b followed by k zero bytes, letting eight input bytes fold
// into the state with eight independent lookups per iteration.
struct CrcTables {
  uint32_t t[8][256];
};

constexpr CrcTables MakeTables() {
  CrcTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = tables.t[k - 1][i];
      tables.t[k][i] = tables.t[0][c & 0xFF] ^ (c >> 8);
    }
  }
  return tables;
}

constexpr CrcTables kCrc = MakeTables();

inline uint32_t LoadLE32(const uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
  } else {
    return uint32_t(p[0]) | uint32_t(p[1]) << 8 | uint32_t(p[2]) << 16 |
           uint32_t(p[3]) << 24;
  }
}

}  // namespace

uint32_t Crc32UpdateBytewise(uint32_t crc, ByteSpan data) {
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (uint8_t b : data) {
    c = kCrc.t[0][(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32Update(uint32_t crc, ByteSpan data) {
  uint32_t c = crc ^ 0xFFFFFFFFu;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint32_t lo = LoadLE32(p) ^ c;
    uint32_t hi = LoadLE32(p + 4);
    c = kCrc.t[7][lo & 0xFF] ^ kCrc.t[6][(lo >> 8) & 0xFF] ^
        kCrc.t[5][(lo >> 16) & 0xFF] ^ kCrc.t[4][lo >> 24] ^
        kCrc.t[3][hi & 0xFF] ^ kCrc.t[2][(hi >> 8) & 0xFF] ^
        kCrc.t[1][(hi >> 16) & 0xFF] ^ kCrc.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kCrc.t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(ByteSpan data) { return Crc32Update(0, data); }

}  // namespace dpdpu::kern
