// DEFLATE decoder (RFC 1951). Defensive: every malformed stream path
// returns Status::Corruption rather than reading out of bounds. The block
// payload loop is the throughput-critical path: table-driven Huffman
// decode (HuffmanDecoder::DecodeFast over the BitReader's bulk-refill
// lookahead) and word-wise match copies.

#include <algorithm>
#include <cstring>
#include <vector>

#include "kern/bitio.h"
#include "kern/deflate.h"
#include "kern/deflate_tables.h"
#include "kern/huffman.h"

namespace dpdpu::kern {

namespace {

// Appends out[out->size()-distance ...] repeated to `length` bytes.
// Caller has validated distance/length; handles dist < len replication.
void CopyMatch(Buffer* out, size_t distance, size_t length) {
  size_t start = out->size();
  out->resize(start + length);
  uint8_t* dst = out->data() + start;
  const uint8_t* src = dst - distance;
  if (distance >= length) {
    std::memcpy(dst, src, length);
  } else if (distance == 1) {
    std::memset(dst, src[0], length);
  } else {
    // Overlapping: seed one period, then double the replicated prefix.
    // `done` stays a multiple of `distance` until the final partial
    // chunk, so copying from the front preserves the period.
    std::memcpy(dst, src, distance);
    size_t done = distance;
    while (done < length) {
      size_t chunk = std::min(done, length - done);
      std::memcpy(dst + done, dst, chunk);
      done += chunk;
    }
  }
}

Status InflateBlockPayload(BitReader& br, const HuffmanDecoder& litlen,
                           const HuffmanDecoder* dist, size_t max_output,
                           Buffer* out) {
  for (;;) {
    int symbol;
    DPDPU_RETURN_IF_ERROR(litlen.DecodeFast(br, &symbol));
    if (symbol < 256) {
      if (out->size() >= max_output) {
        return Status::ResourceExhausted("inflate: output limit exceeded");
      }
      out->AppendU8(static_cast<uint8_t>(symbol));
      continue;
    }
    if (symbol == kEndOfBlock) return Status::Ok();
    if (symbol > 285) return Status::Corruption("inflate: bad length symbol");

    int lidx = symbol - 257;
    uint32_t extra;
    if (!br.ReadBits(kLengthExtra[lidx], &extra)) {
      return Status::Corruption("inflate: truncated length extra bits");
    }
    size_t length = kLengthBase[lidx] + extra;

    if (dist == nullptr) {
      return Status::Corruption("inflate: match with no distance code");
    }
    int dsymbol;
    DPDPU_RETURN_IF_ERROR(dist->DecodeFast(br, &dsymbol));
    if (dsymbol > 29) return Status::Corruption("inflate: bad dist symbol");
    if (!br.ReadBits(kDistExtra[dsymbol], &extra)) {
      return Status::Corruption("inflate: truncated dist extra bits");
    }
    size_t distance = kDistBase[dsymbol] + extra;
    if (distance > out->size()) {
      return Status::Corruption("inflate: distance beyond output start");
    }
    if (out->size() + length > max_output) {
      return Status::ResourceExhausted("inflate: output limit exceeded");
    }
    CopyMatch(out, distance, length);
  }
}

Status ReadDynamicTables(BitReader& br, HuffmanDecoder* litlen_out,
                         HuffmanDecoder* dist_out, bool* has_dist) {
  uint32_t hlit, hdist, hclen;
  if (!br.ReadBits(5, &hlit) || !br.ReadBits(5, &hdist) ||
      !br.ReadBits(4, &hclen)) {
    return Status::Corruption("inflate: truncated dynamic header");
  }
  hlit += 257;
  hdist += 1;
  hclen += 4;
  if (hlit > 286 || hdist > 30) {
    return Status::Corruption("inflate: dynamic header counts out of range");
  }

  std::vector<uint8_t> clen_lengths(kNumClenSymbols, 0);
  for (uint32_t i = 0; i < hclen; ++i) {
    uint32_t v;
    if (!br.ReadBits(3, &v)) {
      return Status::Corruption("inflate: truncated clen lengths");
    }
    clen_lengths[kClenOrder[i]] = static_cast<uint8_t>(v);
  }
  DPDPU_ASSIGN_OR_RETURN(HuffmanDecoder clen,
                         HuffmanDecoder::Build(clen_lengths));

  std::vector<uint8_t> lengths;
  lengths.reserve(hlit + hdist);
  while (lengths.size() < hlit + hdist) {
    int symbol;
    DPDPU_RETURN_IF_ERROR(clen.DecodeFast(br, &symbol));
    if (symbol < 16) {
      lengths.push_back(static_cast<uint8_t>(symbol));
    } else if (symbol == 16) {
      if (lengths.empty()) {
        return Status::Corruption("inflate: repeat with no previous length");
      }
      uint32_t rep;
      if (!br.ReadBits(2, &rep)) {
        return Status::Corruption("inflate: truncated repeat count");
      }
      uint8_t prev = lengths.back();
      for (uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(prev);
    } else {
      uint32_t rep;
      int bits = (symbol == 17) ? 3 : 7;
      uint32_t base = (symbol == 17) ? 3 : 11;
      if (!br.ReadBits(bits, &rep)) {
        return Status::Corruption("inflate: truncated zero-run count");
      }
      for (uint32_t i = 0; i < rep + base; ++i) lengths.push_back(0);
    }
  }
  if (lengths.size() != hlit + hdist) {
    return Status::Corruption("inflate: code length overrun");
  }

  std::vector<uint8_t> litlen_lengths(lengths.begin(),
                                      lengths.begin() + hlit);
  if (litlen_lengths[kEndOfBlock] == 0) {
    return Status::Corruption("inflate: missing end-of-block code");
  }
  DPDPU_ASSIGN_OR_RETURN(*litlen_out, HuffmanDecoder::Build(litlen_lengths));

  std::vector<uint8_t> dist_lengths(lengths.begin() + hlit, lengths.end());
  *has_dist = false;
  for (uint8_t l : dist_lengths) {
    if (l > 0) {
      *has_dist = true;
      break;
    }
  }
  if (*has_dist) {
    DPDPU_ASSIGN_OR_RETURN(*dist_out, HuffmanDecoder::Build(dist_lengths));
  }
  return Status::Ok();
}

}  // namespace

Result<Buffer> DeflateDecompress(ByteSpan input, size_t max_output) {
  Buffer out;
  BitReader br(input);

  // Fixed tables built once per call.
  std::vector<uint8_t> fixed_litlen(kNumLitLenSymbols);
  for (int s = 0; s < kNumLitLenSymbols; ++s) {
    fixed_litlen[s] = FixedLitLenLength(s);
  }
  DPDPU_ASSIGN_OR_RETURN(HuffmanDecoder fixed_litlen_dec,
                         HuffmanDecoder::Build(fixed_litlen));
  std::vector<uint8_t> fixed_dist(kNumDistSymbols, 5);
  DPDPU_ASSIGN_OR_RETURN(HuffmanDecoder fixed_dist_dec,
                         HuffmanDecoder::Build(fixed_dist));

  for (;;) {
    uint32_t bfinal, btype;
    if (!br.ReadBits(1, &bfinal) || !br.ReadBits(2, &btype)) {
      return Status::Corruption("inflate: truncated block header");
    }
    switch (btype) {
      case 0: {  // stored
        br.AlignToByte();
        uint8_t b0, b1, b2, b3;
        if (!br.ReadAlignedByte(&b0) || !br.ReadAlignedByte(&b1) ||
            !br.ReadAlignedByte(&b2) || !br.ReadAlignedByte(&b3)) {
          return Status::Corruption("inflate: truncated stored header");
        }
        uint32_t len = uint32_t(b0) | (uint32_t(b1) << 8);
        uint32_t nlen = uint32_t(b2) | (uint32_t(b3) << 8);
        if ((len ^ 0xFFFF) != nlen) {
          return Status::Corruption("inflate: stored LEN/NLEN mismatch");
        }
        if (out.size() + len > max_output) {
          return Status::ResourceExhausted("inflate: output limit exceeded");
        }
        for (uint32_t i = 0; i < len; ++i) {
          uint8_t b;
          if (!br.ReadAlignedByte(&b)) {
            return Status::Corruption("inflate: truncated stored data");
          }
          out.AppendU8(b);
        }
        break;
      }
      case 1: {  // fixed Huffman
        DPDPU_RETURN_IF_ERROR(InflateBlockPayload(
            br, fixed_litlen_dec, &fixed_dist_dec, max_output, &out));
        break;
      }
      case 2: {  // dynamic Huffman
        HuffmanDecoder litlen, dist;
        bool has_dist = false;
        DPDPU_RETURN_IF_ERROR(ReadDynamicTables(br, &litlen, &dist,
                                                &has_dist));
        DPDPU_RETURN_IF_ERROR(InflateBlockPayload(
            br, litlen, has_dist ? &dist : nullptr, max_output, &out));
        break;
      }
      default:
        return Status::Corruption("inflate: reserved block type 11");
    }
    if (bfinal) break;
  }
  return out;
}

}  // namespace dpdpu::kern
