// Regular expression DP kernel: a from-scratch Thompson-NFA engine with
// Pike-VM execution (no backtracking, linear time in text length). Models
// the BlueField-2 RegEx accelerator's workload; the same code runs when
// the kernel is placed on a CPU.
//
// Supported syntax: literals, '.', escapes (\d \D \w \W \s \S \n \t \r and
// escaped metacharacters), character classes [a-z0-9] and [^...],
// alternation '|', groups '(...)', quantifiers '*' '+' '?' '{m}' '{m,}'
// '{m,n}', anchors '^' and '$'.

#ifndef DPDPU_KERN_REGEX_H_
#define DPDPU_KERN_REGEX_H_

#include <bitset>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dpdpu::kern {

class Regex {
 public:
  /// Compiles `pattern`; fails with InvalidArgument on syntax errors.
  static Result<Regex> Compile(std::string_view pattern);

  /// True when the entire text matches the pattern.
  bool FullMatch(std::string_view text) const;

  /// True when any substring matches ("search" semantics).
  bool PartialMatch(std::string_view text) const;

  /// Number of non-overlapping matches, scanning greedily left to right
  /// (each match takes the longest extent from its start position).
  size_t CountMatches(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }
  size_t instruction_count() const { return program_.size(); }

 private:
  enum class Op : uint8_t { kChar, kSplit, kJump, kAssertBegin, kAssertEnd,
                            kMatch };

  struct Inst {
    Op op;
    int x = 0;  // kChar: class index; kSplit/kJump: target
    int y = 0;  // kSplit: second target
  };

  Regex() = default;

  // Pike-VM step machinery.
  void AddThread(std::vector<int>& list, std::vector<uint32_t>& mark,
                 uint32_t gen, int pc, size_t pos, size_t len) const;
  // Runs the VM from a fixed start position; returns -1 when no match, or
  // the longest match end offset.
  ptrdiff_t RunFrom(std::string_view text, size_t start) const;

  std::string pattern_;
  std::vector<Inst> program_;
  std::vector<std::bitset<256>> classes_;
  bool anchored_begin_ = false;  // informational; anchors are instructions
};

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_REGEX_H_
