#include "kern/relational.h"

#include <algorithm>
#include <cstring>

namespace dpdpu::kern {

namespace {

constexpr uint32_t kPageMagic = 0x44505031;  // "DPP1"

size_t SlotWidth(ColumnType type) {
  return type == ColumnType::kString ? 8 : 8;  // strings: u32 off + u32 len
}

size_t RowWidth(const Schema& schema) {
  size_t w = 0;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    w += SlotWidth(schema.column(i).type);
  }
  return w;
}

double AsDouble(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  return std::get<double>(v);
}

}  // namespace

int Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

ColumnType TypeOf(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return ColumnType::kInt64;
  if (std::holds_alternative<double>(v)) return ColumnType::kDouble;
  return ColumnType::kString;
}

// ---------------------------------------------------------------------------
// RowPageBuilder.
// ---------------------------------------------------------------------------

Status RowPageBuilder::AddRow(const std::vector<Value>& values) {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row page: wrong column count");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (TypeOf(values[i]) != schema_.column(i).type) {
      return Status::InvalidArgument("row page: type mismatch in column " +
                                     schema_.column(i).name);
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    switch (schema_.column(i).type) {
      case ColumnType::kInt64:
        fixed_.AppendU64(static_cast<uint64_t>(std::get<int64_t>(v)));
        break;
      case ColumnType::kDouble: {
        double d = std::get<double>(v);
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        fixed_.AppendU64(bits);
        break;
      }
      case ColumnType::kString: {
        const std::string& s = std::get<std::string>(v);
        fixed_.AppendU32(static_cast<uint32_t>(heap_.size()));
        fixed_.AppendU32(static_cast<uint32_t>(s.size()));
        heap_.Append(s);
        break;
      }
    }
  }
  ++row_count_;
  return Status::Ok();
}

Buffer RowPageBuilder::Finish() const {
  Buffer page;
  page.AppendU32(kPageMagic);
  page.AppendU32(static_cast<uint32_t>(row_count_));
  page.AppendU32(static_cast<uint32_t>(schema_.num_columns()));
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    page.AppendU8(static_cast<uint8_t>(schema_.column(i).type));
  }
  page.Append(fixed_.span());
  page.Append(heap_.span());
  return page;
}

// ---------------------------------------------------------------------------
// RowPageReader.
// ---------------------------------------------------------------------------

Result<RowPageReader> RowPageReader::Open(const Schema* schema,
                                          ByteSpan page) {
  ByteReader br(page);
  uint32_t magic, rows, cols;
  if (!br.ReadU32(&magic) || !br.ReadU32(&rows) || !br.ReadU32(&cols)) {
    return Status::Corruption("row page: truncated header");
  }
  if (magic != kPageMagic) return Status::Corruption("row page: bad magic");
  if (cols != schema->num_columns()) {
    return Status::InvalidArgument("row page: schema column count mismatch");
  }
  for (uint32_t i = 0; i < cols; ++i) {
    uint8_t t;
    if (!br.ReadU8(&t)) return Status::Corruption("row page: bad type list");
    if (t != static_cast<uint8_t>(schema->column(i).type)) {
      return Status::InvalidArgument("row page: schema type mismatch");
    }
  }
  RowPageReader r;
  r.schema_ = schema;
  r.page_ = page;
  r.row_count_ = rows;
  r.row_width_ = RowWidth(*schema);
  r.rows_offset_ = br.position();
  r.heap_offset_ = r.rows_offset_ + r.row_width_ * rows;
  if (r.heap_offset_ > page.size()) {
    return Status::Corruption("row page: truncated rows");
  }
  return r;
}

Result<Value> RowPageReader::Get(size_t row, size_t col) const {
  if (row >= row_count_) return Status::OutOfRange("row page: row");
  if (col >= schema_->num_columns()) {
    return Status::OutOfRange("row page: column");
  }
  size_t slot = rows_offset_ + row * row_width_;
  for (size_t i = 0; i < col; ++i) {
    slot += SlotWidth(schema_->column(i).type);
  }
  ByteReader br(page_.subspan(slot));
  switch (schema_->column(col).type) {
    case ColumnType::kInt64: {
      uint64_t bits;
      if (!br.ReadU64(&bits)) return Status::Corruption("row page: slot");
      return Value(static_cast<int64_t>(bits));
    }
    case ColumnType::kDouble: {
      uint64_t bits;
      if (!br.ReadU64(&bits)) return Status::Corruption("row page: slot");
      double d;
      std::memcpy(&d, &bits, 8);
      return Value(d);
    }
    case ColumnType::kString: {
      uint32_t off, len;
      if (!br.ReadU32(&off) || !br.ReadU32(&len)) {
        return Status::Corruption("row page: slot");
      }
      size_t begin = heap_offset_ + off;
      if (begin + len > page_.size()) {
        return Status::Corruption("row page: string out of bounds");
      }
      return Value(std::string(
          reinterpret_cast<const char*>(page_.data() + begin), len));
    }
  }
  return Status::Internal("row page: unknown column type");
}

// ---------------------------------------------------------------------------
// Predicate.
// ---------------------------------------------------------------------------

PredicatePtr Predicate::Compare(size_t col, CompareOp op, Value literal) {
  auto p = std::unique_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCompare;
  p->col_ = col;
  p->op_ = op;
  p->literal_ = std::move(literal);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr l, PredicatePtr r) {
  auto p = std::unique_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->left_ = std::move(l);
  p->right_ = std::move(r);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr l, PredicatePtr r) {
  auto p = std::unique_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->left_ = std::move(l);
  p->right_ = std::move(r);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr inner) {
  auto p = std::unique_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->left_ = std::move(inner);
  return p;
}

namespace {

template <typename T>
bool ApplyOp(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<bool> Predicate::Eval(const RowPageReader& reader, size_t row) const {
  switch (kind_) {
    case Kind::kCompare: {
      DPDPU_ASSIGN_OR_RETURN(Value cell, reader.Get(row, col_));
      if (TypeOf(cell) != TypeOf(literal_)) {
        // Permit int64-vs-double numeric comparison.
        if (TypeOf(cell) != ColumnType::kString &&
            TypeOf(literal_) != ColumnType::kString) {
          return ApplyOp(op_, AsDouble(cell), AsDouble(literal_));
        }
        return Status::InvalidArgument("predicate: type mismatch");
      }
      if (std::holds_alternative<int64_t>(cell)) {
        return ApplyOp(op_, std::get<int64_t>(cell),
                       std::get<int64_t>(literal_));
      }
      if (std::holds_alternative<double>(cell)) {
        return ApplyOp(op_, std::get<double>(cell),
                       std::get<double>(literal_));
      }
      return ApplyOp(op_, std::get<std::string>(cell),
                     std::get<std::string>(literal_));
    }
    case Kind::kAnd: {
      DPDPU_ASSIGN_OR_RETURN(bool l, left_->Eval(reader, row));
      if (!l) return false;
      return right_->Eval(reader, row);
    }
    case Kind::kOr: {
      DPDPU_ASSIGN_OR_RETURN(bool l, left_->Eval(reader, row));
      if (l) return true;
      return right_->Eval(reader, row);
    }
    case Kind::kNot: {
      DPDPU_ASSIGN_OR_RETURN(bool inner, left_->Eval(reader, row));
      return !inner;
    }
  }
  return Status::Internal("predicate: unknown kind");
}

// ---------------------------------------------------------------------------
// Kernels.
// ---------------------------------------------------------------------------

Result<std::vector<uint32_t>> FilterPage(const RowPageReader& reader,
                                         const Predicate& pred) {
  std::vector<uint32_t> out;
  for (size_t row = 0; row < reader.row_count(); ++row) {
    DPDPU_ASSIGN_OR_RETURN(bool keep, pred.Eval(reader, row));
    if (keep) out.push_back(static_cast<uint32_t>(row));
  }
  return out;
}

Result<Buffer> MaterializeRows(const RowPageReader& reader,
                               const std::vector<uint32_t>& rows) {
  RowPageBuilder builder(reader.schema());
  for (uint32_t row : rows) {
    std::vector<Value> values;
    values.reserve(reader.schema().num_columns());
    for (size_t col = 0; col < reader.schema().num_columns(); ++col) {
      DPDPU_ASSIGN_OR_RETURN(Value v, reader.Get(row, col));
      values.push_back(std::move(v));
    }
    DPDPU_RETURN_IF_ERROR(builder.AddRow(values));
  }
  return builder.Finish();
}

Result<Value> AggregateColumn(const RowPageReader& reader, size_t col,
                              AggregateKind kind,
                              const std::vector<uint32_t>* rows) {
  if (col >= reader.schema().num_columns()) {
    return Status::OutOfRange("aggregate: column");
  }
  ColumnType type = reader.schema().column(col).type;
  if (kind != AggregateKind::kCount && type == ColumnType::kString) {
    return Status::InvalidArgument("aggregate: non-count over string column");
  }

  size_t n = rows ? rows->size() : reader.row_count();
  if (kind == AggregateKind::kCount) {
    return Value(static_cast<int64_t>(n));
  }
  if (n == 0) {
    return Status::InvalidArgument("aggregate: empty input");
  }

  double dsum = 0;
  int64_t isum = 0;
  double dmin = 0, dmax = 0;
  int64_t imin = 0, imax = 0;
  bool first = true;
  for (size_t i = 0; i < n; ++i) {
    size_t row = rows ? (*rows)[i] : i;
    DPDPU_ASSIGN_OR_RETURN(Value v, reader.Get(row, col));
    if (type == ColumnType::kInt64) {
      int64_t x = std::get<int64_t>(v);
      isum += x;
      dsum += static_cast<double>(x);
      if (first || x < imin) imin = x;
      if (first || x > imax) imax = x;
    } else {
      double x = std::get<double>(v);
      dsum += x;
      if (first || x < dmin) dmin = x;
      if (first || x > dmax) dmax = x;
    }
    first = false;
  }
  switch (kind) {
    case AggregateKind::kSum:
      return type == ColumnType::kInt64 ? Value(isum) : Value(dsum);
    case AggregateKind::kMin:
      return type == ColumnType::kInt64 ? Value(imin) : Value(dmin);
    case AggregateKind::kMax:
      return type == ColumnType::kInt64 ? Value(imax) : Value(dmax);
    case AggregateKind::kAvg:
      return Value(dsum / double(n));
    case AggregateKind::kCount:
      break;  // handled above
  }
  return Status::Internal("aggregate: unknown kind");
}

Result<std::map<int64_t, Value>> GroupByAggregate(const RowPageReader& reader,
                                                  size_t key_col,
                                                  size_t agg_col,
                                                  AggregateKind kind) {
  if (key_col >= reader.schema().num_columns() ||
      reader.schema().column(key_col).type != ColumnType::kInt64) {
    return Status::InvalidArgument("group by: key must be an int64 column");
  }
  // Bucket row indices per key, then reuse AggregateColumn.
  std::map<int64_t, std::vector<uint32_t>> groups;
  for (size_t row = 0; row < reader.row_count(); ++row) {
    DPDPU_ASSIGN_OR_RETURN(Value key, reader.Get(row, key_col));
    groups[std::get<int64_t>(key)].push_back(static_cast<uint32_t>(row));
  }
  std::map<int64_t, Value> out;
  for (const auto& [key, rows] : groups) {
    DPDPU_ASSIGN_OR_RETURN(Value v,
                           AggregateColumn(reader, agg_col, kind, &rows));
    out.emplace(key, std::move(v));
  }
  return out;
}

}  // namespace dpdpu::kern
