#include "kern/huffman.h"

#include <algorithm>
#include <cstddef>

#include "common/logging.h"

namespace dpdpu::kern {

namespace {

// Package-merge working node: a leaf (symbol) or a package of two nodes.
struct PmNode {
  uint64_t weight;
  int symbol;  // >= 0 for leaves, -1 for packages
  int left = -1;
  int right = -1;
};

// Recursively counts leaf occurrences in a package tree.
void CountLeaves(const std::vector<PmNode>& arena, int idx,
                 std::vector<uint8_t>* lengths) {
  const PmNode& n = arena[idx];
  if (n.symbol >= 0) {
    ++(*lengths)[n.symbol];
    return;
  }
  CountLeaves(arena, n.left, lengths);
  CountLeaves(arena, n.right, lengths);
}

}  // namespace

std::vector<uint8_t> PackageMergeLengths(const std::vector<uint64_t>& freqs,
                                         int max_bits) {
  const size_t n = freqs.size();
  std::vector<uint8_t> lengths(n, 0);

  // Collect used symbols.
  std::vector<int> used;
  for (size_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) used.push_back(static_cast<int>(i));
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }
  DPDPU_CHECK((size_t(1) << max_bits) >= used.size());

  // Leaves sorted by weight (stable on symbol for determinism).
  std::vector<PmNode> arena;
  std::vector<int> leaves;  // arena indices, sorted by weight
  for (int s : used) {
    arena.push_back(PmNode{freqs[s], s});
    leaves.push_back(static_cast<int>(arena.size()) - 1);
  }
  std::sort(leaves.begin(), leaves.end(), [&](int a, int b) {
    if (arena[a].weight != arena[b].weight)
      return arena[a].weight < arena[b].weight;
    return arena[a].symbol < arena[b].symbol;
  });

  // Iterate max_bits levels: list = merge(leaves, package(list)).
  std::vector<int> list = leaves;
  for (int level = 1; level < max_bits; ++level) {
    // Package adjacent pairs.
    std::vector<int> packaged;
    for (size_t i = 0; i + 1 < list.size(); i += 2) {
      arena.push_back(PmNode{arena[list[i]].weight + arena[list[i + 1]].weight,
                             -1, list[i], list[i + 1]});
      packaged.push_back(static_cast<int>(arena.size()) - 1);
    }
    // Merge with fresh leaves (both sorted by weight).
    std::vector<int> merged;
    merged.reserve(leaves.size() + packaged.size());
    size_t a = 0, b = 0;
    while (a < leaves.size() || b < packaged.size()) {
      bool take_leaf;
      if (a == leaves.size()) {
        take_leaf = false;
      } else if (b == packaged.size()) {
        take_leaf = true;
      } else {
        take_leaf = arena[leaves[a]].weight <= arena[packaged[b]].weight;
      }
      merged.push_back(take_leaf ? leaves[a++] : packaged[b++]);
    }
    list = std::move(merged);
  }

  // The first 2m-2 items of the final list define the code: each leaf
  // occurrence adds one to its symbol's code length.
  size_t take = 2 * used.size() - 2;
  DPDPU_CHECK(take <= list.size());
  for (size_t i = 0; i < take; ++i) {
    CountLeaves(arena, list[i], &lengths);
  }
  return lengths;
}

std::vector<uint32_t> CanonicalCodes(const std::vector<uint8_t>& lengths) {
  std::vector<uint32_t> codes(lengths.size(), 0);
  std::vector<uint32_t> bl_count(kMaxHuffmanBits + 1, 0);
  for (uint8_t len : lengths) {
    if (len > 0) ++bl_count[len];
  }
  std::vector<uint32_t> next_code(kMaxHuffmanBits + 2, 0);
  uint32_t code = 0;
  for (int bits = 1; bits <= kMaxHuffmanBits; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = code;
  }
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) codes[i] = next_code[lengths[i]]++;
  }
  return codes;
}

Result<HuffmanDecoder> HuffmanDecoder::Build(
    const std::vector<uint8_t>& lengths) {
  HuffmanDecoder d;
  d.count_.assign(kMaxHuffmanBits + 1, 0);
  for (uint8_t len : lengths) {
    if (len > kMaxHuffmanBits) {
      return Status::InvalidArgument("huffman: length exceeds 15");
    }
    if (len > 0) ++d.count_[len];
  }

  // Reject over-subscribed codes (Kraft sum > 1).
  int64_t left = 1;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    left <<= 1;
    left -= d.count_[len];
    if (left < 0) {
      return Status::Corruption("huffman: over-subscribed code lengths");
    }
  }

  // Offsets of first symbol of each length in the canonical ordering.
  std::vector<uint16_t> offsets(kMaxHuffmanBits + 2, 0);
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    offsets[len + 1] = offsets[len] + d.count_[len];
  }
  d.symbols_.assign(offsets[kMaxHuffmanBits + 1], 0);
  std::vector<uint16_t> pos(offsets.begin(), offsets.end());
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      d.symbols_[pos[lengths[s]]++] = static_cast<uint16_t>(s);
    }
  }

  // Single-level decode LUT: for each code of length len <= kLutBits,
  // fill every index whose low len bits are the code's stream bits (the
  // canonical code value bit-reversed, since DEFLATE transmits codes
  // MSB-first into an LSB-first stream).
  d.lut_.assign(size_t(1) << kLutBits, 0);
  std::vector<uint32_t> codes = CanonicalCodes(lengths);
  for (size_t s = 0; s < lengths.size(); ++s) {
    int len = lengths[s];
    if (len == 0 || len > kLutBits) continue;
    uint32_t reversed = 0;
    for (int i = 0; i < len; ++i) {
      reversed = (reversed << 1) | ((codes[s] >> i) & 1u);
    }
    uint16_t entry =
        static_cast<uint16_t>((uint32_t(s) << 5) | uint32_t(len));
    for (uint32_t filler = 0; filler < (1u << (kLutBits - len)); ++filler) {
      d.lut_[(filler << len) | reversed] = entry;
    }
  }
  return d;
}

Status HuffmanDecoder::Decode(BitReader& reader, int* symbol) const {
  // Canonical bit-at-a-time decode (puff-style).
  uint32_t code = 0;
  uint32_t first = 0;
  uint32_t index = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    uint32_t bit;
    if (!reader.ReadBit(&bit)) {
      return Status::Corruption("huffman: truncated stream");
    }
    code |= bit;
    uint32_t count = count_[len];
    if (code < first + count) {
      *symbol = symbols_[index + (code - first)];
      return Status::Ok();
    }
    index += count;
    first = (first + count) << 1;
    code <<= 1;
  }
  return Status::Corruption("huffman: unassigned code in stream");
}

}  // namespace dpdpu::kern
