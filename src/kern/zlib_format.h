// zlib container format (RFC 1950) over the DEFLATE core: 2-byte header,
// raw DEFLATE stream, Adler-32 of the uncompressed data. This is the
// wire format most systems exchange ("zlib-wrapped deflate"), so the
// compression DP kernel can interoperate with real data.

#ifndef DPDPU_KERN_ZLIB_FORMAT_H_
#define DPDPU_KERN_ZLIB_FORMAT_H_

#include <cstdint>

#include "common/buffer.h"
#include "common/result.h"
#include "kern/deflate.h"

namespace dpdpu::kern {

/// Adler-32 checksum (RFC 1950 §8).
uint32_t Adler32(ByteSpan data);

/// Incremental form; start from 1.
uint32_t Adler32Update(uint32_t adler, ByteSpan data);

/// Compresses into a zlib stream (header + DEFLATE + Adler-32).
Result<Buffer> ZlibCompress(ByteSpan input,
                            const DeflateOptions& options = {});

/// Decompresses a zlib stream, validating the header and checksum.
Result<Buffer> ZlibDecompress(ByteSpan input,
                              size_t max_output = size_t(1) << 31);

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_ZLIB_FORMAT_H_
