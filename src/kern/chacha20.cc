#include "kern/chacha20.h"

#include <bit>
#include <cstring>

namespace dpdpu::kern {

namespace {

inline uint32_t Load32(const uint8_t* p) {
  return uint32_t(p[0]) | uint32_t(p[1]) << 8 | uint32_t(p[2]) << 16 |
         uint32_t(p[3]) << 24;
}

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

void BlockInto(const std::array<uint8_t, kChaCha20KeyBytes>& key,
               const std::array<uint8_t, kChaCha20NonceBytes>& nonce,
               uint32_t counter, uint8_t out[64]) {
  uint32_t state[16] = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
      Load32(&key[0]),  Load32(&key[4]),  Load32(&key[8]),  Load32(&key[12]),
      Load32(&key[16]), Load32(&key[20]), Load32(&key[24]), Load32(&key[28]),
      counter, Load32(&nonce[0]), Load32(&nonce[4]), Load32(&nonce[8])};
  uint32_t w[16];
  std::memcpy(w, state, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(w[0], w[4], w[8], w[12]);
    QuarterRound(w[1], w[5], w[9], w[13]);
    QuarterRound(w[2], w[6], w[10], w[14]);
    QuarterRound(w[3], w[7], w[11], w[15]);
    QuarterRound(w[0], w[5], w[10], w[15]);
    QuarterRound(w[1], w[6], w[11], w[12]);
    QuarterRound(w[2], w[7], w[8], w[13]);
    QuarterRound(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = w[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

}  // namespace

std::array<uint8_t, 64> ChaCha20Block(
    const std::array<uint8_t, kChaCha20KeyBytes>& key,
    const std::array<uint8_t, kChaCha20NonceBytes>& nonce, uint32_t counter) {
  std::array<uint8_t, 64> out;
  BlockInto(key, nonce, counter, out.data());
  return out;
}

Buffer ChaCha20Xor(const std::array<uint8_t, kChaCha20KeyBytes>& key,
                   const std::array<uint8_t, kChaCha20NonceBytes>& nonce,
                   uint32_t counter, ByteSpan input) {
  Buffer out(input.size());
  uint8_t keystream[64];
  size_t pos = 0;
  while (pos < input.size()) {
    BlockInto(key, nonce, counter++, keystream);
    size_t n = std::min<size_t>(64, input.size() - pos);
    for (size_t i = 0; i < n; ++i) {
      out[pos + i] = input[pos + i] ^ keystream[i];
    }
    pos += n;
  }
  return out;
}

}  // namespace dpdpu::kern
