// Content-defined chunking and deduplication — the workload of the
// BlueField-2 dedup ASIC. Rabin-style rolling hash picks chunk boundaries
// from content, so identical regions dedup even after insertions shift
// their offsets.

#ifndef DPDPU_KERN_DEDUP_H_
#define DPDPU_KERN_DEDUP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"

namespace dpdpu::kern {

struct ChunkerOptions {
  size_t min_size = 2048;
  /// Expected chunk size; must be a power of two (boundary mask).
  size_t avg_size = 8192;
  size_t max_size = 65536;
};

struct Chunk {
  size_t offset;
  size_t size;
  uint64_t fingerprint;  // FNV-1a 64 of the chunk contents
};

/// Splits `data` into content-defined chunks.
std::vector<Chunk> ChunkData(ByteSpan data, const ChunkerOptions& options = {});

/// FNV-1a 64-bit content fingerprint.
uint64_t Fingerprint64(ByteSpan data);

struct DedupStats {
  uint64_t total_bytes = 0;
  uint64_t unique_bytes = 0;
  uint64_t total_chunks = 0;
  uint64_t unique_chunks = 0;

  /// total/unique; 1.0 means nothing deduplicated.
  double Ratio() const {
    return unique_bytes == 0 ? 1.0
                             : double(total_bytes) / double(unique_bytes);
  }
};

/// A fingerprint and how many times it has been seen.
struct ChunkCount {
  uint64_t fingerprint = 0;
  uint32_t count = 0;

  bool operator==(const ChunkCount& other) const {
    return fingerprint == other.fingerprint && count == other.count;
  }
};

/// Accumulates chunk fingerprints across Add() calls and reports the
/// cumulative dedup ratio.
class DedupIndex {
 public:
  explicit DedupIndex(ChunkerOptions options = {})
      : options_(options) {}

  /// Chunks `data`, records fingerprints, returns cumulative stats.
  DedupStats Add(ByteSpan data);

  const DedupStats& stats() const { return stats_; }

  /// The `n` most-duplicated chunks in a deterministic total order
  /// (count descending, fingerprint ascending as the tiebreak). This is
  /// the only sanctioned way to surface the index's contents in logs or
  /// metrics: iterating `seen_` directly would emit in hash order, which
  /// varies across libstdc++ versions and breaks bit-exact baselines
  /// (simlint rule R2).
  std::vector<ChunkCount> HotChunks(size_t n) const;

 private:
  ChunkerOptions options_;
  DedupStats stats_;
  std::unordered_map<uint64_t, uint32_t> seen_;
};

}  // namespace dpdpu::kern

#endif  // DPDPU_KERN_DEDUP_H_
