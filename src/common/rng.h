// Deterministic random number generation for workloads and simulations.
// All randomness in DPDPU flows through Pcg32 so that every test and
// benchmark is reproducible bit-for-bit from its seed.

#ifndef DPDPU_COMMON_RNG_H_
#define DPDPU_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>

namespace dpdpu {

/// PCG-XSH-RR 64/32: small, fast, statistically strong, and fully
/// deterministic across platforms (unlike std::mt19937 distributions).
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  uint32_t Next();

  /// Uniform 64-bit value.
  uint64_t Next64();

  /// Uniform in [0, bound). bound must be > 0. Unbiased (rejection
  /// sampling).
  uint32_t NextBounded(uint32_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Zipfian distribution over {0, ..., n-1} with skew theta in [0, 1),
/// using the Gray et al. computation (the YCSB generator). theta = 0 is
/// uniform; theta -> 1 is maximally skewed.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Pcg32& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Fills `out` with uniformly random bytes (incompressible payload).
void FillRandomBytes(Pcg32& rng, uint8_t* out, size_t n);

}  // namespace dpdpu

#endif  // DPDPU_COMMON_RNG_H_
