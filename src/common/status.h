// Status: error-handling vocabulary for DPDPU, in the RocksDB/Arrow idiom.
// Functions that can fail return a Status (or Result<T>, see result.h)
// instead of throwing; exceptions are not used anywhere in the library.

#ifndef DPDPU_COMMON_STATUS_H_
#define DPDPU_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dpdpu {

/// Error categories used across all DPDPU modules.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  // queue full, no capacity, out of blocks/memory
  kUnavailable,        // resource exists but cannot serve now (e.g. no ASIC)
  kCorruption,         // failed checksum, bad magic, malformed stream
  kNotSupported,       // operation not supported on this hardware target
  kTimedOut,
  kAborted,            // operation cancelled or superseded
  kIoError,            // simulated or real device error
  kInternal,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type carrying a StatusCode and an optional message.
/// OK statuses carry no allocation. [[nodiscard]] so a silently-dropped
/// error is a compile-time warning (enforced by simlint R4 + -Werror CI).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller. Idiomatic use:
///   DPDPU_RETURN_IF_ERROR(DoThing());
#define DPDPU_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::dpdpu::Status _dpdpu_status = (expr);        \
    if (!_dpdpu_status.ok()) return _dpdpu_status; \
  } while (false)

}  // namespace dpdpu

#endif  // DPDPU_COMMON_STATUS_H_
