// Measurement primitives: counters and log-bucketed histograms with
// percentile queries, used by the simulator and the benchmark harnesses.

#ifndef DPDPU_COMMON_HISTOGRAM_H_
#define DPDPU_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dpdpu {

/// Log-scale bucketed histogram of non-negative integer samples (typically
/// nanoseconds or cycles). Buckets grow geometrically (~4% width), so
/// percentile error is bounded at ~4% while memory stays O(1).
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }

  /// Value at percentile p in [0, 100]. Returns 0 for an empty histogram.
  uint64_t Percentile(double p) const;

  uint64_t P50() const { return Percentile(50); }
  uint64_t P95() const { return Percentile(95); }
  uint64_t P99() const { return Percentile(99); }

  /// "count=N mean=M p50=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr int kNumBuckets = 1024;
  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0;
  std::vector<uint64_t> buckets_;
};

/// Named counters/gauges keyed by string; cheap enough for simulation-rate
/// accounting, readable enough for bench output.
class MetricSet {
 public:
  void Add(const std::string& name, double delta) { values_[name] += delta; }
  void Set(const std::string& name, double value) { values_[name] = value; }
  double Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  const std::map<std::string, double>& values() const { return values_; }
  void Reset() { values_.clear(); }

 private:
  std::map<std::string, double> values_;
};

}  // namespace dpdpu

#endif  // DPDPU_COMMON_HISTOGRAM_H_
