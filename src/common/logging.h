// Minimal leveled logging. Disabled below the compile-time threshold and
// cheap when the runtime level filters a message out. Not thread-safe by
// design: DPDPU's simulator is single-threaded; the lock-free rings are the
// only cross-thread component and they do not log on the hot path.

#ifndef DPDPU_COMMON_LOGGING_H_
#define DPDPU_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dpdpu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global runtime log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define DPDPU_LOG(level)                                              \
  if (::dpdpu::LogLevel::k##level < ::dpdpu::GetLogLevel()) {         \
  } else                                                              \
    ::dpdpu::internal_logging::LogMessage(::dpdpu::LogLevel::k##level, \
                                          __FILE__, __LINE__)

/// Invariant check that survives NDEBUG: aborts with a message when the
/// condition fails. Use for internal invariants whose violation means a
/// bug, not for user-input validation (return Status for those).
#define DPDPU_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DPDPU_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

}  // namespace dpdpu

#endif  // DPDPU_COMMON_LOGGING_H_
