#include "common/rng.h"

#include <cmath>

namespace dpdpu {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  Next();
  state_ += seed;
  Next();
}

uint32_t Pcg32::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Pcg32::Next64() {
  return (static_cast<uint64_t>(Next()) << 32) | Next();
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling to avoid modulo bias.
  uint32_t threshold = (-bound) % bound;
  for (;;) {
    uint32_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Pcg32::NextRange(uint64_t lo, uint64_t hi) {
  uint64_t span = hi - lo + 1;
  if (span == 0) return Next64();  // full 64-bit range
  if (span <= UINT32_MAX) return lo + NextBounded(static_cast<uint32_t>(span));
  // Wide range: compose from two bounded draws; slight bias acceptable for
  // > 32-bit workload parameter spaces.
  return lo + (Next64() % span);
}

double Pcg32::NextDouble() {
  return Next() * (1.0 / 4294967296.0);
}

double Pcg32::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

bool Pcg32::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfGenerator::Next(Pcg32& rng) const {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

void FillRandomBytes(Pcg32& rng, uint8_t* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32_t v = rng.Next();
    out[i] = static_cast<uint8_t>(v);
    out[i + 1] = static_cast<uint8_t>(v >> 8);
    out[i + 2] = static_cast<uint8_t>(v >> 16);
    out[i + 3] = static_cast<uint8_t>(v >> 24);
  }
  for (; i < n; ++i) out[i] = static_cast<uint8_t>(rng.Next());
}

}  // namespace dpdpu
