// Byte-buffer utilities shared by all modules. A Buffer is an owned,
// contiguous byte array with append/read helpers for little-endian
// fixed-width integers (the on-wire and on-disk encoding used throughout
// DPDPU).

#ifndef DPDPU_COMMON_BUFFER_H_
#define DPDPU_COMMON_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dpdpu {

using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

/// Owned byte array with bounds-checked primitive encode/decode helpers.
/// [[nodiscard]] because a dropped Buffer return is always a mistake:
/// producers (GenerateText, Finish, Compress...) exist only for their
/// return value.
class [[nodiscard]] Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t size) : data_(size) {}
  explicit Buffer(std::vector<uint8_t> data) : data_(std::move(data)) {}
  Buffer(const uint8_t* data, size_t size) : data_(data, data + size) {}
  explicit Buffer(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data()),
              reinterpret_cast<const uint8_t*>(s.data()) + s.size()) {}

  Buffer(const Buffer&) = default;
  Buffer& operator=(const Buffer&) = default;
  Buffer(Buffer&&) = default;
  Buffer& operator=(Buffer&&) = default;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }
  uint8_t operator[](size_t i) const { return data_[i]; }
  uint8_t& operator[](size_t i) { return data_[i]; }

  ByteSpan span() const { return ByteSpan(data_.data(), data_.size()); }
  MutableByteSpan mutable_span() {
    return MutableByteSpan(data_.data(), data_.size());
  }
  std::string_view view() const {
    return std::string_view(reinterpret_cast<const char*>(data_.data()),
                            data_.size());
  }
  std::string ToString() const { return std::string(view()); }

  void clear() { data_.clear(); }
  void resize(size_t n) { data_.resize(n); }
  void reserve(size_t n) { data_.reserve(n); }

  void Append(ByteSpan bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  void Append(std::string_view s) {
    Append(ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }
  void AppendU8(uint8_t v) { data_.push_back(v); }
  void AppendU16(uint16_t v) { AppendLittleEndian(v, 2); }
  void AppendU32(uint32_t v) { AppendLittleEndian(v, 4); }
  void AppendU64(uint64_t v) { AppendLittleEndian(v, 8); }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.data_ == b.data_;
  }

 private:
  void AppendLittleEndian(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      data_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> data_;
};

/// Sequential bounds-checked reader over a ByteSpan. All Read* methods
/// return false (leaving the output untouched) on underflow.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  bool ReadU8(uint8_t* out) { return ReadLittleEndian(out, 1); }
  bool ReadU16(uint16_t* out) { return ReadLittleEndian(out, 2); }
  bool ReadU32(uint32_t* out) { return ReadLittleEndian(out, 4); }
  bool ReadU64(uint64_t* out) { return ReadLittleEndian(out, 8); }

  /// Reads exactly `n` bytes into `out`; fails without consuming on
  /// underflow.
  bool ReadBytes(size_t n, Buffer* out) {
    if (remaining() < n) return false;
    *out = Buffer(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  /// Returns a view of `n` bytes without copying; valid while the
  /// underlying span lives.
  bool ReadSpan(size_t n, ByteSpan* out) {
    if (remaining() < n) return false;
    *out = bytes_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

 private:
  template <typename T>
  bool ReadLittleEndian(T* out, size_t width) {
    if (remaining() < width) return false;
    uint64_t v = 0;
    for (size_t i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    *out = static_cast<T>(v);
    pos_ += width;
    return true;
  }

  ByteSpan bytes_;
  size_t pos_ = 0;
};

}  // namespace dpdpu

#endif  // DPDPU_COMMON_BUFFER_H_
