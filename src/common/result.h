// Result<T>: value-or-Status, the library-wide return type for fallible
// functions that produce a value (Arrow's arrow::Result / absl::StatusOr
// idiom, without exceptions).

#ifndef DPDPU_COMMON_RESULT_H_
#define DPDPU_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dpdpu {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result is a programming error (asserts in debug builds). [[nodiscard]]
/// so a silently-dropped error is a compile-time warning.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from Status, so `return value;` and
  /// `return Status::NotFound(...);` both work in a Result-returning
  /// function (matching absl::StatusOr ergonomics).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Status requires a value; use Result(T)");
    if (status_.ok()) status_ = Status::Internal("OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Unwraps a Result<T> into `lhs`, propagating errors to the caller:
///   DPDPU_ASSIGN_OR_RETURN(auto fd, fs.Open("x"));
#define DPDPU_ASSIGN_OR_RETURN(lhs, expr)                      \
  DPDPU_ASSIGN_OR_RETURN_IMPL_(                                \
      DPDPU_RESULT_CONCAT_(_dpdpu_result, __LINE__), lhs, expr)

#define DPDPU_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define DPDPU_RESULT_CONCAT_(a, b) DPDPU_RESULT_CONCAT_IMPL_(a, b)
#define DPDPU_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace dpdpu

#endif  // DPDPU_COMMON_RESULT_H_
