#include "common/logging.h"

namespace dpdpu {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace dpdpu
