// UniqueFunction: a move-only std::function<void()> replacement so that
// simulation events and async completions can capture move-only state
// (Buffers, Results) without shared_ptr indirection.

#ifndef DPDPU_COMMON_FUNCTION_H_
#define DPDPU_COMMON_FUNCTION_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace dpdpu {

/// Type-erased move-only callable with signature void().
class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f)  // NOLINT(runtime/explicit)
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) = default;
  UniqueFunction& operator=(UniqueFunction&&) = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  void operator()() {
    impl_->Call();
  }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual void Call() = 0;
  };

  template <typename F>
  struct Impl final : Base {
    explicit Impl(F f) : fn(std::move(f)) {}
    void Call() override { fn(); }
    F fn;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace dpdpu

#endif  // DPDPU_COMMON_FUNCTION_H_
