// UniqueFunction: a move-only std::function<void()> replacement so that
// simulation events and async completions can capture move-only state
// (Buffers, Results) without shared_ptr indirection.
//
// Small-buffer optimized: callables up to kInlineSize bytes live inline
// (no heap allocation on the simulator's event hot path); larger captures
// fall back to a heap box. Dispatch is a static ops table (call/relocate/
// destroy) instead of a virtual base, so the inline case costs one
// indirect call and zero allocations.

#ifndef DPDPU_COMMON_FUNCTION_H_
#define DPDPU_COMMON_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dpdpu {

/// Type-erased move-only callable with signature void().
class UniqueFunction {
 public:
  /// Inline storage: sized so a capture of several pointers/integers
  /// (the typical simulation event lambda) fits without allocating;
  /// sizeof(UniqueFunction) stays at one cache line.
  static constexpr size_t kInlineSize = 56;
  static constexpr size_t kInlineAlign = alignof(std::max_align_t);

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f) {  // NOLINT(runtime/explicit)
    using D = std::decay_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { MoveFrom(other); }
  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->call(storage_); }

  /// True when the held callable lives in inline storage (test hook for
  /// the SBO size contract; empty functions report false).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*call)(void*);
    // Move-constructs the payload from `from` into `to`, then destroys
    // the payload at `from` (heap boxes just relocate the pointer).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* Inline(void* s) {
    return std::launder(reinterpret_cast<D*>(s));
  }
  template <typename D>
  static D*& Boxed(void* s) {
    return *std::launder(reinterpret_cast<D**>(s));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*Inline<D>(s))(); },
      [](void* from, void* to) noexcept {
        D* f = Inline<D>(from);
        ::new (to) D(std::move(*f));
        f->~D();
      },
      [](void* s) { Inline<D>(s)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (*Boxed<D>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D*(Boxed<D>(from));
      },
      [](void* s) { delete Boxed<D>(s); },
      /*inline_storage=*/false,
  };

  void MoveFrom(UniqueFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace dpdpu

#endif  // DPDPU_COMMON_FUNCTION_H_
