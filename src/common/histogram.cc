#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace dpdpu {

namespace {
// 16 sub-buckets per power of two: bucket = 16*log2(v) + sub.
constexpr int kSubBucketBits = 4;
constexpr int kSubBuckets = 1 << kSubBucketBits;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  int log2v = 63 - std::countl_zero(value);
  int sub = static_cast<int>((value >> (log2v - kSubBucketBits)) -
                             kSubBuckets);
  int bucket = (log2v - kSubBucketBits + 1) * kSubBuckets + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  int log2v = bucket / kSubBuckets + kSubBucketBits - 1;
  int sub = bucket % kSubBuckets;
  return ((uint64_t(kSubBuckets) + sub + 1) << (log2v - kSubBucketBits)) - 1;
}

void Histogram::Add(uint64_t value) {
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += double(value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << P50()
     << " p95=" << P95() << " p99=" << P99() << " max=" << max_;
  return os.str();
}

}  // namespace dpdpu
