#include "common/buffer.h"

// Buffer and ByteReader are fully inline; this translation unit exists so
// the common library always has at least this object file and to anchor
// future out-of-line helpers.

namespace dpdpu {}  // namespace dpdpu
