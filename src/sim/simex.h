// simex: bounded stateless model checking for the simulator.
//
// The perturbation oracle (scripts/check_bench.py --perturb) samples
// exactly three tie-break schedules; simex explores the space
// systematically. A scenario is a function that builds a world inside a
// fresh Simulator, runs it, and returns its invariant verdict plus the
// deterministic metric lines it produced. The explorer drives that
// scenario through alternative schedules by installing a ScheduleChooser
// that replays a *plan* — a sequence of choice indices, one per decision
// point — where index 0 always means "the default pick", so the empty
// plan reproduces the unexplored reference schedule exactly.
//
// Two kinds of decision points exist:
//  * tie points — several events share the minimum timestamp and the
//    chooser picks which runs first (generalizing TieBreak);
//  * component choice points — a component exposes its own
//    nondeterminism (node fail/recover timing, frame-drop placement)
//    through Simulator::Choose("domain", id, n), with alternative 0 the
//    no-fault branch.
//
// Exploration is DPOR-guided rather than exhaustive: tie points are
// only branched when simrace observed a *race* between two of the tied
// events — causally-unordered conflicting accesses to the same state.
// Commuting ties (the overwhelming majority) are provably
// order-insensitive and explored once; each race report (first ran
// before second under this schedule) spawns exactly one branch that
// reverses the pair at the decision where `first` was picked with
// `second` co-pending. Component choice points are branched
// exhaustively (they are few and bounded by construction). A visited
// set over plans deduplicates; depth and schedule budgets bound the
// walk.
//
// A failing schedule is shrunk by delta debugging — repeatedly zeroing
// non-default picks and truncating the plan while the failure
// reproduces — and printed as a replay token (`simex:1:<pos>=<pick>,…`)
// plus a human-readable trace with simrace provenance for each race.

#ifndef DPDPU_SIM_SIMEX_H_
#define DPDPU_SIM_SIMEX_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace dpdpu::sim {

/// A schedule plan: decision index -> choice picked. Decisions beyond
/// the plan's end (and picks out of range for their decision) take the
/// default (0). The empty plan is the reference schedule.
using Plan = std::vector<uint32_t>;

/// One recorded decision point, in execution order.
struct Decision {
  bool tie = false;          // tie point vs component choice point
  SimTime time = 0;          // tie: the shared timestamp
  std::string domain;        // component: choice family
  uint64_t id = 0;           // component: instance within the family
  uint32_t n = 0;            // alternatives offered
  uint32_t chosen = 0;       // effective pick (after clamping)
  std::vector<uint64_t> candidates;  // tie: event seqs in default order
};

/// What one scenario run reports back to the explorer.
struct ScenarioResult {
  /// Scenario-level invariants (no stale reads, no lost acks, ...).
  bool ok = true;
  /// Why not ok (one line).
  std::string failure;
  /// Deterministic metric lines (newline-joined); compared bit-exactly
  /// against the reference schedule for runs with the same fault picks.
  std::string metrics;
};

/// A scenario builds a world inside the given fresh Simulator, runs it
/// (sim.Run() / RunFor), and reports. It must be a pure function of the
/// simulator's schedule: same choices in, same result out.
using Scenario = std::function<ScenarioResult(Simulator&)>;

/// Everything observed during one schedule.
struct RunRecord {
  ScenarioResult result;
  std::vector<Decision> decisions;
  Plan effective;           // decisions[i].chosen, trailing zeros trimmed
  uint64_t race_count = 0;
  std::vector<RaceReport> races;       // structured, for DPOR branching
  std::vector<std::string> race_text;  // formatted, for trace printing
};

/// A schedule that violated an invariant.
struct ExploreFailure {
  Plan plan;           // effective plan (minimal after Minimize())
  std::string token;   // replay token for `plan`
  std::string kind;    // "invariant" | "race" | "metric-divergence"
  std::string detail;  // one-line diagnosis
};

struct ExploreOptions {
  /// Stop after this many schedules (including the reference and any
  /// minimization re-runs).
  uint64_t max_schedules = 256;
  /// Never branch at decision indices beyond this depth.
  uint32_t max_branch_depth = 4096;
  /// Stop collecting after this many distinct failures.
  uint32_t max_failures = 4;
  /// Attach a (quiet, non-fatal) race checker to every run; a observed
  /// race is both a DPOR branch source and — when `race_is_failure` —
  /// an invariant violation in its own right.
  bool race_check = true;
  bool race_is_failure = true;
  uint32_t max_race_reports = 64;
  /// Legacy simrace reporting (one race per (object, key) per run)
  /// instead of the default multi-report deduped on (object,
  /// event-pair). Multi-report hands DPOR the full persistent set of a
  /// hot object in one run; the legacy mode exists only so
  /// tests/simex_oracle.cc can measure the visibility gap.
  bool single_report_per_key = false;
  /// Compare metric lines against the reference schedule (only for runs
  /// whose component picks match the reference's, since different fault
  /// injections legitimately change metrics).
  bool check_metrics = true;
};

struct ExploreStats {
  uint64_t schedules_run = 0;
  uint64_t tie_points = 0;       // tie decisions in the reference run
  uint64_t choice_points = 0;    // component decisions in the reference
  uint64_t tie_branches = 0;     // DPOR race reversals enqueued
  uint64_t fault_branches = 0;   // component alternatives enqueued
  uint64_t deduped = 0;          // branches already visited
  /// log10 of the naive schedule count: the product of every tie
  /// point's fan-out over the reference run times every component
  /// point's fan-out (what exhaustive enumeration would cost).
  double naive_log10 = 0.0;
  /// naive / schedules_run, capped at 1e15 to stay printable.
  double pruning_factor = 0.0;
};

/// Serializes a plan as `simex:1` (reference) or `simex:1:pos=pick,...`
/// listing only non-default picks.
std::string PlanToToken(const Plan& plan);
/// Parses a token; returns false (leaving `plan` empty) on malformed
/// input or an unsupported version.
bool TokenToPlan(const std::string& token, Plan* plan);

/// Bounded stateless model checker. Construct with a scenario, call
/// Explore(), inspect failures()/stats(). Deterministic end to end: the
/// same scenario and options always explore the same schedules in the
/// same order.
class Explorer {
 public:
  explicit Explorer(Scenario scenario, ExploreOptions options = {});

  /// Runs exactly one schedule under `plan`. Public for replay and
  /// tests; does not touch the exploration frontier but counts against
  /// the schedule budget.
  RunRecord Run(const Plan& plan);

  /// Explores from the reference schedule until the budget is exhausted
  /// or the frontier empties. Returns true when no failure was found.
  bool Explore();

  /// Shrinks `failure.plan` by delta debugging: zero non-default picks
  /// and truncate while the same failure kind reproduces. Updates plan,
  /// token, and detail in place.
  void Minimize(ExploreFailure* failure);

  /// Re-runs `failure.plan` and renders a replayable trace: the token,
  /// every non-default decision, the invariant verdict, and full
  /// simrace provenance for each race.
  std::string FormatTrace(const ExploreFailure& failure);

  const std::vector<ExploreFailure>& failures() const { return failures_; }
  const ExploreStats& stats() const { return stats_; }
  const ExploreOptions& options() const { return options_; }

 private:
  /// Evaluates invariants for a finished run; appends to failures_ and
  /// returns true when the run failed.
  bool Judge(const RunRecord& rec, const Plan& plan);
  /// Enqueues the DPOR race reversals and component-choice branches
  /// reachable from `rec`.
  void Branch(const RunRecord& rec);
  void EnqueuePlan(Plan plan, bool tie_branch);
  /// Classifies a run against the reference; empty string = no failure.
  /// (kind, detail) out-params.
  bool Classify(const RunRecord& rec, std::string* kind, std::string* detail);

  Scenario scenario_;
  ExploreOptions options_;
  ExploreStats stats_;
  std::vector<Plan> frontier_;  // FIFO; index frontier_next_ is the head
  size_t frontier_next_ = 0;
  std::set<Plan> visited_;
  std::vector<ExploreFailure> failures_;
  bool have_reference_ = false;
  std::string reference_metrics_;
  std::string reference_fault_sig_;  // component picks of the reference
};

}  // namespace dpdpu::sim

#endif  // DPDPU_SIM_SIMEX_H_
