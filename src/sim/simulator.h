// The DPDPU discrete-event simulator. All hardware timing in this
// repository — CPU cycles, ASIC jobs, NIC serialization, PCIe DMA, SSD
// accesses — is expressed as events on this single virtual clock.
//
// Determinism contract: events are totally ordered by (time, tie-break
// key, insertion sequence), so two runs with the same seed and the same
// tie-break policy produce identical traces. The default policy (FIFO
// among equal timestamps) reduces to the historical (time, sequence)
// order; LIFO and seeded-shuffle policies perturb only the order of
// same-timestamp ties, which a correct model must be insensitive to —
// simrace (simrace.h) detects the cases that are not.

#ifndef DPDPU_SIM_SIMULATOR_H_
#define DPDPU_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/function.h"
#include "common/logging.h"
#include "sim/simrace.h"

namespace dpdpu::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = uint64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000ull * 1000 * 1000;

/// Converts seconds (double) to SimTime, rounding to nearest nanosecond.
inline SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * double(kSecond) + 0.5);
}
inline double ToSeconds(SimTime t) { return double(t) / double(kSecond); }

/// How the scheduler orders events that share a timestamp. Every policy
/// is deterministic; they differ only in which legal total order of the
/// ties they pick, which is exactly the freedom simrace's perturbation
/// oracle exercises.
enum class TieBreak : uint8_t {
  kFifo = 0,     // insertion order (the historical contract)
  kLifo = 1,     // reverse insertion order
  kShuffle = 2,  // seed-keyed pseudo-random order
};

/// SplitMix64 finalizer: cheap, high-quality mix for shuffle tie keys.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// A systematic-exploration hook generalizing TieBreak: when installed
/// (Simulator::SetChooser), every scheduling decision with more than one
/// legal outcome is routed through it instead of the tie-key order, and
/// components expose their own nondeterminism (fault timing, drop
/// placement) as explicit choice points via Simulator::Choose. simex
/// (simex.h) drives this to enumerate schedules; a recorded sequence of
/// picks is a replay token that reproduces a run exactly.
class ScheduleChooser {
 public:
  virtual ~ScheduleChooser() = default;

  /// Picks which of `n` same-timestamp events runs next. `candidates`
  /// holds the events' sequence ids in the order the active tie-break
  /// policy would run them (index 0 = the policy's default pick), so
  /// returning 0 everywhere reproduces the unexplored schedule.
  virtual uint32_t ChooseTie(SimTime time, const uint64_t* candidates,
                             uint32_t n) = 0;

  /// Picks one of `n` alternatives at a component choice point. `domain`
  /// names the choice family (e.g. "fault.fail_slot"); `id`
  /// disambiguates instances within the family. Index 0 must be the
  /// component's default (no-fault) alternative.
  virtual uint32_t Choose(const char* domain, uint64_t id, uint32_t n) = 0;
};

/// Single-threaded event-driven simulator.
class Simulator {
 public:
  // Pre-size the event heap: fleet-scale runs push thousands of events
  // immediately, and growing a vector of 96-byte Events mid-run both
  // reallocates and move-relocates every pending closure.
  Simulator() {
    heap_.reserve(1024);
    const EnvConfig& env = EnvConfig::Get();
    tie_policy_ = static_cast<TieBreak>(env.tie_policy);
    shuffle_seed_ = env.shuffle_seed;
    if (env.race_check) EnableRaceCheck(env.race_options);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator() { FinishRaceCheck(); }

  SimTime now() const { return now_; }
  uint64_t events_executed() const { return executed_; }

  /// Process-wide event count across all Simulator instances (bench
  /// binaries create one per scenario); feeds the events/sec wall-clock
  /// metric every bench emits. Simulators are single-threaded by design,
  /// so a plain counter suffices.
  static uint64_t TotalEventsExecuted() { return total_executed_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

  /// Schedules `fn` to run `delay` ns from now.
  void Schedule(SimTime delay, UniqueFunction fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `t`; t must be >= now().
  void ScheduleAt(SimTime t, UniqueFunction fn) {
    DPDPU_CHECK(t >= now_);
    uint64_t seq = next_seq_++;
    if (race_) race_->OnSchedule(seq, t, current_event_);
    heap_.push_back(Event{t, TieKey(seq), seq, current_event_, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Event::Later);
  }

  /// Executes the next event, if any. Returns false when idle.
  bool Step() {
    if (heap_.empty()) return false;
    Event ev = chooser_ ? PopChosen() : PopNext();
    DPDPU_CHECK(ev.time >= now_);
    now_ = ev.time;
    ++executed_;
    ++total_executed_;
    current_event_ = ev.seq;
    if (race_) race_->BeginEvent(ev.seq, ev.time, ev.parent);
    ev.fn();
    if (race_) race_->EndEvent();
    current_event_ = kNoEvent;
    return true;
  }

  /// Runs until the event queue is empty. Returns events executed.
  uint64_t Run() {
    uint64_t n = 0;
    while (Step()) ++n;
    return n;
  }

  /// Runs events with time <= t, then advances the clock to exactly t.
  uint64_t RunUntil(SimTime t) {
    uint64_t n = 0;
    while (!heap_.empty() && heap_.front().time <= t) {
      Step();
      ++n;
    }
    if (t > now_) now_ = t;
    return n;
  }

  /// Runs for `d` ns of virtual time from now.
  uint64_t RunFor(SimTime d) { return RunUntil(now_ + d); }

  /// Selects the tie-break policy for subsequently scheduled events (the
  /// tie key is computed at scheduling time). `seed` keys kShuffle.
  void SetTieBreak(TieBreak policy, uint64_t seed = 1) {
    tie_policy_ = policy;
    shuffle_seed_ = seed;
  }
  TieBreak tie_break() const { return tie_policy_; }

  /// Installs (or clears, with nullptr) the exploration hook. While set,
  /// every Step() with two or more events tied at the minimum timestamp
  /// asks the chooser which one runs, and component choice points route
  /// through Choose(). Exploration runs only — the chosen-step path
  /// rebuilds the heap per step, which the hot path must never pay.
  void SetChooser(ScheduleChooser* chooser) { chooser_ = chooser; }
  ScheduleChooser* chooser() const { return chooser_; }

  /// Component choice point: returns the chooser's pick in [0, n), or 0
  /// (the default alternative) when no chooser is installed. Components
  /// must make alternative 0 the do-nothing/no-fault branch so normal
  /// runs are unperturbed.
  uint32_t Choose(const char* domain, uint64_t id, uint32_t n) {
    DPDPU_CHECK(n > 0);
    if (chooser_ == nullptr || n == 1) return 0;
    uint32_t pick = chooser_->Choose(domain, id, n);
    DPDPU_CHECK(pick < n);
    return pick;
  }

  /// Attaches a happens-before race checker (replacing any current one).
  /// Also enabled automatically in Debug builds and via
  /// DPDPU_SIM_RACECHECK=1; an explicit call overrides the environment.
  RaceChecker& EnableRaceCheck(RaceChecker::Options options = {}) {
    race_ = std::make_unique<RaceChecker>(options);
    return *race_;
  }
  void DisableRaceCheck() { race_.reset(); }
  RaceChecker* race_checker() { return race_.get(); }

  /// Flushes the checker's final timestamp bucket and prints reports
  /// (aborting on fatal races). Runs from the destructor; call earlier
  /// to read race_checker()->race_count() before the simulator dies.
  void FinishRaceCheck() {
    if (race_) race_->Finalize();
  }

 private:
  struct Event {
    SimTime time;
    uint64_t tie;
    uint64_t seq;
    uint64_t parent;  // event executing when this one was scheduled
    UniqueFunction fn;

    // Min-heap on (time, tie, seq) via std::push_heap's max-heap
    // comparator; seq last keeps the order total for every policy.
    static bool Later(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  /// Fast path: pop the heap minimum under the tie-break policy.
  Event PopNext() {
    std::pop_heap(heap_.begin(), heap_.end(), Event::Later);
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  /// Exploration path: collect every event tied at the minimum
  /// timestamp (in policy order, so pick 0 reproduces PopNext), ask the
  /// chooser, and remove the chosen event from the middle of the heap.
  Event PopChosen() {
    SimTime t = heap_.front().time;
    std::vector<size_t> ties;
    for (size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i].time == t) ties.push_back(i);
    }
    size_t idx = ties[0];
    if (ties.size() > 1) {
      std::sort(ties.begin(), ties.end(), [this](size_t a, size_t b) {
        return Event::Later(heap_[b], heap_[a]);
      });
      std::vector<uint64_t> seqs(ties.size());
      for (size_t i = 0; i < ties.size(); ++i) seqs[i] = heap_[ties[i]].seq;
      uint32_t pick = chooser_->ChooseTie(t, seqs.data(),
                                          static_cast<uint32_t>(seqs.size()));
      DPDPU_CHECK(pick < ties.size());
      idx = ties[pick];
    }
    Event ev = std::move(heap_[idx]);
    if (idx != heap_.size() - 1) heap_[idx] = std::move(heap_.back());
    heap_.pop_back();
    std::make_heap(heap_.begin(), heap_.end(), Event::Later);
    return ev;
  }

  uint64_t TieKey(uint64_t seq) const {
    switch (tie_policy_) {
      case TieBreak::kFifo:
        return seq;
      case TieBreak::kLifo:
        return ~seq;
      case TieBreak::kShuffle:
        return SplitMix64(seq ^ shuffle_seed_);
    }
    return seq;
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t current_event_ = kNoEvent;
  TieBreak tie_policy_ = TieBreak::kFifo;
  uint64_t shuffle_seed_ = 1;
  ScheduleChooser* chooser_ = nullptr;
  static inline uint64_t total_executed_ = 0;
  std::vector<Event> heap_;
  std::unique_ptr<RaceChecker> race_;
};

/// A repeating event: fires `fn` every `interval` ns until Cancel() or
/// destruction. Multi-machine drivers (fleet utilization sampling,
/// workload pacing) need cancelable repetition; scheduled closures cannot
/// be removed from the heap, so cancellation is a shared liveness flag
/// checked at fire time.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  ~PeriodicTask() { Cancel(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Starts firing `fn` every `interval` ns, first fire at now+interval.
  /// Restarting cancels the previous schedule. The callback is wrapped
  /// exactly once: each tick schedules a shared_ptr-sized closure (inline
  /// in UniqueFunction's small buffer), so a long-running sampler costs
  /// no per-tick callback re-wrapping or allocation.
  template <typename F>
  void Start(Simulator* sim, SimTime interval, F&& fn) {
    DPDPU_CHECK(interval > 0);
    Cancel();
    heart_ = std::make_shared<Heart>();
    heart_->sim = sim;
    heart_->interval = interval;
    heart_->fn = UniqueFunction(std::forward<F>(fn));
    ScheduleNext(heart_);
  }

  void Cancel() {
    if (heart_) heart_->alive = false;
    heart_.reset();
  }

  bool active() const { return heart_ != nullptr && heart_->alive; }

 private:
  // Shared liveness + the once-wrapped callback; scheduled closures hold
  // the heart alive until their fire time even after Cancel().
  struct Heart {
    Simulator* sim = nullptr;
    SimTime interval = 0;
    UniqueFunction fn;
    bool alive = true;
  };

  static void ScheduleNext(const std::shared_ptr<Heart>& heart) {
    heart->sim->Schedule(heart->interval, [heart] {
      if (!heart->alive) return;
      heart->fn();
      if (!heart->alive) return;  // fn may have canceled us
      ScheduleNext(heart);
    });
  }

  std::shared_ptr<Heart> heart_;
};

}  // namespace dpdpu::sim

#endif  // DPDPU_SIM_SIMULATOR_H_
