#include "sim/simex.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dpdpu::sim {

namespace {

/// The chooser the explorer installs: replays a plan, clamping
/// out-of-range picks to the default, and records every decision so the
/// explorer can branch from what actually happened.
class PlannedChooser : public ScheduleChooser {
 public:
  explicit PlannedChooser(const Plan& plan) : plan_(plan) {}

  uint32_t ChooseTie(SimTime time, const uint64_t* candidates,
                     uint32_t n) override {
    uint32_t pick = NextPick(n);
    Decision d;
    d.tie = true;
    d.time = time;
    d.n = n;
    d.chosen = pick;
    d.candidates.assign(candidates, candidates + n);
    decisions_.push_back(std::move(d));
    return pick;
  }

  uint32_t Choose(const char* domain, uint64_t id, uint32_t n) override {
    uint32_t pick = NextPick(n);
    Decision d;
    d.domain = domain;
    d.id = id;
    d.n = n;
    d.chosen = pick;
    decisions_.push_back(std::move(d));
    return pick;
  }

  std::vector<Decision> TakeDecisions() { return std::move(decisions_); }

 private:
  uint32_t NextPick(uint32_t n) {
    size_t i = cursor_++;
    uint32_t pick = i < plan_.size() ? plan_[i] : 0;
    return pick < n ? pick : 0;
  }

  const Plan& plan_;
  size_t cursor_ = 0;
  std::vector<Decision> decisions_;
};

Plan TrimmedPlan(const std::vector<Decision>& decisions) {
  Plan p(decisions.size());
  for (size_t i = 0; i < decisions.size(); ++i) p[i] = decisions[i].chosen;
  while (!p.empty() && p.back() == 0) p.pop_back();
  return p;
}

/// Component picks only, as a comparable signature: metric equality is
/// only meaningful between runs that injected the same faults.
std::string FaultSignature(const std::vector<Decision>& decisions) {
  std::string sig;
  for (const Decision& d : decisions) {
    if (d.tie) continue;
    sig += d.domain + "#" + std::to_string(d.id) + "=" +
           std::to_string(d.chosen) + ";";
  }
  return sig;
}

/// First line where the two metric blobs differ, for diagnosis.
std::string FirstDivergence(const std::string& a, const std::string& b) {
  size_t pa = 0, pb = 0;
  while (pa < a.size() || pb < b.size()) {
    size_t ea = a.find('\n', pa);
    size_t eb = b.find('\n', pb);
    std::string la = a.substr(pa, (ea == std::string::npos ? a.size() : ea) - pa);
    std::string lb = b.substr(pb, (eb == std::string::npos ? b.size() : eb) - pb);
    if (la != lb) {
      return "reference: " + (la.empty() ? "<missing>" : la) +
             " | explored: " + (lb.empty() ? "<missing>" : lb);
    }
    if (ea == std::string::npos || eb == std::string::npos) break;
    pa = ea + 1;
    pb = eb + 1;
  }
  return "<identical>";
}

}  // namespace

std::string PlanToToken(const Plan& plan) {
  std::string token = "simex:1";
  bool any = false;
  for (size_t i = 0; i < plan.size(); ++i) {
    if (plan[i] == 0) continue;
    token += any ? "," : ":";
    token += std::to_string(i) + "=" + std::to_string(plan[i]);
    any = true;
  }
  return token;
}

bool TokenToPlan(const std::string& token, Plan* plan) {
  plan->clear();
  const std::string prefix = "simex:1";
  if (token.compare(0, prefix.size(), prefix) != 0) return false;
  if (token.size() == prefix.size()) return true;  // reference schedule
  if (token[prefix.size()] != ':') return false;
  size_t pos = prefix.size() + 1;
  while (pos < token.size()) {
    size_t eq = token.find('=', pos);
    if (eq == std::string::npos || eq == pos) return false;
    size_t comma = token.find(',', eq + 1);
    size_t end = comma == std::string::npos ? token.size() : comma;
    if (end == eq + 1) return false;
    uint64_t index = 0, pick = 0;
    for (size_t i = pos; i < eq; ++i) {
      if (token[i] < '0' || token[i] > '9') return false;
      index = index * 10 + uint64_t(token[i] - '0');
      if (index > (1u << 24)) return false;
    }
    for (size_t i = eq + 1; i < end; ++i) {
      if (token[i] < '0' || token[i] > '9') return false;
      pick = pick * 10 + uint64_t(token[i] - '0');
      if (pick > (1u << 24)) return false;
    }
    if (index + 1 > plan->size()) plan->resize(index + 1, 0);
    (*plan)[index] = uint32_t(pick);
    pos = end + (comma == std::string::npos ? 0 : 1);
    if (comma == std::string::npos) break;
  }
  while (!plan->empty() && plan->back() == 0) plan->pop_back();
  return true;
}

Explorer::Explorer(Scenario scenario, ExploreOptions options)
    : scenario_(std::move(scenario)), options_(options) {}

RunRecord Explorer::Run(const Plan& plan) {
  Simulator sim;
  sim.SetTieBreak(TieBreak::kFifo);  // plans are relative to fifo order
  RaceChecker* rc = nullptr;
  if (options_.race_check) {
    RaceChecker::Options ro;
    ro.fatal = false;
    ro.quiet = true;
    ro.max_reports = options_.max_race_reports;
    ro.single_report_per_key = options_.single_report_per_key;
    rc = &sim.EnableRaceCheck(ro);
  } else {
    sim.DisableRaceCheck();  // env/Debug auto-enablement would abort
  }
  PlannedChooser chooser(plan);
  sim.SetChooser(&chooser);
  RunRecord rec;
  rec.result = scenario_(sim);
  sim.SetChooser(nullptr);
  sim.FinishRaceCheck();
  rec.decisions = chooser.TakeDecisions();
  rec.effective = TrimmedPlan(rec.decisions);
  if (rc != nullptr) {
    rec.race_count = rc->race_count();
    rec.races = rc->races();
    rec.race_text.reserve(rec.races.size());
    for (const RaceReport& r : rec.races) {
      rec.race_text.push_back(rc->FormatReport(r));
    }
  }
  ++stats_.schedules_run;
  return rec;
}

bool Explorer::Classify(const RunRecord& rec, std::string* kind,
                        std::string* detail) {
  if (!rec.result.ok) {
    *kind = "invariant";
    *detail = rec.result.failure.empty() ? "scenario invariant violated"
                                         : rec.result.failure;
    return true;
  }
  if (options_.race_is_failure && rec.race_count > 0) {
    *kind = "race";
    *detail = std::to_string(rec.race_count) + " race(s); first on " +
              (rec.races.empty() ? std::string("<uncaptured>")
                                 : rec.races[0].object + " at t=" +
                                       std::to_string(rec.races[0].time) +
                                       "ns");
    return true;
  }
  if (options_.check_metrics && have_reference_ &&
      FaultSignature(rec.decisions) == reference_fault_sig_ &&
      rec.result.metrics != reference_metrics_) {
    *kind = "metric-divergence";
    *detail = FirstDivergence(reference_metrics_, rec.result.metrics);
    return true;
  }
  return false;
}

bool Explorer::Judge(const RunRecord& rec, const Plan& plan) {
  std::string kind, detail;
  if (!Classify(rec, &kind, &detail)) return false;
  // One failure per kind is enough: the explorer keeps hunting for
  // *different* bugs, not more schedules that trip the same wire.
  for (const ExploreFailure& f : failures_) {
    if (f.kind == kind) return true;
  }
  if (failures_.size() < options_.max_failures) {
    ExploreFailure f;
    f.plan = plan;
    f.token = PlanToToken(plan);
    f.kind = kind;
    f.detail = detail;
    failures_.push_back(std::move(f));
  }
  return true;
}

void Explorer::EnqueuePlan(Plan plan, bool tie_branch) {
  while (!plan.empty() && plan.back() == 0) plan.pop_back();
  if (plan.empty()) return;  // the reference; always explored first
  if (plan.size() > options_.max_branch_depth) return;
  if (!visited_.insert(plan).second) {
    ++stats_.deduped;
    return;
  }
  if (tie_branch) {
    ++stats_.tie_branches;
  } else {
    ++stats_.fault_branches;
  }
  frontier_.push_back(std::move(plan));
}

void Explorer::Branch(const RunRecord& rec) {
  // Component choice points: branch every alternative. These encode
  // injected faults — few by construction, and alternative coverage is
  // the point of exploring them.
  for (size_t i = 0; i < rec.decisions.size(); ++i) {
    const Decision& d = rec.decisions[i];
    if (d.tie) continue;
    for (uint32_t k = 0; k < d.n; ++k) {
      if (k == d.chosen) continue;
      Plan branch(rec.effective.begin(),
                  rec.effective.begin() +
                      std::min(i, rec.effective.size()));
      branch.resize(i + 1, 0);
      branch[i] = k;
      EnqueuePlan(std::move(branch), /*tie_branch=*/false);
    }
  }
  // Tie points: DPOR race reversal only. A race report says `first` ran
  // before `second` at time T under this schedule and the pair
  // conflicts; the one branch worth taking runs `second` earlier. Find
  // the decision that picked `first` while `second` was co-pending and
  // flip it. Ties that produced no race commute — reordering them
  // cannot change any outcome — so they are pruned.
  for (const RaceReport& race : rec.races) {
    uint64_t e1 = race.first.event;
    uint64_t e2 = race.second.event;
    for (size_t i = 0; i < rec.decisions.size(); ++i) {
      const Decision& d = rec.decisions[i];
      if (!d.tie || d.time != race.time) continue;
      if (d.candidates[d.chosen] != e1) continue;
      auto it = std::find(d.candidates.begin(), d.candidates.end(), e2);
      if (it == d.candidates.end()) continue;
      Plan branch(rec.effective.begin(),
                  rec.effective.begin() +
                      std::min(i, rec.effective.size()));
      branch.resize(i + 1, 0);
      branch[i] = uint32_t(it - d.candidates.begin());
      EnqueuePlan(std::move(branch), /*tie_branch=*/true);
      break;
    }
  }
}

bool Explorer::Explore() {
  frontier_.clear();
  frontier_next_ = 0;
  visited_.clear();
  failures_.clear();
  stats_ = ExploreStats{};

  // Reference run: establishes the metric baseline, the fault
  // signature, and the naive enumeration size the pruning factor is
  // measured against.
  RunRecord ref = Run(Plan{});
  have_reference_ = true;
  reference_metrics_ = ref.result.metrics;
  reference_fault_sig_ = FaultSignature(ref.decisions);
  for (const Decision& d : ref.decisions) {
    if (d.tie) {
      ++stats_.tie_points;
    } else {
      ++stats_.choice_points;
    }
    stats_.naive_log10 += std::log10(double(d.n));
  }
  Judge(ref, Plan{});
  Branch(ref);

  while (frontier_next_ < frontier_.size() &&
         stats_.schedules_run < options_.max_schedules &&
         failures_.size() < options_.max_failures) {
    Plan plan = frontier_[frontier_next_++];
    RunRecord rec = Run(plan);
    Judge(rec, rec.effective);
    Branch(rec);
  }

  double explored_log10 =
      std::log10(double(std::max<uint64_t>(1, stats_.schedules_run)));
  stats_.pruning_factor =
      std::pow(10.0, std::min(15.0, stats_.naive_log10 - explored_log10));
  return failures_.empty();
}

void Explorer::Minimize(ExploreFailure* failure) {
  Plan best = failure->plan;
  auto still_fails = [&](const Plan& candidate) {
    RunRecord rec = Run(candidate);
    std::string kind, detail;
    if (!Classify(rec, &kind, &detail)) return false;
    if (kind != failure->kind) return false;
    failure->detail = detail;
    return true;
  };
  // ddmin over the non-default picks: try zeroing each (largest index
  // first, so later decisions — usually consequences, not causes — go
  // first), then re-trim; repeat until a fixed point.
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = best.size(); i-- > 0;) {
      if (best[i] == 0) continue;
      Plan candidate = best;
      candidate[i] = 0;
      while (!candidate.empty() && candidate.back() == 0) candidate.pop_back();
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
      }
    }
  }
  // When nothing could be zeroed, `detail` was never refreshed for the
  // original plan; one confirming run fixes that.
  if (best == failure->plan) still_fails(best);
  failure->plan = best;
  failure->token = PlanToToken(best);
}

std::string Explorer::FormatTrace(const ExploreFailure& failure) {
  RunRecord rec = Run(failure.plan);
  std::string out = "simex: failing schedule " + failure.token + "\n";
  out += "  kind: " + failure.kind + " — " + failure.detail + "\n";
  for (size_t i = 0; i < rec.decisions.size(); ++i) {
    const Decision& d = rec.decisions[i];
    if (d.chosen == 0) continue;
    out += "  choice #" + std::to_string(i) + ": ";
    if (d.tie) {
      out += "tie@t=" + std::to_string(d.time) + "ns ran event #" +
             std::to_string(d.candidates[d.chosen]) + " ahead of [";
      for (uint32_t k = 0; k < d.chosen; ++k) {
        if (k > 0) out += ", ";
        out += "#";
        out += std::to_string(d.candidates[k]);
      }
      out += "]";
    } else {
      out += d.domain + "#" + std::to_string(d.id) + " -> alternative " +
             std::to_string(d.chosen) + "/" + std::to_string(d.n - 1);
    }
    out += "\n";
  }
  if (!rec.result.ok) {
    out += "  invariant: " + rec.result.failure + "\n";
  }
  for (const std::string& race : rec.race_text) {
    // FormatReport is multi-line; indent every line under the trace.
    size_t pos = 0;
    while (pos < race.size()) {
      size_t end = race.find('\n', pos);
      if (end == std::string::npos) end = race.size();
      out.append("  ");
      out.append(race, pos, end - pos);
      out.push_back('\n');
      pos = end + 1;
    }
  }
  return out;
}

}  // namespace dpdpu::sim
