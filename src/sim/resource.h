// Resource: a capacity-limited server pool with a FIFO queue, the building
// block for every modeled hardware unit (CPU cores, ASIC slots, NIC links,
// SSD channels). Tracks busy time so experiments can report "cores
// consumed" — the paper's Figures 2 and 3 metric — as busy-server
// equivalents.

#ifndef DPDPU_SIM_RESOURCE_H_
#define DPDPU_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "common/function.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "sim/simulator.h"

namespace dpdpu::sim {

/// FIFO multi-server queue. Submissions specify a service time; when one of
/// the `capacity` servers is free, the job occupies it for that long and
/// then the completion callback fires.
class Resource {
 public:
  Resource(Simulator* sim, std::string name, uint32_t capacity)
      : sim_(sim), name_(std::move(name)), capacity_(capacity) {
    DPDPU_CHECK(capacity_ > 0);
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  const std::string& name() const { return name_; }
  uint32_t capacity() const { return capacity_; }
  uint32_t busy() const { return busy_; }
  size_t queue_length() const { return queue_.size(); }
  uint64_t jobs_completed() const { return jobs_completed_; }

  /// Total server-occupied virtual time, in ns. Divide by elapsed time for
  /// the busy-server-equivalent ("cores consumed").
  SimTime busy_time() const { return busy_time_; }

  /// Busy-server equivalent over the window [0, elapsed].
  double BusyServerEquivalent(SimTime elapsed) const {
    return elapsed == 0 ? 0.0 : double(busy_time_) / double(elapsed);
  }

  /// Mean utilization in [0, 1] over the window [0, elapsed].
  double Utilization(SimTime elapsed) const {
    return elapsed == 0 ? 0.0
                        : BusyServerEquivalent(elapsed) / double(capacity_);
  }

  /// Distribution of queueing delays (ns) experienced by jobs.
  const Histogram& wait_histogram() const { return wait_hist_; }

  /// Submits a job needing `service_time` ns of a server. `on_complete`
  /// runs at completion (may be empty).
  void Submit(SimTime service_time, UniqueFunction on_complete) {
    if (busy_ < capacity_) {
      StartJob(service_time, std::move(on_complete), /*waited=*/0);
    } else {
      // Queued jobs carry the submitting event's identity so the later
      // grant (StartJob from FinishJob) is causally ordered after the
      // submission — the FIFO-grant happens-before edge for simrace.
      HbToken token;
      if (RaceChecker* rc = RaceChecker::Current()) token = rc->Publish();
      queue_.push_back(Pending{service_time, std::move(on_complete),
                               sim_->now(), token});
    }
  }

  /// Convenience overload without a completion callback.
  void Submit(SimTime service_time) {
    Submit(service_time, UniqueFunction([] {}));
  }

 private:
  struct Pending {
    SimTime service_time;
    UniqueFunction on_complete;
    SimTime enqueue_time;
    HbToken submit_token;  // submit happens-before grant
  };

  void StartJob(SimTime service_time, UniqueFunction on_complete,
                SimTime waited) {
    ++busy_;
    busy_time_ += service_time;
    wait_hist_.Add(waited);
    // Resources are long-lived members of the hardware models; every
    // model drains the simulator before destruction.
    // simlint:allow(R6): Resource outlives the drained event heap
    sim_->Schedule(service_time,
                   [this, cb = std::move(on_complete)]() mutable {
                     FinishJob();
                     if (cb) cb();
                   });
  }

  void FinishJob() {
    DPDPU_CHECK(busy_ > 0);
    --busy_;
    ++jobs_completed_;
    if (!queue_.empty() && busy_ < capacity_) {
      Pending p = std::move(queue_.front());
      queue_.pop_front();
      if (RaceChecker* rc = RaceChecker::Current()) rc->Consume(p.submit_token);
      StartJob(p.service_time, std::move(p.on_complete),
               sim_->now() - p.enqueue_time);
    }
  }

  Simulator* sim_;
  std::string name_;
  uint32_t capacity_;
  uint32_t busy_ = 0;
  SimTime busy_time_ = 0;
  uint64_t jobs_completed_ = 0;
  std::deque<Pending> queue_;
  Histogram wait_hist_;
};

}  // namespace dpdpu::sim

#endif  // DPDPU_SIM_RESOURCE_H_
