#include "sim/simrace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"

namespace dpdpu::sim {
namespace {

// Active checker. Written only from simulator event boundaries (the sim
// is single-threaded); atomic + relaxed so real-thread ring tests can
// probe it without a TSan report — they always read nullptr.
std::atomic<RaceChecker*> g_current{nullptr};

// Provenance ring size (power of two). Bounds checker memory at ~6 MB
// per enabled simulator; an ancestor is only lost if more than this many
// events were scheduled while its descendant was still pending, in which
// case the printed chain is truncated (pred edges inside a timestamp
// bucket are exact regardless: the parent id travels with the event).
constexpr size_t kProvenanceWindow = size_t{1} << 18;

const char* KindName(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return "read";
    case AccessKind::kWrite:
      return "write";
    case AccessKind::kCommutativeWrite:
      return "commutative-write";
  }
  return "?";
}

// Commutative writes commute with each other but not with observation or
// plain mutation; reads never conflict with reads.
bool Conflicts(AccessKind a, AccessKind b) {
  if (a == AccessKind::kRead && b == AccessKind::kRead) return false;
  if (a == AccessKind::kCommutativeWrite && b == AccessKind::kCommutativeWrite)
    return false;
  return true;
}

}  // namespace

RaceChecker::RaceChecker() : RaceChecker(Options()) {}

RaceChecker::RaceChecker(Options options) : options_(options) {
  provenance_.resize(kProvenanceWindow);
  accesses_.reserve(256);
}

RaceChecker::~RaceChecker() {
  // The owning Simulator finalizes in its destructor; guard against a
  // checker destroyed mid-event anyway.
  RaceChecker* self = this;
  g_current.compare_exchange_strong(self, nullptr, std::memory_order_relaxed);
}

RaceChecker* RaceChecker::Current() {
  return g_current.load(std::memory_order_relaxed);
}

void RaceChecker::OnSchedule(uint64_t event, uint64_t time, uint64_t parent) {
  provenance_[event & (kProvenanceWindow - 1)] = Provenance{event, parent, time};
}

void RaceChecker::BeginEvent(uint64_t event, uint64_t time, uint64_t parent) {
  if (bucket_valid_ && time != bucket_time_) FlushBucket();
  bucket_time_ = time;
  bucket_valid_ = true;
  current_event_ = event;
  BucketEvent& be = bucket_[event];
  if (parent != kNoEvent) be.preds.push_back(parent);
  g_current.store(this, std::memory_order_relaxed);
}

void RaceChecker::EndEvent() {
  current_event_ = kNoEvent;
  g_current.store(nullptr, std::memory_order_relaxed);
}

void RaceChecker::RecordAccess(const RaceTag& tag, const char* object,
                               uint64_t key, AccessKind kind) {
  if (current_event_ == kNoEvent) return;  // setup code outside events
  if (tag.id == 0) {
    object_names_.emplace_back(object);
    tag.id = static_cast<uint32_t>(object_names_.size());
  }
  accesses_.push_back(Access{tag.id, kind, key, current_event_});
  ++accesses_recorded_;
}

void RaceChecker::AddEdge(uint64_t from, uint64_t to) {
  if (from == kNoEvent || to == kNoEvent || from == to) return;
  auto it = bucket_.find(to);
  if (it == bucket_.end()) return;  // `to` not executing this bucket
  it->second.preds.push_back(from);
}

bool RaceChecker::HappensBefore(uint64_t a, uint64_t b) const {
  // Backward DFS from b over predecessor edges, pruned to events in the
  // current bucket: an ancestor at an earlier timestamp can never lead
  // back to a same-timestamp event (ScheduleAt forbids scheduling into
  // the past), so leaving the bucket ends the search branch.
  std::vector<uint64_t> stack{b};
  std::set<uint64_t> visited;
  while (!stack.empty()) {
    uint64_t e = stack.back();
    stack.pop_back();
    if (e == a) return true;
    if (!visited.insert(e).second) continue;
    auto it = bucket_.find(e);
    if (it == bucket_.end()) continue;
    for (uint64_t pred : it->second.preds) stack.push_back(pred);
  }
  return false;
}

std::vector<std::pair<uint64_t, uint64_t>> RaceChecker::Chain(
    uint64_t event) const {
  std::vector<std::pair<uint64_t, uint64_t>> chain;
  uint64_t e = event;
  for (uint32_t depth = 0; depth < options_.max_provenance_depth; ++depth) {
    const Provenance& p = provenance_[e & (kProvenanceWindow - 1)];
    if (p.event != e) break;  // evicted from the window: truncate
    chain.emplace_back(e, p.time);
    if (p.parent == kNoEvent) break;
    e = p.parent;
  }
  return chain;
}

void RaceChecker::ReportRace(const Access& a, const Access& b) {
  ++race_count_;
  if (races_.size() >= options_.max_reports) return;
  RaceReport report;
  report.object = object_names_[a.object - 1];
  report.object_id = a.object;
  report.key = a.key;
  report.time = bucket_time_;
  report.first = RaceAccess{a.event, a.kind, Chain(a.event)};
  report.second = RaceAccess{b.event, b.kind, Chain(b.event)};
  races_.push_back(std::move(report));
}

void RaceChecker::FlushBucket() {
  if (!accesses_.empty()) {
    // Group by (object, key); stable sort keeps execution order inside
    // each group so "first" in a report is the access that actually ran
    // first under the current tie-break.
    std::stable_sort(accesses_.begin(), accesses_.end(),
                     [](const Access& a, const Access& b) {
                       if (a.object != b.object) return a.object < b.object;
                       return a.key < b.key;
                     });
    size_t lo = 0;
    while (lo < accesses_.size()) {
      size_t hi = lo + 1;
      while (hi < accesses_.size() &&
             accesses_[hi].object == accesses_[lo].object &&
             accesses_[hi].key == accesses_[lo].key) {
        ++hi;
      }
      auto group_key = std::make_pair(accesses_[lo].object, accesses_[lo].key);
      if (options_.single_report_per_key) {
        // Legacy policy: first conflicting unordered pair wins, one
        // report per (object, key) for the whole run. Kept only so the
        // oracle can demonstrate the DPOR-visibility gap it causes.
        if (reported_keys_.find(group_key) == reported_keys_.end()) {
          bool raced = false;
          for (size_t j = lo; j + 1 < hi && !raced; ++j) {
            for (size_t k = j + 1; k < hi; ++k) {
              const Access& a = accesses_[j];
              const Access& b = accesses_[k];
              if (a.event == b.event) continue;
              if (!Conflicts(a.kind, b.kind)) continue;
              if (HappensBefore(a.event, b.event)) continue;
              ReportRace(a, b);
              reported_keys_.insert(group_key);
              raced = true;
              break;
            }
          }
        }
      } else {
        // Multi-report: every racing event pair, deduped per run on
        // (object, event-pair). An exploration branch exists per pair,
        // so aliasing pairs on one hot object (VersionMap, the
        // consistency authority) are all reversible from a single run.
        for (size_t j = lo; j + 1 < hi; ++j) {
          for (size_t k = j + 1; k < hi; ++k) {
            const Access& a = accesses_[j];
            const Access& b = accesses_[k];
            if (a.event == b.event) continue;
            if (!Conflicts(a.kind, b.kind)) continue;
            if (HappensBefore(a.event, b.event)) continue;
            if (!reported_pairs_
                     .insert(std::make_tuple(a.object, a.event, b.event))
                     .second) {
              continue;
            }
            ReportRace(a, b);
          }
        }
      }
      lo = hi;
    }
    accesses_.clear();
  }
  bucket_.clear();
  bucket_valid_ = false;
}

std::string RaceChecker::FormatReport(const RaceReport& report) const {
  auto side = [&](const char* label, const RaceAccess& acc) {
    std::string out = "  ";
    out += label;
    out += ": event #" + std::to_string(acc.event) + " (" +
           KindName(acc.kind) + ") provenance:";
    if (acc.provenance.empty()) out += " <outside window>";
    for (size_t i = 0; i < acc.provenance.size(); ++i) {
      if (i > 0) out += " <-";
      out += " #" + std::to_string(acc.provenance[i].first) + "@" +
             std::to_string(acc.provenance[i].second) + "ns";
    }
    if (!acc.provenance.empty() &&
        acc.provenance.size() >= options_.max_provenance_depth) {
      out += " <- ...";
    }
    out += "\n";
    return out;
  };
  std::string out = "simrace: RACE on " + report.object + "#" +
                    std::to_string(report.object_id) + " key 0x";
  char hex[32];
  std::snprintf(hex, sizeof hex, "%" PRIx64, report.key);
  out += hex;
  out += " at t=" + std::to_string(report.time) + "ns\n";
  out += side("first ", report.first);
  out += side("second", report.second);
  return out;
}

void RaceChecker::PrintNewReports() {
  for (; printed_ < races_.size(); ++printed_) {
    std::string text = FormatReport(races_[printed_]);
    std::fputs(text.c_str(), stderr);
  }
}

std::vector<std::string> RaceChecker::observed_objects() const {
  std::vector<std::string> names = object_names_;  // one entry per tag
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void RaceChecker::Finalize() {
  if (bucket_valid_) FlushBucket();
  if (!finalized_) {
    // Append so one xcheck run can accumulate coverage across every
    // simulator (and every process) a test binary creates.
    const char* cov = std::getenv("DPDPU_SIM_RACE_COVERAGE");  // NOLINT(concurrency-mt-unsafe)
    if (cov != nullptr && cov[0] != '\0') {
      if (std::FILE* f = std::fopen(cov, "ae")) {
        for (const std::string& name : observed_objects()) {
          std::fprintf(f, "%s\n", name.c_str());
        }
        std::fclose(f);
      }
    }
  }
  if (!options_.quiet) {
    PrintNewReports();
    if (race_count_ > races_.size()) {
      std::fprintf(
          stderr, "simrace: %" PRIu64 " further race(s) beyond the first %zu\n",
          race_count_ - races_.size(), races_.size());
    }
  }
  if (!finalized_) {
    finalized_ = true;
    if (options_.fatal && race_count_ > 0) {
      std::fprintf(stderr,
                   "simrace: aborting: %" PRIu64
                   " race(s) between same-timestamp causally-unordered "
                   "events (set DPDPU_SIM_RACECHECK=0 to bypass)\n",
                   race_count_);
      std::abort();
    }
  }
}

const EnvConfig& EnvConfig::Get() {
  static const EnvConfig config = [] {
    EnvConfig c;
#ifndef NDEBUG
    c.race_check = true;  // Debug/check builds: on by default
#endif
    c.race_options.fatal = true;
    const char* rc = std::getenv("DPDPU_SIM_RACECHECK");  // NOLINT(concurrency-mt-unsafe)
    if (rc != nullptr) c.race_check = rc[0] != '0';
    const char* tb = std::getenv("DPDPU_SIM_TIEBREAK");  // NOLINT(concurrency-mt-unsafe)
    if (tb != nullptr) {
      if (std::strcmp(tb, "lifo") == 0) {
        c.tie_policy = 1;
      } else if (std::strncmp(tb, "shuffle", 7) == 0) {
        c.tie_policy = 2;
        if (tb[7] == ':') c.shuffle_seed = std::strtoull(tb + 8, nullptr, 10);
      } else {
        DPDPU_CHECK(std::strcmp(tb, "fifo") == 0);
      }
    }
    return c;
  }();
  return config;
}

}  // namespace dpdpu::sim
