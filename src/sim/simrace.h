// simrace: a causality-aware race detector for simulated time.
//
// The simulator's determinism contract orders events by (time, tie,
// sequence). Two causally-unordered events that share a timestamp and
// touch the same state are a latent race: the outcome is decided by an
// accident of tie-break order, exactly the bug class behind the
// page-cache coherence and commit-before-durable fixes. simrace finds
// those races while the schedule that hides them is still winning:
//
//  * Causal DAG — the Simulator records each event's provenance (the
//    event executing when it was scheduled). Components contribute the
//    happens-before edges the scheduler cannot see: Resource FIFO grant
//    order, MiniTCP buffered-segment delivery, per-link in-order frame
//    delivery, ring publish-before-consume (HbToken / HbChain below).
//  * Shadow-state access tracking — shared hot structures carry a
//    RaceTag and annotate reads/writes with DPDPU_SIM_ACCESS; the
//    checker groups accesses per (object, key) within each timestamp
//    bucket and flags conflicting accesses from causally-unordered
//    events, with a full provenance chain for each side. Every racing
//    *event pair* is reported, deduplicated per run on
//    (object, event-pair) — so hot objects with several aliasing racing
//    pairs hand simex its full persistent set in one run instead of one
//    reversal per run (the old one-report-per-(object, key) policy,
//    kept behind Options::single_report_per_key for A/B measurement).
//
// The checker only observes — it never schedules, reads time, or draws
// randomness — so enabling it cannot change any simulated metric.
// Enabled by default in Debug builds, via DPDPU_SIM_RACECHECK=1, or
// explicitly through Simulator::EnableRaceCheck().

#ifndef DPDPU_SIM_SIMRACE_H_
#define DPDPU_SIM_SIMRACE_H_

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dpdpu::sim {

/// Sentinel: "no event" (accesses outside any event are not tracked).
inline constexpr uint64_t kNoEvent = ~0ull;

/// How an annotated access touches the object.
///  kRead             observes state.
///  kWrite            mutates state; outcome may depend on access order.
///  kCommutativeWrite mutates state whose final value is independent of
///                    the order of other commutative writes (counters,
///                    monotone maxima, version-guarded last-writer-wins).
///                    Conflicts with reads and plain writes, not with
///                    other commutative writes.
enum class AccessKind : uint8_t { kRead = 0, kWrite = 1, kCommutativeWrite = 2 };

/// Identity stub embedded in an annotated structure. Lazily registered
/// with the active checker on first access; ids are assigned in access
/// order, which is deterministic under a fixed schedule. Never keyed on
/// the object's address (pointer order is not reproducible).
struct RaceTag {
  mutable uint32_t id = 0;  // 0 = unregistered
};

/// A happens-before token: names the event that published it. Components
/// stash one next to handed-off state (a queued job, a buffered segment,
/// a ring slot) and consume it from the event that picks the state up,
/// contributing the edge publisher -> consumer to the causal DAG.
struct HbToken {
  uint64_t event = kNoEvent;
};

/// One side of a reported race.
struct RaceAccess {
  uint64_t event = kNoEvent;
  AccessKind kind = AccessKind::kRead;
  /// Scheduling-provenance chain, self first: (event id, virtual time)
  /// for the event and its scheduling ancestors (truncated at the
  /// provenance window or the configured depth).
  std::vector<std::pair<uint64_t, uint64_t>> provenance;
};

struct RaceReport {
  std::string object;   // registered name
  uint32_t object_id = 0;
  uint64_t key = 0;
  uint64_t time = 0;    // the shared timestamp
  RaceAccess first;     // executed earlier under the current tie-break
  RaceAccess second;
};

/// Happens-before race checker. Owned by a Simulator; at most one is
/// active at a time (the simulator is single-threaded by design), so
/// instrumentation reaches it through Current() with zero coupling.
class RaceChecker {
 public:
  struct Options {
    /// Abort (after printing every report) when Finalize() finds races.
    /// Set for env/Debug auto-enablement so racy tests fail loudly;
    /// callers that inspect races() themselves leave it false.
    bool fatal = false;
    /// Keep at most this many full reports; further races only count.
    uint32_t max_reports = 16;
    /// Suppress the stderr report dump in Finalize(). Set by callers
    /// that consume races() programmatically — simex runs hundreds of
    /// deliberately-racy schedules per exploration.
    bool quiet = false;
    /// Provenance chain depth per side.
    uint32_t max_provenance_depth = 12;
    /// Legacy reporting policy: at most one race per (object, key) per
    /// run, first conflicting pair wins. The default (false) reports
    /// every racing event pair, deduped on (object, event-pair), which
    /// is what gives DPOR full reversal visibility on hot objects.
    /// Kept only so tests/simex_oracle.cc can prove the difference.
    bool single_report_per_key = false;
  };

  RaceChecker();  // default Options (GCC rejects `= Options()` here)
  explicit RaceChecker(Options options);
  RaceChecker(const RaceChecker&) = delete;
  RaceChecker& operator=(const RaceChecker&) = delete;
  ~RaceChecker();

  /// The checker attached to the currently executing event, or nullptr.
  /// Atomic so real-thread ring tests may probe it concurrently (they
  /// always observe nullptr: no simulator event is executing there).
  static RaceChecker* Current();

  // --- Simulator integration ----------------------------------------------

  /// Records provenance for a newly scheduled event.
  void OnSchedule(uint64_t event, uint64_t time, uint64_t parent);
  /// Enters an event: flushes the previous timestamp bucket when `time`
  /// advanced, then makes this checker Current().
  void BeginEvent(uint64_t event, uint64_t time, uint64_t parent);
  void EndEvent();
  /// Flushes the final bucket, prints any unprinted reports to stderr,
  /// and aborts if Options::fatal and races were found. Idempotent;
  /// called from ~Simulator().
  void Finalize();

  // --- instrumentation ------------------------------------------------------

  /// Logs an access by the currently executing event. `object` names the
  /// structure (stored on first registration of `tag`); `key` sub-divides
  /// it (block id, page id, ...) so independent entries never conflict.
  void RecordAccess(const RaceTag& tag, const char* object, uint64_t key,
                    AccessKind kind);

  /// Token naming the currently executing event (empty outside events).
  HbToken Publish() const { return HbToken{current_event_}; }
  /// Adds the edge token.event -> current event to the causal DAG.
  void Consume(const HbToken& token) { AddEdge(token.event, current_event_); }
  /// Raw edge: `from` happened before `to`.
  void AddEdge(uint64_t from, uint64_t to);

  // --- results --------------------------------------------------------------

  /// Total races found (reports beyond max_reports are counted only).
  uint64_t race_count() const { return race_count_; }
  const std::vector<RaceReport>& races() const { return races_; }
  uint64_t accesses_recorded() const { return accesses_recorded_; }
  /// Distinct object names that recorded at least one access, sorted.
  /// simscope --xcheck diffs these against statically reachable
  /// annotations; Finalize() appends them to the file named by
  /// DPDPU_SIM_RACE_COVERAGE when that variable is set.
  std::vector<std::string> observed_objects() const;
  std::string FormatReport(const RaceReport& report) const;

 private:
  struct Access {
    uint32_t object = 0;
    AccessKind kind = AccessKind::kRead;
    uint64_t key = 0;
    uint64_t event = kNoEvent;
  };
  struct BucketEvent {
    std::vector<uint64_t> preds;  // happens-before predecessors
  };
  struct Provenance {
    uint64_t event = kNoEvent;
    uint64_t parent = kNoEvent;
    uint64_t time = 0;
  };

  void FlushBucket();
  bool HappensBefore(uint64_t a, uint64_t b) const;
  std::vector<std::pair<uint64_t, uint64_t>> Chain(uint64_t event) const;
  void ReportRace(const Access& a, const Access& b);
  void PrintNewReports();

  Options options_;
  uint64_t current_event_ = kNoEvent;
  uint64_t bucket_time_ = 0;
  bool bucket_valid_ = false;
  /// Events of the current timestamp bucket with their intra-DAG edges.
  std::unordered_map<uint64_t, BucketEvent> bucket_;
  std::vector<Access> accesses_;  // current bucket, execution order
  /// Scheduling provenance, ring-buffered by event id (chains through
  /// ancestors older than the window are truncated when printed).
  std::vector<Provenance> provenance_;
  std::vector<std::string> object_names_;  // by id - 1
  /// Multi-report dedup: one report per (object, first event, second
  /// event) per run. Event ids are run-unique, so a pair racing on
  /// several keys of one object still reports once.
  std::set<std::tuple<uint32_t, uint64_t, uint64_t>> reported_pairs_;
  /// Legacy dedup (Options::single_report_per_key): (object, key).
  std::set<std::pair<uint32_t, uint64_t>> reported_keys_;
  std::vector<RaceReport> races_;
  uint64_t race_count_ = 0;
  uint64_t accesses_recorded_ = 0;
  size_t printed_ = 0;
  bool finalized_ = false;
};

/// Serialization-order helper: call Step() from each event that handles
/// the next item of a FIFO-ordered stream (per-link frame delivery,
/// per-connection segment processing, resource grants). Contributes the
/// edge "previous handler -> this handler", encoding the component's
/// in-order guarantee so same-timestamp handlers are not misreported as
/// racing.
class HbChain {
 public:
  void Step() {
    if (RaceChecker* rc = RaceChecker::Current()) {
      rc->Consume(prev_);
      prev_ = rc->Publish();
    }
  }

 private:
  HbToken prev_;
};

/// Annotated shared value for simple cases: reads and writes are logged
/// against the active checker; the value itself is untouched.
template <typename T>
class Racy {
 public:
  explicit Racy(const char* name, T value = T{})
      : name_(name), value_(std::move(value)) {}

  const T& read() const {
    Record(AccessKind::kRead);
    return value_;
  }
  T& write() {
    Record(AccessKind::kWrite);
    return value_;
  }
  /// Order-insensitive mutation (counter bumps, monotone maxima).
  T& commute() {
    Record(AccessKind::kCommutativeWrite);
    return value_;
  }

 private:
  void Record(AccessKind kind) const {
    if (RaceChecker* rc = RaceChecker::Current()) {
      rc->RecordAccess(tag_, name_, 0, kind);
    }
  }

  const char* name_;
  T value_;
  RaceTag tag_;
};

/// Mixes two ids into one access key (block = (file, offset), repair =
/// (node, offset), ...). Not a cryptographic hash — just enough spread
/// that distinct pairs don't collide into false conflicts.
constexpr uint64_t RaceKey(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9E3779B97F4A7C15ull + b;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  return x ^ (x >> 27);
}

/// Process-wide defaults read from the environment once (parsing lives
/// in simrace.cc so the NDEBUG default is decided in exactly one TU).
///   DPDPU_SIM_RACECHECK=0|1     force race checking off/on
///   DPDPU_SIM_TIEBREAK=fifo|lifo|shuffle[:seed]
struct EnvConfig {
  bool race_check = false;
  RaceChecker::Options race_options;
  uint8_t tie_policy = 0;  // TieBreak enum value (kept raw: no cycle)
  uint64_t shuffle_seed = 1;

  static const EnvConfig& Get();
};

}  // namespace dpdpu::sim

/// Annotates an access to a RaceTag-carrying structure. Compiles to one
/// predictable branch on an atomic load when race checking is off.
#define DPDPU_SIM_ACCESS(tag, object, key, kind)                          \
  do {                                                                    \
    if (::dpdpu::sim::RaceChecker* dpdpu_rc_ =                            \
            ::dpdpu::sim::RaceChecker::Current()) {                       \
      dpdpu_rc_->RecordAccess((tag), (object), (key), (kind));            \
    }                                                                     \
  } while (false)

#endif  // DPDPU_SIM_SIMRACE_H_
