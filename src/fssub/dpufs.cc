#include "fssub/dpufs.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "kern/crc32.h"

namespace dpdpu::fssub {

namespace {

constexpr uint32_t kSuperMagic = 0x44504653;  // "DPFS"
constexpr uint32_t kVersion = 1;

// Journal record types.
constexpr uint8_t kOpCreate = 1;
constexpr uint8_t kOpDelete = 2;
constexpr uint8_t kOpSetFile = 3;

}  // namespace

DpuFs::DpuFs(BlockDevice* device) : device_(device) {}

// ---------------------------------------------------------------------------
// Geometry and superblock.
// ---------------------------------------------------------------------------

Status DpuFs::InitGeometry(const DpuFsOptions& options) {
  options_ = options;
  checkpoint_start_ = 1;
  journal_start_ = checkpoint_start_ + options.checkpoint_blocks;
  data_start_ = journal_start_ + options.journal_blocks;
  if (data_start_ + 1 >= device_->num_blocks()) {
    return Status::InvalidArgument("dpufs: device too small for layout");
  }
  data_blocks_ = device_->num_blocks() - data_start_;
  journal_ = std::make_unique<Journal>(device_, journal_start_,
                                       options.journal_blocks);
  bitmap_.assign(data_blocks_, false);
  inodes_.assign(options.max_inodes, Inode{});
  directory_.clear();
  return Status::Ok();
}

Status DpuFs::WriteSuperblock(uint64_t checkpoint_seq) {
  Buffer sb;
  sb.AppendU32(kSuperMagic);
  sb.AppendU32(kVersion);
  sb.AppendU32(options_.max_inodes);
  sb.AppendU64(options_.journal_blocks);
  sb.AppendU64(options_.checkpoint_blocks);
  sb.AppendU64(checkpoint_seq);
  sb.AppendU64(checkpoint_meta_len_);
  sb.AppendU8(active_checkpoint_slot_);
  sb.AppendU32(kern::Crc32(sb.span()));
  sb.resize(device_->block_size());
  return device_->WriteBlock(0, sb.span());
}

Status DpuFs::LoadSuperblock(DpuFsOptions* options,
                             uint64_t* checkpoint_seq) {
  Buffer block(device_->block_size());
  DPDPU_RETURN_IF_ERROR(device_->ReadBlock(0, block.mutable_span()));
  ByteReader r(block.span());
  uint32_t magic, version;
  if (!r.ReadU32(&magic) || magic != kSuperMagic) {
    return Status::Corruption("dpufs: bad superblock magic");
  }
  if (!r.ReadU32(&version) || version != kVersion) {
    return Status::Corruption("dpufs: unsupported version");
  }
  uint64_t meta_len;
  uint8_t slot;
  if (!r.ReadU32(&options->max_inodes) ||
      !r.ReadU64(&options->journal_blocks) ||
      !r.ReadU64(&options->checkpoint_blocks) ||
      !r.ReadU64(checkpoint_seq) || !r.ReadU64(&meta_len) ||
      !r.ReadU8(&slot)) {
    return Status::Corruption("dpufs: truncated superblock");
  }
  uint32_t stored_crc;
  if (!r.ReadU32(&stored_crc)) {
    return Status::Corruption("dpufs: truncated superblock");
  }
  size_t crc_end = block.size() - r.remaining() - 4;
  if (kern::Crc32(block.span().subspan(0, crc_end)) != stored_crc) {
    return Status::Corruption("dpufs: superblock crc mismatch");
  }
  checkpoint_meta_len_ = meta_len;
  active_checkpoint_slot_ = slot;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Metadata (de)serialization and checkpointing (A/B slots).
// ---------------------------------------------------------------------------

Buffer DpuFs::SerializeMetadata() const {
  Buffer out;
  out.AppendU64(next_seq_);
  out.AppendU32(static_cast<uint32_t>(inodes_.size()));
  for (const Inode& inode : inodes_) {
    out.AppendU8(inode.used ? 1 : 0);
    out.AppendU64(inode.size);
    out.AppendU32(static_cast<uint32_t>(inode.extents.size()));
    for (const Extent& e : inode.extents) {
      out.AppendU64(e.start);
      out.AppendU32(e.length);
    }
  }
  out.AppendU32(static_cast<uint32_t>(directory_.size()));
  for (const auto& [name, file] : directory_) {
    out.AppendU32(static_cast<uint32_t>(name.size()));
    out.Append(name);
    out.AppendU32(file);
  }
  out.AppendU32(kern::Crc32(out.span()));
  return out;
}

Status DpuFs::DeserializeMetadata(ByteSpan data) {
  if (data.size() < 4) return Status::Corruption("dpufs: metadata too small");
  uint32_t stored_crc;
  {
    ByteReader tail(data.subspan(data.size() - 4));
    tail.ReadU32(&stored_crc);
  }
  if (kern::Crc32(data.subspan(0, data.size() - 4)) != stored_crc) {
    return Status::Corruption("dpufs: metadata crc mismatch");
  }
  ByteReader r(data);
  uint32_t inode_count;
  if (!r.ReadU64(&next_seq_) || !r.ReadU32(&inode_count)) {
    return Status::Corruption("dpufs: truncated metadata");
  }
  inodes_.assign(inode_count, Inode{});
  for (Inode& inode : inodes_) {
    uint8_t used;
    uint32_t nextents;
    if (!r.ReadU8(&used) || !r.ReadU64(&inode.size) ||
        !r.ReadU32(&nextents)) {
      return Status::Corruption("dpufs: truncated inode");
    }
    inode.used = used != 0;
    inode.extents.resize(nextents);
    for (Extent& e : inode.extents) {
      if (!r.ReadU64(&e.start) || !r.ReadU32(&e.length)) {
        return Status::Corruption("dpufs: truncated extent");
      }
    }
  }
  uint32_t dir_count;
  if (!r.ReadU32(&dir_count)) {
    return Status::Corruption("dpufs: truncated directory");
  }
  directory_.clear();
  for (uint32_t i = 0; i < dir_count; ++i) {
    uint32_t len, file;
    if (!r.ReadU32(&len)) return Status::Corruption("dpufs: dir entry");
    ByteSpan name;
    if (!r.ReadSpan(len, &name) || !r.ReadU32(&file)) {
      return Status::Corruption("dpufs: dir entry");
    }
    directory_[std::string(reinterpret_cast<const char*>(name.data()),
                           name.size())] = file;
  }
  return Status::Ok();
}

Status DpuFs::WriteCheckpointRegion(ByteSpan metadata) {
  uint32_t bs = device_->block_size();
  uint64_t slot_blocks = options_.checkpoint_blocks / 2;
  if (metadata.size() > slot_blocks * bs) {
    return Status::ResourceExhausted("dpufs: checkpoint slot too small");
  }
  uint8_t target_slot = active_checkpoint_slot_ == 0 ? 1 : 0;
  uint64_t slot_start = checkpoint_start_ + target_slot * slot_blocks;
  Buffer block(bs);
  for (uint64_t b = 0; b * bs < metadata.size(); ++b) {
    size_t n = std::min<size_t>(bs, metadata.size() - b * bs);
    std::memset(block.data(), 0, bs);
    std::memcpy(block.data(), metadata.data() + b * bs, n);
    DPDPU_RETURN_IF_ERROR(
        device_->WriteBlock(slot_start + b, block.span()));
  }
  active_checkpoint_slot_ = target_slot;
  checkpoint_meta_len_ = metadata.size();
  return Status::Ok();
}

Result<Buffer> DpuFs::ReadCheckpointRegion() {
  uint32_t bs = device_->block_size();
  uint64_t slot_blocks = options_.checkpoint_blocks / 2;
  uint64_t slot_start =
      checkpoint_start_ + active_checkpoint_slot_ * slot_blocks;
  Buffer out(checkpoint_meta_len_);
  Buffer block(bs);
  for (uint64_t b = 0; b * bs < out.size(); ++b) {
    DPDPU_RETURN_IF_ERROR(
        device_->ReadBlock(slot_start + b, block.mutable_span()));
    size_t n = std::min<size_t>(bs, out.size() - b * bs);
    std::memcpy(out.data() + b * bs, block.data(), n);
  }
  return out;
}

Status DpuFs::Checkpoint() {
  DPDPU_SIM_ACCESS(race_tag_, "DpuFs", /*key=*/0,
                   sim::AccessKind::kWrite);
  Buffer metadata = SerializeMetadata();
  // Crash-safe ordering: write the inactive slot, then atomically flip
  // the superblock, then reset the journal.
  DPDPU_RETURN_IF_ERROR(WriteCheckpointRegion(metadata.span()));
  DPDPU_RETURN_IF_ERROR(WriteSuperblock(next_seq_));
  DPDPU_RETURN_IF_ERROR(journal_->Reset());
  checkpoint_seq_ = next_seq_;
  ++stats_.checkpoints;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Format and mount.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<DpuFs>> DpuFs::Format(BlockDevice* device,
                                             DpuFsOptions options) {
  auto fs = std::unique_ptr<DpuFs>(new DpuFs(device));
  DPDPU_RETURN_IF_ERROR(fs->InitGeometry(options));
  DPDPU_RETURN_IF_ERROR(fs->Checkpoint());
  return fs;
}

Result<std::unique_ptr<DpuFs>> DpuFs::Mount(BlockDevice* device) {
  auto fs = std::unique_ptr<DpuFs>(new DpuFs(device));
  DpuFsOptions options;
  uint64_t checkpoint_seq = 0;
  DPDPU_RETURN_IF_ERROR(fs->LoadSuperblock(&options, &checkpoint_seq));
  // LoadSuperblock populated slot/meta_len; InitGeometry resets state, so
  // stash them across the call.
  uint64_t meta_len = fs->checkpoint_meta_len_;
  uint8_t slot = fs->active_checkpoint_slot_;
  DPDPU_RETURN_IF_ERROR(fs->InitGeometry(options));
  fs->checkpoint_meta_len_ = meta_len;
  fs->active_checkpoint_slot_ = slot;

  DPDPU_ASSIGN_OR_RETURN(Buffer metadata, fs->ReadCheckpointRegion());
  DPDPU_RETURN_IF_ERROR(fs->DeserializeMetadata(metadata.span()));
  fs->checkpoint_seq_ = checkpoint_seq;

  // Replay journaled mutations since the checkpoint.
  DPDPU_ASSIGN_OR_RETURN(
      uint64_t replayed,
      fs->journal_->Replay(checkpoint_seq, [&fs](uint64_t seq, ByteSpan p) {
        fs->ApplyJournalRecord(p);
        fs->next_seq_ = seq + 1;
      }));
  fs->stats_.replayed_records = replayed;

  // Rebuild the allocation bitmap from the (now current) inode table.
  std::fill(fs->bitmap_.begin(), fs->bitmap_.end(), false);
  for (const Inode& inode : fs->inodes_) {
    if (!inode.used) continue;
    for (const Extent& e : inode.extents) {
      for (uint64_t b = 0; b < e.length; ++b) {
        fs->bitmap_[e.start - fs->data_start_ + b] = true;
      }
    }
  }

  // Recovery is made durable immediately.
  DPDPU_RETURN_IF_ERROR(fs->Checkpoint());
  return fs;
}

// ---------------------------------------------------------------------------
// Journaled mutations.
// ---------------------------------------------------------------------------

Status DpuFs::AppendJournal(ByteSpan payload) {
  DPDPU_SIM_ACCESS(race_tag_, "DpuFs", /*key=*/0,
                   sim::AccessKind::kWrite);
  Status s = journal_->Append(next_seq_, payload);
  if (s.IsResourceExhausted()) {
    // Journal full: fold it into a checkpoint and retry once.
    DPDPU_RETURN_IF_ERROR(Checkpoint());
    s = journal_->Append(next_seq_, payload);
  }
  if (s.ok()) {
    ++next_seq_;
    ++stats_.journal_appends;
  }
  return s;
}

Status DpuFs::LogCreate(const std::string& name, FileId file) {
  Buffer p;
  p.AppendU8(kOpCreate);
  p.AppendU32(file);
  p.AppendU32(static_cast<uint32_t>(name.size()));
  p.Append(name);
  return AppendJournal(p.span());
}

Status DpuFs::LogDelete(const std::string& name) {
  Buffer p;
  p.AppendU8(kOpDelete);
  p.AppendU32(static_cast<uint32_t>(name.size()));
  p.Append(name);
  return AppendJournal(p.span());
}

Status DpuFs::LogSetFile(FileId file, const Inode& inode) {
  Buffer p;
  p.AppendU8(kOpSetFile);
  p.AppendU32(file);
  p.AppendU64(inode.size);
  p.AppendU32(static_cast<uint32_t>(inode.extents.size()));
  for (const Extent& e : inode.extents) {
    p.AppendU64(e.start);
    p.AppendU32(e.length);
  }
  return AppendJournal(p.span());
}

void DpuFs::ApplyJournalRecord(ByteSpan payload) {
  ByteReader r(payload);
  uint8_t op;
  if (!r.ReadU8(&op)) return;
  switch (op) {
    case kOpCreate: {
      uint32_t file, len;
      ByteSpan name;
      if (!r.ReadU32(&file) || !r.ReadU32(&len) || !r.ReadSpan(len, &name)) {
        return;
      }
      if (file >= inodes_.size()) return;
      inodes_[file] = Inode{true, 0, {}};
      directory_[std::string(reinterpret_cast<const char*>(name.data()),
                             name.size())] = file;
      break;
    }
    case kOpDelete: {
      uint32_t len;
      ByteSpan name;
      if (!r.ReadU32(&len) || !r.ReadSpan(len, &name)) return;
      std::string key(reinterpret_cast<const char*>(name.data()),
                      name.size());
      auto it = directory_.find(key);
      if (it == directory_.end()) return;
      inodes_[it->second] = Inode{};
      directory_.erase(it);
      break;
    }
    case kOpSetFile: {
      uint32_t file, nextents;
      uint64_t size;
      if (!r.ReadU32(&file) || !r.ReadU64(&size) || !r.ReadU32(&nextents)) {
        return;
      }
      if (file >= inodes_.size()) return;
      Inode& inode = inodes_[file];
      inode.used = true;
      inode.size = size;
      inode.extents.assign(nextents, Extent{});
      for (Extent& e : inode.extents) {
        if (!r.ReadU64(&e.start) || !r.ReadU32(&e.length)) return;
      }
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Namespace operations.
// ---------------------------------------------------------------------------

Result<FileId> DpuFs::Create(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("dpufs: empty name");
  if (directory_.count(name) > 0) {
    return Status::AlreadyExists("dpufs: " + name);
  }
  for (FileId i = 0; i < inodes_.size(); ++i) {
    if (!inodes_[i].used) {
      DPDPU_RETURN_IF_ERROR(LogCreate(name, i));
      inodes_[i] = Inode{true, 0, {}};
      directory_[name] = i;
      return i;
    }
  }
  return Status::ResourceExhausted("dpufs: out of inodes");
}

Result<FileId> DpuFs::Lookup(const std::string& name) const {
  auto it = directory_.find(name);
  if (it == directory_.end()) return Status::NotFound("dpufs: " + name);
  return it->second;
}

Status DpuFs::Delete(const std::string& name) {
  auto it = directory_.find(name);
  if (it == directory_.end()) return Status::NotFound("dpufs: " + name);
  DPDPU_RETURN_IF_ERROR(LogDelete(name));
  FreeExtents(inodes_[it->second].extents);
  inodes_[it->second] = Inode{};
  directory_.erase(it);
  return Status::Ok();
}

std::vector<std::string> DpuFs::List() const {
  std::vector<std::string> names;
  names.reserve(directory_.size());
  for (const auto& [name, file] : directory_) names.push_back(name);
  return names;
}

Result<uint64_t> DpuFs::FileSize(FileId file) const {
  if (file >= inodes_.size() || !inodes_[file].used) {
    return Status::NotFound("dpufs: bad file id");
  }
  return inodes_[file].size;
}

Result<std::vector<Extent>> DpuFs::FileExtents(FileId file) const {
  if (file >= inodes_.size() || !inodes_[file].used) {
    return Status::NotFound("dpufs: bad file id");
  }
  return inodes_[file].extents;
}

uint64_t DpuFs::free_blocks() const {
  uint64_t used = 0;
  for (bool b : bitmap_) used += b ? 1 : 0;
  return data_blocks_ - used;
}

// ---------------------------------------------------------------------------
// Allocation.
// ---------------------------------------------------------------------------

Result<std::vector<Extent>> DpuFs::AllocateBlocks(uint64_t blocks) {
  std::vector<Extent> out;
  uint64_t remaining = blocks;
  while (remaining > 0) {
    // Find the longest free run, capped at `remaining`.
    uint64_t best_start = 0, best_len = 0;
    uint64_t run_start = 0, run_len = 0;
    for (uint64_t i = 0; i <= bitmap_.size(); ++i) {
      if (i < bitmap_.size() && !bitmap_[i]) {
        if (run_len == 0) run_start = i;
        ++run_len;
        if (run_len >= remaining) {  // good enough; stop early
          best_start = run_start;
          best_len = remaining;
          break;
        }
      } else {
        if (run_len > best_len) {
          best_start = run_start;
          best_len = run_len;
        }
        run_len = 0;
      }
    }
    if (best_len == 0) {
      FreeExtents(out);
      return Status::ResourceExhausted("dpufs: out of data blocks");
    }
    uint64_t take = std::min(best_len, remaining);
    for (uint64_t i = 0; i < take; ++i) bitmap_[best_start + i] = true;
    stats_.blocks_allocated += take;
    out.push_back(Extent{data_start_ + best_start,
                         static_cast<uint32_t>(take)});
    remaining -= take;
  }
  return out;
}

void DpuFs::FreeExtents(const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    for (uint64_t i = 0; i < e.length; ++i) {
      bitmap_[e.start - data_start_ + i] = false;
    }
  }
}

// ---------------------------------------------------------------------------
// Data path.
// ---------------------------------------------------------------------------

namespace {

// Maps a file-relative block index to a device block via the extent list.
// Returns false when the index is beyond the allocation.
bool ResolveBlock(const std::vector<Extent>& extents, uint64_t file_block,
                  uint64_t* device_block) {
  uint64_t skipped = 0;
  for (const Extent& e : extents) {
    if (file_block < skipped + e.length) {
      *device_block = e.start + (file_block - skipped);
      return true;
    }
    skipped += e.length;
  }
  return false;
}

uint64_t TotalBlocks(const std::vector<Extent>& extents) {
  uint64_t total = 0;
  for (const Extent& e : extents) total += e.length;
  return total;
}

}  // namespace

Status DpuFs::Write(FileId file, uint64_t offset, ByteSpan data) {
  if (file >= inodes_.size() || !inodes_[file].used) {
    return Status::NotFound("dpufs: bad file id");
  }
  if (data.empty()) return Status::Ok();
  Inode& inode = inodes_[file];
  uint32_t bs = device_->block_size();

  uint64_t end = offset + data.size();
  uint64_t needed_blocks = (end + bs - 1) / bs;
  uint64_t have_blocks = TotalBlocks(inode.extents);

  std::vector<Extent> new_extents = inode.extents;
  if (needed_blocks > have_blocks) {
    DPDPU_ASSIGN_OR_RETURN(std::vector<Extent> grown,
                           AllocateBlocks(needed_blocks - have_blocks));
    for (const Extent& e : grown) {
      if (!new_extents.empty() &&
          new_extents.back().start + new_extents.back().length == e.start) {
        new_extents.back().length += e.length;  // merge adjacent
      } else {
        new_extents.push_back(e);
      }
    }
  }
  uint64_t old_size = inode.size;
  uint64_t new_size = std::max(inode.size, end);

  // Journal the metadata change before touching data blocks.
  if (new_size != inode.size || new_extents.size() != inode.extents.size() ||
      needed_blocks > have_blocks) {
    Inode staged{true, new_size, new_extents};
    DPDPU_RETURN_IF_ERROR(LogSetFile(file, staged));
    inode.size = new_size;
    inode.extents = std::move(new_extents);
  }

  // Data writes (read-modify-write at the unaligned edges).
  auto write_range = [&](uint64_t range_offset, ByteSpan bytes,
                         bool zeros) -> Status {
    Buffer block(bs);
    size_t written = 0;
    size_t total = zeros ? static_cast<size_t>(bytes.size()) : bytes.size();
    while (written < total) {
      uint64_t pos = range_offset + written;
      uint64_t file_block = pos / bs;
      uint32_t in_block = static_cast<uint32_t>(pos % bs);
      size_t n = std::min<size_t>(bs - in_block, total - written);
      uint64_t device_block;
      if (!ResolveBlock(inode.extents, file_block, &device_block)) {
        return Status::Internal("dpufs: unresolved block after allocation");
      }
      if (n != bs) {
        DPDPU_RETURN_IF_ERROR(
            device_->ReadBlock(device_block, block.mutable_span()));
      }
      if (zeros) {
        std::memset(block.data() + in_block, 0, n);
      } else {
        std::memcpy(block.data() + in_block, bytes.data() + written, n);
      }
      DPDPU_RETURN_IF_ERROR(
          device_->WriteBlock(device_block, block.span()));
      written += n;
    }
    return Status::Ok();
  };

  // A write past EOF creates a hole [old_size, offset): newly allocated
  // blocks may hold stale bytes from freed files, but holes must read as
  // zeros.
  if (offset > old_size) {
    Buffer gap(static_cast<size_t>(offset - old_size));
    DPDPU_RETURN_IF_ERROR(write_range(old_size, gap.span(), /*zeros=*/true));
  }
  return write_range(offset, data, /*zeros=*/false);
}

Result<Buffer> DpuFs::Read(FileId file, uint64_t offset,
                           size_t length) const {
  if (file >= inodes_.size() || !inodes_[file].used) {
    return Status::NotFound("dpufs: bad file id");
  }
  const Inode& inode = inodes_[file];
  if (offset >= inode.size) return Buffer();
  length = static_cast<size_t>(
      std::min<uint64_t>(length, inode.size - offset));

  uint32_t bs = device_->block_size();
  Buffer out(length);
  Buffer block(bs);
  size_t read = 0;
  while (read < length) {
    uint64_t pos = offset + read;
    uint64_t file_block = pos / bs;
    uint32_t in_block = static_cast<uint32_t>(pos % bs);
    size_t n = std::min<size_t>(bs - in_block, length - read);
    uint64_t device_block;
    if (!ResolveBlock(inode.extents, file_block, &device_block)) {
      return Status::Corruption("dpufs: size beyond allocation");
    }
    DPDPU_RETURN_IF_ERROR(
        device_->ReadBlock(device_block, block.mutable_span()));
    std::memcpy(out.data() + read, block.data() + in_block, n);
    read += n;
  }
  return out;
}

}  // namespace dpdpu::fssub
