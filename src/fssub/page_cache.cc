#include "fssub/page_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace dpdpu::fssub {

const Buffer* PageCache::Get(const PageKey& key) {
  DPDPU_SIM_ACCESS(race_tag_, "PageCache", sim::RaceKey(key.file, key.page),
                   sim::AccessKind::kRead);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_[it->second].referenced = true;
  return &entries_[it->second].page;
}

void PageCache::EvictOne() {
  DPDPU_CHECK(!entries_.empty());
  for (;;) {
    if (hand_ >= entries_.size()) hand_ = 0;
    Entry& e = entries_[hand_];
    if (e.referenced) {
      e.referenced = false;  // second chance
      ++hand_;
      continue;
    }
    // Evict: swap-with-back removal keeps the arena dense.
    used_ -= e.page.size();
    ++stats_.evictions;
    index_.erase(e.key);
    size_t last = entries_.size() - 1;
    if (hand_ != last) {
      entries_[hand_] = std::move(entries_[last]);
      index_[entries_[hand_].key] = hand_;
    }
    entries_.pop_back();
    return;
  }
}

void PageCache::Put(const PageKey& key, Buffer page) {
  DPDPU_SIM_ACCESS(race_tag_, "PageCache", sim::RaceKey(key.file, key.page),
                   sim::AccessKind::kWrite);
  if (page.size() > capacity_) return;  // cannot fit (incl. capacity 0)
  auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    used_ -= e.page.size();
    used_ += page.size();
    e.page = std::move(page);
    e.referenced = true;
    while (used_ > capacity_) EvictOne();
    return;
  }
  while (used_ + page.size() > capacity_) EvictOne();
  used_ += page.size();
  ++stats_.insertions;
  // New pages enter unreferenced (inactive-list style): a page must be
  // *re*-accessed to earn its second chance, so scans cannot flush pages
  // the workload is actively re-reading.
  entries_.push_back(Entry{key, std::move(page), false});
  index_[key] = entries_.size() - 1;
}

void PageCache::Erase(const PageKey& key) {
  DPDPU_SIM_ACCESS(race_tag_, "PageCache", sim::RaceKey(key.file, key.page),
                   sim::AccessKind::kWrite);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  size_t pos = it->second;
  used_ -= entries_[pos].page.size();
  index_.erase(it);
  size_t last = entries_.size() - 1;
  if (pos != last) {
    entries_[pos] = std::move(entries_[last]);
    index_[entries_[pos].key] = pos;
  }
  entries_.pop_back();
  if (hand_ > entries_.size()) hand_ = 0;
}

void PageCache::EraseFile(uint32_t file) {
  for (size_t i = 0; i < entries_.size();) {
    if (entries_[i].key.file == file) {
      Erase(entries_[i].key);
    } else {
      ++i;
    }
  }
}

void PageCache::Resize(uint64_t capacity_bytes) {
  capacity_ = capacity_bytes;
  while (used_ > capacity_ && !entries_.empty()) EvictOne();
}

std::vector<PageKey> PageCache::ResidentPages() const {
  std::vector<PageKey> keys;
  keys.reserve(entries_.size());
  for (const Entry& e : entries_) keys.push_back(e.key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace dpdpu::fssub
