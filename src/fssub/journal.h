// Write-ahead journal over a contiguous block range. Each record carries
// a sequence number and CRC32; replay applies records in order and stops
// at the first hole or corrupt record — which is exactly what a torn
// write at crash time produces.

#ifndef DPDPU_FSSUB_JOURNAL_H_
#define DPDPU_FSSUB_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "fssub/block_device.h"

namespace dpdpu::fssub {

/// Append-only WAL in blocks [first_block, first_block + num_blocks).
/// The caller persists the replay horizon (`start_seq`) elsewhere (DpuFs
/// keeps it in the superblock) and resets the journal at checkpoints.
class Journal {
 public:
  Journal(BlockDevice* device, uint64_t first_block, uint64_t num_blocks);

  /// Appends a record and persists the touched blocks immediately.
  /// Fails with ResourceExhausted when the journal region is full
  /// (caller should checkpoint and Reset).
  Status Append(uint64_t seq, ByteSpan payload);

  /// Replays records with seq >= start_seq, in append order, stopping
  /// cleanly at the first invalid record. Returns the number replayed.
  Result<uint64_t> Replay(uint64_t start_seq,
                          const std::function<void(uint64_t seq, ByteSpan)>&
                              apply) const;

  /// Logically clears the journal (rewinds the append cursor and writes a
  /// terminator so stale records do not replay).
  Status Reset();

  uint64_t bytes_used() const { return append_offset_; }
  uint64_t capacity_bytes() const {
    return num_blocks_ * device_->block_size();
  }

 private:
  Status PersistRange(uint64_t begin, uint64_t end);

  BlockDevice* device_;
  uint64_t first_block_;
  uint64_t num_blocks_;
  uint64_t append_offset_ = 0;  // bytes from journal start
  std::vector<uint8_t> shadow_;  // in-memory image of the journal region
};

}  // namespace dpdpu::fssub

#endif  // DPDPU_FSSUB_JOURNAL_H_
