// DpuFs: the DPU-owned extent-based file system at the heart of the DDS
// design (paper Section 9, Q1: "how to access files on SSDs directly from
// the DPU?" — answered with "a unified file system that directs file
// operations on the host to the DPU", so the DPU owns the file mapping).
//
// On-device layout (block 0 is the superblock):
//   [ superblock | checkpoint region | journal | data blocks ]
//
// All metadata (allocation bitmap, inode table, directory) lives in
// memory, is journaled on every mutation, and is checkpointed as a whole.
// Mount = read superblock -> load checkpoint -> replay journal ->
// checkpoint + journal reset.

#ifndef DPDPU_FSSUB_DPUFS_H_
#define DPDPU_FSSUB_DPUFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "fssub/block_device.h"
#include "fssub/journal.h"
#include "sim/simrace.h"

namespace dpdpu::fssub {

using FileId = uint32_t;

/// A contiguous run of data blocks.
struct Extent {
  uint64_t start = 0;
  uint32_t length = 0;  // blocks
};

struct DpuFsOptions {
  uint32_t max_inodes = 1024;
  /// Journal size in blocks.
  uint64_t journal_blocks = 256;
  /// Checkpoint region size in blocks (must hold all metadata).
  uint64_t checkpoint_blocks = 512;
};

struct DpuFsStats {
  uint64_t journal_appends = 0;
  uint64_t checkpoints = 0;
  uint64_t blocks_allocated = 0;
  uint64_t replayed_records = 0;
};

/// The DPU file service's file system. Single-threaded (the DPU file
/// service serializes operations); all methods are synchronous over the
/// byte-level BlockDevice — I/O *timing* is charged by the Storage
/// Engine through hw::SsdDevice.
class DpuFs {
 public:
  /// Formats the device and returns a mounted instance.
  static Result<std::unique_ptr<DpuFs>> Format(BlockDevice* device,
                                               DpuFsOptions options = {});

  /// Mounts an existing file system: loads the last checkpoint, replays
  /// the journal, then re-checkpoints (recovery is idempotent).
  static Result<std::unique_ptr<DpuFs>> Mount(BlockDevice* device);

  DpuFs(const DpuFs&) = delete;
  DpuFs& operator=(const DpuFs&) = delete;

  Result<FileId> Create(const std::string& name);
  Result<FileId> Lookup(const std::string& name) const;
  Status Delete(const std::string& name);
  std::vector<std::string> List() const;

  Result<uint64_t> FileSize(FileId file) const;

  /// Writes `data` at `offset`, extending and allocating as needed.
  Status Write(FileId file, uint64_t offset, ByteSpan data);

  /// Reads `length` bytes at `offset`; short reads at EOF return the
  /// available prefix.
  Result<Buffer> Read(FileId file, uint64_t offset, size_t length) const;

  /// Persists all metadata and truncates the journal.
  Status Checkpoint();

  /// The extent list backing `file` — exposed because the DPU "owns the
  /// file mapping" and the SE offload engine translates remote requests
  /// directly to block spans.
  Result<std::vector<Extent>> FileExtents(FileId file) const;

  const DpuFsStats& stats() const { return stats_; }
  uint64_t free_blocks() const;
  uint64_t data_blocks() const { return data_blocks_; }
  uint32_t block_size() const { return device_->block_size(); }

 private:
  struct Inode {
    bool used = false;
    uint64_t size = 0;
    std::vector<Extent> extents;
  };

  explicit DpuFs(BlockDevice* device);

  Status InitGeometry(const DpuFsOptions& options);
  Status LoadSuperblock(DpuFsOptions* options, uint64_t* checkpoint_seq);
  Status WriteSuperblock(uint64_t checkpoint_seq);
  Buffer SerializeMetadata() const;
  Status DeserializeMetadata(ByteSpan data);
  Status WriteCheckpointRegion(ByteSpan metadata);
  Result<Buffer> ReadCheckpointRegion();

  // Journaled mutations.
  Status LogCreate(const std::string& name, FileId file);
  Status LogDelete(const std::string& name);
  Status LogSetFile(FileId file, const Inode& inode);
  Status AppendJournal(ByteSpan payload);
  void ApplyJournalRecord(ByteSpan payload);

  /// Allocates `blocks` data blocks as few extents as possible.
  Result<std::vector<Extent>> AllocateBlocks(uint64_t blocks);
  void FreeExtents(const std::vector<Extent>& extents);

  BlockDevice* device_;
  DpuFsOptions options_;
  uint64_t checkpoint_start_ = 0;
  uint64_t journal_start_ = 0;
  uint64_t data_start_ = 0;
  uint64_t data_blocks_ = 0;
  std::unique_ptr<Journal> journal_;
  uint64_t next_seq_ = 1;
  uint64_t checkpoint_seq_ = 1;
  uint64_t checkpoint_meta_len_ = 0;
  uint8_t active_checkpoint_slot_ = 1;  // first checkpoint writes slot 0

  std::vector<bool> bitmap_;  // data-block allocation, index 0 = data_start_
  std::vector<Inode> inodes_;
  std::map<std::string, FileId> directory_;
  DpuFsStats stats_;
  /// Journal/checkpoint sequencing is a plain write: append order IS
  /// the recovery replay order. In the running system every mutation
  /// arrives through the server's single SPDK reactor (FileService's
  /// HbChain), which orders same-timestamp appends; the annotation
  /// makes any future bypass of that path visible to simrace.
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::fssub

#endif  // DPDPU_FSSUB_DPUFS_H_
