// Block device abstraction backing DpuFs. MemBlockDevice stores real
// bytes in memory and supports crash injection: after a configurable
// number of successful writes, further writes are silently dropped —
// emulating a power cut with writes in flight, which the journal recovery
// tests exercise.

#ifndef DPDPU_FSSUB_BLOCK_DEVICE_H_
#define DPDPU_FSSUB_BLOCK_DEVICE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace dpdpu::fssub {

/// Synchronous block device interface. Device-level *timing* is modeled
/// separately by hw::SsdDevice; this interface carries the actual bytes.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t block_size() const = 0;
  virtual uint64_t num_blocks() const = 0;

  /// Reads one block into `out` (must be block_size bytes).
  virtual Status ReadBlock(uint64_t block, MutableByteSpan out) const = 0;

  /// Writes one block (data must be block_size bytes).
  virtual Status WriteBlock(uint64_t block, ByteSpan data) = 0;
};

/// In-memory block device with write-failure injection.
class MemBlockDevice final : public BlockDevice {
 public:
  MemBlockDevice(uint32_t block_size, uint64_t num_blocks);

  uint32_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  Status ReadBlock(uint64_t block, MutableByteSpan out) const override;
  Status WriteBlock(uint64_t block, ByteSpan data) override;

  /// After `remaining` more successful writes, subsequent writes are
  /// silently dropped (simulated crash; reads keep working so a remount
  /// sees the torn state).
  void SetWriteLimit(uint64_t remaining) { writes_remaining_ = remaining; }
  void ClearWriteLimit() {
    writes_remaining_ = std::numeric_limits<uint64_t>::max();
  }

  uint64_t writes() const { return writes_; }
  uint64_t dropped_writes() const { return dropped_writes_; }

 private:
  uint32_t block_size_;
  uint64_t num_blocks_;
  std::vector<uint8_t> data_;
  uint64_t writes_ = 0;
  uint64_t dropped_writes_ = 0;
  uint64_t writes_remaining_ = std::numeric_limits<uint64_t>::max();
};

}  // namespace dpdpu::fssub

#endif  // DPDPU_FSSUB_BLOCK_DEVICE_H_
