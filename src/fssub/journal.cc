#include "fssub/journal.h"

#include <cstring>

#include "kern/crc32.h"

namespace dpdpu::fssub {

namespace {
constexpr uint32_t kRecordMagic = 0x4A524E4C;  // "JRNL"
constexpr size_t kRecordHeader = 4 + 8 + 4;    // magic, seq, len
constexpr size_t kRecordTrailer = 4;           // crc
}  // namespace

Journal::Journal(BlockDevice* device, uint64_t first_block,
                 uint64_t num_blocks)
    : device_(device),
      first_block_(first_block),
      num_blocks_(num_blocks),
      shadow_(size_t(num_blocks) * device->block_size(), 0) {}

Status Journal::PersistRange(uint64_t begin, uint64_t end) {
  uint32_t bs = device_->block_size();
  uint64_t first = begin / bs;
  uint64_t last = end == begin ? first : (end - 1) / bs;
  for (uint64_t b = first; b <= last; ++b) {
    DPDPU_RETURN_IF_ERROR(device_->WriteBlock(
        first_block_ + b, ByteSpan(shadow_.data() + b * bs, bs)));
  }
  return Status::Ok();
}

Status Journal::Append(uint64_t seq, ByteSpan payload) {
  size_t record_size = kRecordHeader + payload.size() + kRecordTrailer;
  // Keep 4 spare bytes so an implicit zero terminator always follows.
  if (append_offset_ + record_size + 4 > capacity_bytes()) {
    return Status::ResourceExhausted("journal: full, checkpoint required");
  }
  Buffer rec;
  rec.AppendU32(kRecordMagic);
  rec.AppendU64(seq);
  rec.AppendU32(static_cast<uint32_t>(payload.size()));
  rec.Append(payload);
  // CRC over seq+len+payload.
  rec.AppendU32(kern::Crc32(rec.span().subspan(4)));

  std::memcpy(shadow_.data() + append_offset_, rec.data(), rec.size());
  uint64_t begin = append_offset_;
  append_offset_ += rec.size();
  return PersistRange(begin, append_offset_);
}

Result<uint64_t> Journal::Replay(
    uint64_t start_seq,
    const std::function<void(uint64_t seq, ByteSpan)>& apply) const {
  // Read the journal region from the device (the shadow may be stale
  // relative to a crashed instance).
  uint32_t bs = device_->block_size();
  std::vector<uint8_t> image(size_t(num_blocks_) * bs);
  for (uint64_t b = 0; b < num_blocks_; ++b) {
    DPDPU_RETURN_IF_ERROR(device_->ReadBlock(
        first_block_ + b, MutableByteSpan(image.data() + b * bs, bs)));
  }

  uint64_t replayed = 0;
  uint64_t expected_seq = start_seq;
  size_t offset = 0;
  while (offset + kRecordHeader + kRecordTrailer <= image.size()) {
    ByteReader r(ByteSpan(image.data() + offset, image.size() - offset));
    uint32_t magic, len;
    uint64_t seq;
    if (!r.ReadU32(&magic) || magic != kRecordMagic) break;
    if (!r.ReadU64(&seq) || !r.ReadU32(&len)) break;
    if (offset + kRecordHeader + len + kRecordTrailer > image.size()) break;
    ByteSpan payload;
    if (!r.ReadSpan(len, &payload)) break;
    uint32_t stored_crc;
    if (!r.ReadU32(&stored_crc)) break;
    uint32_t computed = kern::Crc32(
        ByteSpan(image.data() + offset + 4, 8 + 4 + len));
    if (computed != stored_crc) break;  // torn write: stop cleanly
    if (seq != expected_seq) break;     // stale record from a prior epoch
    apply(seq, payload);
    ++replayed;
    ++expected_seq;
    offset += kRecordHeader + len + kRecordTrailer;
  }
  return replayed;
}

Status Journal::Reset() {
  append_offset_ = 0;
  std::fill(shadow_.begin(), shadow_.end(), 0);
  // Persist a zero terminator at the head; stale records further in are
  // fenced by the sequence check.
  return PersistRange(0, device_->block_size());
}

}  // namespace dpdpu::fssub
