// CLOCK page cache with byte-budget capacity. The paper's Section 9
// ("Caching in DPU-backed file system") asks how to split cache capacity
// between host memory (best for host applications) and DPU memory (best
// for offloaded remote requests); the Storage Engine instantiates one of
// these on each side and the abl_cache_split benchmark sweeps the split.

#ifndef DPDPU_FSSUB_PAGE_CACHE_H_
#define DPDPU_FSSUB_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "sim/simrace.h"

namespace dpdpu::fssub {

/// Cache key: (file, page index).
struct PageKey {
  uint32_t file = 0;
  uint64_t page = 0;

  bool operator==(const PageKey& other) const {
    return file == other.file && page == other.page;
  }

  /// Deterministic total order (file, then page) for sorted listings.
  bool operator<(const PageKey& other) const {
    if (file != other.file) return file < other.file;
    return page < other.page;
  }
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    return std::hash<uint64_t>()((uint64_t(k.file) << 40) ^ k.page);
  }
};

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }
};

/// CLOCK (second-chance) eviction over a byte budget. Capacity 0 disables
/// caching entirely (every lookup misses, nothing is stored).
class PageCache {
 public:
  explicit PageCache(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  uint64_t capacity() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t page_count() const { return entries_.size(); }
  const PageCacheStats& stats() const { return stats_; }

  /// Looks up a page; sets the reference bit on hit.
  const Buffer* Get(const PageKey& key);

  /// Inserts or replaces a page, evicting via CLOCK to fit.
  void Put(const PageKey& key, Buffer page);

  /// Drops one page (e.g. on invalidation by a write).
  void Erase(const PageKey& key);

  /// Drops every page of a file (e.g. on delete).
  void EraseFile(uint32_t file);

  /// Changes capacity, evicting as needed.
  void Resize(uint64_t capacity_bytes);

  /// Resident page keys sorted by (file, page). The clock arena's
  /// physical order depends on the eviction/erase history (swap-with-back
  /// compaction), so any log or metric derived from cache contents must
  /// go through this accessor to stay deterministic (simlint rule R2).
  std::vector<PageKey> ResidentPages() const;

 private:
  struct Entry {
    PageKey key;
    Buffer page;
    bool referenced = false;
  };

  void EvictOne();

  uint64_t capacity_;
  uint64_t used_ = 0;
  std::vector<Entry> entries_;  // clock arena
  size_t hand_ = 0;
  std::unordered_map<PageKey, size_t, PageKeyHash> index_;
  PageCacheStats stats_;
  /// simrace identity, keyed per (file, page): a same-timestamp unordered
  /// Get racing a Put/Erase of the same page is exactly the PR-4
  /// cache-coherence bug shape.
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::fssub

#endif  // DPDPU_FSSUB_PAGE_CACHE_H_
