#include "fssub/block_device.h"

#include <cstring>

namespace dpdpu::fssub {

MemBlockDevice::MemBlockDevice(uint32_t block_size, uint64_t num_blocks)
    : block_size_(block_size),
      num_blocks_(num_blocks),
      data_(size_t(block_size) * num_blocks, 0) {}

Status MemBlockDevice::ReadBlock(uint64_t block, MutableByteSpan out) const {
  if (block >= num_blocks_) {
    return Status::OutOfRange("block device: read past end");
  }
  if (out.size() != block_size_) {
    return Status::InvalidArgument("block device: bad read buffer size");
  }
  std::memcpy(out.data(), data_.data() + block * block_size_, block_size_);
  return Status::Ok();
}

Status MemBlockDevice::WriteBlock(uint64_t block, ByteSpan data) {
  if (block >= num_blocks_) {
    return Status::OutOfRange("block device: write past end");
  }
  if (data.size() != block_size_) {
    return Status::InvalidArgument("block device: bad write size");
  }
  if (writes_remaining_ == 0) {
    ++dropped_writes_;  // simulated crash: write silently lost
    return Status::Ok();
  }
  --writes_remaining_;
  ++writes_;
  std::memcpy(data_.data() + block * block_size_, data.data(), block_size_);
  return Status::Ok();
}

}  // namespace dpdpu::fssub
