// Calibration constants for the DPDPU hardware models. Every constant is
// anchored either to a number reported in the paper (Figures 1-3), to the
// public BlueField-2 datasheet quoted in the paper's Section 3, or to the
// measurements in work the paper cites (Cowbird for RDMA issue overheads,
// the Haas et al. CIDR'20 observation that CPU instructions per I/O byte
// are roughly constant).
//
// Costs for software execution are expressed in *reference cycles*: cycles
// on a 1.0-IPC core. A core with clock f and IPC factor i retires
// reference cycles at rate f*i.

#ifndef DPDPU_HW_CALIBRATION_H_
#define DPDPU_HW_CALIBRATION_H_

#include <cstdint>

namespace dpdpu::hw::cal {

// ---------------------------------------------------------------------------
// Processors.
// ---------------------------------------------------------------------------

/// Host server: AMD EPYC-class, as in the paper's Section 2 testbed.
inline constexpr double kHostClockHz = 3.0e9;
inline constexpr double kHostIpc = 1.0;
inline constexpr uint32_t kHostCores = 64;

/// BlueField-2: 8x Arm Cortex-A72 @ 2.5 GHz (paper Section 3). The IPC
/// factor reflects the A72's narrower issue width and smaller caches;
/// with 0.6 the EPYC outruns the Arm ~2x on DEFLATE, matching Figure 1.
inline constexpr double kBf2ArmClockHz = 2.5e9;
inline constexpr double kBf2ArmIpc = 0.6;
inline constexpr uint32_t kBf2ArmCores = 8;
inline constexpr uint64_t kBf2MemoryBytes = 16ull << 30;  // 16 GB DDR4

/// BlueField-3: 16x Cortex-A78 @ 3.0 GHz, 32 GB; no RegEx ASIC (paper
/// Section 5 heterogeneity discussion), but supports generic NIC-core
/// offloading.
inline constexpr double kBf3ArmClockHz = 3.0e9;
inline constexpr double kBf3ArmIpc = 0.75;
inline constexpr uint32_t kBf3ArmCores = 16;
inline constexpr uint64_t kBf3MemoryBytes = 32ull << 30;

// ---------------------------------------------------------------------------
// Software kernel costs (reference cycles per byte, host-class code).
// DEFLATE at 52 cyc/B gives ~58 MB/s on one EPYC core and ~29 MB/s on one
// BF-2 Arm core — the Figure 1 CPU curves.
// ---------------------------------------------------------------------------

inline constexpr double kDeflateCyclesPerByte = 52.0;
inline constexpr double kInflateCyclesPerByte = 12.0;
inline constexpr double kChaCha20CyclesPerByte = 4.0;
inline constexpr double kRegexCyclesPerByte = 9.0;
inline constexpr double kCrc32CyclesPerByte = 1.2;
inline constexpr double kDedupChunkCyclesPerByte = 6.0;
inline constexpr double kFilterCyclesPerByte = 2.0;
inline constexpr double kAggregateCyclesPerByte = 1.5;
inline constexpr uint64_t kKernelDispatchCycles = 400;  // per invocation

// ---------------------------------------------------------------------------
// BlueField-2 hardware accelerators (paper Section 3 / Figure 1).
// The compression ASIC is calibrated to ~1 GB/s so the ASIC beats the EPYC
// core by ~17x: "an order of magnitude" (Figure 1).
// ---------------------------------------------------------------------------

inline constexpr double kBf2CompressAsicBytesPerSec = 1.0e9;
inline constexpr uint64_t kBf2CompressAsicSetupNs = 12'000;
inline constexpr uint32_t kBf2CompressAsicConcurrency = 4;

inline constexpr double kBf2CryptoAsicBytesPerSec = 4.5e9;
inline constexpr uint64_t kBf2CryptoAsicSetupNs = 6'000;
inline constexpr uint32_t kBf2CryptoAsicConcurrency = 4;

inline constexpr double kBf2RegexAsicBytesPerSec = 1.6e9;
inline constexpr uint64_t kBf2RegexAsicSetupNs = 8'000;
inline constexpr uint32_t kBf2RegexAsicConcurrency = 2;

inline constexpr double kBf2DedupAsicBytesPerSec = 2.0e9;
inline constexpr uint64_t kBf2DedupAsicSetupNs = 10'000;
inline constexpr uint32_t kBf2DedupAsicConcurrency = 2;

// BF-3 accelerators: faster compression/crypto, no RegEx.
inline constexpr double kBf3CompressAsicBytesPerSec = 2.5e9;
inline constexpr double kBf3CryptoAsicBytesPerSec = 9.0e9;

// ---------------------------------------------------------------------------
// I/O stacks.
// ---------------------------------------------------------------------------

/// Linux block I/O path cost per 8 KB page, anchored to Figure 2:
/// 2.7 cores x 3 GHz / 450 K pages/s = 18,000 cycles/page. The paper notes
/// io_uring showed "similar CPU cost".
inline constexpr uint64_t kLinuxStorageStackCyclesPerIo = 18'000;

/// SPDK-style userspace polling path running on the DPU (paper Section 3).
inline constexpr uint64_t kSpdkCyclesPerIo = 2'500;

/// Kernel TCP/IP send/receive costs (Figure 3): per-message overhead
/// (syscall, skb, protocol) plus per-byte copy+checksum. At 100 Gbps of
/// 8 KB pages this consumes ~7 host cores.
inline constexpr uint64_t kKernelTcpCyclesPerMsg = 5'800;
inline constexpr double kKernelTcpCyclesPerByte = 1.05;

/// Optimized userspace TCP on the DPU (Section 6: the stack "must be
/// carefully optimized" to fit the weaker cores): zero-copy, no syscall,
/// hardware-assisted segmentation/checksums (IO-TCP demonstrates
/// line-rate delivery from a handful of DPU cores this way). Charged per
/// segment, rx and tx.
inline constexpr uint64_t kDpuTcpCyclesPerMsg = 1'500;
inline constexpr double kDpuTcpCyclesPerByte = 0.15;

/// Host-side cost of the NE/SE front-end library: submit into and poll
/// from a lock-free DMA-able ring (Figure 7 / Section 7).
inline constexpr uint64_t kHostRingSubmitCycles = 80;
inline constexpr uint64_t kHostRingPollCycles = 60;

/// Native RDMA issue cost on the host (Section 6, confirmed by Cowbird):
/// queue-pair spinlock + memory fences, plus a doorbell MMIO stall.
inline constexpr uint64_t kRdmaNativeIssueCycles = 450;
inline constexpr uint64_t kRdmaDoorbellStallNs = 250;
/// DPU-side cost to pop a ring entry and issue the wire op (Figure 7).
inline constexpr uint64_t kRdmaDpuIssueCycles = 220;
/// Host cost to reap one RDMA completion from a completion queue.
inline constexpr uint64_t kRdmaHostCompletionCycles = 150;

/// Per-request cost of the SE offload-engine UDF parse + dispatch on the
/// DPU (Section 7), and of the traffic director's per-packet decision.
inline constexpr uint64_t kUdfParseCycles = 800;
inline constexpr uint64_t kTrafficDirectorCyclesPerPacket = 120;

// ---------------------------------------------------------------------------
// Links and devices.
// ---------------------------------------------------------------------------

/// ConnectX-6: 100 Gbps (paper Section 3); datacenter one-way propagation.
inline constexpr double kNicBitsPerSec = 100e9;
inline constexpr uint64_t kNicPropagationNs = 2'000;
inline constexpr uint32_t kNicMtuBytes = 4096;
/// DPU packet-processing cost per packet (rx or tx) on its network cores.
inline constexpr uint64_t kNicPerPacketDpuCycles = 300;

/// PCIe 4.0 x16 effective bandwidth and one-way latency; the BF-2 carries
/// a PCIe switch with peer-to-peer access to SSDs (paper Section 3).
inline constexpr double kPcieBytesPerSec = 25e9;
inline constexpr uint64_t kPcieLatencyNs = 600;
/// DMA engine per-descriptor setup cost (DPU cycles).
inline constexpr uint64_t kDmaDescriptorCycles = 150;

/// Datacenter NVMe SSD.
inline constexpr uint64_t kSsdReadLatencyNs = 80'000;
inline constexpr uint64_t kSsdWriteLatencyNs = 20'000;  // SLC write cache
inline constexpr uint32_t kSsdQueueDepth = 96;
inline constexpr double kSsdInternalBytesPerSec = 7.0e9;

/// DPU onboard eMMC-class fast log device used by the Section 9
/// "faster persistence" design (ack once persisted on the DPU).
inline constexpr uint64_t kDpuLogDeviceWriteLatencyNs = 8'000;
inline constexpr double kDpuLogDeviceBytesPerSec = 2.0e9;

}  // namespace dpdpu::hw::cal

#endif  // DPDPU_HW_CALIBRATION_H_
