// CPU models: a CpuSpec converts reference cycles to virtual time, and a
// CpuCluster is a pool of identical cores executing submitted work FIFO.

#ifndef DPDPU_HW_CPU_H_
#define DPDPU_HW_CPU_H_

#include <cstdint>
#include <string>

#include "common/function.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace dpdpu::hw {

/// Describes a CPU: clock rate and an IPC factor relative to a 1.0-IPC
/// reference core. A job of C reference cycles takes C / (clock_hz * ipc)
/// seconds on one core.
struct CpuSpec {
  std::string name;
  uint32_t cores = 1;
  double clock_hz = 3.0e9;
  double ipc = 1.0;

  double effective_hz() const { return clock_hz * ipc; }
};

/// A pool of identical cores with a shared FIFO run queue.
class CpuCluster {
 public:
  CpuCluster(sim::Simulator* sim, CpuSpec spec)
      : spec_(std::move(spec)),
        resource_(sim, spec_.name, spec_.cores),
        sim_(sim) {}

  const CpuSpec& spec() const { return spec_; }
  sim::Simulator* simulator() const { return sim_; }

  /// Virtual time for `ref_cycles` of work on one core of this cluster.
  sim::SimTime CyclesToTime(uint64_t ref_cycles) const {
    return static_cast<sim::SimTime>(double(ref_cycles) /
                                         spec_.effective_hz() * 1e9 +
                                     0.5);
  }

  /// Virtual time for `bytes` at `cycles_per_byte` plus a fixed overhead.
  sim::SimTime WorkTime(uint64_t bytes, double cycles_per_byte,
                        uint64_t fixed_cycles = 0) const {
    return CyclesToTime(
        fixed_cycles +
        static_cast<uint64_t>(double(bytes) * cycles_per_byte + 0.5));
  }

  /// Runs `ref_cycles` of work on the next free core, then `done`.
  void Execute(uint64_t ref_cycles, UniqueFunction done) {
    resource_.Submit(CyclesToTime(ref_cycles), std::move(done));
  }

  /// Runs work specified directly as virtual time (e.g. precomputed).
  void ExecuteFor(sim::SimTime t, UniqueFunction done) {
    resource_.Submit(t, std::move(done));
  }

  /// Busy-core equivalent over [0, elapsed]: the paper's "CPU cores
  /// consumed" metric (Figures 2 and 3).
  double CoresConsumed(sim::SimTime elapsed) const {
    return resource_.BusyServerEquivalent(elapsed);
  }

  sim::Resource& resource() { return resource_; }
  const sim::Resource& resource() const { return resource_; }

 private:
  CpuSpec spec_;
  sim::Resource resource_;
  sim::Simulator* sim_;
};

}  // namespace dpdpu::hw

#endif  // DPDPU_HW_CPU_H_
