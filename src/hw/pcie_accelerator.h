// PCIe-attached datacenter accelerators (paper Section 5, last open
// challenge: "DPDPU CE can be further augmented when additional common
// data center accelerators such as FPGAs and GPUs are connected via
// PCIe... it makes sense to fuse multiple DP kernels inside the
// accelerator to minimize execution latency").
//
// Unlike the fixed-function DPU ASICs, a PCIe accelerator executes *any*
// DP kernel: its speed is modeled as a reference-cycle rate (a kernel of
// C cycles/byte streams at rate/C bytes per second), plus a kernel-launch
// latency. Data must cross the PCIe switch in and out.

#ifndef DPDPU_HW_PCIE_ACCELERATOR_H_
#define DPDPU_HW_PCIE_ACCELERATOR_H_

#include <cstdint>
#include <string>

#include "common/function.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace dpdpu::hw {

struct PcieAcceleratorSpec {
  std::string name = "gpu";
  /// Reference-cycle retire rate across the device (e.g. a GPU retiring
  /// 200 G reference cycles/s runs a 52 cyc/B kernel at ~3.8 GB/s).
  double ref_cycles_per_sec = 200e9;
  /// Kernel launch latency.
  uint64_t launch_ns = 25'000;
  /// Concurrent kernel contexts.
  uint32_t max_concurrency = 16;
  uint64_t memory_bytes = 16ull << 30;
};

class PcieAccelerator {
 public:
  PcieAccelerator(sim::Simulator* sim, PcieAcceleratorSpec spec)
      : spec_(std::move(spec)),
        contexts_(sim, spec_.name, spec_.max_concurrency) {}

  const PcieAcceleratorSpec& spec() const { return spec_; }

  /// On-device time for a job of `bytes` at `cycles_per_byte` (excluding
  /// the PCIe transfers, which the caller models on the shared switch).
  sim::SimTime JobTime(uint64_t bytes, double cycles_per_byte) const {
    return spec_.launch_ns +
           static_cast<sim::SimTime>(double(bytes) * cycles_per_byte /
                                         spec_.ref_cycles_per_sec * 1e9 +
                                     0.5);
  }

  void SubmitJob(uint64_t bytes, double cycles_per_byte,
                 UniqueFunction done) {
    contexts_.Submit(JobTime(bytes, cycles_per_byte), std::move(done));
  }

  uint64_t jobs_completed() const { return contexts_.jobs_completed(); }
  double Utilization(sim::SimTime elapsed) const {
    return contexts_.Utilization(elapsed);
  }

 private:
  PcieAcceleratorSpec spec_;
  sim::Resource contexts_;
};

}  // namespace dpdpu::hw

#endif  // DPDPU_HW_PCIE_ACCELERATOR_H_
