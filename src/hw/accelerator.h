// Hardware accelerator (ASIC) model: fixed setup latency + streaming
// throughput, with a bounded number of concurrent hardware contexts.
// Models the BlueField-2 compression / encryption / RegEx / deduplication
// engines described in the paper's Section 3.

#ifndef DPDPU_HW_ACCELERATOR_H_
#define DPDPU_HW_ACCELERATOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/function.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace dpdpu::hw {

enum class AcceleratorKind : uint8_t {
  kCompression,
  kEncryption,
  kRegex,
  kDedup,
};

std::string_view AcceleratorKindName(AcceleratorKind kind);

struct AcceleratorSpec {
  AcceleratorKind kind{};
  double bytes_per_sec = 0;
  uint64_t setup_ns = 0;
  /// Number of jobs the engine can process concurrently; further jobs
  /// queue (Section 5 notes accelerator capacities "vary greatly").
  uint32_t max_concurrency = 0;
};

/// Capacity-limited ASIC. A job of B bytes occupies one hardware context
/// for setup_ns + B / bytes_per_sec.
class Accelerator {
 public:
  Accelerator(sim::Simulator* sim, AcceleratorSpec spec)
      : spec_(spec),
        resource_(sim, std::string(AcceleratorKindName(spec.kind)) + "_asic",
                  spec.max_concurrency) {}

  const AcceleratorSpec& spec() const { return spec_; }
  AcceleratorKind kind() const { return spec_.kind; }

  sim::SimTime JobTime(uint64_t bytes) const {
    return spec_.setup_ns +
           static_cast<sim::SimTime>(double(bytes) / spec_.bytes_per_sec *
                                         1e9 +
                                     0.5);
  }

  /// Submits a `bytes`-sized job; `done` fires at completion.
  void SubmitJob(uint64_t bytes, UniqueFunction done) {
    resource_.Submit(JobTime(bytes), std::move(done));
  }

  uint64_t jobs_completed() const { return resource_.jobs_completed(); }
  double Utilization(sim::SimTime elapsed) const {
    return resource_.Utilization(elapsed);
  }
  sim::Resource& resource() { return resource_; }

 private:
  AcceleratorSpec spec_;
  sim::Resource resource_;
};

}  // namespace dpdpu::hw

#endif  // DPDPU_HW_ACCELERATOR_H_
