// NVMe SSD model: per-op access latency, internal streaming bandwidth,
// and a bounded device queue depth (parallel flash channels).

#ifndef DPDPU_HW_SSD_H_
#define DPDPU_HW_SSD_H_

#include <cstdint>
#include <string>

#include "common/function.h"
#include "sim/resource.h"
#include "sim/simrace.h"
#include "sim/simulator.h"

namespace dpdpu::hw {

struct SsdSpec {
  uint64_t read_latency_ns = 80'000;
  uint64_t write_latency_ns = 20'000;
  uint32_t queue_depth = 96;
  double internal_bytes_per_sec = 7.0e9;
};

/// Device-side timing only; data content lives in fssub::BlockDevice.
class SsdDevice {
 public:
  SsdDevice(sim::Simulator* sim, std::string name, SsdSpec spec)
      : spec_(spec), channels_(sim, std::move(name), spec.queue_depth) {}

  const SsdSpec& spec() const { return spec_; }

  sim::SimTime OpTime(bool is_write, uint64_t bytes) const {
    uint64_t lat = is_write ? spec_.write_latency_ns : spec_.read_latency_ns;
    return lat + static_cast<sim::SimTime>(
                     double(bytes) / spec_.internal_bytes_per_sec * 1e9 + 0.5);
  }

  void SubmitRead(uint64_t bytes, UniqueFunction done) {
    // Op counters commute; queue-order fairness under same-tick submits
    // is the Resource's concern (its grants carry the HB edges).
    DPDPU_SIM_ACCESS(race_tag_, "SsdDevice", /*key=*/0,
                     sim::AccessKind::kCommutativeWrite);
    ++reads_;
    channels_.Submit(OpTime(false, bytes), std::move(done));
  }

  void SubmitWrite(uint64_t bytes, UniqueFunction done) {
    DPDPU_SIM_ACCESS(race_tag_, "SsdDevice", /*key=*/0,
                     sim::AccessKind::kCommutativeWrite);
    ++writes_;
    channels_.Submit(OpTime(true, bytes), std::move(done));
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t ops_completed() const { return channels_.jobs_completed(); }
  double Utilization(sim::SimTime elapsed) const {
    return channels_.Utilization(elapsed);
  }

 private:
  SsdSpec spec_;
  sim::Resource channels_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::hw

#endif  // DPDPU_HW_SSD_H_
