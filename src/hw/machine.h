// Machine assembly: a Server is a host CPU complex plus a DPU SoC (CPU
// cluster, accelerators, NIC, PCIe switch, onboard memory) and
// PCIe-attached SSDs — the resource picture of the paper's Figures 4-5.
// Presets capture the DPU heterogeneity the paper's Challenge #3 calls
// out: BlueField-2 (has a RegEx ASIC), BlueField-3 (does not), and an
// Intel-IPU-like device (match-action offload only).

#ifndef DPDPU_HW_MACHINE_H_
#define DPDPU_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "hw/accelerator.h"
#include "hw/cpu.h"
#include "hw/link.h"
#include "hw/memory.h"
#include "hw/pcie_accelerator.h"
#include "hw/ssd.h"
#include "sim/simulator.h"

namespace dpdpu::hw {

/// DPU SoC description.
struct DpuSpec {
  std::string model;
  CpuSpec cpu;
  std::vector<AcceleratorSpec> accelerators;
  NicSpec nic;
  PcieSpec pcie;
  uint64_t memory_bytes = 16ull << 30;
  /// BF-3 style generic code offloading to NIC cores; most other DPUs only
  /// support match-action offloading (paper Section 1, Challenge #3).
  bool generic_nic_core_offload = false;
  /// Onboard fast persistent device for the Section 9 fast-persistence
  /// design; zero write latency disables it.
  uint64_t log_device_write_latency_ns = 0;
  double log_device_bytes_per_sec = 0;

  bool HasAccelerator(AcceleratorKind kind) const;
};

/// A complete storage/database server: host + DPU + SSD.
struct ServerSpec {
  std::string name = "server";
  CpuSpec host_cpu;
  uint64_t host_memory_bytes = 256ull << 30;
  DpuSpec dpu;
  SsdSpec ssd;
  /// Optional PCIe-attached GPU/FPGA-class accelerator (Section 5).
  std::optional<PcieAcceleratorSpec> pcie_accelerator;
};

/// Preset specs (constants from hw/calibration.h).
DpuSpec BlueField2Spec();
DpuSpec BlueField3Spec();
DpuSpec IntelIpuLikeSpec();
CpuSpec HostEpycSpec(uint32_t cores = 0);  // 0 = calibrated default
ServerSpec DefaultServerSpec(std::string name = "server");
ServerSpec MakeServerSpec(std::string name, DpuSpec dpu);

/// Fleet presets (src/cluster). A storage server is the default BF-2
/// machine; a compute/client node keeps the DPU NIC path but carries less
/// host memory and no fast log device — it originates requests rather
/// than serving storage.
ServerSpec StorageServerSpec(std::string name);
ServerSpec ComputeNodeSpec(std::string name);

/// Instantiated server: owns the simulation resources for one machine.
class Server {
 public:
  Server(sim::Simulator* sim, ServerSpec spec);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServerSpec& spec() const { return spec_; }
  sim::Simulator* simulator() const { return sim_; }

  CpuCluster& host_cpu() { return *host_cpu_; }
  CpuCluster& dpu_cpu() { return *dpu_cpu_; }

  /// Returns the accelerator of `kind`, or nullptr when this DPU lacks it
  /// (the heterogeneity case DP kernels must survive).
  Accelerator* accelerator(AcceleratorKind kind);

  NicPort& nic_tx() { return *nic_tx_; }
  PcieLink& pcie() { return *pcie_; }
  SsdDevice& ssd() { return *ssd_; }

  /// Onboard fast log device; nullptr when the spec disables it.
  SsdDevice* dpu_log_device() { return dpu_log_.get(); }

  /// PCIe GPU/FPGA-class accelerator; nullptr when the spec has none.
  PcieAccelerator* pcie_accelerator() { return pcie_accel_.get(); }

  MemoryPool& host_memory() { return host_memory_; }
  MemoryPool& dpu_memory() { return dpu_memory_; }

 private:
  ServerSpec spec_;
  sim::Simulator* sim_;
  std::unique_ptr<CpuCluster> host_cpu_;
  std::unique_ptr<CpuCluster> dpu_cpu_;
  std::vector<std::unique_ptr<Accelerator>> accelerators_;
  std::unique_ptr<NicPort> nic_tx_;
  std::unique_ptr<PcieLink> pcie_;
  std::unique_ptr<SsdDevice> ssd_;
  std::unique_ptr<SsdDevice> dpu_log_;
  std::unique_ptr<PcieAccelerator> pcie_accel_;
  MemoryPool host_memory_;
  MemoryPool dpu_memory_;
};

}  // namespace dpdpu::hw

#endif  // DPDPU_HW_MACHINE_H_
