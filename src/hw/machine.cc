#include "hw/machine.h"

#include "hw/calibration.h"

namespace dpdpu::hw {

std::string_view AcceleratorKindName(AcceleratorKind kind) {
  switch (kind) {
    case AcceleratorKind::kCompression:
      return "compression";
    case AcceleratorKind::kEncryption:
      return "encryption";
    case AcceleratorKind::kRegex:
      return "regex";
    case AcceleratorKind::kDedup:
      return "dedup";
  }
  return "unknown";
}

bool DpuSpec::HasAccelerator(AcceleratorKind kind) const {
  for (const auto& a : accelerators) {
    if (a.kind == kind) return true;
  }
  return false;
}

DpuSpec BlueField2Spec() {
  DpuSpec spec;
  spec.model = "BlueField-2";
  spec.cpu = CpuSpec{"bf2_arm", cal::kBf2ArmCores, cal::kBf2ArmClockHz,
                     cal::kBf2ArmIpc};
  spec.accelerators = {
      {AcceleratorKind::kCompression, cal::kBf2CompressAsicBytesPerSec,
       cal::kBf2CompressAsicSetupNs, cal::kBf2CompressAsicConcurrency},
      {AcceleratorKind::kEncryption, cal::kBf2CryptoAsicBytesPerSec,
       cal::kBf2CryptoAsicSetupNs, cal::kBf2CryptoAsicConcurrency},
      {AcceleratorKind::kRegex, cal::kBf2RegexAsicBytesPerSec,
       cal::kBf2RegexAsicSetupNs, cal::kBf2RegexAsicConcurrency},
      {AcceleratorKind::kDedup, cal::kBf2DedupAsicBytesPerSec,
       cal::kBf2DedupAsicSetupNs, cal::kBf2DedupAsicConcurrency},
  };
  spec.nic = NicSpec{cal::kNicBitsPerSec, cal::kNicPropagationNs,
                     cal::kNicMtuBytes};
  spec.pcie = PcieSpec{cal::kPcieBytesPerSec, cal::kPcieLatencyNs};
  spec.memory_bytes = cal::kBf2MemoryBytes;
  spec.generic_nic_core_offload = false;
  spec.log_device_write_latency_ns = cal::kDpuLogDeviceWriteLatencyNs;
  spec.log_device_bytes_per_sec = cal::kDpuLogDeviceBytesPerSec;
  return spec;
}

DpuSpec BlueField3Spec() {
  DpuSpec spec;
  spec.model = "BlueField-3";
  spec.cpu = CpuSpec{"bf3_arm", cal::kBf3ArmCores, cal::kBf3ArmClockHz,
                     cal::kBf3ArmIpc};
  // No RegEx engine on BlueField-3 (paper Sections 1 and 5).
  spec.accelerators = {
      {AcceleratorKind::kCompression, cal::kBf3CompressAsicBytesPerSec,
       cal::kBf2CompressAsicSetupNs, cal::kBf2CompressAsicConcurrency},
      {AcceleratorKind::kEncryption, cal::kBf3CryptoAsicBytesPerSec,
       cal::kBf2CryptoAsicSetupNs, cal::kBf2CryptoAsicConcurrency},
      {AcceleratorKind::kDedup, cal::kBf2DedupAsicBytesPerSec,
       cal::kBf2DedupAsicSetupNs, cal::kBf2DedupAsicConcurrency},
  };
  spec.nic = NicSpec{4 * cal::kNicBitsPerSec, cal::kNicPropagationNs,
                     cal::kNicMtuBytes};
  spec.pcie = PcieSpec{2 * cal::kPcieBytesPerSec, cal::kPcieLatencyNs};
  spec.memory_bytes = cal::kBf3MemoryBytes;
  spec.generic_nic_core_offload = true;
  spec.log_device_write_latency_ns = cal::kDpuLogDeviceWriteLatencyNs;
  spec.log_device_bytes_per_sec = cal::kDpuLogDeviceBytesPerSec;
  return spec;
}

DpuSpec IntelIpuLikeSpec() {
  DpuSpec spec;
  spec.model = "IPU-like";
  spec.cpu = CpuSpec{"ipu_arm", 16, 2.0e9, 0.55};
  // Crypto only; no compression, RegEx, or dedup engines exposed.
  spec.accelerators = {
      {AcceleratorKind::kEncryption, 3.0e9, cal::kBf2CryptoAsicSetupNs,
       cal::kBf2CryptoAsicConcurrency},
  };
  spec.nic = NicSpec{2 * cal::kNicBitsPerSec, cal::kNicPropagationNs,
                     cal::kNicMtuBytes};
  spec.pcie = PcieSpec{cal::kPcieBytesPerSec, cal::kPcieLatencyNs};
  spec.memory_bytes = 16ull << 30;
  spec.generic_nic_core_offload = false;
  spec.log_device_write_latency_ns = 0;  // no onboard log device
  spec.log_device_bytes_per_sec = 0;
  return spec;
}

CpuSpec HostEpycSpec(uint32_t cores) {
  return CpuSpec{"host_epyc", cores == 0 ? cal::kHostCores : cores,
                 cal::kHostClockHz, cal::kHostIpc};
}

ServerSpec DefaultServerSpec(std::string name) {
  return MakeServerSpec(std::move(name), BlueField2Spec());
}

ServerSpec StorageServerSpec(std::string name) {
  return DefaultServerSpec(std::move(name));
}

ServerSpec ComputeNodeSpec(std::string name) {
  ServerSpec spec = DefaultServerSpec(std::move(name));
  spec.host_memory_bytes = 64ull << 30;
  spec.dpu.log_device_write_latency_ns = 0;  // no fast-persistence device
  spec.dpu.log_device_bytes_per_sec = 0;
  return spec;
}

ServerSpec MakeServerSpec(std::string name, DpuSpec dpu) {
  ServerSpec spec;
  spec.name = std::move(name);
  spec.host_cpu = HostEpycSpec();
  spec.dpu = std::move(dpu);
  spec.ssd = SsdSpec{cal::kSsdReadLatencyNs, cal::kSsdWriteLatencyNs,
                     cal::kSsdQueueDepth, cal::kSsdInternalBytesPerSec};
  return spec;
}

Server::Server(sim::Simulator* sim, ServerSpec spec)
    : spec_(std::move(spec)),
      sim_(sim),
      host_memory_(spec_.name + "/host_mem", spec_.host_memory_bytes),
      dpu_memory_(spec_.name + "/dpu_mem", spec_.dpu.memory_bytes) {
  CpuSpec host = spec_.host_cpu;
  host.name = spec_.name + "/" + host.name;
  host_cpu_ = std::make_unique<CpuCluster>(sim, host);

  CpuSpec dpu = spec_.dpu.cpu;
  dpu.name = spec_.name + "/" + dpu.name;
  dpu_cpu_ = std::make_unique<CpuCluster>(sim, dpu);

  for (const auto& aspec : spec_.dpu.accelerators) {
    accelerators_.push_back(std::make_unique<Accelerator>(sim, aspec));
  }

  nic_tx_ = std::make_unique<NicPort>(sim, spec_.name + "/nic", spec_.dpu.nic);
  pcie_ = std::make_unique<PcieLink>(sim, spec_.name + "/pcie",
                                     spec_.dpu.pcie);
  ssd_ = std::make_unique<SsdDevice>(sim, spec_.name + "/ssd", spec_.ssd);

  if (spec_.pcie_accelerator.has_value()) {
    pcie_accel_ = std::make_unique<PcieAccelerator>(
        sim, *spec_.pcie_accelerator);
  }

  if (spec_.dpu.log_device_write_latency_ns > 0) {
    SsdSpec log_spec;
    log_spec.read_latency_ns = spec_.dpu.log_device_write_latency_ns;
    log_spec.write_latency_ns = spec_.dpu.log_device_write_latency_ns;
    log_spec.queue_depth = 8;
    log_spec.internal_bytes_per_sec = spec_.dpu.log_device_bytes_per_sec;
    dpu_log_ = std::make_unique<SsdDevice>(sim, spec_.name + "/dpu_log",
                                           log_spec);
  }
}

Accelerator* Server::accelerator(AcceleratorKind kind) {
  for (auto& a : accelerators_) {
    if (a->kind() == kind) return a.get();
  }
  return nullptr;
}

}  // namespace dpdpu::hw
