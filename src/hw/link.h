// Link models: NIC ports (serialization + propagation) and PCIe links
// (DMA transfers, including the peer-to-peer SSD path of the paper's
// Figure 8).

#ifndef DPDPU_HW_LINK_H_
#define DPDPU_HW_LINK_H_

#include <cstdint>
#include <string>

#include "common/function.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace dpdpu::hw {

struct NicSpec {
  double bits_per_sec = 100e9;
  uint64_t propagation_ns = 2'000;
  uint32_t mtu_bytes = 4096;
};

/// One direction of a NIC port: frames serialize onto the wire one at a
/// time, then arrive after the propagation delay.
class NicPort {
 public:
  NicPort(sim::Simulator* sim, std::string name, NicSpec spec)
      : spec_(spec), sim_(sim), wire_(sim, std::move(name), 1) {}

  const NicSpec& spec() const { return spec_; }

  sim::SimTime SerializationTime(uint64_t bytes) const {
    return static_cast<sim::SimTime>(double(bytes) * 8.0 /
                                         spec_.bits_per_sec * 1e9 +
                                     0.5);
  }

  /// Transmits `bytes`; `delivered` fires when the last bit lands at the
  /// far end (serialization + propagation).
  void Transmit(uint64_t bytes, UniqueFunction delivered) {
    bytes_sent_ += bytes;
    ++frames_sent_;
    wire_.Submit(SerializationTime(bytes),
                 [this, cb = std::move(delivered)]() mutable {
                   sim_->Schedule(spec_.propagation_ns, std::move(cb));
                 });
  }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t frames_sent() const { return frames_sent_; }
  double Utilization(sim::SimTime elapsed) const {
    return wire_.Utilization(elapsed);
  }

 private:
  NicSpec spec_;
  sim::Simulator* sim_;
  sim::Resource wire_;
  uint64_t bytes_sent_ = 0;
  uint64_t frames_sent_ = 0;
};

struct PcieSpec {
  double bytes_per_sec = 25e9;
  uint64_t latency_ns = 600;
};

/// A PCIe link carrying DMA transfers: serialization at link bandwidth
/// plus a fixed one-way latency.
class PcieLink {
 public:
  PcieLink(sim::Simulator* sim, std::string name, PcieSpec spec)
      : spec_(spec), sim_(sim), lane_(sim, std::move(name), 1) {}

  const PcieSpec& spec() const { return spec_; }

  sim::SimTime TransferTime(uint64_t bytes) const {
    return static_cast<sim::SimTime>(double(bytes) / spec_.bytes_per_sec *
                                         1e9 +
                                     0.5);
  }

  /// Moves `bytes` across the link; `done` fires when the transfer lands.
  void Dma(uint64_t bytes, UniqueFunction done) {
    bytes_moved_ += bytes;
    ++transfers_;
    lane_.Submit(TransferTime(bytes),
                 [this, cb = std::move(done)]() mutable {
                   sim_->Schedule(spec_.latency_ns, std::move(cb));
                 });
  }

  uint64_t bytes_moved() const { return bytes_moved_; }
  uint64_t transfers() const { return transfers_; }

 private:
  PcieSpec spec_;
  sim::Simulator* sim_;
  sim::Resource lane_;
  uint64_t bytes_moved_ = 0;
  uint64_t transfers_ = 0;
};

}  // namespace dpdpu::hw

#endif  // DPDPU_HW_LINK_H_
