// Memory capacity accounting. The paper's Section 7 stresses that DPU
// memory (16 GB on BF-2) is an order of magnitude too small for some
// offloads; MemoryPool makes that constraint explicit so the Storage
// Engine's partial-offload policy has something real to push against.

#ifndef DPDPU_HW_MEMORY_H_
#define DPDPU_HW_MEMORY_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dpdpu::hw {

/// Tracks allocated bytes against a fixed capacity.
class MemoryPool {
 public:
  MemoryPool(std::string name, uint64_t capacity_bytes)
      : name_(std::move(name)), capacity_(capacity_bytes) {}

  const std::string& name() const { return name_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  uint64_t available() const { return capacity_ - used_; }
  uint64_t peak_used() const { return peak_used_; }

  /// Reserves `bytes`; fails with ResourceExhausted when it does not fit.
  Status Allocate(uint64_t bytes) {
    if (bytes > available()) {
      return Status::ResourceExhausted(name_ + ": out of memory");
    }
    used_ += bytes;
    if (used_ > peak_used_) peak_used_ = used_;
    return Status::Ok();
  }

  void Free(uint64_t bytes) {
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }

 private:
  std::string name_;
  uint64_t capacity_;
  uint64_t used_ = 0;
  uint64_t peak_used_ = 0;
};

}  // namespace dpdpu::hw

#endif  // DPDPU_HW_MEMORY_H_
