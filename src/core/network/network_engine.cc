#include "core/network/network_engine.h"

#include "hw/calibration.h"

namespace dpdpu::ne {

namespace cal = hw::cal;

// ---------------------------------------------------------------------------
// NeSocket.
// ---------------------------------------------------------------------------

NeSocket::NeSocket(NetworkEngine* engine, netsub::TcpConnection* conn)
    : engine_(engine), conn_(conn) {}

void NeSocket::Send(ByteSpan data) {
  DPDPU_SIM_ACCESS(race_tag_, "NeSocket", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  bytes_sent_ += data.size();
  engine_->SubmitSend(this, Buffer(data.data(), data.size()));
}

void NeSocket::SetReceiveCallback(ReceiveCallback cb) {
  on_receive_ = std::move(cb);
}

void NeSocket::Close() { conn_->Close(); }

void NeSocket::WireReceivePath() {
  conn_->SetCloseCallback([this] {
    if (on_close_) on_close_();
  });
  conn_->SetReceiveCallback([this](ByteSpan data) {
    bytes_received_ += data.size();
    if (landing_ == SocketLanding::kDpu) {
      // DPU endpoint: the data is already where the consumer runs.
      if (on_receive_) on_receive_(data);
      return;
    }
    if (engine_->tcp_mode() == TcpMode::kHostKernel) {
      // Kernel path: data is already in host memory; deliver directly
      // (per-segment CPU was charged by the segment hook).
      if (on_receive_) on_receive_(data);
      return;
    }
    DeliverToHost(Buffer(data.data(), data.size()));
  });
}

void NeSocket::DeliverToHost(Buffer data) {
  DPDPU_SIM_ACCESS(race_tag_, "NeSocket", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  // Offload path: the payload DMAs from DPU memory into the host ring;
  // the host application pays only the ring poll.
  size_t bytes = data.size();
  ring_occupancy_bytes_ += bytes;
  // Flow-control co-design: shrink the advertised window when the
  // host-bound ring is running hot, restore when it drains.
  uint32_t ring_capacity = engine_->options().host_rx_ring_bytes;
  if (!window_shrunk_ && ring_occupancy_bytes_ > ring_capacity * 3 / 4) {
    conn_->SetReceiveWindow(engine_->options().tcp_config.mss);
    window_shrunk_ = true;
  }
  hw::Server& server = engine_->server();
  server.pcie().Dma(bytes, [this, data = std::move(data)]() mutable {
    hw::Server& server = engine_->server();
    server.host_cpu().Execute(
        cal::kHostRingPollCycles, [this, data = std::move(data)]() mutable {
          HostConsumed(data.size());
          if (on_receive_) on_receive_(data.span());
        });
  });
}

void NeSocket::HostConsumed(size_t bytes) {
  DPDPU_SIM_ACCESS(race_tag_, "NeSocket", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  ring_occupancy_bytes_ -= std::min<uint32_t>(ring_occupancy_bytes_,
                                              uint32_t(bytes));
  uint32_t ring_capacity = engine_->options().host_rx_ring_bytes;
  if (window_shrunk_ && ring_occupancy_bytes_ < ring_capacity / 4) {
    conn_->SetReceiveWindow(engine_->options().tcp_config.rwnd_bytes);
    window_shrunk_ = false;
  }
}

// ---------------------------------------------------------------------------
// NetworkEngine.
// ---------------------------------------------------------------------------

NetworkEngine::NetworkEngine(hw::Server* server, netsub::Network* network,
                             netsub::NodeId node,
                             NetworkEngineOptions options)
    : server_(server), network_(network), node_(node), options_(options) {
  tcp_ = std::make_unique<netsub::TcpStack>(server->simulator(), network,
                                            node, options_.tcp_config);
  tcp_->SetSegmentHook(
      [this](size_t bytes, bool rx) { ChargeSegment(bytes, rx); });
  rdma_nic_ = std::make_unique<netsub::RdmaNic>(server->simulator(),
                                                network, node);
}

void NetworkEngine::ChargeSegment(size_t wire_bytes, bool rx) {
  (void)rx;
  // Header-only segments (pure ACKs, window updates) cost a fraction of
  // a data segment: no payload copy, no reassembly, just header
  // processing.
  bool header_only = wire_bytes < 256;
  if (options_.tcp_mode == TcpMode::kHostKernel) {
    // Traditional stack: every segment costs host cycles (Figure 3).
    uint64_t cycles =
        header_only ? cal::kKernelTcpCyclesPerMsg / 4
                    : cal::kKernelTcpCyclesPerMsg +
                          uint64_t(double(wire_bytes) *
                                   cal::kKernelTcpCyclesPerByte);
    server_->host_cpu().Execute(cycles, UniqueFunction([] {}));
  } else {
    // Offloaded stack: segments cost DPU cycles, at the optimized
    // userspace rate (plus NIC packet processing).
    uint64_t cycles =
        header_only ? (cal::kDpuTcpCyclesPerMsg +
                       cal::kNicPerPacketDpuCycles) / 4
                    : cal::kDpuTcpCyclesPerMsg +
                          cal::kNicPerPacketDpuCycles +
                          uint64_t(double(wire_bytes) *
                                   cal::kDpuTcpCyclesPerByte);
    server_->dpu_cpu().Execute(cycles, UniqueFunction([] {}));
  }
}

void NetworkEngine::SubmitSend(NeSocket* socket, Buffer data) {
  if (socket->landing() == SocketLanding::kDpu) {
    // DPU endpoint: hand straight to the DPU-resident stack.
    socket->connection()->Send(data.span());
    return;
  }
  if (options_.tcp_mode == TcpMode::kHostKernel) {
    // Kernel path: Send syscall cost is folded into the per-segment
    // charge; hand the bytes straight to the stack.
    socket->connection()->Send(data.span());
    return;
  }
  // Offload path: host ring submit, then DMA the payload to DPU memory,
  // then the DPU-side stack takes over.
  server_->host_cpu().Execute(cal::kHostRingSubmitCycles,
                              UniqueFunction([] {}));
  size_t bytes = data.size();
  server_->pcie().Dma(bytes, [socket, data = std::move(data)]() mutable {
    socket->connection()->Send(data.span());
  });
}

NeSocket* NetworkEngine::WrapConnection(netsub::TcpConnection* conn) {
  auto socket = std::unique_ptr<NeSocket>(new NeSocket(this, conn));
  NeSocket* raw = socket.get();
  raw->WireReceivePath();
  sockets_.push_back(std::move(socket));
  return raw;
}

NeSocket* NetworkEngine::Connect(netsub::NodeId remote, uint16_t port) {
  return WrapConnection(tcp_->Connect(remote, port));
}

void NetworkEngine::Listen(uint16_t port,
                           std::function<void(NeSocket*)> on_accept) {
  tcp_->Listen(port, [this, on_accept = std::move(on_accept)](
                         netsub::TcpConnection* conn) {
    on_accept(WrapConnection(conn));
  });
}

void NetworkEngine::OnPacket(netsub::Packet packet) {
  switch (packet.kind) {
    case netsub::kPacketKindTcp:
      tcp_->OnPacket(std::move(packet));
      break;
    case netsub::kPacketKindRdma:
      rdma_nic_->OnPacket(std::move(packet));
      break;
    default:
      break;  // unknown protocol: drop
  }
}

std::unique_ptr<RdmaEndpoint> NetworkEngine::CreateRdmaEndpoint(
    RdmaPath path, netsub::QueuePair* qp) {
  if (path == RdmaPath::kNative) {
    return std::make_unique<NativeRdmaEndpoint>(server_, qp);
  }
  return std::make_unique<OffloadedRdmaEndpoint>(server_, qp);
}

}  // namespace dpdpu::ne
