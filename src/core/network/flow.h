// DFI-style data flows (paper Section 6: "DFI's interface and its RDMA
// execution can be decoupled such that data systems running on the host
// still send records to remote machines using the flow interface").
// Records are length-framed, batched on the host side, and carried over
// an NE socket — so the host pays ring-submit costs while the DPU runs
// the protocol.

#ifndef DPDPU_CORE_NETWORK_FLOW_H_
#define DPDPU_CORE_NETWORK_FLOW_H_

#include <cstdint>
#include <functional>

#include "common/buffer.h"
#include "core/network/network_engine.h"

namespace dpdpu::ne {

/// Sending half: batches records and pushes them through the NE.
class FlowWriter {
 public:
  /// Batches flush automatically at `batch_bytes`.
  FlowWriter(NeSocket* socket, size_t batch_bytes = 64 * 1024)
      : socket_(socket), batch_bytes_(batch_bytes) {}

  /// Appends one record to the flow (thread-centric pipelined push).
  void Push(ByteSpan record);

  /// Sends any buffered records now.
  void Flush();

  uint64_t records_pushed() const { return records_; }
  uint64_t batches_sent() const { return batches_; }

 private:
  NeSocket* socket_;
  size_t batch_bytes_;
  Buffer pending_;
  uint64_t records_ = 0;
  uint64_t batches_ = 0;
  /// Same-tick pushes from different completion contexts only permute
  /// batch boundaries, never record bytes — commutative.
  sim::RaceTag race_tag_;
};

/// Receiving half: reassembles length-framed records from the stream.
class FlowReader {
 public:
  using RecordCallback = std::function<void(ByteSpan)>;

  explicit FlowReader(NeSocket* socket, RecordCallback on_record);

  uint64_t records_received() const { return records_; }

 private:
  void OnBytes(ByteSpan data);

  Buffer pending_;
  RecordCallback on_record_;
  uint64_t records_ = 0;
};

}  // namespace dpdpu::ne

#endif  // DPDPU_CORE_NETWORK_FLOW_H_
