#include "core/network/flow.h"

namespace dpdpu::ne {

void FlowWriter::Push(ByteSpan record) {
  DPDPU_SIM_ACCESS(race_tag_, "FlowWriter", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  pending_.AppendU32(static_cast<uint32_t>(record.size()));
  pending_.Append(record);
  ++records_;
  if (pending_.size() >= batch_bytes_) Flush();
}

void FlowWriter::Flush() {
  DPDPU_SIM_ACCESS(race_tag_, "FlowWriter", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  if (pending_.empty()) return;
  socket_->Send(pending_.span());
  pending_.clear();
  ++batches_;
}

FlowReader::FlowReader(NeSocket* socket, RecordCallback on_record)
    : on_record_(std::move(on_record)) {
  socket->SetReceiveCallback([this](ByteSpan data) { OnBytes(data); });
}

void FlowReader::OnBytes(ByteSpan data) {
  pending_.Append(data);
  size_t consumed = 0;
  for (;;) {
    ByteReader r(pending_.span().subspan(consumed));
    uint32_t len;
    if (!r.ReadU32(&len)) break;
    ByteSpan record;
    if (!r.ReadSpan(len, &record)) break;
    ++records_;
    on_record_(record);
    consumed += 4 + len;
  }
  if (consumed > 0) {
    pending_ = Buffer(pending_.data() + consumed,
                      pending_.size() - consumed);
  }
}

}  // namespace dpdpu::ne
