#include "core/network/rdma_offload.h"

#include "hw/calibration.h"

namespace dpdpu::ne {

namespace cal = hw::cal;

// ---------------------------------------------------------------------------
// NativeRdmaEndpoint.
// ---------------------------------------------------------------------------

void NativeRdmaEndpoint::ChargeIssue() {
  // Lock + fences + WQE build, then the doorbell MMIO stall: the core is
  // occupied for both (Section 6: "CPU stalls can also happen when
  // ringing the doorbell register").
  sim::SimTime t =
      server_->host_cpu().CyclesToTime(cal::kRdmaNativeIssueCycles) +
      cal::kRdmaDoorbellStallNs;
  server_->host_cpu().ExecuteFor(t, UniqueFunction([] {}));
}

Status NativeRdmaEndpoint::Read(uint64_t wr_id, netsub::MrKey local,
                                size_t loff, netsub::MrKey remote,
                                size_t roff, size_t len) {
  ChargeIssue();
  return qp_->PostRead(wr_id, local, loff, remote, roff, len);
}

Status NativeRdmaEndpoint::Write(uint64_t wr_id, netsub::MrKey local,
                                 size_t loff, netsub::MrKey remote,
                                 size_t roff, size_t len) {
  ChargeIssue();
  return qp_->PostWrite(wr_id, local, loff, remote, roff, len);
}

Status NativeRdmaEndpoint::Send(uint64_t wr_id, ByteSpan data) {
  ChargeIssue();
  return qp_->PostSend(wr_id, data);
}

Status NativeRdmaEndpoint::Recv(uint64_t wr_id, netsub::MrKey local,
                                size_t loff, size_t capacity) {
  ChargeIssue();
  return qp_->PostRecv(wr_id, local, loff, capacity);
}

bool NativeRdmaEndpoint::PollCompletion(netsub::RdmaCompletion* out) {
  if (!qp_->cq().Poll(out)) return false;
  server_->host_cpu().Execute(cal::kRdmaHostCompletionCycles,
                              UniqueFunction([] {}));
  return true;
}

// ---------------------------------------------------------------------------
// OffloadedRdmaEndpoint.
// ---------------------------------------------------------------------------

void OffloadedRdmaEndpoint::SubmitThroughRing(UniqueFunction post) {
  // Host: lock-free ring write only.
  server_->host_cpu().Execute(cal::kHostRingSubmitCycles,
                              UniqueFunction([] {}));
  // DPU DMA engine polls the ring: one PCIe crossing to see the entry,
  // then a DPU core builds and issues the wire op.
  sim::Simulator* sim = server_->simulator();
  // simlint:allow(R6): endpoint outlives the drained event heap
  sim->Schedule(server_->pcie().spec().latency_ns,
                [this, post = std::move(post)]() mutable {
                  server_->dpu_cpu().Execute(cal::kRdmaDpuIssueCycles,
                                             std::move(post));
                });
}

Status OffloadedRdmaEndpoint::Read(uint64_t wr_id, netsub::MrKey local,
                                   size_t loff, netsub::MrKey remote,
                                   size_t roff, size_t len) {
  SubmitThroughRing([this, wr_id, local, loff, remote, roff, len] {
    Status s = qp_->PostRead(wr_id, local, loff, remote, roff, len);
    if (!s.ok()) {
      PushCompletion(netsub::RdmaCompletion{
          netsub::RdmaCompletion::OpType::kRead, wr_id, 0, false});
    }
  });
  return Status::Ok();
}

Status OffloadedRdmaEndpoint::Write(uint64_t wr_id, netsub::MrKey local,
                                    size_t loff, netsub::MrKey remote,
                                    size_t roff, size_t len) {
  SubmitThroughRing([this, wr_id, local, loff, remote, roff, len] {
    Status s = qp_->PostWrite(wr_id, local, loff, remote, roff, len);
    if (!s.ok()) {
      PushCompletion(netsub::RdmaCompletion{
          netsub::RdmaCompletion::OpType::kWrite, wr_id, 0, false});
    }
  });
  return Status::Ok();
}

Status OffloadedRdmaEndpoint::Send(uint64_t wr_id, ByteSpan data) {
  SubmitThroughRing(
      [this, wr_id, data = Buffer(data.data(), data.size())] {
        Status s = qp_->PostSend(wr_id, data.span());
        if (!s.ok()) {
          PushCompletion(netsub::RdmaCompletion{
              netsub::RdmaCompletion::OpType::kSend, wr_id, 0, false});
        }
      });
  return Status::Ok();
}

Status OffloadedRdmaEndpoint::Recv(uint64_t wr_id, netsub::MrKey local,
                                   size_t loff, size_t capacity) {
  SubmitThroughRing([this, wr_id, local, loff, capacity] {
    Status s = qp_->PostRecv(wr_id, local, loff, capacity);
    if (!s.ok()) {
      // Same convention as Send: surface the device-side post failure as
      // a failed completion instead of dropping it on the floor.
      PushCompletion(netsub::RdmaCompletion{
          netsub::RdmaCompletion::OpType::kRecv, wr_id, 0, false});
    }
  });
  return Status::Ok();
}

void OffloadedRdmaEndpoint::DrainDeviceCompletions() {
  // The DPU moves completions into the host-visible ring: one PCIe
  // crossing; the entry is then reaped by the host poll loop.
  netsub::RdmaCompletion c;
  while (qp_->cq().Poll(&c)) {
    // simlint:allow(R6): endpoint outlives the drained event heap
    server_->simulator()->Schedule(server_->pcie().spec().latency_ns,
                                   [this, c] { PushCompletion(c); });
  }
}

void OffloadedRdmaEndpoint::PushCompletion(netsub::RdmaCompletion c) {
  DPDPU_SIM_ACCESS(race_tag_, "OffloadedRdmaEndpoint", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  host_completions_.push_back(c);
  if (notify_) notify_();
}

bool OffloadedRdmaEndpoint::PollCompletion(netsub::RdmaCompletion* out) {
  if (host_completions_.empty()) return false;
  DPDPU_SIM_ACCESS(race_tag_, "OffloadedRdmaEndpoint", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  *out = host_completions_.front();
  host_completions_.pop_front();
  server_->host_cpu().Execute(cal::kHostRingPollCycles,
                              UniqueFunction([] {}));
  return true;
}

}  // namespace dpdpu::ne
