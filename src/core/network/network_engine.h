// The DPDPU Network Engine (paper Section 6): moves protocol execution to
// the DPU behind light-weight host front-ends. Two protocol paths:
//
//  * TCP — either the traditional host kernel stack (the Figure 3
//    baseline, charged at kernel-TCP cost on host cores) or the offloaded
//    stack: the host submits into a lock-free ring (kHostRingSubmitCycles),
//    payload DMAs to the DPU, and MiniTCP runs on DPU cores at the
//    optimized userspace cost. Flow control is co-designed: when the
//    host-bound delivery ring backs up, the NE shrinks the advertised TCP
//    window ("reflect the signals from host applications").
//
//  * RDMA — see rdma_offload.h (Figure 7).

#ifndef DPDPU_CORE_NETWORK_NETWORK_ENGINE_H_
#define DPDPU_CORE_NETWORK_NETWORK_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "core/network/rdma_offload.h"
#include "hw/machine.h"
#include "netsub/minitcp.h"
#include "netsub/network.h"
#include "netsub/rdma.h"

namespace dpdpu::ne {

/// Which TCP data path this engine models.
enum class TcpMode : uint8_t {
  kHostKernel,  // Figure 3 baseline: kernel stack on host cores
  kDpuOffload,  // Section 6 design: stack on DPU cores, rings to the host
};

struct NetworkEngineOptions {
  TcpMode tcp_mode = TcpMode::kDpuOffload;
  /// Capacity (bytes) of the host-bound delivery ring per socket; when
  /// occupancy crosses 3/4 the advertised TCP window shrinks.
  uint32_t host_rx_ring_bytes = 1 << 20;
  netsub::TcpConfig tcp_config;
};

class NetworkEngine;

/// Host-facing socket ("the front end of popular networking approaches").
/// API mirrors an asynchronous POSIX socket.
/// Where a socket's application endpoint lives. Host endpoints pay the
/// ring-submit / DMA / ring-poll costs of the host<->DPU boundary; DPU
/// endpoints (e.g. the Storage Engine's offload path, which serves
/// requests "immediately on the DPU without involving the host") do not.
enum class SocketLanding : uint8_t { kHost, kDpu };

class NeSocket {
 public:
  using ReceiveCallback = std::function<void(ByteSpan)>;
  using CloseCallback = std::function<void()>;

  /// Queues bytes for transmission. Host-side cost depends on the mode
  /// and landing.
  void Send(ByteSpan data);

  /// In-order delivery to the host application.
  void SetReceiveCallback(ReceiveCallback cb);

  /// Fires when the underlying connection closes or aborts (e.g. the
  /// MiniTCP retransmission cap reaping a connection to a dark node).
  /// Clients use this to fail outstanding requests immediately instead
  /// of waiting for an application-level timeout.
  void SetCloseCallback(CloseCallback cb) { on_close_ = std::move(cb); }

  /// Declares where this socket's endpoint runs (default: host).
  void SetLanding(SocketLanding landing) { landing_ = landing; }
  SocketLanding landing() const { return landing_; }

  void Close();
  bool established() const { return conn_->established(); }
  bool closed() const { return conn_->closed(); }
  netsub::TcpConnection* connection() { return conn_; }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class NetworkEngine;

  NeSocket(NetworkEngine* engine, netsub::TcpConnection* conn);
  void WireReceivePath();
  void DeliverToHost(Buffer data);
  void HostConsumed(size_t bytes);

  NetworkEngine* engine_;
  netsub::TcpConnection* conn_;
  SocketLanding landing_ = SocketLanding::kHost;
  ReceiveCallback on_receive_;
  CloseCallback on_close_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  // Host-bound delivery accounting (ring occupancy drives flow control).
  uint32_t ring_occupancy_bytes_ = 0;
  bool window_shrunk_ = false;
  /// Ring occupancy is bumped by DPU-side delivery and drained by host
  /// poll completions; both commutative — the shrink/restore hysteresis
  /// band tolerates transient interleavings of +/- at one timestamp.
  sim::RaceTag race_tag_;
};

class NetworkEngine {
 public:
  NetworkEngine(hw::Server* server, netsub::Network* network,
                netsub::NodeId node, NetworkEngineOptions options = {});

  NetworkEngine(const NetworkEngine&) = delete;
  NetworkEngine& operator=(const NetworkEngine&) = delete;

  netsub::NodeId node() const { return node_; }
  hw::Server& server() { return *server_; }
  TcpMode tcp_mode() const { return options_.tcp_mode; }
  sim::Simulator* simulator() const { return server_->simulator(); }

  /// Packet entry point; the Platform attaches this to the fabric.
  void OnPacket(netsub::Packet packet);

  // --- TCP front-end -------------------------------------------------------

  NeSocket* Connect(netsub::NodeId remote, uint16_t port);
  void Listen(uint16_t port, std::function<void(NeSocket*)> on_accept);

  // --- RDMA ---------------------------------------------------------------

  netsub::RdmaNic& rdma_nic() { return *rdma_nic_; }

  /// Creates an endpoint issuing through the given path (Figure 7).
  std::unique_ptr<RdmaEndpoint> CreateRdmaEndpoint(RdmaPath path,
                                                   netsub::QueuePair* qp);

  const NetworkEngineOptions& options() const { return options_; }

 private:
  friend class NeSocket;

  NeSocket* WrapConnection(netsub::TcpConnection* conn);
  // Per-segment CPU cost charging (mode-dependent).
  void ChargeSegment(size_t wire_bytes, bool rx);
  // Host-side send path cost + data movement, then the DPU-side send.
  void SubmitSend(NeSocket* socket, Buffer data);

  hw::Server* server_;
  netsub::Network* network_;
  netsub::NodeId node_;
  NetworkEngineOptions options_;
  std::unique_ptr<netsub::TcpStack> tcp_;
  std::unique_ptr<netsub::RdmaNic> rdma_nic_;
  std::vector<std::unique_ptr<NeSocket>> sockets_;
};

}  // namespace dpdpu::ne

#endif  // DPDPU_CORE_NETWORK_NETWORK_ENGINE_H_
