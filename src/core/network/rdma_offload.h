// RDMA issue paths (paper Figure 7). Both endpoints drive the same
// netsub::QueuePair verbs; they differ in who spends which cycles:
//
//  * NativeRdmaEndpoint — the host issues directly: queue-pair spinlock +
//    memory fences (kRdmaNativeIssueCycles) plus a doorbell MMIO stall
//    (kRdmaDoorbellStallNs) on a host core per op.
//
//  * OffloadedRdmaEndpoint — the host writes a descriptor into a
//    lock-free DMA-able ring (kHostRingSubmitCycles); the NE on the DPU
//    polls the ring over PCIe and issues the wire op from a DPU core
//    (kRdmaDpuIssueCycles). Completions travel back through a host-visible
//    ring (PCIe latency + kHostRingPollCycles at reap time).

#ifndef DPDPU_CORE_NETWORK_RDMA_OFFLOAD_H_
#define DPDPU_CORE_NETWORK_RDMA_OFFLOAD_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "common/result.h"
#include "hw/machine.h"
#include "netsub/rdma.h"

namespace dpdpu::ne {

enum class RdmaPath : uint8_t { kNative, kDpuOffloaded };

/// Uniform async RDMA issue interface over either path.
class RdmaEndpoint {
 public:
  virtual ~RdmaEndpoint() = default;

  virtual Status Read(uint64_t wr_id, netsub::MrKey local, size_t loff,
                      netsub::MrKey remote, size_t roff, size_t len) = 0;
  virtual Status Write(uint64_t wr_id, netsub::MrKey local, size_t loff,
                       netsub::MrKey remote, size_t roff, size_t len) = 0;
  virtual Status Send(uint64_t wr_id, ByteSpan data) = 0;
  virtual Status Recv(uint64_t wr_id, netsub::MrKey local, size_t loff,
                      size_t capacity) = 0;

  /// Non-blocking completion reap (host-side cost charged per poll that
  /// returns an entry).
  virtual bool PollCompletion(netsub::RdmaCompletion* out) = 0;

  /// Event hook: fires when a completion becomes reapable (so consumers
  /// need not spin-poll inside the simulation).
  virtual void SetCompletionNotify(std::function<void()> notify) = 0;

  virtual RdmaPath path() const = 0;
};

/// Host-issued RDMA (the baseline Figure 7 replaces).
class NativeRdmaEndpoint final : public RdmaEndpoint {
 public:
  NativeRdmaEndpoint(hw::Server* server, netsub::QueuePair* qp)
      : server_(server), qp_(qp) {}

  Status Read(uint64_t wr_id, netsub::MrKey local, size_t loff,
              netsub::MrKey remote, size_t roff, size_t len) override;
  Status Write(uint64_t wr_id, netsub::MrKey local, size_t loff,
               netsub::MrKey remote, size_t roff, size_t len) override;
  Status Send(uint64_t wr_id, ByteSpan data) override;
  Status Recv(uint64_t wr_id, netsub::MrKey local, size_t loff,
              size_t capacity) override;
  bool PollCompletion(netsub::RdmaCompletion* out) override;
  void SetCompletionNotify(std::function<void()> notify) override {
    qp_->cq().SetNotify(std::move(notify));
  }
  RdmaPath path() const override { return RdmaPath::kNative; }

 private:
  void ChargeIssue();

  hw::Server* server_;
  netsub::QueuePair* qp_;
};

/// DPU-offloaded issue path (the Figure 7 design).
class OffloadedRdmaEndpoint final : public RdmaEndpoint {
 public:
  OffloadedRdmaEndpoint(hw::Server* server, netsub::QueuePair* qp)
      : server_(server), qp_(qp) {
    // Completions are staged into the host-visible ring as they arrive.
    qp_->cq().SetNotify([this] { DrainDeviceCompletions(); });
  }

  Status Read(uint64_t wr_id, netsub::MrKey local, size_t loff,
              netsub::MrKey remote, size_t roff, size_t len) override;
  Status Write(uint64_t wr_id, netsub::MrKey local, size_t loff,
               netsub::MrKey remote, size_t roff, size_t len) override;
  Status Send(uint64_t wr_id, ByteSpan data) override;
  Status Recv(uint64_t wr_id, netsub::MrKey local, size_t loff,
              size_t capacity) override;
  bool PollCompletion(netsub::RdmaCompletion* out) override;
  void SetCompletionNotify(std::function<void()> notify) override {
    notify_ = std::move(notify);
  }
  RdmaPath path() const override { return RdmaPath::kDpuOffloaded; }

 private:
  /// Host ring submit + DPU DMA-poll + DPU issue, then `post` on the QP.
  void SubmitThroughRing(UniqueFunction post);
  void DrainDeviceCompletions();
  /// Single producer-side door into host_completions_ — every stage
  /// (device-post failure, DMA'ed-back completion) lands here so the
  /// ring's race annotation lives in exactly one place.
  void PushCompletion(netsub::RdmaCompletion c);

  hw::Server* server_;
  netsub::QueuePair* qp_;
  /// Host-visible completion ring (entries already DMA'ed back).
  std::deque<netsub::RdmaCompletion> host_completions_;
  std::function<void()> notify_;
  /// Pushes arrive from independent DMA events, pops from the host poll
  /// loop; wr_ids make entries order-free for consumers, so the deque
  /// motion commutes.
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::ne

#endif  // DPDPU_CORE_NETWORK_RDMA_OFFLOAD_H_
