// DFI-style flows over RDMA (paper Section 6: "DFI's interface and its
// RDMA execution can be decoupled such that data systems running on the
// host still send records to remote machines using the flow interface.
// These requests are cached on the host memory and then moved to the DPU
// for further data flow processing" — i.e. host-managed staging buffers,
// DPU-managed RDMA execution).
//
// RdmaFlowWriter batches records in host memory and ships each batch as
// one two-sided SEND through an RdmaEndpoint (the offloaded endpoint
// gives the Figure 7 host-cost profile). RdmaFlowReader pre-posts
// receive slots in a registered memory region, reassembles records, and
// reposts slots as they drain.

#ifndef DPDPU_CORE_NETWORK_RDMA_FLOW_H_
#define DPDPU_CORE_NETWORK_RDMA_FLOW_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/buffer.h"
#include "core/network/rdma_offload.h"
#include "netsub/rdma.h"

namespace dpdpu::ne {

class RdmaFlowWriter {
 public:
  explicit RdmaFlowWriter(RdmaEndpoint* endpoint,
                          size_t batch_bytes = 64 * 1024)
      : endpoint_(endpoint), batch_bytes_(batch_bytes) {}

  /// Appends one length-framed record to the current batch.
  Status Push(ByteSpan record);

  /// Ships the pending batch now.
  Status Flush();

  uint64_t records_pushed() const { return records_; }
  uint64_t batches_sent() const { return batches_; }

 private:
  RdmaEndpoint* endpoint_;
  size_t batch_bytes_;
  Buffer pending_;
  uint64_t records_ = 0;
  uint64_t batches_ = 0;
  uint64_t next_wr_ = 1;
  /// See FlowWriter: batching state, commutative by construction.
  sim::RaceTag race_tag_;
};

class RdmaFlowReader {
 public:
  using RecordCallback = std::function<void(ByteSpan)>;

  /// Registers `slots` receive buffers of `slot_bytes` each on `nic` and
  /// pre-posts them on `endpoint`.
  RdmaFlowReader(RdmaEndpoint* endpoint, netsub::RdmaNic* nic,
                 size_t slots, size_t slot_bytes, RecordCallback on_record);

  uint64_t records_received() const { return records_; }
  uint64_t batches_received() const { return batches_; }

 private:
  void DrainCompletions();
  void ConsumeBatch(ByteSpan batch);

  RdmaEndpoint* endpoint_;
  netsub::RdmaNic* nic_;
  netsub::MrKey region_;
  size_t slot_bytes_;
  RecordCallback on_record_;
  uint64_t records_ = 0;
  uint64_t batches_ = 0;
};

}  // namespace dpdpu::ne

#endif  // DPDPU_CORE_NETWORK_RDMA_FLOW_H_
