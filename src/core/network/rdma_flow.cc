#include "core/network/rdma_flow.h"

#include "common/logging.h"

namespace dpdpu::ne {

Status RdmaFlowWriter::Push(ByteSpan record) {
  DPDPU_SIM_ACCESS(race_tag_, "RdmaFlowWriter", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  pending_.AppendU32(static_cast<uint32_t>(record.size()));
  pending_.Append(record);
  ++records_;
  if (pending_.size() >= batch_bytes_) return Flush();
  return Status::Ok();
}

Status RdmaFlowWriter::Flush() {
  DPDPU_SIM_ACCESS(race_tag_, "RdmaFlowWriter", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  if (pending_.empty()) return Status::Ok();
  DPDPU_RETURN_IF_ERROR(endpoint_->Send(next_wr_++, pending_.span()));
  pending_.clear();
  ++batches_;
  return Status::Ok();
}

RdmaFlowReader::RdmaFlowReader(RdmaEndpoint* endpoint, netsub::RdmaNic* nic,
                               size_t slots, size_t slot_bytes,
                               RecordCallback on_record)
    : endpoint_(endpoint),
      nic_(nic),
      slot_bytes_(slot_bytes),
      on_record_(std::move(on_record)) {
  region_ = nic_->RegisterMemory(slots * slot_bytes);
  for (size_t i = 0; i < slots; ++i) {
    Status s = endpoint_->Recv(i, region_, i * slot_bytes_, slot_bytes_);
    DPDPU_CHECK(s.ok());
  }
  endpoint_->SetCompletionNotify([this] { DrainCompletions(); });
}

void RdmaFlowReader::DrainCompletions() {
  netsub::RdmaCompletion c;
  while (endpoint_->PollCompletion(&c)) {
    if (c.op != netsub::RdmaCompletion::OpType::kRecv || !c.ok) continue;
    ++batches_;
    size_t slot = static_cast<size_t>(c.wr_id);
    auto mem = nic_->Memory(region_);
    DPDPU_CHECK(mem.ok());
    ConsumeBatch(ByteSpan(mem->data() + slot * slot_bytes_, c.bytes));
    // Recycle the slot for the next batch; a failed repost would wedge
    // the flow with one fewer outstanding buffer, silently.
    Status reposted = endpoint_->Recv(c.wr_id, region_, slot * slot_bytes_,
                                      slot_bytes_);
    DPDPU_CHECK(reposted.ok());
  }
}

void RdmaFlowReader::ConsumeBatch(ByteSpan batch) {
  ByteReader r(batch);
  for (;;) {
    uint32_t len;
    if (!r.ReadU32(&len)) break;
    ByteSpan record;
    if (!r.ReadSpan(len, &record)) break;
    ++records_;
    on_record_(record);
  }
}

}  // namespace dpdpu::ne
