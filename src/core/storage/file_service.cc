#include "core/storage/file_service.h"

#include "common/logging.h"
#include "hw/calibration.h"

namespace dpdpu::se {

namespace cal = hw::cal;

namespace {
constexpr uint32_t kCachePageBytes = 4096;
}  // namespace

FileService::FileService(hw::Server* server, fssub::DpuFs* fs,
                         uint64_t dpu_cache_bytes)
    : server_(server), fs_(fs) {
  // The cache must fit in DPU memory; shrink to whatever is available.
  uint64_t granted = std::min(dpu_cache_bytes,
                              server->dpu_memory().available());
  DPDPU_CHECK(server->dpu_memory().Allocate(granted).ok());
  cache_reservation_ = granted;
  cache_ = std::make_unique<fssub::PageCache>(granted);
}

FileService::~FileService() {
  server_->dpu_memory().Free(cache_reservation_);
}

void FileService::ResizeCache(uint64_t bytes) {
  if (bytes > cache_reservation_) {
    uint64_t extra = bytes - cache_reservation_;
    if (!server_->dpu_memory().Allocate(extra).ok()) return;
    cache_reservation_ = bytes;
  } else {
    server_->dpu_memory().Free(cache_reservation_ - bytes);
    cache_reservation_ = bytes;
  }
  cache_->Resize(bytes);
}

void FileService::CreateAsync(
    const std::string& name,
    std::function<void(Result<fssub::FileId>)> cb) {
  server_->dpu_cpu().Execute(
      cal::kSpdkCyclesPerIo,
      [this, name, cb = std::move(cb)] {
        reactor_.Step();
        cb(fs_->Create(name));
      });
}

bool FileService::TryServeFromCache(fssub::FileId file, uint64_t offset,
                                    uint32_t length, Buffer* out) {
  uint64_t first_page = offset / kCachePageBytes;
  uint64_t last_page = (offset + length - 1) / kCachePageBytes;
  Buffer assembled;
  assembled.reserve(length);
  for (uint64_t p = first_page; p <= last_page; ++p) {
    const Buffer* page = cache_->Get({file, p});
    if (page == nullptr) return false;
    uint64_t page_base = p * kCachePageBytes;
    size_t begin = p == first_page ? size_t(offset - page_base) : 0;
    size_t end = p == last_page
                     ? size_t(offset + length - page_base)
                     : page->size();
    if (end > page->size()) return false;  // partial tail page
    assembled.Append(page->span().subspan(begin, end - begin));
  }
  *out = std::move(assembled);
  return true;
}

void FileService::PopulateCache(fssub::FileId file, uint64_t offset,
                                ByteSpan data) {
  // Only full, aligned pages enter the cache (partial pages would serve
  // truncated reads).
  uint64_t page = offset / kCachePageBytes;
  size_t skip = size_t(page * kCachePageBytes < offset
                           ? kCachePageBytes - (offset % kCachePageBytes)
                           : 0);
  if (offset % kCachePageBytes != 0) {
    ++page;
  }
  size_t pos = skip;
  while (pos + kCachePageBytes <= data.size()) {
    cache_->Put({file, page},
                Buffer(data.data() + pos, kCachePageBytes));
    ++page;
    pos += kCachePageBytes;
  }
}

void FileService::InvalidateRange(fssub::FileId file, uint64_t offset,
                                  size_t length) {
  if (length == 0) return;
  uint64_t first_page = offset / kCachePageBytes;
  uint64_t last_page = (offset + length - 1) / kCachePageBytes;
  for (uint64_t p = first_page; p <= last_page; ++p) {
    cache_->Erase({file, p});
  }
}

void FileService::ReadAsync(fssub::FileId file, uint64_t offset,
                            uint32_t length, ReadCallback cb) {
  // Request counters: bumped in the caller's event (before the
  // reactor hop), so two same-tick clients collide — commutative.
  DPDPU_SIM_ACCESS(race_tag_, "FileService", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  ++stats_.reads;
  // SPDK-style request processing on a DPU core.
  server_->dpu_cpu().Execute(
      cal::kSpdkCyclesPerIo,
      [this, file, offset, length, cb = std::move(cb)]() mutable {
        reactor_.Step();
        Buffer cached;
        if (length > 0 && TryServeFromCache(file, offset, length, &cached)) {
          DPDPU_SIM_ACCESS(race_tag_, "FileService", /*key=*/0,
                           sim::AccessKind::kCommutativeWrite);
          ++stats_.cache_hit_reads;
          cb(std::move(cached));
          return;
        }
        // Miss: fetch at page granularity (read-around) so the cache
        // fills even for sub-page requests — the SSD access, then the
        // PCIe P2P transfer into DPU memory (the Figure 8 direct path),
        // then the real bytes from DpuFs.
        uint64_t aligned_off = offset / kCachePageBytes * kCachePageBytes;
        uint32_t aligned_len = static_cast<uint32_t>(
            (offset + length + kCachePageBytes - 1) / kCachePageBytes *
                kCachePageBytes -
            aligned_off);
        server_->ssd().SubmitRead(
            aligned_len, [this, file, offset, length, aligned_off,
                          aligned_len, cb = std::move(cb)] {
              server_->pcie().Dma(
                  aligned_len,
                  [this, file, offset, length, aligned_off,
                   cb = std::move(cb)] {
                    reactor_.Step();
                    uint32_t aligned_len_again = static_cast<uint32_t>(
                        (offset + length + kCachePageBytes - 1) /
                            kCachePageBytes * kCachePageBytes -
                        aligned_off);
                    Result<Buffer> page_data =
                        fs_->Read(file, aligned_off, aligned_len_again);
                    if (!page_data.ok()) {
                      cb(std::move(page_data));
                      return;
                    }
                    PopulateCache(file, aligned_off, page_data->span());
                    // Slice the requested range out of the aligned read
                    // (short when the file ends inside it).
                    size_t skip = static_cast<size_t>(offset - aligned_off);
                    if (skip >= page_data->size()) {
                      cb(Buffer());
                      return;
                    }
                    size_t n = std::min<size_t>(length,
                                                page_data->size() - skip);
                    cb(Buffer(page_data->data() + skip, n));
                  });
            });
      });
}

void FileService::WriteAsync(fssub::FileId file, uint64_t offset,
                             Buffer data, PersistMode mode,
                             WriteCallback cb) {
  DPDPU_SIM_ACCESS(race_tag_, "FileService", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  ++stats_.writes;
  server_->dpu_cpu().Execute(
      cal::kSpdkCyclesPerIo,
      [this, file, offset, data = std::move(data), mode,
       cb = std::move(cb)]() mutable {
        reactor_.Step();
        InvalidateRange(file, offset, data.size());
        size_t bytes = data.size();
        hw::SsdDevice* log = server_->dpu_log_device();
        if (mode == PersistMode::kDpuLogAck && log != nullptr) {
          DPDPU_SIM_ACCESS(race_tag_, "FileService", /*key=*/0,
                           sim::AccessKind::kCommutativeWrite);
          ++stats_.log_acked_writes;
          // Durable on the DPU log -> acknowledge immediately; the SSD
          // write and file-system update drain in the background.
          log->SubmitWrite(
              bytes, [this, file, offset, data = std::move(data),
                      cb = std::move(cb)]() mutable {
                reactor_.Step();
                cb(Status::Ok());
                server_->ssd().SubmitWrite(
                    data.size(),
                    [this, file, offset, data = std::move(data)] {
                      reactor_.Step();
                      InvalidateRange(file, offset, data.size());
                      Status s = fs_->Write(file, offset, data.span());
                      if (!s.ok()) {
                        DPDPU_LOG(Error)
                            << "background write failed: " << s;
                      }
                    });
              });
          return;
        }
        server_->ssd().SubmitWrite(
            bytes, [this, file, offset, data = std::move(data),
                    cb = std::move(cb)] {
              reactor_.Step();
              // Invalidate again at completion: a read that raced this
              // write through the SSD queue may have re-populated the
              // cache with the pre-write block after the submit-time
              // invalidate, and would otherwise serve that stale copy
              // until the next write or eviction.
              InvalidateRange(file, offset, data.size());
              cb(fs_->Write(file, offset, data.span()));
            });
      });
}

}  // namespace dpdpu::se
