#include "core/storage/storage_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "hw/calibration.h"

namespace dpdpu::se {

namespace cal = hw::cal;

// ---------------------------------------------------------------------------
// Protocol.
// ---------------------------------------------------------------------------

Buffer EncodeRemoteRequest(const RemoteRequest& request) {
  Buffer out;
  out.AppendU64(request.tag);
  out.AppendU8(static_cast<uint8_t>(request.op));
  out.AppendU8(request.flags);
  // The version rides the wire only for versioned traffic, so the legacy
  // frame layout (and every unversioned bench trace) is unchanged.
  if (request.flags & kRequestFlagVersioned) {
    out.AppendU64(request.version);
  }
  out.AppendU32(request.file);
  out.AppendU64(request.offset);
  out.AppendU32(request.length);
  out.AppendU32(static_cast<uint32_t>(request.data.size()));
  out.Append(request.data.span());
  return out;
}

Result<RemoteRequest> ParseRemoteRequest(ByteSpan payload) {
  ByteReader r(payload);
  RemoteRequest request;
  uint8_t op;
  uint32_t data_len;
  if (!r.ReadU64(&request.tag) || !r.ReadU8(&op) ||
      !r.ReadU8(&request.flags)) {
    return Status::Corruption("remote request: truncated header");
  }
  if ((request.flags & kRequestFlagVersioned) &&
      !r.ReadU64(&request.version)) {
    return Status::Corruption("remote request: truncated version");
  }
  if (!r.ReadU32(&request.file) || !r.ReadU64(&request.offset) ||
      !r.ReadU32(&request.length) || !r.ReadU32(&data_len)) {
    return Status::Corruption("remote request: truncated header");
  }
  if (op != static_cast<uint8_t>(RemoteOp::kRead) &&
      op != static_cast<uint8_t>(RemoteOp::kWrite)) {
    return Status::Corruption("remote request: bad op");
  }
  request.op = static_cast<RemoteOp>(op);
  if (!r.ReadBytes(data_len, &request.data)) {
    return Status::Corruption("remote request: truncated payload");
  }
  return request;
}

namespace {
constexpr uint8_t kResponseFlagOk = 1;
constexpr uint8_t kResponseFlagHasVersion = 2;
}  // namespace

Buffer EncodeRemoteResponse(const RemoteResponse& response) {
  Buffer out;
  out.AppendU64(response.tag);
  uint8_t flags = (response.ok ? kResponseFlagOk : 0) |
                  (response.has_version ? kResponseFlagHasVersion : 0);
  out.AppendU8(flags);
  if (response.has_version) out.AppendU64(response.version);
  out.AppendU32(static_cast<uint32_t>(response.data.size()));
  out.Append(response.data.span());
  return out;
}

Result<RemoteResponse> ParseRemoteResponse(ByteSpan payload) {
  ByteReader r(payload);
  RemoteResponse response;
  uint8_t flags;
  uint32_t data_len;
  if (!r.ReadU64(&response.tag) || !r.ReadU8(&flags)) {
    return Status::Corruption("remote response: truncated header");
  }
  response.ok = (flags & kResponseFlagOk) != 0;
  response.has_version = (flags & kResponseFlagHasVersion) != 0;
  if (response.has_version && !r.ReadU64(&response.version)) {
    return Status::Corruption("remote response: truncated version");
  }
  if (!r.ReadU32(&data_len)) {
    return Status::Corruption("remote response: truncated header");
  }
  if (!r.ReadBytes(data_len, &response.data)) {
    return Status::Corruption("remote response: truncated payload");
  }
  return response;
}

// ---------------------------------------------------------------------------
// VersionMap.
// ---------------------------------------------------------------------------

bool VersionMap::Admit(fssub::FileId file, uint64_t offset, uint32_t length,
                       uint64_t version) {
  DPDPU_SIM_ACCESS(race_tag_, "se::VersionMap", sim::RaceKey(file, offset),
                   sim::AccessKind::kCommutativeWrite);
  Entry& entry = entries_[Key{file, offset}];
  if (version < entry.pending) return false;
  entry.pending = version;
  entry.length = length;
  return true;
}

void VersionMap::MarkDurable(fssub::FileId file, uint64_t offset,
                             uint64_t version) {
  DPDPU_SIM_ACCESS(race_tag_, "se::VersionMap", sim::RaceKey(file, offset),
                   sim::AccessKind::kCommutativeWrite);
  Entry& entry = entries_[Key{file, offset}];
  entry.version = std::max(entry.version, version);
}

uint64_t VersionMap::Lookup(fssub::FileId file, uint64_t offset) const {
  DPDPU_SIM_ACCESS(race_tag_, "se::VersionMap", sim::RaceKey(file, offset),
                   sim::AccessKind::kRead);
  auto it = entries_.find(Key{file, offset});
  return it == entries_.end() ? 0 : it->second.version;
}

// ---------------------------------------------------------------------------
// HostFileClient.
// ---------------------------------------------------------------------------

void HostFileClient::Create(
    const std::string& name,
    std::function<void(Result<fssub::FileId>)> cb) {
  server_->host_cpu().Execute(
      cal::kHostRingSubmitCycles,
      [this, name, cb = std::move(cb)]() mutable {
        files_->CreateAsync(name, std::move(cb));
      });
}

namespace {
constexpr uint32_t kHostCachePageBytes = 4096;
}  // namespace

HostFileClient::~HostFileClient() {
  if (host_cache_reservation_ > 0) {
    server_->host_memory().Free(host_cache_reservation_);
  }
}

void HostFileClient::EnableHostCache(uint64_t bytes) {
  uint64_t granted = std::min(bytes, server_->host_memory().available());
  DPDPU_CHECK(server_->host_memory().Allocate(granted).ok());
  host_cache_reservation_ = granted;
  host_cache_ = std::make_unique<fssub::PageCache>(granted);
}

const fssub::PageCacheStats* HostFileClient::host_cache_stats() const {
  return host_cache_ == nullptr ? nullptr : &host_cache_->stats();
}

bool HostFileClient::TryHostCache(fssub::FileId file, uint64_t offset,
                                  uint32_t length, Buffer* out) {
  if (host_cache_ == nullptr || length == 0) return false;
  uint64_t first = offset / kHostCachePageBytes;
  uint64_t last = (offset + length - 1) / kHostCachePageBytes;
  Buffer assembled;
  assembled.reserve(length);
  for (uint64_t p = first; p <= last; ++p) {
    const Buffer* page = host_cache_->Get({file, p});
    if (page == nullptr) return false;
    uint64_t base = p * kHostCachePageBytes;
    size_t begin = p == first ? size_t(offset - base) : 0;
    size_t end =
        p == last ? size_t(offset + length - base) : page->size();
    if (end > page->size()) return false;
    assembled.Append(page->span().subspan(begin, end - begin));
  }
  *out = std::move(assembled);
  return true;
}

void HostFileClient::PopulateHostCache(fssub::FileId file, uint64_t offset,
                                       ByteSpan data) {
  if (host_cache_ == nullptr) return;
  uint64_t page = (offset + kHostCachePageBytes - 1) / kHostCachePageBytes;
  size_t pos = size_t(page * kHostCachePageBytes - offset);
  while (pos + kHostCachePageBytes <= data.size()) {
    host_cache_->Put({file, page},
                     Buffer(data.data() + pos, kHostCachePageBytes));
    ++page;
    pos += kHostCachePageBytes;
  }
}

void HostFileClient::Read(fssub::FileId file, uint64_t offset,
                          uint32_t length, FileService::ReadCallback cb) {
  // Host-memory cache hits bypass even the ring crossing (a host-local
  // memory copy plus negligible lookup cost).
  Buffer cached;
  if (path_ == HostIoPath::kDpuOffload &&
      TryHostCache(file, offset, length, &cached)) {
    cb(std::move(cached));
    return;
  }
  if (path_ == HostIoPath::kLinuxBaseline) {
    // Traditional path: the host storage stack burns host cycles per I/O
    // (Figure 2's 18 K cycles/page), then the device access.
    server_->host_cpu().ExecuteFor(
        server_->host_cpu().CyclesToTime(cal::kLinuxStorageStackCyclesPerIo),
        [this, file, offset, length, cb = std::move(cb)]() mutable {
          server_->ssd().SubmitRead(
              length, [this, file, offset, length, cb = std::move(cb)] {
                cb(files_->fs().Read(file, offset, length));
              });
        });
    return;
  }
  // DPDPU path: ring submit, DPU service, data DMA back, host poll.
  server_->host_cpu().Execute(
      cal::kHostRingSubmitCycles,
      [this, file, offset, length, cb = std::move(cb)]() mutable {
        files_->ReadAsync(
            file, offset, length,
            [this, file, offset, cb = std::move(cb)](
                Result<Buffer> data) mutable {
              size_t bytes = data.ok() ? data->size() : 0;
              server_->pcie().Dma(
                  bytes, [this, file, offset, cb = std::move(cb),
                          data = std::move(data)]() mutable {
                    server_->host_cpu().Execute(
                        cal::kHostRingPollCycles,
                        [this, file, offset, cb = std::move(cb),
                         data = std::move(data)]() mutable {
                          if (data.ok()) {
                            PopulateHostCache(file, offset, data->span());
                          }
                          cb(std::move(data));
                        });
                  });
            });
      });
}

void HostFileClient::Write(fssub::FileId file, uint64_t offset, Buffer data,
                           FileService::WriteCallback cb) {
  if (host_cache_ != nullptr && !data.empty()) {
    uint64_t first = offset / kHostCachePageBytes;
    uint64_t last = (offset + data.size() - 1) / kHostCachePageBytes;
    for (uint64_t p = first; p <= last; ++p) {
      host_cache_->Erase({file, p});
    }
  }
  if (path_ == HostIoPath::kLinuxBaseline) {
    server_->host_cpu().ExecuteFor(
        server_->host_cpu().CyclesToTime(cal::kLinuxStorageStackCyclesPerIo),
        [this, file, offset, data = std::move(data),
         cb = std::move(cb)]() mutable {
          // Size read before the move-capture consumes data (argument
          // evaluation order is unspecified).
          size_t bytes = data.size();
          server_->ssd().SubmitWrite(
              bytes, [this, file, offset, data = std::move(data),
                      cb = std::move(cb)] {
                cb(files_->fs().Write(file, offset, data.span()));
              });
        });
    return;
  }
  server_->host_cpu().Execute(
      cal::kHostRingSubmitCycles,
      [this, file, offset, data = std::move(data),
       cb = std::move(cb)]() mutable {
        size_t bytes = data.size();
        server_->pcie().Dma(
            bytes, [this, file, offset, data = std::move(data),
                    cb = std::move(cb)]() mutable {
              files_->WriteAsync(
                  file, offset, std::move(data), PersistMode::kWriteThrough,
                  [this, cb = std::move(cb)](Status s) mutable {
                    server_->host_cpu().Execute(
                        cal::kHostRingPollCycles,
                        [cb = std::move(cb), s] { cb(s); });
                  });
            });
      });
}

// ---------------------------------------------------------------------------
// RequestFramer: per-connection length-framed message handling.
// ---------------------------------------------------------------------------

class RequestFramer {
 public:
  using MessageHandler = std::function<void(ByteSpan)>;

  explicit RequestFramer(ne::NeSocket* socket) : socket_(socket) {
    socket_->SetReceiveCallback([this](ByteSpan data) { OnBytes(data); });
  }

  void SetHandler(MessageHandler handler) { handler_ = std::move(handler); }

  void Reply(ByteSpan message) {
    Buffer framed;
    framed.AppendU32(static_cast<uint32_t>(message.size()));
    framed.Append(message);
    socket_->Send(framed.span());
  }

 private:
  void OnBytes(ByteSpan data) {
    pending_.Append(data);
    size_t consumed = 0;
    for (;;) {
      ByteReader r(pending_.span().subspan(consumed));
      uint32_t len;
      if (!r.ReadU32(&len)) break;
      ByteSpan message;
      if (!r.ReadSpan(len, &message)) break;
      if (handler_) handler_(message);
      consumed += 4 + len;
    }
    if (consumed > 0) {
      pending_ =
          Buffer(pending_.data() + consumed, pending_.size() - consumed);
    }
  }

  ne::NeSocket* socket_;
  MessageHandler handler_;
  Buffer pending_;
};

// ---------------------------------------------------------------------------
// StorageEngine.
// ---------------------------------------------------------------------------

StorageEngine::StorageEngine(hw::Server* server, ne::NetworkEngine* network,
                             fssub::DpuFs* fs, StorageEngineOptions options)
    : server_(server), network_(network), options_(options) {
  files_ = std::make_unique<FileService>(server, fs,
                                         options.dpu_cache_bytes);
  host_client_ = std::make_unique<HostFileClient>(server, files_.get());
  director_ = std::make_unique<TrafficDirector>(server, nullptr);
  offload_ = std::make_unique<OffloadEngine>(server, files_.get());
  offload_->SetPersistMode(options.persist_mode);
}

StorageEngine::~StorageEngine() = default;

void StorageEngine::Serve() {
  network_->Listen(options_.listen_port, [this](ne::NeSocket* socket) {
    // The server endpoint is the DPU itself: requests are classified and
    // (when offloadable) served without a host crossing (Figure 8).
    socket->SetLanding(ne::SocketLanding::kDpu);
    auto framer = std::make_unique<RequestFramer>(socket);
    RequestFramer* raw = framer.get();
    raw->SetHandler([this, raw](ByteSpan message) {
      Result<RemoteRequest> request = ParseRemoteRequest(message);
      if (!request.ok()) return;  // malformed request: drop
      HandleRequest(std::move(request).value(), [raw](Buffer response) {
        raw->Reply(response.span());
      });
    });
    framers_.push_back(std::move(framer));
  });
}

void StorageEngine::HandleRequest(RemoteRequest request,
                                  std::function<void(Buffer)> reply) {
  if (request.flags & kRequestFlagVersioned) {
    if (request.op == RemoteOp::kWrite) {
      // Admit through the version map on the DPU-side path. A stale
      // version (a hint replay or retried write racing a newer write to
      // the same block) is acknowledged without being applied —
      // last-writer-wins keeps catch-up idempotent.
      if (!versions_.Admit(request.file, request.offset,
                           static_cast<uint32_t>(request.data.size()),
                           request.version)) {
        RemoteResponse resp;
        resp.tag = request.tag;
        resp.ok = true;
        resp.has_version = true;
        resp.version = versions_.Lookup(request.file, request.offset);
        reply(EncodeRemoteResponse(resp));
        return;
      }
      // The version becomes read-visible only once the data write has
      // completed (the reply fires after the write-through) — a read
      // racing the in-flight write must see the old version, or it
      // would trust a block whose content hasn't landed.
      uint64_t version = request.version;
      fssub::FileId wfile = request.file;
      uint64_t woffset = request.offset;
      reply = [this, wfile, woffset, version,
               inner = std::move(reply)](Buffer encoded) {
        Result<RemoteResponse> resp = ParseRemoteResponse(encoded.span());
        if (resp.ok() && resp->ok) {
          versions_.MarkDurable(wfile, woffset, version);
        }
        inner(std::move(encoded));
      };
    } else {
      // Stamp the stored block version onto the read response so the
      // client can detect a stale replica (read-repair backstop).
      fssub::FileId file = request.file;
      uint64_t offset = request.offset;
      reply = [this, file, offset,
               inner = std::move(reply)](Buffer encoded) {
        Result<RemoteResponse> resp = ParseRemoteResponse(encoded.span());
        if (!resp.ok()) {
          inner(std::move(encoded));
          return;
        }
        resp->has_version = true;
        resp->version = versions_.Lookup(file, offset);
        inner(EncodeRemoteResponse(*resp));
      };
    }
  }
  TrafficDirector::Route route = director_->Classify(request);
  if (route == TrafficDirector::Route::kDpu) {
    offload_->Execute(std::move(request), std::move(reply));
  } else {
    HostFallback(std::move(request), std::move(reply));
  }
}

void StorageEngine::HostFallback(RemoteRequest request,
                                 std::function<void(Buffer)> reply) {
  if (host_handler_) {
    // The request crosses PCIe to the host application first.
    server_->pcie().Dma(
        request.data.size() + 64,
        [this, request = std::move(request),
         reply = std::move(reply)]() mutable {
          host_handler_(std::move(request), std::move(reply));
        });
    return;
  }
  // Default host fallback: PCIe to host, host storage-stack processing,
  // then the file operation (still via the unified DPU file system).
  server_->pcie().Dma(
      request.data.size() + 64,
      [this, request = std::move(request),
       reply = std::move(reply)]() mutable {
        server_->host_cpu().ExecuteFor(
            server_->host_cpu().CyclesToTime(
                cal::kLinuxStorageStackCyclesPerIo),
            [this, request = std::move(request),
             reply = std::move(reply)]() mutable {
              uint64_t tag = request.tag;
              // Host-processed results cross PCIe again on the way back
              // to the NIC — the extra round trips Figure 8 highlights.
              auto respond = [this, reply = std::move(reply),
                              tag](Result<Buffer> data) mutable {
                RemoteResponse resp;
                resp.tag = tag;
                resp.ok = data.ok();
                if (data.ok()) resp.data = std::move(data).value();
                Buffer encoded = EncodeRemoteResponse(resp);
                size_t bytes = encoded.size();
                server_->pcie().Dma(
                    bytes, [reply = std::move(reply),
                            encoded = std::move(encoded)]() mutable {
                      reply(std::move(encoded));
                    });
              };
              if (request.op == RemoteOp::kRead) {
                files_->ReadAsync(request.file, request.offset,
                                  request.length, std::move(respond));
              } else {
                files_->WriteAsync(
                    request.file, request.offset, std::move(request.data),
                    PersistMode::kWriteThrough,
                    [respond = std::move(respond)](Status s) mutable {
                      if (s.ok()) {
                        respond(Buffer());
                      } else {
                        respond(std::move(s));
                      }
                    });
              }
            });
      });
}

// ---------------------------------------------------------------------------
// RemoteStorageClient.
// ---------------------------------------------------------------------------

RemoteStorageClient::RemoteStorageClient(ne::NetworkEngine* network,
                                         netsub::NodeId server,
                                         uint16_t port)
    : sim_(network->simulator()), alive_(std::make_shared<bool>(true)) {
  socket_ = network->Connect(server, port);
  socket_->SetReceiveCallback([this](ByteSpan data) { OnResponse(data); });
  socket_->SetCloseCallback([this, alive = alive_] {
    closed_ = true;
    // Fail pendings from a fresh event so callers may destroy this
    // client from inside the failure callbacks (the connection's close
    // callback is still on the stack here).
    // The alive token guards `this`; zero delay is the point (callers
    // may destroy the client from inside the failure callbacks) and the
    // parent edge keeps the deferred event causally ordered.
    // simlint:allow(R6): alive-token-guarded, parent-edge-ordered defer
    sim_->Schedule(0, [this, alive] {
      if (*alive) FailAllPending();
    });
  });
}

RemoteStorageClient::~RemoteStorageClient() {
  *alive_ = false;
  socket_->SetReceiveCallback(nullptr);
  socket_->SetCloseCallback(nullptr);
}

void RemoteStorageClient::FailAllPending() {
  DPDPU_SIM_ACCESS(race_tag_, "RemoteStorageClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  auto pending = std::move(pending_);
  pending_.clear();
  // Tag order (std::map) keeps the failure dispatch deterministic. The
  // callbacks may re-enter and destroy this client; only locals are
  // touched from here on.
  for (auto& [tag, cb] : pending) {
    RemoteResponse resp;
    resp.tag = tag;
    resp.ok = false;
    cb(std::move(resp));
  }
}

void RemoteStorageClient::SendRequest(RemoteRequest request) {
  if (closed_) {
    // The connection is gone; fail this request from a fresh event the
    // same way the close path fails in-flight ones.
    uint64_t tag = request.tag;
    // The alive token guards `this`; zero delay is the point (fail from
    // a fresh event, like the close path) and the parent edge keeps the
    // deferred event causally ordered.
    // simlint:allow(R6): alive-token-guarded, parent-edge-ordered defer
    sim_->Schedule(0, [this, alive = alive_, tag] {
      if (!*alive) return;
      DPDPU_SIM_ACCESS(race_tag_, "RemoteStorageClient", /*key=*/0,
                       sim::AccessKind::kCommutativeWrite);
      auto it = pending_.find(tag);
      if (it == pending_.end()) return;
      auto cb = std::move(it->second);
      pending_.erase(it);
      RemoteResponse resp;
      resp.tag = tag;
      resp.ok = false;
      cb(std::move(resp));
    });
    return;
  }
  Buffer payload = EncodeRemoteRequest(request);
  Buffer framed;
  framed.AppendU32(static_cast<uint32_t>(payload.size()));
  framed.Append(payload.span());
  socket_->Send(framed.span());
}

void RemoteStorageClient::Read(fssub::FileId file, uint64_t offset,
                               uint32_t length,
                               std::function<void(Result<Buffer>)> cb,
                               uint8_t flags) {
  // Issue and completion both touch next_tag_/pending_ (see the tag's
  // header comment); distinct-tag table motion commutes.
  DPDPU_SIM_ACCESS(race_tag_, "RemoteStorageClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  RemoteRequest request;
  request.tag = next_tag_++;
  request.op = RemoteOp::kRead;
  request.file = file;
  request.offset = offset;
  request.length = length;
  request.flags = flags;
  pending_[request.tag] = [cb = std::move(cb)](RemoteResponse resp) {
    if (resp.ok) {
      cb(std::move(resp.data));
    } else {
      cb(Status::IoError("remote read failed"));
    }
  };
  SendRequest(std::move(request));
}

void RemoteStorageClient::Write(fssub::FileId file, uint64_t offset,
                                Buffer data,
                                std::function<void(Status)> cb,
                                uint8_t flags) {
  DPDPU_SIM_ACCESS(race_tag_, "RemoteStorageClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  RemoteRequest request;
  request.tag = next_tag_++;
  request.op = RemoteOp::kWrite;
  request.file = file;
  request.offset = offset;
  request.data = std::move(data);
  request.flags = flags;
  pending_[request.tag] = [cb = std::move(cb)](RemoteResponse resp) {
    cb(resp.ok ? Status::Ok() : Status::IoError("remote write failed"));
  };
  SendRequest(std::move(request));
}

void RemoteStorageClient::ReadVersioned(
    fssub::FileId file, uint64_t offset, uint32_t length,
    std::function<void(Result<Buffer>, uint64_t)> cb, uint8_t flags) {
  DPDPU_SIM_ACCESS(race_tag_, "RemoteStorageClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  RemoteRequest request;
  request.tag = next_tag_++;
  request.op = RemoteOp::kRead;
  request.file = file;
  request.offset = offset;
  request.length = length;
  request.flags = flags | kRequestFlagVersioned;
  pending_[request.tag] = [cb = std::move(cb)](RemoteResponse resp) {
    if (resp.ok) {
      cb(std::move(resp.data), resp.version);
    } else {
      cb(Status::Unavailable("remote read failed"), 0);
    }
  };
  SendRequest(std::move(request));
}

void RemoteStorageClient::WriteVersioned(fssub::FileId file, uint64_t offset,
                                         uint64_t version, Buffer data,
                                         std::function<void(Status)> cb,
                                         uint8_t flags) {
  DPDPU_SIM_ACCESS(race_tag_, "RemoteStorageClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  RemoteRequest request;
  request.tag = next_tag_++;
  request.op = RemoteOp::kWrite;
  request.file = file;
  request.offset = offset;
  request.data = std::move(data);
  request.flags = flags | kRequestFlagVersioned;
  request.version = version;
  pending_[request.tag] = [cb = std::move(cb)](RemoteResponse resp) {
    cb(resp.ok ? Status::Ok()
               : Status::Unavailable("remote write failed"));
  };
  SendRequest(std::move(request));
}

void RemoteStorageClient::OnResponse(ByteSpan data) {
  DPDPU_SIM_ACCESS(race_tag_, "RemoteStorageClient", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  auto alive = alive_;
  rx_pending_.Append(data);
  size_t consumed = 0;
  for (;;) {
    ByteReader r(rx_pending_.span().subspan(consumed));
    uint32_t len;
    if (!r.ReadU32(&len)) break;
    ByteSpan message;
    if (!r.ReadSpan(len, &message)) break;
    Result<RemoteResponse> resp = ParseRemoteResponse(message);
    consumed += 4 + len;
    if (!resp.ok()) continue;
    auto it = pending_.find(resp->tag);
    if (it != pending_.end()) {
      auto cb = std::move(it->second);
      pending_.erase(it);
      cb(std::move(resp).value());
      // Destroying the callback may drop the owner's last reference to
      // this client (e.g. a catch-up job completing from inside its own
      // response); stop touching members if so.
      cb = nullptr;
      if (!*alive) return;
    }
  }
  if (consumed > 0) {
    rx_pending_ = Buffer(rx_pending_.data() + consumed,
                         rx_pending_.size() - consumed);
  }
}

}  // namespace dpdpu::se
