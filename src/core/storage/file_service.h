// The DPU file service (paper Section 7, "Offloading file execution"):
// DpuFs runs on the DPU behind an SPDK-style userspace I/O path, with a
// DPU-memory page cache and the Section 9 "faster persistence" option
// (acknowledge once the write is durable on the DPU's fast log device,
// complete the SSD write in the background).

#ifndef DPDPU_CORE_STORAGE_FILE_SERVICE_H_
#define DPDPU_CORE_STORAGE_FILE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/buffer.h"
#include "common/result.h"
#include "fssub/dpufs.h"
#include "fssub/page_cache.h"
#include "hw/machine.h"
#include "sim/simrace.h"

namespace dpdpu::se {

/// Durability mode for writes.
enum class PersistMode : uint8_t {
  /// Acknowledge after the SSD write completes.
  kWriteThrough,
  /// Acknowledge once persisted on the DPU fast log device; the SSD write
  /// completes in the background (Section 9 "faster persistence").
  kDpuLogAck,
};

struct FileServiceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cache_hit_reads = 0;  // served entirely from DPU cache
  uint64_t log_acked_writes = 0;
};

class FileService {
 public:
  using ReadCallback = std::function<void(Result<Buffer>)>;
  using WriteCallback = std::function<void(Status)>;

  /// `dpu_cache_bytes` is allocated from the server's DPU memory pool —
  /// the 16 GB constraint the paper's partial-offload argument rests on.
  FileService(hw::Server* server, fssub::DpuFs* fs,
              uint64_t dpu_cache_bytes);
  ~FileService();

  FileService(const FileService&) = delete;
  FileService& operator=(const FileService&) = delete;

  fssub::DpuFs& fs() { return *fs_; }
  hw::Server& server() { return *server_; }

  /// Namespace operations execute on a DPU core.
  void CreateAsync(const std::string& name,
                   std::function<void(Result<fssub::FileId>)> cb);
  Result<fssub::FileId> Lookup(const std::string& name) const {
    return fs_->Lookup(name);
  }

  /// Read with DPU-cache lookup; misses pay SPDK cycles + SSD latency.
  void ReadAsync(fssub::FileId file, uint64_t offset, uint32_t length,
                 ReadCallback cb);

  /// Write; durability per `mode`.
  void WriteAsync(fssub::FileId file, uint64_t offset, Buffer data,
                  PersistMode mode, WriteCallback cb);

  const FileServiceStats& stats() const { return stats_; }
  const fssub::PageCacheStats& cache_stats() const {
    return cache_->stats();
  }
  void ResizeCache(uint64_t bytes);

 private:
  bool TryServeFromCache(fssub::FileId file, uint64_t offset,
                         uint32_t length, Buffer* out);
  void PopulateCache(fssub::FileId file, uint64_t offset, ByteSpan data);
  void InvalidateRange(fssub::FileId file, uint64_t offset, size_t length);

  hw::Server* server_;
  fssub::DpuFs* fs_;
  std::unique_ptr<fssub::PageCache> cache_;
  uint64_t cache_reservation_ = 0;
  FileServiceStats stats_;
  /// All FileService work — request dispatch and SSD/DMA completion
  /// callbacks — runs on one SPDK reactor thread, which serializes it.
  /// Each such event steps this chain so same-timestamp cache accesses
  /// are reactor-ordered, not racing (see DESIGN.md §7).
  sim::HbChain reactor_;
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::se

#endif  // DPDPU_CORE_STORAGE_FILE_SERVICE_H_
