#include "core/storage/storage_engine.h"
#include "hw/calibration.h"

namespace dpdpu::se {

void OffloadEngine::Execute(RemoteRequest request, ReplyFn reply) {
  DPDPU_SIM_ACCESS(race_tag_, "OffloadEngine", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  ++executed_;
  // UDF parse/translate on a DPU core (Section 7: "users supply a UDF
  // that parses network messages ... and translates them into file
  // operations").
  server_->dpu_cpu().Execute(
      hw::cal::kUdfParseCycles,
      [this, request = std::move(request),
       reply = std::move(reply)]() mutable {
        if (udf_) {
          Result<RemoteRequest> translated = udf_(request);
          if (!translated.ok()) {
            RemoteResponse resp;
            resp.tag = request.tag;
            resp.ok = false;
            reply(EncodeRemoteResponse(resp));
            return;
          }
          request = std::move(translated).value();
        }
        uint64_t tag = request.tag;
        switch (request.op) {
          case RemoteOp::kRead:
            files_->ReadAsync(
                request.file, request.offset, request.length,
                [tag, reply = std::move(reply)](Result<Buffer> data) {
                  RemoteResponse resp;
                  resp.tag = tag;
                  resp.ok = data.ok();
                  if (data.ok()) resp.data = std::move(data).value();
                  reply(EncodeRemoteResponse(resp));
                });
            break;
          case RemoteOp::kWrite:
            files_->WriteAsync(
                request.file, request.offset, std::move(request.data),
                persist_mode_,
                [tag, reply = std::move(reply)](Status s) {
                  RemoteResponse resp;
                  resp.tag = tag;
                  resp.ok = s.ok();
                  reply(EncodeRemoteResponse(resp));
                });
            break;
        }
      });
}

}  // namespace dpdpu::se
