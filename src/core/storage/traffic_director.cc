#include "core/storage/storage_engine.h"
#include "hw/calibration.h"

namespace dpdpu::se {

TrafficDirector::Route TrafficDirector::Classify(
    const RemoteRequest& request) {
  // The decision runs on the DPU data path for every request packet.
  server_->dpu_cpu().Execute(hw::cal::kTrafficDirectorCyclesPerPacket,
                             UniqueFunction([] {}));
  bool offloadable = classifier_ ? classifier_(request)
                                 : (request.flags &
                                    kRequestFlagRequiresHost) == 0;
  if (offloadable) {
    ++to_dpu_;
    return Route::kDpu;
  }
  ++to_host_;
  return Route::kHost;
}

}  // namespace dpdpu::se
