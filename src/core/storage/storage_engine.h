// The DPDPU Storage Engine (paper Sections 7 and 9 / DDS, Figures 8-9):
//
//  * HostFileClient — POSIX-like host library; requests forward to the
//    DPU file service through lock-free rings (or run through the
//    traditional Linux stack for the Figure 2 baseline).
//  * TrafficDirector — per-request DPU-vs-host routing "without breaking
//    end-to-end transport semantics".
//  * OffloadEngine — the user-supplied UDF parses remote storage
//    requests and translates them into file operations executed on the
//    DPU without host involvement.
//  * StorageEngine — serves remote requests end to end: NE socket ->
//    traffic director -> offload engine or host fallback.
//  * RemoteStorageClient — the compute-node side, issuing requests over
//    the Network Engine.

#ifndef DPDPU_CORE_STORAGE_STORAGE_ENGINE_H_
#define DPDPU_CORE_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/buffer.h"
#include "common/result.h"
#include "core/network/network_engine.h"
#include "sim/simrace.h"
#include "core/storage/file_service.h"
#include "fssub/dpufs.h"
#include "hw/machine.h"

namespace dpdpu::se {

// ---------------------------------------------------------------------------
// Remote storage request protocol (length-framed over an NE socket).
// ---------------------------------------------------------------------------

enum class RemoteOp : uint8_t { kRead = 1, kWrite = 2 };

struct RemoteRequest {
  uint64_t tag = 0;
  RemoteOp op = RemoteOp::kRead;
  fssub::FileId file = 0;
  uint64_t offset = 0;
  uint32_t length = 0;  // read length
  Buffer data;          // write payload
  /// Application hint the UDF may use for routing (e.g. "log replay
  /// requests must go to the host" — the partial-offload case).
  uint8_t flags = 0;
  /// Write version for replica-consistency (kRequestFlagVersioned);
  /// only on the wire when that flag is set, so unversioned traffic
  /// keeps the original frame layout byte for byte.
  uint64_t version = 0;
};

inline constexpr uint8_t kRequestFlagRequiresHost = 1;
/// Versioned replication: writes carry a version the server records in
/// its VersionMap (stale versions are suppressed, last-writer-wins);
/// reads return the stored version alongside the data.
inline constexpr uint8_t kRequestFlagVersioned = 2;

Buffer EncodeRemoteRequest(const RemoteRequest& request);
Result<RemoteRequest> ParseRemoteRequest(ByteSpan payload);

struct RemoteResponse {
  uint64_t tag = 0;
  bool ok = true;
  Buffer data;
  /// Version of the block served (versioned reads / write acks). Only
  /// on the wire when has_version is set; legacy responses are
  /// byte-identical to the pre-versioning format.
  bool has_version = false;
  uint64_t version = 0;
};

Buffer EncodeRemoteResponse(const RemoteResponse& response);
Result<RemoteResponse> ParseRemoteResponse(ByteSpan payload);

// ---------------------------------------------------------------------------
// Version map (replica consistency).
// ---------------------------------------------------------------------------

/// Per-(file, offset) write-version map maintained on the storage node's
/// DPU-side request path. Versioned writes are admitted through it
/// (stale versions are suppressed — last-writer-wins, which makes hint
/// replay and catch-up copies idempotent against concurrent fresh
/// writes); versioned reads stamp the stored version onto the response
/// so clients can detect a stale replica. std::map keeps iteration
/// deterministic for the catch-up diff.
class VersionMap {
 public:
  struct Entry {
    /// Read-visible version: the newest version whose data write has
    /// completed. Reads report this one — never a version whose block
    /// is still in the disk queue.
    uint64_t version = 0;
    /// Admission watermark, bumped at request arrival: orders racing
    /// writes (an older version is suppressed even while the newer
    /// one's data is still in flight).
    uint64_t pending = 0;
    uint32_t length = 0;
  };
  /// (file, offset) — block-granular, where a block is one write extent.
  using Key = std::pair<fssub::FileId, uint64_t>;

  /// Records `version` at (file, offset) if it is at least as new as the
  /// admission watermark and returns true; returns false (no state
  /// change) for a stale version, in which case the caller must not
  /// apply the write.
  bool Admit(fssub::FileId file, uint64_t offset, uint32_t length,
             uint64_t version);

  /// Makes `version` read-visible once its data write has completed.
  void MarkDurable(fssub::FileId file, uint64_t offset, uint64_t version);

  /// Read-visible version at (file, offset); 0 when never
  /// versioned-written (or no versioned write has completed yet).
  uint64_t Lookup(fssub::FileId file, uint64_t offset) const;

  const std::map<Key, Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  std::map<Key, Entry> entries_;
  /// simrace identity, keyed per (file, offset). Admit/MarkDurable are
  /// commutative by construction (watermark and max are order-free), so
  /// only a read racing them — the commit-before-durable shape — flags.
  sim::RaceTag race_tag_;
};

// ---------------------------------------------------------------------------
// Traffic director.
// ---------------------------------------------------------------------------

/// Decides, per request, whether the DPU can serve it (DDS question Q2).
class TrafficDirector {
 public:
  /// Returns true when the request may be served on the DPU.
  using Classifier = std::function<bool(const RemoteRequest&)>;

  TrafficDirector(hw::Server* server, Classifier classifier)
      : server_(server), classifier_(std::move(classifier)) {}

  enum class Route : uint8_t { kDpu, kHost };

  /// Charges the per-packet decision cost on the DPU.
  Route Classify(const RemoteRequest& request);

  uint64_t routed_to_dpu() const { return to_dpu_; }
  uint64_t routed_to_host() const { return to_host_; }

  void SetClassifier(Classifier c) { classifier_ = std::move(c); }

 private:
  hw::Server* server_;
  Classifier classifier_;
  uint64_t to_dpu_ = 0;
  uint64_t to_host_ = 0;
};

// ---------------------------------------------------------------------------
// Offload engine.
// ---------------------------------------------------------------------------

/// Executes offloadable remote requests on the DPU via the file service
/// (DDS question Q3). The UDF translates an application request into a
/// file operation; the default UDF handles the built-in protocol.
class OffloadEngine {
 public:
  using Udf = std::function<Result<RemoteRequest>(const RemoteRequest&)>;
  using ReplyFn = std::function<void(Buffer)>;

  OffloadEngine(hw::Server* server, FileService* files)
      : server_(server), files_(files) {}

  /// Replaces the request-translation UDF.
  void SetUdf(Udf udf) { udf_ = std::move(udf); }

  void SetPersistMode(PersistMode mode) { persist_mode_ = mode; }

  /// Parses (UDF) and executes on the DPU, then replies.
  void Execute(RemoteRequest request, ReplyFn reply);

  uint64_t requests_executed() const { return executed_; }

 private:
  hw::Server* server_;
  FileService* files_;
  Udf udf_;
  PersistMode persist_mode_ = PersistMode::kWriteThrough;
  uint64_t executed_ = 0;
  /// Execute() fires from per-connection receive events; the request
  /// counter commutes across same-timestamp arrivals.
  sim::RaceTag race_tag_;
};

// ---------------------------------------------------------------------------
// Host file client.
// ---------------------------------------------------------------------------

/// How host applications reach their files.
enum class HostIoPath : uint8_t {
  /// Traditional Linux storage stack on host cores (Figure 2 baseline).
  kLinuxBaseline,
  /// DPDPU: forward over lock-free rings to the DPU file service.
  kDpuOffload,
};

/// POSIX-like host library ("a light-weight user library to forward
/// storage requests from the client to the DPU").
class HostFileClient {
 public:
  HostFileClient(hw::Server* server, FileService* files,
                 HostIoPath path = HostIoPath::kDpuOffload)
      : server_(server), files_(files), path_(path) {}
  ~HostFileClient();

  void Create(const std::string& name,
              std::function<void(Result<fssub::FileId>)> cb);
  Result<fssub::FileId> Open(const std::string& name) const {
    return files_->Lookup(name);
  }
  void Read(fssub::FileId file, uint64_t offset, uint32_t length,
            FileService::ReadCallback cb);
  void Write(fssub::FileId file, uint64_t offset, Buffer data,
             FileService::WriteCallback cb);

  /// Section 9 caching: a page cache in *host* memory in front of the
  /// DPU path ("caching in host memory is most efficient for host
  /// applications"). Capacity is reserved from the host memory pool.
  void EnableHostCache(uint64_t bytes);
  const fssub::PageCacheStats* host_cache_stats() const;

  HostIoPath path() const { return path_; }
  void set_path(HostIoPath path) { path_ = path; }

 private:
  bool TryHostCache(fssub::FileId file, uint64_t offset, uint32_t length,
                    Buffer* out);
  void PopulateHostCache(fssub::FileId file, uint64_t offset,
                         ByteSpan data);

  hw::Server* server_;
  FileService* files_;
  HostIoPath path_;
  std::unique_ptr<fssub::PageCache> host_cache_;
  uint64_t host_cache_reservation_ = 0;
};

// ---------------------------------------------------------------------------
// Storage engine (server side) and remote client.
// ---------------------------------------------------------------------------

struct StorageEngineOptions {
  uint64_t dpu_cache_bytes = 1ull << 30;
  PersistMode persist_mode = PersistMode::kWriteThrough;
  uint16_t listen_port = 9000;
};

class StorageEngine {
 public:
  /// Fires when a request routed to the host completes its host-side
  /// processing; the handler produces the response payload.
  using HostHandler =
      std::function<void(RemoteRequest, std::function<void(Buffer)>)>;

  StorageEngine(hw::Server* server, ne::NetworkEngine* network,
                fssub::DpuFs* fs, StorageEngineOptions options = {});
  ~StorageEngine();  // out of line: RequestFramer is incomplete here

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  FileService& file_service() { return *files_; }
  HostFileClient& host_client() { return *host_client_; }
  TrafficDirector& director() { return *director_; }
  OffloadEngine& offload_engine() { return *offload_; }

  /// Starts accepting remote storage connections on the listen port.
  void Serve();

  /// Replaces host-side fallback processing (default: host storage-stack
  /// cycles, then the file operation via the DPU file service).
  void SetHostHandler(HostHandler handler) {
    host_handler_ = std::move(handler);
  }

  /// The node's write-version map. Populated only by versioned requests
  /// (kRequestFlagVersioned), so unversioned deployments pay nothing.
  const VersionMap& versions() const { return versions_; }

 private:
  void HandleRequest(RemoteRequest request,
                     std::function<void(Buffer)> reply);
  void HostFallback(RemoteRequest request,
                    std::function<void(Buffer)> reply);

  hw::Server* server_;
  ne::NetworkEngine* network_;
  StorageEngineOptions options_;
  std::unique_ptr<FileService> files_;
  std::unique_ptr<HostFileClient> host_client_;
  std::unique_ptr<TrafficDirector> director_;
  std::unique_ptr<OffloadEngine> offload_;
  HostHandler host_handler_;
  VersionMap versions_;
  std::vector<std::unique_ptr<class RequestFramer>> framers_;
};

/// Compute-node client for the remote storage protocol.
class RemoteStorageClient {
 public:
  RemoteStorageClient(ne::NetworkEngine* network, netsub::NodeId server,
                      uint16_t port);
  ~RemoteStorageClient();

  void Read(fssub::FileId file, uint64_t offset, uint32_t length,
            std::function<void(Result<Buffer>)> cb, uint8_t flags = 0);
  void Write(fssub::FileId file, uint64_t offset, Buffer data,
             std::function<void(Status)> cb, uint8_t flags = 0);

  /// Versioned read: the callback additionally receives the server's
  /// stored version for the block (0 when never versioned-written, or
  /// on failure).
  void ReadVersioned(fssub::FileId file, uint64_t offset, uint32_t length,
                     std::function<void(Result<Buffer>, uint64_t)> cb,
                     uint8_t flags = 0);

  /// Versioned write: the server records `version` in its VersionMap
  /// and suppresses the write if it already holds something newer.
  void WriteVersioned(fssub::FileId file, uint64_t offset, uint64_t version,
                      Buffer data, std::function<void(Status)> cb,
                      uint8_t flags = 0);

  uint64_t requests_outstanding() const { return pending_.size(); }

  /// True once the underlying connection closed or aborted (e.g. the
  /// MiniTCP retransmission cap fired against a dark node). All pending
  /// requests fail with Unavailable; callers should open a fresh client.
  bool closed() const { return closed_; }

 private:
  void SendRequest(RemoteRequest request);
  void OnResponse(ByteSpan payload);
  void FailAllPending();

  sim::Simulator* sim_;
  ne::NeSocket* socket_;
  Buffer rx_pending_;
  uint64_t next_tag_ = 1;
  bool closed_ = false;
  /// Liveness guard for the deferred close dispatch (the failure
  /// callbacks run from a fresh event so callers may safely destroy
  /// this client from within them).
  std::shared_ptr<bool> alive_;
  std::map<uint64_t, std::function<void(RemoteResponse)>> pending_;
  /// Tag issue (caller events) and completion (socket receive events)
  /// both touch next_tag_/pending_; tags key the table so insert/erase
  /// of distinct requests commute, and a tag's erase is HB-after its
  /// insert via the RPC round trip.
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::se

#endif  // DPDPU_CORE_STORAGE_STORAGE_ENGINE_H_
