// Compute Engine scheduling (paper Section 5 open challenges): placement
// of DP kernels across ASIC / DPU CPU / host CPU (specified vs scheduled
// execution), and multi-tenant admission to capacity-limited accelerators
// (FCFS vs deficit round robin, after iPipe).

#ifndef DPDPU_CORE_COMPUTE_SCHEDULER_H_
#define DPDPU_CORE_COMPUTE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/function.h"
#include "core/compute/dp_kernel.h"
#include "core/compute/work_item.h"
#include "hw/machine.h"
#include "sim/simrace.h"

namespace dpdpu::ce {

/// Placement policy for kAuto ("scheduled execution") invocations.
enum class PlacementPolicy : uint8_t {
  /// Prefer the ASIC whenever the DPU carries one, else DPU CPU.
  kAsicFirst,
  /// Never use accelerators (software-only baseline).
  kDpuCpuOnly,
  /// Estimate completion time (queue backlog + service time) on every
  /// target and pick the minimum.
  kModelBased,
};

/// Tracks per-target outstanding work and chooses placements.
class PlacementModel {
 public:
  explicit PlacementModel(hw::Server* server) : server_(server) {}

  /// Service time of (kernel, bytes) on `target`; 0 for unavailable.
  sim::SimTime ServiceTime(const DpKernel& kernel, size_t bytes,
                           ExecTarget target) const;

  /// True when `target` can run `kernel` on this server.
  bool Available(const DpKernel& kernel, ExecTarget target) const;

  /// Picks a concrete target for scheduled execution.
  ExecTarget Choose(const DpKernel& kernel, size_t bytes,
                    PlacementPolicy policy) const;

  /// Estimated completion delay: backlog ahead of the job plus its own
  /// service time.
  sim::SimTime EstimateCompletion(const DpKernel& kernel, size_t bytes,
                                  ExecTarget target) const;

  /// Backlog accounting, driven by the Compute Engine.
  void OnDispatch(ExecTarget target, sim::SimTime service);
  void OnComplete(ExecTarget target, sim::SimTime service);

  sim::SimTime backlog(ExecTarget target) const;

 private:
  hw::Server* server_;
  std::map<ExecTarget, sim::SimTime> backlog_;
};

/// Admission queue for a capacity-limited resource: FCFS or per-tenant
/// deficit round robin. Entries carry a byte weight (DRR deficit unit)
/// and a dispatch closure.
class AdmissionQueue {
 public:
  enum class Discipline : uint8_t { kFcfs, kDrr };

  explicit AdmissionQueue(Discipline discipline = Discipline::kFcfs,
                          uint64_t quantum_bytes = 64 * 1024)
      : discipline_(discipline), quantum_(quantum_bytes) {}

  void Push(uint32_t tenant, uint64_t weight_bytes, UniqueFunction dispatch);

  /// Pops the next admissible entry per the discipline. Returns false
  /// when empty.
  bool Pop(UniqueFunction* out);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  Discipline discipline() const { return discipline_; }
  void set_discipline(Discipline d) { discipline_ = d; }

 private:
  struct Entry {
    uint64_t weight;
    UniqueFunction dispatch;
  };
  struct TenantState {
    std::deque<Entry> queue;
    uint64_t deficit = 0;
  };

  Discipline discipline_;
  uint64_t quantum_;
  size_t size_ = 0;
  // FCFS path.
  std::deque<Entry> fifo_;
  // DRR path: round-robin cursor over tenants with queued work.
  std::map<uint32_t, TenantState> tenants_;
  uint32_t cursor_ = 0;
  /// Pushes arrive from NIC delivery events, pops from the engine pump;
  /// both are commutative — admission order among same-timestamp pushes
  /// is deterministic tiebreak territory, and the entries are
  /// independent dispatch closures.
  sim::RaceTag race_tag_;
};

}  // namespace dpdpu::ce

#endif  // DPDPU_CORE_COMPUTE_SCHEDULER_H_
