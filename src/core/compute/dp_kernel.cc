#include "core/compute/dp_kernel.h"

#include <cstring>

#include "hw/calibration.h"
#include "kern/chacha20.h"
#include "kern/crc32.h"
#include "kern/dedup.h"
#include "kern/deflate.h"
#include "kern/regex.h"
#include "kern/relational.h"

namespace dpdpu::ce {

namespace {

std::string ParamOr(const KernelParams& params, const std::string& key,
                    const std::string& fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

// --- crypto parameter handling -------------------------------------------

std::array<uint8_t, kern::kChaCha20KeyBytes> KeyFromParams(
    const KernelParams& params) {
  std::array<uint8_t, kern::kChaCha20KeyBytes> key{};
  std::string raw = ParamOr(params, "key", "dpdpu-default-key");
  std::memcpy(key.data(), raw.data(),
              std::min(raw.size(), key.size()));
  return key;
}

std::array<uint8_t, kern::kChaCha20NonceBytes> NonceFromParams(
    const KernelParams& params) {
  std::array<uint8_t, kern::kChaCha20NonceBytes> nonce{};
  std::string raw = ParamOr(params, "nonce", "");
  std::memcpy(nonce.data(), raw.data(),
              std::min(raw.size(), nonce.size()));
  return nonce;
}

// --- relational parameter handling ---------------------------------------

Result<kern::Schema> SchemaFromParams(const KernelParams& params) {
  auto it = params.find("schema");
  if (it == params.end()) {
    return Status::InvalidArgument("kernel: missing 'schema' param");
  }
  std::vector<kern::ColumnSpec> columns;
  std::string_view spec = it->second;
  while (!spec.empty()) {
    size_t comma = spec.find(',');
    std::string_view field = spec.substr(0, comma);
    size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("kernel: bad schema field");
    }
    std::string name(field.substr(0, colon));
    std::string_view type = field.substr(colon + 1);
    kern::ColumnType ct;
    if (type == "i64") {
      ct = kern::ColumnType::kInt64;
    } else if (type == "f64") {
      ct = kern::ColumnType::kDouble;
    } else if (type == "str") {
      ct = kern::ColumnType::kString;
    } else {
      return Status::InvalidArgument("kernel: bad schema type");
    }
    columns.push_back({std::move(name), ct});
    if (comma == std::string_view::npos) break;
    spec = spec.substr(comma + 1);
  }
  return kern::Schema(std::move(columns));
}

Result<kern::CompareOp> OpFromString(const std::string& op) {
  if (op == "==") return kern::CompareOp::kEq;
  if (op == "!=") return kern::CompareOp::kNe;
  if (op == "<") return kern::CompareOp::kLt;
  if (op == "<=") return kern::CompareOp::kLe;
  if (op == ">") return kern::CompareOp::kGt;
  if (op == ">=") return kern::CompareOp::kGe;
  return Status::InvalidArgument("kernel: bad comparison op " + op);
}

Result<kern::Value> LiteralFromParams(const KernelParams& params) {
  std::string type = ParamOr(params, "value_type", "i64");
  std::string value = ParamOr(params, "value", "0");
  if (type == "i64") return kern::Value(int64_t(std::stoll(value)));
  if (type == "f64") return kern::Value(std::stod(value));
  if (type == "str") return kern::Value(value);
  return Status::InvalidArgument("kernel: bad value_type " + type);
}

// --- builtin kernel implementations --------------------------------------

Result<Buffer> CompressFn(ByteSpan input, const KernelParams& params) {
  kern::DeflateOptions options;
  options.level = std::stoi(ParamOr(params, "level", "6"));
  return kern::DeflateCompress(input, options);
}

Result<Buffer> DecompressFn(ByteSpan input, const KernelParams&) {
  return kern::DeflateDecompress(input);
}

Result<Buffer> EncryptFn(ByteSpan input, const KernelParams& params) {
  return kern::ChaCha20Xor(KeyFromParams(params), NonceFromParams(params),
                           uint32_t(std::stoul(ParamOr(params, "counter",
                                                       "0"))),
                           input);
}

Result<Buffer> RegexCountFn(ByteSpan input, const KernelParams& params) {
  auto it = params.find("pattern");
  if (it == params.end()) {
    return Status::InvalidArgument("regex kernel: missing 'pattern'");
  }
  DPDPU_ASSIGN_OR_RETURN(kern::Regex re, kern::Regex::Compile(it->second));
  uint64_t count = re.CountMatches(std::string_view(
      reinterpret_cast<const char*>(input.data()), input.size()));
  Buffer out;
  out.AppendU64(count);
  return out;
}

Result<Buffer> Crc32Fn(ByteSpan input, const KernelParams&) {
  Buffer out;
  out.AppendU32(kern::Crc32(input));
  return out;
}

Result<Buffer> DedupChunkFn(ByteSpan input, const KernelParams&) {
  std::vector<kern::Chunk> chunks = kern::ChunkData(input);
  Buffer out;
  out.AppendU32(static_cast<uint32_t>(chunks.size()));
  for (const kern::Chunk& c : chunks) {
    out.AppendU64(c.offset);
    out.AppendU64(c.size);
    out.AppendU64(c.fingerprint);
  }
  return out;
}

Result<Buffer> FilterFn(ByteSpan input, const KernelParams& params) {
  DPDPU_ASSIGN_OR_RETURN(kern::Schema schema, SchemaFromParams(params));
  DPDPU_ASSIGN_OR_RETURN(kern::RowPageReader reader,
                         kern::RowPageReader::Open(&schema, input));
  int col = schema.FindColumn(ParamOr(params, "col", ""));
  if (col < 0) return Status::InvalidArgument("filter: unknown column");
  DPDPU_ASSIGN_OR_RETURN(kern::CompareOp op,
                         OpFromString(ParamOr(params, "op", "==")));
  DPDPU_ASSIGN_OR_RETURN(kern::Value literal, LiteralFromParams(params));
  auto pred = kern::Predicate::Compare(size_t(col), op, std::move(literal));
  DPDPU_ASSIGN_OR_RETURN(std::vector<uint32_t> rows,
                         kern::FilterPage(reader, *pred));
  return kern::MaterializeRows(reader, rows);
}

Result<Buffer> AggregateFn(ByteSpan input, const KernelParams& params) {
  DPDPU_ASSIGN_OR_RETURN(kern::Schema schema, SchemaFromParams(params));
  DPDPU_ASSIGN_OR_RETURN(kern::RowPageReader reader,
                         kern::RowPageReader::Open(&schema, input));
  int col = schema.FindColumn(ParamOr(params, "col", ""));
  if (col < 0) return Status::InvalidArgument("aggregate: unknown column");
  std::string kind_str = ParamOr(params, "kind", "count");
  kern::AggregateKind kind;
  if (kind_str == "count") {
    kind = kern::AggregateKind::kCount;
  } else if (kind_str == "sum") {
    kind = kern::AggregateKind::kSum;
  } else if (kind_str == "min") {
    kind = kern::AggregateKind::kMin;
  } else if (kind_str == "max") {
    kind = kern::AggregateKind::kMax;
  } else if (kind_str == "avg") {
    kind = kern::AggregateKind::kAvg;
  } else {
    return Status::InvalidArgument("aggregate: bad kind " + kind_str);
  }
  DPDPU_ASSIGN_OR_RETURN(kern::Value v,
                         kern::AggregateColumn(reader, size_t(col), kind));
  Buffer out;
  if (std::holds_alternative<int64_t>(v)) {
    out.AppendU8(0);
    out.AppendU64(uint64_t(std::get<int64_t>(v)));
  } else {
    out.AppendU8(1);
    double d = std::get<double>(v);
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    out.AppendU64(bits);
  }
  return out;
}

}  // namespace

KernelRegistry KernelRegistry::Builtin() {
  namespace cal = hw::cal;
  KernelRegistry registry;
  auto add = [&registry](DpKernel k) {
    Status s = registry.Register(std::move(k));
    DPDPU_CHECK(s.ok());
  };
  add({kKernelCompress, hw::AcceleratorKind::kCompression,
       cal::kDeflateCyclesPerByte, cal::kKernelDispatchCycles, CompressFn});
  add({kKernelDecompress, hw::AcceleratorKind::kCompression,
       cal::kInflateCyclesPerByte, cal::kKernelDispatchCycles,
       DecompressFn});
  add({kKernelEncrypt, hw::AcceleratorKind::kEncryption,
       cal::kChaCha20CyclesPerByte, cal::kKernelDispatchCycles, EncryptFn});
  add({kKernelDecrypt, hw::AcceleratorKind::kEncryption,
       cal::kChaCha20CyclesPerByte, cal::kKernelDispatchCycles, EncryptFn});
  add({kKernelRegexCount, hw::AcceleratorKind::kRegex,
       cal::kRegexCyclesPerByte, cal::kKernelDispatchCycles, RegexCountFn});
  add({kKernelCrc32, std::nullopt, cal::kCrc32CyclesPerByte,
       cal::kKernelDispatchCycles, Crc32Fn});
  add({kKernelDedupChunk, hw::AcceleratorKind::kDedup,
       cal::kDedupChunkCyclesPerByte, cal::kKernelDispatchCycles,
       DedupChunkFn});
  add({kKernelFilter, std::nullopt, cal::kFilterCyclesPerByte,
       cal::kKernelDispatchCycles, FilterFn});
  add({kKernelAggregate, std::nullopt, cal::kAggregateCyclesPerByte,
       cal::kKernelDispatchCycles, AggregateFn});
  return registry;
}

Status KernelRegistry::Register(DpKernel kernel) {
  if (kernels_.count(kernel.name) > 0) {
    return Status::AlreadyExists("kernel: " + kernel.name);
  }
  std::string name = kernel.name;
  kernels_.emplace(std::move(name), std::move(kernel));
  return Status::Ok();
}

const DpKernel* KernelRegistry::Find(const std::string& name) const {
  auto it = kernels_.find(name);
  return it == kernels_.end() ? nullptr : &it->second;
}

std::vector<std::string> KernelRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, kernel] : kernels_) names.push_back(name);
  return names;
}

}  // namespace dpdpu::ce
