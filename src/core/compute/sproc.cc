#include "core/compute/sproc.h"

#include "core/compute/compute_engine.h"

namespace dpdpu::ce {

ne::NetworkEngine* SprocContext::network() {
  return static_cast<ne::NetworkEngine*>(engine_->network_engine_opaque());
}

se::StorageEngine* SprocContext::storage() {
  return static_cast<se::StorageEngine*>(engine_->storage_engine_opaque());
}

Result<WorkItemPtr> SprocContext::InvokeKernel(const std::string& kernel,
                                               Buffer input,
                                               KernelParams params,
                                               InvokeOptions options) {
  return engine_->Invoke(kernel, std::move(input), std::move(params),
                         options);
}

}  // namespace dpdpu::ce
