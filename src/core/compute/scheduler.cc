#include "core/compute/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "hw/calibration.h"

namespace dpdpu::ce {

std::string_view ExecTargetName(ExecTarget target) {
  switch (target) {
    case ExecTarget::kAuto:
      return "auto";
    case ExecTarget::kDpuAsic:
      return "dpu_asic";
    case ExecTarget::kDpuCpu:
      return "dpu_cpu";
    case ExecTarget::kHostCpu:
      return "host_cpu";
    case ExecTarget::kPcieAccel:
      return "pcie_accel";
  }
  return "?";
}

bool PlacementModel::Available(const DpKernel& kernel,
                               ExecTarget target) const {
  switch (target) {
    case ExecTarget::kDpuAsic:
      return kernel.asic_kind.has_value() &&
             server_->accelerator(*kernel.asic_kind) != nullptr;
    case ExecTarget::kDpuCpu:
    case ExecTarget::kHostCpu:
      return true;
    case ExecTarget::kPcieAccel:
      return server_->pcie_accelerator() != nullptr;
    case ExecTarget::kAuto:
      return true;
  }
  return false;
}

sim::SimTime PlacementModel::ServiceTime(const DpKernel& kernel,
                                         size_t bytes,
                                         ExecTarget target) const {
  switch (target) {
    case ExecTarget::kDpuAsic: {
      if (!kernel.asic_kind.has_value()) return 0;
      hw::Accelerator* asic = server_->accelerator(*kernel.asic_kind);
      return asic == nullptr ? 0 : asic->JobTime(bytes);
    }
    case ExecTarget::kDpuCpu:
      return server_->dpu_cpu().WorkTime(bytes, kernel.cpu_cycles_per_byte,
                                         kernel.fixed_cycles);
    case ExecTarget::kHostCpu: {
      // Host execution pays the PCIe round trip for input and (estimated
      // same-size) output on top of the compute itself.
      sim::SimTime compute = server_->host_cpu().WorkTime(
          bytes, kernel.cpu_cycles_per_byte, kernel.fixed_cycles);
      sim::SimTime dma = 2 * (server_->pcie().TransferTime(bytes) +
                              server_->pcie().spec().latency_ns);
      return compute + dma;
    }
    case ExecTarget::kPcieAccel: {
      hw::PcieAccelerator* accel = server_->pcie_accelerator();
      if (accel == nullptr) return 0;
      // Kernel launch + streaming compute + the PCIe round trip.
      sim::SimTime dma = 2 * (server_->pcie().TransferTime(bytes) +
                              server_->pcie().spec().latency_ns);
      return accel->JobTime(bytes, kernel.cpu_cycles_per_byte) + dma;
    }
    case ExecTarget::kAuto:
      break;
  }
  return 0;
}

sim::SimTime PlacementModel::EstimateCompletion(const DpKernel& kernel,
                                                size_t bytes,
                                                ExecTarget target) const {
  sim::SimTime service = ServiceTime(kernel, bytes, target);
  uint32_t parallelism = 1;
  switch (target) {
    case ExecTarget::kDpuAsic:
      if (kernel.asic_kind.has_value()) {
        hw::Accelerator* asic = server_->accelerator(*kernel.asic_kind);
        if (asic != nullptr) parallelism = asic->spec().max_concurrency;
      }
      break;
    case ExecTarget::kDpuCpu:
      parallelism = server_->dpu_cpu().spec().cores;
      break;
    case ExecTarget::kHostCpu:
      parallelism = server_->host_cpu().spec().cores;
      break;
    case ExecTarget::kPcieAccel:
      if (server_->pcie_accelerator() != nullptr) {
        parallelism = server_->pcie_accelerator()->spec().max_concurrency;
      }
      break;
    case ExecTarget::kAuto:
      break;
  }
  return backlog(target) / std::max<uint32_t>(parallelism, 1) + service;
}

ExecTarget PlacementModel::Choose(const DpKernel& kernel, size_t bytes,
                                  PlacementPolicy policy) const {
  bool asic_ok = Available(kernel, ExecTarget::kDpuAsic);
  switch (policy) {
    case PlacementPolicy::kAsicFirst:
      return asic_ok ? ExecTarget::kDpuAsic : ExecTarget::kDpuCpu;
    case PlacementPolicy::kDpuCpuOnly:
      return ExecTarget::kDpuCpu;
    case PlacementPolicy::kModelBased: {
      ExecTarget best = ExecTarget::kDpuCpu;
      sim::SimTime best_eta = EstimateCompletion(kernel, bytes,
                                                 ExecTarget::kDpuCpu);
      for (ExecTarget t : {ExecTarget::kDpuAsic, ExecTarget::kHostCpu,
                           ExecTarget::kPcieAccel}) {
        if (!Available(kernel, t)) continue;
        if (t == ExecTarget::kDpuAsic && !asic_ok) continue;
        sim::SimTime eta = EstimateCompletion(kernel, bytes, t);
        if (eta < best_eta) {
          best_eta = eta;
          best = t;
        }
      }
      return best;
    }
  }
  return ExecTarget::kDpuCpu;
}

void PlacementModel::OnDispatch(ExecTarget target, sim::SimTime service) {
  backlog_[target] += service;
}

void PlacementModel::OnComplete(ExecTarget target, sim::SimTime service) {
  sim::SimTime& b = backlog_[target];
  b = service > b ? 0 : b - service;
}

sim::SimTime PlacementModel::backlog(ExecTarget target) const {
  auto it = backlog_.find(target);
  return it == backlog_.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// AdmissionQueue.
// ---------------------------------------------------------------------------

void AdmissionQueue::Push(uint32_t tenant, uint64_t weight_bytes,
                          UniqueFunction dispatch) {
  DPDPU_SIM_ACCESS(race_tag_, "ce::AdmissionQueue", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  ++size_;
  if (discipline_ == Discipline::kFcfs) {
    fifo_.push_back(Entry{weight_bytes, std::move(dispatch)});
  } else {
    tenants_[tenant].queue.push_back(Entry{weight_bytes,
                                           std::move(dispatch)});
  }
}

bool AdmissionQueue::Pop(UniqueFunction* out) {
  DPDPU_SIM_ACCESS(race_tag_, "ce::AdmissionQueue", /*key=*/0,
                   sim::AccessKind::kCommutativeWrite);
  if (size_ == 0) return false;
  if (discipline_ == Discipline::kFcfs) {
    *out = std::move(fifo_.front().dispatch);
    fifo_.pop_front();
    --size_;
    return true;
  }
  // DRR: advance the cursor over tenants with queued work; a tenant may
  // dispatch while it has deficit, which refills by one quantum per
  // visit. Weights are bytes, so large jobs consume proportional credit.
  // Each full sweep credits every backlogged tenant one quantum, so any
  // head-of-line job becomes dispatchable within weight/quantum sweeps.
  for (int sweep = 0; sweep < 100000; ++sweep) {
    auto it = tenants_.upper_bound(cursor_);
    for (size_t visited = 0; visited <= tenants_.size(); ++visited) {
      if (it == tenants_.end()) it = tenants_.begin();
      if (it == tenants_.end()) break;  // no tenants at all
      TenantState& state = it->second;
      if (!state.queue.empty()) {
        if (state.deficit < state.queue.front().weight) {
          state.deficit += quantum_;
        }
        if (state.deficit >= state.queue.front().weight) {
          state.deficit -= state.queue.front().weight;
          *out = std::move(state.queue.front().dispatch);
          state.queue.pop_front();
          --size_;
          cursor_ = it->first;
          return true;
        }
      } else {
        state.deficit = 0;  // idle tenants keep no credit
      }
      cursor_ = it->first;
      ++it;
    }
  }
  return false;
}

}  // namespace dpdpu::ce
