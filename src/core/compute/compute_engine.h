// The DPDPU Compute Engine (paper Section 5): executes stored procedures
// on DPU CPU cores and DP kernels on ASICs / DPU CPUs / host CPUs, with
// specified or scheduled execution, model-based placement, and
// multi-tenant admission control on the accelerators.

#ifndef DPDPU_CORE_COMPUTE_COMPUTE_ENGINE_H_
#define DPDPU_CORE_COMPUTE_COMPUTE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "core/compute/dp_kernel.h"
#include "core/compute/scheduler.h"
#include "core/compute/work_item.h"
#include "hw/machine.h"

namespace dpdpu::ce {

class SprocContext;
using SprocFn = std::function<void(SprocContext&)>;

struct ComputeEngineOptions {
  PlacementPolicy policy = PlacementPolicy::kModelBased;
  AdmissionQueue::Discipline asic_admission =
      AdmissionQueue::Discipline::kFcfs;
  uint64_t drr_quantum_bytes = 64 * 1024;
  /// iPipe-style sproc co-scheduling (Section 5: "schedule not only
  /// sprocs between DPU and host CPUs..."): when the DPU run queue
  /// exceeds the threshold, new sproc invocations migrate to host cores.
  bool sproc_migration = false;
  size_t sproc_migration_queue_threshold = 16;
};

struct TargetStats {
  uint64_t jobs = 0;
  uint64_t bytes = 0;
};

class ComputeEngine {
 public:
  ComputeEngine(hw::Server* server, KernelRegistry registry,
                ComputeEngineOptions options = {});
  ~ComputeEngine();  // out of line: SprocContext is incomplete here

  ComputeEngine(const ComputeEngine&) = delete;
  ComputeEngine& operator=(const ComputeEngine&) = delete;

  hw::Server& server() { return *server_; }
  const KernelRegistry& registry() const { return registry_; }

  /// "The user can query what DP kernels are available."
  std::vector<std::string> AvailableKernels() const {
    return registry_.List();
  }

  /// Registers an application-defined DP kernel.
  Status RegisterKernel(DpKernel kernel) {
    return registry_.Register(std::move(kernel));
  }

  /// True when `target` can execute `kernel` on this server — the Fig 6
  /// "if the accelerator is currently unavailable" probe.
  bool TargetAvailable(const std::string& kernel, ExecTarget target) const;

  /// Invokes a DP kernel. With a specified target that this hardware
  /// lacks, fails with Unavailable (the None return in Fig 6, prompting
  /// the caller to fall back to dpu_cpu). With kAuto, the engine
  /// schedules the kernel and the returned work item reports where it
  /// ran.
  Result<WorkItemPtr> Invoke(const std::string& kernel, Buffer input,
                             KernelParams params = {},
                             InvokeOptions options = {});

  /// One step of a fused kernel chain.
  struct FusedStep {
    std::string kernel;
    KernelParams params;
  };

  /// Fuses a chain of DP kernels into one placement (Section 5: "it
  /// makes sense to fuse multiple DP kernels inside the accelerator to
  /// minimize execution latency"): one data movement in and out, the
  /// chain's combined compute executed on the device. Valid targets:
  /// kPcieAccel, kHostCpu, kDpuCpu (or kAuto to pick among them); the
  /// fixed-function DPU ASICs cannot fuse across engines.
  Result<WorkItemPtr> InvokeFused(const std::vector<FusedStep>& steps,
                                  Buffer input, InvokeOptions options = {});

  // --- Stored procedures --------------------------------------------------

  /// Registers a sproc ("precompiled into a shared library" in the real
  /// system; a bound callable here).
  Status RegisterSproc(const std::string& name, SprocFn fn);

  /// Invokes a sproc on a DPU CPU core (dispatch cost charged there).
  Status InvokeSproc(const std::string& name);

  std::vector<std::string> Sprocs() const;

  // --- Introspection -------------------------------------------------------

  const PlacementModel& placement() const { return placement_; }
  const TargetStats& target_stats(ExecTarget target) const;
  uint64_t sprocs_invoked() const { return sprocs_invoked_; }
  uint64_t sprocs_migrated_to_host() const { return sprocs_migrated_; }

  /// Engine pointers for SprocContext; set by the runtime Platform.
  void SetEngineContext(void* network_engine, void* storage_engine) {
    network_engine_ = network_engine;
    storage_engine_ = storage_engine;
  }
  void* network_engine_opaque() const { return network_engine_; }
  void* storage_engine_opaque() const { return storage_engine_; }

 private:
  void Dispatch(const DpKernel& kernel, ExecTarget target, Buffer input,
                KernelParams params, WorkItemPtr item);
  void RunOnAsic(const DpKernel& kernel, Buffer input, KernelParams params,
                 WorkItemPtr item, uint32_t tenant);
  void StartAsicJob(const DpKernel& kernel, hw::Accelerator* asic,
                    Buffer input, KernelParams params, WorkItemPtr item);
  void PumpAsicQueue(hw::AcceleratorKind kind);
  void Finish(const DpKernel& kernel, ExecTarget target, Buffer input,
              KernelParams params, WorkItemPtr item);

  hw::Server* server_;
  KernelRegistry registry_;
  ComputeEngineOptions options_;
  PlacementModel placement_;
  std::map<std::string, SprocFn> sprocs_;
  // Per-accelerator admission (the in-flight count enforces hardware
  // concurrency; the queue applies FCFS or DRR).
  struct AsicState {
    uint32_t in_flight = 0;
    std::unique_ptr<AdmissionQueue> queue;
  };
  std::map<hw::AcceleratorKind, AsicState> asic_state_;
  // Engine-owned context handed to every sproc: it outlives any async
  // continuation a sproc schedules, so sproc bodies may capture it by
  // reference.
  std::unique_ptr<SprocContext> sproc_context_;
  std::map<ExecTarget, TargetStats> stats_;
  uint64_t sprocs_invoked_ = 0;
  uint64_t sprocs_migrated_ = 0;
  void* network_engine_ = nullptr;
  void* storage_engine_ = nullptr;
};

}  // namespace dpdpu::ce

#endif  // DPDPU_CORE_COMPUTE_COMPUTE_ENGINE_H_
