// WorkItem: the asynchronous handle returned by Compute Engine kernel
// invocations — the paper's "the call always returns a valid work item in
// progress" (Section 5).

#ifndef DPDPU_CORE_COMPUTE_WORK_ITEM_H_
#define DPDPU_CORE_COMPUTE_WORK_ITEM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "sim/simulator.h"

namespace dpdpu::ce {

/// Where a kernel or sproc executes. kAuto requests scheduled execution;
/// the others are the paper's "specified execution".
enum class ExecTarget : uint8_t {
  kAuto,
  kDpuAsic,
  kDpuCpu,
  kHostCpu,
  /// PCIe-attached GPU/FPGA-class accelerator (Section 5 extension).
  kPcieAccel,
};

std::string_view ExecTargetName(ExecTarget target);

/// Per-invocation options for DP kernel dispatch.
struct InvokeOptions {
  /// kAuto = scheduled execution; anything else = specified execution.
  ExecTarget target = ExecTarget::kAuto;
  uint32_t tenant = 0;
};

class WorkItem {
 public:
  bool done() const { return done_; }

  /// Valid once done().
  const Result<Buffer>& result() const { return result_; }

  /// Where the kernel actually ran — the CE "informs the decision to the
  /// application" (Section 4).
  ExecTarget executed_on() const { return executed_on_; }

  sim::SimTime submitted_at() const { return submitted_at_; }
  sim::SimTime completed_at() const { return completed_at_; }
  sim::SimTime latency() const { return completed_at_ - submitted_at_; }

  /// Registers a continuation; fires immediately when already done.
  void OnComplete(std::function<void(WorkItem&)> fn) {
    if (done_) {
      fn(*this);
    } else {
      continuations_.push_back(std::move(fn));
    }
  }

  /// Completion entry point for the engine.
  void Complete(Result<Buffer> result, ExecTarget ran_on,
                sim::SimTime completed_at) {
    result_ = std::move(result);
    executed_on_ = ran_on;
    completed_at_ = completed_at;
    done_ = true;
    std::vector<std::function<void(WorkItem&)>> continuations;
    continuations.swap(continuations_);
    for (auto& fn : continuations) fn(*this);
  }

  void set_submitted_at(sim::SimTime t) { submitted_at_ = t; }

 private:
  bool done_ = false;
  Result<Buffer> result_{Status::Internal("work item not complete")};
  ExecTarget executed_on_ = ExecTarget::kAuto;
  sim::SimTime submitted_at_ = 0;
  sim::SimTime completed_at_ = 0;
  std::vector<std::function<void(WorkItem&)>> continuations_;
};

using WorkItemPtr = std::shared_ptr<WorkItem>;

}  // namespace dpdpu::ce

#endif  // DPDPU_CORE_COMPUTE_WORK_ITEM_H_
