// DP kernels — the paper's central Compute Engine abstraction (Section 5):
// "an extensible set of specialized functions built in DPDPU that
// optimizes sproc execution efficiency... we require that each DP kernel
// can be executed on any compute hardware." A kernel couples one real
// software implementation (producing identical output on every target)
// with a CPU cost model and an optional ASIC affinity; where it actually
// runs is a placement decision (specified or scheduled execution).

#ifndef DPDPU_CORE_COMPUTE_DP_KERNEL_H_
#define DPDPU_CORE_COMPUTE_DP_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "hw/accelerator.h"

namespace dpdpu::ce {

/// String key/value parameters for a kernel invocation (e.g. the regex
/// pattern, a predicate column/op/literal).
using KernelParams = std::map<std::string, std::string>;

/// The real implementation: same bytes out regardless of placement.
using KernelFn =
    std::function<Result<Buffer>(ByteSpan input, const KernelParams& params)>;

/// A registered DP kernel.
struct DpKernel {
  std::string name;
  /// ASIC able to execute this kernel, if any DPU model carries one.
  std::optional<hw::AcceleratorKind> asic_kind;
  /// Software cost model in reference cycles (see hw/calibration.h).
  double cpu_cycles_per_byte = 1.0;
  uint64_t fixed_cycles = 0;
  KernelFn fn;
};

/// Name -> kernel lookup. `Builtin()` registers the kernels the paper
/// names: compression/decompression, encryption, RegEx, dedup, CRC, and
/// the relational pushdown kernels (filter, aggregate).
class KernelRegistry {
 public:
  KernelRegistry() = default;

  /// Registry pre-loaded with the built-in kernels.
  static KernelRegistry Builtin();

  /// Fails with AlreadyExists on duplicate names.
  Status Register(DpKernel kernel);

  /// nullptr when unknown.
  const DpKernel* Find(const std::string& name) const;

  /// "The user can query what DP kernels are available" (Section 5).
  std::vector<std::string> List() const;

 private:
  std::map<std::string, DpKernel> kernels_;
};

// Builtin kernel names.
inline constexpr char kKernelCompress[] = "compress";
inline constexpr char kKernelDecompress[] = "decompress";
inline constexpr char kKernelEncrypt[] = "encrypt";
inline constexpr char kKernelDecrypt[] = "decrypt";
inline constexpr char kKernelRegexCount[] = "regex_count";
inline constexpr char kKernelCrc32[] = "crc32";
inline constexpr char kKernelDedupChunk[] = "dedup_chunk";
inline constexpr char kKernelFilter[] = "filter";
inline constexpr char kKernelAggregate[] = "aggregate";

}  // namespace dpdpu::ce

#endif  // DPDPU_CORE_COMPUTE_DP_KERNEL_H_
