// Stored procedures (paper Section 5): "users write stored procedures to
// express tasks in the compute engine." A sproc body runs on a DPU CPU
// core and composes DP kernels with Network/Storage Engine operations
// through this context (the Figure 6 programming model, in callback
// style).

#ifndef DPDPU_CORE_COMPUTE_SPROC_H_
#define DPDPU_CORE_COMPUTE_SPROC_H_

#include <string>

#include "common/result.h"
#include "core/compute/dp_kernel.h"
#include "core/compute/work_item.h"

namespace dpdpu::ne {
class NetworkEngine;
}  // namespace dpdpu::ne
namespace dpdpu::se {
class StorageEngine;
}  // namespace dpdpu::se

namespace dpdpu::ce {

class ComputeEngine;

/// Execution context handed to a sproc body.
class SprocContext {
 public:
  explicit SprocContext(ComputeEngine* engine) : engine_(engine) {}

  ComputeEngine& compute() { return *engine_; }

  /// The companion engines, when the sproc runs under a full Platform
  /// (nullptr in compute-only deployments).
  ne::NetworkEngine* network();
  se::StorageEngine* storage();

  /// Fig 6's `ce.get_dpk(...)` + invocation in one call: dispatches a DP
  /// kernel, returning the in-progress work item (or Unavailable for a
  /// specified target this DPU lacks).
  Result<WorkItemPtr> InvokeKernel(const std::string& kernel, Buffer input,
                                   KernelParams params = {},
                                   InvokeOptions options = {});

 private:
  ComputeEngine* engine_;
};

}  // namespace dpdpu::ce

#endif  // DPDPU_CORE_COMPUTE_SPROC_H_
